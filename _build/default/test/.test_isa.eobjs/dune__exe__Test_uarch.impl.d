test/test_uarch.ml: Alcotest Amulet_isa Amulet_uarch Branch_pred Cache Config Event Format List Mdp Memsys QCheck2 QCheck_alcotest String Tlb
