test/test_isa.ml: Alcotest Amulet Amulet_isa Array Asm Cond Encoder Flags Inst Int64 List Operand Printf Program QCheck2 QCheck_alcotest Reg String Width
