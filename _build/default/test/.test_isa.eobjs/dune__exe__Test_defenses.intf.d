test/test_defenses.mli:
