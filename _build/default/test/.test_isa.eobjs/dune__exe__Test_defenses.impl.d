test/test_defenses.ml: Alcotest Amulet Amulet_defenses Amulet_isa Amulet_uarch Analysis Asm Campaign Defense Executor Fuzzer Generator List Option Program Stats Violation
