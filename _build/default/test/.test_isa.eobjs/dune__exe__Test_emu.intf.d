test/test_emu.mli:
