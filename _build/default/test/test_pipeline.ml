(* Tests for the out-of-order pipeline: architectural equivalence with the
   sequential emulator (the load-bearing correctness property), speculation
   behaviours (Spectre-v1 and v4 on the baseline), and robustness. *)

open Amulet_isa
open Amulet_emu
open Amulet_uarch
open Amulet_defenses

let checkb = Alcotest.check Alcotest.bool
let check64 = Alcotest.check Alcotest.int64

let sim_of ?(cfg = Config.default) ?(pages = 1) () =
  Simulator.create ~boot_insts:0 ~pages cfg

(* run [flat] from [state] on both the emulator and the pipeline; compare
   final architectural state *)
let arch_equivalent ?(cfg = Config.default) ?(pages = 1) flat (mk_state : unit -> State.t) =
  let st_e = mk_state () in
  let emu = Emulator.execute flat st_e in
  let sim = sim_of ~cfg ~pages () in
  Simulator.load_state sim (mk_state ());
  let stats = Simulator.run sim flat in
  match Emulator.fault emu, stats.Simulator.fault with
  | Some _, _ | _, Some _ -> `Fault
  | None, None ->
      let st_p = Simulator.arch_state sim in
      if
        Array.for_all2 Int64.equal st_p.State.regs st_e.State.regs
        && Flags.equal st_p.State.flags st_e.State.flags
        && Memory.equal st_p.State.mem st_e.State.mem
      then `Equal
      else `Different

let defense_configs =
  [
    "baseline", Defense.config Defense.baseline;
    "invisispec", Defense.config Defense.invisispec;
    "invisispec-patched", Defense.config Defense.invisispec_patched;
    "cleanupspec", Defense.config Defense.cleanupspec;
    "cleanupspec-patched", Defense.config Defense.cleanupspec_patched;
    "stt", Defense.config Defense.stt;
    "speclfb", Defense.config Defense.speclfb;
    "delay-on-miss", Defense.config Defense.delay_on_miss;
    "ghostminion", Defense.config Defense.ghostminion;
    "amplified", Defense.config ~l1d_ways:2 ~mshrs:2 Defense.invisispec_patched;
  ]

(* the big one: for random programs and inputs, under every defense, the
   pipeline must compute exactly the emulator's architectural result *)
let equivalence_prop (name, cfg) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "pipeline = emulator [%s]" name)
    ~count:60
    QCheck2.Gen.(int_bound 10_000_000)
    (fun seed ->
      let open Amulet in
      let rng = Rng.create ~seed in
      let flat = Generator.generate_flat rng in
      let input = Input.generate rng ~pages:1 in
      match arch_equivalent ~cfg flat (fun () -> Input.to_state input) with
      | `Equal | `Fault -> true
      | `Different -> false)

(* unaligned/line-crossing accesses stress the split-request path *)
let equivalence_unaligned_prop =
  QCheck2.Test.make ~name:"pipeline = emulator [unaligned accesses]" ~count:60
    QCheck2.Gen.(int_bound 10_000_000)
    (fun seed ->
      let open Amulet in
      let rng = Rng.create ~seed in
      let gcfg = { Generator.default with Generator.unaligned_fraction = 0.8 } in
      let flat = Generator.generate_flat ~cfg:gcfg rng in
      let input = Input.generate rng ~pages:1 in
      match arch_equivalent flat (fun () -> Input.to_state input) with
      | `Equal | `Fault -> true
      | `Different -> false)

(* ------------------------------------------------------------------ *)
(* Spectre behaviours on the baseline                                  *)
(* ------------------------------------------------------------------ *)

let spectre_v1_src = {|
.bb0:
  AND RBX, 0b111111111000000
  CMP RAX, 0
  JNZ .done
  MOV RCX, qword ptr [R14 + RBX]
.done:
  MOV RDX, qword ptr [R14 + 3584]
  EXIT
|}

let mk_state rax rbx =
  let st = State.create ~pages:1 () in
  State.write_reg st Reg.RAX rax;
  State.write_reg st Reg.RBX rbx;
  State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
  st

(* run with priming; return sandbox lines present in the final L1D *)
let sandbox_lines_after ?(cfg = Config.default) src st =
  let flat = Program.flatten (Asm.parse src) in
  let sim = sim_of ~cfg () in
  ignore (Simulator.prime_with_fills sim);
  Simulator.load_state sim st;
  let stats = Simulator.run sim flat in
  Alcotest.(check (option string)) "no fault" None stats.Simulator.fault;
  List.filter (fun l -> l < Simulator.prime_base) (Simulator.l1d_tags sim)

let test_spectre_v1_transient_install () =
  (* rax=1: branch taken; the load runs only transiently (predicted
     not-taken) yet its line lands in the cache *)
  let lines = sandbox_lines_after spectre_v1_src (mk_state 1L 0x200L) in
  checkb "transient line installed (baseline leak)" true (List.mem 0x1200 lines);
  (* and the line differs with the (transient) input *)
  let lines' = sandbox_lines_after spectre_v1_src (mk_state 1L 0x400L) in
  checkb "input-dependent" true (List.mem 0x1400 lines' && not (List.mem 0x1200 lines'))

let test_spectre_v1_squash_restores_arch_state () =
  let flat = Program.flatten (Asm.parse spectre_v1_src) in
  match arch_equivalent flat (fun () -> mk_state 1L 0x200L) with
  | `Equal -> ()
  | `Different -> Alcotest.fail "squash corrupted architectural state"
  | `Fault -> Alcotest.fail "unexpected fault"

let spectre_v4_src = {|
.bb0:
  AND RDI, 0b111111111000000
  MOV RSI, qword ptr [R14 + RDI]
  AND RSI, 0b11111000000
  MOV qword ptr [R14 + RSI + 0], 0
  MOV RBX, qword ptr [R14 + 128]
  AND RBX, 0b111111111000000
  MOV RCX, qword ptr [R14 + RBX]
  EXIT
|}

let test_spectre_v4_store_bypass () =
  (* the store's address depends on a slow load, so the younger load of
     [R14+128] bypasses it (cold MDP) and reads the stale secret, which is
     then transmitted via the last load's line *)
  let st secret =
    let st = mk_state 0L 0L in
    State.write_reg st Reg.RDI 0x40L;
    Memory.write st.State.mem Width.W64 (Memory.base st.State.mem + 0x40) 0x80L;
    (* stale secret at [R14+128]; the store will overwrite it with 0 *)
    Memory.write st.State.mem Width.W64 (Memory.base st.State.mem + 128) secret;
    st
  in
  let lines_a = sandbox_lines_after spectre_v4_src (st 0x200L) in
  let lines_b = sandbox_lines_after spectre_v4_src (st 0x600L) in
  checkb "stale value leaked via transient line" true
    (List.mem 0x1200 lines_a && List.mem 0x1600 lines_b);
  (* the architectural result is still correct (the bypassing load replays) *)
  let flat = Program.flatten (Asm.parse spectre_v4_src) in
  match arch_equivalent flat (fun () -> st 0x200L) with
  | `Equal -> ()
  | `Different -> Alcotest.fail "memory-dependence replay corrupted state"
  | `Fault -> Alcotest.fail "unexpected fault"

let test_fence_blocks_transient_load () =
  let src = {|
.bb0:
  AND RBX, 0b111111111000000
  CMP RAX, 0
  JNZ .done
  LFENCE
  MOV RCX, qword ptr [R14 + RBX]
.done:
  MOV RDX, qword ptr [R14 + 3584]
  EXIT
|} in
  let lines = sandbox_lines_after src (mk_state 1L 0x200L) in
  checkb "lfence kills the transient load" false (List.mem 0x1200 lines)

(* ------------------------------------------------------------------ *)
(* Robustness                                                          *)
(* ------------------------------------------------------------------ *)

let test_deadlock_detected () =
  (* an instruction window that can never complete must be caught by the
     watchdog, not hang: a backward jump loops commit forever, but the
     cycle limit / fetch escape catches it *)
  let flat =
    { Program.code = [| Inst.Jmp (Inst.Abs 0); Inst.Exit |]; code_base = 0x400000; inst_size = 4 }
  in
  let cfg = { Config.default with Config.max_cycles = 5_000 } in
  let sim = sim_of ~cfg () in
  Simulator.load_state sim (mk_state 0L 0L);
  let stats = Simulator.run sim flat in
  checkb "faulted rather than hung" true (stats.Simulator.fault <> None)

let test_prime_fills_cache () =
  let sim = sim_of () in
  ignore (Simulator.prime_with_fills sim);
  let cfg = Config.default in
  Alcotest.check Alcotest.int "cache full after priming"
    (cfg.Config.l1d_sets * cfg.Config.l1d_ways)
    (List.length (Simulator.l1d_tags sim));
  checkb "all prime lines" true
    (List.for_all (fun l -> l >= Simulator.prime_base) (Simulator.l1d_tags sim));
  checkb "tlb reset after priming" true (Simulator.tlb_pages sim = [])

let test_flush_hook () =
  let sim = sim_of () in
  ignore (Simulator.prime_with_fills sim);
  Simulator.prime_with_flush sim;
  checkb "flush empties" true (Simulator.l1d_tags sim = [])

let test_run_stats_sane () =
  let flat = Program.flatten (Asm.parse "ADD RAX, 1\nADD RAX, 2") in
  let sim = sim_of () in
  Simulator.load_state sim (mk_state 0L 0L);
  let stats = Simulator.run sim flat in
  Alcotest.check Alcotest.int "3 committed (incl exit)" 3 stats.Simulator.committed_insts;
  checkb "cycles positive" true (stats.Simulator.cycles > 0);
  check64 "result" 3L (State.read_reg (Simulator.arch_state sim) Reg.RAX)

let () =
  Alcotest.run ~and_exit:false "pipeline"
    [
      ( "equivalence",
        List.map equivalence_prop defense_configs
        |> List.map QCheck_alcotest.to_alcotest
        |> fun l -> l @ [ QCheck_alcotest.to_alcotest equivalence_unaligned_prop ] );
      ( "speculation",
        [
          Alcotest.test_case "spectre-v1 transient install" `Quick
            test_spectre_v1_transient_install;
          Alcotest.test_case "spectre-v1 squash clean" `Quick
            test_spectre_v1_squash_restores_arch_state;
          Alcotest.test_case "spectre-v4 store bypass" `Quick test_spectre_v4_store_bypass;
          Alcotest.test_case "lfence barrier" `Quick test_fence_blocks_transient_load;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "priming fills cache" `Quick test_prime_fills_cache;
          Alcotest.test_case "flush hook" `Quick test_flush_hook;
          Alcotest.test_case "run stats" `Quick test_run_stats_sane;
        ] );
    ]

(* appended coverage: defense mechanics inside the pipeline, the PC-sequence
   observer, and issue-gating behaviours *)

let test_invisispec_expose_installs_after_safety () =
  (* a speculative load on the CORRECT path must eventually be exposed and
     installed; on the WRONG path its line must never appear *)
  let src = {|
.bb0:
  AND RSI, 0b111111000000
  CMP RAX, qword ptr [R14 + RSI]
  JNZ .done
  AND RBX, 0b111111000000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  MOV RDX, qword ptr [R14 + 3584]
  AND RDX, 0b111111000000
  MOV RDI, qword ptr [R14 + RDX + 2048]
  EXIT
|} in
  let cfg = Defense.config Defense.invisispec_patched in
  let flat = Program.flatten (Asm.parse src) in
  let run rax =
    let st = mk_state rax 0x200L in
    State.write_reg st Reg.RSI 0x80L;
    let sim = sim_of ~cfg () in
    ignore (Simulator.prime_with_fills sim);
    Simulator.load_state sim st;
    ignore (Simulator.run sim flat);
    List.filter (fun l -> l < Simulator.prime_base) (Simulator.l1d_tags sim)
  in
  (* rax = mem value (0): branch not taken, load architectural -> exposed *)
  let arch_lines = run 0L in
  checkb "arch spec load exposed and installed" true (List.mem 0x1200 arch_lines);
  (* rax <> 0: branch taken, load transient -> spec buffer dropped *)
  let wrong_lines = run 1L in
  checkb "transient load invisible (patched InvisiSpec)" false
    (List.mem 0x1200 wrong_lines)

let test_stt_blocks_tainted_transmitter () =
  (* under STT a transiently-loaded value must not reach the cache via a
     dependent load's address *)
  let src = {|
.bb0:
  AND RSI, 0b111111000000
  CMP RAX, qword ptr [R14 + RSI]
  JNZ .done
  MOV RBX, qword ptr [R14 + 8]
  AND RBX, 0b111111000000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  MOV RDX, qword ptr [R14 + 3584]
  AND RDX, 0b111111000000
  MOV RDI, qword ptr [R14 + RDX + 2048]
  EXIT
|} in
  let flat = Program.flatten (Asm.parse src) in
  let lines_with cfg secret =
    let st = mk_state 1L 0L in
    Memory.write st.State.mem Width.W64 (Memory.base st.State.mem + 8) secret;
    let sim = sim_of ~cfg () in
    ignore (Simulator.prime_with_fills sim);
    Simulator.load_state sim st;
    ignore (Simulator.run sim flat);
    List.filter (fun l -> l < Simulator.prime_base) (Simulator.l1d_tags sim)
  in
  let baseline_lines = lines_with (Defense.config Defense.baseline) 0x200L in
  checkb "baseline leaks the dependent line" true (List.mem 0x1200 baseline_lines);
  let stt_lines = lines_with (Defense.config Defense.stt) 0x200L in
  checkb "stt blocks the tainted transmitter" false (List.mem 0x1200 stt_lines)

let test_pc_sequence_observer () =
  (* the PC-sequence trace includes wrong-path instructions *)
  let flat = Program.flatten (Asm.parse spectre_v1_src) in
  let run rbx =
    let sim = sim_of () in
    ignore (Simulator.prime_with_fills sim);
    Simulator.load_state sim (mk_state 1L rbx);
    ignore (Simulator.run sim flat);
    Simulator.execution_order sim
  in
  let pcs = run 0x200L in
  (* the transient load at index 3 (pc base+12) executed despite the squash *)
  checkb "wrong-path pc recorded" true (List.mem (Program.code_base_default + 12) pcs);
  checkb "exit recorded" true (pcs <> [])

let test_rob_capacity_blocks_fetch () =
  (* more independent instructions than the ROB holds: the program must
     still complete correctly, just in waves *)
  let body =
    List.init 100 (fun i ->
        Inst.Binop (Inst.Add, Width.W64, Operand.Reg Reg.RAX, Operand.Imm (Int64.of_int i)))
  in
  let flat = Program.flatten (Program.make [ { Program.label = "big"; body } ]) in
  match arch_equivalent flat (fun () -> mk_state 0L 0L) with
  | `Equal -> ()
  | `Different -> Alcotest.fail "rob-pressure corrupted state"
  | `Fault -> Alcotest.fail "unexpected fault"

let test_split_access_pipeline_correctness () =
  (* an 8-byte access straddling a line boundary is architecturally exact *)
  let src = {|
  MOV qword ptr [R14 + 60], RBX
  MOV RCX, qword ptr [R14 + 60]
|} in
  let flat = Program.flatten (Asm.parse src) in
  match arch_equivalent flat (fun () -> mk_state 0L 0x1122334455667788L) with
  | `Equal -> ()
  | `Different -> Alcotest.fail "split access mismatch"
  | `Fault -> Alcotest.fail "unexpected fault"

let () =
  Alcotest.run "pipeline-extra"
    [
      ( "defense-mechanics",
        [
          Alcotest.test_case "invisispec expose" `Quick
            test_invisispec_expose_installs_after_safety;
          Alcotest.test_case "stt transmitter gate" `Quick
            test_stt_blocks_tainted_transmitter;
        ] );
      ( "observers",
        [ Alcotest.test_case "pc sequence" `Quick test_pc_sequence_observer ] );
      ( "capacity",
        [
          Alcotest.test_case "rob pressure" `Quick test_rob_capacity_blocks_fetch;
          Alcotest.test_case "split access" `Quick test_split_access_pipeline_correctness;
        ] );
    ]
