(* Tests for leakage contracts and the leakage model: observation clauses,
   the speculative execution clause, determinism, and the refinement
   relationships between the contracts of Table 1. *)

open Amulet_isa
open Amulet_emu
open Amulet_contracts

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let state_of ?(pages = 1) ?(regs = []) ?(mem = []) () =
  let st = State.create ~pages () in
  State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
  List.iter (fun (r, v) -> State.write_reg st r v) regs;
  List.iter
    (fun (off, v) -> Memory.write st.State.mem Width.W64 (Memory.base st.State.mem + off) v)
    mem;
  st

let collect ?collect_taint contract src st =
  Leakage_model.collect ?collect_taint contract (Program.flatten (Asm.parse src)) st

let count_obs pred trace = List.length (List.filter pred trace)

(* ------------------------------------------------------------------ *)
(* Observation clauses                                                 *)
(* ------------------------------------------------------------------ *)

let simple_src = {|
  MOV RAX, qword ptr [R14 + 8]
  MOV qword ptr [R14 + 16], RAX
  ADD RBX, 1
|}

let test_ctseq_observations () =
  let r = collect Contract.ct_seq simple_src (state_of ()) in
  Alcotest.(check (option string)) "no fault" None r.Leakage_model.fault;
  let tr = r.Leakage_model.ctrace in
  checki "4 pcs (incl. exit)" 4 (count_obs (function Observation.Pc _ -> true | _ -> false) tr);
  checki "1 load addr" 1 (count_obs (function Observation.Load_addr _ -> true | _ -> false) tr);
  checki "1 store addr" 1 (count_obs (function Observation.Store_addr _ -> true | _ -> false) tr);
  checki "no values" 0 (count_obs (function Observation.Load_value _ -> true | _ -> false) tr);
  checki "no reg exposure" 0 (count_obs (function Observation.Reg_value _ -> true | _ -> false) tr)

let test_archseq_observations () =
  let st = state_of ~mem:[ 8, 0xCAFEL ] () in
  let r = collect Contract.arch_seq simple_src st in
  let tr = r.Leakage_model.ctrace in
  checki "1 loaded value" 1
    (count_obs (function Observation.Load_value 0xCAFEL -> true | _ -> false) tr);
  checki "register file exposed" Reg.count
    (count_obs (function Observation.Reg_value _ -> true | _ -> false) tr)

let branch_src = {|
.bb0:
  CMP RAX, 0
  JNZ .other
  MOV RBX, qword ptr [R14 + 64]
.other:
  EXIT
|}

let test_ctcond_explores_wrong_path () =
  (* RAX != 0: branch taken, the load is NOT on the architectural path but
     CT-COND explores it *)
  let seq = collect Contract.ct_seq branch_src (state_of ~regs:[ Reg.RAX, 1L ] ()) in
  let cond = collect Contract.ct_cond branch_src (state_of ~regs:[ Reg.RAX, 1L ] ()) in
  let loads tr = count_obs (function Observation.Load_addr _ -> true | _ -> false) tr in
  checki "ct-seq misses transient load" 0 (loads seq.Leakage_model.ctrace);
  checki "ct-cond sees transient load" 1 (loads cond.Leakage_model.ctrace);
  checkb "spec markers present" true
    (List.exists (function Observation.Spec_enter _ -> true | _ -> false)
       cond.Leakage_model.ctrace);
  checkb "spec steps counted" true (cond.Leakage_model.spec_steps > 0)

let test_ctcond_window_bounded () =
  (* the wrong path is bounded by the speculation window *)
  let contract = Contract.with_cond_speculation ~window:2 ~nesting:1 Contract.ct_seq in
  let r = collect contract branch_src (state_of ~regs:[ Reg.RAX, 1L ] ()) in
  checkb "spec steps bounded" true (r.Leakage_model.spec_steps <= 2)

let test_ctcond_nesting () =
  let src = {|
.bb0:
  CMP RAX, 0
  JNZ .a
  NOP
.a:
  CMP RBX, 0
  JNZ .b
  NOP
.b:
  EXIT
|} in
  let shallow = Contract.with_cond_speculation ~window:20 ~nesting:1 Contract.ct_seq in
  let deep = Contract.with_cond_speculation ~window:20 ~nesting:2 Contract.ct_seq in
  let st () = state_of ~regs:[ Reg.RAX, 1L; Reg.RBX, 1L ] () in
  let spec_enters r =
    count_obs (function Observation.Spec_enter _ -> true | _ -> false) r.Leakage_model.ctrace
  in
  let s1 = spec_enters (collect shallow src (st ())) in
  let s2 = spec_enters (collect deep src (st ())) in
  checkb "deeper nesting explores more" true (s2 > s1)

(* ------------------------------------------------------------------ *)
(* Determinism and rollback isolation                                  *)
(* ------------------------------------------------------------------ *)

let determinism_prop =
  QCheck2.Test.make ~name:"contract traces are deterministic" ~count:80
    QCheck2.Gen.(pair (int_bound 1000000) (oneofl [ 0; 1; 2 ]))
    (fun (seed, which) ->
      let open Amulet in
      let contract =
        match which with 0 -> Contract.ct_seq | 1 -> Contract.ct_cond | _ -> Contract.arch_seq
      in
      let rng = Rng.create ~seed in
      let flat = Generator.generate_flat rng in
      let input = Input.generate rng ~pages:1 in
      let r1 = Leakage_model.collect contract flat (Input.to_state input) in
      let r2 = Leakage_model.collect contract flat (Input.to_state input) in
      Int64.equal r1.Leakage_model.ctrace_hash r2.Leakage_model.ctrace_hash)

(* Exploring speculation must not corrupt the architectural result: CT-COND
   and CT-SEQ leave identical final states. *)
let rollback_isolation_prop =
  QCheck2.Test.make ~name:"speculative exploration rolls back cleanly" ~count:80
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let open Amulet in
      let rng = Rng.create ~seed in
      let flat = Generator.generate_flat rng in
      let input = Input.generate rng ~pages:1 in
      let r_seq = Leakage_model.collect Contract.ct_seq flat (Input.to_state input) in
      let r_cond = Leakage_model.collect Contract.ct_cond flat (Input.to_state input) in
      (r_seq.Leakage_model.fault <> None || r_cond.Leakage_model.fault <> None)
      || Int64.equal r_seq.Leakage_model.final_state_hash
           r_cond.Leakage_model.final_state_hash)

(* CT-COND refines CT-SEQ: equal CT-COND traces imply equal CT-SEQ traces. *)
let refinement_prop =
  QCheck2.Test.make ~name:"CT-COND refines CT-SEQ classes" ~count:50
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let open Amulet in
      let rng = Rng.create ~seed in
      let flat = Generator.generate_flat rng in
      let a = Input.generate rng ~pages:1 in
      let b = Input.generate rng ~pages:1 in
      let h c i = (Leakage_model.collect c flat (Input.to_state i)).Leakage_model.ctrace_hash in
      (* if CT-COND traces match, CT-SEQ traces must match too *)
      (not (Int64.equal (h Contract.ct_cond a) (h Contract.ct_cond b)))
      || Int64.equal (h Contract.ct_seq a) (h Contract.ct_seq b))

let test_archseq_distinguishes_values () =
  let src = "MOV RAX, qword ptr [R14 + 8]" in
  let r1 = collect Contract.arch_seq src (state_of ~mem:[ 8, 1L ] ()) in
  let r2 = collect Contract.arch_seq src (state_of ~mem:[ 8, 2L ] ()) in
  checkb "values split classes" false
    (Int64.equal r1.Leakage_model.ctrace_hash r2.Leakage_model.ctrace_hash);
  let r1 = collect Contract.ct_seq src (state_of ~mem:[ 8, 1L ] ()) in
  let r2 = collect Contract.ct_seq src (state_of ~mem:[ 8, 2L ] ()) in
  checkb "ct-seq ignores values" true
    (Int64.equal r1.Leakage_model.ctrace_hash r2.Leakage_model.ctrace_hash)

let test_contract_lookup () =
  checkb "find ct-seq" true (Contract.find "ct-seq" = Some Contract.ct_seq);
  checkb "find CT-COND" true (Contract.find "CT-COND" = Some Contract.ct_cond);
  checkb "find arch-seq" true (Contract.find "ARCH-SEQ" = Some Contract.arch_seq);
  checkb "unknown" true (Contract.find "nope" = None)

let test_observation_hash_order_sensitive () =
  let a = [ Observation.Pc 1; Observation.Pc 2 ] in
  let b = [ Observation.Pc 2; Observation.Pc 1 ] in
  checkb "order matters" false
    (Int64.equal (Observation.hash_trace a) (Observation.hash_trace b));
  checkb "equal traces equal hashes" true
    (Int64.equal (Observation.hash_trace a) (Observation.hash_trace a))

(* boosting must also preserve ARCH-SEQ traces, which expose the register
   file: mutants may only vary memory the contract never observes *)
let archseq_boost_soundness_prop =
  QCheck2.Test.make ~name:"taint-directed mutation preserves ARCH-SEQ ctrace" ~count:40
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let open Amulet in
      let rng = Rng.create ~seed in
      let flat = Generator.generate_flat rng in
      let input = Input.generate rng ~pages:1 in
      let r =
        Leakage_model.collect ~collect_taint:true Contract.arch_seq flat
          (Input.to_state input)
      in
      match r.Leakage_model.fault, r.Leakage_model.taint with
      | Some _, _ | _, None -> true
      | None, Some taint ->
          let mutant = Input.mutate_free rng taint input in
          (* registers are contract-observed, so they must be untouched *)
          Array.for_all2 Int64.equal input.Input.regs mutant.Input.regs
          &&
          let r' = Leakage_model.collect Contract.arch_seq flat (Input.to_state mutant) in
          r'.Leakage_model.fault <> None
          || Int64.equal r.Leakage_model.ctrace_hash r'.Leakage_model.ctrace_hash)

let () =
  Alcotest.run "contracts"
    [
      ( "observation-clauses",
        [
          Alcotest.test_case "ct-seq" `Quick test_ctseq_observations;
          Alcotest.test_case "arch-seq" `Quick test_archseq_observations;
          Alcotest.test_case "arch-seq distinguishes values" `Quick
            test_archseq_distinguishes_values;
          Alcotest.test_case "contract lookup" `Quick test_contract_lookup;
          Alcotest.test_case "hash order-sensitive" `Quick
            test_observation_hash_order_sensitive;
        ] );
      ( "execution-clauses",
        [
          Alcotest.test_case "ct-cond wrong path" `Quick test_ctcond_explores_wrong_path;
          Alcotest.test_case "window bounded" `Quick test_ctcond_window_bounded;
          Alcotest.test_case "nesting" `Quick test_ctcond_nesting;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest determinism_prop;
          QCheck_alcotest.to_alcotest rollback_isolation_prop;
          QCheck_alcotest.to_alcotest refinement_prop;
          QCheck_alcotest.to_alcotest archseq_boost_soundness_prop;
        ] );
    ]
