examples/amplification.mli:
