examples/root_cause.mli:
