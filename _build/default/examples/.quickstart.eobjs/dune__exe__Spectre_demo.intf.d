examples/spectre_demo.mli:
