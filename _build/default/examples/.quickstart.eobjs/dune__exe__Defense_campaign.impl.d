examples/defense_campaign.ml: Amulet Amulet_defenses Analysis Campaign Defense Format Fuzzer List Option Printf Reproducers String Violation
