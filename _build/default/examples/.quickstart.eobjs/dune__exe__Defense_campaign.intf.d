examples/defense_campaign.mli:
