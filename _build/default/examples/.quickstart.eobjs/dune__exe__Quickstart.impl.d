examples/quickstart.ml: Amulet Amulet_defenses Campaign Defense Format Fuzzer Violation
