examples/quickstart.mli:
