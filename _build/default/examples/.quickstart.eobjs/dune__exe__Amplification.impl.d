examples/amplification.ml: Amulet Amulet_defenses Analysis Campaign Defense Format Fuzzer List Printf String Unix
