examples/root_cause.ml: Amulet Amulet_defenses Amulet_isa Analysis Defense Executor Format Fuzzer Inst List Program Reproducers Stats Utrace Violation
