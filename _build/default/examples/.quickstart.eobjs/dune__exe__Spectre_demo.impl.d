examples/spectre_demo.ml: Amulet Amulet_contracts Amulet_emu Amulet_isa Amulet_uarch Asm Config Contract Format Int64 Leakage_model List Memory Program Reg Reproducers Simulator State Width
