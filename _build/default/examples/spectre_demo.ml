(* Spectre on the simulator, by hand: run classic Spectre-v1 and Spectre-v4
   victim gadgets on the baseline out-of-order core and watch the transient
   side effects appear in the final cache state — then verify that the
   leakage contract machinery classifies the executions correctly.

   Run with:  dune exec examples/spectre_demo.exe *)

open Amulet
open Amulet_isa
open Amulet_emu
open Amulet_contracts
open Amulet_uarch

(* A Spectre-v1 victim: the bounds check (CMP/JNZ) is trained or mispredicted;
   the protected load executes transiently and installs a line whose address
   encodes RBX. *)
let v1_src = {|
.bb0:
  AND RBX, 0b111111111000000
  CMP RAX, 0
  JNZ .done
  MOV RCX, qword ptr [R14 + RBX]
.done:
  MOV RDX, qword ptr [R14 + 3584]
  EXIT
|}

let state_with ~rax ~rbx =
  let st = State.create ~pages:1 () in
  State.write_reg st Reg.RAX rax;
  State.write_reg st Reg.RBX rbx;
  State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
  st

let sandbox_lines sim =
  List.filter (fun l -> l < Simulator.prime_base) (Simulator.l1d_tags sim)

let pp_lines fmt lines =
  List.iter (fun l -> Format.fprintf fmt "0x%x " l) lines

let run_v1 ~rax ~rbx =
  let flat = Program.flatten (Asm.parse v1_src) in
  let sim = Simulator.create ~boot_insts:1000 ~pages:1 Config.default in
  ignore (Simulator.prime_with_fills sim);
  Simulator.load_state sim (state_with ~rax ~rbx);
  let stats = Simulator.run sim flat in
  Format.printf
    "  rax=%Ld rbx=0x%Lx: %d cycles, %d squashes, sandbox lines in L1D: %a@."
    rax rbx stats.Simulator.cycles stats.Simulator.squashes pp_lines
    (sandbox_lines sim)

let demo_v1 () =
  Format.printf "=== Spectre-v1: transient loads modify the cache ===@.";
  Format.printf "%s@." v1_src;
  Format.printf
    "With rax<>0 the branch is taken and the protected load never commits;@.\
     the branch predictor initially guesses not-taken, so the load still@.\
     executes transiently and its line (0x1000 + rbx) lands in the L1D:@.";
  run_v1 ~rax:1L ~rbx:0x200L;
  run_v1 ~rax:1L ~rbx:0x400L;
  Format.printf "With rax=0 the load is architectural (same line, no squash):@.";
  run_v1 ~rax:0L ~rbx:0x200L

(* Contract view of the same executions: under CT-SEQ two rax<>0 runs with
   different rbx are indistinguishable (the transient load is invisible to
   the contract), which is exactly why the cache difference above is a
   contract violation.  CT-COND explores the mispredicted path and exposes
   the transient address, "allowing" this leak. *)
let demo_contracts () =
  Format.printf "@.=== The contract view ===@.";
  let flat = Program.flatten (Asm.parse v1_src) in
  let trace c ~rbx =
    (Leakage_model.collect c flat (state_with ~rax:1L ~rbx)).Leakage_model.ctrace_hash
  in
  let show c =
    let a = trace c ~rbx:0x200L and b = trace c ~rbx:0x400L in
    Format.printf "  %-8s rbx=0x200 vs rbx=0x400: contract traces %s@."
      c.Contract.name
      (if Int64.equal a b then "EQUAL  (leak would be a violation)"
       else "DIFFER (leak is expected/allowed)")
  in
  show Contract.ct_seq;
  show Contract.ct_cond

(* Spectre-v4: a younger load bypasses an older store whose address resolves
   late, transiently reads stale data, and a dependent load transmits it. *)
let demo_v4 () =
  Format.printf "@.=== Spectre-v4: store bypass ===@.";
  let r = Reproducers.spectre_v4 in
  Format.printf "%s@." r.Reproducers.asm;
  Format.printf
    "The store's address depends on a cold load, so the memory-dependence@.\
     predictor lets the younger load of [R14+128] run ahead; it reads the@.\
     stale secret and encodes it in the dependent load's line before the@.\
     violation is detected and replayed:@.";
  let flat = Reproducers.flat r in
  let run secret =
    let st = state_with ~rax:0L ~rbx:0L in
    State.write_reg st Reg.RDI 0x40L;
    Memory.write st.State.mem Width.W64 (Memory.base st.State.mem + 0x40) 0x80L;
    Memory.write st.State.mem Width.W64 (Memory.base st.State.mem + 128) secret;
    let sim = Simulator.create ~boot_insts:1000 ~pages:1 Config.default in
    ignore (Simulator.prime_with_fills sim);
    Simulator.load_state sim st;
    ignore (Simulator.run sim flat);
    Format.printf "  stale secret 0x%Lx -> sandbox lines: %a@." secret pp_lines
      (sandbox_lines sim)
  in
  run 0x200L;
  run 0x600L;
  Format.printf
    "The architectural result is identical in both runs (the bypassing load@.\
     replays and reads the stored zero), yet the caches differ.@."

let () =
  demo_v1 ();
  demo_contracts ();
  demo_v4 ()
