(** Shared architectural semantics of the test ISA.

    Both the sequential emulator and the out-of-order pipeline's execute
    stage call {!step}, so a semantics bug affects both sides identically
    and cannot masquerade as a contract violation. *)

open Amulet_isa

type machine = {
  read_reg : Reg.t -> int64;
  write_reg : Width.t -> Reg.t -> int64 -> unit;
  read_flags : unit -> Flags.t;
  write_flags : Flags.t -> unit;
  load : Width.t -> int -> int64;
  store : Width.t -> int -> int64 -> unit;
}
(** The abstract machine {!step} runs against. *)

type outcome = Next | Jump of int | Exited

val effective_address : read_reg:(Reg.t -> int64) -> Operand.mem -> int
(** [base + index*scale + disp], truncated to 48 bits. *)

val mem_request :
  read_reg:(Reg.t -> int64) ->
  Inst.t ->
  (int * Width.t * [ `Load | `Store | `Rmw ]) option
(** The memory access the instruction will perform given current register
    values. *)

val step : machine -> Inst.t -> outcome
(** Execute one instruction through the machine interface. *)

val branch_taken : Inst.t -> Flags.t -> bool
(** Direction of a branch under the given flags.  Raises [Invalid_argument]
    on non-branches. *)
