lib/emu/state.mli: Amulet_isa Flags Format Memory Reg Width
