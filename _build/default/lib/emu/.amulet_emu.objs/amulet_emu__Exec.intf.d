lib/emu/exec.mli: Amulet_isa Flags Inst Operand Reg Width
