lib/emu/taint.mli: Amulet_isa Inst Memory Reg Set Width
