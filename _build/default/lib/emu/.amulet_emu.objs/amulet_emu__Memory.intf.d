lib/emu/memory.mli: Amulet_isa Width
