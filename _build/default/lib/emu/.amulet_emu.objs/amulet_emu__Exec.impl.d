lib/emu/exec.ml: Amulet_isa Cond Flags Inst Int64 Operand Reg Width
