lib/emu/state.ml: Amulet_isa Array Flags Format Int64 List Memory Reg Width
