lib/emu/memory.ml: Amulet_isa Bytes Char Int64 String Width
