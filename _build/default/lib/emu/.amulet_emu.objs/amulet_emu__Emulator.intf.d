lib/emu/emulator.mli: Amulet_isa Inst Program State Width
