lib/emu/emulator.ml: Amulet_isa Exec Inst Memory Printf Program State Width
