lib/emu/taint.ml: Amulet_isa Array Inst Int List Memory Operand Reg Set Width
