(** Architectural machine state: register file, flags and sandbox memory. *)

open Amulet_isa

type t = {
  regs : int64 array;  (** indexed by {!Reg.index} *)
  mutable flags : Flags.t;
  mem : Memory.t;
}

let create ?base ~pages () =
  {
    regs = Array.make Reg.count 0L;
    flags = Flags.initial;
    mem = Memory.create ?base ~pages ();
  }

let read_reg t r = t.regs.(Reg.index r)
let write_reg t r v = t.regs.(Reg.index r) <- v

(** Width-aware register write following x86 conventions: 64-bit writes
    replace, 32-bit writes zero-extend, 16- and 8-bit writes merge into the
    low bits of the old value. *)
let write_reg_width t w r v =
  let old = read_reg t r in
  let nv =
    match w with
    | Width.W64 -> v
    | Width.W32 -> Width.truncate Width.W32 v
    | Width.W16 | Width.W8 ->
        Int64.logor
          (Int64.logand old (Int64.lognot (Width.mask w)))
          (Width.truncate w v)
  in
  write_reg t r nv

(** Snapshot of registers and flags (memory is rolled back separately via
    the journal). *)
type reg_snapshot = { snap_regs : int64 array; snap_flags : Flags.t }

let snapshot_regs t = { snap_regs = Array.copy t.regs; snap_flags = t.flags }

let restore_regs t s =
  Array.blit s.snap_regs 0 t.regs 0 (Array.length t.regs);
  t.flags <- s.snap_flags

let copy t = { regs = Array.copy t.regs; flags = t.flags; mem = Memory.copy t.mem }

let equal a b =
  Array.for_all2 Int64.equal a.regs b.regs
  && Flags.equal a.flags b.flags
  && Memory.equal a.mem b.mem

(** Digest of the full architectural state (regs, flags, memory). *)
let hash t =
  let h = ref (Memory.hash t.mem) in
  Array.iter (fun v -> h := Int64.add (Int64.mul !h 31L) v) t.regs;
  Int64.add (Int64.mul !h 31L) (Int64.of_int (Flags.to_int t.flags))

let pp fmt t =
  List.iter
    (fun r -> Format.fprintf fmt "%-4s = 0x%Lx@." (Reg.name r) (read_reg t r))
    Reg.all;
  Format.fprintf fmt "flags = %a@." Flags.pp t.flags
