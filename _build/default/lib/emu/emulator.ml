(** Sequential architectural emulator.

    Stands in for the Unicorn engine in the original AMuLeT: executes a
    flattened test program over a {!State.t}, firing hooks for instruction
    retirement and memory accesses.  Supports lightweight checkpointing
    (registers snapshot + memory write journal) so the leakage model can
    explore mispredicted paths and roll back, per the contract's execution
    clause. *)

open Amulet_isa

(** Fired once per executed instruction, before its effects are applied. *)
type inst_hook = pc:int -> index:int -> Inst.t -> unit

(** Fired for every memory access performed by an instruction. *)
type mem_hook =
  kind:[ `Load | `Store ] -> pc:int -> addr:int -> width:Width.t -> value:int64 -> unit

type hooks = { on_inst : inst_hook option; on_mem : mem_hook option }

let no_hooks = { on_inst = None; on_mem = None }

type t = {
  flat : Program.flat;
  state : State.t;
  mutable index : int;  (** next instruction index *)
  mutable steps : int;
  mutable exited : bool;
  mutable fault : string option;
      (** set when execution escapes the code region *)
}

let create flat state = { flat; state; index = 0; steps = 0; exited = false; fault = None }

let pc t = Program.pc_of_index t.flat t.index
let state t = t.state
let steps t = t.steps
let exited t = t.exited
let fault t = t.fault

let reset t =
  t.index <- 0;
  t.steps <- 0;
  t.exited <- false;
  t.fault <- None

(* Build the Exec.machine view over architectural state, with hooks. *)
let machine t (hooks : hooks) ~pc : Exec.machine =
  let mem = t.state.State.mem in
  let fire kind addr width value =
    match hooks.on_mem with
    | None -> ()
    | Some h -> h ~kind ~pc ~addr ~width ~value
  in
  {
    Exec.read_reg = State.read_reg t.state;
    write_reg = (fun w r v -> State.write_reg_width t.state w r v);
    read_flags = (fun () -> t.state.State.flags);
    write_flags = (fun f -> t.state.State.flags <- f);
    load =
      (fun w addr ->
        let v = Memory.read mem w addr in
        fire `Load addr w v;
        v);
    store =
      (fun w addr v ->
        fire `Store addr w v;
        Memory.write mem w addr v);
  }

(** Execute the instruction at the current index.  Returns [`Exit] when the
    program has terminated (or faulted), [`Continue] otherwise. *)
let step ?(hooks = no_hooks) t =
  if t.exited then `Exit
  else if t.index < 0 || t.index >= Program.length t.flat then begin
    t.fault <- Some (Printf.sprintf "control flow escaped code region at index %d" t.index);
    t.exited <- true;
    `Exit
  end
  else begin
    let inst = Program.get t.flat t.index in
    let pc = Program.pc_of_index t.flat t.index in
    (match hooks.on_inst with None -> () | Some h -> h ~pc ~index:t.index inst);
    let mc = machine t hooks ~pc in
    t.steps <- t.steps + 1;
    match Exec.step mc inst with
    | Exec.Next ->
        t.index <- t.index + 1;
        `Continue
    | Exec.Jump target ->
        t.index <- target;
        `Continue
    | Exec.Exited ->
        t.exited <- true;
        `Exit
  end

(** Run to completion (or until [max_steps], guarding against ill-formed
    cyclic programs).  Returns the number of instructions executed. *)
let run ?(hooks = no_hooks) ?(max_steps = 100_000) t =
  let rec go () =
    if t.steps >= max_steps then begin
      t.fault <- Some "step limit exceeded";
      t.exited <- true
    end
    else
      match step ~hooks t with `Exit -> () | `Continue -> go ()
  in
  go ();
  t.steps

(** Convenience: execute program [flat] over [state] from scratch. *)
let execute ?hooks ?max_steps flat state =
  let t = create flat state in
  ignore (run ?hooks ?max_steps t);
  t

(* ------------------------------------------------------------------ *)
(* Checkpointing (for speculative path exploration)                    *)
(* ------------------------------------------------------------------ *)

type checkpoint = {
  cp_index : int;
  cp_steps : int;
  cp_exited : bool;
  cp_regs : State.reg_snapshot;
  cp_mark : Memory.mark;
}

(** Take a checkpoint.  Enables memory journaling as a side effect; the
    journal stays enabled until {!commit} discards all checkpoints. *)
let checkpoint t : checkpoint =
  Memory.set_journaling t.state.State.mem true;
  {
    cp_index = t.index;
    cp_steps = t.steps;
    cp_exited = t.exited;
    cp_regs = State.snapshot_regs t.state;
    cp_mark = Memory.mark t.state.State.mem;
  }

(** Roll execution back to a checkpoint (registers, flags, memory, PC). *)
let restore t (cp : checkpoint) =
  State.restore_regs t.state cp.cp_regs;
  Memory.rollback t.state.State.mem cp.cp_mark;
  t.index <- cp.cp_index;
  t.steps <- cp.cp_steps;
  t.exited <- cp.cp_exited;
  t.fault <- None

(** Discard checkpoint tracking and stop journaling. *)
let commit t =
  Memory.set_journaling t.state.State.mem false;
  Memory.clear_journal t.state.State.mem

(** Force the next instruction index (used by the leakage model to explore
    the mispredicted direction of a branch). *)
let set_index t i = t.index <- i

let current_index t = t.index
