(** Input-taint tracking for input boosting.

    Revizor mutates inputs while "preserving only the parts influencing the
    contract trace"; this module computes which parts those are.  Every
    input atom — an initial register value or an 8-byte sandbox word — gets a
    label; labels flow through the dataflow as the leakage model executes the
    program, and atoms whose labels reach an observation (a memory address, a
    branch condition, or — for value-exposing contracts — loaded data) are
    {e relevant}.  Randomizing the non-relevant atoms then provably preserves
    the contract trace (the tracking is conservative), while changing the
    speculative behaviour the microarchitectural trace depends on. *)

open Amulet_isa
module Atom_set = Set.Make (Int)

(** Input atoms. *)
type atom = Areg of Reg.t | Aword of int  (** sandbox word index *)

let atom_of_reg r = Reg.index r
let atom_of_word k = Reg.count + k

let classify_atom id =
  if id < Reg.count then Areg (Reg.of_index id) else Aword (id - Reg.count)

type t = {
  reg_taint : Atom_set.t array;
  word_taint : Atom_set.t array;
  mutable flags_taint : Atom_set.t;
  mutable relevant : Atom_set.t;
  mem_base : int;
  mem_words : int;
}

let create (mem : Memory.t) =
  let words = Memory.words mem in
  {
    reg_taint = Array.init Reg.count (fun i -> Atom_set.singleton i);
    word_taint = Array.init words (fun k -> Atom_set.singleton (atom_of_word k));
    flags_taint = Atom_set.empty;
    relevant = Atom_set.empty;
    mem_base = Memory.base mem;
    mem_words = words;
  }

let union_list sets = List.fold_left Atom_set.union Atom_set.empty sets

let reg_taints t regs = union_list (List.map (fun r -> t.reg_taint.(Reg.index r)) regs)

(* Word indices touched by an access of [width] at [addr]; empty when the
   access falls outside the sandbox. *)
let touched_words t addr width =
  let first = (addr - t.mem_base) / 8 in
  let last = (addr + Width.bytes width - 1 - t.mem_base) / 8 in
  let rec collect i acc =
    if i > last then List.rev acc
    else if i >= 0 && i < t.mem_words then collect (i + 1) (i :: acc)
    else collect (i + 1) acc
  in
  if addr < t.mem_base then [] else collect first []

let word_taints t addr width =
  union_list (List.map (fun k -> t.word_taint.(k)) (touched_words t addr width))

(** Propagate taint across one instruction.  [request] is the memory access
    the instruction is about to perform (resolved with pre-execution register
    values); [observe_values] marks loaded data as contract-relevant
    (ARCH-SEQ-style contracts). *)
let step t ~(inst : Inst.t) ~request ~observe_values =
  let sources = reg_taints t (Inst.source_regs inst) in
  let flag_in = if Inst.reads_flags inst then t.flags_taint else Atom_set.empty in
  let addr_taint, loaded_taint =
    match request with
    | None -> Atom_set.empty, Atom_set.empty
    | Some (addr, width, dir) ->
        let addr_regs =
          match Inst.mem_access inst with
          | Some (m, _, _) -> Operand.address_regs (Operand.Mem m)
          | None -> []
        in
        let a = reg_taints t addr_regs in
        let l =
          match dir with
          | `Load | `Rmw -> word_taints t addr width
          | `Store -> Atom_set.empty
        in
        (* the address itself is always observable (CT-SEQ observation clause) *)
        t.relevant <- Atom_set.union t.relevant a;
        if observe_values && (dir = `Load || dir = `Rmw) then
          t.relevant <- Atom_set.union t.relevant (Atom_set.union l a);
        a, l
  in
  let data_in = union_list [ sources; flag_in; loaded_taint; addr_taint ] in
  if Inst.writes_flags inst then t.flags_taint <- data_in;
  List.iter
    (fun r -> t.reg_taint.(Reg.index r) <- data_in)
    (Inst.dest_regs inst);
  (match request with
  | Some (addr, width, (`Store | `Rmw)) ->
      (* Words fully covered by the store take a strong update.  This is
         sound for boosting because the store's address atoms were just
         added to the relevant (pinned) set above, so the overwrite is
         deterministic across mutants.  Partially covered words keep the
         conservative weak update. *)
      let store_end = addr + Width.bytes width in
      List.iter
        (fun k ->
          let word_start = t.mem_base + (k * 8) in
          let fully_covered = addr <= word_start && word_start + 8 <= store_end in
          t.word_taint.(k) <-
            (if fully_covered then data_in
             else Atom_set.union t.word_taint.(k) data_in))
        (touched_words t addr width)
  | Some (_, _, `Load) | None -> ());
  (* control flow is part of every contract's observation clause *)
  if Inst.is_cond_branch inst then
    t.relevant <- Atom_set.union t.relevant t.flags_taint

let relevant t = t.relevant

(** Mark every register atom contract-relevant (used for contracts whose
    observation clause exposes the initial register file, e.g. ARCH-SEQ):
    boosting must then mutate only memory. *)
let mark_all_regs_relevant t =
  List.iteri
    (fun i _ -> if i < Reg.count then t.relevant <- Atom_set.add i t.relevant)
    Reg.all

let is_relevant_reg t r = Atom_set.mem (atom_of_reg r) t.relevant
let is_relevant_word t k = Atom_set.mem (atom_of_word k) t.relevant

(** All atoms that are safe to randomize (the complement of the relevant
    set), as a list. *)
let free_atoms t =
  let acc = ref [] in
  for k = t.mem_words - 1 downto 0 do
    if not (is_relevant_word t k) then acc := Aword k :: !acc
  done;
  List.iter
    (fun r -> if not (is_relevant_reg t r) then acc := Areg r :: !acc)
    (List.filteri (fun i _ -> i < Reg.count) Reg.all);
  !acc
