(** Shared architectural semantics of the test ISA.

    Both the sequential emulator (the leakage model's substrate, standing in
    for Unicorn) and the out-of-order simulator's execute stage call
    {!step}, so any semantics bug affects both sides identically and cannot
    masquerade as a contract violation.  The caller supplies a {!machine}
    interface; the emulator backs it with architectural state, the pipeline
    with renamed operand values and its load/store queue. *)

open Amulet_isa

(** Abstract machine interface consumed by {!step}. Addresses are absolute
    (virtual = physical). *)
type machine = {
  read_reg : Reg.t -> int64;
  write_reg : Width.t -> Reg.t -> int64 -> unit;
      (** width-aware write (see {!State.write_reg_width}) *)
  read_flags : unit -> Flags.t;
  write_flags : Flags.t -> unit;
  load : Width.t -> int -> int64;
  store : Width.t -> int -> int64 -> unit;
}

(** Control-flow outcome of one instruction. [Jump] carries the absolute
    instruction index of the target. *)
type outcome = Next | Jump of int | Exited

(** Effective address of a memory operand: [base + index*scale + disp],
    truncated to 48 bits (canonical user-space addresses). *)
let effective_address ~read_reg (m : Operand.mem) =
  let base = read_reg m.base in
  let index =
    match m.index with
    | None -> 0L
    | Some r -> Int64.mul (read_reg r) (Int64.of_int m.scale)
  in
  let ea = Int64.add (Int64.add base index) (Int64.of_int m.disp) in
  Int64.to_int (Int64.logand ea 0x7FFF_FFFF_FFFFL)

(** The memory request an instruction will make, given current register
    values: [(address, width, direction)]. *)
let mem_request ~read_reg inst =
  match Inst.mem_access inst with
  | None -> None
  | Some (m, w, dir) -> Some (effective_address ~read_reg m, w, dir)

(* Read an operand value at width [w]. *)
let read_operand (mc : machine) w = function
  | Operand.Reg r -> Width.truncate w (mc.read_reg r)
  | Operand.Imm i -> Width.truncate w i
  | Operand.Mem m -> mc.load w (effective_address ~read_reg:mc.read_reg m)

(* Write a value to a destination operand at width [w]. *)
let write_operand (mc : machine) w dst v =
  match dst with
  | Operand.Reg r -> mc.write_reg w r v
  | Operand.Mem m -> mc.store w (effective_address ~read_reg:mc.read_reg m) v
  | Operand.Imm _ -> invalid_arg "Exec: immediate destination"

(* ADC/SBB thread the carry through two-step unsigned arithmetic. *)
let add_with_carry w a b cin =
  let s1 = Width.truncate w (Int64.add a b) in
  let c1 =
    match w with
    | Width.W64 -> Int64.unsigned_compare s1 a < 0
    | _ -> Int64.unsigned_compare (Int64.add a b) (Width.mask w) > 0
  in
  let r = Width.truncate w (Int64.add s1 (if cin then 1L else 0L)) in
  let c2 = cin && Int64.equal s1 (Width.mask w) in
  let sa = Width.is_negative w a
  and sb = Width.is_negative w b
  and sr = Width.is_negative w r in
  ( r,
    {
      Flags.zf = Int64.equal r 0L;
      sf = sr;
      cf = c1 || c2;
      of_ = sa = sb && sr <> sa;
      pf = Flags.parity_of r;
    } )

let sub_with_borrow w a b cin =
  let s1 = Width.truncate w (Int64.sub a b) in
  let b1 = Int64.unsigned_compare a b < 0 in
  let r = Width.truncate w (Int64.sub s1 (if cin then 1L else 0L)) in
  let b2 = cin && Int64.equal s1 0L in
  let sa = Width.is_negative w a
  and sb = Width.is_negative w b
  and sr = Width.is_negative w r in
  ( r,
    {
      Flags.zf = Int64.equal r 0L;
      sf = sr;
      cf = b1 || b2;
      of_ = sa <> sb && sr <> sa;
      pf = Flags.parity_of r;
    } )

(* [cin] is the incoming carry (only consulted by ADC/SBB). *)
let apply_binop op w a b ~cin =
  match op with
  | Inst.Add -> Width.truncate w (Int64.add a b)
  | Inst.Adc -> fst (add_with_carry w a b cin)
  | Inst.Sub -> Width.truncate w (Int64.sub a b)
  | Inst.Sbb -> fst (sub_with_borrow w a b cin)
  | Inst.And -> Int64.logand a b
  | Inst.Or -> Int64.logor a b
  | Inst.Xor -> Int64.logxor a b

let binop_flags op w a b result ~cin =
  match op with
  | Inst.Add -> Flags.of_add w a b result
  | Inst.Adc -> snd (add_with_carry w a b cin)
  | Inst.Sub -> Flags.of_sub w a b result
  | Inst.Sbb -> snd (sub_with_borrow w a b cin)
  | Inst.And | Inst.Or | Inst.Xor -> Flags.of_logic_result w result

(* Byte-reverse the low [bytes w] bytes. *)
let bswap w v =
  let n = Width.bytes w in
  let r = ref 0L in
  for i = 0 to n - 1 do
    let byte = Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL in
    r := Int64.logor !r (Int64.shift_left byte (8 * (n - 1 - i)))
  done;
  !r

(* Rotate within the width; returns the result and the new CF (the bit
   rotated across the boundary).  ZF/SF/PF are unaffected by x86 rotates. *)
let rotate k w a count =
  let bits = Width.bits w in
  let count = count mod bits in
  if count = 0 then None
  else
    let a = Width.truncate w a in
    let r =
      match k with
      | `Rol ->
          Width.truncate w
            (Int64.logor (Int64.shift_left a count)
               (Int64.shift_right_logical a (bits - count)))
      | `Ror ->
          Width.truncate w
            (Int64.logor
               (Int64.shift_right_logical a count)
               (Int64.shift_left a (bits - count)))
    in
    let cf =
      match k with
      | `Rol -> Int64.equal (Int64.logand r 1L) 1L
      | `Ror -> Width.is_negative w r
    in
    Some (r, cf)

let shift_result k w a count =
  let bits = Width.bits w in
  let count = count land (if w = Width.W64 then 63 else 31) in
  if count = 0 then a, None
  else if count >= bits then begin
    (* shifts >= width: result defined as 0 (or sign for SAR); CF cleared *)
    match k with
    | Inst.Shl | Inst.Shr -> 0L, Some false
    | Inst.Sar ->
        let r = if Width.is_negative w a then Width.mask w else 0L in
        r, Some (Width.is_negative w a)
    | Inst.Rol | Inst.Ror -> invalid_arg "Exec: rotate handled separately"
  end
  else
    match k with
    | Inst.Shl ->
        let r = Width.truncate w (Int64.shift_left a count) in
        let last = Int64.logand (Int64.shift_left a (count - 1)) (Width.sign_bit w) in
        r, Some (not (Int64.equal last 0L))
    | Inst.Shr ->
        let r = Int64.shift_right_logical (Width.truncate w a) count in
        let last = Int64.logand (Int64.shift_right_logical (Width.truncate w a) (count - 1)) 1L in
        r, Some (Int64.equal last 1L)
    | Inst.Sar ->
        let sx = Width.sign_extend w a in
        let r = Width.truncate w (Int64.shift_right sx count) in
        let last = Int64.logand (Int64.shift_right sx (count - 1)) 1L in
        r, Some (Int64.equal last 1L)
    | Inst.Rol | Inst.Ror -> invalid_arg "Exec: rotate handled separately"

(** Execute one instruction.  All reads happen through [mc]; the caller is
    responsible for ordering (the emulator executes sequentially, the
    pipeline calls this at completion time with captured operand values). *)
let step (mc : machine) (inst : Inst.t) : outcome =
  match inst with
  | Inst.Nop | Inst.Fence -> Next
  | Inst.Exit -> Exited
  | Inst.Binop (op, w, dst, src) ->
      let a = read_operand mc w dst in
      let b = read_operand mc w src in
      let cin = (mc.read_flags ()).Flags.cf in
      let r = apply_binop op w a b ~cin in
      mc.write_flags (binop_flags op w a b r ~cin);
      write_operand mc w dst r;
      Next
  | Inst.Mov (w, dst, src) ->
      let v = read_operand mc w src in
      write_operand mc w dst v;
      Next
  | Inst.Cmp (w, a, b) ->
      let va = read_operand mc w a in
      let vb = read_operand mc w b in
      mc.write_flags (Flags.of_sub w va vb (Width.truncate w (Int64.sub va vb)));
      Next
  | Inst.Test (w, a, b) ->
      let va = read_operand mc w a in
      let vb = read_operand mc w b in
      mc.write_flags (Flags.of_logic_result w (Int64.logand va vb));
      Next
  | Inst.Unop (u, w, dst) -> (
      let a = read_operand mc w dst in
      match u with
      | Inst.Not ->
          (* NOT does not affect flags *)
          write_operand mc w dst (Width.truncate w (Int64.lognot a));
          Next
      | Inst.Bswap ->
          (* BSWAP does not affect flags *)
          write_operand mc w dst (bswap w a);
          Next
      | Inst.Neg ->
          let r = Width.truncate w (Int64.neg a) in
          let f = Flags.of_sub w 0L a r in
          (* x86: CF set iff source non-zero *)
          mc.write_flags { f with cf = not (Int64.equal a 0L) };
          write_operand mc w dst r;
          Next
      | Inst.Inc ->
          let r = Width.truncate w (Int64.add a 1L) in
          let old_cf = (mc.read_flags ()).cf in
          mc.write_flags (Flags.of_incdec w ~old_cf a 1L r);
          write_operand mc w dst r;
          Next
      | Inst.Dec ->
          let r = Width.truncate w (Int64.sub a 1L) in
          let old_cf = (mc.read_flags ()).cf in
          mc.write_flags (Flags.of_incdec w ~old_cf a (-1L) r);
          write_operand mc w dst r;
          Next)
  | Inst.Shift ((Inst.Rol | Inst.Ror) as k, w, dst, count) -> (
      let a = read_operand mc w dst in
      let kind = match k with Inst.Rol -> `Rol | _ -> `Ror in
      match rotate kind w a count with
      | None -> Next
      | Some (r, cf) ->
          (* rotates only touch CF (and OF for count 1, modeled as 0) *)
          let old = mc.read_flags () in
          mc.write_flags { old with Flags.cf; of_ = false };
          write_operand mc w dst r;
          Next)
  | Inst.Shift (k, w, dst, count) -> (
      let a = read_operand mc w dst in
      match shift_result k w a count with
      | _, None -> Next (* count 0: no result write needed, flags unchanged *)
      | r, Some last_out ->
          let of_ =
            if count = 1 then
              match k with
              | Inst.Shl -> Width.is_negative w r <> last_out
              | Inst.Shr -> Width.is_negative w a
              | Inst.Sar | Inst.Rol | Inst.Ror -> false
            else false
          in
          mc.write_flags (Flags.of_shift w r ~last_out ~of_);
          write_operand mc w dst r;
          Next)
  | Inst.Imul (w, r, src) ->
      let a = Width.truncate w (mc.read_reg r) in
      let b = read_operand mc w src in
      let sa = Width.sign_extend w a and sb = Width.sign_extend w b in
      let res = Width.truncate w (Int64.mul sa sb) in
      (* Deterministic simplification of IMUL flags: ZF/SF/PF from the result,
         CF/OF cleared (the generator never branches on flags of IMUL). *)
      mc.write_flags (Flags.of_logic_result w res);
      mc.write_reg w r res;
      Next
  | Inst.Movx (ext, w, r, src) ->
      let v = read_operand mc w src in
      let extended =
        match ext with
        | Inst.Zero -> Width.truncate w v
        | Inst.Sign -> Width.sign_extend w v
      in
      mc.write_reg Width.W64 r extended;
      Next
  | Inst.Xchg (w, a, b) ->
      let va = Width.truncate w (mc.read_reg a) in
      let vb = Width.truncate w (mc.read_reg b) in
      mc.write_reg w a vb;
      mc.write_reg w b va;
      Next
  | Inst.Lea (r, m) ->
      mc.write_reg Width.W64 r
        (Int64.of_int (effective_address ~read_reg:mc.read_reg m));
      Next
  | Inst.Setcc (c, dst) ->
      let v = if Cond.eval c (mc.read_flags ()) then 1L else 0L in
      write_operand mc Width.W8 dst v;
      Next
  | Inst.Cmovcc (c, w, r, src) ->
      (* The source (including a memory source) is always read, as on real
         hardware; only the register write is conditional. *)
      let v = read_operand mc w src in
      if Cond.eval c (mc.read_flags ()) then mc.write_reg w r v;
      Next
  | Inst.Jmp (Inst.Abs t) -> Jump t
  | Inst.Jcc (c, Inst.Abs t) ->
      if Cond.eval c (mc.read_flags ()) then Jump t else Next
  | Inst.Jmp (Inst.Label l) | Inst.Jcc (_, Inst.Label l) ->
      invalid_arg ("Exec: unresolved label ." ^ l)

(** Purely compute the taken/not-taken direction of a conditional branch
    under the given flags (used by the pipeline's branch resolution). *)
let branch_taken inst flags =
  match inst with
  | Inst.Jmp _ -> true
  | Inst.Jcc (c, _) -> Cond.eval c flags
  | _ -> invalid_arg "Exec.branch_taken: not a branch"
