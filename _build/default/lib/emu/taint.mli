(** Input-taint tracking for Revizor-style input boosting.

    Input atoms (initial registers and 8-byte sandbox words) whose labels
    reach a contract observation are {e relevant}; randomizing the
    complement provably preserves the contract trace while changing
    speculative behaviour. *)

open Amulet_isa

module Atom_set : Set.S with type elt = int

type atom = Areg of Reg.t | Aword of int

val atom_of_reg : Reg.t -> int
val atom_of_word : int -> int
val classify_atom : int -> atom

type t

val create : Memory.t -> t

val step :
  t ->
  inst:Inst.t ->
  request:(int * Width.t * [ `Load | `Store | `Rmw ]) option ->
  observe_values:bool ->
  unit
(** Propagate taint across one instruction.  [request] is the memory access
    resolved with pre-execution register values; [observe_values] marks
    loaded data relevant (value-exposing contracts).  Stores that fully
    cover a word take a strong update (sound because the store's address
    atoms are pinned as relevant). *)

val relevant : t -> Atom_set.t

val mark_all_regs_relevant : t -> unit
(** For contracts exposing the initial register file (ARCH-SEQ): boosting
    must then mutate only memory. *)

val is_relevant_reg : t -> Reg.t -> bool
val is_relevant_word : t -> int -> bool

val free_atoms : t -> atom list
(** Atoms safe to randomize (complement of the relevant set). *)
