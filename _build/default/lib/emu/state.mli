(** Architectural machine state: register file, flags, sandbox memory. *)

open Amulet_isa

type t = { regs : int64 array; mutable flags : Flags.t; mem : Memory.t }

val create : ?base:int -> pages:int -> unit -> t
val read_reg : t -> Reg.t -> int64
val write_reg : t -> Reg.t -> int64 -> unit

val write_reg_width : t -> Width.t -> Reg.t -> int64 -> unit
(** x86 width semantics: 64-bit replaces, 32-bit zero-extends, 16/8-bit
    merge into the old value. *)

type reg_snapshot

val snapshot_regs : t -> reg_snapshot
val restore_regs : t -> reg_snapshot -> unit
val copy : t -> t
val equal : t -> t -> bool

val hash : t -> int64
(** Digest of registers, flags and memory. *)

val pp : Format.formatter -> t -> unit
