(** Test programs: labelled basic blocks forming a DAG, and the flattened
    label-resolved form consumed by the emulator and the simulator. *)

type block = { label : string; body : Inst.t list }

type t = { blocks : block list }
(** Execution starts at the first block; control falls through between
    blocks unless redirected by a jump. *)

type flat = { code : Inst.t array; code_base : int; inst_size : int }
(** Flattened program: resolved jump targets; instruction [i] has PC
    [code_base + i*inst_size]. *)

val code_base_default : int
val inst_size_default : int

exception Unknown_label of string

val make : block list -> t
val block_labels : t -> string list
val num_instructions : t -> int

val flatten : ?code_base:int -> ?inst_size:int -> t -> flat
(** Resolve labels and append a final [Exit] when absent.  Raises
    {!Unknown_label}. *)

val pc_of_index : flat -> int -> int
val index_of_pc : flat -> int -> int option
val length : flat -> int
val get : flat -> int -> Inst.t

val is_dag : flat -> bool
(** True when every jump is a forward reference (termination guarantee). *)

val pp_flat : Format.formatter -> flat -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
