(** Instructions of the test ISA: the x86-64 subset that Revizor-style test
    generators use. *)

type binop = Add | Adc | Sub | Sbb | And | Or | Xor
type unop = Not | Neg | Inc | Dec | Bswap
type shift_kind = Shl | Shr | Sar | Rol | Ror

type extend = Zero | Sign
(** Extension mode of MOVZX / MOVSX. *)

type target = Label of string | Abs of int
(** Jump targets: symbolic before {!Program.flatten}, absolute instruction
    indices after. *)

type t =
  | Nop
  | Binop of binop * Width.t * Operand.t * Operand.t
      (** [dst <- dst op src]; at most one memory operand *)
  | Mov of Width.t * Operand.t * Operand.t
  | Cmp of Width.t * Operand.t * Operand.t  (** flags only *)
  | Test of Width.t * Operand.t * Operand.t  (** flags only, [a AND b] *)
  | Unop of unop * Width.t * Operand.t
  | Shift of shift_kind * Width.t * Operand.t * int  (** immediate count *)
  | Imul of Width.t * Reg.t * Operand.t  (** two-operand form *)
  | Movx of extend * Width.t * Reg.t * Operand.t
      (** MOVZX/MOVSX: load at the (narrow) width, extend into the full
          destination register *)
  | Xchg of Width.t * Reg.t * Reg.t  (** register-register swap *)
  | Lea of Reg.t * Operand.mem  (** no memory access *)
  | Setcc of Cond.t * Operand.t  (** byte destination *)
  | Cmovcc of Cond.t * Width.t * Reg.t * Operand.t
  | Jmp of target
  | Jcc of Cond.t * target
  | Fence  (** speculation barrier (LFENCE) *)
  | Exit  (** end of test case (m5exit analogue) *)

(** {1 Classification} *)

val is_branch : t -> bool
val is_cond_branch : t -> bool

val mem_access : t -> (Operand.mem * Width.t * [ `Load | `Store | `Rmw ]) option
(** The memory operand the instruction accesses, with width and direction
    ([`Rmw] = read-modify-write). *)

val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool

val source_regs : t -> Reg.t list
(** Registers read, including memory-operand address registers and
    destinations of merging sub-width or conditional writes. *)

val dest_regs : t -> Reg.t list
val reads_flags : t -> bool

val writes_flags : t -> bool
(** Statically exact: [NOT] and zero-count shifts do not write flags. *)

val branch_target : t -> target option

(** {1 Printing} *)

val binop_name : binop -> string
val unop_name : unop -> string
val shift_name : shift_kind -> string
val pp_target : Format.formatter -> target -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
