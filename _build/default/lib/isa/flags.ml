(** Architectural status flags (a subset of x86 RFLAGS sufficient for the
    conditional instructions in the test ISA). *)

type t = {
  zf : bool;  (** zero *)
  sf : bool;  (** sign *)
  cf : bool;  (** carry *)
  of_ : bool; (** overflow *)
  pf : bool;  (** parity (of the low result byte) *)
}

let initial = { zf = false; sf = false; cf = false; of_ = false; pf = false }

let equal a b =
  a.zf = b.zf && a.sf = b.sf && a.cf = b.cf && a.of_ = b.of_ && a.pf = b.pf

(** Parity flag value for a result: set if the low byte has an even number of
    one bits (x86 semantics). *)
let parity_of v =
  let byte = Int64.to_int (Int64.logand v 0xFFL) in
  let rec popcount n acc = if n = 0 then acc else popcount (n lsr 1) (acc + (n land 1)) in
  popcount byte 0 mod 2 = 0

(** Flags resulting from a logic operation ([AND]/[OR]/[XOR]/[TEST]): CF and
    OF are cleared, ZF/SF/PF reflect the result at width [w]. *)
let of_logic_result w result =
  let r = Width.truncate w result in
  {
    zf = Int64.equal r 0L;
    sf = Width.is_negative w r;
    cf = false;
    of_ = false;
    pf = parity_of r;
  }

(** Flags for an addition [a + b = result] at width [w]. *)
let of_add w a b result =
  let a = Width.truncate w a and b = Width.truncate w b in
  let r = Width.truncate w result in
  let full = Int64.add (Width.truncate w a) (Width.truncate w b) in
  (* Carry out of the width: for W64 compare unsigned; narrower widths can
     observe the carry directly in bit [bits w] of the untruncated sum. *)
  let cf =
    match w with
    | Width.W64 ->
        (* unsigned overflow iff result < a (unsigned) *)
        Int64.unsigned_compare r a < 0
    | _ -> not (Int64.equal (Int64.logand full (Int64.shift_left 1L (Width.bits w))) 0L)
  in
  let sa = Width.is_negative w a
  and sb = Width.is_negative w b
  and sr = Width.is_negative w r in
  {
    zf = Int64.equal r 0L;
    sf = sr;
    cf;
    of_ = sa = sb && sr <> sa;
    pf = parity_of r;
  }

(** Flags for a subtraction [a - b = result] at width [w] (also used by
    [CMP]). *)
let of_sub w a b result =
  let a = Width.truncate w a and b = Width.truncate w b in
  let r = Width.truncate w result in
  let sa = Width.is_negative w a
  and sb = Width.is_negative w b
  and sr = Width.is_negative w r in
  {
    zf = Int64.equal r 0L;
    sf = sr;
    cf = Int64.unsigned_compare a b < 0;
    of_ = sa <> sb && sr <> sa;
    pf = parity_of r;
  }

(** Flags after a shift by a non-zero count: [last_out] is the last bit
    shifted out (the new CF). OF is modeled only for count-1 shifts, matching
    the defined subset of x86 semantics; other counts leave OF cleared, which
    keeps the model deterministic. *)
let of_shift w result ~last_out ~of_ =
  let r = Width.truncate w result in
  {
    zf = Int64.equal r 0L;
    sf = Width.is_negative w r;
    cf = last_out;
    of_;
    pf = parity_of r;
  }

(** Flags after [INC]/[DEC], which preserve CF. *)
let of_incdec w ~old_cf a b result =
  let f = if Int64.equal b 1L then of_add w a b result else of_sub w a (Int64.neg b) result in
  { f with cf = old_cf }

let pp fmt f =
  let b c v = if v then c else '-' in
  Format.fprintf fmt "[%c%c%c%c%c]" (b 'Z' f.zf) (b 'S' f.sf) (b 'C' f.cf)
    (b 'O' f.of_) (b 'P' f.pf)

(** Pack into an integer (for hashing and trace inclusion). *)
let to_int f =
  (if f.zf then 1 else 0)
  lor (if f.sf then 2 else 0)
  lor (if f.cf then 4 else 0)
  lor (if f.of_ then 8 else 0)
  lor if f.pf then 16 else 0

let of_int i =
  {
    zf = i land 1 <> 0;
    sf = i land 2 <> 0;
    cf = i land 4 <> 0;
    of_ = i land 8 <> 0;
    pf = i land 16 <> 0;
  }
