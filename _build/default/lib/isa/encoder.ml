(** Binary encoding of flattened programs.

    AMuLeT packages each test case as a binary (program bytes + input bytes)
    handed to the executor process; this module provides the program half.
    The encoding is a compact custom format (not x86 machine code): one tag
    byte per instruction followed by its operands.  Jump targets must be
    resolved ({!Inst.Abs}) before encoding; encode a {!Program.t} by
    flattening it first. *)

exception Decode_error of { offset : int; message : string }

let decode_fail offset fmt =
  Format.kasprintf (fun message -> raise (Decode_error { offset; message })) fmt

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_i32 buf v =
  add_u8 buf v;
  add_u8 buf (v asr 8);
  add_u8 buf (v asr 16);
  add_u8 buf (v asr 24)

let add_i64 buf v =
  for i = 0 to 7 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let add_reg buf r = add_u8 buf (Reg.index r)
let add_width buf w = add_u8 buf (Width.index w)
let add_cond buf c = add_u8 buf (Cond.index c)

let add_mem buf (m : Operand.mem) =
  add_reg buf m.base;
  (match m.index with
  | None -> add_u8 buf 0xFF
  | Some r -> add_reg buf r);
  add_u8 buf m.scale;
  add_i32 buf m.disp

let add_operand buf = function
  | Operand.Reg r ->
      add_u8 buf 0;
      add_reg buf r
  | Operand.Imm i ->
      add_u8 buf 1;
      add_i64 buf i
  | Operand.Mem m ->
      add_u8 buf 2;
      add_mem buf m

let add_target buf = function
  | Inst.Abs i -> add_i32 buf i
  | Inst.Label l -> invalid_arg ("Encoder: unresolved label ." ^ l)

let binop_tag = function
  | Inst.Add -> 0
  | Inst.Sub -> 1
  | Inst.And -> 2
  | Inst.Or -> 3
  | Inst.Xor -> 4
  | Inst.Adc -> 5
  | Inst.Sbb -> 6

let unop_tag = function
  | Inst.Not -> 0
  | Inst.Neg -> 1
  | Inst.Inc -> 2
  | Inst.Dec -> 3
  | Inst.Bswap -> 4

let shift_tag = function
  | Inst.Shl -> 0
  | Inst.Shr -> 1
  | Inst.Sar -> 2
  | Inst.Rol -> 3
  | Inst.Ror -> 4

let encode_inst buf (inst : Inst.t) =
  match inst with
  | Inst.Nop -> add_u8 buf 0
  | Inst.Binop (op, w, dst, src) ->
      add_u8 buf 1;
      add_u8 buf (binop_tag op);
      add_width buf w;
      add_operand buf dst;
      add_operand buf src
  | Inst.Mov (w, dst, src) ->
      add_u8 buf 2;
      add_width buf w;
      add_operand buf dst;
      add_operand buf src
  | Inst.Cmp (w, a, b) ->
      add_u8 buf 3;
      add_width buf w;
      add_operand buf a;
      add_operand buf b
  | Inst.Test (w, a, b) ->
      add_u8 buf 4;
      add_width buf w;
      add_operand buf a;
      add_operand buf b
  | Inst.Unop (u, w, op) ->
      add_u8 buf 5;
      add_u8 buf (unop_tag u);
      add_width buf w;
      add_operand buf op
  | Inst.Shift (k, w, op, n) ->
      add_u8 buf 6;
      add_u8 buf (shift_tag k);
      add_width buf w;
      add_operand buf op;
      add_u8 buf n
  | Inst.Imul (w, r, src) ->
      add_u8 buf 7;
      add_width buf w;
      add_reg buf r;
      add_operand buf src
  | Inst.Lea (r, m) ->
      add_u8 buf 8;
      add_reg buf r;
      add_mem buf m
  | Inst.Setcc (c, op) ->
      add_u8 buf 9;
      add_cond buf c;
      add_operand buf op
  | Inst.Cmovcc (c, w, r, src) ->
      add_u8 buf 10;
      add_cond buf c;
      add_width buf w;
      add_reg buf r;
      add_operand buf src
  | Inst.Movx (ext, w, r, src) ->
      add_u8 buf 15;
      add_u8 buf (match ext with Inst.Zero -> 0 | Inst.Sign -> 1);
      add_width buf w;
      add_reg buf r;
      add_operand buf src
  | Inst.Xchg (w, a, b) ->
      add_u8 buf 16;
      add_width buf w;
      add_reg buf a;
      add_reg buf b
  | Inst.Jmp t ->
      add_u8 buf 11;
      add_target buf t
  | Inst.Jcc (c, t) ->
      add_u8 buf 12;
      add_cond buf c;
      add_target buf t
  | Inst.Fence -> add_u8 buf 13
  | Inst.Exit -> add_u8 buf 14

(** Encode a flattened program.  Layout: magic "AMLT", u32 instruction count,
    u32 code base, u8 instruction size, then the instructions. *)
let encode (f : Program.flat) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "AMLT";
  add_i32 buf (Array.length f.code);
  add_i32 buf f.code_base;
  add_u8 buf f.inst_size;
  Array.iter (encode_inst buf) f.code;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type cursor = { data : string; mutable pos : int }

let u8 c =
  if c.pos >= String.length c.data then decode_fail c.pos "unexpected end of data";
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let i32 c =
  let b0 = u8 c and b1 = u8 c and b2 = u8 c and b3 = u8 c in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  (* sign-extend from 32 bits *)
  (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

let i64 c =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 c)) (8 * i))
  done;
  !v

let reg c =
  let i = u8 c in
  try Reg.of_index i with Invalid_argument _ -> decode_fail c.pos "bad register %d" i

let width c =
  let i = u8 c in
  try Width.of_index i with Invalid_argument _ -> decode_fail c.pos "bad width %d" i

let cond c =
  let i = u8 c in
  try Cond.of_index i with Invalid_argument _ -> decode_fail c.pos "bad condition %d" i

let mem c =
  let base = reg c in
  let index_byte = u8 c in
  let index = if index_byte = 0xFF then None else Some (Reg.of_index index_byte) in
  let scale = u8 c in
  let disp = i32 c in
  { Operand.base; index; scale; disp }

let operand c =
  match u8 c with
  | 0 -> Operand.Reg (reg c)
  | 1 -> Operand.Imm (i64 c)
  | 2 -> Operand.Mem (mem c)
  | k -> decode_fail c.pos "bad operand kind %d" k

let binop_of_tag c = function
  | 0 -> Inst.Add
  | 1 -> Inst.Sub
  | 2 -> Inst.And
  | 3 -> Inst.Or
  | 4 -> Inst.Xor
  | 5 -> Inst.Adc
  | 6 -> Inst.Sbb
  | k -> decode_fail c.pos "bad binop %d" k

let unop_of_tag c = function
  | 0 -> Inst.Not
  | 1 -> Inst.Neg
  | 2 -> Inst.Inc
  | 3 -> Inst.Dec
  | 4 -> Inst.Bswap
  | k -> decode_fail c.pos "bad unop %d" k

let shift_of_tag c = function
  | 0 -> Inst.Shl
  | 1 -> Inst.Shr
  | 2 -> Inst.Sar
  | 3 -> Inst.Rol
  | 4 -> Inst.Ror
  | k -> decode_fail c.pos "bad shift %d" k

let decode_inst c : Inst.t =
  match u8 c with
  | 0 -> Inst.Nop
  | 1 ->
      let op = binop_of_tag c (u8 c) in
      let w = width c in
      let dst = operand c in
      let src = operand c in
      Inst.Binop (op, w, dst, src)
  | 2 ->
      let w = width c in
      let dst = operand c in
      let src = operand c in
      Inst.Mov (w, dst, src)
  | 3 ->
      let w = width c in
      let a = operand c in
      let b = operand c in
      Inst.Cmp (w, a, b)
  | 4 ->
      let w = width c in
      let a = operand c in
      let b = operand c in
      Inst.Test (w, a, b)
  | 5 ->
      let u = unop_of_tag c (u8 c) in
      let w = width c in
      let op = operand c in
      Inst.Unop (u, w, op)
  | 6 ->
      let k = shift_of_tag c (u8 c) in
      let w = width c in
      let op = operand c in
      let n = u8 c in
      Inst.Shift (k, w, op, n)
  | 7 ->
      let w = width c in
      let r = reg c in
      let src = operand c in
      Inst.Imul (w, r, src)
  | 8 ->
      let r = reg c in
      let m = mem c in
      Inst.Lea (r, m)
  | 9 ->
      let cc = cond c in
      let op = operand c in
      Inst.Setcc (cc, op)
  | 10 ->
      let cc = cond c in
      let w = width c in
      let r = reg c in
      let src = operand c in
      Inst.Cmovcc (cc, w, r, src)
  | 11 -> Inst.Jmp (Inst.Abs (i32 c))
  | 12 ->
      let cc = cond c in
      Inst.Jcc (cc, Inst.Abs (i32 c))
  | 13 -> Inst.Fence
  | 14 -> Inst.Exit
  | 15 ->
      let ext = (match u8 c with 0 -> Inst.Zero | 1 -> Inst.Sign | k -> decode_fail c.pos "bad extend %d" k) in
      let w = width c in
      let r = reg c in
      let src = operand c in
      Inst.Movx (ext, w, r, src)
  | 16 ->
      let w = width c in
      let a = reg c in
      let b = reg c in
      Inst.Xchg (w, a, b)
  | k -> decode_fail c.pos "bad instruction tag %d" k

(** Inverse of {!encode}. *)
let decode (data : string) : Program.flat =
  let c = { data; pos = 0 } in
  if String.length data < 4 || String.sub data 0 4 <> "AMLT" then
    decode_fail 0 "bad magic";
  c.pos <- 4;
  let count = i32 c in
  let code_base = i32 c in
  let inst_size = u8 c in
  if count < 0 then decode_fail c.pos "bad instruction count %d" count;
  let code = Array.init count (fun _ -> decode_inst c) in
  { Program.code; code_base; inst_size }
