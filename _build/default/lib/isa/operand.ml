(** Instruction operands: registers, immediates and memory references. *)

(** A memory reference [base + index*scale + disp], Intel style.  [scale] is
    1, 2, 4 or 8. *)
type mem = { base : Reg.t; index : Reg.t option; scale : int; disp : int }

type t =
  | Reg of Reg.t
  | Imm of int64
  | Mem of mem

let mem ?(index = None) ?(scale = 1) ?(disp = 0) base =
  assert (scale = 1 || scale = 2 || scale = 4 || scale = 8);
  Mem { base; index; scale; disp }

let is_mem = function Mem _ -> true | Reg _ | Imm _ -> false
let is_reg = function Reg _ -> true | Mem _ | Imm _ -> false
let is_imm = function Imm _ -> true | Mem _ | Reg _ -> false

(** Registers read when evaluating the operand as a source (for a memory
    operand these are the address registers; the loaded data itself is
    accounted separately). *)
let source_regs = function
  | Reg r -> [ r ]
  | Imm _ -> []
  | Mem m -> ( match m.index with None -> [ m.base ] | Some i -> [ m.base; i ])

(** Address registers of a memory operand (empty for non-memory operands). *)
let address_regs = function
  | Mem m -> ( match m.index with None -> [ m.base ] | Some i -> [ m.base; i ])
  | Reg _ | Imm _ -> []

let equal_mem a b =
  Reg.equal a.base b.base
  && Option.equal Reg.equal a.index b.index
  && a.scale = b.scale && a.disp = b.disp

let equal a b =
  match a, b with
  | Reg x, Reg y -> Reg.equal x y
  | Imm x, Imm y -> Int64.equal x y
  | Mem x, Mem y -> equal_mem x y
  | (Reg _ | Imm _ | Mem _), _ -> false

let pp_mem_inner fmt m =
  Format.fprintf fmt "%a" Reg.pp m.base;
  (match m.index with
  | None -> ()
  | Some i ->
      if m.scale = 1 then Format.fprintf fmt " + %a" Reg.pp i
      else Format.fprintf fmt " + %a*%d" Reg.pp i m.scale);
  if m.disp > 0 then Format.fprintf fmt " + %d" m.disp
  else if m.disp < 0 then Format.fprintf fmt " - %d" (-m.disp)

(** Print with an explicit width keyword for memory operands, e.g.
    ["qword ptr [R14 + RAX]"]. *)
let pp_with_width w fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm i -> Format.fprintf fmt "%Ld" i
  | Mem m -> Format.fprintf fmt "%s ptr [%a]" (Width.ptr_keyword w) pp_mem_inner m

let pp fmt op = pp_with_width Width.W64 fmt op
