(** Condition codes for conditional jumps, moves and set instructions. *)

type t = Z | NZ | S | NS | C | NC | O | NO | P | NP | L | GE | LE | G | BE | A

val all : t list

val index : t -> int
val of_index : int -> t
(** Raises [Invalid_argument] when out of range. *)

val eval : t -> Flags.t -> bool
(** Evaluate the condition against a flag state. *)

val suffix : t -> string
(** Mnemonic suffix, e.g. ["Z"] (a jump prints as [JZ]). *)

val of_suffix : string -> t option
(** Accepts aliases ([E]/[NE], [B]/[AE]). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
