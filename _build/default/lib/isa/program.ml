(** Test programs: a list of labelled basic blocks forming a directed acyclic
    control-flow graph (as produced by the Revizor-style generator), plus the
    flattened, label-resolved form consumed by the emulator and the
    simulator. *)

type block = { label : string; body : Inst.t list }

type t = { blocks : block list }
(** Execution starts at the first block.  Control falls through from one
    block to the next unless a jump redirects it.  The last block ends the
    test case (an [Exit] is appended during flattening if absent). *)

(** A flattened program: instruction array with jump targets resolved to
    absolute indices, and the address of each instruction (for PC traces).
    Instructions are laid out [inst_size] bytes apart starting at
    [code_base], giving every instruction a distinct, stable PC. *)
type flat = {
  code : Inst.t array;
  code_base : int;
  inst_size : int;
}

let code_base_default = 0x40_0000
let inst_size_default = 4

exception Unknown_label of string

let make blocks = { blocks }

let block_labels p = List.map (fun b -> b.label) p.blocks

let num_instructions p =
  List.fold_left (fun acc b -> acc + List.length b.body) 0 p.blocks

(** Resolve labels and append a final [Exit] if the program does not already
    end with one.  Raises {!Unknown_label} for a jump to a label that names
    no block. *)
let flatten ?(code_base = code_base_default) ?(inst_size = inst_size_default)
    (p : t) : flat =
  let index_of_label = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun b ->
      Hashtbl.replace index_of_label b.label !next;
      next := !next + List.length b.body)
    p.blocks;
  let resolve = function
    | Inst.Label l -> (
        match Hashtbl.find_opt index_of_label l with
        | Some i -> Inst.Abs i
        | None -> raise (Unknown_label l))
    | Inst.Abs i -> Inst.Abs i
  in
  let resolve_inst = function
    | Inst.Jmp t -> Inst.Jmp (resolve t)
    | Inst.Jcc (c, t) -> Inst.Jcc (c, resolve t)
    | i -> i
  in
  let insts =
    List.concat_map (fun b -> List.map resolve_inst b.body) p.blocks
  in
  let insts =
    match List.rev insts with
    | Inst.Exit :: _ -> insts
    | _ -> insts @ [ Inst.Exit ]
  in
  { code = Array.of_list insts; code_base; inst_size }

(** Program counter of instruction index [i]. *)
let pc_of_index (f : flat) i = f.code_base + (i * f.inst_size)

(** Inverse of {!pc_of_index}; [None] if [pc] is out of the code region or
    misaligned. *)
let index_of_pc (f : flat) pc =
  let off = pc - f.code_base in
  if off < 0 || off mod f.inst_size <> 0 then None
  else
    let i = off / f.inst_size in
    if i < Array.length f.code then Some i else None

let length (f : flat) = Array.length f.code
let get (f : flat) i = f.code.(i)

(** True if every jump target is a forward reference (acyclic control flow),
    which guarantees termination of sequential execution. *)
let is_dag (f : flat) =
  let ok = ref true in
  Array.iteri
    (fun i inst ->
      match Inst.branch_target inst with
      | Some (Inst.Abs t) -> if t <= i then ok := false
      | Some (Inst.Label _) -> ok := false
      | None -> ())
    f.code;
  !ok

let pp_flat fmt (f : flat) =
  Array.iteri
    (fun i inst ->
      Format.fprintf fmt "0x%x: %a@." (pc_of_index f i) Inst.pp inst)
    f.code

let pp fmt (p : t) =
  List.iter
    (fun b ->
      Format.fprintf fmt ".%s:@." b.label;
      List.iter (fun i -> Format.fprintf fmt "  %a@." Inst.pp i) b.body)
    p.blocks

let to_string p = Format.asprintf "%a" pp p
