(** Operand widths: 1, 2, 4 and 8 bytes. *)

type t = W8 | W16 | W32 | W64

val all : t list
val bytes : t -> int
val bits : t -> int

val mask : t -> int64
(** Bit mask covering the width, e.g. [0xFFFF] for [W16]. *)

val sign_bit : t -> int64

val truncate : t -> int64 -> int64
(** Zero the bits above the width. *)

val sign_extend : t -> int64 -> int64
(** Sign-extend the low [bits w] bits to 64 bits. *)

val is_negative : t -> int64 -> bool
(** True if the value's sign bit (at this width) is set. *)

val of_index : int -> t
(** Raises [Invalid_argument] when out of range. *)

val index : t -> int

val ptr_keyword : t -> string
(** Intel-syntax size keyword: ["byte"], ["word"], ["dword"], ["qword"]. *)

val of_ptr_keyword : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
