(** Instructions of the test ISA.

    The instruction set is the x86-64 subset used by Revizor-style test
    generators: integer ALU operations, data movement (including conditional
    moves), comparisons, shifts, and direct (un)conditional jumps.  Memory
    operands use [base + index*scale + disp] addressing.  [Exit] terminates a
    test case (the analogue of gem5's [m5exit] pseudo-instruction) and
    [Fence] is a full speculation barrier (LFENCE). *)

type binop = Add | Adc | Sub | Sbb | And | Or | Xor
type unop = Not | Neg | Inc | Dec | Bswap
type shift_kind = Shl | Shr | Sar | Rol | Ror

(** Extension mode of MOVZX / MOVSX. *)
type extend = Zero | Sign

(** Jump targets: symbolic labels in source programs, absolute instruction
    indices after {!Program.flatten} resolves them. *)
type target = Label of string | Abs of int

type t =
  | Nop
  | Binop of binop * Width.t * Operand.t * Operand.t
      (** [Binop (op, w, dst, src)]: [dst <- dst op src]; [dst] is a register
          or memory operand, at most one operand is memory. *)
  | Mov of Width.t * Operand.t * Operand.t
      (** [Mov (w, dst, src)]: at most one memory operand. *)
  | Cmp of Width.t * Operand.t * Operand.t  (** flags only *)
  | Test of Width.t * Operand.t * Operand.t  (** flags only, [a AND b] *)
  | Unop of unop * Width.t * Operand.t
  | Shift of shift_kind * Width.t * Operand.t * int  (** immediate count *)
  | Imul of Width.t * Reg.t * Operand.t  (** two-operand form, reg dst *)
  | Movx of extend * Width.t * Reg.t * Operand.t
      (** MOVZX/MOVSX: load [src] at the given (narrow) width and zero- or
          sign-extend into the full destination register *)
  | Xchg of Width.t * Reg.t * Reg.t  (** register-register swap *)
  | Lea of Reg.t * Operand.mem  (** address computation, no memory access *)
  | Setcc of Cond.t * Operand.t  (** byte destination *)
  | Cmovcc of Cond.t * Width.t * Reg.t * Operand.t
  | Jmp of target
  | Jcc of Cond.t * target
  | Fence  (** speculation barrier (LFENCE) *)
  | Exit  (** end of test case *)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let is_branch = function Jmp _ | Jcc _ -> true | _ -> false
let is_cond_branch = function Jcc _ -> true | _ -> false

(** The memory operand accessed by the instruction, with its width and
    direction.  [`Load] covers pure loads, [`Store] pure stores, [`Rmw]
    read-modify-write (memory-destination binops and unops). *)
let mem_access = function
  | Binop (_, w, Operand.Mem m, _) -> Some (m, w, `Rmw)
  | Binop (_, w, _, Operand.Mem m) -> Some (m, w, `Load)
  | Mov (w, Operand.Mem m, _) -> Some (m, w, `Store)
  | Mov (w, _, Operand.Mem m) -> Some (m, w, `Load)
  | Cmp (w, Operand.Mem m, _) | Cmp (w, _, Operand.Mem m) -> Some (m, w, `Load)
  | Test (w, Operand.Mem m, _) | Test (w, _, Operand.Mem m) -> Some (m, w, `Load)
  | Unop (_, w, Operand.Mem m) -> Some (m, w, `Rmw)
  | Shift (_, w, Operand.Mem m, _) -> Some (m, w, `Rmw)
  | Imul (w, _, Operand.Mem m) -> Some (m, w, `Load)
  | Movx (_, w, _, Operand.Mem m) -> Some (m, w, `Load)
  | Setcc (_, Operand.Mem m) -> Some (m, Width.W8, `Store)
  | Cmovcc (_, w, _, Operand.Mem m) -> Some (m, w, `Load)
  | Nop | Binop _ | Mov _ | Cmp _ | Test _ | Unop _ | Shift _ | Imul _
  | Movx _ | Xchg _ | Lea _ | Setcc _ | Cmovcc _ | Jmp _ | Jcc _ | Fence
  | Exit ->
      None

let is_load i =
  match mem_access i with
  | Some (_, _, (`Load | `Rmw)) -> true
  | Some (_, _, `Store) | None -> false

let is_store i =
  match mem_access i with
  | Some (_, _, (`Store | `Rmw)) -> true
  | Some (_, _, `Load) | None -> false

let is_mem i = Option.is_some (mem_access i)

(** Registers read by the instruction (including address registers of memory
    operands). *)
let source_regs inst =
  let src_of = Operand.source_regs in
  let addr_of = Operand.address_regs in
  match inst with
  | Nop | Fence | Exit | Jmp _ | Jcc _ -> []
  | Binop (_, _, dst, src) ->
      (* memory destination contributes address regs; register destination is
         also a source since binops read-modify-write *)
      (match dst with
      | Operand.Reg r -> r :: src_of src
      | Operand.Mem _ -> addr_of dst @ src_of src
      | Operand.Imm _ -> src_of src)
  | Mov (w, dst, src) ->
      let dst_regs =
        match dst, w with
        | Operand.Mem _, _ -> addr_of dst
        (* sub-32-bit register writes merge into the old value; 32-bit writes
           zero-extend and 64-bit writes replace, so neither reads [dst] *)
        | Operand.Reg r, (Width.W8 | Width.W16) -> [ r ]
        | Operand.Reg _, (Width.W32 | Width.W64) -> []
        | Operand.Imm _, _ -> []
      in
      dst_regs @ src_of src
  | Cmp (_, a, b) | Test (_, a, b) ->
      (match a with Operand.Mem _ -> addr_of a | _ -> src_of a) @ src_of b
  | Unop (_, _, op) | Shift (_, _, op, _) -> (
      match op with Operand.Mem _ -> addr_of op | _ -> src_of op)
  | Imul (_, dst, src) -> dst :: src_of src
  | Movx (_, _, _, src) -> (
      match src with Operand.Mem _ -> addr_of src | _ -> src_of src)
  | Xchg (_, a, b) -> [ a; b ]
  | Lea (_, m) -> Operand.address_regs (Operand.Mem m)
  | Setcc (_, dst) -> (
      match dst with
      | Operand.Mem _ -> addr_of dst
      | Operand.Reg r -> [ r ] (* byte write merges *)
      | Operand.Imm _ -> [])
  | Cmovcc (_, _, dst, src) -> dst :: src_of src

(** Registers written by the instruction. *)
let dest_regs = function
  | Binop (_, _, Operand.Reg r, _)
  | Mov (_, Operand.Reg r, _)
  | Unop (_, _, Operand.Reg r)
  | Shift (_, _, Operand.Reg r, _)
  | Setcc (_, Operand.Reg r) ->
      [ r ]
  | Imul (_, r, _) | Lea (r, _) | Cmovcc (_, _, r, _) | Movx (_, _, r, _) -> [ r ]
  | Xchg (_, a, b) -> [ a; b ]
  | Nop | Binop _ | Mov _ | Cmp _ | Test _ | Unop _ | Shift _ | Setcc _
  | Jmp _ | Jcc _ | Fence | Exit ->
      []

let reads_flags = function
  | Jcc _ | Setcc _ | Cmovcc _ -> true
  | Unop ((Inc | Dec), _, _) -> true (* INC/DEC preserve CF *)
  | Binop ((Adc | Sbb), _, _, _) -> true (* carry in *)
  | Shift ((Rol | Ror), w, _, n) ->
      (* rotates preserve ZF/SF/PF, so a rotating count makes them readers *)
      n mod Width.bits w <> 0
  | Nop | Binop _ | Mov _ | Cmp _ | Test _ | Unop _ | Shift _ | Imul _
  | Movx _ | Xchg _ | Lea _ | Jmp _ | Fence | Exit ->
      false

let writes_flags = function
  | Binop _ | Cmp _ | Test _ | Imul _ -> true
  | Unop ((Not | Bswap), _, _) -> false (* NOT and BSWAP do not affect flags *)
  | Unop ((Neg | Inc | Dec), _, _) -> true
  | Shift ((Rol | Ror), w, _, n) -> n mod Width.bits w <> 0
  | Shift ((Shl | Shr | Sar), w, _, n) ->
      (* a masked count of zero leaves flags untouched, statically *)
      n land (match w with Width.W64 -> 63 | _ -> 31) <> 0
  | Nop | Mov _ | Movx _ | Xchg _ | Lea _ | Setcc _ | Cmovcc _ | Jmp _
  | Jcc _ | Fence | Exit ->
      false

let branch_target = function Jmp t | Jcc (_, t) -> Some t | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "ADD"
  | Adc -> "ADC"
  | Sub -> "SUB"
  | Sbb -> "SBB"
  | And -> "AND"
  | Or -> "OR"
  | Xor -> "XOR"

let unop_name = function
  | Not -> "NOT"
  | Neg -> "NEG"
  | Inc -> "INC"
  | Dec -> "DEC"
  | Bswap -> "BSWAP"

let shift_name = function
  | Shl -> "SHL"
  | Shr -> "SHR"
  | Sar -> "SAR"
  | Rol -> "ROL"
  | Ror -> "ROR"

let pp_target fmt = function
  | Label l -> Format.fprintf fmt ".%s" l
  | Abs i -> Format.fprintf fmt "@%d" i

let pp fmt inst =
  let pw w = Operand.pp_with_width w in
  match inst with
  | Nop -> Format.fprintf fmt "NOP"
  | Binop (op, w, dst, src) ->
      Format.fprintf fmt "%s %a, %a" (binop_name op) (pw w) dst (pw w) src
  | Mov (w, dst, src) ->
      Format.fprintf fmt "MOV %a, %a" (pw w) dst (pw w) src
  | Cmp (w, a, b) -> Format.fprintf fmt "CMP %a, %a" (pw w) a (pw w) b
  | Test (w, a, b) -> Format.fprintf fmt "TEST %a, %a" (pw w) a (pw w) b
  | Unop (op, w, dst) -> Format.fprintf fmt "%s %a" (unop_name op) (pw w) dst
  | Shift (k, w, dst, n) ->
      Format.fprintf fmt "%s %a, %d" (shift_name k) (pw w) dst n
  | Imul (w, dst, src) ->
      Format.fprintf fmt "IMUL %a, %a" Reg.pp dst (pw w) src
  | Movx (Zero, w, dst, src) ->
      Format.fprintf fmt "MOVZX %a, %a" Reg.pp dst (pw w) src
  | Movx (Sign, w, dst, src) ->
      Format.fprintf fmt "MOVSX %a, %a" Reg.pp dst (pw w) src
  | Xchg (_, a, b) -> Format.fprintf fmt "XCHG %a, %a" Reg.pp a Reg.pp b
  | Lea (dst, m) ->
      Format.fprintf fmt "LEA %a, [%a]" Reg.pp dst Operand.pp_mem_inner m
  | Setcc (c, dst) ->
      Format.fprintf fmt "SET%s %a" (Cond.suffix c) (pw Width.W8) dst
  | Cmovcc (c, w, dst, src) ->
      Format.fprintf fmt "CMOV%s %a, %a" (Cond.suffix c) Reg.pp dst (pw w) src
  | Jmp t -> Format.fprintf fmt "JMP %a" pp_target t
  | Jcc (c, t) -> Format.fprintf fmt "J%s %a" (Cond.suffix c) pp_target t
  | Fence -> Format.fprintf fmt "LFENCE"
  | Exit -> Format.fprintf fmt "EXIT"

let to_string inst = Format.asprintf "%a" pp inst
let equal (a : t) (b : t) = a = b
