(** Binary encoding of flattened programs (the "test binary" the executor
    ships; a compact custom format, not x86 machine code). *)

exception Decode_error of { offset : int; message : string }

val encode : Program.flat -> string
(** Raises [Invalid_argument] on unresolved labels. *)

val decode : string -> Program.flat
(** Inverse of {!encode}.  Raises {!Decode_error} on malformed input. *)
