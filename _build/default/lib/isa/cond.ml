(** Condition codes for conditional jumps, moves and set instructions. *)

type t =
  | Z   (** equal / zero *)
  | NZ  (** not equal / not zero *)
  | S   (** sign (negative) *)
  | NS  (** not sign *)
  | C   (** carry / below *)
  | NC  (** not carry / above-or-equal *)
  | O   (** overflow *)
  | NO  (** not overflow *)
  | P   (** parity even *)
  | NP  (** parity odd *)
  | L   (** signed less *)
  | GE  (** signed greater-or-equal *)
  | LE  (** signed less-or-equal *)
  | G   (** signed greater *)
  | BE  (** unsigned below-or-equal *)
  | A   (** unsigned above *)

let all = [ Z; NZ; S; NS; C; NC; O; NO; P; NP; L; GE; LE; G; BE; A ]

let index = function
  | Z -> 0
  | NZ -> 1
  | S -> 2
  | NS -> 3
  | C -> 4
  | NC -> 5
  | O -> 6
  | NO -> 7
  | P -> 8
  | NP -> 9
  | L -> 10
  | GE -> 11
  | LE -> 12
  | G -> 13
  | BE -> 14
  | A -> 15

let of_index = function
  | 0 -> Z
  | 1 -> NZ
  | 2 -> S
  | 3 -> NS
  | 4 -> C
  | 5 -> NC
  | 6 -> O
  | 7 -> NO
  | 8 -> P
  | 9 -> NP
  | 10 -> L
  | 11 -> GE
  | 12 -> LE
  | 13 -> G
  | 14 -> BE
  | 15 -> A
  | i -> invalid_arg (Printf.sprintf "Cond.of_index: %d" i)

(** Evaluate the condition against a flag state. *)
let eval (c : t) (f : Flags.t) =
  match c with
  | Z -> f.zf
  | NZ -> not f.zf
  | S -> f.sf
  | NS -> not f.sf
  | C -> f.cf
  | NC -> not f.cf
  | O -> f.of_
  | NO -> not f.of_
  | P -> f.pf
  | NP -> not f.pf
  | L -> f.sf <> f.of_
  | GE -> f.sf = f.of_
  | LE -> f.zf || f.sf <> f.of_
  | G -> (not f.zf) && f.sf = f.of_
  | BE -> f.cf || f.zf
  | A -> (not f.cf) && not f.zf

(** Mnemonic suffix, e.g. ["Z"] so that a jump prints as [JZ]. *)
let suffix = function
  | Z -> "Z"
  | NZ -> "NZ"
  | S -> "S"
  | NS -> "NS"
  | C -> "C"
  | NC -> "NC"
  | O -> "O"
  | NO -> "NO"
  | P -> "P"
  | NP -> "NP"
  | L -> "L"
  | GE -> "GE"
  | LE -> "LE"
  | G -> "G"
  | BE -> "BE"
  | A -> "A"

let of_suffix s =
  match String.uppercase_ascii s with
  | "Z" | "E" -> Some Z
  | "NZ" | "NE" -> Some NZ
  | "S" -> Some S
  | "NS" -> Some NS
  | "C" | "B" -> Some C
  | "NC" | "AE" -> Some NC
  | "O" -> Some O
  | "NO" -> Some NO
  | "P" -> Some P
  | "NP" -> Some NP
  | "L" -> Some L
  | "GE" -> Some GE
  | "LE" -> Some LE
  | "G" -> Some G
  | "BE" -> Some BE
  | "A" -> Some A
  | _ -> None

let equal (a : t) (b : t) = a = b
let pp fmt c = Format.pp_print_string fmt (suffix c)
