lib/isa/operand.ml: Format Int64 Option Reg Width
