lib/isa/flags.ml: Format Int64 Width
