lib/isa/asm.ml: Cond Format Inst Int64 List Operand Option Program Reg String Width
