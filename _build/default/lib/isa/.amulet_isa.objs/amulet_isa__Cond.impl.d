lib/isa/cond.ml: Flags Format Printf String
