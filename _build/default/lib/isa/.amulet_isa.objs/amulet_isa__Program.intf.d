lib/isa/program.mli: Format Inst
