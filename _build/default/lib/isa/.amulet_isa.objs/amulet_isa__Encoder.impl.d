lib/isa/encoder.ml: Array Buffer Char Cond Format Inst Int64 Operand Program Reg String Sys Width
