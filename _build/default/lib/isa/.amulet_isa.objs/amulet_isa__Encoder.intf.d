lib/isa/encoder.mli: Program
