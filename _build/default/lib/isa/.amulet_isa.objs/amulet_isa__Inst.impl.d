lib/isa/inst.ml: Cond Format Operand Option Reg Width
