lib/isa/inst.mli: Cond Format Operand Reg Width
