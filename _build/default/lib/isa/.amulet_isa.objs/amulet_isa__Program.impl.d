lib/isa/program.ml: Array Format Hashtbl Inst List
