lib/isa/flags.mli: Format Width
