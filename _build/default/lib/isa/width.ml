(** Operand widths, in the x86 tradition: 1, 2, 4 and 8 bytes. *)

type t = W8 | W16 | W32 | W64

let all = [ W8; W16; W32; W64 ]

let bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8
let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

(** Bit mask covering the width, e.g. [0xFFFF] for [W16]. *)
let mask = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFF_FFFFL
  | W64 -> -1L

(** Sign-bit mask for the width. *)
let sign_bit = function
  | W8 -> 0x80L
  | W16 -> 0x8000L
  | W32 -> 0x8000_0000L
  | W64 -> Int64.min_int

(** Truncate a value to the width (zero upper bits). *)
let truncate w v = Int64.logand v (mask w)

(** Sign-extend the low [bits w] bits of [v] to 64 bits. *)
let sign_extend w v =
  match w with
  | W64 -> v
  | _ ->
      let shift = 64 - bits w in
      Int64.shift_right (Int64.shift_left v shift) shift

(** True if the sign bit of [v] (interpreted at width [w]) is set. *)
let is_negative w v = not (Int64.equal (Int64.logand v (sign_bit w)) 0L)

let of_index = function
  | 0 -> W8
  | 1 -> W16
  | 2 -> W32
  | 3 -> W64
  | i -> invalid_arg (Printf.sprintf "Width.of_index: %d" i)

let index = function W8 -> 0 | W16 -> 1 | W32 -> 2 | W64 -> 3

(** Memory-operand size keyword, as in Intel assembly syntax. *)
let ptr_keyword = function
  | W8 -> "byte"
  | W16 -> "word"
  | W32 -> "dword"
  | W64 -> "qword"

let of_ptr_keyword s =
  match String.lowercase_ascii s with
  | "byte" -> Some W8
  | "word" -> Some W16
  | "dword" -> Some W32
  | "qword" -> Some W64
  | _ -> None

let equal (a : t) (b : t) = a = b
let pp fmt w = Format.fprintf fmt "%s" (ptr_keyword w)
