(** Architectural status flags (subset of x86 RFLAGS). *)

type t = {
  zf : bool;  (** zero *)
  sf : bool;  (** sign *)
  cf : bool;  (** carry *)
  of_ : bool;  (** overflow *)
  pf : bool;  (** parity of the low result byte *)
}

val initial : t
(** All flags cleared. *)

val equal : t -> t -> bool

val parity_of : int64 -> bool
(** x86 parity: true when the low byte has an even number of one bits. *)

val of_logic_result : Width.t -> int64 -> t
(** Flags of [AND]/[OR]/[XOR]/[TEST]: CF = OF = 0; ZF/SF/PF from the
    result. *)

val of_add : Width.t -> int64 -> int64 -> int64 -> t
(** [of_add w a b result] — flags of [a + b] at width [w]. *)

val of_sub : Width.t -> int64 -> int64 -> int64 -> t
(** [of_sub w a b result] — flags of [a - b] at width [w] (also CMP). *)

val of_shift : Width.t -> int64 -> last_out:bool -> of_:bool -> t
(** Flags of a non-zero-count shift; [last_out] is the last bit shifted
    out (the new CF). *)

val of_incdec : Width.t -> old_cf:bool -> int64 -> int64 -> int64 -> t
(** INC/DEC flags: like add/sub but CF preserved from [old_cf]. *)

val pp : Format.formatter -> t -> unit

val to_int : t -> int
(** Pack into a small integer (hashing, trace payloads). *)

val of_int : int -> t
