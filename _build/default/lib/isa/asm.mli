(** Textual assembly: a parser for the Intel-flavoured syntax that
    {!Program.pp} prints.

    {[
      .bb_main:                     # block label
        AND RBX, 0b111111111000000  # immediates: decimal, hex, binary
        MOV RAX, qword ptr [R14 + RBX]
        JNZ .bb_main.1
    ]}
    Comments start with [#] or [;]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Program.t
(** Parse a whole program; instructions before any label form an implicit
    ["bb0"] block.  Raises {!Parse_error}. *)

val print : Program.t -> string
(** Canonical textual form (round-trips through {!parse} for programs whose
    non-64-bit widths appear only on memory operands). *)
