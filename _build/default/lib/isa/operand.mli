(** Instruction operands: registers, immediates and memory references. *)

type mem = { base : Reg.t; index : Reg.t option; scale : int; disp : int }
(** [base + index*scale + disp], Intel style; [scale] is 1, 2, 4 or 8. *)

type t = Reg of Reg.t | Imm of int64 | Mem of mem

val mem : ?index:Reg.t option -> ?scale:int -> ?disp:int -> Reg.t -> t
(** Build a memory operand; asserts the scale is valid. *)

val is_mem : t -> bool
val is_reg : t -> bool
val is_imm : t -> bool

val source_regs : t -> Reg.t list
(** Registers read when the operand is evaluated as a source (address
    registers for memory operands). *)

val address_regs : t -> Reg.t list
(** Address registers of a memory operand; empty otherwise. *)

val equal_mem : mem -> mem -> bool
val equal : t -> t -> bool

val pp_mem_inner : Format.formatter -> mem -> unit
(** The bracketed body, e.g. ["R14 + RAX*2 + 8"]. *)

val pp_with_width : Width.t -> Format.formatter -> t -> unit
(** Print with an explicit size keyword on memory operands. *)

val pp : Format.formatter -> t -> unit
