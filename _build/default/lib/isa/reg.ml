(** General-purpose registers of the test ISA.

    The register file mirrors the subset of x86-64 that Revizor-style test
    generators use: fourteen general-purpose registers.  [R14] is reserved by
    convention as the memory-sandbox base pointer and is never selected as a
    destination by the program generator (see {!Amulet.Generator}). *)

type t =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

(** Number of architectural registers. *)
let count = 14

(** Registers in index order. *)
let all = [ RAX; RBX; RCX; RDX; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 ]

(** Dense index of a register, in [0, count). *)
let index = function
  | RAX -> 0
  | RBX -> 1
  | RCX -> 2
  | RDX -> 3
  | RSI -> 4
  | RDI -> 5
  | R8 -> 6
  | R9 -> 7
  | R10 -> 8
  | R11 -> 9
  | R12 -> 10
  | R13 -> 11
  | R14 -> 12
  | R15 -> 13

(** Inverse of {!index}.  Raises [Invalid_argument] on out-of-range input. *)
let of_index = function
  | 0 -> RAX
  | 1 -> RBX
  | 2 -> RCX
  | 3 -> RDX
  | 4 -> RSI
  | 5 -> RDI
  | 6 -> R8
  | 7 -> R9
  | 8 -> R10
  | 9 -> R11
  | 10 -> R12
  | 11 -> R13
  | 12 -> R14
  | 13 -> R15
  | i -> invalid_arg (Printf.sprintf "Reg.of_index: %d" i)

(** The sandbox base register (never written by generated programs). *)
let sandbox_base = R14

let name = function
  | RAX -> "RAX"
  | RBX -> "RBX"
  | RCX -> "RCX"
  | RDX -> "RDX"
  | RSI -> "RSI"
  | RDI -> "RDI"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"
  | R12 -> "R12"
  | R13 -> "R13"
  | R14 -> "R14"
  | R15 -> "R15"

(** Parse a register name (case-insensitive).  Raises [Not_found] if the
    string does not name a register. *)
let of_name s =
  let s = String.uppercase_ascii s in
  let rec find = function
    | [] -> raise Not_found
    | r :: rest -> if String.equal (name r) s then r else find rest
  in
  find all

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare (index a) (index b)
let pp fmt r = Format.pp_print_string fmt (name r)
