(** General-purpose registers of the test ISA.

    Fourteen x86-64-style registers; [R14] is reserved by convention as the
    memory-sandbox base pointer and is never written by generated
    programs. *)

type t =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

val count : int
(** Number of architectural registers. *)

val all : t list
(** Registers in index order. *)

val index : t -> int
(** Dense index in [\[0, count)]. *)

val of_index : int -> t
(** Inverse of {!index}.  Raises [Invalid_argument] when out of range. *)

val sandbox_base : t
(** The sandbox base register ([R14]). *)

val name : t -> string

val of_name : string -> t
(** Parse a register name, case-insensitive.  Raises [Not_found]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
