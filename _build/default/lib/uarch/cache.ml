(** Set-associative cache tag array with true-LRU replacement.

    Only tags and replacement state are modeled: data always lives in the
    simulator's architectural memory image, so the cache determines {e
    timing} and the {e final-state microarchitectural trace}, never values.
    Addresses are byte addresses; lines are identified by their line-aligned
    address. *)

type way = { mutable tag : int; mutable valid : bool; mutable lru : int }

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  data : way array array;  (** [data.(set).(way)] *)
  mutable tick : int;  (** LRU clock *)
}

let create ~name ~sets ~ways ~line_bytes =
  assert (sets > 0 && ways > 0);
  assert (line_bytes land (line_bytes - 1) = 0);
  {
    name;
    sets;
    ways;
    line_bytes;
    data = Array.init sets (fun _ ->
        Array.init ways (fun _ -> { tag = 0; valid = false; lru = 0 }));
    tick = 0;
  }

(** Line-aligned address containing byte address [addr]. *)
let line_of t addr = addr land lnot (t.line_bytes - 1)

let set_of t line = line / t.line_bytes mod t.sets

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let find_way t line =
  let set = t.data.(set_of t line) in
  let rec go i =
    if i >= t.ways then None
    else if set.(i).valid && set.(i).tag = line then Some set.(i)
    else go (i + 1)
  in
  go 0

(** Is the line present? (no replacement-state update) *)
let probe t line = Option.is_some (find_way t line)

(** Is the line present? Updates LRU on hit. *)
let touch t line =
  match find_way t line with
  | Some w ->
      w.lru <- next_tick t;
      true
  | None -> false

(** Does the set of [line] have an invalid (free) way? *)
let has_free_way t line =
  Array.exists (fun w -> not w.valid) t.data.(set_of t line)

(** The line that would be evicted to make room for [line] (LRU victim), or
    [None] if a free way exists.  Does not modify state (gem5 Ruby's
    [cacheProbe]). *)
let victim_of t line =
  let set = t.data.(set_of t line) in
  if Array.exists (fun w -> not w.valid) set then None
  else begin
    let victim = ref set.(0) in
    Array.iter (fun w -> if w.lru < !victim.lru then victim := w) set;
    Some !victim.tag
  end

(** Install [line], evicting the LRU victim if the set is full.  Returns the
    evicted line, if any.  Installing an already-present line just refreshes
    its LRU state. *)
let install t line =
  match find_way t line with
  | Some w ->
      w.lru <- next_tick t;
      None
  | None ->
      let set = t.data.(set_of t line) in
      let free = Array.to_seq set |> Seq.find (fun w -> not w.valid) in
      let target, evicted =
        match free with
        | Some w -> w, None
        | None ->
            let victim = ref set.(0) in
            Array.iter (fun w -> if w.lru < !victim.lru then victim := w) set;
            !victim, Some !victim.tag
      in
      target.tag <- line;
      target.valid <- true;
      target.lru <- next_tick t;
      evicted

(** Remove [line] if present; returns whether it was present. *)
let invalidate t line =
  match find_way t line with
  | Some w ->
      w.valid <- false;
      true
  | None -> false

(** Evict the LRU victim of [line]'s set (without installing anything);
    returns the evicted line.  This models the InvisiSpec implementation bug
    UV1, where a speculative miss on a full set triggers an L1 replacement
    even though no line is installed. *)
let force_replacement t line =
  let set = t.data.(set_of t line) in
  if Array.exists (fun w -> not w.valid) set then None
  else begin
    let victim = ref set.(0) in
    Array.iter (fun w -> if w.lru < !victim.lru then victim := w) set;
    !victim.valid <- false;
    Some !victim.tag
  end

(** All valid line addresses, sorted (the final-state trace). *)
let tags t =
  let acc = ref [] in
  Array.iter
    (fun set -> Array.iter (fun w -> if w.valid then acc := w.tag :: !acc) set)
    t.data;
  List.sort compare !acc

let reset t =
  Array.iter (fun set -> Array.iter (fun w -> w.valid <- false) set) t.data;
  t.tick <- 0

let occupancy t = List.length (tags t)

(* ------------------------------------------------------------------ *)
(* Snapshots (validation reruns restore the exact cache context)       *)
(* ------------------------------------------------------------------ *)

type snapshot = { snap_ways : (int * bool * int) array array; snap_tick : int }

let snapshot t : snapshot =
  {
    snap_ways =
      Array.map (Array.map (fun w -> (w.tag, w.valid, w.lru))) t.data;
    snap_tick = t.tick;
  }

let restore t (s : snapshot) =
  Array.iteri
    (fun i set ->
      Array.iteri
        (fun j (tag, valid, lru) ->
          let w = t.data.(i).(j) in
          w.tag <- tag;
          w.valid <- valid;
          w.lru <- lru)
        set)
    s.snap_ways;
  t.tick <- s.snap_tick

let pp fmt t =
  Format.fprintf fmt "%s(%dx%d): [%a]" t.name t.sets t.ways
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ")
       (fun f l -> Format.fprintf f "0x%x" l))
    (tags t)
