(** Memory-dependence predictor.

    A PC-indexed table of 2-bit saturating counters, in the spirit of gem5's
    store-set predictor collapsed to a single table: a load predicted
    conflict-free may issue past older stores with unresolved addresses
    (enabling Spectre-v4 behaviour on the baseline); a memory-order violation
    trains the counter so the replayed load waits. *)

type t = { table : int array; mask : int }

let create ~bits =
  let size = 1 lsl bits in
  { table = Array.make size 0; mask = size - 1 }

let index t pc = (pc lsr 2) land t.mask

(** May the load at [pc] bypass older unresolved stores? *)
let predict_bypass t ~pc = t.table.(index t pc) < 2

(** A bypass by the load at [pc] caused a memory-order violation. *)
let train_violation t ~pc =
  let i = index t pc in
  t.table.(i) <- min 3 (t.table.(i) + 2)

(** Slow decay on a correct bypass, so stale conflict predictions fade. *)
let train_correct t ~pc =
  let i = index t pc in
  if t.table.(i) > 0 then t.table.(i) <- t.table.(i) - 1

type snapshot = int array

let snapshot t : snapshot = Array.copy t.table
let restore t (s : snapshot) = Array.blit s 0 t.table 0 (Array.length t.table)
let state_words t = Array.copy t.table
let reset t = Array.fill t.table 0 (Array.length t.table) 0
