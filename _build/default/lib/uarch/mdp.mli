(** Memory-dependence predictor: PC-indexed saturating counters in the
    spirit of gem5's store sets.  Cold entries allow loads to bypass older
    unresolved stores (enabling Spectre-v4 on the baseline). *)

type t

val create : bits:int -> t
val predict_bypass : t -> pc:int -> bool
val train_violation : t -> pc:int -> unit
val train_correct : t -> pc:int -> unit

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val state_words : t -> int array
val reset : t -> unit
