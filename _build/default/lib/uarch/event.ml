(** Simulator debug-event log.

    The analogue of gem5's debug flags: a structured record of everything
    relevant that happened during a run.  Violation root-cause analysis
    (paper §3.3) diffs these logs side-by-side; the signature classifier
    that identifies unique violations greps them.  Logging is switched off
    during fuzzing campaigns and re-enabled when a violating test case is
    re-run for analysis. *)

type mem_kind = Demand_load | Spec_load | Store | Expose | Fetch | Prime | Prefetch

let mem_kind_name = function
  | Demand_load -> "Load"
  | Spec_load -> "SpecLd"
  | Store -> "Store"
  | Expose -> "Expose"
  | Fetch -> "Fetch"
  | Prime -> "Prime"
  | Prefetch -> "Prefetch"

type squash_reason = Branch_mispredict | Memdep_violation

type t =
  | Fetched of { cycle : int; pc : int; disasm : string }
  | Predicted of { cycle : int; pc : int; taken : bool; target : int }
  | Executed of { cycle : int; pc : int; disasm : string; spec : bool }
  | Mem_access of {
      cycle : int;
      pc : int;
      kind : mem_kind;
      addr : int;
      line : int;
      spec : bool;
    }
  | Cache_install of { cycle : int; cache : string; line : int }
  | Cache_evict of { cycle : int; cache : string; line : int }
  | Mshr_alloc of { cycle : int; line : int }
  | Mshr_stall of { cycle : int; kind : mem_kind; line : int }
      (** request at the controller-queue head could not get an MSHR *)
  | Spec_buffer_fill of { cycle : int; line : int }
  | Spec_eviction of { cycle : int; line : int; victim : int }
      (** an L1 replacement triggered by a speculative request (UV1) *)
  | Expose_issued of { cycle : int; line : int }
  | Split_access of { cycle : int; pc : int; line1 : int; line2 : int }
  | Cleanup of { cycle : int; line : int; restored : int option }
  | Cleanup_missing of { cycle : int; line : int; reason : string }
      (** squash found speculative state with no cleanup metadata *)
  | Tlb_fill of { cycle : int; page : int; tainted : bool; by_store : bool }
  | Taint_blocked of { cycle : int; pc : int }
  | Lfb_unprotected of { cycle : int; pc : int; line : int }
      (** SpecLFB treated a speculative load as safe (UV6 signature) *)
  | Squashed of { cycle : int; pc : int; reason : squash_reason }
  | Committed of { cycle : int; pc : int; disasm : string }

type log = { mutable events : t list; mutable enabled : bool }

let create ?(enabled = false) () = { events = []; enabled }
let clear log = log.events <- []
let set_enabled log on = log.enabled <- on
let record log e = if log.enabled then log.events <- e :: log.events
let events log = List.rev log.events

let cycle_of = function
  | Fetched { cycle; _ }
  | Predicted { cycle; _ }
  | Executed { cycle; _ }
  | Mem_access { cycle; _ }
  | Cache_install { cycle; _ }
  | Cache_evict { cycle; _ }
  | Mshr_alloc { cycle; _ }
  | Mshr_stall { cycle; _ }
  | Spec_buffer_fill { cycle; _ }
  | Spec_eviction { cycle; _ }
  | Expose_issued { cycle; _ }
  | Split_access { cycle; _ }
  | Cleanup { cycle; _ }
  | Cleanup_missing { cycle; _ }
  | Tlb_fill { cycle; _ }
  | Taint_blocked { cycle; _ }
  | Lfb_unprotected { cycle; _ }
  | Squashed { cycle; _ }
  | Committed { cycle; _ } ->
      cycle

let pp fmt = function
  | Fetched { cycle; pc; disasm } ->
      Format.fprintf fmt "%6d FETCH   0x%x: %s" cycle pc disasm
  | Predicted { cycle; pc; taken; target } ->
      Format.fprintf fmt "%6d PREDICT 0x%x %s -> 0x%x" cycle pc
        (if taken then "taken" else "not-taken")
        target
  | Executed { cycle; pc; disasm; spec } ->
      Format.fprintf fmt "%6d EXEC%s 0x%x: %s" cycle
        (if spec then "(s)" else "   ")
        pc disasm
  | Mem_access { cycle; pc; kind; addr; line; spec } ->
      Format.fprintf fmt "%6d MEM     %s%s pc=0x%x addr=0x%x line=0x%x" cycle
        (mem_kind_name kind)
        (if spec then "(spec)" else "")
        pc addr line
  | Cache_install { cycle; cache; line } ->
      Format.fprintf fmt "%6d INSTALL %s line=0x%x" cycle cache line
  | Cache_evict { cycle; cache; line } ->
      Format.fprintf fmt "%6d EVICT   %s line=0x%x" cycle cache line
  | Mshr_alloc { cycle; line } ->
      Format.fprintf fmt "%6d MSHR    alloc line=0x%x" cycle line
  | Mshr_stall { cycle; kind; line } ->
      Format.fprintf fmt "%6d MSHR    stall %s line=0x%x" cycle
        (mem_kind_name kind) line
  | Spec_buffer_fill { cycle; line } ->
      Format.fprintf fmt "%6d SPECBUF fill line=0x%x" cycle line
  | Spec_eviction { cycle; line; victim } ->
      Format.fprintf fmt "%6d SPECEVT spec miss line=0x%x evicted victim=0x%x"
        cycle line victim
  | Expose_issued { cycle; line } ->
      Format.fprintf fmt "%6d EXPOSE  line=0x%x" cycle line
  | Split_access { cycle; pc; line1; line2 } ->
      Format.fprintf fmt "%6d SPLIT   pc=0x%x lines=0x%x,0x%x" cycle pc line1
        line2
  | Cleanup { cycle; line; restored } ->
      Format.fprintf fmt "%6d CLEANUP line=0x%x%s" cycle line
        (match restored with
        | None -> ""
        | Some v -> Printf.sprintf " restored=0x%x" v)
  | Cleanup_missing { cycle; line; reason } ->
      Format.fprintf fmt "%6d NOCLEAN line=0x%x (%s)" cycle line reason
  | Tlb_fill { cycle; page; tainted; by_store } ->
      Format.fprintf fmt "%6d TLBFILL page=0x%x%s%s" cycle page
        (if tainted then " tainted" else "")
        (if by_store then " by-store" else "")
  | Taint_blocked { cycle; pc } ->
      Format.fprintf fmt "%6d TAINT   blocked pc=0x%x" cycle pc
  | Lfb_unprotected { cycle; pc; line } ->
      Format.fprintf fmt "%6d LFB     unprotected spec load pc=0x%x line=0x%x"
        cycle pc line
  | Squashed { cycle; pc; reason } ->
      Format.fprintf fmt "%6d SQUASH  pc=0x%x (%s)" cycle pc
        (match reason with
        | Branch_mispredict -> "branch mispredict"
        | Memdep_violation -> "memory-dependence violation")
  | Committed { cycle; pc; disasm } ->
      Format.fprintf fmt "%6d COMMIT  0x%x: %s" cycle pc disasm

let pp_log fmt log =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp e) (events log)
