(** Fully-associative data TLB with LRU replacement.

    Entries map virtual page numbers (address / 4096; virtual = physical in
    SE mode).  The final set of cached page numbers is part of the default
    microarchitectural trace, which is how the STT speculative-store leak
    (KV3) becomes visible. *)

let page_bits = 12

type entry = { mutable page : int; mutable valid : bool; mutable lru : int }

type t = { entries : entry array; mutable tick : int }

let create ~entries =
  assert (entries > 0);
  {
    entries = Array.init entries (fun _ -> { page = 0; valid = false; lru = 0 });
    tick = 0;
  }

let page_of_addr addr = addr lsr page_bits

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let find t page =
  Array.to_seq t.entries |> Seq.find (fun e -> e.valid && e.page = page)

let probe t page = Option.is_some (find t page)

(** Translate an access to [page]: hit updates LRU, miss installs the entry
    (evicting the LRU victim).  Returns [`Hit] or [`Miss]. *)
let access t page =
  match find t page with
  | Some e ->
      e.lru <- next_tick t;
      `Hit
  | None ->
      let target =
        match Array.to_seq t.entries |> Seq.find (fun e -> not e.valid) with
        | Some e -> e
        | None ->
            let victim = ref t.entries.(0) in
            Array.iter (fun e -> if e.lru < !victim.lru then victim := e) t.entries;
            !victim
      in
      target.page <- page;
      target.valid <- true;
      target.lru <- next_tick t;
      `Miss

(** All cached page numbers, sorted. *)
let pages t =
  let acc = ref [] in
  Array.iter (fun e -> if e.valid then acc := e.page :: !acc) t.entries;
  List.sort compare !acc

let reset t =
  Array.iter (fun e -> e.valid <- false) t.entries;
  t.tick <- 0

type snapshot = { snap_entries : (int * bool * int) array; snap_tick : int }

let snapshot t : snapshot =
  {
    snap_entries = Array.map (fun e -> (e.page, e.valid, e.lru)) t.entries;
    snap_tick = t.tick;
  }

let restore t (s : snapshot) =
  Array.iteri
    (fun i (page, valid, lru) ->
      let e = t.entries.(i) in
      e.page <- page;
      e.valid <- valid;
      e.lru <- lru)
    s.snap_entries;
  t.tick <- s.snap_tick

let pp fmt t =
  Format.fprintf fmt "TLB: [%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ")
       (fun f p -> Format.fprintf f "0x%x" (p lsl page_bits)))
    (pages t)
