lib/uarch/simulator.ml: Amulet_emu Amulet_isa Array Branch_pred Cache Cond Config Event Inst Int64 Mdp Memory Memsys Operand Pipeline Program Reg State Tlb Width
