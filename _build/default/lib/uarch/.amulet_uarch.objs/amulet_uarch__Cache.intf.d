lib/uarch/cache.mli: Format
