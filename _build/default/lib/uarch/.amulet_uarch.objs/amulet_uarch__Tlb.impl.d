lib/uarch/tlb.ml: Array Format List Option Seq
