lib/uarch/pipeline.ml: Amulet_emu Amulet_isa Array Branch_pred Config Event Exec Flags Hashtbl Inst Int64 List Mdp Memory Memsys Operand Printf Program Reg State Width
