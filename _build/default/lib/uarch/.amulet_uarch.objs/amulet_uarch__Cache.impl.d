lib/uarch/cache.ml: Array Format List Option Seq
