lib/uarch/mdp.ml: Array
