lib/uarch/config.ml: Format
