lib/uarch/mdp.mli:
