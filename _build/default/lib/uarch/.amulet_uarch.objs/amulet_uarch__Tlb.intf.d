lib/uarch/tlb.mli: Format
