lib/uarch/memsys.ml: Amulet_isa Cache Config Event Hashtbl List Queue Tlb Width
