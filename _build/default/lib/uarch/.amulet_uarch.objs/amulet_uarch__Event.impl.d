lib/uarch/event.ml: Format List Printf
