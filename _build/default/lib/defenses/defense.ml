(** Catalogue of the secure-speculation countermeasures under test.

    Each entry pairs a simulator configuration (the defense mechanism plus
    any implementation bugs of the released artifact, see
    {!Amulet_uarch.Config}) with the leakage contract the paper tests it
    against (§3.1: "we test them against a contract that matches their
    security guarantees") and the cache-priming style its harness uses
    (§3.5). *)

open Amulet_uarch
open Amulet_contracts

(** How the executor initializes the cache state before each input. *)
type priming =
  | Fill_sets
      (** run [sets x ways] out-of-sandbox loads through the pipeline so
          every L1D set starts full (InvisiSpec, STT) — makes evictions
          visible but costs simulated instructions *)
  | Flush
      (** invalidate caches via the simulator hook (CleanupSpec, SpecLFB) —
          fast, installs-only visibility *)

type t = {
  name : string;
  description : string;
  defense : Config.defense;
  contract : Contract.t;
  priming : priming;
  sandbox_pages : int;
      (** 1 when the TLB is unprotected (so TLB state cannot produce noise
          violations); 128 for STT, which is tested for TLB leaks too *)
  include_l1i : bool;  (** include L1I tags in the default trace *)
}

(* ------------------------------------------------------------------ *)
(* Presets                                                             *)
(* ------------------------------------------------------------------ *)

let baseline =
  {
    name = "baseline";
    description = "unprotected out-of-order CPU (gem5 O3 analogue)";
    defense = Config.Baseline;
    contract = Contract.ct_seq;
    priming = Fill_sets;
    sandbox_pages = 1;
    include_l1i = false;
  }

(** InvisiSpec (Futuristic), as released: carries the UV1 speculative-
    eviction bug. *)
let invisispec =
  {
    name = "invisispec";
    description = "InvisiSpec (Futuristic): invisible speculative loads + expose";
    defense = Config.Invisispec { Config.iv_patched_eviction = false };
    contract = Contract.ct_seq;
    priming = Fill_sets;
    sandbox_pages = 1;
    include_l1i = false;
  }

(** InvisiSpec with the UV1 patch applied (paper §4.5.1). *)
let invisispec_patched =
  {
    invisispec with
    name = "invisispec-patched";
    defense = Config.Invisispec { Config.iv_patched_eviction = true };
  }

(** CleanupSpec, as released: UV3 (stores not cleaned) and UV4 (split
    requests not cleaned) bugs present. *)
let cleanupspec =
  {
    name = "cleanupspec";
    description = "CleanupSpec: speculative cache changes undone on squash";
    defense =
      Config.Cleanupspec
        { Config.cs_patched_store_cleanup = false; cs_patched_split_cleanup = false };
    contract = Contract.ct_seq;
    priming = Flush;
    sandbox_pages = 1;
    include_l1i = false;
  }

(** CleanupSpec with the UV3 store-cleanup patch (Table 8, "Patched"). *)
let cleanupspec_patched =
  {
    cleanupspec with
    name = "cleanupspec-patched";
    defense =
      Config.Cleanupspec
        { Config.cs_patched_store_cleanup = true; cs_patched_split_cleanup = false };
  }

(** CleanupSpec with all implementation bugs patched and the L1I cache
    included in the trace — the configuration under which the unXpec timing
    channel (KV2) becomes visible: input-dependent cleanup latency changes
    how far the front-end prefetches before the test ends. *)
let cleanupspec_unxpec =
  {
    cleanupspec with
    name = "cleanupspec-unxpec";
    description = "CleanupSpec (fully patched), L1I included in the trace (KV2 study)";
    defense =
      Config.Cleanupspec
        { Config.cs_patched_store_cleanup = true; cs_patched_split_cleanup = true };
    include_l1i = true;
  }

(** InvisiSpec with the L1I cache included in the trace (the KV1 study:
    InvisiSpec does not protect the instruction cache). *)
let invisispec_l1i =
  {
    invisispec_patched with
    name = "invisispec-l1i";
    description = "InvisiSpec (patched), L1I included in the trace (KV1 study)";
    include_l1i = true;
  }

(** STT (Futuristic), as released: KV3 (tainted stores fill the TLB). *)
let stt =
  {
    name = "stt";
    description = "STT (Futuristic): speculative taint tracking";
    defense = Config.Stt { Config.stt_patched_store_tlb = false };
    contract = Contract.arch_seq;
    priming = Fill_sets;
    sandbox_pages = 128;
    include_l1i = false;
  }

let stt_patched =
  {
    stt with
    name = "stt-patched";
    defense = Config.Stt { Config.stt_patched_store_tlb = true };
  }

(** SpecLFB, as released: UV6 (first speculative load unprotected). *)
let speclfb =
  {
    name = "speclfb";
    description = "SpecLFB: speculative misses parked in the line-fill buffer";
    defense = Config.Speclfb { Config.lfb_patched_first_load = false };
    contract = Contract.ct_seq;
    priming = Flush;
    sandbox_pages = 1;
    include_l1i = false;
  }

let speclfb_patched =
  {
    speclfb with
    name = "speclfb-patched";
    defense = Config.Speclfb { Config.lfb_patched_first_load = true };
  }

(** Delay-on-Miss (Sakalis et al., "efficient invisible speculative
    execution"): speculative loads that miss the L1 simply wait until they
    are safe.  Conservative but structurally leak-free for the miss path;
    hit-path replacement state is the known residual channel. *)
let delay_on_miss =
  {
    name = "delay-on-miss";
    description = "Delay-on-Miss: speculative L1 misses wait until safe";
    defense = Config.Delay_on_miss;
    contract = Contract.ct_seq;
    priming = Fill_sets;
    sandbox_pages = 1;
    include_l1i = false;
  }

(** GhostMinion (Ainsworth, MICRO'21): the strictness-ordered redesign the
    paper names as the fix for the speculative-interference leaks (UV2) —
    speculative fills use dedicated MSHRs and a dedicated controller queue,
    so younger speculative work can never delay older accesses. *)
let ghostminion =
  {
    name = "ghostminion";
    description = "GhostMinion: strictness-ordered speculative buffer";
    defense = Config.Ghostminion;
    contract = Contract.ct_seq;
    priming = Fill_sets;
    sandbox_pages = 1;
    include_l1i = false;
  }

let all =
  [
    baseline;
    invisispec;
    invisispec_patched;
    invisispec_l1i;
    cleanupspec;
    cleanupspec_patched;
    cleanupspec_unxpec;
    stt;
    stt_patched;
    speclfb;
    speclfb_patched;
    delay_on_miss;
    ghostminion;
  ]

let find name =
  let canonical = String.lowercase_ascii name in
  List.find_opt (fun d -> d.name = canonical) all

(** Simulator configuration for this defense (optionally amplified with
    smaller structures, §3.4). *)
let config ?l1d_ways ?mshrs t =
  let base = Config.with_defense t.defense Config.default in
  match l1d_ways, mshrs with
  | None, None -> base
  | _ ->
      Config.amplified
        ?l1d_ways
        ?mshrs
        base

let pp fmt t = Format.fprintf fmt "%s (%s)" t.name t.contract.Contract.name
