lib/defenses/defense.mli: Amulet_contracts Amulet_uarch Config Contract Format
