lib/defenses/defense.ml: Amulet_contracts Amulet_uarch Config Contract Format List String
