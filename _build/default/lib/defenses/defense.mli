(** Catalogue of the secure-speculation countermeasures under test: each
    entry pairs a simulator configuration (mechanism + the released
    artifact's bugs) with the contract the paper tests it against and its
    harness's cache-priming style (§3.5). *)

open Amulet_uarch
open Amulet_contracts

type priming =
  | Fill_sets
      (** fill every L1D set with out-of-sandbox lines through the pipeline
          (InvisiSpec, STT): evictions become visible, at a simulated-
          instruction cost *)
  | Flush  (** invalidate via the simulator hook (CleanupSpec, SpecLFB) *)

type t = {
  name : string;
  description : string;
  defense : Config.defense;
  contract : Contract.t;
  priming : priming;
  sandbox_pages : int;
      (** 1 when the TLB is unprotected; 128 for STT (tested for TLB leaks) *)
  include_l1i : bool;  (** include L1I tags in the default trace *)
}

(** {1 Presets} *)

val baseline : t

val invisispec : t
(** As released: UV1 present. *)

val invisispec_patched : t

val invisispec_l1i : t
(** Patched, L1I in the trace (KV1 study). *)

val cleanupspec : t
(** As released: UV3 + UV4 present. *)

val cleanupspec_patched : t
(** UV3 fixed. *)

val cleanupspec_unxpec : t
(** Fully patched, L1I in the trace (KV2 study). *)

val stt : t
(** As released: KV3 present. *)

val stt_patched : t

val speclfb : t
(** As released: UV6 present. *)

val speclfb_patched : t

val delay_on_miss : t
(** Extension: speculative misses wait until safe. *)

val ghostminion : t
(** Extension: strictness-ordered speculative buffer. *)

val all : t list
val find : string -> t option

val config : ?l1d_ways:int -> ?mshrs:int -> t -> Config.t
(** Simulator configuration for the defense, optionally amplified with
    smaller contended structures (§3.4). *)

val pp : Format.formatter -> t -> unit
