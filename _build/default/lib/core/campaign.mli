(** Testing campaigns: many fuzzing rounds against one defense, with the
    metrics the paper's evaluation reports (Tables 3, 4, 6). *)

open Amulet_defenses

type config = {
  fuzzer : Fuzzer.config;
  n_programs : int;
  seed : int;
  stop_after_violations : int option;
  classify : bool;
}

val default_config : config

type result = {
  defense : Defense.t;
  contract_name : string;
  violations : Violation.t list;
  violation_classes : (Analysis.leak_class * int) list;
  programs_run : int;
  discarded_programs : int;
  test_cases : int;
  duration : float;
  throughput : float;  (** test cases per second *)
  detection_times : float list;
}

val run : ?on_violation:(Violation.t -> unit) -> config -> Defense.t -> result

val run_parallel : ?instances:int -> config -> Defense.t -> result
(** The paper's parallel methodology: independent instances on OCaml
    domains, distinct derived seeds, merged results (durations combine as
    the slowest instance's wall clock). *)

val detected : result -> bool
val avg_detection_time : result -> float option
val unique_violations : result -> int
val pp : Format.formatter -> result -> unit
