(** Test-case inputs: initial register values and sandbox memory contents.

    An input is "a binary file, generated with a seeded pseudo-random number
    generator, that initializes the test program's memory and registers"
    (paper §2.4).  [R14] is pinned to the sandbox base by {!to_state} and is
    not part of the random payload. *)

open Amulet_isa
open Amulet_emu

type t = { regs : int64 array; mem : Bytes.t }

let pages t = Bytes.length t.mem / Memory.page_size

(* Random register values are masked to the sandbox-offset range so that
   address-forming registers land inside the sandbox even before the
   generator's AND instrumentation; high bits are mixed in from a second
   draw so data values still cover the full 64-bit space occasionally. *)
let random_reg rng ~mem_bytes =
  let low = Int64.logand (Rng.next64 rng) (Int64.of_int (mem_bytes - 1)) in
  if Rng.bool rng ~p:0.25 then Int64.logor low (Int64.shift_left (Rng.next64 rng) 32)
  else low

let generate rng ~pages =
  let mem_bytes = pages * Memory.page_size in
  let regs = Array.init Reg.count (fun _ -> random_reg rng ~mem_bytes) in
  let mem = Bytes.init mem_bytes (fun _ -> Char.chr (Rng.int rng 256)) in
  { regs; mem }

(** Materialize architectural state for this input, pinning the sandbox base
    register. *)
let to_state (t : t) : State.t =
  let st = State.create ~pages:(pages t) () in
  Array.iteri (fun i v -> State.write_reg st (Reg.of_index i) v) t.regs;
  State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
  Memory.load_blob st.State.mem (Bytes.to_string t.mem);
  st

(* ------------------------------------------------------------------ *)
(* Boosting: taint-directed mutation (paper §2.4 "inputs can also be
   mutated, preserving only the parts influencing the contract trace") *)
(* ------------------------------------------------------------------ *)

(** Copy [t], randomizing exactly the input atoms NOT in the taint tracker's
    relevant set.  The resulting input provably has the same contract trace
    (taint tracking is conservative) but different speculative behaviour. *)
let mutate_free rng (taint : Taint.t) (t : t) =
  let mem_bytes = Bytes.length t.mem in
  let regs = Array.copy t.regs in
  let mem = Bytes.copy t.mem in
  List.iter
    (fun r ->
      if not (Taint.is_relevant_reg taint r) && not (Reg.equal r Reg.sandbox_base)
      then regs.(Reg.index r) <- random_reg rng ~mem_bytes)
    Reg.all;
  let words = mem_bytes / 8 in
  for k = 0 to words - 1 do
    if not (Taint.is_relevant_word taint k) then
      for b = 0 to 7 do
        Bytes.set mem ((k * 8) + b) (Char.chr (Rng.int rng 256))
      done
  done;
  { regs; mem }

let equal a b = Array.for_all2 Int64.equal a.regs b.regs && Bytes.equal a.mem b.mem

(** FNV digest of the input (test-case identification in reports). *)
let hash t =
  let h = ref 0xcbf29ce484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  Array.iter mix t.regs;
  Bytes.iter (fun c -> mix (Int64.of_int (Char.code c))) t.mem;
  !h

let pp fmt t =
  List.iter
    (fun r ->
      if not (Reg.equal r Reg.sandbox_base) then
        Format.fprintf fmt "%s=0x%Lx " (Reg.name r) t.regs.(Reg.index r))
    Reg.all;
  Format.fprintf fmt "mem#%Lx" (hash t)
