(** Test-case inputs: initial register values and sandbox memory. *)

open Amulet_emu

type t = { regs : int64 array; mem : Bytes.t }

val pages : t -> int
val generate : Rng.t -> pages:int -> t

val to_state : t -> State.t
(** Materialize architectural state; pins [R14] to the sandbox base. *)

val mutate_free : Rng.t -> Taint.t -> t -> t
(** Boosting: randomize exactly the atoms NOT in the taint tracker's
    relevant set — same contract trace, different speculative behaviour. *)

val equal : t -> t -> bool
val hash : t -> int64
val pp : Format.formatter -> t -> unit
