(** Violation persistence: save findings as self-contained text files
    (program assembly + both inputs) and reload them for later analysis.
    The original microarchitectural context is not stored; reloaded
    violations are revalidated under fresh contexts. *)

open Amulet_isa

type stored = {
  defense_name : string;
  contract_name : string;
  program : Program.flat;
  input_a : Input.t;
  input_b : Input.t;
  signature : string option;
}

exception Format_error of string

val of_violation : Violation.t -> stored
val save : stored -> string -> unit

val load : string -> stored
(** Raises {!Format_error} on malformed input. *)

type reanalysis = {
  reproduced : bool;
  leak_class : Analysis.leak_class option;
  minimization : Minimize.result option;
}

val reanalyze :
  ?minimize:bool -> ?sim_config:Amulet_uarch.Config.t -> stored -> reanalysis
(** Revalidate under fresh contexts, classify, and optionally minimize. *)
