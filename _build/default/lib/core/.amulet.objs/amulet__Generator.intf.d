lib/core/generator.mli: Amulet_isa Program Reg Rng
