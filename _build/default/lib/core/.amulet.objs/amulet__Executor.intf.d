lib/core/executor.mli: Amulet_defenses Amulet_isa Amulet_uarch Config Defense Event Input Program Simulator Stats Utrace
