lib/core/rng.mli:
