lib/core/input.mli: Amulet_emu Bytes Format Rng State Taint
