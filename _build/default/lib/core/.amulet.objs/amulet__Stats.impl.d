lib/core/stats.ml: Format Hashtbl List Unix
