lib/core/generator.ml: Amulet_isa Cond Inst Int64 List Operand Printf Program Reg Rng Width
