lib/core/utrace.ml: Array Format Int Int64 List Option Printf String
