lib/core/analysis.mli: Amulet_defenses Amulet_isa Amulet_uarch Event Executor Format Program Violation
