lib/core/utrace.mli: Format
