lib/core/rng.ml: Int64 List
