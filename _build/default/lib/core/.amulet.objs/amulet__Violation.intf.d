lib/core/violation.mli: Amulet_contracts Amulet_isa Amulet_uarch Contract Format Input Program Utrace
