lib/core/violation_io.mli: Amulet_isa Amulet_uarch Analysis Input Minimize Program Violation
