lib/core/fuzzer.mli: Amulet_contracts Amulet_defenses Amulet_isa Amulet_uarch Contract Defense Executor Generator Program Stats Utrace Violation
