lib/core/executor.ml: Amulet_defenses Amulet_uarch Config Defense Event Input Simulator Stats Utrace
