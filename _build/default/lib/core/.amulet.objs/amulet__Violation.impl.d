lib/core/violation.ml: Amulet_contracts Amulet_isa Amulet_uarch Contract Format Input List Printf Program Utrace
