lib/core/reproducers.ml: Amulet_defenses Amulet_isa Analysis Asm Executor Fuzzer List Program Stats String
