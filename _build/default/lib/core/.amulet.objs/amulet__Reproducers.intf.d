lib/core/reproducers.mli: Amulet_defenses Amulet_isa Amulet_uarch Analysis Program Violation
