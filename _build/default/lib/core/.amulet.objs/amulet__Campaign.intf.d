lib/core/campaign.mli: Amulet_defenses Analysis Defense Format Fuzzer Violation
