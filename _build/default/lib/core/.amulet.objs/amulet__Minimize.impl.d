lib/core/minimize.ml: Amulet_contracts Amulet_defenses Amulet_isa Array Defense Executor Format Input Inst Int64 Leakage_model Option Program Stats Utrace Violation
