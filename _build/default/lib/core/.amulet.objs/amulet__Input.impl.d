lib/core/input.ml: Amulet_emu Amulet_isa Array Bytes Char Format Int64 List Memory Reg Rng State Taint
