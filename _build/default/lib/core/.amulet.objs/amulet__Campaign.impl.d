lib/core/campaign.ml: Amulet_contracts Amulet_defenses Analysis Defense Domain Executor Float Format Fuzzer Hashtbl List Option Stats Unix Violation
