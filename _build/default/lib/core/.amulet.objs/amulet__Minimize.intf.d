lib/core/minimize.mli: Amulet_contracts Amulet_defenses Amulet_isa Amulet_uarch Contract Defense Format Input Program Violation
