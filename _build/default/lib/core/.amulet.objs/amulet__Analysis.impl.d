lib/core/analysis.ml: Amulet_defenses Amulet_isa Amulet_uarch Array Config Event Executor Format Inst List Operand Printf Program Reg String Violation
