(** Violation minimization: delta-debug a violating program by replacing
    instructions with [NOP] while the contract-equal / μarch-different
    property of its input pair persists. *)

open Amulet_isa
open Amulet_contracts
open Amulet_defenses

type result = {
  minimized : Program.flat;
  removed : int;  (** instructions replaced by NOP *)
  kept : int;  (** non-NOP instructions remaining (incl. Exit) *)
}

val still_violates :
  defense:Defense.t ->
  contract:Contract.t ->
  sim_config:Amulet_uarch.Config.t option ->
  Program.flat ->
  Input.t ->
  Input.t ->
  bool
(** Does the pair still form a validated violation on this program, under a
    fresh executor? *)

val minimize : ?sim_config:Amulet_uarch.Config.t -> Violation.t -> result
val pp_result : Format.formatter -> result -> unit
