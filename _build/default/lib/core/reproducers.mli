(** Crafted reproducer programs for the paper's example violations
    (Figures 4/6/8/9, the CleanupSpec tables, Spectre-v4). *)

open Amulet_isa

type t = {
  name : string;
  description : string;
  asm : string;
  defense : Amulet_defenses.Defense.t;
  expected_class : Analysis.leak_class;
}

val figure4 : t
(** InvisiSpec UV1: speculative L1D eviction. *)

val figure6 : t
(** InvisiSpec UV2: MSHR speculative interference (amplified config). *)

val figure8 : t
(** SpecLFB UV6: first speculative load unprotected. *)

val figure9 : t
(** STT KV3: tainted store fills the D-TLB. *)

val uv3 : t
val uv4 : t
val uv5 : t
val unxpec_kv2 : t
val spectre_v4 : t

val all : t list
val find : string -> t option
val flat : t -> Program.flat

val hunt :
  ?seed:int ->
  ?n_base_inputs:int ->
  ?boosts_per_input:int ->
  ?sim_config:Amulet_uarch.Config.t ->
  t ->
  Violation.t option
(** Fuzz the crafted program against its defense (auto-amplifying for UV2);
    falls back to a random campaign filtered by the expected signature when
    hand-crafted timing does not line up.  The returned violation has its
    signature filled in. *)
