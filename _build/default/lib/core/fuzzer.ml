(** The relational fuzzing round: generate a program and inputs, collect
    contract traces (leakage model) and microarchitectural traces
    (executor), and flag validated contract violations (Definition 2.1).

    Input boosting follows Revizor: one taint-tracking pass per base input
    identifies the input atoms the contract trace depends on; mutants
    randomize the complement, guaranteeing same-contract-trace input classes
    in which any microarchitectural difference is a leak. *)

open Amulet_isa
open Amulet_contracts
open Amulet_defenses

type config = {
  n_base_inputs : int;
  boosts_per_input : int;  (** mutants per base input *)
  contract : Contract.t option;  (** override the defense's default contract *)
  generator : Generator.config;
  executor_mode : Executor.mode;
  trace_format : Utrace.format;
  boot_insts : int;
  sim_config : Amulet_uarch.Config.t option;  (** override (amplification) *)
}

let default_config =
  {
    n_base_inputs = 10;
    boosts_per_input = 4;
    contract = None;
    generator = Generator.default;
    executor_mode = Executor.Opt;
    trace_format = Utrace.L1d_tlb;
    boot_insts = Amulet_uarch.Simulator.default_boot_insts;
    sim_config = None;
  }

type t = {
  cfg : config;
  defense : Defense.t;
  contract : Contract.t;
  executor : Executor.t;
  stats : Stats.t;
  rng : Rng.t;
  started_at : float;
}

let create ?(cfg = default_config) ~seed (defense : Defense.t) =
  let stats = Stats.create () in
  let contract = Option.value cfg.contract ~default:defense.Defense.contract in
  let generator =
    { cfg.generator with Generator.sandbox_pages = defense.Defense.sandbox_pages }
  in
  let cfg = { cfg with generator } in
  let executor =
    Executor.create ~boot_insts:cfg.boot_insts ~format:cfg.trace_format
      ?sim_config:cfg.sim_config ~mode:cfg.executor_mode defense stats
  in
  {
    cfg;
    defense;
    contract;
    executor;
    stats;
    rng = Rng.create ~seed;
    started_at = Unix.gettimeofday ();
  }

let stats t = t.stats
let contract t = t.contract

(* ------------------------------------------------------------------ *)
(* Per-program round                                                   *)
(* ------------------------------------------------------------------ *)

type test_case = {
  input : Input.t;
  ctrace_hash : int64;
  mutable outcome : Executor.outcome option;
}

type round_result =
  | No_violation of { test_cases : int }
  | Found of Violation.t
  | Discarded of string
      (** the program faulted in the model or simulator and was dropped *)

(* Contract trace of one input; [collect_taint] additionally runs the taint
   tracker for boosting. *)
let ctrace_of t flat input ~collect_taint =
  Stats.time t.stats Stats.Ctrace_extraction (fun () ->
      let state = Input.to_state input in
      Leakage_model.collect ~collect_taint t.contract flat state)

(* Build the input population: base inputs plus taint-directed mutants. *)
let build_test_cases t flat =
  let cases = ref [] in
  let fault = ref None in
  let n = t.cfg.n_base_inputs in
  for _ = 1 to n do
    if !fault = None then begin
      let base = Input.generate t.rng ~pages:t.cfg.generator.Generator.sandbox_pages in
      let result = ctrace_of t flat base ~collect_taint:true in
      match result.Leakage_model.fault with
      | Some f -> fault := Some f
      | None ->
          cases := { input = base; ctrace_hash = result.ctrace_hash; outcome = None } :: !cases;
          (match result.Leakage_model.taint with
          | None -> ()
          | Some taint ->
              for _ = 1 to t.cfg.boosts_per_input do
                let mutant = Input.mutate_free t.rng taint base in
                (* taint tracking is conservative, but verify: a mutant whose
                   contract trace moved would poison its class *)
                let mr = ctrace_of t flat mutant ~collect_taint:false in
                if mr.Leakage_model.fault = None then
                  cases :=
                    { input = mutant; ctrace_hash = mr.ctrace_hash; outcome = None }
                    :: !cases
              done)
    end
  done;
  match !fault with Some f -> Error f | None -> Ok (List.rev !cases)

(* Group test-case indices by contract-trace hash. *)
let classes_of cases =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i c ->
      let existing = Option.value (Hashtbl.find_opt tbl c.ctrace_hash) ~default:[] in
      Hashtbl.replace tbl c.ctrace_hash (i :: existing))
    cases;
  Hashtbl.fold (fun h members acc -> (h, List.rev members) :: acc) tbl []

(* Validate a candidate pair by re-running both inputs from a common,
   exactly reproduced microarchitectural context (Definition 2.1 fixes the
   context mu).  Following the paper, each input's starting context is tried
   in turn — a difference that persists under either shared context is a
   real, input-caused leak; differences explained entirely by the drifting
   Opt-mode context disappear here and are rejected. *)
let validate t flat (a : test_case) (b : test_case) =
  let try_ctx ctx =
    let ta = Executor.run_input_with_context t.executor flat a.input ctx in
    let tb = Executor.run_input_with_context t.executor flat b.input ctx in
    if Utrace.equal ta tb then None else Some (ta, tb, ctx)
  in
  let ctxs =
    List.filter_map
      (fun (o : Executor.outcome option) ->
        Option.map (fun o -> o.Executor.context) o)
      [ a.outcome; b.outcome ]
  in
  List.fold_left
    (fun acc ctx -> match acc with Some _ -> acc | None -> try_ctx ctx)
    None ctxs

(** Run one fuzzing round on [flat] (typically a freshly generated program):
    collect traces for a population of inputs and report the first validated
    violation, if any. *)
let test_program t (flat : Program.flat) : round_result =
  match build_test_cases t flat with
  | Error f -> Discarded ("leakage model fault: " ^ f)
  | Ok [] -> Discarded "no test cases"
  | Ok cases -> (
      Executor.start_program t.executor;
      let arr = Array.of_list cases in
      let sim_fault = ref None in
      Array.iter
        (fun c ->
          if !sim_fault = None then begin
            let o = Executor.run_input t.executor flat c.input in
            (match o.Executor.run_fault with
            | Some f -> sim_fault := Some f
            | None -> ());
            c.outcome <- Some o
          end)
        arr;
      match !sim_fault with
      | Some f -> Discarded ("simulator fault: " ^ f)
      | None -> (
          let candidate = ref None in
          List.iter
            (fun (_hash, members) ->
              match members with
              | first :: rest when !candidate = None ->
                  let a = arr.(first) in
                  List.iter
                    (fun j ->
                      if !candidate = None then
                        let b = arr.(j) in
                        match a.outcome, b.outcome with
                        | Some oa, Some ob ->
                            if not (Utrace.equal oa.Executor.trace ob.Executor.trace)
                            then
                              (* candidate: validate under a common context *)
                              (match validate t flat a b with
                              | Some (ta, tb, ctx) -> candidate := Some (a, b, ta, tb, ctx)
                              | None -> ())
                        | _ -> ())
                    rest
              | _ -> ())
            (classes_of (Array.to_list arr));
          match !candidate with
          | None -> No_violation { test_cases = Array.length arr }
          | Some (a, b, ta, tb, ctx) ->
              Stats.count_violation t.stats;
              Found
                {
                  Violation.program = flat;
                  program_text = Format.asprintf "%a" Program.pp_flat flat;
                  input_a = a.input;
                  input_b = b.input;
                  trace_a = ta;
                  trace_b = tb;
                  context = ctx;
                  ctrace_hash = a.ctrace_hash;
                  contract = t.contract;
                  defense_name = t.defense.Defense.name;
                  detection_seconds = Unix.gettimeofday () -. t.started_at;
                  signature = None;
                }))

(** Generate a fresh random program and fuzz it. *)
let round t : round_result =
  let flat =
    Stats.time t.stats Stats.Test_generation (fun () ->
        Generator.generate_flat ~cfg:t.cfg.generator t.rng)
  in
  test_program t flat
