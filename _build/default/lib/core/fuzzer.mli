(** The relational fuzzing round: generate a program and a boosted input
    population, collect contract and microarchitectural traces, and flag
    validated contract violations (Definition 2.1). *)

open Amulet_isa
open Amulet_contracts
open Amulet_defenses

type config = {
  n_base_inputs : int;
  boosts_per_input : int;
  contract : Contract.t option;  (** override the defense's default *)
  generator : Generator.config;
  executor_mode : Executor.mode;
  trace_format : Utrace.format;
  boot_insts : int;
  sim_config : Amulet_uarch.Config.t option;  (** amplification override *)
}

val default_config : config

type t

val create : ?cfg:config -> seed:int -> Defense.t -> t
val stats : t -> Stats.t
val contract : t -> Contract.t

type round_result =
  | No_violation of { test_cases : int }
  | Found of Violation.t
  | Discarded of string

val test_program : t -> Program.flat -> round_result
(** Fuzz one (typically generated) program: build the input population,
    execute, compare within contract classes, validate candidates under a
    shared context. *)

val round : t -> round_result
(** Generate a fresh random program and fuzz it. *)
