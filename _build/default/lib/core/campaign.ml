(** Testing campaigns: many fuzzing rounds against one defense, with the
    metrics the paper's evaluation reports (violations found, average
    detection time, unique violation classes, testing throughput, campaign
    execution time — Tables 3, 4, 6). *)

open Amulet_defenses

type config = {
  fuzzer : Fuzzer.config;
  n_programs : int;
  seed : int;
  stop_after_violations : int option;
      (** stop the campaign early once this many violations are found *)
  classify : bool;  (** run root-cause signature classification *)
}

let default_config =
  {
    fuzzer = Fuzzer.default_config;
    n_programs = 20;
    seed = 42;
    stop_after_violations = None;
    classify = true;
  }

type result = {
  defense : Defense.t;
  contract_name : string;
  violations : Violation.t list;
  violation_classes : (Analysis.leak_class * int) list;
  programs_run : int;
  discarded_programs : int;
  test_cases : int;
  duration : float;  (** seconds *)
  throughput : float;  (** test cases / second *)
  detection_times : float list;
      (** per violation: seconds since the previous find (or campaign start) *)
}

let count_classes classes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c -> Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
    classes;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []

(** Run a campaign of [cfg.n_programs] fuzzing rounds against [defense].
    [on_violation] fires as findings come in (progress reporting). *)
let run ?(on_violation = fun (_ : Violation.t) -> ()) (cfg : config)
    (defense : Defense.t) : result =
  let fuzzer = Fuzzer.create ~cfg:cfg.fuzzer ~seed:cfg.seed defense in
  let started = Unix.gettimeofday () in
  let violations = ref [] in
  let classes = ref [] in
  let detection_times = ref [] in
  let last_find = ref started in
  let test_cases = ref 0 in
  let discarded = ref 0 in
  let programs = ref 0 in
  let stop = ref false in
  while (not !stop) && !programs < cfg.n_programs do
    incr programs;
    (match Fuzzer.round fuzzer with
    | Fuzzer.No_violation _ -> ()
    | Fuzzer.Discarded _ -> incr discarded
    | Fuzzer.Found v ->
        let now = Unix.gettimeofday () in
        detection_times := (now -. !last_find) :: !detection_times;
        last_find := now;
        if cfg.classify then begin
          let executor =
            Executor.create ~mode:Executor.Opt
              ?sim_config:cfg.fuzzer.Fuzzer.sim_config
              ~format:cfg.fuzzer.Fuzzer.trace_format defense
              (Stats.create ())
          in
          Executor.start_program executor;
          classes := Analysis.classify_violation executor v :: !classes
        end;
        violations := v :: !violations;
        on_violation v;
        (match cfg.stop_after_violations with
        | Some k when List.length !violations >= k -> stop := true
        | _ -> ()));
    (* throughput accounting uses the fuzzer's own test-case counter *)
    test_cases := Stats.test_cases (Fuzzer.stats fuzzer)
  done;
  let duration = Unix.gettimeofday () -. started in
  {
    defense;
    contract_name = (Fuzzer.contract fuzzer).Amulet_contracts.Contract.name;
    violations = List.rev !violations;
    violation_classes = count_classes !classes;
    programs_run = !programs;
    discarded_programs = !discarded;
    test_cases = !test_cases;
    duration;
    throughput = (if duration > 0. then float_of_int !test_cases /. duration else 0.);
    detection_times = List.rev !detection_times;
  }

(** Run [instances] independent campaign instances on parallel domains —
    the paper's methodology (16 or 100 parallel AMuLeT instances) — each
    with a distinct seed derived from [cfg.seed], and merge the results.
    Violations, classes and test-case counts are summed; the merged
    duration is the wall-clock of the slowest instance, so the merged
    throughput reflects the aggregate rate. *)
let run_parallel ?(instances = 4) (cfg : config) (defense : Defense.t) : result =
  assert (instances >= 1);
  let spawn i =
    Domain.spawn (fun () -> run { cfg with seed = cfg.seed + (i * 7919) } defense)
  in
  let domains = List.init instances spawn in
  let results = List.map Domain.join domains in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let duration = List.fold_left (fun acc r -> Float.max acc r.duration) 0. results in
  let merged_classes =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        List.iter
          (fun (c, n) ->
            Hashtbl.replace tbl c (n + Option.value (Hashtbl.find_opt tbl c) ~default:0))
          r.violation_classes)
      results;
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  in
  let test_cases = sum (fun r -> r.test_cases) in
  {
    defense;
    contract_name =
      (match results with r :: _ -> r.contract_name | [] -> assert false);
    violations = List.concat_map (fun r -> r.violations) results;
    violation_classes = merged_classes;
    programs_run = sum (fun r -> r.programs_run);
    discarded_programs = sum (fun r -> r.discarded_programs);
    test_cases;
    duration;
    throughput = (if duration > 0. then float_of_int test_cases /. duration else 0.);
    detection_times = List.concat_map (fun r -> r.detection_times) results;
  }

let detected r = r.violations <> []

let avg_detection_time r =
  match r.detection_times with
  | [] -> None
  | ts -> Some (List.fold_left ( +. ) 0. ts /. float_of_int (List.length ts))

let unique_violations r = List.length r.violation_classes

let pp fmt r =
  Format.fprintf fmt "defense: %-22s contract: %-9s violations: %-3d unique: %d@."
    r.defense.Defense.name r.contract_name (List.length r.violations)
    (unique_violations r);
  Format.fprintf fmt "  programs: %d (%d discarded)  test cases: %d  time: %.1f s  throughput: %.0f tc/s@."
    r.programs_run r.discarded_programs r.test_cases r.duration r.throughput;
  (match avg_detection_time r with
  | Some t -> Format.fprintf fmt "  avg detection time: %.2f s@." t
  | None -> ());
  List.iter
    (fun (c, n) -> Format.fprintf fmt "  %3dx %s@." n (Analysis.class_name c))
    r.violation_classes
