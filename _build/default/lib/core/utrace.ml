(** Microarchitectural traces — the attacker's observation (paper §3.2, C1).

    Four formats, matching the paper's Table 5 study:
    - [L1d_tlb] (default): snapshot of the final L1D-cache and D-TLB tags,
      the realistic software attacker (optionally including L1I tags);
    - [Bp_state]: snapshot of the branch-predictor state;
    - [Mem_order]: the ordered list of (PC, address) of all memory accesses,
      including speculative ones (a probing attacker);
    - [Bp_order]: the ordered list of branch PCs with predicted targets. *)

type format = L1d_tlb | Bp_state | Mem_order | Bp_order | Pc_order

let format_name = function
  | L1d_tlb -> "L1D+TLB"
  | Bp_state -> "BP state"
  | Mem_order -> "memory access order"
  | Bp_order -> "branch prediction order"
  | Pc_order -> "PC sequence"

let format_of_string s =
  match String.lowercase_ascii s with
  | "l1d+tlb" | "l1d-tlb" | "default" | "baseline" -> Some L1d_tlb
  | "bp-state" | "bp_state" -> Some Bp_state
  | "mem-order" | "mem_order" | "memory-access-order" -> Some Mem_order
  | "bp-order" | "bp_order" | "branch-prediction-order" -> Some Bp_order
  | "pc-order" | "pc_order" | "pc-sequence" -> Some Pc_order
  | _ -> None

(* the paper's Table 5 formats; [Pc_order] is the additional
   "physical probe" observer from the discussion of trace option 3 *)
let all_formats = [ L1d_tlb; Bp_state; Mem_order; Bp_order ]
let extension_formats = [ Pc_order ]

type t =
  | State_snapshot of { l1d : int list; tlb : int list; l1i : int list option }
  | Predictor_snapshot of int array
  | Access_order of (int * int) list  (** (pc, address) *)
  | Prediction_order of (int * bool * int) list  (** (pc, taken, target) *)
  | Pc_sequence of int list  (** executed PCs, wrong paths included *)

let equal a b =
  match a, b with
  | State_snapshot x, State_snapshot y ->
      List.equal Int.equal x.l1d y.l1d
      && List.equal Int.equal x.tlb y.tlb
      && Option.equal (List.equal Int.equal) x.l1i y.l1i
  | Predictor_snapshot x, Predictor_snapshot y -> x = y
  | Access_order x, Access_order y -> x = y
  | Prediction_order x, Prediction_order y -> x = y
  | Pc_sequence x, Pc_sequence y -> x = y
  | ( ( State_snapshot _ | Predictor_snapshot _ | Access_order _
      | Prediction_order _ | Pc_sequence _ ),
      _ ) ->
      false

let fnv = 0x100000001b3L
let mix h v = Int64.mul (Int64.logxor h (Int64.of_int v)) fnv

let hash = function
  | State_snapshot { l1d; tlb; l1i } ->
      let h = List.fold_left mix 0xcbf29ce484222325L l1d in
      let h = List.fold_left mix (mix h 7) tlb in
      (match l1i with
      | None -> h
      | Some lines -> List.fold_left mix (mix h 13) lines)
  | Predictor_snapshot words -> Array.fold_left mix 0x9e3779b97f4a7c15L words
  | Access_order accesses ->
      List.fold_left (fun h (pc, a) -> mix (mix h pc) a) 0x2545F4914F6CDD1DL accesses
  | Prediction_order preds ->
      List.fold_left
        (fun h (pc, taken, tgt) -> mix (mix (mix h pc) (if taken then 1 else 0)) tgt)
        0x27d4eb2f165667c5L preds
  | Pc_sequence pcs -> List.fold_left mix 0x452821e638d01377L pcs

(** Human-readable difference between two traces of the same format:
    elements present in exactly one side (state formats) or the first
    diverging position (order formats). *)
let diff a b : string list =
  let only l1 l2 = List.filter (fun x -> not (List.mem x l2)) l1 in
  let hexes label xs =
    if xs = [] then []
    else
      [
        Printf.sprintf "%s: %s" label
          (String.concat " " (List.map (Printf.sprintf "0x%x") xs));
      ]
  in
  match a, b with
  | State_snapshot x, State_snapshot y ->
      hexes "L1D only in A" (only x.l1d y.l1d)
      @ hexes "L1D only in B" (only y.l1d x.l1d)
      @ hexes "TLB pages only in A" (only x.tlb y.tlb)
      @ hexes "TLB pages only in B" (only y.tlb x.tlb)
      @ (match x.l1i, y.l1i with
        | Some xi, Some yi ->
            hexes "L1I only in A" (only xi yi) @ hexes "L1I only in B" (only yi xi)
        | _ -> [])
  | Predictor_snapshot x, Predictor_snapshot y ->
      let diffs = ref 0 in
      Array.iteri (fun i v -> if i < Array.length y && v <> y.(i) then incr diffs) x;
      [ Printf.sprintf "%d predictor entries differ" !diffs ]
  | Access_order x, Access_order y ->
      let rec first_div i = function
        | (px, ax) :: rx, (py, ay) :: ry ->
            if px = py && ax = ay then first_div (i + 1) (rx, ry)
            else
              [
                Printf.sprintf
                  "access %d differs: A=(pc 0x%x, addr 0x%x) B=(pc 0x%x, addr 0x%x)" i
                  px ax py ay;
              ]
        | [], [] -> []
        | _ -> [ Printf.sprintf "access streams diverge in length at %d" i ]
      in
      first_div 0 (x, y)
  | Prediction_order x, Prediction_order y ->
      let rec first_div i = function
        | (px, tx, gx) :: rx, (py, ty, gy) :: ry ->
            if px = py && tx = ty && gx = gy then first_div (i + 1) (rx, ry)
            else
              [
                Printf.sprintf "prediction %d differs: A=(0x%x,%b,0x%x) B=(0x%x,%b,0x%x)"
                  i px tx gx py ty gy;
              ]
        | [], [] -> []
        | _ -> [ Printf.sprintf "prediction streams diverge in length at %d" i ]
      in
      first_div 0 (x, y)
  | Pc_sequence x, Pc_sequence y ->
      let rec first_div i = function
        | px :: rx, py :: ry ->
            if px = py then first_div (i + 1) (rx, ry)
            else [ Printf.sprintf "pc %d differs: A=0x%x B=0x%x" i px py ]
        | [], [] -> []
        | _ -> [ Printf.sprintf "pc streams diverge in length at %d" i ]
      in
      first_div 0 (x, y)
  | ( ( State_snapshot _ | Predictor_snapshot _ | Access_order _
      | Prediction_order _ | Pc_sequence _ ),
      _ ) ->
      [ "trace formats differ" ]

let pp fmt = function
  | State_snapshot { l1d; tlb; l1i } ->
      Format.fprintf fmt "L1D[%d lines] TLB[%d pages]%s" (List.length l1d)
        (List.length tlb)
        (match l1i with None -> "" | Some i -> Printf.sprintf " L1I[%d lines]" (List.length i))
  | Predictor_snapshot w -> Format.fprintf fmt "BP[%d words]" (Array.length w)
  | Access_order a -> Format.fprintf fmt "order[%d accesses]" (List.length a)
  | Prediction_order p -> Format.fprintf fmt "preds[%d branches]" (List.length p)
  | Pc_sequence p -> Format.fprintf fmt "pcs[%d executed]" (List.length p)
