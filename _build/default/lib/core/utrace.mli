(** Microarchitectural traces — the attacker's observation (paper §3.2, C1).

    The paper's Table 5 formats plus the "PC sequence" physical-probe
    extension: state snapshots (L1D+TLB, branch predictor) and ordered
    event streams (memory accesses, branch predictions, executed PCs). *)

type format = L1d_tlb | Bp_state | Mem_order | Bp_order | Pc_order

val format_name : format -> string
val format_of_string : string -> format option

val all_formats : format list
(** The paper's Table 5 formats. *)

val extension_formats : format list
(** [Pc_order], the §3.2 trace-option-3 extension. *)

type t =
  | State_snapshot of { l1d : int list; tlb : int list; l1i : int list option }
  | Predictor_snapshot of int array
  | Access_order of (int * int) list  (** (pc, address) *)
  | Prediction_order of (int * bool * int) list  (** (pc, taken, target) *)
  | Pc_sequence of int list  (** executed PCs, wrong paths included *)

val equal : t -> t -> bool
val hash : t -> int64

val diff : t -> t -> string list
(** Human-readable difference: elements in exactly one side (state formats)
    or the first diverging position (order formats); empty when equal. *)

val pp : Format.formatter -> t -> unit
