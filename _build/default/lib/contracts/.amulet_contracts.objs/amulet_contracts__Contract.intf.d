lib/contracts/contract.mli: Format
