lib/contracts/contract.ml: Format List String
