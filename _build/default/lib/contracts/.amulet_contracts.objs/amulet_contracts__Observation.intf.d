lib/contracts/observation.mli: Format
