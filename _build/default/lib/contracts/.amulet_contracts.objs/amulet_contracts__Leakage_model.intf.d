lib/contracts/leakage_model.mli: Amulet_emu Amulet_isa Contract Observation State Taint
