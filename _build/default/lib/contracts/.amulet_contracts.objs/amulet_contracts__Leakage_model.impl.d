lib/contracts/leakage_model.ml: Amulet_emu Amulet_isa Contract Emulator Exec Inst List Observation Program Reg State Taint
