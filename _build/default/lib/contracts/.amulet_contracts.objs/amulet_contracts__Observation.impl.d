lib/contracts/observation.ml: Format Int64 List
