(** Leakage contracts (Guarnieri et al.).

    A contract pairs an {e observation clause} (what each instruction leaks)
    with an {e execution clause} (which speculative paths are explored).  The
    three contracts of the paper's Table 1 are provided, plus combinators to
    build filter contracts that additionally expose a leak that has been
    root-caused, so known violations stop being reported (§3.3b). *)

(** Execution clause. *)
type speculation =
  | No_speculation
      (** only the architectural path (CT-SEQ, ARCH-SEQ) *)
  | Conditional_branches of { window : int; nesting : int }
      (** explore the mispredicted direction of conditional branches, up to
          [window] instructions per excursion, nested up to [nesting] deep
          (CT-COND) *)

type t = {
  name : string;
  description : string;
  observe_pc : bool;
  observe_addresses : bool;  (** load/store effective addresses *)
  observe_loaded_values : bool;
  expose_initial_regs : bool;
      (** expose the input register file (an "architectural observer") *)
  speculation : speculation;
}

let default_window = 64
let default_nesting = 2

(** CT-SEQ: PC and load/store addresses on the architectural path. *)
let ct_seq =
  {
    name = "CT-SEQ";
    description = "constant-time observer, sequential execution";
    observe_pc = true;
    observe_addresses = true;
    observe_loaded_values = false;
    expose_initial_regs = false;
    speculation = No_speculation;
  }

(** CT-COND: CT-SEQ plus exploration of mispredicted conditional branches. *)
let ct_cond =
  {
    ct_seq with
    name = "CT-COND";
    description = "constant-time observer, mispredicted conditional branches";
    speculation =
      Conditional_branches { window = default_window; nesting = default_nesting };
  }

(** ARCH-SEQ: CT-SEQ plus loaded values and the input register file, on the
    architectural path (captures STT's non-interference guarantee). *)
let arch_seq =
  {
    ct_seq with
    name = "ARCH-SEQ";
    description = "architectural observer, sequential execution";
    observe_loaded_values = true;
    expose_initial_regs = true;
  }

(* ------------------------------------------------------------------ *)
(* Combinators for filter contracts                                    *)
(* ------------------------------------------------------------------ *)

(** Additionally expose loaded values (e.g. to filter a root-caused value
    leak). *)
let exposing_loaded_values c =
  { c with name = c.name ^ "+VALUES"; observe_loaded_values = true }

(** Additionally expose the initial register file. *)
let exposing_registers c =
  { c with name = c.name ^ "+REGS"; expose_initial_regs = true }

(** Add (or change) the conditional-branch execution clause. *)
let with_cond_speculation ?(window = default_window) ?(nesting = default_nesting) c =
  { c with name = c.name ^ "+COND"; speculation = Conditional_branches { window; nesting } }

let all = [ ct_seq; ct_cond; arch_seq ]

let find name =
  let canonical = String.uppercase_ascii name in
  List.find_opt (fun c -> String.uppercase_ascii c.name = canonical) all

let pp fmt c = Format.fprintf fmt "%s" c.name
