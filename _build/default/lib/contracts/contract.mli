(** Leakage contracts (Guarnieri et al.): an observation clause (what leaks)
    plus an execution clause (which speculative paths are explored). *)

type speculation =
  | No_speculation
  | Conditional_branches of { window : int; nesting : int }

type t = {
  name : string;
  description : string;
  observe_pc : bool;
  observe_addresses : bool;
  observe_loaded_values : bool;
  expose_initial_regs : bool;
  speculation : speculation;
}

val default_window : int
val default_nesting : int

val ct_seq : t
(** PC and load/store addresses on the architectural path. *)

val ct_cond : t
(** CT-SEQ plus exploration of mispredicted conditional branches. *)

val arch_seq : t
(** CT-SEQ plus loaded values and the input register file. *)

(** {1 Filter-contract combinators (§3.3b)} *)

val exposing_loaded_values : t -> t
val exposing_registers : t -> t
val with_cond_speculation : ?window:int -> ?nesting:int -> t -> t

val all : t list
val find : string -> t option
val pp : Format.formatter -> t -> unit
