(* Shared output conventions for every amulet subcommand.

   Exit codes are uniform across the CLI:
     0  clean — the command did its job and found no violation
     1  violation(s) found / reproduced
     2  usage error or internal fault (unknown name, unreadable file,
        crashed shard, exception)

   The [Json] module is a minimal emitter (no external dependency) used by
   the --json flag of fuzz/sweep/reproduce/analyze/explain/list; [Raw]
   embeds documents that already render themselves (Obs snapshots,
   forensics reports, sweep reports). *)

let exit_clean = 0
let exit_violation = 1
let exit_fault = 2

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list
    | Raw of string  (** pre-rendered JSON, embedded verbatim *)

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Raw s -> Buffer.add_string buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            write buf item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    write buf j;
    Buffer.contents buf
end

let emit json = print_endline (Json.to_string json)

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents;
      Out_channel.output_char oc '\n')

(* Run a subcommand body under the shared fault convention: any escaping
   exception is a CLI-level fault (exit 2), reported on stderr — never an
   OCaml backtrace dumped at the user. *)
let guarded f =
  try f () with
  | Failure msg | Sys_error msg | Invalid_argument msg ->
      Format.eprintf "amulet: %s@." msg;
      exit_fault
  | exn ->
      Format.eprintf "amulet: %s@." (Printexc.to_string exn);
      exit_fault
