(* The amulet command-line interface.

   Subcommands:
     fuzz       - run a testing campaign against a defense
     sweep      - run the sharded multi-defense matrix sweep
     serve      - run the matrix as a crash-tolerant coordinator + workers
     worker     - join a coordinator as a campaign worker process
     reproduce  - hunt a known vulnerability, or replay a violation/PoC file
     run        - execute an assembly file on the simulator and print traces
     analyze    - revalidate/classify/minimize a saved violation
     explain    - one-element triage view of a saved violation
     triage     - cluster/bisect a violation stream into ranked root causes
     lint       - static leakage pre-analysis of a program (no simulation)
     corpus     - inspect a guided-fuzzing corpus checkpoint
     list       - show available defenses, contracts, trace formats

   All subcommands share the Output conventions: --json for machine-readable
   stdout, and exit codes 0 = clean, 1 = violation(s) found/reproduced,
   2 = usage or internal fault. *)

open Cmdliner
open Amulet
open Amulet_defenses
module Json = Output.Json

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let defense_arg =
  let parse s =
    match Defense.find s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown defense %S (try: %s)" s
               (String.concat ", " (List.map (fun d -> d.Defense.name) Defense.all))))
  in
  let print fmt d = Format.fprintf fmt "%s" d.Defense.name in
  Arg.conv (parse, print)

let format_arg =
  let parse s =
    match Utrace.format_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg "unknown trace format (l1d+tlb, bp-state, mem-order, bp-order)")
  in
  let print fmt f = Format.fprintf fmt "%s" (Utrace.format_name f) in
  Arg.conv (parse, print)

let contract_arg =
  let parse s =
    match Amulet_contracts.Contract.find s with
    | Some c -> Ok c
    | None -> Error (`Msg "unknown contract (CT-SEQ, CT-COND, ARCH-SEQ)")
  in
  let print fmt c = Format.fprintf fmt "%s" c.Amulet_contracts.Contract.name in
  Arg.conv (parse, print)

let defense_t =
  Arg.(
    value
    & opt defense_arg Defense.baseline
    & info [ "d"; "defense" ] ~docv:"DEFENSE" ~doc:"Countermeasure under test.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let json_t =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit a machine-readable JSON document on stdout (progress goes \
              to stderr).")

let mode_t =
  Arg.(
    value
    & opt (enum [ "opt", Executor.Opt; "naive", Executor.Naive ]) Executor.Opt
    & info [ "mode" ] ~doc:"Executor mode: $(b,opt) amortizes simulator startup.")

let engine_t =
  Arg.(
    value
    & opt (enum [ "pooled", Engine.Pooled; "naive", Engine.Naive ]) Engine.Pooled
    & info [ "engine" ]
        ~doc:
          "Execution engine: $(b,pooled) boots one simulator and rewinds a \
           post-boot checkpoint per test case; $(b,naive) rebuilds the \
           simulator whenever pristine state is needed.  Trace-invisible — \
           an escape hatch for A/B-ing the pooled path.")

let static_filter_t =
  let filter_conv =
    let parse s =
      match Run_spec.static_filter_of_name s with
      | Some f -> Ok f
      | None -> Error (`Msg "unknown static filter (off, screen, score)")
    in
    let print fmt f = Format.fprintf fmt "%s" (Run_spec.static_filter_name f) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt filter_conv Run_spec.Off
    & info [ "static-filter" ] ~docv:"MODE"
        ~doc:
          "Static leakage pre-filter applied to generated programs: \
           $(b,off) simulates everything; $(b,screen) skips programs the \
           static analysis proves leak-free (sound — a screened program \
           cannot violate any bundled contract); $(b,score) redraws \
           transmitter-free programs a few times but never skips a round.")

(* --guided and its corpus knobs, shared by fuzz/sweep/serve.  The term
   evaluates to a closure over the base generator config, so each
   subcommand applies its own generator tweaks (e.g. fuzz --unaligned)
   before choosing the strategy. *)
let generation_t =
  let dp = Amulet_corpus.Corpus.default_params in
  let guided =
    Arg.(
      value & flag
      & info [ "guided" ]
          ~doc:
            "Coverage-guided generation: keep a seed corpus scored by \
             microarchitectural coverage feedback and mutate scheduled \
             seeds instead of always drawing fresh random programs.")
  in
  let capacity =
    Arg.(
      value & opt int dp.Amulet_corpus.Corpus.capacity
      & info [ "corpus-capacity" ] ~docv:"N"
          ~doc:"Guided: max live corpus entries (lowest score evicted first).")
  in
  let max_age =
    Arg.(
      value & opt int dp.Amulet_corpus.Corpus.max_age
      & info [ "corpus-max-age" ] ~docv:"N"
          ~doc:"Guided: retire a seed after N rounds without novel coverage.")
  in
  let mutate_fraction =
    Arg.(
      value & opt float dp.Amulet_corpus.Corpus.mutate_fraction
      & info [ "mutate-fraction" ] ~docv:"P"
          ~doc:
            "Guided: probability a round mutates a scheduled seed instead \
             of generating a fresh random program.")
  in
  let energy =
    Arg.(
      value & opt int dp.Amulet_corpus.Corpus.energy
      & info [ "mutation-energy" ] ~docv:"N"
          ~doc:"Guided: max stacked mutation operators per mutant.")
  in
  let seeds =
    Arg.(
      value & opt_all file []
      & info [ "corpus-seed" ] ~docv:"FILE"
          ~doc:
            "Guided: seed the corpus with this program (repeatable; flat \
             or block assembly syntax; lint-invalid seeds are rejected, \
             not admitted).")
  in
  let make guided capacity max_age mutate_fraction energy seed_files base =
    if not guided then Run_spec.random ~config:base ()
    else
      let seed_programs =
        List.map
          (fun f -> In_channel.with_open_text f In_channel.input_all)
          seed_files
      in
      Run_spec.guided ~base
        ~corpus:
          {
            Amulet_corpus.Corpus.capacity;
            max_age;
            mutate_fraction;
            energy;
            seed_programs;
          }
        ()
  in
  Term.(
    const make $ guided $ capacity $ max_age $ mutate_fraction $ energy $ seeds)

let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's telemetry registry (uarch.* hardware counters, \
           engine.* executor metrics, fuzzer.* campaign metrics) to FILE as \
           JSON.  Trace-invisible: enabling telemetry never changes traces \
           or findings.")

(* campaign-result JSON shared by fuzz --json *)
let result_json (r : Campaign.result) =
  Json.Obj
    [
      ("defense", Json.Str r.Campaign.defense.Defense.name);
      ("contract", Json.Str r.contract_name);
      ("programs_run", Json.Int r.programs_run);
      ("discarded", Json.Int r.discarded_programs);
      ("test_cases", Json.Int r.test_cases);
      ("violations", Json.Int (List.length r.violations));
      ( "violation_classes",
        Json.Obj
          (List.map
             (fun (c, n) -> (Analysis.class_name c, Json.Int n))
             r.violation_classes) );
      ( "faults",
        Json.Obj
          (List.map (fun (c, n) -> (Fault.class_name c, Json.Int n)) r.fault_counts)
      );
      ("quarantined", Json.Int r.quarantined);
      ("duration_s", Json.Float r.duration);
      ("throughput", Json.Float r.throughput);
      ("detection_times", Json.List (List.map (fun t -> Json.Float t) r.detection_times));
      ("budget_exhausted", Json.Bool r.budget_exhausted);
      ("metrics", Json.Raw (Amulet_obs.Obs.Snapshot.to_json r.metrics));
    ]

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let programs =
    Arg.(value & opt int 50 & info [ "p"; "programs" ] ~doc:"Number of test programs.")
  in
  let inputs =
    Arg.(value & opt int 10 & info [ "i"; "inputs" ] ~doc:"Base inputs per program.")
  in
  let boosts =
    Arg.(value & opt int 4 & info [ "b"; "boosts" ] ~doc:"Boosted mutants per base input.")
  in
  let fmt_ =
    Arg.(
      value & opt format_arg Utrace.L1d_tlb
      & info [ "trace-format" ] ~doc:"Microarchitectural trace format.")
  in
  let contract =
    Arg.(
      value
      & opt (some contract_arg) None
      & info [ "contract" ] ~doc:"Override the defense's default contract.")
  in
  let ways =
    Arg.(value & opt (some int) None & info [ "ways" ] ~doc:"Amplification: L1D ways.")
  in
  let mshrs =
    Arg.(value & opt (some int) None & info [ "mshrs" ] ~doc:"Amplification: MSHR count.")
  in
  let stop =
    Arg.(
      value & opt (some int) None
      & info [ "stop-after" ] ~doc:"Stop after this many violations.")
  in
  let unaligned =
    Arg.(
      value & opt float Generator.default.Generator.unaligned_fraction
      & info [ "unaligned" ] ~doc:"Fraction of unaligned memory offsets.")
  in
  let parallel =
    Arg.(
      value & opt int 1
      & info [ "j"; "parallel" ]
          ~doc:"Parallel campaign instances (the paper ran 16 or 100).")
  in
  let prefetcher =
    Arg.(
      value & flag
      & info [ "prefetcher" ]
          ~doc:"Enable the next-line L1D prefetcher (extension study).")
  in
  let save_dir =
    Arg.(
      value & opt (some string) None
      & info [ "save-dir" ] ~docv:"DIR" ~doc:"Save found violations into this directory.")
  in
  let deadline_ms =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget per fuzzing round; a round that blows it is \
             classified and discarded instead of stalling the campaign.")
  in
  let budget_ms =
    Arg.(
      value & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for the whole campaign; when it runs out the \
             campaign stops at the last completed round boundary with a \
             clean journal checkpoint.")
  in
  let quarantine_dir =
    Arg.(
      value & opt (some string) None
      & info [ "quarantine-dir" ] ~docv:"DIR"
          ~doc:"Save the program+input of every discarded round here for triage.")
  in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Checkpoint campaign progress into this file (atomic \
             write-temp-then-rename) so a killed campaign can be resumed.")
  in
  let resume =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a journaled campaign from its last checkpoint.  The seed \
             is taken from the journal; the defense must match.  Implies \
             $(b,--journal) FILE unless one is given.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 10
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Rounds between journal checkpoints.")
  in
  let chaos =
    Arg.(
      value & opt (some float) None
      & info [ "chaos" ] ~docv:"P"
          ~doc:
            "Robustness self-test: inject a crash/timeout/fault into each \
             test case with probability P each (so ~3P of rounds misbehave); \
             the campaign must classify and survive all of them.")
  in
  let corpus_out =
    Arg.(
      value & opt (some string) None
      & info [ "corpus-out" ] ~docv:"FILE"
          ~doc:
            "Guided: write the final corpus checkpoint to FILE (inspect \
             with $(b,amulet corpus)).")
  in
  let run defense programs inputs boosts mode engine fmt_ contract ways mshrs stop
      seed unaligned parallel prefetcher save_dir deadline_ms budget_ms
      quarantine_dir journal resume checkpoint_every chaos static_filter
      generation_of corpus_out metrics_out json =
   Output.guarded @@ fun () ->
    let say fmt = (if json then Format.eprintf else Format.printf) fmt in
    let sim_config =
      match ways, mshrs, prefetcher with
      | None, None, false -> None
      | _ ->
          Some
            {
              (Defense.config ?l1d_ways:ways ?mshrs defense) with
              Amulet_uarch.Config.nl_prefetcher = prefetcher;
            }
    in
    let resume_journal =
      match resume with
      | None -> None
      | Some path -> (
          (* a torn checkpoint (crash mid-write on an fsync-less FS) is
             quarantined and the campaign starts fresh — never a crash *)
          match Journal.recover path with
          | Journal.Resumed j ->
              if j.Journal.defense_name <> defense.Defense.name then
                failwith
                  (Printf.sprintf
                     "journal %s was written for defense %s, not %s (pass -d %s)"
                     path j.Journal.defense_name defense.Defense.name
                     j.Journal.defense_name);
              Some j
          | Journal.Quarantined { corrupt_path; error } ->
              Format.eprintf
                "amulet: journal %s is corrupt (%s); moved aside to %s, \
                 starting fresh@."
                path error corrupt_path;
              None
          | Journal.Fresh ->
              failwith (Printf.sprintf "no journal to resume at %s" path))
    in
    (* a resumed campaign replays the journal's seed and keeps checkpointing
       into the same file unless another --journal is given *)
    let seed =
      match resume_journal with Some j -> j.Journal.seed | None -> seed
    in
    let programs =
      match resume_journal with
      | Some j -> max programs j.Journal.n_programs
      | None -> programs
    in
    let journal_path =
      match journal, resume with Some _, _ -> journal | None, r -> r
    in
    let chaos_injector =
      Option.map
        (fun p ->
          Fault.injector ~p_crash:p ~p_timeout:p ~p_sim_fault:p ~seed ())
        chaos
    in
    let spec =
      Run_spec.make ~defense ~engine ~seed ~rounds:programs ?deadline_ms
        ?budget_ms ~inputs ~boosts ?contract ?stop_after:stop
        ~generation:
          (generation_of
             { Generator.default with Generator.unaligned_fraction = unaligned })
        ~mode ~trace_format:fmt_ ?sim_config ?quarantine_dir
        ?chaos:chaos_injector ~static_filter ()
    in
    say
      "fuzzing %s (%s contract, %s traces, %s executor, %s engine, %s \
       generation, seed %d)...@."
      defense.Defense.name
      (Run_spec.contract_name spec)
      (Utrace.format_name fmt_) (Executor.mode_name mode) (Engine.kind_name engine)
      (Run_spec.generation_name spec.Run_spec.generation)
      seed;
    (match resume_journal with
    | Some j ->
        say "resuming from checkpoint: %d/%d rounds done, %d violation(s)@."
          j.Journal.programs_run j.Journal.n_programs
          (List.length j.Journal.violations)
    | None -> ());
    let metrics =
      match metrics_out with
      | Some _ -> Amulet_obs.Obs.create ()
      | None -> Amulet_obs.Obs.noop
    in
    let r =
      if parallel > 1 then begin
        if journal_path <> None then
          Format.eprintf
            "note: --journal/--resume apply to single-instance campaigns; \
             ignored with --parallel@.";
        Campaign.run_parallel ~instances:parallel ~metrics spec
      end
      else begin
        let n = ref 0 in
        Campaign.run ?journal_path ~checkpoint_every ?resume:resume_journal
          ~metrics spec ~on_violation:(fun v ->
            incr n;
            if not json then
              Format.printf "@.--- violation %d ---@.%a@." !n Violation.pp v)
      end
    in
    (match metrics_out with
    | None -> ()
    | Some path ->
        Output.write_file path
          (Amulet_obs.Obs.Snapshot.to_json r.Campaign.metrics);
        say "telemetry written to %s@." path);
    if parallel > 1 && not json then
      List.iteri
        (fun i v -> Format.printf "@.--- violation %d ---@.%a@." (i + 1) Violation.pp v)
        r.Campaign.violations;
    (match corpus_out with
    | None -> ()
    | Some path -> (
        match r.Campaign.corpus with
        | Some c ->
            Output.write_file path c;
            say "corpus written to %s@." path
        | None ->
            Format.eprintf
              "note: --corpus-out ignored (no corpus; pass --guided)@."));
    (match save_dir with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i v ->
            let path = Filename.concat dir (Printf.sprintf "violation_%03d.amulet" i) in
            Violation_io.save (Violation_io.of_violation v) path;
            say "saved %s@." path)
          r.Campaign.violations);
    if json then Output.emit (result_json r)
    else Format.printf "@.%a" Campaign.pp r;
    if Campaign.detected r then Output.exit_violation else Output.exit_clean
  in
  let term =
    Term.(
      const run $ defense_t $ programs $ inputs $ boosts $ mode_t $ engine_t
      $ fmt_ $ contract $ ways $ mshrs $ stop $ seed_t $ unaligned $ parallel
      $ prefetcher $ save_dir $ deadline_ms $ budget_ms $ quarantine_dir
      $ journal $ resume $ checkpoint_every $ chaos $ static_filter_t
      $ generation_t $ corpus_out $ metrics_t $ json_t)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a testing campaign against a secure-speculation defense.")
    term

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let presets =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PRESET"
          ~doc:
            "Defense presets to sweep; names or case-insensitive globs \
             ($(b,invisispec*), $(b,*patched)).  Default: every preset.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for the work-stealing scheduler.")
  in
  let rounds =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"N" ~doc:"Fuzzing rounds per shard.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N" ~doc:"Seed shards per preset.")
  in
  let inputs =
    Arg.(value & opt int 10 & info [ "i"; "inputs" ] ~doc:"Base inputs per program.")
  in
  let boosts =
    Arg.(value & opt int 4 & info [ "b"; "boosts" ] ~doc:"Boosted mutants per base input.")
  in
  let deadline_ms =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Wall-clock budget per fuzzing round.")
  in
  let budget_ms =
    Arg.(
      value & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS" ~doc:"Wall-clock budget per shard.")
  in
  let out =
    Arg.(
      value & opt string "BENCH_sweep.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the sweep report JSON.")
  in
  let journal_dir =
    Arg.(
      value & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:"Checkpoint every shard into DIR (shard_<id>_<defense>.json).")
  in
  let run presets domains rounds shards inputs boosts deadline_ms budget_ms seed
      mode engine static_filter generation_of out journal_dir metrics_out json =
   Output.guarded @@ fun () ->
    let say fmt = (if json then Format.eprintf else Format.printf) fmt in
    match Sweep.select presets with
    | Error msg ->
        Format.eprintf "amulet: %s@." msg;
        Output.exit_fault
    | Ok selected ->
        let make_spec d =
          Run_spec.make ~defense:d ~engine ~mode ~inputs ~boosts ?deadline_ms
            ?budget_ms ~static_filter
            ~generation:(generation_of Generator.default) ()
        in
        let js =
          Sweep.jobs ~presets:selected ~shards_per_preset:shards ~rounds ~seed
            ~make_spec ()
        in
        say "sweeping %d preset(s), %d job(s) on %d domain(s), seed %d...@."
          (List.length selected) (List.length js) domains seed;
        let metrics =
          match metrics_out with
          | Some _ -> Amulet_obs.Obs.create ()
          | None -> Amulet_obs.Obs.noop
        in
        (match journal_dir with
        | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
        | _ -> ());
        let report = Sweep.run ~domains ~metrics ?journal_dir js in
        let doc = Sweep.to_json report in
        Output.write_file out doc;
        say "report written to %s (fingerprint %s)@." out
          (Sweep.fingerprint report);
        (match metrics_out with
        | None -> ()
        | Some path ->
            Output.write_file path
              (Amulet_obs.Obs.Snapshot.to_json report.Sweep.metrics);
            say "telemetry written to %s@." path);
        if json then print_endline doc
        else Format.printf "%a" Sweep.pp report;
        if report.Sweep.crashed > 0 then Output.exit_fault
        else if
          List.exists (fun r -> r.Sweep.violations <> []) report.Sweep.rows
        then Output.exit_violation
        else Output.exit_clean
  in
  let term =
    Term.(
      const run $ presets $ domains $ rounds $ shards $ inputs $ boosts
      $ deadline_ms $ budget_ms $ seed_t $ mode_t $ engine_t $ static_filter_t
      $ generation_t $ out $ journal_dir $ metrics_t $ json_t)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run the defense matrix (AMuLeT \xc2\xa75) as one sharded, \
          work-stealing sweep: per-preset campaign shards on parallel \
          domains, one warmed engine per defense config per domain, \
          deterministically merged into a cross-defense report.")
    term

(* ------------------------------------------------------------------ *)
(* serve / worker — the distributed campaign service                   *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let presets =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PRESET"
          ~doc:"Defense presets, as for $(b,amulet sweep).  Default: all.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Local worker processes to spawn.  $(b,0) spawns none — the \
             coordinator then waits for external $(b,amulet worker \
             --connect) processes.")
  in
  let rounds =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"N" ~doc:"Fuzzing rounds per shard.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N" ~doc:"Seed shards per preset.")
  in
  let inputs =
    Arg.(value & opt int 10 & info [ "i"; "inputs" ] ~doc:"Base inputs per program.")
  in
  let boosts =
    Arg.(value & opt int 4 & info [ "b"; "boosts" ] ~doc:"Boosted mutants per base input.")
  in
  let deadline_ms =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Wall-clock budget per fuzzing round.")
  in
  let budget_ms =
    Arg.(
      value & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS" ~doc:"Wall-clock budget per shard.")
  in
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix-domain socket to listen on (default: a per-pid path under \
             the temp dir).")
  in
  let journal_dir =
    Arg.(
      value & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Shard checkpoint directory (default: a per-pid dir under the \
             temp dir).  Reassigned shards resume from these journals.")
  in
  let heartbeat_s =
    Arg.(
      value & opt float 0.5
      & info [ "heartbeat-s" ] ~docv:"S" ~doc:"Heartbeat cadence told to workers.")
  in
  let lease_timeout_s =
    Arg.(
      value & opt float 10.
      & info [ "lease-timeout-s" ] ~docv:"S"
          ~doc:"Expire a lease silent for this long and reassign its shard.")
  in
  let max_attempts =
    Arg.(
      value & opt int 3
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Abandon a shard after N leases (poisoned-shard guard).")
  in
  let idle_timeout_s =
    Arg.(
      value & opt float 30.
      & info [ "idle-timeout-s" ] ~docv:"S"
          ~doc:"Fail remaining shards after this long with no connected workers.")
  in
  let worker_chaos =
    Arg.(
      value & opt (some float) None
      & info [ "worker-chaos" ] ~docv:"P"
          ~doc:
            "Robustness self-test: spawned workers die (SIGKILL-style) at \
             each round boundary with probability P; the coordinator must \
             reassign and the fingerprint must not change.")
  in
  let out =
    Arg.(
      value & opt string "BENCH_serve.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the serve report JSON.")
  in
  let run presets workers rounds shards inputs boosts deadline_ms budget_ms
      seed mode engine static_filter generation_of socket journal_dir
      heartbeat_s lease_timeout_s max_attempts idle_timeout_s worker_chaos out
      metrics_out json =
   Output.guarded @@ fun () ->
    let say fmt = (if json then Format.eprintf else Format.printf) fmt in
    match Sweep.select presets with
    | Error msg ->
        Format.eprintf "amulet: %s@." msg;
        Output.exit_fault
    | Ok selected ->
        (* the job list is built exactly as `amulet sweep` builds it, so the
           two paths fingerprint-compare for the same flags *)
        let make_spec d =
          Run_spec.make ~defense:d ~engine ~mode ~inputs ~boosts ?deadline_ms
            ?budget_ms ~static_filter
            ~generation:(generation_of Generator.default) ()
        in
        let js =
          Sweep.jobs ~presets:selected ~shards_per_preset:shards ~rounds ~seed
            ~make_spec ()
        in
        let pid = Unix.getpid () in
        let socket =
          match socket with
          | Some s -> s
          | None ->
              Filename.concat (Filename.get_temp_dir_name ())
                (Printf.sprintf "amulet-serve-%d.sock" pid)
        in
        let journal_dir =
          match journal_dir with
          | Some d -> d
          | None ->
              Filename.concat (Filename.get_temp_dir_name ())
                (Printf.sprintf "amulet-serve-%d.journals" pid)
        in
        if not (Sys.file_exists journal_dir) then Sys.mkdir journal_dir 0o755;
        let metrics =
          match metrics_out with
          | Some _ -> Amulet_obs.Obs.create ()
          | None -> Amulet_obs.Obs.noop
        in
        (* bind before spawning so workers never see a missing socket *)
        let coord =
          Coordinator.create ~socket ~metrics ~journal_dir ~heartbeat_s
            ~lease_timeout_s ~max_attempts ~idle_timeout_s ()
        in
        say "serving %d preset(s), %d job(s) on %s, %d local worker(s)...@."
          (List.length selected) (List.length js) socket workers;
        let spawn i =
          let args =
            [
              Sys.executable_name; "worker"; "--connect"; socket;
              "--name"; Printf.sprintf "local-%d" i;
              "--seed"; string_of_int (seed + i);
            ]
            @ (match worker_chaos with
              | Some p -> [ "--chaos-kill"; string_of_float p ]
              | None -> [])
          in
          (* workers inherit stderr for both streams: stdout stays clean for
             the coordinator's --json document *)
          Unix.create_process Sys.executable_name (Array.of_list args)
            Unix.stdin Unix.stderr Unix.stderr
        in
        let pids = List.init workers spawn in
        let report = Coordinator.serve coord js in
        List.iter
          (fun p -> try ignore (Unix.waitpid [] p) with Unix.Unix_error _ -> ())
          pids;
        let doc = Coordinator.to_json report in
        Output.write_file out doc;
        say "report written to %s (fingerprint %s)@." out
          report.Coordinator.fingerprint;
        (match metrics_out with
        | None -> ()
        | Some path ->
            Output.write_file path
              (Amulet_obs.Obs.Snapshot.to_json report.Coordinator.metrics);
            say "telemetry written to %s@." path);
        if json then print_endline doc
        else Format.printf "%a" Coordinator.pp report;
        if report.Coordinator.crashed > 0 then Output.exit_fault
        else if report.Coordinator.violations > 0 then Output.exit_violation
        else Output.exit_clean
  in
  let term =
    Term.(
      const run $ presets $ workers $ rounds $ shards $ inputs $ boosts
      $ deadline_ms $ budget_ms $ seed_t $ mode_t $ engine_t $ static_filter_t
      $ generation_t $ socket $ journal_dir $ heartbeat_s $ lease_timeout_s
      $ max_attempts $ idle_timeout_s $ worker_chaos $ out $ metrics_t
      $ json_t)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the defense matrix as a crash-tolerant distributed service: a \
          coordinator leases shards to worker processes over a Unix-domain \
          socket, reassigns the shards of dead or silent workers (resuming \
          from their journals), and merges results into the same \
          deterministic fingerprint as $(b,amulet sweep).")
    term

let worker_cmd =
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCK"
          ~doc:"Coordinator socket to connect to (required).")
  in
  let name_t =
    Arg.(
      value & opt (some string) None
      & info [ "name" ] ~docv:"NAME" ~doc:"Worker name (default: worker-<pid>).")
  in
  let chaos_kill =
    Arg.(
      value & opt float 0.
      & info [ "chaos-kill" ] ~docv:"P"
          ~doc:"Chaos: die abruptly at a round boundary with probability P.")
  in
  let chaos_drop =
    Arg.(
      value & opt float 0.
      & info [ "chaos-drop" ] ~docv:"P"
          ~doc:"Chaos: swallow a heartbeat with probability P.")
  in
  let chaos_delay =
    Arg.(
      value & opt float 0.
      & info [ "chaos-delay" ] ~docv:"P"
          ~doc:"Chaos: stall before a heartbeat with probability P.")
  in
  let retries =
    Arg.(
      value & opt int 6
      & info [ "retries" ] ~docv:"N"
          ~doc:"Transient connect failures to retry before giving up.")
  in
  let backoff_ms =
    Arg.(
      value & opt float 50.
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base reconnect backoff (doubled per attempt, jittered).")
  in
  let run connect name chaos_kill chaos_drop chaos_delay retries backoff_ms seed
      =
   Output.guarded @@ fun () ->
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "worker-%d" (Unix.getpid ())
    in
    let chaos =
      if chaos_kill = 0. && chaos_drop = 0. && chaos_delay = 0. then None
      else
        Some
          (Fault.injector ~p_kill_worker:chaos_kill ~p_drop_message:chaos_drop
             ~p_delay_heartbeat:chaos_delay ~seed ())
    in
    match
      Worker.run ~connect ~name ?chaos ~retries ~backoff_s:(backoff_ms /. 1000.)
        ~seed ()
    with
    | Worker.Finished ->
        Format.eprintf "%s: done@." name;
        Output.exit_clean
    | Worker.Coordinator_lost why ->
        Format.eprintf "%s: coordinator lost (%s); journals are checkpointed@."
          name why;
        Output.exit_fault
    | Worker.Gave_up { attempts } ->
        Format.eprintf "%s: could not connect to %s after %d attempt(s)@." name
          connect attempts;
        Output.exit_fault
  in
  let term =
    Term.(
      const run $ connect $ name_t $ chaos_kill $ chaos_drop $ chaos_delay
      $ retries $ backoff_ms $ seed_t)
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Join a coordinator as a campaign worker: run leased shards on a \
          warmed pooled engine, heartbeat at round boundaries, checkpoint \
          into the coordinator's journal dir.  Exits 2 when the coordinator \
          is unreachable or vanishes (work is resumable from journals).")
    term

(* ------------------------------------------------------------------ *)
(* reproduce                                                           *)
(* ------------------------------------------------------------------ *)

let reproduce_cmd =
  let name_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Reproducer name (one of: $(b,figure4-uv1), $(b,figure6-uv2), \
             $(b,figure8-uv6), $(b,figure9-kv3), $(b,uv3-store-not-cleaned), \
             $(b,uv4-split-not-cleaned), $(b,uv5-too-much-cleaning), \
             $(b,spectre-v4)), or the path of a saved violation or triage \
             PoC file to replay.")
  in
  let sniff_magic path =
    match In_channel.with_open_text path In_channel.input_line with
    | Some l when String.length l >= 10 && String.sub l 0 10 = "amulet-poc" ->
        `Poc
    | Some l
      when String.length l >= 16 && String.sub l 0 16 = "amulet-violation" ->
        `Violation
    | _ -> `Unknown
  in
  let replay_poc path json =
    let p = Triage.Poc.load path in
    let verdict = Triage.Poc.replay p in
    let verdict_name, diff =
      match verdict with
      | `Match -> ("match", [])
      | `Not_reproduced -> ("not_reproduced", [])
      | `Diff_mismatch d -> ("diff_mismatch", d)
    in
    if json then
      Output.emit
        (Json.Obj
           [
             ("poc", Json.Str path);
             ("signature", Json.Str p.Triage.Poc.signature);
             ("verdict", Json.Str verdict_name);
             ( "mechanism",
               match p.Triage.Poc.mechanism with
               | Some (name, _) -> Json.Str name
               | None -> Json.Null );
             ("observed_diff", Json.List (List.map (fun l -> Json.Str l) diff));
           ])
    else begin
      Format.printf "poc: %s@.signature: %s@." path p.Triage.Poc.signature;
      (match p.Triage.Poc.mechanism with
      | Some (name, _) -> Format.printf "mechanism: %s@." name
      | None -> ());
      match verdict with
      | `Match -> Format.printf "verdict: match (recorded divergence replayed)@."
      | `Not_reproduced -> Format.printf "verdict: not reproduced@."
      | `Diff_mismatch d ->
          Format.printf
            "verdict: reproduced, but the divergence differs from the \
             recording:@.";
          List.iter (fun l -> Format.printf "  %s@." l) d
    end;
    match verdict with
    | `Match -> Output.exit_violation
    | `Not_reproduced -> Output.exit_clean
    | `Diff_mismatch _ -> Output.exit_fault
  in
  let replay_violation path json =
    let f = Triage.explain (Violation_io.load path) in
    if json then
      print_endline
        (Triage.report_to_json
           (match f.Triage.status with
           | Triage.Reproduced ->
               {
                 Triage.clusters =
                   [
                     {
                       Triage.rank = 1;
                       cluster_signature = f.Triage.signature;
                       representative = f;
                       members = [ path ];
                       count = 1;
                     };
                   ];
                 total = 1;
                 not_reproduced = 0;
               }
           | Triage.Not_reproduced ->
               { Triage.clusters = []; total = 1; not_reproduced = 1 }))
    else Format.printf "%a" Triage.pp_finding f;
    match f.Triage.status with
    | Triage.Reproduced -> Output.exit_violation
    | Triage.Not_reproduced -> Output.exit_clean
  in
  let run name seed json =
   Output.guarded @@ fun () ->
    if Sys.file_exists name && not (Sys.is_directory name) then
      match sniff_magic name with
      | `Poc -> replay_poc name json
      | `Violation -> replay_violation name json
      | `Unknown ->
          Format.eprintf "amulet: %s is not a violation or PoC file@." name;
          Output.exit_fault
    else
    match Reproducers.find name with
    | None ->
        Format.eprintf "amulet: unknown reproducer %S@." name;
        Output.exit_fault
    | Some r ->
        if not json then
          Format.printf "%s: %s@.defense: %s@.--- program ---@.%s@."
            r.Reproducers.name r.Reproducers.description
            r.Reproducers.defense.Defense.name r.Reproducers.asm;
        let found = Reproducers.hunt ~seed r in
        (match found, json with
        | Some v, false ->
            Format.printf "%a@." Violation.pp v;
            (match v.Violation.signature with
            | Some s -> Format.printf "root cause signature: %s@." s
            | None -> ())
        | None, false ->
            Format.printf "no violation found within the reproducer budget@."
        | _, true ->
            Output.emit
              (Json.Obj
                 [
                   ("reproducer", Json.Str r.Reproducers.name);
                   ("defense", Json.Str r.Reproducers.defense.Defense.name);
                   ("found", Json.Bool (found <> None));
                   ( "signature",
                     match found with
                     | Some { Violation.signature = Some s; _ } -> Json.Str s
                     | _ -> Json.Null );
                 ]));
        if found <> None then Output.exit_violation else Output.exit_clean
  in
  let term = Term.(const run $ name_t $ seed_t $ json_t) in
  Cmd.v
    (Cmd.info "reproduce"
       ~doc:
         "Hunt one of the paper's known vulnerabilities with its crafted \
          test, or replay a saved violation / triage PoC file.  Exits 1 \
          when the planted or recorded violation is found (the expected \
          outcome), 0 when it is not, 2 when a PoC reproduces with a \
          different divergence than recorded.")
    term

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly file.")
  in
  let run file defense seed =
   Output.guarded @@ fun () ->
    let source = In_channel.with_open_text file In_channel.input_all in
    let flat = Amulet_isa.Program.flatten (Amulet_isa.Asm.parse source) in
    Format.printf "--- program ---@.%a@." Amulet_isa.Program.pp_flat flat;
    let rng = Rng.create ~seed in
    let input = Input.generate rng ~pages:defense.Defense.sandbox_pages in
    let stats = Stats.create () in
    let ex = Executor.create ~boot_insts:1000 ~mode:Executor.Opt defense stats in
    Executor.start_program ex;
    let outcome =
      let o = Executor.run ex flat input in
      Executor.run ex ~context:o.Executor.context ~log:true flat input
    in
    let events = outcome.Executor.events in
    Format.printf "--- input ---@.%a@." Input.pp input;
    Format.printf "--- run: %d cycles%s ---@." outcome.Executor.cycles
      (match outcome.Executor.run_fault with
      | None -> ""
      | Some f -> " FAULT: " ^ Fault.to_string f);
    Format.printf "--- uarch trace: %a@." Utrace.pp outcome.Executor.trace;
    Format.printf "--- debug log (%d events) ---@." (List.length events);
    List.iter (fun e -> Format.printf "%a@." Amulet_uarch.Event.pp e) events;
    Output.exit_clean
  in
  let term = Term.(const run $ file $ defense_t $ seed_t) in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute an assembly file on the simulator with a random input and \
             print its debug log and trace.")
    term

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A violation file written by fuzz --save-dir.")
  in
  let do_minimize =
    Arg.(value & flag & info [ "minimize" ] ~doc:"Also minimize the test program.")
  in
  let ways =
    Arg.(value & opt (some int) None & info [ "ways" ] ~doc:"Amplification: L1D ways.")
  in
  let mshrs =
    Arg.(value & opt (some int) None & info [ "mshrs" ] ~doc:"Amplification: MSHR count.")
  in
  let run file do_minimize ways mshrs json =
   Output.guarded @@ fun () ->
    let stored = Violation_io.load file in
    if not json then begin
      Format.printf "defense: %s  contract: %s%s@." stored.Violation_io.defense_name
        stored.Violation_io.contract_name
        (match stored.Violation_io.signature with
        | Some s -> "  (recorded signature: " ^ s ^ ")"
        | None -> "");
      Format.printf "--- program ---@.%a@." Amulet_isa.Program.pp_flat
        stored.Violation_io.program
    end;
    let sim_config =
      match ways, mshrs, Defense.find stored.Violation_io.defense_name with
      | None, None, _ | _, _, None -> None
      | _, _, Some d -> Some (Defense.config ?l1d_ways:ways ?mshrs d)
    in
    let f = Triage.explain ?sim_config stored in
    let f =
      if do_minimize then Triage.shrink ?sim_config f else f
    in
    if json then print_endline (Triage.finding_to_json f)
    else if f.Triage.status = Triage.Not_reproduced then
      Format.printf
        "violation did NOT reproduce under a fresh context (it may need the          original campaign's microarchitectural context or an amplified          configuration: try --ways/--mshrs)@."
    else begin
      (match f.Triage.leak_class with
      | Some c -> Format.printf "reproduced; signature: %s@." (Analysis.class_name c)
      | None -> ());
      (match f.Triage.minimized with
      | Some m -> Format.printf "%a" Minimize.pp_result m
      | None -> ())
    end;
    if f.Triage.status = Triage.Reproduced then Output.exit_violation
    else Output.exit_clean
  in
  let term = Term.(const run $ file $ do_minimize $ ways $ mshrs $ json_t) in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reload a saved violation, revalidate, classify and optionally \
          minimize it (a thin view over the Triage pipeline; --json emits \
          the amulet.triage/1 finding object).  Exits 1 when the violation \
          reproduces, 0 when it does not.")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A violation file written by fuzz --save-dir.")
  in
  let ways =
    Arg.(value & opt (some int) None & info [ "ways" ] ~doc:"Amplification: L1D ways.")
  in
  let mshrs =
    Arg.(value & opt (some int) None & info [ "mshrs" ] ~doc:"Amplification: MSHR count.")
  in
  let run file json ways mshrs =
   Output.guarded @@ fun () ->
    let stored = Violation_io.load file in
    let sim_config =
      match ways, mshrs, Defense.find stored.Violation_io.defense_name with
      | None, None, _ | _, _, None -> None
      | _, _, Some d -> Some (Defense.config ?l1d_ways:ways ?mshrs d)
    in
    let f = Triage.explain ?sim_config stored in
    let f =
      if f.Triage.status = Triage.Reproduced then Triage.bisect ?sim_config f
      else f
    in
    (* a strict one-element view of the triage schema: the report either
       holds this finding's singleton cluster or records it as dead *)
    let report =
      match f.Triage.status with
      | Triage.Reproduced ->
          {
            Triage.clusters =
              [
                {
                  Triage.rank = 1;
                  cluster_signature = f.Triage.signature;
                  representative = f;
                  members = [ file ];
                  count = 1;
                };
              ];
            total = 1;
            not_reproduced = 0;
          }
      | Triage.Not_reproduced ->
          { Triage.clusters = []; total = 1; not_reproduced = 1 }
    in
    if json then print_endline (Triage.report_to_json report)
    else Format.printf "%a" Triage.pp_finding f;
    (* 1: the violation reproduces; 2: an explicit not_reproduced outcome —
       the stored artifact no longer demonstrates anything *)
    if f.Triage.status = Triage.Reproduced then Output.exit_violation
    else Output.exit_fault
  in
  let term = Term.(const run $ file $ json_t $ ways $ mshrs) in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Violation forensics: re-run a saved violation's two inputs from an \
          identical microarchitectural context and report the contract-trace \
          comparison, the trace diff, the hardware-counter delta, the \
          root-cause class, and the bisected mechanism — a one-element view \
          of the amulet.triage/1 schema.  Exits 1 when the violation \
          reproduces, 2 (with status not_reproduced) when it does not.")
    term

(* ------------------------------------------------------------------ *)
(* triage                                                              *)
(* ------------------------------------------------------------------ *)

let triage_cmd =
  let sources =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"SOURCE"
          ~doc:
            "Violation sources: saved violation/PoC files, campaign \
             journals, or directories of either (e.g. a sweep/serve \
             --journal-dir).")
  in
  let ways =
    Arg.(
      value & opt (some int) None
      & info [ "ways" ] ~doc:"Amplification: L1D ways (applied per defense).")
  in
  let mshrs =
    Arg.(
      value & opt (some int) None
      & info [ "mshrs" ] ~doc:"Amplification: MSHR count (applied per defense).")
  in
  let no_bisect =
    Arg.(
      value & flag
      & info [ "no-bisect" ]
          ~doc:"Skip mechanism bisection of cluster representatives.")
  in
  let do_minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:"Also minimize each cluster representative's program.")
  in
  let poc_dir =
    Arg.(
      value & opt (some string) None
      & info [ "poc-dir" ] ~docv:"DIR"
          ~doc:
            "Write one standalone replayable PoC per cluster into $(docv) \
             (replay with $(b,amulet reproduce) $(i,FILE)).")
  in
  let run sources ways mshrs no_bisect do_minimize poc_dir json =
   Output.guarded @@ fun () ->
    let stream = Triage.load sources in
    let progress =
      if json then fun _ -> ()
      else fun m -> Format.eprintf "triage: %s@." m
    in
    let report =
      Triage.run ?l1d_ways:ways ?mshrs ~bisect:(not no_bisect)
        ~shrink:do_minimize ~progress stream
    in
    let poc_paths =
      match poc_dir with
      | Some dir ->
          List.map (fun c -> Triage.Poc.write ~dir c) report.Triage.clusters
      | None -> []
    in
    if json then print_endline (Triage.report_to_json report)
    else begin
      Format.printf "%a" Triage.pp_report report;
      List.iter (fun p -> Format.printf "  poc: %s@." p) poc_paths
    end;
    if report.Triage.clusters <> [] then Output.exit_violation
    else Output.exit_clean
  in
  let term =
    Term.(
      const run $ sources $ ways $ mshrs $ no_bisect $ do_minimize $ poc_dir
      $ json_t)
  in
  Cmd.v
    (Cmd.info "triage"
       ~doc:
         "Reduce a violation stream to distinct root causes: load saved \
          violations / journals / journal directories, cluster by \
          divergence signature across the whole (defense x seed) matrix, \
          bisect each cluster representative to name the responsible \
          mechanism, and emit a ranked amulet.triage/1 report (optionally \
          with one replayable PoC per cluster).  Exits 1 when clusters \
          were found, 0 on an empty/clean stream, 2 on faults.")
    term

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Assembly file to analyze, or a violation file written by \
             $(b,fuzz --save-dir) (detected by the $(b,.amulet) extension; \
             its recorded program and defense are used).")
  in
  let reproducer =
    Arg.(
      value
      & opt (some string) None
      & info [ "reproducer" ] ~docv:"NAME"
          ~doc:
            "Analyze a bundled reproducer program instead of a file (see \
             $(b,amulet list)).  The reproducer's own defense supplies the \
             sandbox size.")
  in
  let window =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Speculation window in instructions (default: the simulator's \
             maximum window).")
  in
  let lint_json flat (t : Amulet_static.Leakcheck.t) source =
    let site (s : Amulet_static.Leakcheck.site) =
      Json.Obj
        [
          ("index", Json.Int s.Amulet_static.Leakcheck.index);
          ("kind", Json.Str (Amulet_static.Leakcheck.kind_name s.kind));
          ("inst", Json.Str (Amulet_isa.Inst.to_string flat.Amulet_isa.Program.code.(s.index)));
          ("transient", Json.Bool s.transient);
          ("bypass", Json.Bool s.bypass);
        ]
    in
    let diag (d : Amulet_static.Lint.diag) =
      Json.Obj
        [
          ("code", Json.Str d.Amulet_static.Lint.code);
          ("severity", Json.Str (Amulet_static.Lint.severity_name d.severity));
          ( "index",
            match d.index with Some i -> Json.Int i | None -> Json.Null );
          ("message", Json.Str d.message);
        ]
    in
    Json.Obj
      [
        ("source", Json.Str source);
        ( "classification",
          Json.Str
            (if t.Amulet_static.Leakcheck.leaky then "potentially-leaky"
             else "leak-free") );
        ("window", Json.Int t.Amulet_static.Leakcheck.window);
        ( "lint",
          Json.Obj
            [
              ("errors", Json.Int t.lint.Amulet_static.Lint.errors);
              ("warnings", Json.Int t.lint.Amulet_static.Lint.warnings);
              ( "diagnostics",
                Json.List (List.map diag t.lint.Amulet_static.Lint.diags) );
            ] );
        ( "speculation_windows",
          Json.List
            (List.map
               (fun (branch, insts) ->
                 Json.Obj
                   [
                     ("branch", Json.Int branch);
                     ( "transient",
                       Json.List (List.map (fun i -> Json.Int i) insts) );
                   ])
               t.windows) );
        ("transmitters", Json.List (List.map site t.transmitters));
        ( "tainted_arch_accesses",
          Json.List (List.map (fun i -> Json.Int i) t.arch_flows) );
      ]
  in
  let run file reproducer window defense json =
   Output.guarded @@ fun () ->
    let target =
      match file, reproducer with
      | Some f, None -> Ok (`File f)
      | None, Some n -> Ok (`Reproducer n)
      | None, None -> Error "pass an assembly FILE or --reproducer NAME"
      | Some _, Some _ -> Error "FILE and --reproducer are mutually exclusive"
    in
    match target with
    | Error msg ->
        Format.eprintf "amulet: %s@." msg;
        Output.exit_fault
    | Ok target -> (
        let loaded =
          match target with
          | `Reproducer n -> (
              match Reproducers.find n with
              | None -> Error (Printf.sprintf "unknown reproducer %S" n)
              | Some r ->
                  Ok
                    ( Reproducers.flat r,
                      r.Reproducers.defense.Defense.sandbox_pages,
                      "reproducer:" ^ n ))
          | `File f when Filename.check_suffix f ".amulet" ->
              let stored = Violation_io.load f in
              let pages =
                match Defense.find stored.Violation_io.defense_name with
                | Some d -> d.Defense.sandbox_pages
                | None -> 1
              in
              Ok (stored.Violation_io.program, pages, f)
          | `File f -> (
              let source = In_channel.with_open_text f In_channel.input_all in
              match Amulet_isa.Asm.parse source with
              | p -> Ok (Amulet_isa.Program.flatten p, defense.Defense.sandbox_pages, f)
              | exception Amulet_isa.Asm.Parse_error { line; message } ->
                  Error (Printf.sprintf "%s:%d: parse error: %s" f line message))
        in
        match loaded with
        | Error msg ->
            Format.eprintf "amulet: %s@." msg;
            Output.exit_fault
        | Ok (flat, sandbox_pages, source) ->
            let sandbox_bytes = sandbox_pages * Amulet_emu.Memory.page_size in
            let t =
              Amulet_static.Leakcheck.analyze ?window ~sandbox_bytes flat
            in
            if json then Output.emit (lint_json flat t source)
            else
              Format.printf "%s:@.%a@." source
                (Amulet_static.Leakcheck.pp flat)
                t;
            if t.Amulet_static.Leakcheck.lint.Amulet_static.Lint.errors > 0
            then Output.exit_fault
            else if t.Amulet_static.Leakcheck.leaky then Output.exit_violation
            else Output.exit_clean)
  in
  let term =
    Term.(const run $ file $ reproducer $ window $ defense_t $ json_t)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a test program without simulating it: \
          well-formedness diagnostics, input-taint flows, speculation \
          windows and speculative transmitter sites.  Exits 2 on lint \
          errors or unreadable input, 1 when the program is potentially \
          leaky, 0 when it is provably leak-free.")
    term

(* ------------------------------------------------------------------ *)
(* corpus — inspect a guided-fuzzing corpus checkpoint                 *)
(* ------------------------------------------------------------------ *)

let corpus_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A corpus checkpoint ($(b,fuzz --corpus-out)) or a campaign \
             journal ($(b,fuzz --journal)) with an embedded corpus.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Highest-score seeds to show.")
  in
  let programs =
    Arg.(
      value & flag
      & info [ "programs" ] ~doc:"Also print each shown seed's program text.")
  in
  let run file top programs json =
   Output.guarded @@ fun () ->
    let module C = Amulet_corpus.Corpus in
    let module Cov = Amulet_corpus.Coverage in
    let text = In_channel.with_open_text file In_channel.input_all in
    let c =
      try C.of_string text
      with Failure _ -> (
        (* not a bare checkpoint: maybe a campaign journal carrying one *)
        match Journal.load file with
        | { Journal.corpus = Some s; _ } -> C.of_string s
        | { Journal.corpus = None; _ } ->
            failwith
              (file
             ^ ": journal has no embedded corpus (not a --guided campaign?)")
        | exception Journal.Format_error _ ->
            failwith
              (file ^ ": neither a corpus checkpoint nor a campaign journal"))
    in
    let p = C.params c in
    let cov = C.coverage c in
    let tops = C.top c top in
    let entry_json (e : C.entry) =
      Json.Obj
        ([
           ("score", Json.Int e.C.score);
           ("age", Json.Int e.C.age);
           ("trials", Json.Int e.C.trials);
           ("insts", Json.Int (Array.length e.C.program.Amulet_isa.Program.code));
         ]
        @ if programs then [ ("program", Json.Str e.C.text) ] else [])
    in
    if json then
      Output.emit
        (Json.Obj
           [
             ("round", Json.Int (C.round c));
             ("seeds", Json.Int (C.size c));
             ("capacity", Json.Int p.C.capacity);
             ("max_age", Json.Int p.C.max_age);
             ("mutate_fraction", Json.Float p.C.mutate_fraction);
             ("energy", Json.Int p.C.energy);
             ("evictions", Json.Int (C.evictions c));
             ("rejected_seeds", Json.Int (C.rejected_seeds c));
             ( "coverage",
               Json.Obj
                 [
                   ("features", Json.Int (Cov.size cov));
                   ("observations", Json.Int (Cov.observations cov));
                 ] );
             ("top", Json.List (List.map entry_json tops));
           ])
    else begin
      Format.printf
        "corpus: %d seed(s) (capacity %d), round %d, %d eviction(s), %d \
         rejected seed(s)@."
        (C.size c) p.C.capacity (C.round c) (C.evictions c)
        (C.rejected_seeds c);
      Format.printf
        "schedule: mutate-fraction %.2f, energy %d, max-age %d@."
        p.C.mutate_fraction p.C.energy p.C.max_age;
      Format.printf "coverage: %d distinct feature(s) over %d observation(s)@."
        (Cov.size cov) (Cov.observations cov);
      List.iteri
        (fun i (e : C.entry) ->
          Format.printf "#%d score %d, age %d, trials %d, %d inst(s)@." (i + 1)
            e.C.score e.C.age e.C.trials
            (Array.length e.C.program.Amulet_isa.Program.code);
          if programs then Format.printf "%s@." e.C.text)
        tops
    end;
    Output.exit_clean
  in
  let term = Term.(const run $ file $ top $ programs $ json_t) in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Inspect a guided-fuzzing corpus checkpoint: scheduler parameters, \
          coverage-map statistics and the top-scored seeds.  Exits 0 on a \
          readable corpus, 2 on unreadable input.")
    term

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run json =
   Output.guarded @@ fun () ->
    if json then
      Output.emit
        (Json.Obj
           [
             ( "defenses",
               Json.List
                 (List.map
                    (fun d ->
                      Json.Obj
                        [
                          ("name", Json.Str d.Defense.name);
                          ("description", Json.Str d.Defense.description);
                          ( "contract",
                            Json.Str d.Defense.contract.Amulet_contracts.Contract.name
                          );
                          ("sandbox_pages", Json.Int d.Defense.sandbox_pages);
                        ])
                    Defense.all) );
             ( "contracts",
               Json.List
                 (List.map
                    (fun c ->
                      Json.Obj
                        [
                          ("name", Json.Str c.Amulet_contracts.Contract.name);
                          ( "description",
                            Json.Str c.Amulet_contracts.Contract.description );
                        ])
                    Amulet_contracts.Contract.all) );
             ( "trace_formats",
               Json.List
                 (List.map
                    (fun f -> Json.Str (Utrace.format_name f))
                    Utrace.all_formats) );
             ( "reproducers",
               Json.List
                 (List.map
                    (fun r ->
                      Json.Obj
                        [
                          ("name", Json.Str r.Reproducers.name);
                          ("description", Json.Str r.Reproducers.description);
                          ( "defense",
                            Json.Str r.Reproducers.defense.Defense.name );
                        ])
                    Reproducers.all) );
           ])
    else begin
      Format.printf "defenses:@.";
      List.iter
        (fun d ->
          Format.printf "  %-22s %s (contract %s, %d-page sandbox)@." d.Defense.name
            d.Defense.description d.Defense.contract.Amulet_contracts.Contract.name
            d.Defense.sandbox_pages)
        Defense.all;
      Format.printf "@.contracts:@.";
      List.iter
        (fun c ->
          Format.printf "  %-10s %s@." c.Amulet_contracts.Contract.name
            c.Amulet_contracts.Contract.description)
        Amulet_contracts.Contract.all;
      Format.printf "@.trace formats:@.";
      List.iter
        (fun f -> Format.printf "  %s@." (Utrace.format_name f))
        Utrace.all_formats;
      Format.printf "@.reproducers:@.";
      List.iter
        (fun r -> Format.printf "  %-24s %s@." r.Reproducers.name r.Reproducers.description)
        Reproducers.all
    end;
    Output.exit_clean
  in
  Cmd.v (Cmd.info "list" ~doc:"List defenses, contracts, trace formats, reproducers.")
    Term.(const run $ json_t)

let main =
  let doc = "AMuLeT: automated design-time testing of secure speculation countermeasures" in
  Cmd.group (Cmd.info "amulet" ~version:"1.0.0" ~doc)
    [
      fuzz_cmd; sweep_cmd; serve_cmd; worker_cmd; reproduce_cmd; run_cmd;
      analyze_cmd; explain_cmd; triage_cmd; lint_cmd; corpus_cmd; list_cmd;
    ]

let () = exit (Cmd.eval' main)
