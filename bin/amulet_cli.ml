(* The amulet command-line interface.

   Subcommands:
     fuzz       - run a testing campaign against a defense
     reproduce  - hunt a known vulnerability with its crafted reproducer
     run        - execute an assembly file on the simulator and print traces
     analyze    - revalidate/classify/minimize a saved violation
     explain    - violation forensics: trace + counter delta of the two runs
     list       - show available defenses, contracts, trace formats
*)

open Cmdliner
open Amulet
open Amulet_defenses

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let defense_arg =
  let parse s =
    match Defense.find s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown defense %S (try: %s)" s
               (String.concat ", " (List.map (fun d -> d.Defense.name) Defense.all))))
  in
  let print fmt d = Format.fprintf fmt "%s" d.Defense.name in
  Arg.conv (parse, print)

let format_arg =
  let parse s =
    match Utrace.format_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg "unknown trace format (l1d+tlb, bp-state, mem-order, bp-order)")
  in
  let print fmt f = Format.fprintf fmt "%s" (Utrace.format_name f) in
  Arg.conv (parse, print)

let contract_arg =
  let parse s =
    match Amulet_contracts.Contract.find s with
    | Some c -> Ok c
    | None -> Error (`Msg "unknown contract (CT-SEQ, CT-COND, ARCH-SEQ)")
  in
  let print fmt c = Format.fprintf fmt "%s" c.Amulet_contracts.Contract.name in
  Arg.conv (parse, print)

let defense_t =
  Arg.(
    value
    & opt defense_arg Defense.baseline
    & info [ "d"; "defense" ] ~docv:"DEFENSE" ~doc:"Countermeasure under test.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let programs =
    Arg.(value & opt int 50 & info [ "p"; "programs" ] ~doc:"Number of test programs.")
  in
  let inputs =
    Arg.(value & opt int 10 & info [ "i"; "inputs" ] ~doc:"Base inputs per program.")
  in
  let boosts =
    Arg.(value & opt int 4 & info [ "b"; "boosts" ] ~doc:"Boosted mutants per base input.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ "opt", Executor.Opt; "naive", Executor.Naive ]) Executor.Opt
      & info [ "mode" ] ~doc:"Executor mode: $(b,opt) amortizes simulator startup.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ "pooled", Engine.Pooled; "naive", Engine.Naive ]) Engine.Pooled
      & info [ "engine" ]
          ~doc:
            "Execution engine: $(b,pooled) boots one simulator and rewinds a \
             post-boot checkpoint per test case; $(b,naive) rebuilds the \
             simulator whenever pristine state is needed.  Trace-invisible — \
             an escape hatch for A/B-ing the pooled path.")
  in
  let fmt_ =
    Arg.(
      value & opt format_arg Utrace.L1d_tlb
      & info [ "trace-format" ] ~doc:"Microarchitectural trace format.")
  in
  let contract =
    Arg.(
      value
      & opt (some contract_arg) None
      & info [ "contract" ] ~doc:"Override the defense's default contract.")
  in
  let ways =
    Arg.(value & opt (some int) None & info [ "ways" ] ~doc:"Amplification: L1D ways.")
  in
  let mshrs =
    Arg.(value & opt (some int) None & info [ "mshrs" ] ~doc:"Amplification: MSHR count.")
  in
  let stop =
    Arg.(
      value & opt (some int) None
      & info [ "stop-after" ] ~doc:"Stop after this many violations.")
  in
  let unaligned =
    Arg.(
      value & opt float Generator.default.Generator.unaligned_fraction
      & info [ "unaligned" ] ~doc:"Fraction of unaligned memory offsets.")
  in
  let parallel =
    Arg.(
      value & opt int 1
      & info [ "j"; "parallel" ]
          ~doc:"Parallel campaign instances (the paper ran 16 or 100).")
  in
  let prefetcher =
    Arg.(
      value & flag
      & info [ "prefetcher" ]
          ~doc:"Enable the next-line L1D prefetcher (extension study).")
  in
  let save_dir =
    Arg.(
      value & opt (some string) None
      & info [ "save-dir" ] ~docv:"DIR" ~doc:"Save found violations into this directory.")
  in
  let deadline_ms =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget per fuzzing round; a round that blows it is \
             classified and discarded instead of stalling the campaign.")
  in
  let quarantine_dir =
    Arg.(
      value & opt (some string) None
      & info [ "quarantine-dir" ] ~docv:"DIR"
          ~doc:"Save the program+input of every discarded round here for triage.")
  in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Checkpoint campaign progress into this file (atomic \
             write-temp-then-rename) so a killed campaign can be resumed.")
  in
  let resume =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume a journaled campaign from its last checkpoint.  The seed \
             is taken from the journal; the defense must match.  Implies \
             $(b,--journal) FILE unless one is given.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 10
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Rounds between journal checkpoints.")
  in
  let chaos =
    Arg.(
      value & opt (some float) None
      & info [ "chaos" ] ~docv:"P"
          ~doc:
            "Robustness self-test: inject a crash/timeout/fault into each \
             test case with probability P each (so ~3P of rounds misbehave); \
             the campaign must classify and survive all of them.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the campaign's telemetry registry (uarch.* hardware \
             counters, engine.* executor metrics, fuzzer.* campaign \
             metrics) to FILE as JSON.  Trace-invisible: enabling \
             telemetry never changes traces or findings.")
  in
  let run defense programs inputs boosts mode engine fmt_ contract ways mshrs stop
      seed unaligned parallel prefetcher save_dir deadline_ms quarantine_dir journal
      resume checkpoint_every chaos metrics_out =
    let sim_config =
      match ways, mshrs, prefetcher with
      | None, None, false -> None
      | _ ->
          Some
            {
              (Defense.config ?l1d_ways:ways ?mshrs defense) with
              Amulet_uarch.Config.nl_prefetcher = prefetcher;
            }
    in
    let resume_journal =
      Option.map
        (fun path ->
          let j = Journal.load path in
          if j.Journal.defense_name <> defense.Defense.name then
            failwith
              (Printf.sprintf
                 "journal %s was written for defense %s, not %s (pass -d %s)"
                 path j.Journal.defense_name defense.Defense.name
                 j.Journal.defense_name);
          j)
        resume
    in
    (* a resumed campaign replays the journal's seed and keeps checkpointing
       into the same file unless another --journal is given *)
    let seed =
      match resume_journal with Some j -> j.Journal.seed | None -> seed
    in
    let programs =
      match resume_journal with
      | Some j -> max programs j.Journal.n_programs
      | None -> programs
    in
    let journal_path =
      match journal, resume with Some _, _ -> journal | None, r -> r
    in
    let chaos_injector =
      Option.map
        (fun p ->
          Fault.injector ~p_crash:p ~p_timeout:p ~p_sim_fault:p ~seed ())
        chaos
    in
    let cfg =
      {
        Campaign.n_programs = programs;
        stop_after_violations = stop;
        seed;
        classify = true;
        fuzzer =
          {
            Fuzzer.default_config with
            Fuzzer.n_base_inputs = inputs;
            boosts_per_input = boosts;
            executor_mode = mode;
            engine;
            trace_format = fmt_;
            contract;
            sim_config;
            deadline_ms;
            quarantine_dir;
            chaos = chaos_injector;
            generator =
              { Generator.default with Generator.unaligned_fraction = unaligned };
          };
      }
    in
    Format.printf
      "fuzzing %s (%s contract, %s traces, %s executor, %s engine, seed %d)...@."
      defense.Defense.name
      (match contract with
      | Some c -> c.Amulet_contracts.Contract.name
      | None -> defense.Defense.contract.Amulet_contracts.Contract.name)
      (Utrace.format_name fmt_) (Executor.mode_name mode) (Engine.kind_name engine)
      seed;
    (match resume_journal with
    | Some j ->
        Format.printf "resuming from checkpoint: %d/%d rounds done, %d violation(s)@."
          j.Journal.programs_run j.Journal.n_programs
          (List.length j.Journal.violations)
    | None -> ());
    let metrics =
      match metrics_out with
      | Some _ -> Amulet_obs.Obs.create ()
      | None -> Amulet_obs.Obs.noop
    in
    let r =
      if parallel > 1 then begin
        if journal_path <> None then
          Format.eprintf
            "note: --journal/--resume apply to single-instance campaigns; \
             ignored with --parallel@.";
        Campaign.run_parallel ~instances:parallel ~metrics cfg defense
      end
      else begin
        let n = ref 0 in
        Campaign.run ?journal_path ~checkpoint_every ?resume:resume_journal
          ~metrics cfg defense ~on_violation:(fun v ->
            incr n;
            Format.printf "@.--- violation %d ---@.%a@." !n Violation.pp v)
      end
    in
    (match metrics_out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              (Amulet_obs.Obs.Snapshot.to_json r.Campaign.metrics);
            Out_channel.output_char oc '\n');
        Format.printf "telemetry written to %s@." path);
    if parallel > 1 then
      List.iteri
        (fun i v -> Format.printf "@.--- violation %d ---@.%a@." (i + 1) Violation.pp v)
        r.Campaign.violations;
    (match save_dir with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i v ->
            let path = Filename.concat dir (Printf.sprintf "violation_%03d.amulet" i) in
            Violation_io.save (Violation_io.of_violation v) path;
            Format.printf "saved %s@." path)
          r.Campaign.violations);
    Format.printf "@.%a" Campaign.pp r;
    if Campaign.detected r then 1 else 0
  in
  let term =
    Term.(
      const run $ defense_t $ programs $ inputs $ boosts $ mode $ engine $ fmt_ $ contract $ ways
      $ mshrs $ stop $ seed_t $ unaligned $ parallel $ prefetcher $ save_dir
      $ deadline_ms $ quarantine_dir $ journal $ resume $ checkpoint_every $ chaos
      $ metrics_out)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a testing campaign against a secure-speculation defense.")
    term

(* ------------------------------------------------------------------ *)
(* reproduce                                                           *)
(* ------------------------------------------------------------------ *)

let reproduce_cmd =
  let name_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Reproducer name (one of: $(b,figure4-uv1), $(b,figure6-uv2), \
             $(b,figure8-uv6), $(b,figure9-kv3), $(b,uv3-store-not-cleaned), \
             $(b,uv4-split-not-cleaned), $(b,uv5-too-much-cleaning), \
             $(b,spectre-v4)).")
  in
  let run name seed =
    match Reproducers.find name with
    | None ->
        Format.eprintf "unknown reproducer %S@." name;
        2
    | Some r -> (
        Format.printf "%s: %s@.defense: %s@.--- program ---@.%s@." r.Reproducers.name
          r.Reproducers.description r.Reproducers.defense.Defense.name
          r.Reproducers.asm;
        match Reproducers.hunt ~seed r with
        | Some v ->
            Format.printf "%a@." Violation.pp v;
            (match v.Violation.signature with
            | Some s -> Format.printf "root cause signature: %s@." s
            | None -> ());
            0
        | None ->
            Format.printf "no violation found within the reproducer budget@.";
            1)
  in
  let term = Term.(const run $ name_t $ seed_t) in
  Cmd.v
    (Cmd.info "reproduce"
       ~doc:"Hunt one of the paper's known vulnerabilities with its crafted test.")
    term

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly file.")
  in
  let run file defense seed =
    let source = In_channel.with_open_text file In_channel.input_all in
    let flat = Amulet_isa.Program.flatten (Amulet_isa.Asm.parse source) in
    Format.printf "--- program ---@.%a@." Amulet_isa.Program.pp_flat flat;
    let rng = Rng.create ~seed in
    let input = Input.generate rng ~pages:defense.Defense.sandbox_pages in
    let stats = Stats.create () in
    let ex = Executor.create ~boot_insts:1000 ~mode:Executor.Opt defense stats in
    Executor.start_program ex;
    let outcome =
      let o = Executor.run ex flat input in
      Executor.run ex ~context:o.Executor.context ~log:true flat input
    in
    let events = outcome.Executor.events in
    Format.printf "--- input ---@.%a@." Input.pp input;
    Format.printf "--- run: %d cycles%s ---@." outcome.Executor.cycles
      (match outcome.Executor.run_fault with
      | None -> ""
      | Some f -> " FAULT: " ^ Fault.to_string f);
    Format.printf "--- uarch trace: %a@." Utrace.pp outcome.Executor.trace;
    Format.printf "--- debug log (%d events) ---@." (List.length events);
    List.iter (fun e -> Format.printf "%a@." Amulet_uarch.Event.pp e) events;
    0
  in
  let term = Term.(const run $ file $ defense_t $ seed_t) in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute an assembly file on the simulator with a random input and \
             print its debug log and trace.")
    term

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A violation file written by fuzz --save-dir.")
  in
  let do_minimize =
    Arg.(value & flag & info [ "minimize" ] ~doc:"Also minimize the test program.")
  in
  let ways =
    Arg.(value & opt (some int) None & info [ "ways" ] ~doc:"Amplification: L1D ways.")
  in
  let mshrs =
    Arg.(value & opt (some int) None & info [ "mshrs" ] ~doc:"Amplification: MSHR count.")
  in
  let run file do_minimize ways mshrs =
    let stored = Violation_io.load file in
    Format.printf "defense: %s  contract: %s%s@." stored.Violation_io.defense_name
      stored.Violation_io.contract_name
      (match stored.Violation_io.signature with
      | Some s -> "  (recorded signature: " ^ s ^ ")"
      | None -> "");
    Format.printf "--- program ---@.%a@." Amulet_isa.Program.pp_flat
      stored.Violation_io.program;
    let sim_config =
      match ways, mshrs, Defense.find stored.Violation_io.defense_name with
      | None, None, _ | _, _, None -> None
      | _, _, Some d -> Some (Defense.config ?l1d_ways:ways ?mshrs d)
    in
    let r = Violation_io.reanalyze ~minimize:do_minimize ?sim_config stored in
    if not r.Violation_io.reproduced then begin
      Format.printf
        "violation did NOT reproduce under a fresh context (it may need the          original campaign's microarchitectural context or an amplified          configuration: try --ways/--mshrs)@.";
      1
    end
    else begin
      (match r.Violation_io.leak_class with
      | Some c -> Format.printf "reproduced; signature: %s@." (Analysis.class_name c)
      | None -> ());
      (match r.Violation_io.minimization with
      | Some m -> Format.printf "%a" Minimize.pp_result m
      | None -> ());
      0
    end
  in
  let term = Term.(const run $ file $ do_minimize $ ways $ mshrs) in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Reload a saved violation, revalidate, classify and optionally minimize it.")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A violation file written by fuzz --save-dir.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the forensics report as JSON on stdout.")
  in
  let ways =
    Arg.(value & opt (some int) None & info [ "ways" ] ~doc:"Amplification: L1D ways.")
  in
  let mshrs =
    Arg.(value & opt (some int) None & info [ "mshrs" ] ~doc:"Amplification: MSHR count.")
  in
  let run file json ways mshrs =
    let stored = Violation_io.load file in
    let sim_config =
      match ways, mshrs, Defense.find stored.Violation_io.defense_name with
      | None, None, _ | _, _, None -> None
      | _, _, Some d -> Some (Defense.config ?l1d_ways:ways ?mshrs d)
    in
    let report = Forensics.explain ?sim_config stored in
    if json then print_endline (Forensics.to_json report)
    else Format.printf "%a" Forensics.pp report;
    if report.Forensics.reproduced then 0 else 1
  in
  let term = Term.(const run $ file $ json $ ways $ mshrs) in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Violation forensics: re-run a saved violation's two inputs from an \
          identical microarchitectural context and report the contract-trace \
          comparison, the trace diff, the hardware-counter delta between the \
          two executions, and the root-cause class.")
    term

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Format.printf "defenses:@.";
    List.iter
      (fun d ->
        Format.printf "  %-22s %s (contract %s, %d-page sandbox)@." d.Defense.name
          d.Defense.description d.Defense.contract.Amulet_contracts.Contract.name
          d.Defense.sandbox_pages)
      Defense.all;
    Format.printf "@.contracts:@.";
    List.iter
      (fun c ->
        Format.printf "  %-10s %s@." c.Amulet_contracts.Contract.name
          c.Amulet_contracts.Contract.description)
      Amulet_contracts.Contract.all;
    Format.printf "@.trace formats:@.";
    List.iter
      (fun f -> Format.printf "  %s@." (Utrace.format_name f))
      Utrace.all_formats;
    Format.printf "@.reproducers:@.";
    List.iter
      (fun r -> Format.printf "  %-24s %s@." r.Reproducers.name r.Reproducers.description)
      Reproducers.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List defenses, contracts, trace formats, reproducers.")
    Term.(const run $ const ())

let main =
  let doc = "AMuLeT: automated design-time testing of secure speculation countermeasures" in
  Cmd.group (Cmd.info "amulet" ~version:"1.0.0" ~doc)
    [ fuzz_cmd; reproduce_cmd; run_cmd; analyze_cmd; explain_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
