(* The AMuLeT benchmark harness: regenerates every table and figure of the
   paper's evaluation (ASPLOS'25), scaled to a single process on a laptop.

   Run with:        dune exec bench/main.exe
   Full budgets:    AMULET_BENCH_FULL=1 dune exec bench/main.exe

   Absolute times differ from the paper (their substrate was gem5 on a
   128-core EPYC with 100 parallel fuzzer instances); the claims under test
   are the *shapes*: who finds what, which configuration is faster, where
   amplification tips a clean design into a violating one.  EXPERIMENTS.md
   records paper-vs-measured for every row. *)

open Amulet
open Amulet_defenses

let full = Sys.getenv_opt "AMULET_BENCH_FULL" <> None

(* scaled campaign budgets: (programs, base inputs, boosts) *)
let scale n = if full then n * 3 else n

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let hline = String.make 78 '-'

(* ------------------------------------------------------------------ *)
(* Table 1: leakage contracts                                          *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: leakage contracts";
  Format.printf "%-10s %-34s %s@." "Name" "Leakage clause" "Execution clause";
  List.iter
    (fun c ->
      let open Amulet_contracts.Contract in
      let leak =
        String.concat ", "
          (List.filter_map
             (fun (b, s) -> if b then Some s else None)
             [
               c.observe_pc, "PC";
               c.observe_addresses, "LD/ST addr";
               c.observe_loaded_values, "LD values";
               c.expose_initial_regs, "registers";
             ])
      in
      let exec =
        match c.speculation with
        | No_speculation -> "N/A"
        | Conditional_branches { window; nesting } ->
            Printf.sprintf "mispredicted branches (window %d, nesting %d)" window
              nesting
      in
      Format.printf "%-10s %-34s %s@." c.name leak exec)
    Amulet_contracts.Contract.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: substrate operation costs                *)
(* ------------------------------------------------------------------ *)

let microbench () =
  section "Substrate micro-benchmarks (Bechamel)";
  let open Bechamel in
  let rng = Rng.create ~seed:99 in
  let flat = Generator.generate_flat rng in
  let input = Input.generate rng ~pages:1 in
  let sim =
    Amulet_uarch.Simulator.create ~boot_insts:0 ~pages:1 Amulet_uarch.Config.default
  in
  let tests =
    Test.make_grouped ~name:"amulet"
      [
        Test.make ~name:"emulator: run 50-inst test"
          (Staged.stage (fun () ->
               ignore (Amulet_emu.Emulator.execute flat (Input.to_state input))));
        Test.make ~name:"leakage model: CT-SEQ ctrace"
          (Staged.stage (fun () ->
               ignore
                 (Amulet_contracts.Leakage_model.collect Amulet_contracts.Contract.ct_seq
                    flat (Input.to_state input))));
        Test.make ~name:"leakage model: CT-COND + taint"
          (Staged.stage (fun () ->
               ignore
                 (Amulet_contracts.Leakage_model.collect ~collect_taint:true
                    Amulet_contracts.Contract.ct_cond flat (Input.to_state input))));
        Test.make ~name:"pipeline: run 50-inst test"
          (Staged.stage (fun () ->
               Amulet_uarch.Simulator.load_state sim (Input.to_state input);
               ignore (Amulet_uarch.Simulator.run sim flat)));
        Test.make ~name:"pipeline: prime 64x8 L1D fills"
          (Staged.stage (fun () ->
               ignore (Amulet_uarch.Simulator.prime_with_fills sim)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Format.printf "%-40s %14s@." "operation" "time/run";
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | _ -> nan
      in
      Format.printf "%-40s %11.1f us@." name (ns /. 1000.))
    results

(* ------------------------------------------------------------------ *)
(* Shared campaign spec                                                *)
(* ------------------------------------------------------------------ *)

let bench_spec ?(inputs = 10) ?(boosts = 4) ?(mode = Executor.Opt)
    ?(format = Utrace.L1d_tlb) ?contract ?sim_config ?generator
    ?(stop = None) ?(classify = true) ?(seed = 42) ?(programs = 20) defense =
  Run_spec.make ~defense ~rounds:programs ?stop_after:stop ~seed ~classify
    ~inputs ~boosts ?contract ?generator ~mode ~trace_format:format
    ?sim_config ()

(* ------------------------------------------------------------------ *)
(* Table 2: Naive vs Opt time breakdown per test program               *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: time breakdown per test program, Naive vs Opt uarch-trace extraction";
  let programs = scale 4 and inputs = 8 and boosts = 4 in
  let run mode =
    let fz = Fuzzer.create (bench_spec ~inputs ~boosts ~mode Defense.baseline) in
    for _ = 1 to programs do
      ignore (Fuzzer.round fz)
    done;
    let stats = Fuzzer.stats fz in
    Stats.close stats;
    stats
  in
  let naive = run Executor.Naive in
  let opt = run Executor.Opt in
  let per_program v = v /. float_of_int programs in
  Format.printf "%-22s %18s %18s@." "Component"
    (Printf.sprintf "Naive (s/prog)") (Printf.sprintf "Opt (s/prog)");
  let row name cat =
    let n = per_program (Stats.seconds naive cat) in
    let o = per_program (Stats.seconds opt cat) in
    let nt = Stats.total naive /. float_of_int programs in
    let ot = Stats.total opt /. float_of_int programs in
    Format.printf "%-22s %10.3f (%4.1f%%) %10.3f (%4.1f%%)@." name n
      (100. *. n /. nt) o (100. *. o /. ot)
  in
  row "sim startup" Stats.Sim_startup;
  row "sim simulate" Stats.Sim_simulate;
  row "uTrace extraction" Stats.Utrace_extraction;
  row "test generation" Stats.Test_generation;
  row "cTrace extraction" Stats.Ctrace_extraction;
  row "others" Stats.Other;
  let nt = Stats.total naive /. float_of_int programs in
  let ot = Stats.total opt /. float_of_int programs in
  Format.printf "%-22s %10.3f %19.3f@." "total" nt ot;
  Format.printf "@.Opt speedup per test program: %.1fx  (paper: 13x)@." (nt /. ot)

(* ------------------------------------------------------------------ *)
(* Table 3: testing the baseline OoO CPU, Naive vs Opt                 *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: baseline out-of-order CPU, Naive vs Opt, CT-SEQ and CT-COND";
  let programs = scale 12 in
  let cell mode contract =
    let t0 = Unix.gettimeofday () in
    let r =
      Campaign.run
        (bench_spec ~inputs:8 ~boosts:5 ~mode ?contract ~classify:false
           ~programs Defense.baseline)
    in
    let dt = Unix.gettimeofday () -. t0 in
    dt, List.length r.Campaign.violations, Campaign.avg_detection_time r
  in
  Format.printf "%-18s %-9s %10s %10s %8s@." "Metric" "Contract" "Naive" "Opt" "Ratio";
  let show name contract cname =
    let naive_t, naive_v, naive_d = cell Executor.Naive contract in
    let opt_t, opt_v, opt_d = cell Executor.Opt contract in
    Format.printf "%-18s %-9s %9.1fs %9.1fs %7.1fx@." (name ^ " time") cname naive_t
      opt_t (naive_t /. opt_t);
    Format.printf "%-18s %-9s %10d %10d@." (name ^ " violations") cname naive_v opt_v;
    Format.printf "%-18s %-9s %10s %10s@." (name ^ " detect (s)") cname
      (match naive_d with Some d -> Printf.sprintf "%.1f" d | None -> "-")
      (match opt_d with Some d -> Printf.sprintf "%.1f" d | None -> "-")
  in
  show "campaign" None "CT-SEQ";
  show "campaign" (Some Amulet_contracts.Contract.ct_cond) "CT-COND";
  Format.printf
    "@.(Paper shape: Opt ~9-12x faster; Opt finds more violations thanks to \
     full-set@. priming and persistent predictor state; CT-COND violations \
     (Spectre-v4) are rare.)@."

(* ------------------------------------------------------------------ *)
(* Table 4: testing the defenses                                       *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4: testing InvisiSpec, CleanupSpec, STT, SpecLFB and the baseline";
  let rows =
    [
      Defense.baseline, scale 15, None;
      Defense.invisispec, scale 10, None;
      Defense.cleanupspec, scale 20, None;
      Defense.speclfb, scale 15, None;
      ( Defense.stt,
        scale 15,
        Some
          { Generator.default with Generator.mem_fraction = 0.45; store_fraction = 0.4 }
      );
    ]
  in
  Format.printf "%-12s %-9s %-9s %-12s %-8s %-12s %s@." "Defense" "Contract"
    "Detected?" "Avg det (s)" "Unique" "tc/s" "Campaign time";
  List.iter
    (fun (d, programs, generator) ->
      let r = Campaign.run (bench_spec ~inputs:8 ~boosts:5 ?generator ~programs d) in
      Format.printf "%-12s %-9s %-9s %-12s %-8d %-12.0f %.1f s@." d.Defense.name
        r.Campaign.contract_name
        (if Campaign.detected r then "YES" else "no")
        (match Campaign.avg_detection_time r with
        | Some t -> Printf.sprintf "%.1f" t
        | None -> "-")
        (Campaign.unique_violations r) r.Campaign.throughput r.Campaign.duration;
      List.iter
        (fun (c, n) -> Format.printf "    %dx %s@." n (Analysis.class_name c))
        r.Campaign.violation_classes)
    rows;
  Format.printf
    "@.(Paper shape: every defense violates its contract; CleanupSpec/SpecLFB \
     test fastest@. (clean-cache priming), InvisiSpec slower (fill priming), \
     STT slowest by far.  STT's@. KV3 is rare under random testing — the \
     paper reports ~3 h average detection; a longer@. campaign here found it \
     after ~10 min, and the figure-9 reproducer finds it in seconds.)@."

(* ------------------------------------------------------------------ *)
(* Table 5: uarch trace formats                                        *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "Table 5: microarchitectural trace formats (baseline O3CPU)";
  let programs = scale 20 in
  (* same seed => same programs and inputs for every format; per-program
     violation verdicts let us compute fractions and overlaps *)
  let verdicts format =
    let fz =
      Fuzzer.create (bench_spec ~inputs:8 ~boosts:5 ~format ~seed:77 Defense.baseline)
    in
    let t0 = Unix.gettimeofday () in
    let found = Array.make programs false in
    for i = 0 to programs - 1 do
      match Fuzzer.round fz with
      | Fuzzer.Found _ -> found.(i) <- true
      | Fuzzer.No_violation _ | Fuzzer.Discarded _ | Fuzzer.Screened -> ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let stats = Fuzzer.stats fz in
    found, float_of_int (Stats.test_cases stats) /. dt, Stats.validations stats
  in
  let all = List.map (fun f -> f, verdicts f) Utrace.all_formats in
  let baseline_found =
    match List.assoc_opt Utrace.L1d_tlb all with
    | Some (f, _, _) -> f
    | None -> [||]
  in
  let any_found = Array.make programs false in
  List.iter (fun (_, (f, _, _)) -> Array.iteri (fun i v -> if v then any_found.(i) <- true) f) all;
  let total = Array.fold_left (fun a v -> if v then a + 1 else a) 0 any_found in
  Format.printf "%-26s %12s %12s %14s %12s@." "Trace format" "tc/s"
    "violations" "fraction" "covered by";
  Format.printf "%-26s %12s %12s %14s %12s@." "" "" "" "of total" "baseline";
  List.iter
    (fun (format, (found, tput, _validations)) ->
      let n = Array.fold_left (fun a v -> if v then a + 1 else a) 0 found in
      let covered = ref 0 in
      Array.iteri (fun i v -> if v && baseline_found.(i) then incr covered) found;
      Format.printf "%-26s %12.0f %12d %13.0f%% %11s@." (Utrace.format_name format)
        tput n
        (if total = 0 then 0. else 100. *. float_of_int n /. float_of_int total)
        (if n = 0 then "-" else Printf.sprintf "%.0f%%" (100. *. float_of_int !covered /. float_of_int n)))
    all;
  Format.printf
    "@.(Paper shape: the L1D+TLB snapshot catches ~80%% of all violating \
     tests at the best@. throughput; richer formats catch more but validate \
     slower; most of their findings are@. also visible in the baseline \
     format.)@."

(* ------------------------------------------------------------------ *)
(* Table 6: amplification on patched InvisiSpec                        *)
(* ------------------------------------------------------------------ *)

let table6 () =
  section "Table 6: testing InvisiSpec (patched) with smaller uarch structures";
  Format.printf "%-36s %10s %10s@." "Configuration" "Time" "Violation";
  List.iter
    (fun (ways, mshrs) ->
      let d = Defense.invisispec_patched in
      let sim_config = Defense.config ~l1d_ways:ways ~mshrs d in
      let t0 = Unix.gettimeofday () in
      let r =
        Campaign.run
          (bench_spec ~inputs:8 ~boosts:6 ~sim_config ~stop:(Some 1) ~seed:7
             ~programs:(scale 120) d)
      in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%-36s %8.1f s %10s@."
        (Printf.sprintf "Patched, %d-way L1D, %d MSHRs" ways mshrs)
        dt
        (if Campaign.detected r then
           "YES ("
           ^ String.concat ","
               (List.map (fun (c, _) -> Analysis.class_name c) r.Campaign.violation_classes)
           ^ ")"
         else "no"))
    [ 8, 256; 2, 256; 2, 2 ];
  Format.printf
    "@.(Paper shape: clean at default sizes; 2-way L1D is faster to test but \
     still clean;@. 2 MSHRs reveal the same-core speculative-interference \
     leak, UV2.)@."

(* ------------------------------------------------------------------ *)
(* Table 8: CleanupSpec violation types, original vs patched           *)
(* ------------------------------------------------------------------ *)

let table8 () =
  section "Table 8: CleanupSpec violation types, original vs store-cleanup patch";
  let classes d =
    let generator = { Generator.default with Generator.unaligned_fraction = 0.5 } in
    let r =
      Campaign.run
        (bench_spec ~inputs:8 ~boosts:5 ~generator ~stop:(Some 10)
           ~programs:(scale 40) d)
    in
    List.map fst r.Campaign.violation_classes
  in
  let original = classes Defense.cleanupspec in
  let patched = classes Defense.cleanupspec_patched in
  Format.printf "%-36s %10s %10s@." "Violation type" "Original" "Patched";
  List.iter
    (fun (label, c) ->
      Format.printf "%-36s %10s %10s@." label
        (if List.mem c original then "YES" else "-")
        (if List.mem c patched then "YES" else "-"))
    [
      "Speculative store not cleaned (UV3)", Analysis.Store_not_cleaned_uv3;
      "Split requests not cleaned (UV4)", Analysis.Split_not_cleaned_uv4;
      "Too much cleaning (UV5)", Analysis.Too_much_cleaning_uv5;
    ];
  Format.printf
    "@.(Paper shape: the UV3 rows disappear after the writeCallback patch; \
     UV4 and UV5 persist.)@."

(* ------------------------------------------------------------------ *)
(* Figures 4/6/8/9 and Tables 7/9/10: reproducer violations            *)
(* ------------------------------------------------------------------ *)

let show_reproducer ?(side_by_side = false) title (r : Reproducers.t) =
  section title;
  Format.printf "%s@.defense: %s@." r.Reproducers.description
    r.Reproducers.defense.Defense.name;
  match Reproducers.hunt r with
  | None -> Format.printf "reproducer budget exhausted (try a longer run)@."
  | Some v ->
      Format.printf "%a@." Violation.pp v;
      if side_by_side then begin
        let sim_config =
          match r.Reproducers.expected_class with
          | Analysis.Mshr_interference_uv2 ->
              Some (Defense.config ~l1d_ways:2 ~mshrs:2 r.Reproducers.defense)
          | _ -> None
        in
        let ex =
          Executor.create ~boot_insts:500 ?sim_config ~mode:Executor.Opt
            r.Reproducers.defense (Stats.create ())
        in
        Executor.start_program ex;
        let ea =
          (Executor.run ex ~context:v.Violation.context ~log:true
             v.Violation.program v.Violation.input_a)
            .Executor.events
        in
        let eb =
          (Executor.run ex ~context:v.Violation.context ~log:true
             v.Violation.program v.Violation.input_b)
            .Executor.events
        in
        Format.printf "--- operation sequences, side by side ---@.%a@."
          (fun f () -> Analysis.pp_side_by_side f ea eb)
          ()
      end

let figures () =
  show_reproducer "Figure 4: InvisiSpec UV1 (speculative L1D eviction)"
    Reproducers.figure4;
  show_reproducer ~side_by_side:true
    "Figure 6 / Table 7: InvisiSpec UV2 (MSHR speculative interference)"
    Reproducers.figure6;
  show_reproducer "Figure 8: SpecLFB UV6 (first speculative load unprotected)"
    Reproducers.figure8;
  show_reproducer "Figure 9: STT KV3 (tainted store fills the D-TLB)"
    Reproducers.figure9;
  show_reproducer ~side_by_side:true
    "Table 9: CleanupSpec UV5 (too much cleaning)" Reproducers.uv5;
  show_reproducer ~side_by_side:true "Table 10: CleanupSpec KV2 (unXpec timing channel)"
    Reproducers.unxpec_kv2

(* ------------------------------------------------------------------ *)
(* Table 11: integration effort (LoC per defense)                      *)
(* ------------------------------------------------------------------ *)

let table11 () =
  section "Table 11: lines of code per component (this reproduction)";
  let count_dir dir =
    try
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ml")
      |> List.map (fun f ->
             let ic = open_in (Filename.concat dir f) in
             let n = ref 0 in
             (try
                while true do
                  ignore (input_line ic);
                  incr n
                done
              with End_of_file -> close_in ic);
             !n)
      |> List.fold_left ( + ) 0
    with Sys_error _ -> 0
  in
  let rows =
    [
      "ISA + assembler + encoder", "lib/isa";
      "emulator + taint (leakage substrate)", "lib/emu";
      "contracts + leakage model", "lib/contracts";
      "OoO simulator + memory system", "lib/uarch";
      "defense presets", "lib/defenses";
      "AMuLeT core (fuzzer/executor/analysis)", "lib/core";
    ]
  in
  let any = ref false in
  List.iter
    (fun (label, dir) ->
      let n = count_dir dir in
      if n > 0 then any := true;
      Format.printf "%-42s %6d LoC@." label n)
    rows;
  if not !any then
    Format.printf "(source tree not visible from the bench working directory)@.";
  Format.printf
    "@.(The paper's Table 11 reports 948-1330 LoC of per-defense gem5 glue; \
     here the@. equivalent per-defense integration is the preset + hooks, \
     concentrated in@. lib/defenses and the defense branches of the memory \
     system and pipeline.)@."

(* ------------------------------------------------------------------ *)
(* Extension studies (beyond the paper's evaluation)                   *)
(* ------------------------------------------------------------------ *)

(* The fix the paper names for UV2: GhostMinion's strictness ordering.
   Run the SAME amplified campaign against patched InvisiSpec (leaks) and
   GhostMinion (clean). *)
let extension_ghostminion () =
  section "Extension: GhostMinion vs UV2 (the fix the paper recommends)";
  let run d =
    let sim_config = Defense.config ~l1d_ways:2 ~mshrs:2 d in
    Campaign.run
      (bench_spec ~inputs:8 ~boosts:6 ~sim_config ~stop:(Some 1) ~seed:7
         ~programs:(scale 120) d)
  in
  List.iter
    (fun d ->
      let r = run d in
      Format.printf "%-22s (2-way L1D, 2 MSHRs): %s@." d.Defense.name
        (if Campaign.detected r then
           "VIOLATION ("
           ^ String.concat ","
               (List.map (fun (c, _) -> Analysis.class_name c) r.Campaign.violation_classes)
           ^ ")"
         else "clean"))
    [ Defense.invisispec_patched; Defense.ghostminion; Defense.delay_on_miss ];
  Format.printf
    "@.(GhostMinion's dedicated speculative MSHRs/queue remove the same-core      interference;@. Delay-on-Miss never fetches speculatively in the first      place.)@."

(* §5.2's future-work claim, made concrete: a next-line prefetcher trained
   by transient accesses re-opens a leak in an otherwise-clean defense. *)
let extension_prefetcher () =
  section "Extension: next-line prefetcher study (paper section 5.2)";
  let d = Defense.invisispec_patched in
  let run prefetcher =
    let sim_config =
      { (Defense.config d) with Amulet_uarch.Config.nl_prefetcher = prefetcher }
    in
    Campaign.run
      (bench_spec ~inputs:8 ~boosts:5 ~sim_config ~stop:(Some 1) ~seed:11
         ~programs:(scale 30) d)
  in
  List.iter
    (fun prefetcher ->
      let r = run prefetcher in
      Format.printf "patched InvisiSpec, NL prefetcher %-3s: %s@."
        (if prefetcher then "ON" else "OFF")
        (if Campaign.detected r then
           "VIOLATION ("
           ^ String.concat ","
               (List.map (fun (c, _) -> Analysis.class_name c) r.Campaign.violation_classes)
           ^ ")"
         else "clean"))
    [ false; true ];
  Format.printf
    "@.(The prefetch trained by a transient access installs outside the      defense's@. protection, leaking the transient address's neighbourhood —      exactly the kind of@. new-feature leak the paper's section 5.2      predicts AMuLeT would find.)@."

(* The paper's parallel methodology: N independent instances. *)
let extension_parallel () =
  section "Extension: parallel campaign instances (the paper's methodology)";
  Format.printf "(host has %d core(s); speedup requires cores, coverage does not)@.@."
    (Domain.recommended_domain_count ());
  let spec =
    bench_spec ~inputs:8 ~boosts:5 ~classify:false ~seed:3 ~programs:(scale 8)
      Defense.baseline
  in
  List.iter
    (fun instances ->
      let t0 = Unix.gettimeofday () in
      let r =
        if instances = 1 then Campaign.run spec
        else Campaign.run_parallel ~instances spec
      in
      Format.printf
        "%2d instance(s): %4d test cases, %3d violations, %6.0f tc/s aggregate, %.1f s wall@."
        instances r.Campaign.test_cases
        (List.length r.Campaign.violations)
        r.Campaign.throughput
        (Unix.gettimeofday () -. t0))
    [ 1; 2; 4 ]

(* Robustness: fault containment under chaos injection, and the wall-clock
   cost of crash-safe journaling. *)
let extension_robustness () =
  section "Extension: campaign robustness (chaos injection + journal overhead)";
  let qdir = Filename.temp_file "amulet-bench-quarantine" "" in
  Sys.remove qdir;
  let chaos = Fault.injector ~p_crash:0.02 ~p_timeout:0.02 ~p_sim_fault:0.02 ~seed:99 () in
  let r =
    Campaign.run
      (Run_spec.make ~defense:Defense.baseline ~rounds:(scale 20) ~seed:11
         ~classify:false ~inputs:6 ~boosts:3 ~deadline_ms:5000.
         ~quarantine_dir:qdir ~chaos ())
  in
  Format.printf
    "chaos campaign: %d programs, %d discarded, %d quarantined, %d violations@."
    r.Campaign.programs_run r.Campaign.discarded_programs r.Campaign.quarantined
    (List.length r.Campaign.violations);
  List.iter
    (fun (c, n) -> Format.printf "  fault %-20s %d@." (Fault.class_name c) n)
    r.Campaign.fault_counts;
  (* journal-write overhead: the checkpoint a campaign pays every
     [checkpoint_every] rounds, measured on this campaign's final state *)
  let j =
    {
      Journal.seed = 11;
      n_programs = r.Campaign.programs_run;
      defense_name = r.Campaign.defense.Defense.name;
      contract_name = r.Campaign.contract_name;
      programs_run = r.Campaign.programs_run;
      discarded = r.Campaign.discarded_programs;
      test_cases = r.Campaign.test_cases;
      fault_counts = r.Campaign.fault_counts;
      detection_times = r.Campaign.detection_times;
      corpus = r.Campaign.corpus;
      violations = List.map Violation_io.of_violation r.Campaign.violations;
    }
  in
  let jpath = Filename.temp_file "amulet-bench" ".journal" in
  let reps = 200 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    Journal.save j jpath
  done;
  let write_ms = (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps in
  Sys.remove jpath;
  Format.printf "journal checkpoint write: %.3f ms (atomic temp+rename, %d reps)@."
    write_ms reps;
  (* machine-readable summary line for downstream tooling *)
  let faults_json =
    String.concat ","
      (List.map
         (fun (c, n) -> Printf.sprintf "\"%s\":%d" (Fault.class_name c) n)
         r.Campaign.fault_counts)
  in
  Format.printf
    "{\"bench\":\"robustness\",\"programs\":%d,\"discarded\":%d,\"quarantined\":%d,\"faults\":{%s},\"journal_write_ms\":%.3f}@."
    r.Campaign.programs_run r.Campaign.discarded_programs r.Campaign.quarantined
    faults_json write_ms;
  if Sys.file_exists qdir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat qdir f)) (Sys.readdir qdir);
    Sys.rmdir qdir
  end

(* ------------------------------------------------------------------ *)
(* Throughput: naive (rebuild) vs pooled (snapshot/restore) engine     *)
(* ------------------------------------------------------------------ *)

(* The engine-level reproduction of the paper's executor speedup (§3.1):
   batch all boosted inputs of a test case against a warm simulator and
   rewind a post-boot checkpoint instead of re-booting.  Emits
   BENCH_throughput.json (path overridable via AMULET_BENCH_JSON) and
   exits non-zero if the two engines' traces ever diverge. *)

let throughput () =
  section "Throughput: naive (rebuild) vs pooled (snapshot/restore) engine";
  let boot = Amulet_uarch.Simulator.default_boot_insts in
  let programs = scale 4 and n_inputs = 16 in
  let rng = Rng.create ~seed:2025 in
  let cases =
    Array.init programs (fun _ ->
        let flat = Generator.generate_flat rng in
        let inputs = Array.init n_inputs (fun _ -> Input.generate rng ~pages:1) in
        (flat, inputs))
  in
  (* run every case through one engine; the timed region includes warm-up
     so the pooled engine is charged its single boot *)
  let measure ?(metrics = Amulet_obs.Obs.noop) ?sim_config
      ?(defense = Defense.baseline) ?(boot_insts = boot) ?(cases = cases) kind
      mode =
    let eng =
      Engine.create ~boot_insts ?sim_config ~kind ~mode defense
        (Stats.create ~metrics ())
    in
    (* boot cost is reported separately (warm boot / snapshot rows below);
       the throughput numbers measure the steady state.  The major
       collection keeps GC debt from one measurement out of the next. *)
    Engine.warm eng;
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let traces =
      Array.map
        (fun (flat, inputs) ->
          Array.map
            (Option.map (fun (o : Executor.outcome) -> o.Executor.trace))
            (Engine.run_batch eng flat inputs).Engine.outcomes)
        cases
    in
    let dt = Unix.gettimeofday () -. t0 in
    (Engine.stats eng, dt, traces)
  in
  let traces_identical a b =
    try
      Array.for_all2
        (Array.for_all2 (fun x y ->
             match (x, y) with
             | Some x, Some y -> Utrace.equal x y
             | None, None -> true
             | _ -> false))
        a b
    with Invalid_argument _ -> false
  in
  (* headline: Naive testing semantics (pristine state per input), where the
     executor pays a full warm boot per input unless it can rewind *)
  let s_naive, t_naive, tr_naive = measure Engine.Naive Executor.Naive in
  let s_pooled, t_pooled, tr_pooled = measure Engine.Pooled Executor.Naive in
  let identical = traces_identical tr_naive tr_pooled in
  (* secondary: Opt semantics (one simulator per program), where pooling
     only replaces the per-program rebuild *)
  let _, t_naive_opt, tr_no = measure Engine.Naive Executor.Opt in
  let _, t_pooled_opt, tr_po = measure Engine.Pooled Executor.Opt in
  let identical_opt = traces_identical tr_no tr_po in
  (* telemetry must be trace-invisible and near-free: re-run the pooled
     configuration with a live registry, require byte-identical traces and
     report the wall-clock overhead (the <5% budget the design document
     commits to) *)
  let registry = Amulet_obs.Obs.create () in
  let _, t_pooled_tel, tr_tel = measure ~metrics:registry Engine.Pooled Executor.Naive in
  let telemetry_invisible = traces_identical tr_pooled tr_tel in
  let telemetry_overhead_pct =
    if t_pooled > 0. then (t_pooled_tel -. t_pooled) /. t_pooled *. 100. else 0.
  in
  let metrics_snapshot = Amulet_obs.Obs.Snapshot.of_registry registry in
  let inputs_total = programs * n_inputs in
  let per t = (float_of_int programs /. t, float_of_int inputs_total /. t) in
  let tps_n, ips_n = per t_naive and tps_p, ips_p = per t_pooled in
  let speedup = ips_p /. ips_n in
  let speedup_opt = t_naive_opt /. t_pooled_opt in
  Format.printf "%-28s %10s %12s %12s %8s %9s@." "engine (Naive semantics)"
    "seconds" "tests/sec" "inputs/sec" "boots" "rewinds";
  let row name t (s : Engine.stats) tps ips =
    Format.printf "%-28s %10.3f %12.1f %12.1f %8d %9d@." name t tps ips
      s.Engine.sims_created s.Engine.snapshot_restores
  in
  row "naive (rebuild)" t_naive s_naive tps_n ips_n;
  row "pooled (snapshot/restore)" t_pooled s_pooled tps_p ips_p;
  Format.printf "speedup (inputs/sec): %.2fx   Opt-semantics speedup: %.2fx@."
    speedup speedup_opt;
  (* checkpoint cost: what one snapshot and one rewind of the post-boot
     microarchitectural state cost in isolation *)
  let sim = Amulet_uarch.Simulator.create ~boot_insts:boot ~pages:1
      Amulet_uarch.Config.default in
  let reps = 200 in
  let time_us f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do f () done;
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps
  in
  (* decode amortization: the optimized hot loop (pre-decoded program
     cache, ring-buffer ROB, arena reuse, fused ctrace blocks) against the
     pre-optimization pipeline (Pipeline_legacy), same engine, same cases.
     Traces must stay byte-identical; the >= 3x inputs/sec floor over the
     legacy pooled engine is the CI gate. *)
  let decode_gate = 3.0 in
  let decode_boot = 200 in
  (* long straight-line-heavy programs and a deep input population: the
     regime the hot loop optimizations target (per-input work dominates;
     one decode serves the whole population) *)
  let decode_programs = scale 3 and decode_inputs = 24 in
  let decode_cases =
    let rng = Rng.create ~seed:2026 in
    let cfg =
      { Generator.default with
        Generator.blocks = 32;
        min_insts_per_block = 10;
        max_insts_per_block = 16 }
    in
    Array.init decode_programs (fun _ ->
        let flat = Generator.generate_flat ~cfg rng in
        let inputs =
          Array.init decode_inputs (fun _ -> Input.generate rng ~pages:1)
        in
        (flat, inputs))
  in
  let decode_inputs_total = decode_programs * decode_inputs in
  Format.printf "@.decode amortization (pooled engine, Opt semantics, boot %d):@."
    decode_boot;
  Format.printf "%-14s %12s %12s %9s %8s %8s@." "preset" "legacy (s)"
    "optimized (s)" "speedup" "decodes" "traces";
  let decode_rows =
    List.map
      (fun name ->
        let d =
          match Defense.find name with
          | Some d -> d
          | None -> failwith ("unknown preset " ^ name)
        in
        let legacy_cfg =
          { (Defense.config d) with Amulet_uarch.Config.legacy_hot_loop = true }
        in
        (* best of two: each rep is a fresh engine over identical cases, so
           traces are deterministic and the min filters scheduler noise out
           of a wall-clock ratio gate *)
        let best_of_2 f =
          let (_, t1, _) as r1 = f () in
          let (_, t2, _) as r2 = f () in
          if t1 <= t2 then r1 else r2
        in
        let _, t_legacy, tr_legacy =
          best_of_2 (fun () ->
              measure ~defense:d ~sim_config:legacy_cfg ~boot_insts:decode_boot
                ~cases:decode_cases Engine.Pooled Executor.Opt)
        in
        let s_optim, t_optim, tr_optim =
          best_of_2 (fun () ->
              measure ~defense:d ~boot_insts:decode_boot ~cases:decode_cases
                Engine.Pooled Executor.Opt)
        in
        let same = traces_identical tr_legacy tr_optim in
        let speedup = t_legacy /. t_optim in
        let decodes = s_optim.Engine.programs_decoded in
        Format.printf "%-14s %12.3f %12.3f %8.2fx %8d %8s@." name t_legacy
          t_optim speedup decodes
          (if same then "same" else "DIVERGED");
        (name, t_legacy, t_optim, speedup, same, decodes))
      [ "baseline"; "invisispec"; "speclfb" ]
  in
  let decode_min_speedup =
    List.fold_left (fun acc (_, _, _, s, _, _) -> Float.min acc s) infinity
      decode_rows
  in
  let decode_identical = List.for_all (fun (_, _, _, _, s, _) -> s) decode_rows in
  (* the cache contract: decodes track programs, not inputs *)
  let decode_amortized =
    List.for_all (fun (_, _, _, _, _, d) -> d < decode_inputs_total) decode_rows
  in
  let decode_ok =
    decode_identical && decode_amortized && decode_min_speedup >= decode_gate
  in
  if not decode_identical then
    Format.printf "ERROR: legacy and optimized hot-loop traces DIVERGED@."
  else if not decode_amortized then
    Format.printf "ERROR: decode count tracks inputs (cache not amortizing)@."
  else if decode_min_speedup < decode_gate then
    Format.printf "ERROR: decode-amortization speedup %.2fx below the %.1fx gate@."
      decode_min_speedup decode_gate
  else
    Format.printf
      "decode amortization: min speedup %.2fx (gate %.1fx), traces identical@."
      decode_min_speedup decode_gate;
  let snapshot_us = time_us (fun () -> ignore (Amulet_uarch.Simulator.snapshot sim)) in
  let snap = Amulet_uarch.Simulator.snapshot sim in
  let restore_us = time_us (fun () -> Amulet_uarch.Simulator.restore sim snap) in
  let t0 = Unix.gettimeofday () in
  let boots = 5 in
  for _ = 1 to boots do
    ignore (Amulet_uarch.Simulator.create ~boot_insts:boot ~pages:1
              Amulet_uarch.Config.default)
  done;
  let boot_us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int boots in
  Format.printf "snapshot: %.1f us   restore: %.1f us   warm boot: %.1f us@."
    snapshot_us restore_us boot_us;
  if not (identical && identical_opt) then
    Format.printf "ERROR: pooled and naive engine traces DIVERGED@."
  else Format.printf "traces: pooled and naive byte-identical across %d inputs@."
      (2 * inputs_total);
  if not telemetry_invisible then
    Format.printf "ERROR: telemetry changed the traces (must be trace-invisible)@."
  else
    Format.printf "telemetry: trace-invisible, %.1f%% overhead (%d counters live)@."
      telemetry_overhead_pct
      (List.length metrics_snapshot.Amulet_obs.Obs.Snapshot.counters);
  let json_path =
    Option.value (Sys.getenv_opt "AMULET_BENCH_JSON") ~default:"BENCH_throughput.json"
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\"bench\":\"throughput\",\"boot_insts\":%d,\"programs\":%d,\
     \"inputs_per_program\":%d,\
     \"naive\":{\"seconds\":%.4f,\"tests_per_sec\":%.2f,\"inputs_per_sec\":%.2f,\
     \"sims_created\":%d,\"snapshot_restores\":%d},\
     \"pooled\":{\"seconds\":%.4f,\"tests_per_sec\":%.2f,\"inputs_per_sec\":%.2f,\
     \"sims_created\":%d,\"snapshot_restores\":%d},\
     \"speedup\":%.3f,\"opt_mode_speedup\":%.3f,\
     \"snapshot_us\":%.2f,\"restore_us\":%.2f,\"warm_boot_us\":%.2f,\
     \"traces_identical\":%b,\
     \"telemetry\":{\"trace_invisible\":%b,\"overhead_pct\":%.2f},\
     \"decode_amortization\":{\"boot_insts\":%d,\"presets\":[%s],\
     \"min_speedup\":%.3f,\"gate\":%.1f,\"traces_identical\":%b,\
     \"decodes_amortized\":%b,\"ok\":%b},\
     \"metrics\":%s}\n"
    boot programs n_inputs t_naive tps_n ips_n s_naive.Engine.sims_created
    s_naive.Engine.snapshot_restores t_pooled tps_p ips_p
    s_pooled.Engine.sims_created s_pooled.Engine.snapshot_restores speedup
    speedup_opt snapshot_us restore_us boot_us (identical && identical_opt)
    telemetry_invisible telemetry_overhead_pct decode_boot
    (String.concat ","
       (List.map
          (fun (name, tl, topt, sp, same, decodes) ->
            Printf.sprintf
              "{\"preset\":\"%s\",\"legacy_seconds\":%.4f,\
               \"optimized_seconds\":%.4f,\"speedup\":%.3f,\
               \"traces_identical\":%b,\"programs_decoded\":%d}"
              name tl topt sp same decodes)
          decode_rows))
    decode_min_speedup decode_gate decode_identical decode_amortized decode_ok
    (Amulet_obs.Obs.Snapshot.to_json metrics_snapshot);
  close_out oc;
  Format.printf "wrote %s@." json_path;
  if not (identical && identical_opt && telemetry_invisible && decode_ok) then
    exit 1

(* ------------------------------------------------------------------ *)
(* Sweep: the sharded defense matrix, 1 domain vs N                    *)
(* ------------------------------------------------------------------ *)

(* Exercises the sweep orchestrator over every preset and enforces its
   contract: the merged violation fingerprint is byte-identical whatever
   the domain count.  Speedup is reported but only meaningful on
   multi-core hosts (single-core containers pay domain overhead for
   nothing); the fingerprint check is the hard failure.  Emits
   BENCH_sweep.json (path overridable via AMULET_BENCH_JSON). *)
let sweep_bench () =
  section "Sweep: sharded defense matrix, work-stealing domains";
  let cores = Domain.recommended_domain_count () in
  let rounds = scale 2 in
  let mk () =
    Sweep.jobs ~rounds ~seed:9
      ~make_spec:(fun d -> Run_spec.make ~defense:d ~inputs:4 ~boosts:2 ())
      ()
  in
  let time domains =
    let t0 = Unix.gettimeofday () in
    let rep = Sweep.run ~domains (mk ()) in
    (rep, Unix.gettimeofday () -. t0)
  in
  let r1, t1 = time 1 in
  let domains = if cores >= 2 then min cores 4 else 2 in
  let rn, tn = time domains in
  let fp1 = Sweep.fingerprint r1 and fpn = Sweep.fingerprint rn in
  let identical = fp1 = fpn in
  Format.printf "%a@." Sweep.pp r1;
  Format.printf "1 domain: %.1f s   %d domains: %.1f s   speedup: %.2fx@." t1
    domains tn (t1 /. tn);
  if cores < 2 then
    Format.printf
      "(host has 1 core: no speedup expected; determinism still enforced)@.";
  if identical then Format.printf "fingerprint: %s (identical across domain counts)@." fp1
  else Format.printf "ERROR: sweep fingerprints DIVERGED (%s vs %s)@." fp1 fpn;
  let json_path =
    Option.value (Sys.getenv_opt "AMULET_BENCH_JSON") ~default:"BENCH_sweep.json"
  in
  let oc = open_out json_path in
  output_string oc (Sweep.to_json rn);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." json_path;
  if not identical then exit 1

(* ------------------------------------------------------------------ *)
(* Static pre-analysis: lint/leakcheck throughput and screen soundness  *)
(* ------------------------------------------------------------------ *)

(* Measures the static leakage pre-analysis (CFG + dataflow + lint +
   transmitter classification) and enforces its two contracts: every
   curated reproducer is classified potentially leaky (zero false
   negatives), and a screening campaign reports exactly the violations an
   unfiltered one does while simulating measurably fewer inputs.  Emits
   BENCH_static.json (path overridable via AMULET_BENCH_JSON). *)
let static_bench () =
  section "Static pre-analysis: leakcheck throughput and screen soundness";
  (* 1. raw analysis throughput over generated programs *)
  let n = scale 2000 in
  let rng = Rng.create ~seed:11 in
  let programs = Array.init n (fun _ -> Generator.generate_flat rng) in
  let t0 = Unix.gettimeofday () in
  let leaky_default =
    Array.fold_left
      (fun acc flat ->
        if (Amulet_static.Leakcheck.analyze flat).Amulet_static.Leakcheck.leaky
        then acc + 1
        else acc)
      0 programs
  in
  let dt = Unix.gettimeofday () -. t0 in
  let progs_per_sec = float_of_int n /. dt in
  (* 2. screen rate on a fence-rich population (where screening can fire;
     under the default config virtually every program carries a gadget) *)
  let fence_cfg =
    { Generator.default with Generator.blocks = 3; fence_fraction = 0.25;
      mem_fraction = 0.25 }
  in
  let rng = Rng.create ~seed:11 in
  let leaky_fenced = ref 0 in
  for _ = 1 to n do
    let flat = Generator.generate_flat ~cfg:fence_cfg rng in
    if (Amulet_static.Leakcheck.analyze flat).Amulet_static.Leakcheck.leaky
    then incr leaky_fenced
  done;
  let screen_rate_default = float_of_int (n - leaky_default) /. float_of_int n in
  let screen_rate_fenced = float_of_int (n - !leaky_fenced) /. float_of_int n in
  Format.printf
    "analysis: %.0f programs/sec   screenable: %.1f%% (default gen) %.1f%% \
     (fence-rich gen)@."
    progs_per_sec
    (100. *. screen_rate_default)
    (100. *. screen_rate_fenced);
  (* 3. soundness floor: all curated reproducers must classify leaky *)
  let flagged =
    List.filter
      (fun r ->
        let sandbox_bytes =
          r.Reproducers.defense.Defense.sandbox_pages
          * Amulet_emu.Memory.page_size
        in
        (Amulet_static.Leakcheck.analyze ~sandbox_bytes (Reproducers.flat r))
          .Amulet_static.Leakcheck.leaky)
      Reproducers.all
  in
  let n_repro = List.length Reproducers.all in
  let repro_sound = List.length flagged = n_repro in
  Format.printf "reproducers flagged potentially-leaky: %d/%d@."
    (List.length flagged) n_repro;
  (* 4. screen-vs-off equivalence on the fence-rich population: identical
     violations, strictly fewer simulated inputs *)
  let rounds = scale 50 in
  let spec filter =
    Run_spec.make ~defense:Defense.baseline ~rounds ~seed:2024 ~classify:false
      ~inputs:8 ~boosts:4 ~boot_insts:200 ~generator:fence_cfg
      ~static_filter:filter ()
  in
  let ident (v : Violation.t) =
    Printf.sprintf "%Lx/%Lx/%Lx %s" v.Violation.ctrace_hash
      v.Violation.trace_a_hash v.Violation.trace_b_hash v.Violation.program_text
  in
  let metrics = Amulet_obs.Obs.create () in
  let off = Campaign.run (spec Run_spec.Off) in
  let screen = Campaign.run ~metrics (spec Run_spec.Screen) in
  let idents r = List.sort compare (List.map ident r.Campaign.violations) in
  let same_violations = idents off = idents screen in
  let screened =
    Amulet_obs.Obs.Snapshot.counter_value screen.Campaign.metrics
      "static.screened"
  in
  let fewer_inputs = screen.Campaign.test_cases < off.Campaign.test_cases in
  Format.printf
    "campaign (%d rounds): off %d violation(s) %d test cases | screen %d \
     violation(s) %d test cases, %d round(s) screened@."
    rounds
    (List.length off.Campaign.violations)
    off.Campaign.test_cases
    (List.length screen.Campaign.violations)
    screen.Campaign.test_cases screened;
  if not repro_sound then
    Format.printf "ERROR: a curated reproducer was classified leak-free@.";
  if not same_violations then
    Format.printf "ERROR: screening LOST OR ADDED violations@.";
  if not (screened > 0 && fewer_inputs) then
    Format.printf "ERROR: screening skipped nothing (no efficiency win)@.";
  if repro_sound && same_violations && screened > 0 && fewer_inputs then
    Format.printf
      "screen filter: sound (same violations, %d%% fewer inputs simulated)@."
      (100 * (off.Campaign.test_cases - screen.Campaign.test_cases)
      / off.Campaign.test_cases);
  let json_path =
    Option.value (Sys.getenv_opt "AMULET_BENCH_JSON") ~default:"BENCH_static.json"
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\"bench\":\"static\",\"programs_analyzed\":%d,\
     \"analysis_programs_per_sec\":%.1f,\
     \"screen_rate\":{\"default_generator\":%.4f,\"fence_rich_generator\":%.4f},\
     \"reproducers\":{\"total\":%d,\"flagged_leaky\":%d},\
     \"campaign\":{\"rounds\":%d,\
     \"off\":{\"violations\":%d,\"test_cases\":%d},\
     \"screen\":{\"violations\":%d,\"test_cases\":%d,\"rounds_screened\":%d},\
     \"violations_identical\":%b}}\n"
    n progs_per_sec screen_rate_default screen_rate_fenced n_repro
    (List.length flagged) rounds
    (List.length off.Campaign.violations)
    off.Campaign.test_cases
    (List.length screen.Campaign.violations)
    screen.Campaign.test_cases screened same_violations;
  close_out oc;
  Format.printf "wrote %s@." json_path;
  if not (repro_sound && same_violations && screened > 0 && fewer_inputs) then
    exit 1

(* ------------------------------------------------------------------ *)
(* Guided vs random generation: coverage-feedback effectiveness        *)
(* ------------------------------------------------------------------ *)

(* Compares violations-per-1k-inputs of coverage-guided generation against
   blind-random on the released (unpatched) artifact presets, and enforces
   the guided determinism contract: the same seed yields byte-identical
   violation identities across engine kinds, and the sweep fingerprint is
   invariant under the worker-domain count.  Emits BENCH_guided.json (path
   overridable via AMULET_BENCH_JSON); exits 1 unless guided reaches >= 2x
   violations-per-1k-inputs on at least one preset and both determinism
   checks hold. *)
let guided_bench () =
  section "Guided vs random generation (released artifacts)";
  let rounds = scale 60 in
  let seed = 7 in
  let corpus =
    {
      Amulet_corpus.Corpus.default_params with
      Amulet_corpus.Corpus.mutate_fraction = 0.8;
      energy = 2;
    }
  in
  let spec ?(engine = Engine.Pooled) ~generation defense =
    Run_spec.make ~defense ~engine ~rounds ~seed ~classify:false ~inputs:8
      ~boosts:4 ~boot_insts:200 ~generation ()
  in
  let vp1k (r : Campaign.result) =
    if r.Campaign.test_cases = 0 then 0.
    else
      1000.
      *. float_of_int (List.length r.Campaign.violations)
      /. float_of_int r.Campaign.test_cases
  in
  let preset name =
    match Defense.find name with
    | Some d -> d
    | None -> failwith ("unknown preset " ^ name)
  in
  let names = [ "invisispec"; "cleanupspec"; "speclfb" ] in
  let rows =
    List.map
      (fun name ->
        let d = preset name in
        let random = Campaign.run (spec ~generation:(Run_spec.random ()) d) in
        let guided =
          Campaign.run (spec ~generation:(Run_spec.guided ~corpus ()) d)
        in
        let rv = vp1k random and gv = vp1k guided in
        let ratio =
          if rv > 0. then gv /. rv else if gv > 0. then Float.infinity else 1.
        in
        Format.printf
          "%-14s random %3d/%5d (%5.1f vp1k) | guided %3d/%5d (%5.1f vp1k)  \
           %.1fx@."
          name
          (List.length random.Campaign.violations)
          random.Campaign.test_cases rv
          (List.length guided.Campaign.violations)
          guided.Campaign.test_cases gv ratio;
        (name, random, guided, ratio))
      names
  in
  let best_ratio =
    List.fold_left (fun acc (_, _, _, r) -> Float.max acc r) 0. rows
  in
  let speedup_ok = best_ratio >= 2.0 in
  (* determinism 1: violation identities invariant under the engine kind
     (the coverage feedback must come from per-run pipeline counters, which
     both engines reproduce exactly) *)
  let ident (v : Violation.t) =
    Printf.sprintf "%Lx/%Lx/%Lx %s" v.Violation.ctrace_hash
      v.Violation.trace_a_hash v.Violation.trace_b_hash v.Violation.program_text
  in
  let idents r = List.sort compare (List.map ident r.Campaign.violations) in
  let det_name, det_guided =
    match
      List.find_opt (fun (_, _, g, _) -> g.Campaign.violations <> []) rows
    with
    | Some (n, _, g, _) -> (n, g)
    | None -> ( match rows with (n, _, g, _) :: _ -> (n, g) | [] -> assert false)
  in
  let naive =
    Campaign.run
      (spec ~engine:Engine.Naive
         ~generation:(Run_spec.guided ~corpus ())
         (preset det_name))
  in
  let engine_invariant = idents naive = idents det_guided in
  (* determinism 2: the sweep fingerprint over guided shards is invariant
     under the worker-domain count *)
  let make_spec d =
    Run_spec.make ~defense:d ~classify:false ~inputs:8 ~boosts:4
      ~boot_insts:200
      ~generation:(Run_spec.guided ~corpus ())
      ()
  in
  let js () =
    match Sweep.select names with
    | Ok selected ->
        Sweep.jobs ~presets:selected ~shards_per_preset:2 ~rounds:(scale 15)
          ~seed ~make_spec ()
    | Error msg -> failwith msg
  in
  let fp1 = Sweep.fingerprint (Sweep.run ~domains:1 (js ())) in
  let fp4 = Sweep.fingerprint (Sweep.run ~domains:4 (js ())) in
  let domain_invariant = fp1 = fp4 in
  Format.printf
    "determinism: engine-invariant %b (%s), fingerprint %s (1 domain) %s (4 \
     domains)@."
    engine_invariant det_name fp1 fp4;
  if not speedup_ok then
    Format.printf "ERROR: guided best ratio %.2fx < 2x on every preset@."
      best_ratio
  else Format.printf "guided best ratio: %.1fx (>= 2x gate passed)@." best_ratio;
  if not engine_invariant then
    Format.printf "ERROR: guided findings differ across engine kinds@.";
  if not domain_invariant then
    Format.printf "ERROR: guided sweep fingerprint depends on domain count@.";
  let json_path =
    Option.value (Sys.getenv_opt "AMULET_BENCH_JSON") ~default:"BENCH_guided.json"
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\"bench\":\"guided\",\"rounds\":%d,\"seed\":%d,\"presets\":[%s],\
     \"best_ratio\":%s,\"speedup_ok\":%b,\
     \"engine_invariant\":%b,\"domain_invariant\":%b,\
     \"fingerprint_1_domain\":\"%s\",\"fingerprint_4_domains\":\"%s\"}\n"
    rounds seed
    (String.concat ","
       (List.map
          (fun (name, random, guided, ratio) ->
            Printf.sprintf
              "{\"preset\":\"%s\",\
               \"random\":{\"violations\":%d,\"test_cases\":%d,\"vp1k\":%.3f},\
               \"guided\":{\"violations\":%d,\"test_cases\":%d,\"vp1k\":%.3f},\
               \"ratio\":%s}"
              name
              (List.length random.Campaign.violations)
              random.Campaign.test_cases (vp1k random)
              (List.length guided.Campaign.violations)
              guided.Campaign.test_cases (vp1k guided)
              (if Float.is_integer ratio || Float.is_nan ratio
                 || ratio = Float.infinity
               then Printf.sprintf "%.1f" (Float.min ratio 9999.)
               else Printf.sprintf "%.3f" ratio))
          rows))
    (Printf.sprintf "%.3f" (Float.min best_ratio 9999.))
    speedup_ok engine_invariant domain_invariant fp1 fp4;
  close_out oc;
  Format.printf "wrote %s@." json_path;
  if not (speedup_ok && engine_invariant && domain_invariant) then exit 1

(* ------------------------------------------------------------------ *)
(* Triage: violation stream -> ranked root-cause report                *)
(* ------------------------------------------------------------------ *)

(* Exercises the full triage pipeline (explain, cluster, bisect) over a
   multi-preset violation stream and enforces its contracts: clustering
   is invariant under stream permutation, distinct clusters never exceed
   the findings consumed, and at least one cluster carries a bisected
   mechanism.  Emits BENCH_triage.json (the amulet.triage/1 document,
   path overridable via AMULET_BENCH_JSON). *)
let triage_bench () =
  section "Triage: violation stream to ranked root-cause report";
  (* a small cross-defense stream: released SpecLFB + the Figure-9 STT
     corpus, the same mixture the paper's case studies reduce *)
  let stream = ref [] in
  let add origin v =
    stream := (origin, Violation_io.of_violation v) :: !stream
  in
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense:Defense.speclfb ~seed:17 ~inputs:8 ~boosts:5
         ~boot_insts:300 ())
  in
  let budget = scale 25 in
  for i = 1 to budget do
    match Fuzzer.round fz with
    | Fuzzer.Found v -> add (Printf.sprintf "speclfb#%d" i) v
    | _ -> ()
  done;
  (match Reproducers.hunt ~seed:7 Reproducers.figure9 with
  | Some v -> add "figure9" v
  | None -> ());
  let stream = List.rev !stream in
  let n = List.length stream in
  let t0 = Unix.gettimeofday () in
  let findings =
    List.map (fun (o, s) -> (o, Triage.explain s)) stream
  in
  let t_explain = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let report = Triage.run ~bisect:true stream in
  let t_run = Unix.gettimeofday () -. t1 in
  let clusters = report.Triage.clusters in
  let stable =
    let key c =
      (c.Triage.rank, c.Triage.cluster_signature, c.Triage.count)
    in
    List.map key (Triage.cluster findings)
    = List.map key (Triage.cluster (List.rev findings))
  in
  let bounded =
    List.length clusters <= report.Triage.total - report.Triage.not_reproduced
  in
  let named =
    List.exists (fun c -> c.Triage.representative.Triage.mechanism <> None)
      clusters
  in
  Format.printf "%a" Triage.pp_report report;
  Format.printf
    "stream: %d violations   explain: %.2f s (%.1f/s)   full run: %.2f s@." n
    t_explain
    (float_of_int n /. Float.max 1e-9 t_explain)
    t_run;
  if not stable then Format.printf "ERROR: clustering depends on stream order@.";
  if not bounded then Format.printf "ERROR: more clusters than findings@.";
  if not named then
    Format.printf "ERROR: no cluster carries a bisected mechanism@.";
  let json_path =
    Option.value (Sys.getenv_opt "AMULET_BENCH_JSON") ~default:"BENCH_triage.json"
  in
  let oc = open_out json_path in
  output_string oc (Triage.report_to_json report);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." json_path;
  if not (stable && bounded && named && clusters <> []) then exit 1

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  match Sys.getenv_opt "AMULET_BENCH_ONLY" with
  | Some "throughput" -> throughput ()
  | Some "sweep" -> sweep_bench ()
  | Some "static" -> static_bench ()
  | Some "guided" -> guided_bench ()
  | Some "triage" -> triage_bench ()
  | Some s ->
      Format.eprintf
        "unknown AMULET_BENCH_ONLY section %S (try: throughput, sweep, \
         static, guided, triage)@."
        s;
      exit 2
  | None ->
      Format.printf "%s@.AMuLeT evaluation harness%s@.%s@." hline
        (if full then " (AMULET_BENCH_FULL)" else " (scaled budgets)")
        hline;
      table1 ();
      microbench ();
      table2 ();
      table3 ();
      table4 ();
      table5 ();
      table6 ();
      table8 ();
      figures ();
      table11 ();
      throughput ();
      sweep_bench ();
      static_bench ();
      guided_bench ();
      triage_bench ();
      extension_ghostminion ();
      extension_prefetcher ();
      extension_parallel ();
      extension_robustness ();
      Format.printf "@.%s@.done.@." hline
