(* Distributed campaign service tests: wire-protocol roundtrips and damage
   rejection, torn-journal recovery, the coordinator/worker loop producing
   the byte-identical fingerprint of the in-process scheduler (N=1 and N=4
   workers, chaos-killed workers included), heartbeat-expiry reassignment,
   protocol-version refusal, and the worker's bounded connect backoff. *)

open Amulet
open Amulet_defenses

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Protocol: roundtrips                                                *)
(* ------------------------------------------------------------------ *)

(* One framed message's raw bytes, via a pipe. *)
let frame_bytes msg =
  let r, w = Unix.pipe () in
  Proto.write_msg w msg;
  Unix.close w;
  let buf = Buffer.create 256 in
  let b = Bytes.create 4096 in
  let rec go () =
    let k = Unix.read r b 0 4096 in
    if k > 0 then begin
      Buffer.add_subbytes buf b 0 k;
      go ()
    end
  in
  go ();
  Unix.close r;
  Buffer.contents buf

let decode_bytes s =
  let d = Proto.Decoder.create () in
  Proto.Decoder.feed d (Bytes.of_string s) (String.length s);
  match Proto.Decoder.next d with
  | `Msg m -> m
  | `Awaiting -> Alcotest.fail "decoder still awaiting on a complete frame"
  | `Error e -> Alcotest.failf "decoder error: %s" e

let sample_spec () =
  Run_spec.make ~defense:Defense.invisispec
    ~contract:
      (Option.get (Amulet_contracts.Contract.find "CT-SEQ"))
    ~rounds:7 ~seed:1234 ~inputs:5 ~boosts:3 ~boot_insts:300
    ~chaos:(Fault.injector ~p_crash:0.25 ~p_kill_worker:0.5 ~seed:77 ())
    ~sim_config:(Defense.config ~l1d_ways:2 ~mshrs:4 Defense.invisispec)
    ()

let sample_msgs () =
  [
    Proto.Hello { worker = "w-1"; pid = 4242 };
    Proto.Hello_ok { coordinator = "coord"; heartbeat_s = 0.25 };
    Proto.Lease
      {
        Proto.lease_id = 3;
        job_id = 1;
        shard = 0;
        journal_path = Some "/tmp/shard_001.json";
        checkpoint_every = 2;
        spec = sample_spec ();
      };
    Proto.Lease
      {
        Proto.lease_id = 4;
        job_id = 2;
        shard = 1;
        journal_path = None;
        checkpoint_every = 1;
        spec = Run_spec.make ~defense:Defense.baseline ();
      };
    (* v3: the full generation strategy crosses the wire, including corpus
       params and multi-line planted seeds *)
    Proto.Lease
      {
        Proto.lease_id = 5;
        job_id = 3;
        shard = 0;
        journal_path = None;
        checkpoint_every = 4;
        spec =
          Run_spec.make ~defense:Defense.stt
            ~generation:
              (Run_spec.guided
                 ~base:{ Generator.default with unaligned_fraction = 0.5 }
                 ~corpus:
                   {
                     Amulet_corpus.Corpus.capacity = 16;
                     max_age = 12;
                     mutate_fraction = 0.9;
                     energy = 3;
                     seed_programs =
                       [ "ld r1, [r2]\nand r2, r2, 4095\nst [r2], r1" ];
                   }
                 ())
            ();
      };
    Proto.Heartbeat { lease_id = 3; rounds_done = 5 };
    Proto.Result
      {
        Proto.lease_id = 3;
        job_id = 1;
        contract_name = "CT-SEQ";
        rounds_done = 7;
        discarded = 1;
        test_cases = 105;
        quarantined = 1;
        duration_s = 1.5;
        budget_exhausted = false;
        fault_counts = [ (Fault.C_worker_lost, 2); (Fault.C_protocol, 1) ];
        detection_times = [ 0.25; 1.0 ];
        violations =
          [
            {
              Sweep.Ident.ctrace_hash = 0xdeadbeefL;
              hash_a = -1L;
              hash_b = 42L;
              (* separators and control bytes must survive the wire *)
              program_text = "ld r1, [r2]\n|weird\tbytes|";
              signature = "Spectre v1 (install-visible)";
            };
          ];
      };
    Proto.Quarantine_shard { lease_id = 4; job_id = 2; reason = "poisoned" };
    Proto.Shutdown { reason = "sweep complete" };
  ]

(* Encoding is deterministic, so decode-then-re-encode reproducing the
   exact bytes proves the roundtrip lossless without comparing records
   (specs embed registry values we'd rather not compare structurally). *)
let test_proto_roundtrip () =
  List.iter
    (fun msg ->
      let bytes1 = frame_bytes msg in
      let decoded = decode_bytes bytes1 in
      let bytes2 = frame_bytes decoded in
      checkb "re-encoded frame is byte-identical" true (bytes1 = bytes2))
    (sample_msgs ())

let test_proto_incremental () =
  (* one byte at a time through the decoder: frames reassemble *)
  let msgs = sample_msgs () in
  let stream = String.concat "" (List.map frame_bytes msgs) in
  let d = Proto.Decoder.create () in
  let got = ref 0 in
  String.iter
    (fun c ->
      Proto.Decoder.feed d (Bytes.make 1 c) 1;
      match Proto.Decoder.next d with
      | `Msg _ -> incr got
      | `Awaiting -> ()
      | `Error e -> Alcotest.failf "decoder error: %s" e)
    stream;
  checki "all frames reassembled" (List.length msgs) !got

let test_proto_crc_rejected () =
  let raw = Bytes.of_string (frame_bytes (Proto.Hello { worker = "w"; pid = 1 })) in
  (* flip one payload byte (header is 6 bytes) *)
  Bytes.set raw 7 (Char.chr (Char.code (Bytes.get raw 7) lxor 0xff));
  let d = Proto.Decoder.create () in
  Proto.Decoder.feed d raw (Bytes.length raw);
  (match Proto.Decoder.next d with
  | `Error _ -> ()
  | `Msg _ -> Alcotest.fail "corrupt frame decoded"
  | `Awaiting -> Alcotest.fail "corrupt frame not rejected");
  (* and over a real fd, read_msg raises Protocol_error *)
  let r, w = Unix.pipe () in
  let n = Bytes.length raw in
  checki "corrupt frame written" n (Unix.write w raw 0 n);
  Unix.close w;
  (match Proto.read_msg r with
  | _ -> Alcotest.fail "read_msg accepted a corrupt frame"
  | exception Proto.Protocol_error _ -> ());
  Unix.close r

let test_proto_version_rejected () =
  let r, w = Unix.pipe () in
  Proto.write_frame ~version:99 w ~tag:1 "whatever";
  Unix.close w;
  (match Proto.read_msg r with
  | _ -> Alcotest.fail "read_msg accepted a mismatched version"
  | exception Proto.Protocol_error e ->
      checkb "error names the versions" true
        (let contains needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i =
             i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
           in
           go 0
         in
         contains "99" e && contains (string_of_int Proto.version) e));
  Unix.close r

let test_fault_class_roundtrip () =
  List.iter
    (fun c ->
      match Fault.class_of_name (Fault.class_name c) with
      | Some c' -> checkb (Fault.class_name c ^ " roundtrips") true (c = c')
      | None -> Alcotest.failf "class %s lost" (Fault.class_name c))
    Fault.all_classes;
  checkb "worker-lost class present" true
    (List.mem Fault.C_worker_lost Fault.all_classes);
  checkb "protocol class present" true
    (List.mem Fault.C_protocol Fault.all_classes)

(* ------------------------------------------------------------------ *)
(* Journal durability: torn checkpoints quarantine, never crash         *)
(* ------------------------------------------------------------------ *)

let small_spec ?(rounds = 2) ?(seed = 5) () =
  Run_spec.make ~defense:Defense.baseline ~rounds ~seed ~classify:false
    ~inputs:3 ~boosts:2 ~boot_insts:200 ()

let test_torn_journal_recovery () =
  let dir = temp_dir "amulet-service-torn" in
  let path = Filename.concat dir "shard.json" in
  ignore (Campaign.run ~journal_path:path ~checkpoint_every:1 (small_spec ()));
  (* intact journal resumes *)
  (match Journal.recover path with
  | Journal.Resumed j -> checki "rounds journaled" 2 j.Journal.programs_run
  | _ -> Alcotest.fail "intact journal did not resume");
  (* tear it: keep only the first half of the bytes (a crash mid-write on a
     filesystem that reorders data and rename) *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full / 2)));
  (match Journal.recover path with
  | Journal.Quarantined { corrupt_path; error } ->
      checkb "torn journal moved aside" true (Sys.file_exists corrupt_path);
      checkb "original path freed" false (Sys.file_exists path);
      checkb "error captured" true (error <> "")
  | Journal.Resumed _ -> Alcotest.fail "torn journal resumed"
  | Journal.Fresh -> Alcotest.fail "torn journal reported missing");
  (* a second recovery starts fresh *)
  (match Journal.recover path with
  | Journal.Fresh -> ()
  | _ -> Alcotest.fail "quarantined path should now be fresh");
  rm_rf dir

(* The fingerprint-critical resume property: a campaign interrupted after a
   checkpoint that already holds violations, then resumed by another
   process, must fingerprint byte-identically to the uninterrupted run.
   The validating context is not journaled, so this only holds if the
   detection-time identity hashes survive the round-trip (a raw SIGKILL can
   land mid-round, after violations were checkpointed — the reassigned
   shard then adopts exactly such a journal). *)
let test_resume_preserves_identity () =
  let dir = temp_dir "amulet-service-resume-id" in
  let path = Filename.concat dir "shard.json" in
  let spec rounds =
    Run_spec.make ~defense:Defense.baseline ~rounds ~seed:9 ~classify:false
      ~inputs:4 ~boosts:2 ~boot_insts:200 ()
  in
  let row (r : Campaign.result) =
    {
      Sweep.Ident.defense = r.Campaign.defense.Defense.name;
      contract = r.Campaign.contract_name;
      rounds = r.Campaign.programs_run;
      discarded = r.Campaign.discarded_programs;
      test_cases = r.Campaign.test_cases;
      violations = List.map Sweep.Ident.of_violation r.Campaign.violations;
    }
  in
  let full = Campaign.run (spec 3) in
  checkb "uninterrupted run finds violations" true
    (full.Campaign.violations <> []);
  (* run the first 2 rounds only — its final checkpoint is the journal a
     successor would adopt after a kill during round 3 *)
  ignore (Campaign.run ~journal_path:path ~checkpoint_every:1 (spec 2));
  let j =
    match Journal.recover path with
    | Journal.Resumed j -> j
    | _ -> Alcotest.fail "interrupted journal did not resume"
  in
  checkb "checkpoint being adopted already holds a violation" true
    (j.Journal.violations <> []);
  let resumed = Campaign.run ~resume:j (spec 3) in
  checki "resumed totals match" full.Campaign.test_cases
    resumed.Campaign.test_cases;
  checks "resumed fingerprint equals uninterrupted"
    (Sweep.Ident.fingerprint [ row full ])
    (Sweep.Ident.fingerprint [ row resumed ]);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Worker backoff                                                      *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let d0 = Worker.backoff_delay ~base_s:0.05 ~cap_s:2. ~attempt:0 ~u:0. in
  let d0' = Worker.backoff_delay ~base_s:0.05 ~cap_s:2. ~attempt:0 ~u:0.999 in
  checkb "attempt 0 lower jitter bound" true (abs_float (d0 -. 0.025) < 1e-9);
  checkb "attempt 0 upper jitter bound" true (d0' < 0.075);
  let d3 = Worker.backoff_delay ~base_s:0.05 ~cap_s:2. ~attempt:3 ~u:0.5 in
  checkb "exponential growth" true (d3 > d0);
  let dbig = Worker.backoff_delay ~base_s:0.05 ~cap_s:2. ~attempt:30 ~u:0.999 in
  checkb "cap bounds the delay" true (dbig < 3.0)

let test_backoff_gives_up () =
  let t0 = Unix.gettimeofday () in
  match
    Worker.run ~connect:"/nonexistent-dir/amulet.sock" ~retries:2
      ~backoff_s:0.005 ~seed:3 ()
  with
  | Worker.Gave_up { attempts } ->
      checki "bounded attempts" 3 attempts;
      checkb "gave up promptly" true (Unix.gettimeofday () -. t0 < 5.)
  | Worker.Finished -> Alcotest.fail "connected to a nonexistent socket?"
  | Worker.Coordinator_lost _ -> Alcotest.fail "wrong outcome for no socket"

(* ------------------------------------------------------------------ *)
(* Coordinator/worker integration                                      *)
(* ------------------------------------------------------------------ *)

let service_matrix ?(seed = 9) () =
  Sweep.jobs
    ~presets:[ Defense.baseline; Defense.speclfb ]
    ~shards_per_preset:2 ~rounds:2 ~seed
    ~make_spec:(fun d ->
      Run_spec.make ~defense:d ~classify:false ~inputs:3 ~boosts:2
        ~boot_insts:200 ())
    ()

let reference_fingerprint () = Sweep.fingerprint (Sweep.run (service_matrix ()))

(* Workers are real processes: a chaos kill is a process death, exactly
   what the coordinator must survive.  Children never return and never run
   the parent's at_exit. *)
let fork_worker ?chaos ~socket ~seed () =
  match Unix.fork () with
  | 0 ->
      let code =
        match
          Worker.run ~connect:socket
            ~name:(Printf.sprintf "w-%d" (Unix.getpid ()))
            ?chaos ~seed ()
        with
        | Worker.Finished -> 0
        | Worker.Coordinator_lost _ | Worker.Gave_up _ -> 2
        | exception _ -> 2
      in
      Unix._exit code
  | pid -> pid

let reap pids = List.iter (fun p -> ignore (Unix.waitpid [] p)) pids

let serve_with_workers ~tag ~nworkers ?chaos_first ?(lease_timeout_s = 10.) ()
    =
  let dir = temp_dir ("amulet-service-" ^ tag) in
  let socket = Filename.concat dir "c.sock" in
  let jdir = temp_dir ("amulet-service-" ^ tag ^ "-j") in
  let coord =
    Coordinator.create ~socket ~journal_dir:jdir ~checkpoint_every:1
      ~heartbeat_s:0.1 ~lease_timeout_s ()
  in
  let pids =
    List.init nworkers (fun i ->
        let chaos = if i = 0 then chaos_first else None in
        fork_worker ?chaos ~socket ~seed:(100 + i) ())
  in
  let report = Coordinator.serve coord (service_matrix ()) in
  reap pids;
  rm_rf jdir;
  rm_rf dir;
  report

let test_fingerprint_one_worker () =
  let report = serve_with_workers ~tag:"n1" ~nworkers:1 () in
  checki "no abandoned shards" 0 report.Coordinator.crashed;
  checks "fingerprint matches in-process sweep" (reference_fingerprint ())
    report.Coordinator.fingerprint

let test_fingerprint_four_workers () =
  let report = serve_with_workers ~tag:"n4" ~nworkers:4 () in
  checki "no abandoned shards" 0 report.Coordinator.crashed;
  checki "all workers joined" 4 report.Coordinator.workers_joined;
  checks "fingerprint matches in-process sweep" (reference_fingerprint ())
    report.Coordinator.fingerprint

let test_chaos_killed_worker_reassigned () =
  (* worker 0 dies (SIGKILL-equivalent) at its first round boundary; the
     clean worker adopts its journal and the matrix still completes with
     the reference fingerprint *)
  let chaos = Fault.injector ~p_kill_worker:1.0 ~seed:21 () in
  let report =
    serve_with_workers ~tag:"chaos" ~nworkers:2 ~chaos_first:chaos
      ~lease_timeout_s:5. ()
  in
  checki "matrix completed despite the kill" 0 report.Coordinator.crashed;
  checkb "the death was seen" true (report.Coordinator.worker_lost >= 1);
  checkb "its shard was reassigned" true (report.Coordinator.reassignments >= 1);
  checkb "worker-lost fault recorded" true
    (List.mem_assoc Fault.C_worker_lost report.Coordinator.fault_counts);
  checks "fingerprint survives the crash" (reference_fingerprint ())
    report.Coordinator.fingerprint

(* Unix.fork is illegal once any domain has been spawned (OCaml 5), so the
   misbehaving clients run in forked children and the coordinator serves in
   the test process, exactly as in the fingerprint tests. *)

let test_heartbeat_expiry_reassigned () =
  (* a rogue client takes a lease and goes silent: the coordinator must
     expire it on the heartbeat deadline and hand the shard to a real
     worker that connects later *)
  let dir = temp_dir "amulet-service-rogue" in
  let socket = Filename.concat dir "c.sock" in
  let jdir = temp_dir "amulet-service-rogue-j" in
  let coord =
    Coordinator.create ~socket ~journal_dir:jdir ~checkpoint_every:1
      ~heartbeat_s:0.1 ~lease_timeout_s:0.5 ()
  in
  let rogue =
    match Unix.fork () with
    | 0 ->
        (try
           let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
           Unix.connect fd (Unix.ADDR_UNIX socket);
           Proto.write_msg fd (Proto.Hello { worker = "rogue"; pid = 0 });
           ignore (Proto.read_msg fd);
           (* Hello_ok *)
           ignore (Proto.read_msg fd);
           (* the lease — hold it silently, never heartbeat *)
           Unix.sleepf 10.
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  (* the real worker joins only after the rogue has had time to take the
     first lease and miss its deadline *)
  let worker =
    match Unix.fork () with
    | 0 ->
        Unix.sleepf 1.0;
        let code =
          match Worker.run ~connect:socket ~name:"real" ~seed:7 () with
          | Worker.Finished -> 0
          | _ -> 2
        in
        Unix._exit code
    | pid -> pid
  in
  let report = Coordinator.serve coord (service_matrix ()) in
  Unix.kill rogue Sys.sigkill;
  reap [ rogue; worker ];
  rm_rf jdir;
  rm_rf dir;
  checkb "silent lease expired" true (report.Coordinator.worker_lost >= 1);
  checkb "shard reassigned" true (report.Coordinator.reassignments >= 1);
  checki "matrix completed" 0 report.Coordinator.crashed;
  checks "fingerprint unaffected" (reference_fingerprint ())
    report.Coordinator.fingerprint

let test_version_mismatch_refused () =
  (* a client speaking protocol v99 is refused and counted; a real worker
     still completes the matrix *)
  let dir = temp_dir "amulet-service-ver" in
  let socket = Filename.concat dir "c.sock" in
  let coord = Coordinator.create ~socket ~heartbeat_s:0.1 () in
  let mismatched =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket);
            Proto.write_frame ~version:99 fd ~tag:1 "not-a-real-payload";
            match Proto.read_msg fd with
            | Proto.Shutdown _ -> 0 (* told why, then dropped *)
            | _ -> 3
            | exception Proto.Closed -> 0 (* dropped outright: also refused *)
          with _ -> 4
        in
        Unix._exit code
    | pid -> pid
  in
  let worker = fork_worker ~socket ~seed:7 () in
  let report = Coordinator.serve coord (service_matrix ()) in
  let _, rogue_status = Unix.waitpid [] mismatched in
  reap [ worker ];
  rm_rf dir;
  (match rogue_status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.failf "mismatched client saw the wrong end: %d" c
  | _ -> Alcotest.fail "mismatched client killed");
  checkb "protocol error counted" true (report.Coordinator.protocol_errors >= 1);
  checki "matrix completed anyway" 0 report.Coordinator.crashed

let test_serve_json_export () =
  let report = serve_with_workers ~tag:"json" ~nworkers:1 () in
  let json = Coordinator.to_json report in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "schema tagged" true (contains "\"amulet.serve/1\"");
  checkb "fingerprint embedded, CI-greppable" true
    (contains ("\"fingerprint\":\"" ^ report.Coordinator.fingerprint ^ "\""));
  checkb "shard detail present" true (contains "\"status\":\"done\"")

let () =
  Alcotest.run "service"
    [
      ( "proto",
        [
          Alcotest.test_case "roundtrip" `Quick test_proto_roundtrip;
          Alcotest.test_case "incremental decode" `Quick test_proto_incremental;
          Alcotest.test_case "crc rejected" `Quick test_proto_crc_rejected;
          Alcotest.test_case "version rejected" `Quick test_proto_version_rejected;
          Alcotest.test_case "fault classes" `Quick test_fault_class_roundtrip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "torn checkpoint" `Slow test_torn_journal_recovery;
          Alcotest.test_case "resume preserves identity" `Slow
            test_resume_preserves_identity;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "gives up" `Quick test_backoff_gives_up;
        ] );
      ( "service",
        [
          Alcotest.test_case "fingerprint, 1 worker" `Slow
            test_fingerprint_one_worker;
          Alcotest.test_case "fingerprint, 4 workers" `Slow
            test_fingerprint_four_workers;
          Alcotest.test_case "chaos-killed worker" `Slow
            test_chaos_killed_worker_reassigned;
          Alcotest.test_case "heartbeat expiry" `Slow
            test_heartbeat_expiry_reassigned;
          Alcotest.test_case "version refusal" `Slow test_version_mismatch_refused;
          Alcotest.test_case "json export" `Slow test_serve_json_export;
        ] );
    ]
