(* Unit tests for the telemetry registry: hot-path semantics, the noop
   registry, the monotonic-safe clock, and snapshot algebra
   (diff/merge/filter), including the JSON export. *)

module Obs = Amulet_obs.Obs

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Registry + metrics                                                  *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let r = Obs.create () in
  let c = Obs.counter r "a" in
  Obs.incr c;
  Obs.add c 4;
  checki "incr + add" 5 (Obs.value c);
  let c' = Obs.counter r "a" in
  Obs.incr c';
  checki "same name, same cell" 6 (Obs.value c)

let test_enable_toggle () =
  let r = Obs.create () in
  let c = Obs.counter r "a" in
  Obs.set_enabled r false;
  Obs.incr c;
  checki "disabled: no count" 0 (Obs.value c);
  Obs.set_enabled r true;
  Obs.incr c;
  checki "re-enabled: counts" 1 (Obs.value c)

let test_noop_registry () =
  let c = Obs.counter Obs.noop "a" in
  Obs.incr c;
  Obs.add c 100;
  checki "noop never records" 0 (Obs.value c);
  Obs.set_enabled Obs.noop true;
  Obs.incr c;
  checki "noop cannot be enabled" 0 (Obs.value c);
  checkb "noop reports disabled" false (Obs.is_enabled Obs.noop)

let test_gauges_timers_histograms () =
  let r = Obs.create () in
  let g = Obs.gauge r "g" in
  Obs.set_gauge g 2.5;
  checkf "gauge" 2.5 (Obs.gauge_value g);
  let tm = Obs.timer r "t" in
  Obs.record tm 0.5;
  Obs.record tm (-1.0);
  (* negative durations (clock stepped back) are clamped, not recorded *)
  let s = Obs.Snapshot.of_registry r in
  let tv = List.assoc "t" s.Obs.Snapshot.timers in
  checki "timer events" 2 tv.Obs.Snapshot.events;
  checkf "negative durations clamp to 0" 0.5 tv.Obs.Snapshot.total_s;
  let h = Obs.histogram r "h" in
  Obs.observe h 1e-6;
  Obs.observe h 1.0;
  let s = Obs.Snapshot.of_registry r in
  let hv = List.assoc "h" s.Obs.Snapshot.histograms in
  checki "histogram observations" 2 hv.Obs.Snapshot.observations;
  checkb "p50 <= p99" true
    (Obs.Snapshot.percentile hv 50. <= Obs.Snapshot.percentile hv 99.)

let test_clock_clamp () =
  let future = Obs.Clock.now_s () +. 3600. in
  checkf "elapsed since the future clamps to 0" 0.
    (Obs.Clock.elapsed_s ~since:future);
  checkf "elapsed_ms clamps too" 0. (Obs.Clock.elapsed_ms ~since:future);
  checkb "elapsed since the past is positive" true
    (Obs.Clock.elapsed_s ~since:(Obs.Clock.now_s () -. 1.) > 0.)

(* ------------------------------------------------------------------ *)
(* Snapshot algebra                                                    *)
(* ------------------------------------------------------------------ *)

let mk_snap pairs =
  let r = Obs.create () in
  List.iter (fun (n, v) -> Obs.add (Obs.counter r n) v) pairs;
  Obs.Snapshot.of_registry r

let test_snapshot_diff () =
  let older = mk_snap [ "a", 1; "b", 5 ] in
  let newer = mk_snap [ "a", 4; "b", 5; "c", 2 ] in
  let d = Obs.Snapshot.diff ~older ~newer in
  checki "changed counter" 3 (Obs.Snapshot.counter_value d "a");
  checki "unchanged counter" 0 (Obs.Snapshot.counter_value d "b");
  checki "new counter kept" 2 (Obs.Snapshot.counter_value d "c")

let test_snapshot_merge () =
  let a = mk_snap [ "a", 1; "b", 2 ] in
  let b = mk_snap [ "b", 3; "c", 4 ] in
  let m = Obs.Snapshot.merge a b in
  checki "merge sums" 5 (Obs.Snapshot.counter_value m "b");
  checki "merge keeps left-only" 1 (Obs.Snapshot.counter_value m "a");
  checki "merge keeps right-only" 4 (Obs.Snapshot.counter_value m "c")

let test_snapshot_filter_json () =
  let s = mk_snap [ "uarch.l1d.hits", 7; "engine.batches", 3 ] in
  let u = Obs.Snapshot.filter (fun n -> String.length n >= 6 && String.sub n 0 6 = "uarch.") s in
  checki "filter keeps matching" 7 (Obs.Snapshot.counter_value u "uarch.l1d.hits");
  checki "filter drops others" 0 (Obs.Snapshot.counter_value u "engine.batches");
  checki "filtered counter list" 1 (List.length u.Obs.Snapshot.counters);
  let json = Obs.Snapshot.to_json s in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "json has counter name" true (contains "\"uarch.l1d.hits\":7" json);
  checkb "json is an object" true
    (String.length json > 1 && json.[0] = '{' && json.[String.length json - 1] = '}')

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "enable toggle" `Quick test_enable_toggle;
          Alcotest.test_case "noop registry" `Quick test_noop_registry;
          Alcotest.test_case "gauges/timers/histograms" `Quick
            test_gauges_timers_histograms;
          Alcotest.test_case "clock clamp" `Quick test_clock_clamp;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "diff" `Quick test_snapshot_diff;
          Alcotest.test_case "merge" `Quick test_snapshot_merge;
          Alcotest.test_case "filter + json" `Quick test_snapshot_filter_json;
        ] );
    ]
