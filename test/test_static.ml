(* Tests for the static-analysis subsystem: CFG construction, the generic
   dataflow engine, taint/reaching/speculation passes, the well-formedness
   lint, the leak classifier — and its soundness gate: every curated
   released-bug reproducer must classify as potentially leaky, and a
   screening campaign must report exactly the violations an unfiltered one
   does. *)

open Amulet_isa
open Amulet_static
module Obs = Amulet_obs.Obs

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let flat_of_asm src = Program.flatten (Asm.parse src)

let flat_of_insts insts =
  { Program.code = Array.of_list insts; code_base = 0x400000; inst_size = 4 }

(* The canonical Spectre-v1 gadget (also the shape of the figure-4/8
   reproducers): bounds check, mispredicted branch, tainted transient load. *)
let spectre_v1 =
  {|
.bb0:
  AND RDI, 0b1111111000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b1111111000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  EXIT
|}

(* Masked loads, no branch, no store: provably leak-free. *)
let straightline_clean =
  {|
.bb0:
  AND RDI, 0b1111111000
  MOV RAX, qword ptr [R14 + RDI]
  AND RAX, 0b1111111000
  MOV RBX, qword ptr [R14 + RAX]
  EXIT
|}

(* ------------------------------------------------------------------ *)
(* CFG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cfg_blocks () =
  let flat = flat_of_asm spectre_v1 in
  let cfg = Cfg.build flat in
  (* blocks: [0..3) cond-branch block, [3..5) fallthrough, [5..6) exit *)
  checki "3 blocks" 3 (Cfg.num_blocks cfg);
  let b0 = Cfg.block cfg 0 in
  checki "b0 start" 0 b0.Cfg.start;
  checki "b0 stop" 3 b0.Cfg.stop;
  checkb "b0 -> b1 and b2" true (List.sort compare b0.Cfg.succs = [ 1; 2 ]);
  let b2 = Cfg.block cfg 2 in
  checkb "exit block has no succs" true (b2.Cfg.succs = []);
  checkb "dag" true (Cfg.is_dag cfg);
  checkb "all reachable" true (Cfg.unreachable cfg = []);
  checki "rpo covers all blocks" 3 (List.length cfg.Cfg.rpo);
  checki "rpo starts at entry" 0 (List.hd cfg.Cfg.rpo)

let test_cfg_cycle_and_dead_code () =
  (* backward branch: a cycle the CFG must represent without diverging *)
  let flat =
    flat_of_insts
      [ Inst.Nop; Inst.Jcc (Cond.Z, Inst.Abs 0); Inst.Exit; Inst.Nop; Inst.Exit ]
  in
  let cfg = Cfg.build flat in
  checkb "not a dag" false (Cfg.is_dag cfg);
  checkb "has dead blocks" true (Cfg.unreachable cfg <> [])

(* ------------------------------------------------------------------ *)
(* Dataflow engine (backward use: liveness)                            *)
(* ------------------------------------------------------------------ *)

module RegSet = Set.Make (struct
  type t = Reg.t

  let compare = Reg.compare
end)

module Live = Dataflow.Make (struct
  type t = RegSet.t

  let bottom = RegSet.empty
  let join = RegSet.union
  let equal = RegSet.equal
end)

let test_backward_liveness () =
  (* 0: MOV RAX, 1      rax dead here (rewritten at 1 before any use)
     1: MOV RAX, RBX    rbx live-in at 0..1
     2: MOV [R14], RAX  rax live-in at 2
     3: EXIT *)
  let flat =
    flat_of_insts
      [
        Inst.Mov (Width.W64, Operand.Reg Reg.RAX, Operand.Imm 1L);
        Inst.Mov (Width.W64, Operand.Reg Reg.RAX, Operand.Reg Reg.RBX);
        Inst.Mov (Width.W64, Operand.mem Reg.R14, Operand.Reg Reg.RAX);
        Inst.Exit;
      ]
  in
  let cfg = Cfg.build flat in
  let transfer _i inst live =
    let live = List.fold_left (fun s r -> RegSet.remove r s) live (Inst.dest_regs inst) in
    List.fold_left (fun s r -> RegSet.add r s) live (Inst.source_regs inst)
  in
  let r = Live.backward cfg ~init:RegSet.empty ~transfer in
  checkb "rax dead before 0" false (RegSet.mem Reg.RAX r.Live.before.(0));
  checkb "rbx live before 0" true (RegSet.mem Reg.RBX r.Live.before.(0));
  checkb "rax live before 2" true (RegSet.mem Reg.RAX r.Live.before.(2));
  checkb "rbx dead before 2" false (RegSet.mem Reg.RBX r.Live.before.(2))

let test_forward_fixpoint_on_cycle () =
  (* the engine must terminate on cyclic flow (lint rejects it, but the
     analysis itself stays total) *)
  let flat =
    flat_of_insts
      [ Inst.Unop (Inst.Inc, Width.W64, Operand.Reg Reg.RAX);
        Inst.Jcc (Cond.Z, Inst.Abs 0); Inst.Exit ]
  in
  let cfg = Cfg.build flat in
  let t = Taint_flow.analyze cfg in
  checkb "terminates; rax tainted" true (Taint_flow.value_before t 1 Reg.RAX).Taint_flow.tainted

(* ------------------------------------------------------------------ *)
(* Reaching definitions                                                *)
(* ------------------------------------------------------------------ *)

let test_reaching () =
  let flat =
    flat_of_insts
      [
        Inst.Setcc (Cond.Z, Operand.Reg Reg.RAX);  (* reads entry flags *)
        Inst.Cmp (Width.W64, Operand.Reg Reg.RBX, Operand.Imm 0L);
        Inst.Jcc (Cond.Z, Inst.Abs 4);  (* flags now defined by 1 *)
        Inst.Mov (Width.W64, Operand.Reg Reg.RBX, Operand.Imm 7L);
        Inst.Mov (Width.W64, Operand.Reg Reg.RCX, Operand.Reg Reg.RBX);
        Inst.Exit;
      ]
  in
  let r = Reaching.analyze (Cfg.build flat) in
  checkb "flags entry-only at 0" true (Reaching.flags_entry_only r 0);
  checkb "flags defined at 2" false (Reaching.flags_entry_only r 2);
  (* at 4, RBX may come from entry (branch taken) or from 3 (fallthrough) *)
  checkb "rbx entry def may reach 4" true (Reaching.may_read_entry r 4 Reg.RBX);
  checkb "rbx def 3 may reach 4" true
    (Reaching.IntSet.mem 3 (Reaching.reg_defs r 4 Reg.RBX))

(* ------------------------------------------------------------------ *)
(* Taint propagation                                                   *)
(* ------------------------------------------------------------------ *)

let test_taint_kills_and_bounds () =
  let flat =
    flat_of_insts
      [
        Inst.Mov (Width.W64, Operand.Reg Reg.RAX, Operand.Imm 5L);
        Inst.Binop (Inst.Xor, Width.W64, Operand.Reg Reg.RBX, Operand.Reg Reg.RBX);
        Inst.Binop (Inst.And, Width.W64, Operand.Reg Reg.RCX, Operand.Imm 4088L);
        Inst.Mov (Width.W64, Operand.Reg Reg.RDX, Operand.mem Reg.R14);
        Inst.Binop (Inst.Add, Width.W64, Operand.Reg Reg.RAX, Operand.Reg Reg.RDX);
        Inst.Exit;
      ]
  in
  let t = Taint_flow.analyze (Cfg.build flat) in
  let v i r = Taint_flow.value_before t i r in
  checkb "rax tainted at entry" true (v 0 Reg.RAX).Taint_flow.tainted;
  checkb "mov imm kills rax" false (v 1 Reg.RAX).Taint_flow.tainted;
  checkb "xor self kills rbx" false (v 2 Reg.RBX).Taint_flow.tainted;
  checkb "and keeps rcx tainted" true (v 3 Reg.RCX).Taint_flow.tainted;
  Alcotest.check (Alcotest.option Alcotest.int) "and bounds rcx" (Some 4088)
    (v 3 Reg.RCX).Taint_flow.max;
  checkb "loaded data tainted" true (v 4 Reg.RDX).Taint_flow.tainted;
  (* 4: ADD RAX, RDX re-taints RAX *)
  checkb "taint flows back into rax" true (v 5 Reg.RAX).Taint_flow.tainted

(* ------------------------------------------------------------------ *)
(* Speculation reachability                                            *)
(* ------------------------------------------------------------------ *)

let test_spec_window_and_fence () =
  let nops n = List.init n (fun _ -> Inst.Nop) in
  let flat =
    flat_of_insts
      ([ Inst.Jcc (Cond.Z, Inst.Abs 1) ] @ nops 6 @ [ Inst.Exit ])
  in
  let spec = Spec_reach.analyze ~window:4 (Cfg.build flat) in
  checkb "inside window" true spec.Spec_reach.transient.(4);
  checkb "beyond window" false spec.Spec_reach.transient.(6);
  (* a fence drains the window *)
  let flat =
    flat_of_insts
      ([ Inst.Jcc (Cond.Z, Inst.Abs 1); Inst.Nop; Inst.Fence ] @ nops 3
      @ [ Inst.Exit ])
  in
  let spec = Spec_reach.analyze ~window:16 (Cfg.build flat) in
  checkb "fence itself reached" true spec.Spec_reach.transient.(2);
  checkb "nothing past fence" false spec.Spec_reach.transient.(3)

let test_bypass_exposure () =
  let flat =
    flat_of_insts
      [
        Inst.Mov (Width.W64, Operand.mem Reg.R14, Operand.Imm 0L);
        Inst.Mov (Width.W64, Operand.Reg Reg.RAX, Operand.mem Reg.R14);
        Inst.Fence;
        Inst.Mov (Width.W64, Operand.Reg Reg.RBX, Operand.mem Reg.R14);
        Inst.Exit;
      ]
  in
  let spec = Spec_reach.analyze ~window:16 (Cfg.build flat) in
  checkb "load after store exposed" true spec.Spec_reach.bypass_exposed.(1);
  checkb "load after fence not exposed" false spec.Spec_reach.bypass_exposed.(3);
  checkb "store itself not a bypass site" false spec.Spec_reach.bypass_exposed.(0)

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let has_code report code =
  List.exists (fun d -> d.Lint.code = code) report.Lint.diags

let test_lint_named_errors () =
  let report flat = Lint.check flat in
  let r =
    report (flat_of_insts [ Inst.Jcc (Cond.Z, Inst.Abs 99); Inst.Exit ])
  in
  checkb "branch-out-of-range" true (has_code r "branch-out-of-range");
  let r =
    report (flat_of_insts [ Inst.Nop; Inst.Jmp (Inst.Abs 0); Inst.Exit ])
  in
  checkb "non-dag" true (has_code r "non-dag-control-flow");
  let r = report (flat_of_insts [ Inst.Jmp (Inst.Label "x"); Inst.Exit ]) in
  checkb "unresolved-label" true (has_code r "unresolved-label");
  let bad_scale =
    Inst.Mov
      ( Width.W64,
        Operand.Reg Reg.RAX,
        Operand.Mem { Operand.base = Reg.R14; index = Some Reg.RBX; scale = 3; disp = 0 } )
  in
  let r = report (flat_of_insts [ bad_scale; Inst.Exit ]) in
  checkb "invalid-scale" true (has_code r "invalid-scale");
  let r =
    report
      (flat_of_insts
         [ Inst.Mov (Width.W64, Operand.Reg Reg.R14, Operand.Imm 0L); Inst.Exit ])
  in
  checkb "sandbox-base-overwrite" true (has_code r "sandbox-base-overwrite");
  let r =
    report
      (flat_of_insts
         [ Inst.Mov (Width.W64, Operand.Mem { Operand.base = Reg.R14; index = None; scale = 1; disp = 0 },
                     Operand.Mem { Operand.base = Reg.R14; index = None; scale = 1; disp = 8 });
           Inst.Exit ])
  in
  checkb "two-memory-operands" true (has_code r "two-memory-operands");
  let r =
    report
      (flat_of_insts
         [ Inst.Shift (Inst.Shl, Width.W64, Operand.Reg Reg.RAX, 300); Inst.Exit ])
  in
  checkb "shift-count-unencodable" true (has_code r "shift-count-unencodable");
  checkb "errors gate" false (Lint.ok r)

let test_lint_warnings () =
  (* unmasked tainted index: executable (emulator wraps) but suspicious *)
  let r =
    Lint.check
      (flat_of_insts
         [ Inst.Mov (Width.W64, Operand.Reg Reg.RAX,
                     Operand.mem ~index:(Some Reg.RBX) Reg.R14);
           Inst.Exit ])
  in
  checkb "unmasked-address is warning" true (has_code r "unmasked-address");
  checkb "warnings do not gate" true (Lint.ok r);
  (* mask larger than the sandbox *)
  let r =
    Lint.check ~sandbox_bytes:4096
      (flat_of_insts
         [ Inst.Binop (Inst.And, Width.W64, Operand.Reg Reg.RBX, Operand.Imm 8191L);
           Inst.Mov (Width.W64, Operand.Reg Reg.RAX,
                     Operand.mem ~index:(Some Reg.RBX) Reg.R14);
           Inst.Exit ])
  in
  checkb "sandbox-overflow" true (has_code r "sandbox-overflow");
  (* flags read with no prior writer *)
  let r =
    Lint.check (flat_of_insts [ Inst.Setcc (Cond.Z, Operand.Reg Reg.RAX); Inst.Exit ])
  in
  checkb "constant-predicate" true (has_code r "constant-predicate");
  (* well-masked access is silent *)
  let r = Lint.check (flat_of_asm straightline_clean) in
  checki "clean program: no errors" 0 r.Lint.errors;
  checkb "clean program: no containment warning" false
    (has_code r "sandbox-overflow" || has_code r "unmasked-address")

(* ------------------------------------------------------------------ *)
(* Leak classification                                                 *)
(* ------------------------------------------------------------------ *)

let test_leakcheck_spectre_v1 () =
  let t = Leakcheck.analyze (flat_of_asm spectre_v1) in
  checkb "leaky" true t.Leakcheck.leaky;
  checkb "has a transient transmitter" true
    (List.exists (fun s -> s.Leakcheck.transient) t.Leakcheck.transmitters);
  checkb "score positive" true (Leakcheck.score t > 0);
  checki "one speculation window" 1 (List.length t.Leakcheck.windows)

let test_leakcheck_clean () =
  let t = Leakcheck.analyze (flat_of_asm straightline_clean) in
  checkb "leak-free" false t.Leakcheck.leaky;
  checki "no transmitters" 0 (List.length t.Leakcheck.transmitters);
  (* the tainted-address loads are architectural, reported as flows *)
  checkb "arch flows reported" true (t.Leakcheck.arch_flows <> [])

let test_leakcheck_fence_kills_leak () =
  (* same gadget as spectre_v1 but fenced after the branch: the transient
     load can no longer execute speculatively *)
  let fenced =
    {|
.bb0:
  AND RDI, 0b1111111000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  LFENCE
  AND RBX, 0b1111111000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  EXIT
|}
  in
  let t = Leakcheck.analyze (flat_of_asm fenced) in
  checkb "fenced gadget leak-free" false t.Leakcheck.leaky

let test_leakcheck_spectre_v4 () =
  (* branch-free: leaks only via store-bypass; the bypass rule must flag it *)
  let v4 =
    {|
.bb0:
  AND RDI, 0b1111111000
  MOV RSI, qword ptr [R14 + RDI]
  AND RSI, 0b1111111000
  MOV qword ptr [R14 + RSI], 0
  MOV RBX, qword ptr [R14 + 128]
  AND RBX, 0b1111111000
  MOV RCX, qword ptr [R14 + RBX]
  EXIT
|}
  in
  let t = Leakcheck.analyze (flat_of_asm v4) in
  checkb "v4 leaky" true t.Leakcheck.leaky;
  checkb "via bypass, not a branch window" true
    (List.exists
       (fun s -> s.Leakcheck.bypass && not s.Leakcheck.transient)
       t.Leakcheck.transmitters)

(* ------------------------------------------------------------------ *)
(* Soundness gate: reproducers must never screen out                   *)
(* ------------------------------------------------------------------ *)

let test_soundness_gate () =
  List.iter
    (fun (r : Amulet.Reproducers.t) ->
      let flat = Amulet.Reproducers.flat r in
      let sandbox_bytes =
        r.Amulet.Reproducers.defense.Amulet_defenses.Defense.sandbox_pages * 4096
      in
      let t = Leakcheck.analyze ~sandbox_bytes flat in
      checkb
        (Printf.sprintf "%s classified potentially leaky" r.Amulet.Reproducers.name)
        true t.Leakcheck.leaky;
      checki
        (Printf.sprintf "%s lint errors" r.Amulet.Reproducers.name)
        0 t.Leakcheck.lint.Lint.errors)
    Amulet.Reproducers.all

(* ------------------------------------------------------------------ *)
(* Generator property: 1k seeds, zero lint errors                      *)
(* ------------------------------------------------------------------ *)

let generator_lint_prop =
  QCheck2.Test.make ~name:"generated programs pass the lint (no errors)"
    ~count:1000
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Amulet.Rng.create ~seed in
      let flat = Amulet.Generator.generate_flat rng in
      let report =
        Lint.check ~sandbox_bytes:(Amulet.Generator.default.Amulet.Generator.sandbox_pages * 4096) flat
      in
      if not (Lint.ok report) then
        QCheck2.Test.fail_reportf "seed %d:@.%a@.%a" seed Program.pp_flat flat
          Lint.pp report
      else true)

let test_generate_lint_free () =
  let rng = Amulet.Rng.create ~seed:7 in
  for _ = 1 to 20 do
    let flat = Amulet.Generator.generate_lint_free rng in
    checki "lint-free" 0 (Lint.check flat).Lint.errors
  done

(* ------------------------------------------------------------------ *)
(* Screen-vs-off equivalence: the filter must lose no violation        *)
(* ------------------------------------------------------------------ *)

let violation_idents (r : Amulet.Campaign.result) =
  List.sort compare
    (List.map
       (fun (v : Amulet.Violation.t) ->
         Printf.sprintf "%Lx/%Lx/%Lx %s" v.Amulet.Violation.ctrace_hash
           v.Amulet.Violation.trace_a_hash v.Amulet.Violation.trace_b_hash
           v.Amulet.Violation.program_text)
       r.Amulet.Campaign.violations)

let test_screen_equivalence () =
  (* a fence-rich population where some programs are provably leak-free:
     the case screening exists for.  (Under the default config virtually
     every generated program carries a speculative gadget — screening there
     is a no-op by design, not a bug.) *)
  let gen =
    {
      Amulet.Generator.default with
      Amulet.Generator.blocks = 3;
      fence_fraction = 0.25;
      mem_fraction = 0.25;
    }
  in
  let spec filter =
    Amulet.Run_spec.make ~defense:Amulet_defenses.Defense.baseline ~rounds:50
      ~seed:2024 ~classify:false ~inputs:8 ~boosts:4 ~boot_insts:200
      ~generator:gen ~static_filter:filter ()
  in
  let m_off = Obs.create () and m_screen = Obs.create () in
  let off = Amulet.Campaign.run ~metrics:m_off (spec Amulet.Run_spec.Off) in
  let screen =
    Amulet.Campaign.run ~metrics:m_screen (spec Amulet.Run_spec.Screen)
  in
  checkb "found at least one violation" true
    (off.Amulet.Campaign.violations <> []);
  Alcotest.(check (list string))
    "identical violation sets" (violation_idents off) (violation_idents screen);
  let screened =
    Obs.Snapshot.counter_value screen.Amulet.Campaign.metrics "static.screened"
  in
  checkb "screened some rounds" true (screened > 0);
  checkb "screening simulated fewer inputs" true
    (screen.Amulet.Campaign.test_cases < off.Amulet.Campaign.test_cases)

let () =
  Alcotest.run "static"
    [
      ( "cfg",
        [
          Alcotest.test_case "blocks and successors" `Quick test_cfg_blocks;
          Alcotest.test_case "cycles and dead code" `Quick test_cfg_cycle_and_dead_code;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "backward liveness" `Quick test_backward_liveness;
          Alcotest.test_case "fixpoint on cycle" `Quick test_forward_fixpoint_on_cycle;
        ] );
      ( "passes",
        [
          Alcotest.test_case "reaching definitions" `Quick test_reaching;
          Alcotest.test_case "taint kills and bounds" `Quick test_taint_kills_and_bounds;
          Alcotest.test_case "speculation window and fence" `Quick test_spec_window_and_fence;
          Alcotest.test_case "store-bypass exposure" `Quick test_bypass_exposure;
        ] );
      ( "lint",
        [
          Alcotest.test_case "named errors" `Quick test_lint_named_errors;
          Alcotest.test_case "warnings" `Quick test_lint_warnings;
        ] );
      ( "leakcheck",
        [
          Alcotest.test_case "spectre v1 gadget" `Quick test_leakcheck_spectre_v1;
          Alcotest.test_case "clean straight-line" `Quick test_leakcheck_clean;
          Alcotest.test_case "fence kills the leak" `Quick test_leakcheck_fence_kills_leak;
          Alcotest.test_case "spectre v4 (bypass)" `Quick test_leakcheck_spectre_v4;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "reproducers never screen out" `Quick test_soundness_gate;
        ] );
      ( "generator",
        [
          QCheck_alcotest.to_alcotest generator_lint_prop;
          Alcotest.test_case "generate_lint_free" `Quick test_generate_lint_free;
        ] );
      ( "filter",
        [
          Alcotest.test_case "screen equals off" `Slow test_screen_equivalence;
        ] );
    ]
