(* Coverage-guided generation tests: mutation-engine validity (every
   mutant passes the well-formedness lint), corpus admission / eviction /
   aging, the warm-up and finder-dominated power schedule, checkpoint
   serialization round-trips, guided-campaign determinism (same seed →
   byte-identical corpus and violation identities across engine kinds and
   domain counts, and across kill/resume cycles), and the planted-seed
   smoke test: guided fuzzing amplifies a known released-artifact bug
   (figure 9 under STT) inside a budget where blind-random finds nothing. *)

open Amulet
open Amulet_isa
open Amulet_defenses
module C = Amulet_corpus.Corpus
module Cov = Amulet_corpus.Coverage
module Mut = Amulet_corpus.Mutate

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let sandbox_bytes = Amulet_emu.Memory.page_size

(* ------------------------------------------------------------------ *)
(* Assembly round-trip (the corpus dedup key and checkpoint format)     *)
(* ------------------------------------------------------------------ *)

let test_flat_roundtrip () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    let flat = Generator.generate_flat rng in
    let text = Asm.print_flat flat in
    let back = Asm.parse_flat text in
    checks "print/parse/print is stable" text (Asm.print_flat back)
  done

(* ------------------------------------------------------------------ *)
(* Mutation engine                                                     *)
(* ------------------------------------------------------------------ *)

(* Property: across 1k parents, every produced mutant lints clean and
   differs from its parent.  Mutants that would break the sandbox-mask or
   forward-DAG invariants must be rejected inside [mutate], not surface. *)
let test_mutants_lint_valid () =
  let rng = Rng.create ~seed:42 in
  let cfg = Generator.default in
  let produced = ref 0 in
  for _ = 1 to 1000 do
    let flat = Generator.generate_flat ~cfg rng in
    match Mut.mutate ~cfg ~energy:4 rng flat with
    | None -> ()
    | Some (mutant, ops) ->
        incr produced;
        checkb "operator list is non-empty" true (ops <> []);
        checkb "mutant differs from parent" false
          (String.equal (Asm.print_flat mutant) (Asm.print_flat flat));
        let report = Amulet_static.Lint.check ~sandbox_bytes mutant in
        if not (Amulet_static.Lint.ok report) then
          Alcotest.failf "mutant fails lint (ops %s):@.%s"
            (String.concat "," (List.map Mut.op_name ops))
            (Format.asprintf "%a" Amulet_static.Lint.pp report)
  done;
  checkb "mutation applies to most parents" true (!produced > 700)

(* ------------------------------------------------------------------ *)
(* Corpus bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let fresh_flat rng = Generator.generate_flat rng

let test_admission_eviction_aging () =
  let params =
    { C.default_params with C.capacity = 2; max_age = 3; mutate_fraction = 1.0 }
  in
  let c = C.create ~params ~sandbox_bytes () in
  let rng = Rng.create ~seed:1 in
  checkb "empty corpus schedules fresh" true (C.next c rng = C.Fresh);
  let p1 = fresh_flat rng and p2 = fresh_flat rng and p3 = fresh_flat rng in
  C.record c ~program:p1 ~novel:1 ~violation:false ~bonus:0 ();
  C.record c ~program:p2 ~novel:5 ~violation:false ~bonus:0 ();
  checki "novel programs admitted" 2 (C.size c);
  C.record c ~program:p2 ~novel:7 ~violation:false ~bonus:0 ();
  checki "duplicate text not re-admitted" 2 (C.size c);
  C.record c ~program:p3 ~novel:0 ~violation:false ~bonus:0 ();
  checki "nothing-novel not admitted" 2 (C.size c);
  C.record c ~program:p3 ~novel:0 ~violation:true ~bonus:0 ();
  checki "violation admitted, capacity held" 2 (C.size c);
  checki "lowest score evicted" 1 (C.evictions c);
  checkb "survivors are the higher scores" true
    (List.for_all (fun e -> e.C.score > 1) (C.entries c));
  (* aging: rounds without novelty retire entries past max_age *)
  for _ = 1 to 4 do
    C.tick c
  done;
  checki "stale entries retired" 0 (C.size c);
  checki "retirements counted as evictions" 3 (C.evictions c)

let test_parent_reward () =
  let c = C.create ~sandbox_bytes () in
  let rng = Rng.create ~seed:2 in
  let parent_prog = fresh_flat rng in
  C.record c ~program:parent_prog ~novel:3 ~violation:false ~bonus:0 ();
  let parent = List.hd (C.entries c) in
  C.tick c;
  checki "ticks age entries" 1 parent.C.age;
  C.record c ~parent ~program:(fresh_flat rng) ~novel:2 ~violation:true ~bonus:0
    ();
  checki "parent rejuvenated" 0 parent.C.age;
  checkb "parent rewarded for a violating child" true (parent.C.score > 3 + 2)

let test_seed_parsing () =
  let rng = Rng.create ~seed:3 in
  let flat_text = Asm.print_flat (fresh_flat rng) in
  let labelled = Reproducers.figure9.Reproducers.asm in
  let params =
    {
      C.default_params with
      C.seed_programs = [ flat_text; labelled; "definitely not asm (" ];
    }
  in
  (* figure 9 masks offsets beyond one page: give it STT's sandbox *)
  let sandbox_bytes =
    Defense.stt.Defense.sandbox_pages * Amulet_emu.Memory.page_size
  in
  let c = C.create ~params ~sandbox_bytes () in
  checki "flat and labelled syntax both planted" 2 (C.size c);
  checki "unparseable seed counted, not fatal" 1 (C.rejected_seeds c)

(* ------------------------------------------------------------------ *)
(* Power schedule                                                      *)
(* ------------------------------------------------------------------ *)

let test_schedule_warmup_and_finders () =
  let params = { C.default_params with C.mutate_fraction = 1.0 } in
  let c = C.create ~params ~sandbox_bytes () in
  let rng = Rng.create ~seed:4 in
  let weak = fresh_flat rng and strong = fresh_flat rng in
  C.record c ~program:weak ~novel:1 ~violation:false ~bonus:0 ();
  (* warm-up: novelty-only corpus spends just a quarter of the mutate
     fraction on mutation — coverage novelty alone predicts violations
     poorly, so exploration stays fresh-draw-heavy *)
  let mutates = ref 0 in
  for _ = 1 to 200 do
    match C.next c rng with C.Mutate _ -> incr mutates | C.Fresh -> ()
  done;
  checkb "warm-up is mostly fresh draws" true (!mutates < 100);
  (* once a finder exists the full fraction exploits, and the quadratic
     weight makes the finder dominate the novelty-only entry *)
  C.record c ~program:strong ~novel:0 ~violation:true ~bonus:0 ();
  let strong_text = Asm.print_flat strong in
  let total = ref 0 and strong_picks = ref 0 in
  for _ = 1 to 200 do
    match C.next c rng with
    | C.Fresh -> ()
    | C.Mutate e ->
        incr total;
        if String.equal e.C.text strong_text then incr strong_picks
  done;
  checki "full mutate fraction after a finder" 200 !total;
  checkb "finder dominates the schedule" true (!strong_picks * 10 >= !total * 9)

(* ------------------------------------------------------------------ *)
(* Checkpoint serialization                                            *)
(* ------------------------------------------------------------------ *)

let test_serialization_roundtrip () =
  let rng = Rng.create ~seed:6 in
  let params =
    { C.default_params with C.capacity = 8; seed_programs = [] }
  in
  let c = C.create ~params ~sandbox_bytes () in
  for i = 1 to 5 do
    let fb =
      {
        Cov.shape_hash = Int64.of_int (i * 7919);
        ctrace_classes = i;
        spec_steps = i * 11;
        cycles = i * 100;
        committed_insts = 50 + i;
        squashes = i;
        squashed_insts = i * 3;
        spec_issued = i * 2;
        mispredicts = i;
      }
    in
    ignore (C.observe c fb);
    C.record c ~program:(fresh_flat rng) ~novel:i ~violation:(i mod 2 = 0)
      ~bonus:i ()
  done;
  C.tick c;
  let s = C.to_string c in
  let c2 = C.of_string s in
  checks "checkpoint round-trips byte-identically" s (C.to_string c2);
  checki "entries preserved" (C.size c) (C.size c2);
  checki "round preserved" (C.round c) (C.round c2);
  checki "coverage features preserved" (Cov.size (C.coverage c))
    (Cov.size (C.coverage c2));
  checki "coverage observations preserved"
    (Cov.observations (C.coverage c))
    (Cov.observations (C.coverage c2));
  checkb "garbage is rejected with Failure" true
    (match C.of_string "not a corpus checkpoint" with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Guided campaigns: determinism                                       *)
(* ------------------------------------------------------------------ *)

let guided_spec ?(engine = Engine.Pooled) ?(rounds = 8) defense =
  let corpus =
    { C.default_params with C.mutate_fraction = 0.8; energy = 2 }
  in
  Run_spec.make ~defense ~engine ~rounds ~seed:7 ~classify:false ~inputs:4
    ~boosts:2 ~boot_insts:200
    ~generation:(Run_spec.guided ~corpus ())
    ()

let ident (v : Violation.t) =
  Printf.sprintf "%Lx/%Lx/%Lx %s" v.Violation.ctrace_hash
    v.Violation.trace_a_hash v.Violation.trace_b_hash v.Violation.program_text

let idents (r : Campaign.result) =
  List.sort compare (List.map ident r.Campaign.violations)

let test_guided_deterministic () =
  let r1 = Campaign.run (guided_spec Defense.invisispec) in
  let r2 = Campaign.run (guided_spec Defense.invisispec) in
  checkb "guided campaigns run a corpus" true (r1.Campaign.corpus <> None);
  checkb "same seed, same corpus checkpoint" true
    (r1.Campaign.corpus = r2.Campaign.corpus);
  checkb "same seed, same violation identities" true (idents r1 = idents r2);
  (* coverage feedback comes from per-run pipeline counters, so the
     engine kind cannot perturb corpus evolution *)
  let r3 = Campaign.run (guided_spec ~engine:Engine.Naive Defense.invisispec) in
  checkb "corpus invariant under engine kind" true
    (r1.Campaign.corpus = r3.Campaign.corpus);
  checkb "violations invariant under engine kind" true (idents r1 = idents r3)

let test_guided_sweep_domain_invariant () =
  let js () =
    Sweep.jobs
      ~presets:[ Defense.invisispec; Defense.speclfb ]
      ~shards_per_preset:2 ~rounds:5 ~seed:11
      ~make_spec:(fun d -> guided_spec d)
      ()
  in
  let fp n = Sweep.fingerprint (Sweep.run ~domains:n (js ())) in
  checks "guided sweep fingerprint invariant under domains" (fp 1) (fp 3)

let test_guided_resume_equivalence () =
  let path = Filename.temp_file "amulet_corpus_resume" ".journal" in
  let full = Campaign.run (guided_spec ~rounds:10 Defense.invisispec) in
  let half =
    Campaign.run ~journal_path:path (guided_spec ~rounds:5 Defense.invisispec)
  in
  let j = Journal.load path in
  checkb "journal carries the corpus checkpoint" true (j.Journal.corpus <> None);
  checkb "journal corpus equals the campaign's" true
    (j.Journal.corpus = half.Campaign.corpus);
  (match j.Journal.corpus with
  | Some s -> ignore (C.of_string s)  (* embedded checkpoint parses back *)
  | None -> ());
  let resumed =
    Campaign.run ~journal_path:path ~resume:j
      (guided_spec ~rounds:10 Defense.invisispec)
  in
  checkb "kill/resume reproduces the uninterrupted violations" true
    (idents full = idents resumed);
  checkb "kill/resume reproduces the uninterrupted corpus" true
    (full.Campaign.corpus = resumed.Campaign.corpus);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Planted-seed smoke: guided beats random on a released bug           *)
(* ------------------------------------------------------------------ *)

(* Plant the figure-9 gadget (STT as released: tainted store fills the
   D-TLB) as a corpus seed.  The seed itself is never executed — only its
   mutants are — so this checks the whole loop: parse, schedule,
   mutate, and detect.  Random generation gets the same budget and finds
   nothing; both runs are fully deterministic, so this is not a
   flakiness-prone statistical assertion. *)
let test_guided_finds_planted_bug () =
  let corpus =
    {
      C.default_params with
      C.mutate_fraction = 1.0;
      energy = 1;
      seed_programs = [ Reproducers.figure9.Reproducers.asm ];
    }
  in
  let spec generation =
    Run_spec.make ~defense:Defense.stt ~rounds:4 ~seed:7 ~classify:false
      ~inputs:10 ~boosts:6 ~boot_insts:500 ~generation ()
  in
  let guided = Campaign.run (spec (Run_spec.guided ~corpus ())) in
  let random = Campaign.run (spec (Run_spec.random ())) in
  (match guided.Campaign.corpus with
  | None -> Alcotest.fail "guided campaign lost its corpus"
  | Some s ->
      let c = C.of_string s in
      checki "planted seed admitted" 0 (C.rejected_seeds c);
      checkb "corpus retained seeds" true (C.size c >= 1));
  checkb "guided finds the planted released bug" true
    (guided.Campaign.violations <> []);
  checkb "random finds nothing in the same budget" true
    (random.Campaign.violations = [])

let () =
  Alcotest.run "corpus"
    [
      ( "asm",
        [ Alcotest.test_case "flat round-trip" `Quick test_flat_roundtrip ] );
      ( "mutate",
        [
          Alcotest.test_case "1k mutants lint valid" `Slow
            test_mutants_lint_valid;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "admission/eviction/aging" `Quick
            test_admission_eviction_aging;
          Alcotest.test_case "parent reward" `Quick test_parent_reward;
          Alcotest.test_case "seed parsing" `Quick test_seed_parsing;
          Alcotest.test_case "schedule warm-up and finders" `Quick
            test_schedule_warmup_and_finders;
          Alcotest.test_case "serialization round-trip" `Quick
            test_serialization_roundtrip;
        ] );
      ( "guided",
        [
          Alcotest.test_case "deterministic across engines" `Slow
            test_guided_deterministic;
          Alcotest.test_case "sweep domain-invariant" `Slow
            test_guided_sweep_domain_invariant;
          Alcotest.test_case "kill/resume equivalence" `Slow
            test_guided_resume_equivalence;
          Alcotest.test_case "planted released bug found" `Slow
            test_guided_finds_planted_bug;
        ] );
    ]
