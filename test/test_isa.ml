(* Tests for the ISA library: registers, widths, flags, conditions,
   instructions, programs, the assembler and the binary encoder. *)

open Amulet_isa

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* QCheck generators for ISA values                                     *)
(* ------------------------------------------------------------------ *)

let gen_reg = QCheck2.Gen.map Reg.of_index (QCheck2.Gen.int_bound (Reg.count - 1))
let gen_width = QCheck2.Gen.oneofl Width.all
let gen_cond = QCheck2.Gen.oneofl Cond.all

let gen_mem =
  let open QCheck2.Gen in
  let* base = gen_reg in
  let* index = opt gen_reg in
  let* scale = oneofl [ 1; 2; 4; 8 ] in
  let* disp = int_range (-2048) 2048 in
  return { Operand.base; index; scale; disp }

let gen_operand =
  let open QCheck2.Gen in
  oneof
    [
      map (fun r -> Operand.Reg r) gen_reg;
      map (fun i -> Operand.Imm i) (map Int64.of_int int);
      map (fun m -> Operand.Mem m) gen_mem;
    ]

let gen_reg_or_imm =
  let open QCheck2.Gen in
  oneof
    [
      map (fun r -> Operand.Reg r) gen_reg;
      map (fun i -> Operand.Imm i) (map Int64.of_int int);
    ]

(* an instruction generator producing only well-formed instructions (at most
   one memory operand, register destinations where required) *)
let gen_inst =
  let open QCheck2.Gen in
  let binop = oneofl [ Inst.Add; Inst.Sub; Inst.And; Inst.Or; Inst.Xor ] in
  let unop = oneofl [ Inst.Not; Inst.Neg; Inst.Inc; Inst.Dec ] in
  let shift = oneofl [ Inst.Shl; Inst.Shr; Inst.Sar ] in
  oneof
    [
      return Inst.Nop;
      return Inst.Fence;
      return Inst.Exit;
      (let* op = binop in
       let* w = gen_width in
       let* dst = oneof [ map (fun r -> Operand.Reg r) gen_reg; map (fun m -> Operand.Mem m) gen_mem ] in
       let* src = match dst with Operand.Mem _ -> gen_reg_or_imm | _ -> gen_operand in
       return (Inst.Binop (op, w, dst, src)));
      (let* w = gen_width in
       let* dst = oneof [ map (fun r -> Operand.Reg r) gen_reg; map (fun m -> Operand.Mem m) gen_mem ] in
       let* src = match dst with Operand.Mem _ -> gen_reg_or_imm | _ -> gen_operand in
       return (Inst.Mov (w, dst, src)));
      (let* w = gen_width in
       let* a = map (fun r -> Operand.Reg r) gen_reg in
       let* b = gen_operand in
       return (Inst.Cmp (w, a, b)));
      (let* w = gen_width in
       let* a = map (fun r -> Operand.Reg r) gen_reg in
       let* b = gen_reg_or_imm in
       return (Inst.Test (w, a, b)));
      (let* u = unop in
       let* w = gen_width in
       let* dst = oneof [ map (fun r -> Operand.Reg r) gen_reg; map (fun m -> Operand.Mem m) gen_mem ] in
       return (Inst.Unop (u, w, dst)));
      (let* k = shift in
       let* w = gen_width in
       let* dst = map (fun r -> Operand.Reg r) gen_reg in
       let* n = int_range 0 63 in
       return (Inst.Shift (k, w, dst, n)));
      (let* w = gen_width in
       let* r = gen_reg in
       let* src = gen_operand in
       return (Inst.Imul (w, r, src)));
      (let* r = gen_reg in
       let* m = gen_mem in
       return (Inst.Lea (r, m)));
      (let* c = gen_cond in
       let* dst = oneof [ map (fun r -> Operand.Reg r) gen_reg; map (fun m -> Operand.Mem m) gen_mem ] in
       return (Inst.Setcc (c, dst)));
      (let* c = gen_cond in
       let* w = gen_width in
       let* r = gen_reg in
       let* src = gen_operand in
       return (Inst.Cmovcc (c, w, r, src)));
      (let* t = int_bound 100 in
       return (Inst.Jmp (Inst.Abs t)));
      (let* c = gen_cond in
       let* t = int_bound 100 in
       return (Inst.Jcc (c, Inst.Abs t)));
    ]

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_reg_roundtrip () =
  List.iter
    (fun r -> checkb "index roundtrip" true (Reg.equal r (Reg.of_index (Reg.index r))))
    Reg.all;
  List.iter
    (fun r -> checkb "name roundtrip" true (Reg.equal r (Reg.of_name (Reg.name r))))
    Reg.all;
  checki "count" Reg.count (List.length Reg.all)

let test_width_masks () =
  checki "w8 bytes" 1 (Width.bytes Width.W8);
  checki "w64 bits" 64 (Width.bits Width.W64);
  check Alcotest.int64 "truncate w16" 0x1234L (Width.truncate Width.W16 0xA1234L);
  check Alcotest.int64 "sign extend w8 negative" (-1L) (Width.sign_extend Width.W8 0xFFL);
  check Alcotest.int64 "sign extend w8 positive" 0x7FL (Width.sign_extend Width.W8 0x7FL);
  checkb "is_negative w32" true (Width.is_negative Width.W32 0x8000_0000L);
  checkb "is_negative w32 pos" false (Width.is_negative Width.W32 0x7FFF_FFFFL)

let test_flags_add_sub () =
  let f = Flags.of_add Width.W8 0xFFL 1L 0x0L in
  checkb "add carry" true f.Flags.cf;
  checkb "add zero" true f.Flags.zf;
  let f = Flags.of_add Width.W8 0x7FL 1L 0x80L in
  checkb "add overflow" true f.Flags.of_;
  checkb "add sign" true f.Flags.sf;
  let f = Flags.of_sub Width.W64 0L 1L (-1L) in
  checkb "sub borrow" true f.Flags.cf;
  checkb "sub sign" true f.Flags.sf;
  let f = Flags.of_sub Width.W64 5L 5L 0L in
  checkb "sub equal -> zf" true f.Flags.zf;
  checkb "sub equal -> cf clear" false f.Flags.cf

let test_flags_parity () =
  checkb "parity 0 even" true (Flags.parity_of 0L);
  checkb "parity 3 even" true (Flags.parity_of 3L);
  checkb "parity 1 odd" false (Flags.parity_of 1L);
  checkb "parity 7 odd" false (Flags.parity_of 7L)

let test_cond_eval () =
  let f = { Flags.zf = true; sf = false; cf = false; of_ = false; pf = true } in
  checkb "Z" true (Cond.eval Cond.Z f);
  checkb "NZ" false (Cond.eval Cond.NZ f);
  checkb "LE (zf)" true (Cond.eval Cond.LE f);
  checkb "G" false (Cond.eval Cond.G f);
  checkb "BE (zf)" true (Cond.eval Cond.BE f);
  let f = { Flags.zf = false; sf = true; cf = true; of_ = false; pf = false } in
  checkb "L (sf<>of)" true (Cond.eval Cond.L f);
  checkb "A (cf)" false (Cond.eval Cond.A f);
  checkb "C" true (Cond.eval Cond.C f)

let test_cond_complement () =
  (* each condition and its complement partition flag space *)
  let pairs =
    [ Cond.Z, Cond.NZ; Cond.S, Cond.NS; Cond.C, Cond.NC; Cond.O, Cond.NO;
      Cond.P, Cond.NP; Cond.L, Cond.GE; Cond.LE, Cond.G; Cond.BE, Cond.A ]
  in
  for bits = 0 to 31 do
    let f = Flags.of_int bits in
    List.iter
      (fun (c, nc) ->
        checkb "complement" true (Cond.eval c f <> Cond.eval nc f))
      pairs
  done

let test_inst_classification () =
  let load = Inst.Mov (Width.W64, Operand.Reg Reg.RAX, Operand.mem Reg.R14) in
  let store = Inst.Mov (Width.W64, Operand.mem Reg.R14, Operand.Reg Reg.RAX) in
  let rmw = Inst.Binop (Inst.Add, Width.W64, Operand.mem Reg.R14, Operand.Reg Reg.RAX) in
  checkb "load is load" true (Inst.is_load load);
  checkb "load not store" false (Inst.is_store load);
  checkb "store is store" true (Inst.is_store store);
  checkb "store not load" false (Inst.is_load store);
  checkb "rmw both" true (Inst.is_load rmw && Inst.is_store rmw);
  checkb "jcc is branch" true (Inst.is_cond_branch (Inst.Jcc (Cond.Z, Inst.Abs 0)));
  checkb "jmp not cond" false (Inst.is_cond_branch (Inst.Jmp (Inst.Abs 0)))

let test_inst_sources_dests () =
  let i = Inst.Binop (Inst.Add, Width.W64, Operand.Reg Reg.RAX, Operand.Reg Reg.RBX) in
  checkb "add reads dst" true (List.mem Reg.RAX (Inst.source_regs i));
  checkb "add reads src" true (List.mem Reg.RBX (Inst.source_regs i));
  checkb "add writes dst" true (List.mem Reg.RAX (Inst.dest_regs i));
  let load =
    Inst.Mov (Width.W64, Operand.Reg Reg.RAX,
              Operand.mem ~index:(Some Reg.RBX) Reg.R14)
  in
  checkb "load reads base" true (List.mem Reg.R14 (Inst.source_regs load));
  checkb "load reads index" true (List.mem Reg.RBX (Inst.source_regs load));
  checkb "w64 mov does not read dst" false (List.mem Reg.RAX (Inst.source_regs load));
  let load8 = Inst.Mov (Width.W8, Operand.Reg Reg.RAX, Operand.mem Reg.R14) in
  checkb "w8 mov reads dst (merge)" true (List.mem Reg.RAX (Inst.source_regs load8))

let test_inst_flags_io () =
  checkb "cmp writes flags" true (Inst.writes_flags (Inst.Cmp (Width.W64, Operand.Reg Reg.RAX, Operand.Imm 0L)));
  checkb "not does not write flags" false
    (Inst.writes_flags (Inst.Unop (Inst.Not, Width.W64, Operand.Reg Reg.RAX)));
  checkb "shift 0 does not write flags" false
    (Inst.writes_flags (Inst.Shift (Inst.Shl, Width.W64, Operand.Reg Reg.RAX, 0)));
  checkb "shift 1 writes flags" true
    (Inst.writes_flags (Inst.Shift (Inst.Shl, Width.W64, Operand.Reg Reg.RAX, 1)));
  checkb "jcc reads flags" true (Inst.reads_flags (Inst.Jcc (Cond.Z, Inst.Abs 0)));
  checkb "inc reads flags (CF preserved)" true
    (Inst.reads_flags (Inst.Unop (Inst.Inc, Width.W64, Operand.Reg Reg.RAX)))

(* ------------------------------------------------------------------ *)
(* Program tests                                                       *)
(* ------------------------------------------------------------------ *)

let test_flatten_appends_exit () =
  let p = Program.make [ { Program.label = "a"; body = [ Inst.Nop ] } ] in
  let f = Program.flatten p in
  checki "length" 2 (Program.length f);
  checkb "last is exit" true (Program.get f 1 = Inst.Exit)

let test_flatten_resolves_labels () =
  let p =
    Program.make
      [
        { Program.label = "a"; body = [ Inst.Jcc (Cond.Z, Inst.Label "b") ] };
        { Program.label = "b"; body = [ Inst.Exit ] };
      ]
  in
  let f = Program.flatten p in
  (match Program.get f 0 with
  | Inst.Jcc (_, Inst.Abs 1) -> ()
  | i -> Alcotest.failf "bad resolution: %s" (Inst.to_string i));
  checkb "is dag" true (Program.is_dag f)

let test_flatten_unknown_label () =
  let p = Program.make [ { Program.label = "a"; body = [ Inst.Jmp (Inst.Label "nope") ] } ] in
  Alcotest.check_raises "unknown label" (Program.Unknown_label "nope") (fun () ->
      ignore (Program.flatten p))

let test_pc_mapping () =
  let p = Program.make [ { Program.label = "a"; body = [ Inst.Nop; Inst.Nop; Inst.Exit ] } ] in
  let f = Program.flatten p in
  checki "pc of 0" Program.code_base_default (Program.pc_of_index f 0);
  check (Alcotest.option Alcotest.int) "index of pc" (Some 2)
    (Program.index_of_pc f (Program.code_base_default + 8));
  check (Alcotest.option Alcotest.int) "misaligned" None
    (Program.index_of_pc f (Program.code_base_default + 3));
  check (Alcotest.option Alcotest.int) "out of range" None
    (Program.index_of_pc f (Program.code_base_default + 400))

(* ------------------------------------------------------------------ *)
(* Assembler tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_asm_basic () =
  let p = Asm.parse {|
.bb0:
  AND RBX, 0b111111111000000
  MOV RAX, qword ptr [R14 + RBX]
  CMP RAX, 0x10
  JNZ .bb1
  ADD RAX, 5
.bb1:
  EXIT
|} in
  let f = Program.flatten p in
  checki "6 instructions" 6 (Program.length f);
  (match Program.get f 0 with
  | Inst.Binop (Inst.And, Width.W64, Operand.Reg Reg.RBX, Operand.Imm m) ->
      check Alcotest.int64 "mask" 0x7FC0L m
  | i -> Alcotest.failf "bad inst 0: %s" (Inst.to_string i));
  (match Program.get f 1 with
  | Inst.Mov (Width.W64, Operand.Reg Reg.RAX, Operand.Mem m) ->
      checkb "base" true (Reg.equal m.Operand.base Reg.R14);
      checkb "index" true (m.Operand.index = Some Reg.RBX)
  | i -> Alcotest.failf "bad inst 1: %s" (Inst.to_string i));
  match Program.get f 3 with
  | Inst.Jcc (Cond.NZ, Inst.Abs 5) -> ()
  | i -> Alcotest.failf "bad inst 3: %s" (Inst.to_string i)

let test_asm_memory_forms () =
  let p = Asm.parse "MOV word ptr [R14 + RBX*2 + 8], RCX" in
  match (Program.flatten p).Program.code.(0) with
  | Inst.Mov (Width.W16, Operand.Mem m, Operand.Reg Reg.RCX) ->
      checki "scale" 2 m.Operand.scale;
      checki "disp" 8 m.Operand.disp
  | i -> Alcotest.failf "bad parse: %s" (Inst.to_string i)

let test_asm_negative_disp () =
  let p = Asm.parse "LEA RAX, [R14 + RBX - 16]" in
  match (Program.flatten p).Program.code.(0) with
  | Inst.Lea (Reg.RAX, m) -> checki "disp" (-16) m.Operand.disp
  | i -> Alcotest.failf "bad parse: %s" (Inst.to_string i)

let test_asm_cond_mnemonics () =
  List.iter
    (fun (s, c) ->
      let p = Asm.parse (Printf.sprintf "J%s .bb0\n.bb0:\n  EXIT" s) in
      match (Program.flatten p).Program.code.(0) with
      | Inst.Jcc (c', _) -> checkb ("J" ^ s) true (Cond.equal c c')
      | i -> Alcotest.failf "bad parse: %s" (Inst.to_string i))
    [ "Z", Cond.Z; "NE", Cond.NZ; "S", Cond.S; "P", Cond.P; "LE", Cond.LE; "A", Cond.A ]

let test_asm_errors () =
  let bad s =
    match Asm.parse s with
    | exception Asm.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "FROB RAX";
  bad "MOV RAX";
  bad "MOV RAX, qword ptr [R14";
  bad "ADD RAX, RBX, RCX";
  bad "JMP RAX"

(* print/parse round trip over generated programs (64-bit reg ops and
   memory ops keep widths in the canonical syntax); odd seeds use a
   fence-rich config so LFENCE goes through the trip too *)
let asm_roundtrip_prop =
  QCheck2.Test.make ~name:"asm print/parse roundtrip (generated programs)" ~count:500
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Amulet.Rng.create ~seed in
      let cfg =
        if seed mod 2 = 1 then
          { Amulet.Generator.default with Amulet.Generator.fence_fraction = 0.1 }
        else Amulet.Generator.default
      in
      let p = Amulet.Generator.generate ~cfg rng in
      let text = Asm.print p in
      let p' = Asm.parse text in
      Program.flatten p = Program.flatten p')

(* extreme immediates survive the trip: Int64.min_int prints as
   -9223372036854775808 whose absolute part exceeds Int64.max_int, so the
   parser needs the unsigned fallback *)
let test_asm_extreme_imm () =
  List.iter
    (fun imm ->
      let src = Printf.sprintf ".bb0:\n  MOV RAX, %Ld\n  EXIT\n" imm in
      let p = Asm.parse src in
      match (Program.flatten p).Program.code.(0) with
      | Inst.Mov (Width.W64, Operand.Reg Reg.RAX, Operand.Imm i) ->
          Alcotest.check Alcotest.int64 "imm value" imm i;
          checkb "reprint stable" true
            (Program.flatten (Asm.parse (Asm.print p)) = Program.flatten p)
      | i -> Alcotest.failf "bad parse: %s" (Inst.to_string i))
    [ Int64.min_int; Int64.max_int; -1L; 0L; 0x7FFFFFFF_FFFFFFFEL ]

(* ------------------------------------------------------------------ *)
(* Encoder tests                                                       *)
(* ------------------------------------------------------------------ *)

let encode_roundtrip_prop =
  QCheck2.Test.make ~name:"encode/decode instruction roundtrip" ~count:500
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 30) gen_inst)
    (fun insts ->
      let flat = { Program.code = Array.of_list insts; code_base = 0x400000; inst_size = 4 } in
      let decoded = Encoder.decode (Encoder.encode flat) in
      decoded.Program.code = flat.Program.code
      && decoded.Program.code_base = flat.Program.code_base)

let test_encoder_rejects_labels () =
  let flat =
    { Program.code = [| Inst.Jmp (Inst.Label "x") |]; code_base = 0; inst_size = 4 }
  in
  match Encoder.encode flat with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_decoder_rejects_garbage () =
  let bad s =
    match Encoder.decode s with
    | exception Encoder.Decode_error _ -> ()
    | _ -> Alcotest.failf "expected decode error"
  in
  bad "";
  bad "NOPE";
  bad "AMLT\x01\x00\x00\x00";
  (* truncated *)
  let good = Encoder.encode { Program.code = [| Inst.Nop; Inst.Exit |]; code_base = 0; inst_size = 4 } in
  bad (String.sub good 0 (String.length good - 1) ^ "\xFF")

let () =
  Alcotest.run "isa"
    [
      ( "reg-width-flags",
        [
          Alcotest.test_case "reg roundtrip" `Quick test_reg_roundtrip;
          Alcotest.test_case "width masks" `Quick test_width_masks;
          Alcotest.test_case "flags add/sub" `Quick test_flags_add_sub;
          Alcotest.test_case "flags parity" `Quick test_flags_parity;
          Alcotest.test_case "cond eval" `Quick test_cond_eval;
          Alcotest.test_case "cond complement" `Quick test_cond_complement;
        ] );
      ( "instructions",
        [
          Alcotest.test_case "classification" `Quick test_inst_classification;
          Alcotest.test_case "sources/dests" `Quick test_inst_sources_dests;
          Alcotest.test_case "flags io" `Quick test_inst_flags_io;
        ] );
      ( "programs",
        [
          Alcotest.test_case "flatten appends exit" `Quick test_flatten_appends_exit;
          Alcotest.test_case "flatten resolves labels" `Quick test_flatten_resolves_labels;
          Alcotest.test_case "unknown label" `Quick test_flatten_unknown_label;
          Alcotest.test_case "pc mapping" `Quick test_pc_mapping;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "basic program" `Quick test_asm_basic;
          Alcotest.test_case "memory forms" `Quick test_asm_memory_forms;
          Alcotest.test_case "negative disp" `Quick test_asm_negative_disp;
          Alcotest.test_case "cond mnemonics" `Quick test_asm_cond_mnemonics;
          Alcotest.test_case "parse errors" `Quick test_asm_errors;
          Alcotest.test_case "extreme immediates" `Quick test_asm_extreme_imm;
          QCheck_alcotest.to_alcotest asm_roundtrip_prop;
        ] );
      ( "encoder",
        [
          QCheck_alcotest.to_alcotest encode_roundtrip_prop;
          Alcotest.test_case "rejects labels" `Quick test_encoder_rejects_labels;
          Alcotest.test_case "rejects garbage" `Quick test_decoder_rejects_garbage;
        ] );
    ]
