(* Integration tests per defense: the released (buggy) implementation leaks
   under its contract within a fixed-seed budget; the patched variant is
   clean under the same budget; crafted reproducers trigger each specific
   bug (paper Figures 4, 6, 8, 9). *)

open Amulet
open Amulet_isa
open Amulet_defenses

let checkb = Alcotest.check Alcotest.bool

let campaign ?(n_programs = 25) ?(stop = Some 1) ?sim_config ?generator ?(seed = 11)
    defense =
  Campaign.run
    (Run_spec.make ~defense ~rounds:n_programs ?stop_after:stop ~seed ~inputs:6
       ~boosts:4 ~boot_insts:500 ?sim_config ?generator ())

let has_class c r =
  List.exists (fun (c', _) -> c = c') r.Campaign.violation_classes

(* ------------------------------------------------------------------ *)
(* Campaign-level expectations                                         *)
(* ------------------------------------------------------------------ *)

let test_baseline_leaks_ctseq () =
  let r = campaign Defense.baseline in
  checkb "baseline violates CT-SEQ" true (Campaign.detected r)

let test_invisispec_uv1 () =
  let r = campaign Defense.invisispec in
  checkb "detected" true (Campaign.detected r);
  checkb "classified UV1" true (has_class Analysis.Spec_eviction_uv1 r)

let test_invisispec_patched_clean () =
  let r = campaign ~n_programs:12 ~stop:None Defense.invisispec_patched in
  checkb "patched InvisiSpec clean at default config" false (Campaign.detected r)

let test_invisispec_uv2_amplified () =
  let sim_config =
    Defense.config ~l1d_ways:2 ~mshrs:2 Defense.invisispec_patched
  in
  let r =
    Campaign.run
      (Run_spec.make ~defense:Defense.invisispec_patched ~rounds:100
         ~stop_after:1 ~seed:7 ~inputs:8 ~boosts:6 ~boot_insts:500 ~sim_config
         ())
  in
  checkb "amplification reveals UV2" true
    (Campaign.detected r && has_class Analysis.Mshr_interference_uv2 r)

let test_cleanupspec_uv3 () =
  let r = campaign ~n_programs:40 ~stop:(Some 4) Defense.cleanupspec in
  checkb "detected" true (Campaign.detected r);
  checkb "UV3 among findings" true (has_class Analysis.Store_not_cleaned_uv3 r)

let test_cleanupspec_uv4_with_unaligned () =
  let generator = { Generator.default with Generator.unaligned_fraction = 0.6 } in
  let r = campaign ~n_programs:60 ~stop:(Some 8) ~generator Defense.cleanupspec in
  checkb "UV4 found with line-crossing accesses" true
    (has_class Analysis.Split_not_cleaned_uv4 r)

let test_cleanupspec_patched_no_uv3 () =
  let r = campaign ~n_programs:40 ~stop:(Some 6) Defense.cleanupspec_patched in
  checkb "patched CleanupSpec has no UV3" false (has_class Analysis.Store_not_cleaned_uv3 r)

let test_speclfb_uv6 () =
  let r = campaign Defense.speclfb in
  checkb "detected" true (Campaign.detected r);
  checkb "classified UV6" true (has_class Analysis.First_load_unprotected_uv6 r)

let test_speclfb_patched_clean () =
  let r = campaign ~n_programs:15 ~stop:None Defense.speclfb_patched in
  checkb "patched SpecLFB clean" false (Campaign.detected r)

(* ------------------------------------------------------------------ *)
(* Crafted reproducers (paper figures)                                 *)
(* ------------------------------------------------------------------ *)

let fuzz_crafted ?sim_config ~seed defense src =
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense ~seed ~inputs:10 ~boosts:6 ~boot_insts:500
         ?sim_config ())
  in
  Fuzzer.test_program fz (Program.flatten (Asm.parse src))

(* Figure 4: speculative load whose input-dependent address evicts a primed
   line in unpatched InvisiSpec. *)
let figure4_src = {|
.bb0:
  AND RDI, 0b111111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b111111111000000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  EXIT
|}

let test_figure4_uv1_reproducer () =
  (match fuzz_crafted ~seed:2 Defense.invisispec figure4_src with
  | Fuzzer.Found v ->
      let ex =
        Executor.create ~boot_insts:500 ~mode:Executor.Opt Defense.invisispec
          (Stats.create ())
      in
      Executor.start_program ex;
      checkb "classified UV1" true
        (Analysis.classify_violation ex v = Analysis.Spec_eviction_uv1)
  | Fuzzer.No_violation _ -> Alcotest.fail "figure 4 reproducer found nothing"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r));
  (* the same test on patched InvisiSpec is clean *)
  match fuzz_crafted ~seed:2 Defense.invisispec_patched figure4_src with
  | Fuzzer.Found _ -> Alcotest.fail "patched InvisiSpec still leaks figure 4"
  | Fuzzer.No_violation _ -> ()
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

(* Figure 8: SpecLFB single-speculative-load Spectre (UV6). *)
let figure8_src = {|
.bb0:
  AND RDI, 0b111111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b111111111000000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  EXIT
|}

let test_figure8_uv6_reproducer () =
  (match fuzz_crafted ~seed:2 Defense.speclfb figure8_src with
  | Fuzzer.Found v ->
      let ex =
        Executor.create ~boot_insts:500 ~mode:Executor.Opt Defense.speclfb
          (Stats.create ())
      in
      Executor.start_program ex;
      checkb "classified UV6" true
        (Analysis.classify_violation ex v = Analysis.First_load_unprotected_uv6)
  | Fuzzer.No_violation _ -> Alcotest.fail "figure 8 reproducer found nothing"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r));
  match fuzz_crafted ~seed:2 Defense.speclfb_patched figure8_src with
  | Fuzzer.Found _ -> Alcotest.fail "patched SpecLFB still leaks figure 8"
  | Fuzzer.No_violation _ -> ()
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

(* Figure 9: STT tainted speculative store fills the D-TLB (KV3). *)
let figure9_src = {|
.bb0:
  AND RDI, 0b1111111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RCX, 0b1111111111111111
  MOV RBX, word ptr [R14 + RCX]
  AND RBX, 0b1111111111111111111
  MOV dword ptr [R14 + RBX], RDX
.done:
  EXIT
|}

let test_figure9_kv3_reproducer () =
  (match fuzz_crafted ~seed:7 Defense.stt figure9_src with
  | Fuzzer.Found v ->
      let ex =
        Executor.create ~boot_insts:500 ~mode:Executor.Opt Defense.stt (Stats.create ())
      in
      Executor.start_program ex;
      checkb "classified KV3" true
        (Analysis.classify_violation ex v = Analysis.Tainted_store_tlb_kv3)
  | Fuzzer.No_violation _ -> Alcotest.fail "figure 9 reproducer found nothing"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r));
  match fuzz_crafted ~seed:7 Defense.stt_patched figure9_src with
  | Fuzzer.Found _ -> Alcotest.fail "patched STT still leaks figure 9"
  | Fuzzer.No_violation _ -> ()
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

(* UV5 "too much cleaning" reproducer, after the paper's Table 9: an OLDER
   non-speculative load whose address arrives late (a dependent chain of
   cold loads) executes after a YOUNGER transient load already installed the
   same line; it hits, leaving no cleanup metadata, and the transient load's
   cleanup then erases the architecturally-touched line. *)
let uv5_src = {|
.bb0:
  AND RSI, 0b111111111000000
  CMP RAX, qword ptr [R14 + RSI]
  AND RDI, 0b111111111000000
  MOV RDX, qword ptr [R14 + RDI]
  AND RDX, 0b111111111000000
  MOV R8, qword ptr [R14 + RDX]
  JNZ .done
  AND RBX, 0b111111111000000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  EXIT
|}

let test_uv5_reproducer () =
  match fuzz_crafted ~seed:5 Defense.cleanupspec_patched uv5_src with
  | Fuzzer.Found v ->
      let ex =
        Executor.create ~boot_insts:500 ~mode:Executor.Opt Defense.cleanupspec_patched
          (Stats.create ())
      in
      Executor.start_program ex;
      checkb "classified UV5" true
        (Analysis.classify_violation ex v = Analysis.Too_much_cleaning_uv5)
  | Fuzzer.No_violation _ -> Alcotest.fail "uv5 reproducer found nothing"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

(* registry sanity *)
let test_registry () =
  checkb "find by name" true (Defense.find "invisispec" = Some Defense.invisispec);
  checkb "case-insensitive" true (Defense.find "SpecLFB" = Some Defense.speclfb);
  checkb "unknown" true (Defense.find "nada" = None);
  checkb "all named distinctly" true
    (let names = List.map (fun d -> d.Defense.name) Defense.all in
     List.length names = List.length (List.sort_uniq compare names))

let () =
  Alcotest.run ~and_exit:false "defenses"
    [
      ( "campaigns",
        [
          Alcotest.test_case "baseline leaks" `Slow test_baseline_leaks_ctseq;
          Alcotest.test_case "invisispec uv1" `Slow test_invisispec_uv1;
          Alcotest.test_case "invisispec patched clean" `Slow test_invisispec_patched_clean;
          Alcotest.test_case "invisispec uv2 amplified" `Slow test_invisispec_uv2_amplified;
          Alcotest.test_case "cleanupspec uv3" `Slow test_cleanupspec_uv3;
          Alcotest.test_case "cleanupspec uv4 unaligned" `Slow
            test_cleanupspec_uv4_with_unaligned;
          Alcotest.test_case "cleanupspec patched no uv3" `Slow
            test_cleanupspec_patched_no_uv3;
          Alcotest.test_case "speclfb uv6" `Slow test_speclfb_uv6;
          Alcotest.test_case "speclfb patched clean" `Slow test_speclfb_patched_clean;
        ] );
      ( "reproducers",
        [
          Alcotest.test_case "figure 4 (UV1)" `Slow test_figure4_uv1_reproducer;
          Alcotest.test_case "figure 8 (UV6)" `Slow test_figure8_uv6_reproducer;
          Alcotest.test_case "figure 9 (KV3)" `Slow test_figure9_kv3_reproducer;
          Alcotest.test_case "uv5 reproducer" `Slow test_uv5_reproducer;
        ] );
      ("registry", [ Alcotest.test_case "lookup" `Quick test_registry ]);
    ]

(* appended coverage: the extension defenses (Delay-on-Miss, GhostMinion) *)

let spectre_gadget_with_tail = {|
.bb0:
  AND RDI, 0b111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b111111000000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  MOV RDX, qword ptr [R14 + 3584]
  EXIT
|}

let test_delay_on_miss_blocks_transient_miss () =
  (* the crafted Spectre gadget that leaks on the baseline must be clean
     under Delay-on-Miss: the transient load misses and therefore waits *)
  (match fuzz_crafted ~seed:2 Defense.baseline spectre_gadget_with_tail with
  | Fuzzer.Found _ -> ()
  | Fuzzer.No_violation _ -> Alcotest.fail "baseline should leak this gadget"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r));
  match fuzz_crafted ~seed:2 Defense.delay_on_miss spectre_gadget_with_tail with
  | Fuzzer.Found v ->
      Alcotest.failf "delay-on-miss leaked: %s"
        (Option.value v.Violation.signature ~default:"?")
  | Fuzzer.No_violation _ -> ()
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

let test_ghostminion_blocks_spectre_gadget () =
  match fuzz_crafted ~seed:2 Defense.ghostminion spectre_gadget_with_tail with
  | Fuzzer.Found _ -> Alcotest.fail "ghostminion leaked the spectre gadget"
  | Fuzzer.No_violation _ -> ()
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

(* the headline claim (paper §4.5.1 "Fix"): GhostMinion's strictness
   ordering removes the UV2 interference leak that amplification reveals in
   patched InvisiSpec, under the SAME campaign budget and seed *)
let test_ghostminion_fixes_uv2 () =
  let run defense =
    let sim_config = Defense.config ~l1d_ways:2 ~mshrs:2 defense in
    Campaign.run
      (Run_spec.make ~defense ~rounds:100 ~stop_after:1 ~seed:7 ~inputs:8
         ~boosts:6 ~boot_insts:500 ~sim_config ())
  in
  let invisi = run Defense.invisispec_patched in
  checkb "patched InvisiSpec leaks UV2 when amplified" true
    (has_class Analysis.Mshr_interference_uv2 invisi);
  let ghost = run Defense.ghostminion in
  checkb "GhostMinion is clean under the same amplified campaign" false
    (Campaign.detected ghost)

let test_new_defenses_campaign_clean () =
  List.iter
    (fun d ->
      let r = campaign ~n_programs:15 ~stop:None d in
      checkb (d.Defense.name ^ " clean at default config") false
        (Campaign.detected r))
    [ Defense.delay_on_miss; Defense.ghostminion ]

let () =
  Alcotest.run ~and_exit:false "defenses-extra"
    [
      ( "extensions",
        [
          Alcotest.test_case "delay-on-miss blocks transient miss" `Slow
            test_delay_on_miss_blocks_transient_miss;
          Alcotest.test_case "ghostminion blocks spectre" `Slow
            test_ghostminion_blocks_spectre_gadget;
          Alcotest.test_case "ghostminion fixes UV2" `Slow test_ghostminion_fixes_uv2;
          Alcotest.test_case "new defenses clean" `Slow test_new_defenses_campaign_clean;
        ] );
    ]

(* prefetcher extension study (§5.2): a next-line prefetcher trained by
   transient accesses leaks through an otherwise-clean defense *)
let test_prefetcher_breaks_patched_invisispec () =
  let d = Defense.invisispec_patched in
  let with_pf = { (Defense.config d) with Amulet_uarch.Config.nl_prefetcher = true } in
  let run sim_config =
    Campaign.run
      (Run_spec.make ~defense:d ~rounds:40 ~stop_after:1 ~seed:11 ~inputs:8
         ~boosts:5 ~boot_insts:500 ?sim_config ())
  in
  let without = run None in
  checkb "patched InvisiSpec clean without prefetcher" false (Campaign.detected without);
  let with_ = run (Some with_pf) in
  checkb "prefetcher re-opens the leak" true (Campaign.detected with_);
  checkb "classified as prefetcher leak" true
    (has_class Analysis.Prefetcher_leak with_)

let () =
  Alcotest.run "defenses-prefetcher"
    [
      ( "extension",
        [
          Alcotest.test_case "prefetcher breaks patched invisispec" `Slow
            test_prefetcher_breaks_patched_invisispec;
        ] );
    ]
