(* Tests for the emulator library: sandbox memory, architectural state,
   instruction semantics, the sequential emulator with checkpoints, and the
   input-taint tracker. *)

open Amulet_isa
open Amulet_emu

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check64 = Alcotest.check Alcotest.int64

(* run an assembly snippet over a fresh 1-page state with initial registers *)
let run_asm ?(pages = 1) ?(regs = []) ?(mem = []) src =
  let flat = Program.flatten (Asm.parse src) in
  let st = State.create ~pages () in
  State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
  List.iter (fun (r, v) -> State.write_reg st r v) regs;
  List.iter (fun (off, w, v) -> Memory.write st.State.mem w (Memory.base st.State.mem + off) v) mem;
  let emu = Emulator.execute flat st in
  Alcotest.(check (option string)) "no fault" None (Emulator.fault emu);
  st

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_rw () =
  let m = Memory.create ~pages:1 () in
  Memory.write m Width.W64 (Memory.base m) 0x1122334455667788L;
  check64 "w64" 0x1122334455667788L (Memory.read m Width.W64 (Memory.base m));
  check64 "w8 le" 0x88L (Memory.read m Width.W8 (Memory.base m));
  check64 "w16 le" 0x7788L (Memory.read m Width.W16 (Memory.base m));
  check64 "w32 offset" 0x11223344L (Memory.read m Width.W32 (Memory.base m + 4))

let test_memory_out_of_bounds () =
  let m = Memory.create ~pages:1 () in
  Memory.write m Width.W64 0x100 0xdeadbeefL;
  check64 "oob read is zero" 0L (Memory.read m Width.W64 0x100);
  (* partially out of bounds: the in-bounds bytes persist *)
  let last = Memory.limit m - 4 in
  Memory.write m Width.W64 last 0x1122334455667788L;
  check64 "partial write keeps low bytes" 0x55667788L (Memory.read m Width.W32 last);
  check64 "beyond end reads zero" 0L (Memory.read m Width.W32 (last + 4))

let test_memory_journal () =
  let m = Memory.create ~pages:1 () in
  Memory.write m Width.W64 (Memory.base m) 0xAAAAL;
  Memory.set_journaling m true;
  let mark = Memory.mark m in
  Memory.write m Width.W64 (Memory.base m) 0xBBBBL;
  Memory.write m Width.W32 (Memory.base m + 64) 0xCCCCL;
  Memory.rollback m mark;
  check64 "rollback restores" 0xAAAAL (Memory.read m Width.W64 (Memory.base m));
  check64 "rollback zeroes" 0L (Memory.read m Width.W32 (Memory.base m + 64))

(* A mark taken before clear_journal refers to journal state that no longer
   exists: rolling back to it must fail loudly (Invalid_argument), not
   corrupt memory via an assert or a bogus replay. *)
let test_memory_stale_mark () =
  let m = Memory.create ~pages:1 () in
  Memory.set_journaling m true;
  Memory.write m Width.W64 (Memory.base m) 0x1L;
  let stale = Memory.mark m in
  Memory.write m Width.W64 (Memory.base m) 0x2L;
  Memory.clear_journal m;
  (match Memory.rollback m stale with
  | () -> Alcotest.fail "rollback to a stale mark must raise"
  | exception Invalid_argument _ -> ());
  (* the failed rollback left the memory untouched and usable *)
  check64 "memory intact after rejected rollback" 0x2L
    (Memory.read m Width.W64 (Memory.base m));
  let fresh = Memory.mark m in
  Memory.write m Width.W64 (Memory.base m) 0x3L;
  Memory.rollback m fresh;
  check64 "fresh mark still works" 0x2L (Memory.read m Width.W64 (Memory.base m))

let test_memory_word_accessors () =
  let m = Memory.create ~pages:2 () in
  checki "words" (2 * 4096 / 8) (Memory.words m);
  Memory.write_word m 5 0x1234L;
  check64 "word rw" 0x1234L (Memory.read_word m 5);
  check64 "byte view" 0x34L (Memory.read m Width.W8 (Memory.base m + 40))

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let test_state_width_writes () =
  let st = State.create ~pages:1 () in
  State.write_reg st Reg.RAX 0x1122334455667788L;
  State.write_reg_width st Width.W8 Reg.RAX 0xFFL;
  check64 "w8 merges" 0x11223344556677FFL (State.read_reg st Reg.RAX);
  State.write_reg_width st Width.W16 Reg.RAX 0xAAAAL;
  check64 "w16 merges" 0x112233445566AAAAL (State.read_reg st Reg.RAX);
  State.write_reg_width st Width.W32 Reg.RAX 0xBBBBBBBBL;
  check64 "w32 zero-extends" 0xBBBBBBBBL (State.read_reg st Reg.RAX);
  State.write_reg_width st Width.W64 Reg.RAX (-1L);
  check64 "w64 replaces" (-1L) (State.read_reg st Reg.RAX)

(* ------------------------------------------------------------------ *)
(* Exec semantics golden tests                                         *)
(* ------------------------------------------------------------------ *)

let test_exec_arith () =
  let st = run_asm ~regs:[ Reg.RAX, 10L; Reg.RBX, 3L ] {|
  SUB RAX, RBX
  ADD RAX, 100
  IMUL RAX, RBX
|} in
  check64 "(10-3+100)*3" 321L (State.read_reg st Reg.RAX)

let test_exec_logic_and_shift () =
  let st = run_asm ~regs:[ Reg.RAX, 0b1100L; Reg.RBX, 0b1010L ] {|
  AND RAX, RBX
  SHL RAX, 2
  XOR RAX, 1
  NOT RAX
|} in
  check64 "~(((12&10)<<2)^1)" (Int64.lognot 0b100001L) (State.read_reg st Reg.RAX)

let test_exec_memory_roundtrip () =
  let st = run_asm ~regs:[ Reg.RAX, 0xDEADL ] {|
  MOV qword ptr [R14 + 16], RAX
  MOV RBX, qword ptr [R14 + 16]
  ADD qword ptr [R14 + 16], RBX
  MOV RCX, qword ptr [R14 + 16]
|} in
  check64 "load back" 0xDEADL (State.read_reg st Reg.RBX);
  check64 "rmw doubled" (Int64.mul 0xDEADL 2L) (State.read_reg st Reg.RCX)

let test_exec_widths () =
  let st =
    run_asm
      ~mem:[ 0, Width.W64, 0x1122334455667788L ]
      ~regs:[ Reg.RBX, 0xFFFFFFFFFFFFFFFFL ]
      {|
  MOV RAX, byte ptr [R14]
  MOV RBX, word ptr [R14 + 2]
|}
  in
  check64 "byte load zero-extends into 64-bit write" 0x88L (State.read_reg st Reg.RAX);
  (* 16-bit load merges into the register's upper bits *)
  check64 "word load merges" 0xFFFFFFFFFFFF5566L (State.read_reg st Reg.RBX)

let test_exec_cmov_setcc () =
  let st = run_asm ~regs:[ Reg.RAX, 5L; Reg.RBX, 9L; Reg.RCX, 100L ] {|
  CMP RAX, 5
  SETZ RDX
  CMOVZ RSI, RBX
  CMP RAX, 6
  CMOVZ RSI, RCX
|} in
  check64 "setz" 1L (State.read_reg st Reg.RDX);
  check64 "cmov taken then not" 9L (State.read_reg st Reg.RSI)

let test_exec_branches () =
  let st = run_asm ~regs:[ Reg.RAX, 0L ] {|
.bb0:
  CMP RAX, 0
  JNZ .skip
  MOV RBX, 111
  JMP .end
.skip:
  MOV RBX, 222
.end:
  EXIT
|} in
  check64 "fallthrough path" 111L (State.read_reg st Reg.RBX);
  let st = run_asm ~regs:[ Reg.RAX, 7L ] {|
.bb0:
  CMP RAX, 0
  JNZ .skip
  MOV RBX, 111
  JMP .end
.skip:
  MOV RBX, 222
.end:
  EXIT
|} in
  check64 "taken path" 222L (State.read_reg st Reg.RBX)

let test_exec_neg_inc_dec_flags () =
  let st = run_asm ~regs:[ Reg.RAX, 0L; Reg.RBX, 0xFFL ] {|
  NEG RBX
  SETC RCX
  INC RAX
  SETC RDX
|} in
  check64 "neg" (Int64.neg 0xFFL) (State.read_reg st Reg.RBX);
  check64 "neg sets CF for nonzero" 1L (State.read_reg st Reg.RCX);
  (* INC must preserve CF (still set from NEG) *)
  check64 "inc preserves CF" 1L (State.read_reg st Reg.RDX)

let test_exec_shift_edge_cases () =
  let st = run_asm ~regs:[ Reg.RAX, 0x8000000000000000L; Reg.RBX, 0x8000000000000000L ] {|
  SAR RAX, 63
  SHR RBX, 63
|} in
  check64 "sar fills sign" (-1L) (State.read_reg st Reg.RAX);
  check64 "shr fills zero" 1L (State.read_reg st Reg.RBX)

let test_exec_lea_no_memory_access () =
  (* LEA of an out-of-sandbox address must not fault or touch memory *)
  let st = run_asm ~regs:[ Reg.RBX, 0xFFFF_FFFFL ] {|
  LEA RAX, [R14 + RBX + 100]
|} in
  let expected = Int64.add (Int64.add (State.read_reg st Reg.R14) 0xFFFF_FFFFL) 100L in
  check64 "lea computes address" (Int64.logand expected 0x7FFF_FFFF_FFFFL)
    (State.read_reg st Reg.RAX)

(* ------------------------------------------------------------------ *)
(* Emulator mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let test_emulator_hooks () =
  let flat = Program.flatten (Asm.parse {|
  MOV RAX, qword ptr [R14 + 8]
  MOV qword ptr [R14 + 16], RAX
|}) in
  let st = State.create ~pages:1 () in
  State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
  let insts = ref [] and mems = ref [] in
  let hooks =
    {
      Emulator.on_inst = Some (fun ~pc ~index:_ _ -> insts := pc :: !insts);
      on_mem = Some (fun ~kind ~pc:_ ~addr ~width:_ ~value:_ -> mems := (kind, addr) :: !mems);
    }
  in
  ignore (Emulator.execute ~hooks flat st);
  checki "3 instructions observed" 3 (List.length !insts);
  checki "2 memory accesses" 2 (List.length !mems);
  let base = Memory.base st.State.mem in
  (match List.rev !mems with
  | [ (`Load, a1); (`Store, a2) ] ->
      checki "load addr" (base + 8) a1;
      checki "store addr" (base + 16) a2
  | _ -> Alcotest.fail "unexpected memory hook sequence")

let test_emulator_checkpoint () =
  let flat = Program.flatten (Asm.parse {|
  MOV RAX, 1
  MOV qword ptr [R14], RAX
  MOV RAX, 2
  MOV qword ptr [R14 + 8], RAX
|}) in
  let st = State.create ~pages:1 () in
  State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
  let emu = Emulator.create flat st in
  ignore (Emulator.step emu);
  ignore (Emulator.step emu);
  let cp = Emulator.checkpoint emu in
  ignore (Emulator.step emu);
  ignore (Emulator.step emu);
  check64 "before restore" 2L (State.read_reg st Reg.RAX);
  check64 "mem written" 2L (Memory.read st.State.mem Width.W64 (Memory.base st.State.mem + 8));
  Emulator.restore emu cp;
  check64 "regs restored" 1L (State.read_reg st Reg.RAX);
  check64 "mem rolled back" 0L (Memory.read st.State.mem Width.W64 (Memory.base st.State.mem + 8));
  checki "index restored" 2 (Emulator.current_index emu);
  Emulator.commit emu

let test_emulator_step_limit () =
  (* a backward jump loops forever; the step limit must catch it *)
  let flat =
    { Program.code = [| Inst.Jmp (Inst.Abs 0); Inst.Exit |]; code_base = 0x400000; inst_size = 4 }
  in
  let st = State.create ~pages:1 () in
  let emu = Emulator.create flat st in
  ignore (Emulator.run ~max_steps:100 emu);
  checkb "faulted" true (Emulator.fault emu <> None)

(* ------------------------------------------------------------------ *)
(* Taint tracking                                                      *)
(* ------------------------------------------------------------------ *)

let taint_of_asm ?(observe_values = false) src =
  let flat = Program.flatten (Asm.parse src) in
  let st = State.create ~pages:1 () in
  State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
  let taint = Taint.create st.State.mem in
  let emu = Emulator.create flat st in
  let hooks =
    {
      Emulator.on_inst =
        Some
          (fun ~pc:_ ~index:_ inst ->
            let request = Exec.mem_request ~read_reg:(State.read_reg st) inst in
            Taint.step taint ~inst ~request ~observe_values);
      on_mem = None;
    }
  in
  ignore (Emulator.run ~hooks emu);
  taint

let test_taint_address_relevant () =
  let taint = taint_of_asm {|
  AND RBX, 4088
  MOV RAX, qword ptr [R14 + RBX]
|} in
  checkb "address register relevant" true (Taint.is_relevant_reg taint Reg.RBX);
  checkb "unrelated register free" false (Taint.is_relevant_reg taint Reg.RCX)

let test_taint_branch_relevant () =
  let taint = taint_of_asm {|
  CMP RDX, 17
  JZ .x
  NOP
.x:
  EXIT
|} in
  checkb "branch condition source relevant" true (Taint.is_relevant_reg taint Reg.RDX)

let test_taint_data_free_under_ctseq () =
  (* loaded data that only flows to a register is NOT relevant for an
     address-observing contract *)
  let taint = taint_of_asm {|
  MOV RAX, qword ptr [R14 + 8]
  ADD RAX, 1
|} in
  checkb "loaded word free" false (Taint.is_relevant_word taint 1);
  (* ... but it IS relevant when values are observed (ARCH-SEQ) *)
  let taint = taint_of_asm ~observe_values:true {|
  MOV RAX, qword ptr [R14 + 8]
|} in
  checkb "loaded word relevant under arch-seq" true (Taint.is_relevant_word taint 1)

let test_taint_propagation_through_store () =
  (* secret -> store -> load -> address: the secret becomes relevant *)
  let taint = taint_of_asm {|
  MOV qword ptr [R14 + 32], RSI
  MOV RBX, qword ptr [R14 + 32]
  AND RBX, 4088
  MOV RAX, qword ptr [R14 + RBX]
|} in
  checkb "stored source becomes address-relevant" true
    (Taint.is_relevant_reg taint Reg.RSI)

let test_taint_flags_propagation () =
  let taint = taint_of_asm {|
  ADD RDI, 5
  SETZ RCX
  AND RCX, 4088
  MOV RAX, qword ptr [R14 + RCX]
|} in
  checkb "flag source relevant via setcc" true (Taint.is_relevant_reg taint Reg.RDI)

(* boosting soundness: mutants of free atoms keep the contract trace *)
let taint_soundness_prop =
  QCheck2.Test.make ~name:"taint-directed mutation preserves CT-SEQ ctrace" ~count:60
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let open Amulet in
      let open Amulet_contracts in
      let rng = Rng.create ~seed in
      let flat = Generator.generate_flat rng in
      let input = Input.generate rng ~pages:1 in
      let r =
        Leakage_model.collect ~collect_taint:true Contract.ct_seq flat
          (Input.to_state input)
      in
      match r.Leakage_model.fault, r.Leakage_model.taint with
      | Some _, _ | _, None -> true (* discarded programs are vacuously fine *)
      | None, Some taint ->
          let mutant = Input.mutate_free rng taint input in
          let r' = Leakage_model.collect Contract.ct_seq flat (Input.to_state mutant) in
          r'.Leakage_model.fault <> None
          || Int64.equal r.Leakage_model.ctrace_hash r'.Leakage_model.ctrace_hash)

let () =
  Alcotest.run ~and_exit:false "emu"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "out of bounds" `Quick test_memory_out_of_bounds;
          Alcotest.test_case "journal rollback" `Quick test_memory_journal;
          Alcotest.test_case "stale mark rejected" `Quick test_memory_stale_mark;
          Alcotest.test_case "word accessors" `Quick test_memory_word_accessors;
        ] );
      ( "state",
        [ Alcotest.test_case "width-aware writes" `Quick test_state_width_writes ] );
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_exec_arith;
          Alcotest.test_case "logic and shifts" `Quick test_exec_logic_and_shift;
          Alcotest.test_case "memory roundtrip" `Quick test_exec_memory_roundtrip;
          Alcotest.test_case "widths" `Quick test_exec_widths;
          Alcotest.test_case "cmov/setcc" `Quick test_exec_cmov_setcc;
          Alcotest.test_case "branches" `Quick test_exec_branches;
          Alcotest.test_case "neg/inc/dec flags" `Quick test_exec_neg_inc_dec_flags;
          Alcotest.test_case "shift edges" `Quick test_exec_shift_edge_cases;
          Alcotest.test_case "lea no access" `Quick test_exec_lea_no_memory_access;
        ] );
      ( "emulator",
        [
          Alcotest.test_case "hooks" `Quick test_emulator_hooks;
          Alcotest.test_case "checkpoint/rollback" `Quick test_emulator_checkpoint;
          Alcotest.test_case "step limit" `Quick test_emulator_step_limit;
        ] );
      ( "taint",
        [
          Alcotest.test_case "address relevance" `Quick test_taint_address_relevant;
          Alcotest.test_case "branch relevance" `Quick test_taint_branch_relevant;
          Alcotest.test_case "value observation" `Quick test_taint_data_free_under_ctseq;
          Alcotest.test_case "store propagation" `Quick test_taint_propagation_through_store;
          Alcotest.test_case "flags propagation" `Quick test_taint_flags_propagation;
          QCheck_alcotest.to_alcotest taint_soundness_prop;
        ] );
    ]

(* appended coverage: arithmetic-flag oracles and RMW decomposition *)

(* Oracle for ADD flags using 65-bit arithmetic emulated with unsigned
   comparisons: an independent derivation the implementation must match. *)
let add_flags_oracle_prop =
  QCheck2.Test.make ~name:"ADD flags match 65-bit oracle" ~count:500
    QCheck2.Gen.(triple (oneofl Width.all) (map Int64.of_int int) (map Int64.of_int int))
    (fun (w, a, b) ->
      let a = Width.truncate w a and b = Width.truncate w b in
      let r = Width.truncate w (Int64.add a b) in
      let f = Flags.of_add w a b r in
      (* carry: unsigned sum exceeds the width's range *)
      let expected_cf =
        match w with
        | Width.W64 -> Int64.unsigned_compare r a < 0
        | _ ->
            let full = Int64.add a b in
            Int64.unsigned_compare full (Width.mask w) > 0
      in
      (* overflow: same-sign operands, different-sign result *)
      let sa = Width.is_negative w a
      and sb = Width.is_negative w b
      and sr = Width.is_negative w r in
      let expected_of = sa = sb && sr <> sa in
      f.Flags.cf = expected_cf && f.Flags.of_ = expected_of
      && f.Flags.zf = Int64.equal r 0L
      && f.Flags.sf = sr)

let sub_flags_oracle_prop =
  QCheck2.Test.make ~name:"SUB flags match oracle" ~count:500
    QCheck2.Gen.(triple (oneofl Width.all) (map Int64.of_int int) (map Int64.of_int int))
    (fun (w, a, b) ->
      let a = Width.truncate w a and b = Width.truncate w b in
      let r = Width.truncate w (Int64.sub a b) in
      let f = Flags.of_sub w a b r in
      let sa = Width.is_negative w a
      and sb = Width.is_negative w b
      and sr = Width.is_negative w r in
      f.Flags.cf = (Int64.unsigned_compare a b < 0)
      && f.Flags.of_ = (sa <> sb && sr <> sa)
      && f.Flags.zf = Int64.equal r 0L
      && f.Flags.sf = sr)

(* A memory-destination binop must behave exactly like the explicit
   load / op / store sequence. *)
let rmw_decomposition_prop =
  QCheck2.Test.make ~name:"RMW = load; op; store" ~count:300
    QCheck2.Gen.(
      quad
        (oneofl [ Inst.Add; Inst.Sub; Inst.And; Inst.Or; Inst.Xor ])
        (oneofl Width.all)
        (map Int64.of_int int)
        (pair (int_bound 500) (map Int64.of_int int)))
    (fun (op, w, data, (off, init)) ->
      let off = off * 8 in
      let rmw =
        Program.flatten
          (Program.make
             [
               {
                 Program.label = "a";
                 body =
                   [ Inst.Binop (op, w, Operand.mem ~disp:off Reg.sandbox_base, Operand.Reg Reg.RBX) ];
               };
             ])
      in
      let decomposed =
        Program.flatten
          (Program.make
             [
               {
                 Program.label = "a";
                 body =
                   [
                     Inst.Mov (w, Operand.Reg Reg.RCX, Operand.mem ~disp:off Reg.sandbox_base);
                     Inst.Binop (op, w, Operand.Reg Reg.RCX, Operand.Reg Reg.RBX);
                     Inst.Mov (w, Operand.mem ~disp:off Reg.sandbox_base, Operand.Reg Reg.RCX);
                   ];
               };
             ])
      in
      let run flat =
        let st = State.create ~pages:1 () in
        State.write_reg st Reg.sandbox_base (Int64.of_int (Memory.base st.State.mem));
        State.write_reg st Reg.RBX data;
        Memory.write st.State.mem Width.W64 (Memory.base st.State.mem + off) init;
        ignore (Emulator.execute flat st);
        Memory.read st.State.mem Width.W64 (Memory.base st.State.mem + off), st.State.flags
      in
      let m1, f1 = run rmw in
      let m2, f2 = run decomposed in
      Int64.equal m1 m2 && Flags.equal f1 f2)

(* byte-level little-endian consistency across widths *)
let width_composition_prop =
  QCheck2.Test.make ~name:"wide reads compose from narrow reads" ~count:300
    QCheck2.Gen.(pair (map Int64.of_int int) (int_bound 400))
    (fun (v, off) ->
      let m = Memory.create ~pages:1 () in
      let addr = Memory.base m + (off * 8) in
      Memory.write m Width.W64 addr v;
      let b i = Memory.read m Width.W8 (addr + i) in
      let composed =
        List.fold_left
          (fun acc i -> Int64.logor acc (Int64.shift_left (b i) (8 * i)))
          0L [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      in
      Int64.equal composed v
      && Int64.equal (Memory.read m Width.W32 addr) (Width.truncate Width.W32 v)
      && Int64.equal (Memory.read m Width.W16 (addr + 2))
           (Width.truncate Width.W16 (Int64.shift_right_logical v 16)))

let test_exec_adc_sbb () =
  (* 128-bit add via ADD/ADC: low halves carry into the high halves *)
  let st = run_asm
      ~regs:[ Reg.RAX, -1L; Reg.RBX, 0L; Reg.RCX, 1L; Reg.RDX, 0L ] {|
  ADD RAX, RCX
  ADC RBX, RDX
|} in
  check64 "low" 0L (State.read_reg st Reg.RAX);
  check64 "high gets carry" 1L (State.read_reg st Reg.RBX);
  (* borrow chain with SBB *)
  let st = run_asm ~regs:[ Reg.RAX, 0L; Reg.RBX, 5L; Reg.RCX, 1L; Reg.RDX, 2L ] {|
  SUB RAX, RCX
  SBB RBX, RDX
|} in
  check64 "low borrow" (-1L) (State.read_reg st Reg.RAX);
  check64 "high minus borrow" 2L (State.read_reg st Reg.RBX)

let test_exec_rotates () =
  let st = run_asm ~regs:[ Reg.RAX, 0x8000000000000001L; Reg.RBX, 0x1L ] {|
  ROL RAX, 1
  ROR RBX, 1
|} in
  check64 "rol wraps msb" 0x3L (State.read_reg st Reg.RAX);
  check64 "ror wraps lsb" 0x8000000000000000L (State.read_reg st Reg.RBX);
  (* rotates preserve ZF: set ZF via CMP, rotate, then JZ must still see it *)
  let st = run_asm ~regs:[ Reg.RAX, 0L; Reg.RCX, 3L ] {|
.bb0:
  CMP RAX, 0
  ROL RCX, 2
  JZ .z
  MOV RDX, 1
  JMP .end
.z:
  MOV RDX, 2
.end:
  EXIT
|} in
  check64 "zf preserved across rotate" 2L (State.read_reg st Reg.RDX);
  check64 "rotate applied" 12L (State.read_reg st Reg.RCX)

let test_exec_bswap () =
  let st = run_asm ~regs:[ Reg.RAX, 0x1122334455667788L ] "BSWAP RAX" in
  check64 "bswap64" 0x8877665544332211L (State.read_reg st Reg.RAX)

let test_exec_movzx_movsx () =
  let st = run_asm ~mem:[ 0, Width.W16, 0x8001L ] {|
  MOVZX RAX, word ptr [R14]
  MOVSX RBX, word ptr [R14]
|} in
  check64 "movzx zero-extends" 0x8001L (State.read_reg st Reg.RAX);
  check64 "movsx sign-extends" 0xFFFFFFFFFFFF8001L (State.read_reg st Reg.RBX)

let test_exec_xchg () =
  let st = run_asm ~regs:[ Reg.RAX, 1L; Reg.RBX, 2L ] "XCHG RAX, RBX" in
  check64 "a" 2L (State.read_reg st Reg.RAX);
  check64 "b" 1L (State.read_reg st Reg.RBX);
  (* self-exchange is the identity *)
  let st = run_asm ~regs:[ Reg.RCX, 7L ] "XCHG RCX, RCX" in
  check64 "self" 7L (State.read_reg st Reg.RCX)

(* ADC against a 3-operand big-int oracle *)
let adc_oracle_prop =
  QCheck2.Test.make ~name:"ADC matches add-with-carry oracle" ~count:400
    QCheck2.Gen.(triple (map Int64.of_int int) (map Int64.of_int int) bool)
    (fun (a, b, c) ->
      let run c0 =
        let st = State.create ~pages:1 () in
        State.write_reg st Reg.RAX a;
        State.write_reg st Reg.RBX b;
        st.State.flags <- { Flags.initial with Flags.cf = c0 };
        let flat = Program.flatten (Asm.parse "ADC RAX, RBX") in
        ignore (Emulator.execute flat st);
        State.read_reg st Reg.RAX, st.State.flags.Flags.cf
      in
      let r, cf = run c in
      let expected = Int64.add (Int64.add a b) (if c then 1L else 0L) in
      (* carry oracle via unsigned comparison on the 3-way sum *)
      let s1 = Int64.add a b in
      let c1 = Int64.unsigned_compare s1 a < 0 in
      let c2 = c && Int64.equal s1 (-1L) in
      Int64.equal r expected && cf = (c1 || c2))

let () =
  Alcotest.run "emu-extra"
    [
      ( "extended-isa",
        [
          Alcotest.test_case "adc/sbb chains" `Quick test_exec_adc_sbb;
          Alcotest.test_case "rotates" `Quick test_exec_rotates;
          Alcotest.test_case "bswap" `Quick test_exec_bswap;
          Alcotest.test_case "movzx/movsx" `Quick test_exec_movzx_movsx;
          Alcotest.test_case "xchg" `Quick test_exec_xchg;
          QCheck_alcotest.to_alcotest adc_oracle_prop;
        ] );
      ( "oracles",
        [
          QCheck_alcotest.to_alcotest add_flags_oracle_prop;
          QCheck_alcotest.to_alcotest sub_flags_oracle_prop;
          QCheck_alcotest.to_alcotest rmw_decomposition_prop;
          QCheck_alcotest.to_alcotest width_composition_prop;
        ] );
    ]
