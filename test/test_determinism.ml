(* Determinism suite: identical (seed, config) campaigns must produce
   identical violation sets and identical deterministic telemetry counters
   across execution engines (pooled vs naive), and turning telemetry on
   must leave every trace byte-identical (trace invisibility).

   Deterministic counters are the uarch.* hardware counts and fuzzer.*
   campaign counts; engine.* metrics legitimately differ between backends
   (that is what they measure), and timers/histograms carry wall-clock
   time, so both are excluded from cross-engine comparison. *)

open Amulet
open Amulet_defenses
module Obs = Amulet_obs.Obs

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let spec engine =
  Run_spec.make ~defense:Defense.speclfb ~engine ~rounds:5 ~seed:17
    ~classify:false ~inputs:6 ~boosts:3 ~boot_insts:250 ()

let run_campaign ?(telemetry = true) engine =
  let metrics = if telemetry then Obs.create () else Obs.noop in
  Campaign.run ~metrics (spec engine)

(* Everything that identifies a violation, including both raw trace hashes
   — if telemetry or the engine perturbed a single trace byte, the key
   changes. *)
let violation_keys r =
  List.map
    (fun (v : Violation.t) ->
      ( v.Violation.ctrace_hash,
        Utrace.hash v.Violation.trace_a,
        Utrace.hash v.Violation.trace_b,
        v.Violation.program_text ))
    r.Campaign.violations

let deterministic_counters r =
  (Obs.Snapshot.filter
     (fun n -> has_prefix "uarch." n || has_prefix "fuzzer." n)
     r.Campaign.metrics)
    .Obs.Snapshot.counters

let test_cross_engine () =
  let rp = run_campaign Engine.Pooled in
  let rn = run_campaign Engine.Naive in
  checkb "violation sets identical across engines" true
    (violation_keys rp = violation_keys rn);
  checki "programs_run identical" rp.Campaign.programs_run rn.Campaign.programs_run;
  checki "test_cases identical" rp.Campaign.test_cases rn.Campaign.test_cases;
  checki "discards identical" rp.Campaign.discarded_programs
    rn.Campaign.discarded_programs;
  let cp = deterministic_counters rp and cn = deterministic_counters rn in
  checkb "some uarch/fuzzer counters recorded" true (cp <> []);
  checkb "uarch.* and fuzzer.* counters identical across engines" true (cp = cn);
  checkb "hardware counters are live" true
    (Obs.Snapshot.counter_value rp.Campaign.metrics "uarch.insts.retired" > 0
    && Obs.Snapshot.counter_value rp.Campaign.metrics "uarch.cycles" > 0)

let test_telemetry_invisible () =
  let on = run_campaign ~telemetry:true Engine.Pooled in
  let off = run_campaign ~telemetry:false Engine.Pooled in
  checkb "telemetry off produced no metrics" true
    (off.Campaign.metrics.Obs.Snapshot.counters = []);
  checkb "violation sets (incl. trace hashes) unchanged by telemetry" true
    (violation_keys on = violation_keys off);
  checki "programs_run unchanged" on.Campaign.programs_run off.Campaign.programs_run;
  checki "test_cases unchanged" on.Campaign.test_cases off.Campaign.test_cases

let test_same_engine_repeatable () =
  let a = run_campaign Engine.Pooled in
  let b = run_campaign Engine.Pooled in
  (* same backend: even the engine.* counters must repeat exactly *)
  let counters r =
    (Obs.Snapshot.filter
       (fun n ->
         has_prefix "uarch." n || has_prefix "fuzzer." n
         || has_prefix "engine." n)
       r.Campaign.metrics)
      .Obs.Snapshot.counters
  in
  checkb "full counter set repeats" true (counters a = counters b);
  checkb "violations repeat" true (violation_keys a = violation_keys b)

(* ------------------------------------------------------------------ *)
(* Hot-loop equivalence: the optimized pipeline (ring-buffer ROB,
   wakeup scheduling, pre-decoded programs) against its frozen
   pre-optimization snapshot (Pipeline_legacy), and the fused ctrace
   fast path against plain per-instruction emulation.                  *)
(* ------------------------------------------------------------------ *)

open Amulet_isa
open Amulet_contracts
module Generator = Amulet_corpus.Generator

(* the released (bug-bearing) presets the paper's campaigns target *)
let released =
  [
    Defense.baseline;
    Defense.invisispec;
    Defense.cleanupspec;
    Defense.stt;
    Defense.speclfb;
  ]

let gen_cases ?(pages = 1) ~programs ~inputs ~seed () =
  let rng = Rng.create ~seed in
  Array.init programs (fun _ ->
      let flat = Generator.generate_flat rng in
      let ins = Array.init inputs (fun _ -> Input.generate rng ~pages) in
      (flat, ins))

let outcomes_of ?sim_config ?(kind = Engine.Pooled) d cases =
  let eng =
    Engine.create ~boot_insts:100 ?sim_config ~kind ~mode:Executor.Opt d
      (Stats.create ())
  in
  Array.map (fun (flat, ins) -> (Engine.run_batch eng flat ins).Engine.outcomes)
    cases

let check_outcomes_equal ~what a b =
  Array.iteri
    (fun p oa ->
      let ob = b.(p) in
      checki (what ^ ": same outcome count") (Array.length oa) (Array.length ob);
      Array.iteri
        (fun i xa ->
          let ctx = Printf.sprintf "%s: program %d input %d" what p i in
          match (xa, ob.(i)) with
          | Some (xa : Executor.outcome), Some xb ->
              checkb (ctx ^ ": utrace byte-identical") true
                (Utrace.equal xa.Executor.trace xb.Executor.trace);
              checki (ctx ^ ": cycles") xa.Executor.cycles xb.Executor.cycles;
              checkb (ctx ^ ": sim_stats") true
                (xa.Executor.sim_stats = xb.Executor.sim_stats)
          | None, None -> ()
          | _ -> Alcotest.fail (ctx ^ ": one engine faulted, the other did not"))
        oa)
    a

(* Pooled and naive engines must agree byte-for-byte on every released
   preset (the cross-engine guarantee the campaign service relies on). *)
let test_presets_cross_engine () =
  List.iter
    (fun (d : Defense.t) ->
      let cases =
        gen_cases ~pages:d.Defense.sandbox_pages ~programs:2 ~inputs:4 ~seed:91
          ()
      in
      let pooled = outcomes_of ~kind:Engine.Pooled d cases in
      let naive = outcomes_of ~kind:Engine.Naive d cases in
      check_outcomes_equal ~what:(d.Defense.name ^ " pooled-vs-naive") pooled
        naive)
    released

(* The frozen pre-optimization pipeline is the differential oracle for the
   hot-loop rewrite: same traces, same cycle counts, same pipeline stats. *)
let test_legacy_hot_loop_oracle () =
  List.iter
    (fun (d : Defense.t) ->
      let cases =
        gen_cases ~pages:d.Defense.sandbox_pages ~programs:2 ~inputs:6 ~seed:92
          ()
      in
      let legacy_cfg =
        { (Defense.config d) with Amulet_uarch.Config.legacy_hot_loop = true }
      in
      let optim = outcomes_of d cases in
      let legacy = outcomes_of ~sim_config:legacy_cfg d cases in
      check_outcomes_equal ~what:(d.Defense.name ^ " optimized-vs-legacy") optim
        legacy)
    released

(* The straight-line ctrace fast path (fused basic blocks over a pre-decoded
   program) must be observation-identical to plain stepping. *)
let test_ctrace_fast_slow () =
  let rng = Rng.create ~seed:93 in
  for _ = 1 to 4 do
    let flat = Generator.generate_flat rng in
    let decoded = Decoded.decode flat in
    for _ = 1 to 3 do
      let input = Input.generate rng ~pages:1 in
      let fast =
        Leakage_model.collect ~decoded Contract.ct_cond flat (Input.to_state input)
      in
      let slow = Leakage_model.collect Contract.ct_cond flat (Input.to_state input) in
      checkb "ctrace byte-identical" true
        (Observation.equal_trace fast.Leakage_model.ctrace
           slow.Leakage_model.ctrace);
      checkb "ctrace hash" true
        (fast.Leakage_model.ctrace_hash = slow.Leakage_model.ctrace_hash);
      checkb "shape hash" true
        (fast.Leakage_model.shape_hash = slow.Leakage_model.shape_hash);
      checkb "final state hash" true
        (fast.Leakage_model.final_state_hash = slow.Leakage_model.final_state_hash);
      checki "arch steps" fast.Leakage_model.arch_steps slow.Leakage_model.arch_steps;
      checki "spec steps" fast.Leakage_model.spec_steps slow.Leakage_model.spec_steps;
      checkb "fault" true (fast.Leakage_model.fault = slow.Leakage_model.fault)
    done
  done

(* Steady-state allocation regression guard: once the pooled engine is warm
   (arena grown, program decoded, scratch buffers sized), each additional
   input must stay within a fixed minor-heap budget.  The pre-optimization
   hot loop allocates ~100k minor words per input (per-run decode plus
   per-cycle scan closures); the optimized loop measures ~9k.  The bound
   sits between the two with headroom on both sides. *)
let test_gc_steady_state () =
  let cases = gen_cases ~programs:2 ~inputs:12 ~seed:94 () in
  let inputs_total = 2 * 12 in
  let eng =
    Engine.create ~boot_insts:100 ~mode:Executor.Opt Defense.speclfb
      (Stats.create ())
  in
  Array.iter (fun (flat, ins) -> ignore (Engine.run_batch eng flat ins)) cases;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  Array.iter (fun (flat, ins) -> ignore (Engine.run_batch eng flat ins)) cases;
  let per_input = (Gc.minor_words () -. w0) /. float_of_int inputs_total in
  checkb
    (Printf.sprintf "steady-state minor words per input (%.0f) under 25000"
       per_input)
    true
    (per_input < 25_000.)

let () =
  Alcotest.run "determinism"
    [
      ( "telemetry",
        [
          Alcotest.test_case "cross-engine counters + violations" `Slow
            test_cross_engine;
          Alcotest.test_case "trace invisibility" `Slow test_telemetry_invisible;
          Alcotest.test_case "same-engine repeatability" `Slow
            test_same_engine_repeatable;
        ] );
      ( "hot loop",
        [
          Alcotest.test_case "released presets cross-engine" `Slow
            test_presets_cross_engine;
          Alcotest.test_case "legacy hot-loop oracle" `Slow
            test_legacy_hot_loop_oracle;
          Alcotest.test_case "ctrace fast path identical" `Quick
            test_ctrace_fast_slow;
          Alcotest.test_case "steady-state allocation bound" `Quick
            test_gc_steady_state;
        ] );
    ]
