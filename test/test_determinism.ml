(* Determinism suite: identical (seed, config) campaigns must produce
   identical violation sets and identical deterministic telemetry counters
   across execution engines (pooled vs naive), and turning telemetry on
   must leave every trace byte-identical (trace invisibility).

   Deterministic counters are the uarch.* hardware counts and fuzzer.*
   campaign counts; engine.* metrics legitimately differ between backends
   (that is what they measure), and timers/histograms carry wall-clock
   time, so both are excluded from cross-engine comparison. *)

open Amulet
open Amulet_defenses
module Obs = Amulet_obs.Obs

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let spec engine =
  Run_spec.make ~defense:Defense.speclfb ~engine ~rounds:5 ~seed:17
    ~classify:false ~inputs:6 ~boosts:3 ~boot_insts:250 ()

let run_campaign ?(telemetry = true) engine =
  let metrics = if telemetry then Obs.create () else Obs.noop in
  Campaign.run ~metrics (spec engine)

(* Everything that identifies a violation, including both raw trace hashes
   — if telemetry or the engine perturbed a single trace byte, the key
   changes. *)
let violation_keys r =
  List.map
    (fun (v : Violation.t) ->
      ( v.Violation.ctrace_hash,
        Utrace.hash v.Violation.trace_a,
        Utrace.hash v.Violation.trace_b,
        v.Violation.program_text ))
    r.Campaign.violations

let deterministic_counters r =
  (Obs.Snapshot.filter
     (fun n -> has_prefix "uarch." n || has_prefix "fuzzer." n)
     r.Campaign.metrics)
    .Obs.Snapshot.counters

let test_cross_engine () =
  let rp = run_campaign Engine.Pooled in
  let rn = run_campaign Engine.Naive in
  checkb "violation sets identical across engines" true
    (violation_keys rp = violation_keys rn);
  checki "programs_run identical" rp.Campaign.programs_run rn.Campaign.programs_run;
  checki "test_cases identical" rp.Campaign.test_cases rn.Campaign.test_cases;
  checki "discards identical" rp.Campaign.discarded_programs
    rn.Campaign.discarded_programs;
  let cp = deterministic_counters rp and cn = deterministic_counters rn in
  checkb "some uarch/fuzzer counters recorded" true (cp <> []);
  checkb "uarch.* and fuzzer.* counters identical across engines" true (cp = cn);
  checkb "hardware counters are live" true
    (Obs.Snapshot.counter_value rp.Campaign.metrics "uarch.insts.retired" > 0
    && Obs.Snapshot.counter_value rp.Campaign.metrics "uarch.cycles" > 0)

let test_telemetry_invisible () =
  let on = run_campaign ~telemetry:true Engine.Pooled in
  let off = run_campaign ~telemetry:false Engine.Pooled in
  checkb "telemetry off produced no metrics" true
    (off.Campaign.metrics.Obs.Snapshot.counters = []);
  checkb "violation sets (incl. trace hashes) unchanged by telemetry" true
    (violation_keys on = violation_keys off);
  checki "programs_run unchanged" on.Campaign.programs_run off.Campaign.programs_run;
  checki "test_cases unchanged" on.Campaign.test_cases off.Campaign.test_cases

let test_same_engine_repeatable () =
  let a = run_campaign Engine.Pooled in
  let b = run_campaign Engine.Pooled in
  (* same backend: even the engine.* counters must repeat exactly *)
  let counters r =
    (Obs.Snapshot.filter
       (fun n ->
         has_prefix "uarch." n || has_prefix "fuzzer." n
         || has_prefix "engine." n)
       r.Campaign.metrics)
      .Obs.Snapshot.counters
  in
  checkb "full counter set repeats" true (counters a = counters b);
  checkb "violations repeat" true (violation_keys a = violation_keys b)

let () =
  Alcotest.run "determinism"
    [
      ( "telemetry",
        [
          Alcotest.test_case "cross-engine counters + violations" `Slow
            test_cross_engine;
          Alcotest.test_case "trace invisibility" `Slow test_telemetry_invisible;
          Alcotest.test_case "same-engine repeatability" `Slow
            test_same_engine_repeatable;
        ] );
    ]
