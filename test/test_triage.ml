(* Triage pipeline tests: clustering is stable under shard-order
   permutation, bisection names the planted mechanism on the crafted STT
   corpus (paper Figure 9), PoC files round-trip byte-identically and
   replay to the recorded divergence, and an empty/clean campaign
   triages to an empty report. *)

open Amulet
open Amulet_isa
open Amulet_defenses

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Corpus builders                                                     *)
(* ------------------------------------------------------------------ *)

let find_violations ?(seed = 17) ?(want = 1) defense =
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense ~seed ~inputs:8 ~boosts:5 ~boot_insts:300 ())
  in
  let rec go acc n =
    if List.length acc >= want || n = 0 then acc
    else
      match Fuzzer.round fz with
      | Fuzzer.Found v -> go (v :: acc) (n - 1)
      | _ -> go acc (n - 1)
  in
  match go [] 40 with
  | [] -> Alcotest.failf "no %s violation found" defense.Defense.name
  | vs -> vs

let speclfb_finding () =
  let v = List.hd (find_violations Defense.speclfb) in
  Triage.of_violation v

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)
(* ------------------------------------------------------------------ *)

let test_explain_reproduces () =
  let f = speclfb_finding () in
  checkb "reproduced" true (f.Triage.status = Triage.Reproduced);
  checkb "classified" true
    (f.Triage.leak_class = Some Analysis.First_load_unprotected_uv6);
  checkb "signature carries the defense" true
    (String.length f.Triage.signature > 8
    && String.sub f.Triage.signature 0 7 = "speclfb");
  checkb "equal contract traces" true f.Triage.ctrace.Triage.equal;
  checkb "utrace diff nonempty" true (f.Triage.utrace_diff <> [])

(* satellite: a violation that no longer reproduces must surface an
   explicit not_reproduced status (the CLI maps it to exit code 2) *)
let test_explain_not_reproduced () =
  let flat =
    Program.flatten (Asm.parse ".bb0:\n  AND RCX, 0b111111000000\n  MOV RBX, qword ptr [R14 + RCX]\n  EXIT\n")
  in
  let rng = Rng.create ~seed:3 in
  let input = Input.generate rng ~pages:Defense.baseline.Defense.sandbox_pages in
  let stored =
    {
      Violation_io.defense_name = "baseline";
      contract_name = "CT-SEQ";
      program = flat;
      (* identical inputs cannot diverge: the finding is dead by design *)
      input_a = input;
      input_b = input;
      signature = None;
      identity = None;
    }
  in
  let f = Triage.explain stored in
  checkb "not reproduced" true (f.Triage.status = Triage.Not_reproduced);
  checks "status name" "not_reproduced" (Triage.status_name f.Triage.status);
  checkb "no class" true (f.Triage.leak_class = None);
  checkb "dead signature" true
    (String.length f.Triage.signature > 0
    && String.sub f.Triage.signature (String.length f.Triage.signature - 1) 1
       <> "/");
  (* the one-element view amulet explain builds: an empty cluster list *)
  let report = { Triage.clusters = []; total = 1; not_reproduced = 1 } in
  let json = Triage.report_to_json report in
  checkb "schema" true (contains json "\"schema\":\"amulet.triage/1\"");
  checkb "dead finding counted" true (contains json "\"not_reproduced\":1")

(* ------------------------------------------------------------------ *)
(* Cluster stability under permutation                                 *)
(* ------------------------------------------------------------------ *)

let test_cluster_permutation_stable () =
  let vs = find_violations ~seed:17 ~want:3 Defense.speclfb in
  let extra =
    match Reproducers.hunt ~seed:7 Reproducers.figure9 with
    | Some v -> [ v ]
    | None -> []
  in
  let findings =
    List.mapi
      (fun i v -> (Printf.sprintf "shard%d" i, Triage.of_violation v))
      (vs @ extra)
  in
  let as_key c =
    ( c.Triage.rank,
      c.Triage.cluster_signature,
      c.Triage.representative.Triage.program_text,
      c.Triage.members,
      c.Triage.count )
  in
  let a = List.map as_key (Triage.cluster findings) in
  let b = List.map as_key (Triage.cluster (List.rev findings)) in
  let rotated = match findings with [] -> [] | x :: tl -> tl @ [ x ] in
  let c = List.map as_key (Triage.cluster rotated) in
  checkb "reverse order: identical report" true (a = b);
  checkb "rotated order: identical report" true (a = c);
  checkb "ranks are 1..n" true
    (List.mapi (fun i _ -> i + 1) a = List.map (fun (r, _, _, _, _) -> r) a)

(* ------------------------------------------------------------------ *)
(* Bisection on the crafted STT corpus (Figure 9)                      *)
(* ------------------------------------------------------------------ *)

let test_figure9_bisection_names_mechanism () =
  match Reproducers.hunt ~seed:7 Reproducers.figure9 with
  | None -> Alcotest.fail "figure 9 hunt found nothing"
  | Some v -> (
      let f = Triage.of_violation v in
      checkb "reproduced" true (f.Triage.status = Triage.Reproduced);
      let f = Triage.bisect f in
      match f.Triage.mechanism with
      | None -> Alcotest.fail "bisection named no mechanism"
      | Some m ->
          checks "planted mechanism" "stt_patched_store_tlb"
            m.Triage.mech_name;
          checkb "a patched flag" true
            (m.Triage.mech_kind = Triage.Patched_flag);
          checkb "tried at least one flip" true (m.Triage.flips_tried >= 1))

(* ------------------------------------------------------------------ *)
(* PoC round-trip and replay                                           *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let d = Filename.temp_file "amulet-triage" "" in
  Sys.remove d;
  Violation_io.mkdir_p d;
  d

let test_poc_roundtrip_and_replay () =
  let f = speclfb_finding () in
  let cluster =
    {
      Triage.rank = 1;
      cluster_signature = f.Triage.signature;
      representative = f;
      members = [ "shard0" ];
      count = 1;
    }
  in
  let p = Triage.Poc.of_cluster cluster in
  let s1 = Triage.Poc.to_string p in
  let s2 = Triage.Poc.to_string (Triage.Poc.parse (String.split_on_char '\n' s1)) in
  checkb "to_string/parse round-trips byte-identically" true (s1 = s2);
  let dir = temp_dir () in
  let path = Triage.Poc.write ~dir cluster in
  let raw = In_channel.with_open_text path In_channel.input_all in
  checkb "written file is the canonical rendering" true (raw = s1);
  (* the reproduce path: load the file back and replay it *)
  let loaded = Triage.Poc.load path in
  checks "signature survives" p.Triage.Poc.signature
    loaded.Triage.Poc.signature;
  (match Triage.Poc.replay loaded with
  | `Match -> ()
  | `Not_reproduced -> Alcotest.fail "PoC did not reproduce on replay"
  | `Diff_mismatch d ->
      Alcotest.failf "PoC diverged differently: %s" (String.concat "; " d));
  (* triage's own loader accepts PoC files as violation sources *)
  let stream = Triage.load [ dir ] in
  checki "PoC picked up by Triage.load" 1 (List.length stream);
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Empty / clean campaigns                                             *)
(* ------------------------------------------------------------------ *)

let test_empty_campaign_triage () =
  let report = Triage.run [] in
  checki "no clusters" 0 (List.length report.Triage.clusters);
  checki "nothing consumed" 0 report.Triage.total;
  checki "nothing dead" 0 report.Triage.not_reproduced;
  let json = Triage.report_to_json report in
  checkb "schema present" true (contains json "\"schema\":\"amulet.triage/1\"");
  checkb "empty cluster array" true (contains json "\"clusters\":[]");
  (* an empty directory is a clean campaign journal dir *)
  let dir = temp_dir () in
  let stream = Triage.load [ dir ] in
  checki "clean dir loads empty" 0 (List.length stream);
  Unix.rmdir dir

let () =
  Alcotest.run "triage"
    [
      ( "explain",
        [
          Alcotest.test_case "reproduces + signs" `Slow test_explain_reproduces;
          Alcotest.test_case "not_reproduced surfaces" `Quick
            test_explain_not_reproduced;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "permutation stable" `Slow
            test_cluster_permutation_stable;
        ] );
      ( "bisect",
        [
          Alcotest.test_case "figure 9 names stt_patched_store_tlb" `Slow
            test_figure9_bisection_names_mechanism;
        ] );
      ( "poc",
        [
          Alcotest.test_case "round-trip + replay" `Slow
            test_poc_roundtrip_and_replay;
        ] );
      ( "empty",
        [ Alcotest.test_case "clean campaign" `Quick test_empty_campaign_triage ] );
    ]
