(* Robustness self-tests for the campaign supervision layer: chaos
   injection, per-round deadlines, quarantine, crash-safe journaling with
   resume, and fault-isolated parallel campaigns. *)

open Amulet
open Amulet_defenses

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* small-budget spec shared by the supervision tests; per-test knobs ride
   on Run_spec.make's optional arguments *)
let small_spec ~rounds ~seed ?stop_after ?deadline_ms ?quarantine_dir ?chaos
    ?isolate_rounds () =
  Run_spec.make ~defense:Defense.baseline ~rounds ~seed ?stop_after
    ~classify:false ~inputs:4 ~boosts:2 ~boot_insts:200 ?deadline_ms
    ?quarantine_dir ?chaos ?isolate_rounds ()

(* a fresh path that does not exist yet (the fuzzer mkdir_p's it) *)
let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Fault taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

let test_fault_classification () =
  let check_class want s =
    Alcotest.check Alcotest.string "classified" (Fault.class_name want)
      (Fault.class_name (Fault.class_of (Fault.of_run_fault s)))
  in
  check_class Fault.C_fuel_exhausted "pipeline deadlock";
  check_class Fault.C_fuel_exhausted "cycle limit exceeded";
  check_class Fault.C_fuel_exhausted "step limit exceeded";
  check_class Fault.C_emu_fault "control flow escaped code region at index 3";
  checkb "exn classification: injected" true
    (Fault.class_of (Fault.of_exn (Fault.Injected_crash "x")) = Fault.C_injected);
  checkb "exn classification: crash" true
    (Fault.class_of (Fault.of_exn Not_found) = Fault.C_instance_crash);
  (* class names round-trip (the journal serializes them) *)
  List.iter
    (fun c ->
      checkb (Fault.class_name c ^ " round-trips") true
        (Fault.class_of_name (Fault.class_name c) = Some c))
    Fault.all_classes

let test_fault_counters () =
  let c = Fault.Counters.create () in
  Fault.Counters.record c Fault.Empty_population;
  Fault.Counters.record c Fault.Empty_population;
  Fault.Counters.record c (Fault.Injected "x");
  checki "total" 3 (Fault.Counters.total c);
  checki "per class" 2 (Fault.Counters.get c Fault.C_empty_population);
  let d = Fault.Counters.create () in
  Fault.Counters.add_list d (Fault.Counters.to_list c);
  Fault.Counters.merge d c;
  checki "merged total" 6 (Fault.Counters.total d)

(* ------------------------------------------------------------------ *)
(* Chaos: a campaign with injected crashes/timeouts/faults survives    *)
(* ------------------------------------------------------------------ *)

let test_chaos_campaign_survives () =
  let qdir = temp_dir "amulet-quarantine" in
  (* p = 0.02 per test case for each of crash/timeout/sim-fault: with ~12
     test cases per round, well over 5% of the 50 rounds misbehave *)
  let chaos = Fault.injector ~p_crash:0.02 ~p_timeout:0.02 ~p_sim_fault:0.02 ~seed:99 () in
  (* zero uncaught exceptions: this call returning IS the property *)
  let r =
    Campaign.run (small_spec ~rounds:50 ~seed:11 ~chaos ~quarantine_dir:qdir ())
  in
  checki "all 50 rounds completed" 50 r.Campaign.programs_run;
  checkb "some rounds were discarded" true (r.Campaign.discarded_programs > 0);
  (* every discarded round was classified: per-class counts add up *)
  let total_faults =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.Campaign.fault_counts
  in
  checki "fault counts match discards" r.Campaign.discarded_programs total_faults;
  checkb "injected faults were counted" true
    (List.mem_assoc Fault.C_injected r.Campaign.fault_counts
    || List.mem_assoc Fault.C_deadline_exceeded r.Campaign.fault_counts
    || List.mem_assoc Fault.C_instance_crash r.Campaign.fault_counts);
  (* quarantine corpus holds the evidence *)
  checkb "quarantine corpus non-empty" true
    (Sys.file_exists qdir && Array.length (Sys.readdir qdir) > 0);
  checki "quarantined counter matches corpus" r.Campaign.quarantined
    (Array.length (Sys.readdir qdir));
  rm_rf qdir

let test_deadline_degrades_to_discard () =
  let r = Campaign.run (small_spec ~rounds:5 ~seed:3 ~deadline_ms:0. ()) in
  checki "all rounds ran" 5 r.Campaign.programs_run;
  checki "all rounds discarded" 5 r.Campaign.discarded_programs;
  checki "all classified as deadline" 5
    (Option.value
       (List.assoc_opt Fault.C_deadline_exceeded r.Campaign.fault_counts)
       ~default:0)

(* ------------------------------------------------------------------ *)
(* Parallel supervision: one crashing instance loses nothing else      *)
(* ------------------------------------------------------------------ *)

let test_parallel_survives_crashing_instance () =
  let n_programs = 3 in
  let spec = small_spec ~rounds:n_programs ~seed:5 () in
  (* instance 0 crashes on its first test case (isolation off, so the
     injected crash escapes the round and kills the whole domain — the
     regression this guards: Domain.join used to rethrow and drop every
     healthy instance's results) *)
  let crashing =
    small_spec ~rounds:n_programs ~seed:5 ~isolate_rounds:false
      ~chaos:(Fault.injector ~p_crash:1.0 ~seed:1 ())
      ()
  in
  let instance_spec i =
    if i = 0 then crashing
    else Run_spec.with_seed spec (spec.Run_spec.seed + (i * 7919))
  in
  let r = Campaign.run_parallel ~instances:3 ~retries:0 ~instance_spec spec in
  checki "survivors' programs merged" (2 * n_programs) r.Campaign.programs_run;
  checkb "test cases from survivors" true (r.Campaign.test_cases > 0);
  checki "crash recorded in fault counts" 1
    (Option.value
       (List.assoc_opt Fault.C_instance_crash r.Campaign.fault_counts)
       ~default:0)

let test_parallel_retry_recovers () =
  (* every instance crashes on attempt 0 and 1 seeds?  No — chaos draws are
     per-test-case from the injector seed, so a p=1 injector crashes every
     attempt.  Instead: healthy instances with retries simply succeed. *)
  let r =
    Campaign.run_parallel ~instances:2 ~retries:2 (small_spec ~rounds:2 ~seed:8 ())
  in
  checki "both instances completed" 4 r.Campaign.programs_run

(* When every instance exhausts its retries the campaign must degrade to a
   structured failed result — crashes classified in fault_counts, zero
   work reported — never an exception that aborts the caller. *)
let test_parallel_all_crash_structured () =
  let crashing =
    small_spec ~rounds:2 ~seed:5 ~isolate_rounds:false
      ~chaos:(Fault.injector ~p_crash:1.0 ~seed:1 ())
      ()
  in
  let r =
    Campaign.run_parallel ~instances:2 ~retries:1
      ~instance_spec:(fun _ -> crashing)
      crashing
  in
  checki "no programs completed" 0 r.Campaign.programs_run;
  checkb "no violations" true (r.Campaign.violations = []);
  checks "contract name still derived" "CT-SEQ" r.Campaign.contract_name;
  (* 2 instances x (1 attempt + 1 retry) crashes, all classified *)
  checki "every crash classified" 4
    (Option.value
       (List.assoc_opt Fault.C_instance_crash r.Campaign.fault_counts)
       ~default:0);
  checkb "duration recorded" true (r.Campaign.duration >= 0.)

(* ------------------------------------------------------------------ *)
(* Journaling: roundtrip, atomicity, resume determinism                *)
(* ------------------------------------------------------------------ *)

let find_violation defense =
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense ~seed:17 ~inputs:8 ~boosts:5 ~boot_insts:300 ())
  in
  let rec go n =
    if n = 0 then Alcotest.fail "no violation found"
    else match Fuzzer.round fz with Fuzzer.Found v -> v | _ -> go (n - 1)
  in
  go 20

let test_journal_roundtrip () =
  let v = find_violation Defense.speclfb in
  let j =
    {
      Journal.seed = 7;
      n_programs = 40;
      defense_name = "speclfb";
      contract_name = "CT-SEQ";
      programs_run = 13;
      discarded = 2;
      test_cases = 421;
      fault_counts = [ (Fault.C_emu_fault, 1); (Fault.C_deadline_exceeded, 1) ];
      detection_times = [ 0.5; 1.25 ];
      corpus = None;
      violations = [ Violation_io.of_violation v ];
    }
  in
  let path = Filename.temp_file "amulet" ".journal" in
  Journal.save j path;
  let l = Journal.load path in
  Sys.remove path;
  checki "seed" j.Journal.seed l.Journal.seed;
  checki "n_programs" j.Journal.n_programs l.Journal.n_programs;
  checki "programs_run" j.Journal.programs_run l.Journal.programs_run;
  checki "discarded" j.Journal.discarded l.Journal.discarded;
  checki "test_cases" j.Journal.test_cases l.Journal.test_cases;
  checkb "fault counts survive" true (l.Journal.fault_counts = j.Journal.fault_counts);
  checki "detection times survive" 2 (List.length l.Journal.detection_times);
  checki "violations survive" 1 (List.length l.Journal.violations);
  let sv = List.hd l.Journal.violations in
  checkb "violation program survives" true
    (sv.Violation_io.program.Amulet_isa.Program.code
    = v.Violation.program.Amulet_isa.Program.code);
  checkb "violation inputs survive" true
    (Input.equal sv.Violation_io.input_a v.Violation.input_a)

let test_journal_rejects_garbage () =
  let path = Filename.temp_file "amulet" ".journal" in
  Out_channel.with_open_text path (fun oc -> output_string oc "not a journal\n");
  (match Journal.load path with
  | exception Journal.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error");
  Sys.remove path

let test_checkpoint_resume_determinism () =
  let mk n = small_spec ~rounds:n ~seed:2024 () in
  (* the reference: one uninterrupted 10-round campaign *)
  let full = Campaign.run (mk 10) in
  (* the "killed" campaign: 4 rounds under a journal (as if killed at the
     round-4 checkpoint), then resumed to the full 10 *)
  let path = Filename.temp_file "amulet" ".journal" in
  ignore (Campaign.run ~journal_path:path ~checkpoint_every:1 (mk 4));
  let j = Journal.load path in
  checki "journal saw 4 rounds" 4 j.Journal.programs_run;
  let resumed = Campaign.run ~journal_path:path ~resume:j (mk 10) in
  Sys.remove path;
  checki "same programs_run" full.Campaign.programs_run resumed.Campaign.programs_run;
  checki "same violation count"
    (List.length full.Campaign.violations)
    (List.length resumed.Campaign.violations);
  checki "same test cases" full.Campaign.test_cases resumed.Campaign.test_cases;
  checki "same discards" full.Campaign.discarded_programs
    resumed.Campaign.discarded_programs

let () =
  Alcotest.run "robustness"
    [
      ( "fault",
        [
          Alcotest.test_case "classification" `Quick test_fault_classification;
          Alcotest.test_case "counters" `Quick test_fault_counters;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "campaign survives injection" `Slow
            test_chaos_campaign_survives;
          Alcotest.test_case "deadline degrades to discard" `Quick
            test_deadline_degrades_to_discard;
        ] );
      ( "parallel-supervision",
        [
          Alcotest.test_case "crashing instance keeps survivors" `Slow
            test_parallel_survives_crashing_instance;
          Alcotest.test_case "healthy instances with retries" `Slow
            test_parallel_retry_recovers;
          Alcotest.test_case "all-crash structured result" `Slow
            test_parallel_all_crash_structured;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Slow test_journal_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_journal_rejects_garbage;
          Alcotest.test_case "checkpoint/resume determinism" `Slow
            test_checkpoint_resume_determinism;
        ] );
    ]
