(* Engine API tests: the pooled (snapshot/restore) backend must be
   trace-indistinguishable from the naive (rebuild) backend, checkpoint
   rewinds must be deterministic across arbitrary reuse counts, and chaos
   injection must classify faults correctly through the batched path. *)

open Amulet
open Amulet_defenses

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* Small warm boot keeps the suite fast; equivalence must hold regardless. *)
let boot = 200

let gen_case ~(defense : Defense.t) seed =
  let rng = Rng.create ~seed in
  let cfg =
    { Generator.default with Generator.sandbox_pages = defense.Defense.sandbox_pages }
  in
  let flat = Generator.generate_flat ~cfg rng in
  let inputs =
    Array.init 4 (fun _ -> Input.generate rng ~pages:defense.Defense.sandbox_pages)
  in
  (flat, inputs)

(* ------------------------------------------------------------------ *)
(* Pooled vs naive: byte-identical traces                              *)
(* ------------------------------------------------------------------ *)

let same_fault a b =
  match (a, b) with
  | None, None -> true
  | Some (fa, ia), Some (fb, ib) ->
      Fault.class_of fa = Fault.class_of fb && Input.equal ia ib
  | _ -> false

let batches_agree name (a : Engine.batch) (b : Engine.batch) =
  checki (name ^ " length") (Array.length a.Engine.outcomes)
    (Array.length b.Engine.outcomes);
  checkb (name ^ " fault") true (same_fault a.Engine.batch_fault b.Engine.batch_fault);
  Array.iteri
    (fun i oa ->
      match (oa, b.Engine.outcomes.(i)) with
      | None, None -> ()
      | Some oa, Some ob ->
          checkb
            (Printf.sprintf "%s trace[%d]" name i)
            true
            (Utrace.equal oa.Executor.trace ob.Executor.trace)
      | _ -> Alcotest.failf "%s outcome[%d] presence mismatch" name i)
    a.Engine.outcomes

let test_batch_equivalence () =
  List.iter
    (fun mode ->
      List.iter
        (fun (defense : Defense.t) ->
          let naive =
            Engine.create ~boot_insts:boot ~kind:Engine.Naive ~mode defense
              (Stats.create ())
          in
          let pooled =
            Engine.create ~boot_insts:boot ~kind:Engine.Pooled ~mode defense
              (Stats.create ())
          in
          (* several programs through the SAME engines: the pooled
             checkpoint is reused across batches, so any drift accumulates
             and the later seeds catch it *)
          for seed = 1 to 3 do
            let flat, inputs = gen_case ~defense (97 * seed) in
            let a = Engine.run_batch naive flat inputs in
            let b = Engine.run_batch pooled flat inputs in
            batches_agree
              (Printf.sprintf "%s/%s/seed%d" defense.Defense.name
                 (Executor.mode_name mode) seed)
              a b
          done)
        [ Defense.baseline; Defense.invisispec; Defense.cleanupspec; Defense.stt ])
    [ Executor.Naive; Executor.Opt ]

let test_reproducer_equivalence () =
  let defense = Defense.cleanupspec in
  let flat = Reproducers.flat Reproducers.uv3 in
  let rng = Rng.create ~seed:5 in
  let inputs = Array.init 6 (fun _ -> Input.generate rng ~pages:1) in
  List.iter
    (fun mode ->
      let naive =
        Engine.create ~boot_insts:boot ~kind:Engine.Naive ~mode defense (Stats.create ())
      in
      let pooled =
        Engine.create ~boot_insts:boot ~kind:Engine.Pooled ~mode defense (Stats.create ())
      in
      batches_agree
        ("uv3/" ^ Executor.mode_name mode)
        (Engine.run_batch naive flat inputs)
        (Engine.run_batch pooled flat inputs))
    [ Executor.Naive; Executor.Opt ]

(* The end-to-end check: a whole fuzzing round (generation, boosting,
   batched execution, candidate search, validation) reaches the same
   verdict whichever engine backs it. *)
let test_fuzzer_round_parity () =
  let tag = function
    | Fuzzer.No_violation { test_cases } -> Printf.sprintf "no-violation:%d" test_cases
    | Fuzzer.Found v ->
        Printf.sprintf "found:%Lx:%Lx"
          (Input.hash v.Violation.input_a)
          (Input.hash v.Violation.input_b)
    | Fuzzer.Discarded f -> "discarded:" ^ Fault.class_name (Fault.class_of f)
    | Fuzzer.Screened -> "screened"
  in
  List.iter
    (fun (defense : Defense.t) ->
      for seed = 1 to 3 do
        let mk kind =
          Fuzzer.create
            (Run_spec.make ~defense ~engine:kind ~seed:(1000 + seed) ~inputs:4
               ~boosts:2 ~boot_insts:boot ())
        in
        let a = Fuzzer.round (mk Engine.Naive) in
        let b = Fuzzer.round (mk Engine.Pooled) in
        checks
          (Printf.sprintf "round %s/seed%d" defense.Defense.name seed)
          (tag a) (tag b)
      done)
    [ Defense.baseline; Defense.cleanupspec ]

(* ------------------------------------------------------------------ *)
(* Snapshot/restore determinism                                        *)
(* ------------------------------------------------------------------ *)

let test_snapshot_determinism () =
  let open Amulet_uarch in
  let rng = Rng.create ~seed:42 in
  let flat = Generator.generate_flat rng in
  let input = Input.generate rng ~pages:1 in
  let sim = Simulator.create ~boot_insts:boot ~pages:1 Config.default in
  let snap = Simulator.snapshot sim in
  let observe s =
    (Simulator.l1d_tags s, Simulator.tlb_pages s, Array.copy (Simulator.bp_state s))
  in
  let run_once () =
    Simulator.restore sim snap;
    Simulator.load_state sim (Input.to_state input);
    ignore (Simulator.run sim flat);
    observe sim
  in
  let first = run_once () in
  for reuse = 2 to 8 do
    checkb (Printf.sprintf "reuse %d deterministic" reuse) true (run_once () = first)
  done;
  (* a checkpoint rewind is indistinguishable from a fresh warm boot *)
  let fresh = Simulator.create ~boot_insts:boot ~pages:1 Config.default in
  Simulator.load_state fresh (Input.to_state input);
  ignore (Simulator.run fresh flat);
  checkb "restore matches fresh boot" true (observe fresh = first)

(* ------------------------------------------------------------------ *)
(* Chaos injection through the batched path                            *)
(* ------------------------------------------------------------------ *)

let chaos_spec ~seed injector =
  Run_spec.make ~defense:Defense.baseline ~seed ~inputs:3 ~boosts:2
    ~boot_insts:boot ~chaos:injector ()

let test_chaos_sim_fault () =
  let fz =
    Fuzzer.create (chaos_spec ~seed:21 (Fault.injector ~p_sim_fault:1.0 ~seed:13 ()))
  in
  match Fuzzer.round fz with
  | Fuzzer.Discarded f ->
      checkb "injected sim fault classified" true (Fault.class_of f = Fault.C_injected)
  | _ -> Alcotest.fail "expected Discarded through the batched path"

let test_chaos_crash () =
  let fz =
    Fuzzer.create (chaos_spec ~seed:22 (Fault.injector ~p_crash:1.0 ~seed:13 ()))
  in
  match Fuzzer.round fz with
  | Fuzzer.Discarded f ->
      checkb "injected crash contained and classified" true
        (Fault.class_of f = Fault.C_injected)
  | _ -> Alcotest.fail "expected the crash to be contained as Discarded"

(* ------------------------------------------------------------------ *)
(* Unified Executor.run                                                *)
(* ------------------------------------------------------------------ *)

let test_run_variants () =
  let defense = Defense.baseline in
  let ex = Executor.create ~boot_insts:boot ~mode:Executor.Opt defense (Stats.create ()) in
  let rng = Rng.create ~seed:7 in
  let flat = Generator.generate_flat rng in
  let input = Input.generate rng ~pages:1 in
  Executor.start_program ex;
  let o = Executor.run ex flat input in
  checkb "unlogged runs leave events empty" true (o.Executor.events = []);
  let o_ctx = Executor.run ex ~context:o.Executor.context flat input in
  checkb "context rerun reproduces the trace" true
    (Utrace.equal o.Executor.trace o_ctx.Executor.trace);
  let o_log = Executor.run ex ~context:o.Executor.context ~log:true flat input in
  checkb "logged rerun keeps the trace" true
    (Utrace.equal o.Executor.trace o_log.Executor.trace);
  checkb "logged rerun fills events" true (o_log.Executor.events <> [])

(* ------------------------------------------------------------------ *)
(* Engine accounting                                                   *)
(* ------------------------------------------------------------------ *)

let test_engine_stats () =
  let defense = Defense.baseline in
  let flat = Reproducers.flat Reproducers.uv3 in
  let rng = Rng.create ~seed:9 in
  let inputs = Array.init 3 (fun _ -> Input.generate rng ~pages:1) in
  (* pooled + Naive mode: one boot ever, a rewind per input after that *)
  let pooled =
    Engine.create ~boot_insts:boot ~kind:Engine.Pooled ~mode:Executor.Naive defense
      (Stats.create ())
  in
  checks "pooled name" "pooled" (Engine.name pooled);
  let b1 = Engine.run_batch pooled flat inputs in
  let b2 = Engine.run_batch pooled flat inputs in
  checkb "clean batches" true (b1.Engine.batch_fault = None && b2.Engine.batch_fault = None);
  let s = Engine.stats pooled in
  checki "pooled sims_created" 1 s.Engine.sims_created;
  checkb "pooled restores" true (s.Engine.snapshot_restores >= Array.length inputs);
  checki "pooled batches" 2 s.Engine.batches;
  checki "pooled inputs_run" 6 s.Engine.inputs_run;
  (* naive + Naive mode: a full rebuild per input, never a rewind *)
  let naive =
    Engine.create ~boot_insts:boot ~kind:Engine.Naive ~mode:Executor.Naive defense
      (Stats.create ())
  in
  checks "naive name" "naive" (Engine.name naive);
  ignore (Engine.run_batch naive flat inputs);
  ignore (Engine.run_batch naive flat inputs);
  let s = Engine.stats naive in
  checki "naive sims_created" 6 s.Engine.sims_created;
  checki "naive restores" 0 s.Engine.snapshot_restores;
  (* warm pre-pays the pooled boot *)
  let warmed =
    Engine.create ~boot_insts:boot ~kind:Engine.Pooled ~mode:Executor.Naive defense
      (Stats.create ())
  in
  Engine.warm warmed;
  checki "warm boots the pool" 1 (Engine.stats warmed).Engine.sims_created

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "pooled vs naive batches" `Quick test_batch_equivalence;
          Alcotest.test_case "reproducer batches" `Quick test_reproducer_equivalence;
          Alcotest.test_case "fuzzer round parity" `Quick test_fuzzer_round_parity;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "restore determinism" `Quick test_snapshot_determinism ] );
      ( "chaos",
        [
          Alcotest.test_case "sim fault via batch" `Quick test_chaos_sim_fault;
          Alcotest.test_case "crash via batch" `Quick test_chaos_crash;
        ] );
      ( "api",
        [
          Alcotest.test_case "run variants" `Quick test_run_variants;
          Alcotest.test_case "engine stats" `Quick test_engine_stats;
        ] );
    ]
