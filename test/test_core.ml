(* Tests for the AMuLeT core: RNG, inputs, the program generator, trace
   formats, the executor, the fuzzer round logic and violation analysis. *)

open Amulet
open Amulet_isa
open Amulet_defenses

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.check Alcotest.int64 "same stream" (Rng.next64 a) (Rng.next64 b)
  done;
  let c = Rng.create ~seed:43 in
  checkb "different seed different stream" false
    (Int64.equal (Rng.next64 (Rng.create ~seed:42)) (Rng.next64 c))

let test_rng_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_rng_weighted () =
  let rng = Rng.create ~seed:7 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Rng.weighted rng [ (1, `A); (9, `B) ] in
    Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
  done;
  let a = Option.value (Hashtbl.find_opt counts `A) ~default:0 in
  let b = Option.value (Hashtbl.find_opt counts `B) ~default:0 in
  checkb "weights respected" true (b > a * 4)

(* ------------------------------------------------------------------ *)
(* Inputs                                                              *)
(* ------------------------------------------------------------------ *)

let test_input_to_state_pins_base () =
  let rng = Rng.create ~seed:1 in
  let i = Input.generate rng ~pages:2 in
  let st = Input.to_state i in
  Alcotest.check Alcotest.int64 "r14 = sandbox base"
    (Int64.of_int (Amulet_emu.Memory.base st.Amulet_emu.State.mem))
    (Amulet_emu.State.read_reg st Reg.sandbox_base);
  checki "pages" 2 (Input.pages i)

let test_input_hash_sensitivity () =
  let rng = Rng.create ~seed:1 in
  let a = Input.generate rng ~pages:1 in
  let b = Input.generate rng ~pages:1 in
  checkb "different inputs different hash" false (Int64.equal (Input.hash a) (Input.hash b));
  checkb "equal to itself" true (Input.equal a a);
  checkb "not equal to other" false (Input.equal a b)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let generator_wellformed_prop =
  QCheck2.Test.make ~name:"generated programs are well-formed DAGs" ~count:200
    QCheck2.Gen.(int_bound 10_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let p = Generator.generate rng in
      let flat = Program.flatten p in
      (* forward control flow only *)
      Program.is_dag flat
      (* never writes the sandbox base or the harness scratch register *)
      && Array.for_all
           (fun inst ->
             not (List.memq Reg.sandbox_base (Inst.dest_regs inst))
             && not (List.memq Reg.R15 (Inst.dest_regs inst)))
           flat.Program.code
      (* ends in Exit *)
      && Program.get flat (Program.length flat - 1) = Inst.Exit)

(* every memory access in a generated program is immediately preceded by an
   AND mask on its index register (the sandbox instrumentation) *)
let generator_sandboxing_prop =
  QCheck2.Test.make ~name:"generated memory accesses are sandbox-masked" ~count:100
    QCheck2.Gen.(int_bound 10_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let p = Generator.generate rng in
      List.for_all
        (fun { Program.body; _ } ->
          let rec scan prev = function
            | [] -> true
            | inst :: rest ->
                let ok =
                  match Inst.mem_access inst with
                  | None -> true
                  | Some (m, _, _) -> (
                      Reg.equal m.Operand.base Reg.sandbox_base
                      &&
                      match m.Operand.index, prev with
                      | Some idx, Some (Inst.Binop (Inst.And, _, Operand.Reg r, Operand.Imm _))
                        ->
                          Reg.equal idx r
                      | None, _ -> true
                      | Some _, _ -> false)
                in
                ok && scan (Some inst) rest
          in
          scan None body)
        p.Program.blocks)

(* generated programs emulate without faulting (sandboxing works) *)
let generator_runs_prop =
  QCheck2.Test.make ~name:"generated programs run cleanly on the emulator" ~count:100
    QCheck2.Gen.(int_bound 10_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let flat = Generator.generate_flat rng in
      let input = Input.generate rng ~pages:1 in
      let emu = Amulet_emu.Emulator.execute flat (Input.to_state input) in
      Amulet_emu.Emulator.fault emu = None)

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)
(* ------------------------------------------------------------------ *)

let test_utrace_equal_hash () =
  let a = Utrace.State_snapshot { l1d = [ 1; 2 ]; tlb = [ 3 ]; l1i = None } in
  let b = Utrace.State_snapshot { l1d = [ 1; 2 ]; tlb = [ 3 ]; l1i = None } in
  let c = Utrace.State_snapshot { l1d = [ 1; 4 ]; tlb = [ 3 ]; l1i = None } in
  checkb "equal" true (Utrace.equal a b);
  checkb "hash equal" true (Int64.equal (Utrace.hash a) (Utrace.hash b));
  checkb "different" false (Utrace.equal a c);
  checkb "hash different" false (Int64.equal (Utrace.hash a) (Utrace.hash c))

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_utrace_diff () =
  let a = Utrace.State_snapshot { l1d = [ 0x1000; 0x2000 ]; tlb = [ 1 ]; l1i = None } in
  let b = Utrace.State_snapshot { l1d = [ 0x1000; 0x3000 ]; tlb = [ 1; 2 ]; l1i = None } in
  let d = String.concat "\n" (Utrace.diff a b) in
  checkb "mentions A-only line" true (contains_substring d "0x2000");
  checkb "mentions B-only line" true (contains_substring d "0x3000");
  checkb "equal traces have empty diff" true (Utrace.diff a a = [])

let test_utrace_formats_lookup () =
  checkb "default" true (Utrace.format_of_string "l1d+tlb" = Some Utrace.L1d_tlb);
  checkb "bp" true (Utrace.format_of_string "bp-state" = Some Utrace.Bp_state);
  checkb "mem order" true (Utrace.format_of_string "mem-order" = Some Utrace.Mem_order);
  checkb "unknown" true (Utrace.format_of_string "x" = None);
  checkb "pc order (extension)" true (Utrace.format_of_string "pc-order" = Some Utrace.Pc_order);
  checki "4 paper formats" 4 (List.length Utrace.all_formats);
  checki "1 extension format" 1 (List.length Utrace.extension_formats)

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let spectre_src = {|
.bb0:
  AND RBX, 0b111111111000000
  CMP RAX, 0
  JNZ .done
  MOV RCX, qword ptr [R14 + RBX]
.done:
  MOV RDX, qword ptr [R14 + 64]
  EXIT
|}

let test_executor_determinism_with_context () =
  let stats = Stats.create () in
  let ex = Executor.create ~boot_insts:200 ~mode:Executor.Opt Defense.baseline stats in
  Executor.start_program ex;
  let flat = Program.flatten (Asm.parse spectre_src) in
  let rng = Rng.create ~seed:3 in
  let input = Input.generate rng ~pages:1 in
  let o = Executor.run ex flat input in
  let t1 = (Executor.run ex ~context:o.Executor.context flat input).Executor.trace in
  let t2 = (Executor.run ex ~context:o.Executor.context flat input).Executor.trace in
  checkb "same input same context same trace" true (Utrace.equal t1 t2)

let test_executor_naive_vs_opt_equivalent_results () =
  (* both modes must run the program correctly (they differ in cost and
     cache priming, not semantics) *)
  let flat = Program.flatten (Asm.parse "ADD RAX, 1") in
  let rng = Rng.create ~seed:3 in
  let input = Input.generate rng ~pages:1 in
  List.iter
    (fun mode ->
      let ex = Executor.create ~boot_insts:200 ~mode Defense.baseline (Stats.create ()) in
      Executor.start_program ex;
      let o = Executor.run ex flat input in
      Alcotest.(check (option string)) "no fault" None (Option.map Fault.to_string o.Executor.run_fault))
    [ Executor.Naive; Executor.Opt ]

let test_stats_accounting () =
  let s = Stats.create () in
  Stats.time s Stats.Sim_simulate (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0)));
  Stats.count_test_case s;
  Stats.count_test_case s;
  checki "test cases" 2 (Stats.test_cases s);
  checkb "time recorded" true (Stats.seconds s Stats.Sim_simulate >= 0.);
  Stats.close s;
  checkb "total covers elapsed" true (Stats.total s > 0.)

(* ------------------------------------------------------------------ *)
(* Fuzzer round                                                        *)
(* ------------------------------------------------------------------ *)

let test_fuzzer_finds_spectre_in_crafted_program () =
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense:Defense.baseline ~seed:17 ~inputs:8 ~boosts:5
         ~boot_insts:300 ())
  in
  match Fuzzer.test_program fz (Program.flatten (Asm.parse spectre_src)) with
  | Fuzzer.Found v ->
      checkb "traces differ" false (Utrace.equal v.Violation.trace_a v.Violation.trace_b);
      checkb "ctrace hash recorded" true (not (Int64.equal v.Violation.ctrace_hash 0L))
  | Fuzzer.No_violation _ -> Alcotest.fail "expected a violation"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

let test_fuzzer_clean_on_straightline_code () =
  (* no speculation sources: no violations possible *)
  let src = {|
  AND RBX, 4088
  MOV RAX, qword ptr [R14 + RBX]
  ADD RAX, 1
  MOV qword ptr [R14 + RBX], RAX
|} in
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense:Defense.baseline ~seed:9 ~inputs:6 ~boosts:4
         ~boot_insts:300 ())
  in
  match Fuzzer.test_program fz (Program.flatten (Asm.parse src)) with
  | Fuzzer.No_violation _ -> ()
  | Fuzzer.Found _ -> Alcotest.fail "straight-line code cannot violate CT-SEQ"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

let test_campaign_counters () =
  let r =
    Campaign.run
      (Run_spec.make ~defense:Defense.baseline ~rounds:3 ~classify:false
         ~inputs:3 ~boosts:2 ~boot_insts:200 ())
  in
  checki "programs" 3 r.Campaign.programs_run;
  checkb "test cases counted" true (r.Campaign.test_cases > 0);
  checkb "throughput positive" true (r.Campaign.throughput > 0.)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_dataflow_back () =
  let flat = Program.flatten (Asm.parse {|
  MOV RBX, qword ptr [R14 + 8]
  AND RBX, 4088
  ADD RCX, 1
  MOV RAX, qword ptr [R14 + RBX]
|}) in
  (* the load at index 3 depends on RBX defined at 1 and 0 *)
  let chain = Analysis.dataflow_back flat ~index:3 in
  checkb "finds mask" true (List.mem 1 chain);
  checkb "finds original load" true (List.mem 0 chain);
  checkb "skips unrelated" false (List.mem 2 chain)

let test_side_by_side_renders () =
  let open Amulet_uarch in
  let events =
    [
      Event.Mem_access
        { cycle = 1; pc = 0x400000; kind = Event.Demand_load; addr = 0x1000; line = 0x1000; spec = false };
      Event.Squashed { cycle = 2; pc = 0x400004; reason = Event.Branch_mispredict };
    ]
  in
  let out = Format.asprintf "%a" (fun f () -> Analysis.pp_side_by_side f events []) () in
  checkb "renders rows" true (String.length out > 0)

let test_fuzzer_naive_mode_also_finds () =
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense:Defense.baseline ~seed:17 ~inputs:8 ~boosts:5
         ~boot_insts:100 ~mode:Executor.Naive ())
  in
  match Fuzzer.test_program fz (Program.flatten (Asm.parse spectre_src)) with
  | Fuzzer.Found _ -> ()
  | Fuzzer.No_violation _ ->
      (* naive mode starts from clean caches: install-visible leaks only;
         this crafted program leaks via installs, so it must be found *)
      Alcotest.fail "naive executor missed the install-visible leak"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded r -> Alcotest.failf "discarded: %s" (Fault.to_string r)

let test_campaign_stop_after () =
  let r =
    Campaign.run
      (Run_spec.make ~defense:Defense.baseline ~rounds:50 ~stop_after:1
         ~seed:2024 ~classify:false ~inputs:8 ~boosts:4 ~boot_insts:200 ())
  in
  checki "stops at first violation" 1 (List.length r.Campaign.violations);
  checkb "did not run all programs" true (r.Campaign.programs_run < 50)

let test_reproducers_registry () =
  checki "9 reproducers" 9 (List.length Reproducers.all);
  List.iter
    (fun r ->
      (* each reproducer parses, flattens and is registered by name *)
      let flat = Reproducers.flat r in
      checkb (r.Reproducers.name ^ " nonempty") true (Program.length flat > 0);
      checkb (r.Reproducers.name ^ " findable") true
        (Reproducers.find r.Reproducers.name = Some r))
    Reproducers.all;
  checkb "unknown reproducer" true (Reproducers.find "nope" = None)

let test_violation_render_mentions_signature () =
  match Reproducers.hunt ~seed:2 Reproducers.figure8 with
  | None -> Alcotest.fail "figure8 hunt failed"
  | Some v ->
      let text = Violation.to_string v in
      checkb "signature in rendering" true
        (contains_substring text "UV6");
      checkb "program in rendering" true (contains_substring text "MOV")

let () =
  Alcotest.run ~and_exit:false "core"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "weighted" `Quick test_rng_weighted;
        ] );
      ( "inputs",
        [
          Alcotest.test_case "to_state pins base" `Quick test_input_to_state_pins_base;
          Alcotest.test_case "hash sensitivity" `Quick test_input_hash_sensitivity;
        ] );
      ( "generator",
        [
          QCheck_alcotest.to_alcotest generator_wellformed_prop;
          QCheck_alcotest.to_alcotest generator_sandboxing_prop;
          QCheck_alcotest.to_alcotest generator_runs_prop;
        ] );
      ( "traces",
        [
          Alcotest.test_case "equal/hash" `Quick test_utrace_equal_hash;
          Alcotest.test_case "diff" `Quick test_utrace_diff;
          Alcotest.test_case "format lookup" `Quick test_utrace_formats_lookup;
        ] );
      ( "executor",
        [
          Alcotest.test_case "context determinism" `Quick test_executor_determinism_with_context;
          Alcotest.test_case "naive vs opt" `Quick test_executor_naive_vs_opt_equivalent_results;
          Alcotest.test_case "stats" `Quick test_stats_accounting;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "finds spectre" `Slow test_fuzzer_finds_spectre_in_crafted_program;
          Alcotest.test_case "clean straight-line" `Slow test_fuzzer_clean_on_straightline_code;
          Alcotest.test_case "campaign counters" `Slow test_campaign_counters;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "dataflow back" `Quick test_dataflow_back;
          Alcotest.test_case "side-by-side" `Quick test_side_by_side_renders;
        ] );
    ]

let () =
  Alcotest.run ~and_exit:false "core-extra"
    [
      ( "fuzzer-modes",
        [
          Alcotest.test_case "naive finds install leak" `Slow test_fuzzer_naive_mode_also_finds;
          Alcotest.test_case "campaign stop-after" `Slow test_campaign_stop_after;
        ] );
      ( "reproducers",
        [
          Alcotest.test_case "registry" `Quick test_reproducers_registry;
          Alcotest.test_case "violation rendering" `Slow test_violation_render_mentions_signature;
        ] );
    ]

(* parallel campaigns: the paper's multi-instance methodology on domains *)
let test_parallel_campaign_merges () =
  let spec =
    Run_spec.make ~defense:Defense.baseline ~rounds:4 ~seed:5 ~classify:false
      ~inputs:4 ~boosts:2 ~boot_insts:200 ()
  in
  let merged = Campaign.run_parallel ~instances:3 spec in
  checki "programs summed" 12 merged.Campaign.programs_run;
  checkb "test cases summed" true (merged.Campaign.test_cases > 0);
  (* determinism: same seeds give the same merged violation count *)
  let again = Campaign.run_parallel ~instances:3 spec in
  checki "deterministic across runs"
    (List.length merged.Campaign.violations)
    (List.length again.Campaign.violations)

let () =
  Alcotest.run ~and_exit:false "core-parallel"
    [
      ( "parallel",
        [ Alcotest.test_case "merge + determinism" `Slow test_parallel_campaign_merges ] );
    ]

(* violation persistence and minimization *)
let find_speclfb_violation () =
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense:Defense.speclfb ~seed:17 ~inputs:8 ~boosts:5
         ~boot_insts:300 ())
  in
  let rec go n =
    if n = 0 then Alcotest.fail "no speclfb violation found"
    else match Fuzzer.round fz with Fuzzer.Found v -> v | _ -> go (n - 1)
  in
  go 20

let test_violation_io_roundtrip () =
  let v = find_speclfb_violation () in
  let stored = Violation_io.of_violation v in
  let path = Filename.temp_file "amulet" ".violation" in
  Violation_io.save stored path;
  let loaded = Violation_io.load path in
  Sys.remove path;
  checkb "defense survives" true
    (loaded.Violation_io.defense_name = stored.Violation_io.defense_name);
  checkb "contract survives" true
    (loaded.Violation_io.contract_name = stored.Violation_io.contract_name);
  checkb "program survives" true
    (loaded.Violation_io.program.Program.code = v.Violation.program.Program.code);
  checkb "input a survives" true (Input.equal loaded.Violation_io.input_a v.Violation.input_a);
  checkb "input b survives" true (Input.equal loaded.Violation_io.input_b v.Violation.input_b)

let test_violation_io_reanalyze () =
  let v = find_speclfb_violation () in
  let stored = Violation_io.of_violation v in
  let f = Triage.explain stored in
  checkb "reproduces under fresh context" true
    (f.Triage.status = Triage.Reproduced);
  checkb "classified" true
    (f.Triage.leak_class = Some Analysis.First_load_unprotected_uv6)

let test_minimize_shrinks_and_preserves () =
  let v = find_speclfb_violation () in
  let m = Minimize.minimize v in
  checkb "removed something" true (m.Minimize.removed > 0);
  checkb "kept the essentials" true (m.Minimize.kept >= 2);
  (* the minimized program must still violate *)
  let defense = Defense.speclfb in
  checkb "still violates" true
    (Minimize.still_violates ~defense ~contract:v.Violation.contract ~sim_config:None
       m.Minimize.minimized v.Violation.input_a v.Violation.input_b);
  (* and must still contain a conditional branch and a load *)
  let code = m.Minimize.minimized.Program.code in
  checkb "keeps a branch" true
    (Array.exists (fun i -> Inst.is_cond_branch i) code);
  checkb "keeps a load" true (Array.exists Inst.is_load code)

let test_violation_io_rejects_garbage () =
  let path = Filename.temp_file "amulet" ".violation" in
  Out_channel.with_open_text path (fun oc -> output_string oc "not a violation\n");
  (match Violation_io.load path with
  | exception Violation_io.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error");
  Sys.remove path

let () =
  Alcotest.run "core-io"
    [
      ( "violation-io",
        [
          Alcotest.test_case "save/load roundtrip" `Slow test_violation_io_roundtrip;
          Alcotest.test_case "reanalyze" `Slow test_violation_io_reanalyze;
          Alcotest.test_case "rejects garbage" `Quick test_violation_io_rejects_garbage;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "shrinks and preserves" `Slow
            test_minimize_shrinks_and_preserves;
        ] );
    ]
