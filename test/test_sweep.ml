(* Sweep orchestrator tests: preset selection, the full matrix completing
   under a small budget, released-bug presets finding their planted
   violations, scheduler determinism (fingerprints identical across domain
   counts), shard journaling, and whole-run budget exhaustion stopping at
   a round boundary. *)

open Amulet
open Amulet_isa
open Amulet_defenses

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Preset selection                                                    *)
(* ------------------------------------------------------------------ *)

let test_select () =
  (match Sweep.select [] with
  | Ok ds -> checki "empty selects all" (List.length Defense.all) (List.length ds)
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  (match Sweep.select [ "invisi*" ] with
  | Ok ds ->
      checkb "glob matches the invisispec family" true
        (List.mem Defense.invisispec ds && List.mem Defense.invisispec_patched ds);
      checkb "glob excludes others" false (List.mem Defense.baseline ds)
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  (match Sweep.select [ "SpecLFB" ] with
  | Ok [ d ] -> checks "case-insensitive exact" "speclfb" d.Defense.name
  | Ok _ -> Alcotest.fail "expected exactly one preset"
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  match Sweep.select [ "baseline"; "nada*" ] with
  | Error e ->
      checks "first unmatched pattern reported"
        "no defense preset matches \"nada*\"" e
  | Ok _ -> Alcotest.fail "expected an error for an unmatched pattern"

(* ------------------------------------------------------------------ *)
(* Every preset completes a small shard                                 *)
(* ------------------------------------------------------------------ *)

let small_matrix ?(shards_per_preset = 1) ?(rounds = 1) ?presets ?(seed = 9) () =
  Sweep.jobs ?presets ~shards_per_preset ~rounds ~seed
    ~make_spec:(fun d ->
      Run_spec.make ~defense:d ~classify:false ~inputs:3 ~boosts:2
        ~boot_insts:200 ())
    ()

let test_all_presets_complete () =
  let rep = Sweep.run (small_matrix ()) in
  checki "one row per preset" (List.length Defense.all) (List.length rep.Sweep.rows);
  checki "no crashed shards" 0 rep.Sweep.crashed;
  checki "all jobs ran" (List.length Defense.all) rep.Sweep.jobs;
  List.iter
    (fun (r : Sweep.row) ->
      checki (r.Sweep.defense.Defense.name ^ " completed its rounds") 1
        (r.Sweep.rounds + r.Sweep.discarded);
      checkb
        (r.Sweep.defense.Defense.name ^ " contract derived")
        true
        (r.Sweep.contract_name <> ""))
    rep.Sweep.rows

(* ------------------------------------------------------------------ *)
(* Released-bug presets detect their planted violations                 *)
(* ------------------------------------------------------------------ *)

(* The random-campaign route, bounded: each released defense stops at its
   first violation.  STT's KV3 is too rare for a small random budget (the
   paper reports ~3 h average detection), so it is exercised through the
   crafted figure-9 program below instead. *)
let test_released_bugs_detected () =
  let presets = [ Defense.baseline; Defense.invisispec; Defense.speclfb ] in
  let js =
    Sweep.jobs ~presets ~rounds:25 ~seed:11
      ~make_spec:(fun d ->
        Run_spec.make ~defense:d ~stop_after:1 ~classify:false ~inputs:6
          ~boosts:4 ~boot_insts:500 ())
      ()
  in
  let rep = Sweep.run js in
  List.iter
    (fun (r : Sweep.row) ->
      checkb (r.Sweep.defense.Defense.name ^ " leaks under its contract") true
        (r.Sweep.violations <> []);
      checkb
        (r.Sweep.defense.Defense.name ^ " has a time-to-first-leak")
        true
        (r.Sweep.time_to_first_leak <> None))
    rep.Sweep.rows

let test_cleanupspec_released_bug () =
  let js =
    Sweep.jobs ~presets:[ Defense.cleanupspec ] ~rounds:40 ~seed:11
      ~make_spec:(fun d ->
        Run_spec.make ~defense:d ~stop_after:1 ~classify:false ~inputs:6
          ~boosts:4 ~boot_insts:500 ())
      ()
  in
  let rep = Sweep.run js in
  match rep.Sweep.rows with
  | [ r ] -> checkb "cleanupspec leaks" true (r.Sweep.violations <> [])
  | _ -> Alcotest.fail "expected exactly one row"

(* Figure 9 (paper): STT's tainted speculative store fills the D-TLB. *)
let figure9_src = {|
.bb0:
  AND RDI, 0b1111111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RCX, 0b1111111111111111
  MOV RBX, word ptr [R14 + RCX]
  AND RBX, 0b1111111111111111111
  MOV dword ptr [R14 + RBX], RDX
.done:
  EXIT
|}

let test_stt_released_bug () =
  let fz =
    Fuzzer.create
      (Run_spec.make ~defense:Defense.stt ~seed:7 ~inputs:10 ~boosts:6
         ~boot_insts:500 ())
  in
  match Fuzzer.test_program fz (Program.flatten (Asm.parse figure9_src)) with
  | Fuzzer.Found _ -> ()
  | Fuzzer.No_violation _ -> Alcotest.fail "STT did not leak the planted program"
  | Fuzzer.Screened -> Alcotest.fail "unexpectedly screened"
  | Fuzzer.Discarded f -> Alcotest.failf "discarded: %s" (Fault.to_string f)

(* ------------------------------------------------------------------ *)
(* Scheduler determinism                                                *)
(* ------------------------------------------------------------------ *)

let test_domains_deterministic () =
  let presets =
    [ Defense.baseline; Defense.invisispec; Defense.cleanupspec; Defense.speclfb ]
  in
  let mk () =
    small_matrix ~presets ~shards_per_preset:2 ~rounds:2 ~seed:5 ()
  in
  let r1 = Sweep.run ~domains:1 (mk ()) in
  let r4 = Sweep.run ~domains:4 (mk ()) in
  checks "fingerprints identical across domain counts" (Sweep.fingerprint r1)
    (Sweep.fingerprint r4);
  checki "same total test cases" r1.Sweep.test_cases r4.Sweep.test_cases;
  checki "same job count" r1.Sweep.jobs r4.Sweep.jobs;
  checki "no crashes either way" 0 (r1.Sweep.crashed + r4.Sweep.crashed)

(* ------------------------------------------------------------------ *)
(* Shard journaling                                                     *)
(* ------------------------------------------------------------------ *)

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_shard_journals () =
  let dir = temp_dir "amulet-sweep-journal" in
  let presets = [ Defense.baseline; Defense.speclfb ] in
  let js = small_matrix ~presets ~rounds:2 () in
  let rep = Sweep.run ~journal_dir:dir ~checkpoint_every:1 js in
  checki "no crashes" 0 rep.Sweep.crashed;
  let files = Sys.readdir dir in
  checki "one journal per shard" (List.length js) (Array.length files);
  (* every journal is loadable and saw its shard's rounds *)
  Array.iter
    (fun f ->
      let j = Journal.load (Filename.concat dir f) in
      checki (f ^ " rounds journaled") 2 j.Journal.programs_run)
    files;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Whole-run budget: exhaustion stops cleanly at a round boundary       *)
(* ------------------------------------------------------------------ *)

let test_budget_exhaustion () =
  let r =
    Campaign.run
      (Run_spec.make ~defense:Defense.baseline ~rounds:50 ~budget_ms:0.
         ~classify:false ~inputs:3 ~boosts:2 ~boot_insts:200 ())
  in
  checkb "budget exhaustion flagged" true r.Campaign.budget_exhausted;
  checki "no partial round counted" 0 r.Campaign.programs_run;
  (* a checkpoint written mid-budget is a loadable round-boundary journal *)
  let path = Filename.temp_file "amulet-sweep" ".journal" in
  ignore
    (Campaign.run ~journal_path:path ~checkpoint_every:1
       (Run_spec.make ~defense:Defense.baseline ~rounds:3 ~budget_ms:60000.
          ~classify:false ~inputs:3 ~boosts:2 ~boot_insts:200 ()));
  let j = Journal.load path in
  Sys.remove path;
  checki "journal at round boundary" 3 j.Journal.programs_run

(* ------------------------------------------------------------------ *)
(* Report export                                                        *)
(* ------------------------------------------------------------------ *)

let test_json_export () =
  let rep = Sweep.run (small_matrix ~presets:[ Defense.baseline ] ()) in
  let json = Sweep.to_json rep in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "schema tagged" true (contains "\"amulet.sweep/1\"");
  checkb "fingerprint embedded" true (contains (Sweep.fingerprint rep));
  checkb "row for the preset" true (contains "\"baseline\"")

let () =
  Alcotest.run "sweep"
    [
      ("select", [ Alcotest.test_case "globs" `Quick test_select ]);
      ( "matrix",
        [
          Alcotest.test_case "all presets complete" `Slow test_all_presets_complete;
          Alcotest.test_case "released bugs detected" `Slow
            test_released_bugs_detected;
          Alcotest.test_case "cleanupspec released bug" `Slow
            test_cleanupspec_released_bug;
          Alcotest.test_case "stt planted program" `Slow test_stt_released_bug;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "domains 1 vs 4 identical" `Slow
            test_domains_deterministic;
          Alcotest.test_case "shard journals" `Slow test_shard_journals;
        ] );
      ( "budget",
        [ Alcotest.test_case "round-boundary stop" `Quick test_budget_exhaustion ] );
      ("export", [ Alcotest.test_case "json document" `Slow test_json_export ]);
    ]
