(* Tests for the microarchitectural substrate: caches, TLB, predictors and
   the memory system (MSHRs, in-order controller queue, defense
   structures). *)

open Amulet_uarch

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let mk_cache ?(sets = 4) ?(ways = 2) () =
  Cache.create ~name:"T" ~sets ~ways ~line_bytes:64 ()

let test_cache_install_probe () =
  let c = mk_cache () in
  checkb "miss initially" false (Cache.probe c 0x1000);
  checkb "no evict on free way" true (Cache.install c 0x1000 = None);
  checkb "hit after install" true (Cache.probe c 0x1000);
  checki "occupancy" 1 (Cache.occupancy c)

let test_cache_line_mapping () =
  let c = mk_cache () in
  checki "line of addr" 0x1000 (Cache.line_of c 0x103F);
  checki "next line" 0x1040 (Cache.line_of c 0x1040);
  (* 4 sets x 64B lines: 0x1000 and 0x1100 share set 0 *)
  checki "set wrap" (Cache.set_of c 0x1000) (Cache.set_of c 0x1100)

let test_cache_lru_eviction () =
  let c = mk_cache () in
  (* fill set 0 (2 ways) then install a third line: LRU must go *)
  ignore (Cache.install c 0x1000);
  ignore (Cache.install c 0x1100);
  ignore (Cache.touch c 0x1000);
  (* 0x1100 is now LRU *)
  checkb "victim is lru" true (Cache.victim_of c 0x1200 = Some 0x1100);
  (match Cache.install c 0x1200 with
  | Some v -> checki "evicted lru" 0x1100 v
  | None -> Alcotest.fail "expected eviction");
  checkb "old line gone" false (Cache.probe c 0x1100);
  checkb "mru survives" true (Cache.probe c 0x1000)

let test_cache_probe_does_not_touch () =
  let c = mk_cache () in
  ignore (Cache.install c 0x1000);
  ignore (Cache.install c 0x1100);
  (* probing 0x1000 (unlike touching) must not refresh it *)
  ignore (Cache.probe c 0x1000);
  checkb "victim unchanged by probe" true (Cache.victim_of c 0x1200 = Some 0x1000)

let test_cache_force_replacement () =
  let c = mk_cache () in
  checkb "no replacement on non-full set" true (Cache.force_replacement c 0x1000 = None);
  ignore (Cache.install c 0x1000);
  ignore (Cache.install c 0x1100);
  (match Cache.force_replacement c 0x1200 with
  | Some v -> checki "uv1 evicts lru" 0x1000 v
  | None -> Alcotest.fail "expected forced replacement");
  checki "occupancy reduced" 1 (Cache.occupancy c)

let test_cache_invalidate_and_reset () =
  let c = mk_cache () in
  ignore (Cache.install c 0x1000);
  checkb "invalidate present" true (Cache.invalidate c 0x1000);
  checkb "invalidate absent" false (Cache.invalidate c 0x1000);
  ignore (Cache.install c 0x2000);
  Cache.reset c;
  checki "reset empties" 0 (Cache.occupancy c)

let test_cache_snapshot_restore () =
  let c = mk_cache () in
  ignore (Cache.install c 0x1000);
  ignore (Cache.install c 0x1100);
  let snap = Cache.snapshot c in
  ignore (Cache.install c 0x1200);
  ignore (Cache.invalidate c 0x1000);
  Cache.restore c snap;
  checkb "restored tags" true (Cache.tags c = [ 0x1000; 0x1100 ]);
  (* LRU order restored too: victim must be as before the snapshot *)
  checkb "restored lru" true (Cache.victim_of c 0x1200 = Some 0x1000)

let cache_tags_sorted_prop =
  QCheck2.Test.make ~name:"cache tags are sorted and unique" ~count:100
    QCheck2.Gen.(list_size (int_range 0 100) (int_bound 63))
    (fun lines ->
      let c = Cache.create ~name:"P" ~sets:8 ~ways:4 ~line_bytes:64 () in
      List.iter (fun l -> ignore (Cache.install c (l * 64))) lines;
      let tags = Cache.tags c in
      tags = List.sort_uniq compare tags
      && Cache.occupancy c <= 8 * 4)

(* ------------------------------------------------------------------ *)
(* TLB                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tlb_basics () =
  let t = Tlb.create ~entries:2 () in
  checkb "miss" true (Tlb.access t 5 = `Miss);
  checkb "hit" true (Tlb.access t 5 = `Hit);
  checkb "second" true (Tlb.access t 6 = `Miss);
  (* touch 5, then insert 7: LRU 6 must be evicted *)
  ignore (Tlb.access t 5);
  ignore (Tlb.access t 7);
  checkb "lru evicted" false (Tlb.probe t 6);
  checkb "mru kept" true (Tlb.probe t 5);
  checkb "pages sorted" true (Tlb.pages t = [ 5; 7 ])

let test_tlb_page_of_addr () =
  checki "page" 1 (Tlb.page_of_addr 0x1abc);
  checki "page 0" 0 (Tlb.page_of_addr 0xFFF)

let test_tlb_snapshot () =
  let t = Tlb.create ~entries:4 () in
  ignore (Tlb.access t 1);
  ignore (Tlb.access t 2);
  let s = Tlb.snapshot t in
  ignore (Tlb.access t 3);
  Tlb.reset t;
  Tlb.restore t s;
  checkb "restored" true (Tlb.pages t = [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Branch predictor                                                    *)
(* ------------------------------------------------------------------ *)

let mk_bp () = Branch_pred.create ~history_bits:8 ~table_bits:8 ~btb_bits:4 ()

let test_bp_initial_not_taken () =
  let bp = mk_bp () in
  checkb "weakly not-taken init" false (Branch_pred.predict bp ~pc:0x400000)

let test_bp_training () =
  let bp = mk_bp () in
  let pc = 0x400040 in
  let h = Branch_pred.history bp in
  Branch_pred.train bp ~pc ~history:h ~taken:true ~target:0x400100;
  Branch_pred.train bp ~pc ~history:h ~taken:true ~target:0x400100;
  checkb "trained taken" true (Branch_pred.predict bp ~pc);
  checkb "btb has target" true (Branch_pred.btb_lookup bp ~pc = Some 0x400100);
  Branch_pred.train bp ~pc ~history:h ~taken:false ~target:0;
  Branch_pred.train bp ~pc ~history:h ~taken:false ~target:0;
  checkb "retrained not-taken" false (Branch_pred.predict bp ~pc)

let test_bp_history_affects_prediction () =
  let bp = mk_bp () in
  let pc = 0x400080 in
  (* train taken under history 0, not-taken under history 1 *)
  Branch_pred.train bp ~pc ~history:0 ~taken:true ~target:0x400200;
  Branch_pred.train bp ~pc ~history:0 ~taken:true ~target:0x400200;
  Branch_pred.set_history bp 0;
  let p0 = Branch_pred.predict bp ~pc in
  Branch_pred.set_history bp 1;
  let p1 = Branch_pred.predict bp ~pc in
  checkb "history-dependent" true (p0 <> p1 || p0)

let test_bp_speculative_history () =
  let bp = mk_bp () in
  Branch_pred.speculate_history bp ~taken:true;
  Branch_pred.speculate_history bp ~taken:false;
  checki "history bits" 0b10 (Branch_pred.history bp);
  Branch_pred.set_history bp 0;
  checki "restored" 0 (Branch_pred.history bp)

let test_bp_snapshot () =
  let bp = mk_bp () in
  Branch_pred.train bp ~pc:0x400000 ~history:0 ~taken:true ~target:0x400100;
  let s = Branch_pred.snapshot bp in
  Branch_pred.train bp ~pc:0x400000 ~history:0 ~taken:true ~target:0x400100;
  Branch_pred.train bp ~pc:0x400044 ~history:3 ~taken:true ~target:0x400200;
  Branch_pred.restore bp s;
  checkb "snapshot restores" true (Branch_pred.snapshot bp = s)

(* ------------------------------------------------------------------ *)
(* Memory-dependence predictor                                         *)
(* ------------------------------------------------------------------ *)

let test_mdp () =
  let m = Mdp.create ~bits:4 in
  checkb "bypass by default" true (Mdp.predict_bypass m ~pc:0x400010);
  Mdp.train_violation m ~pc:0x400010;
  checkb "blocked after violation" false (Mdp.predict_bypass m ~pc:0x400010);
  checkb "other pc unaffected" true (Mdp.predict_bypass m ~pc:0x400054);
  Mdp.train_correct m ~pc:0x400010;
  Mdp.train_correct m ~pc:0x400010;
  checkb "decays back" true (Mdp.predict_bypass m ~pc:0x400010);
  let s = Mdp.snapshot m in
  Mdp.train_violation m ~pc:0x400010;
  Mdp.restore m s;
  checkb "snapshot restores" true (Mdp.predict_bypass m ~pc:0x400010)

(* ------------------------------------------------------------------ *)
(* Memory system                                                       *)
(* ------------------------------------------------------------------ *)

let mk_ms ?(cfg = Config.default) () =
  let log = Event.create () in
  Memsys.create cfg log, log

let drain ms ~from ~until =
  let resps = ref [] in
  for now = from to until do
    Memsys.tick ms ~now;
    resps := List.rev_append (Memsys.take_responses ms ~now) !resps
  done;
  List.rev !resps

let test_memsys_miss_then_hit () =
  let ms, _ = mk_ms () in
  let n =
    Memsys.request_access ms ~now:1 ~rob_id:1 ~pc:0x400000 ~addr:0x1000
      ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false
  in
  checki "one line" 1 n;
  let resps = drain ms ~from:1 ~until:100 in
  checkb "response delivered" true (List.mem (1, 0x1000) resps);
  checkb "line installed" true (List.mem 0x1000 (Memsys.l1d_tags ms));
  (* second access hits: response latency = l1 *)
  ignore
    (Memsys.request_access ms ~now:101 ~rob_id:2 ~pc:0x400000 ~addr:0x1008
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false);
  let resps = drain ms ~from:101 ~until:(101 + Config.default.Config.l1_latency) in
  checkb "hit response fast" true (List.mem (2, 0x1000) resps)

let test_memsys_split_access () =
  let ms, log = mk_ms () in
  Event.set_enabled log true;
  let n =
    Memsys.request_access ms ~now:1 ~rob_id:1 ~pc:0x400000 ~addr:0x103C
      ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false
  in
  checki "two lines" 2 n;
  checkb "split event" true
    (List.exists (function Event.Split_access _ -> true | _ -> false) (Event.events log));
  let resps = drain ms ~from:1 ~until:100 in
  checkb "both lines respond" true
    (List.mem (1, 0x1000) resps && List.mem (1, 0x1040) resps)

let test_memsys_mshr_merge () =
  let ms, log = mk_ms () in
  Event.set_enabled log true;
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:1 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false);
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:2 ~pc:0 ~addr:0x1008
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false);
  let resps = drain ms ~from:1 ~until:100 in
  checkb "both served" true (List.mem (1, 0x1000) resps && List.mem (2, 0x1000) resps);
  (* only one MSHR allocation for the shared line *)
  checki "one alloc" 1
    (List.length
       (List.filter (function Event.Mshr_alloc _ -> true | _ -> false) (Event.events log)))

let test_memsys_mshr_exhaustion_blocks_queue () =
  let cfg = { Config.default with Config.mshrs = 1 } in
  let ms, log = mk_ms ~cfg () in
  Event.set_enabled log true;
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:1 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false);
  Memsys.tick ms ~now:1;
  (* second miss to a different line cannot get an MSHR *)
  ignore
    (Memsys.request_access ms ~now:2 ~rob_id:2 ~pc:0 ~addr:0x2000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false);
  (* ... and a would-be HIT behind it is blocked (in-order queue) *)
  ignore (drain ms ~from:2 ~until:3);
  checkb "stall recorded" true
    (List.exists (function Event.Mshr_stall _ -> true | _ -> false) (Event.events log));
  let resps = drain ms ~from:4 ~until:200 in
  checkb "eventually both served" true (List.mem (1, 0x1000) resps && List.mem (2, 0x2000) resps)

let test_memsys_invisispec_spec_load_invisible () =
  let cfg =
    Config.with_defense (Config.Invisispec { Config.iv_patched_eviction = true })
      Config.default
  in
  let ms, _ = mk_ms ~cfg () in
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:1 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Spec_load ~spec:true);
  let resps = drain ms ~from:1 ~until:100 in
  checkb "spec load served" true (List.mem (1, 0x1000) resps);
  checkb "nothing installed in L1D" true (Memsys.l1d_tags ms = []);
  (* expose installs it *)
  Memsys.request_expose ms ~now:101 ~rob_id:1 ~line:0x1000;
  ignore (drain ms ~from:101 ~until:200);
  checkb "expose installs" true (List.mem 0x1000 (Memsys.l1d_tags ms))

let test_memsys_uv1_spec_eviction () =
  (* unpatched InvisiSpec: a spec miss on a full set evicts the LRU line *)
  let cfg =
    {
      (Config.with_defense
         (Config.Invisispec { Config.iv_patched_eviction = false })
         Config.default)
      with
      Config.l1d_sets = 4;
      l1d_ways = 1;
    }
  in
  let ms, log = mk_ms ~cfg () in
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:1 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false);
  ignore (drain ms ~from:1 ~until:100);
  checkb "victim present" true (List.mem 0x1000 (Memsys.l1d_tags ms));
  Event.set_enabled log true;
  ignore
    (Memsys.request_access ms ~now:101 ~rob_id:2 ~pc:0 ~addr:0x2000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Spec_load ~spec:true);
  ignore (drain ms ~from:101 ~until:200);
  checkb "uv1: victim evicted by spec miss" false (List.mem 0x1000 (Memsys.l1d_tags ms));
  checkb "uv1 event" true
    (List.exists (function Event.Spec_eviction _ -> true | _ -> false) (Event.events log));
  checkb "spec line still not installed" false (List.mem 0x2000 (Memsys.l1d_tags ms))

let test_memsys_cleanupspec_cleanup () =
  let cfg =
    Config.with_defense
      (Config.Cleanupspec
         { Config.cs_patched_store_cleanup = true; cs_patched_split_cleanup = true })
      Config.default
  in
  let ms, _ = mk_ms ~cfg () in
  (* speculative load installs, then squash cleans it up *)
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:7 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:true);
  ignore (drain ms ~from:1 ~until:100);
  checkb "installed speculatively" true (List.mem 0x1000 (Memsys.l1d_tags ms));
  Memsys.cancel ms ~now:101 ~rob_id:7;
  ignore (drain ms ~from:101 ~until:150);
  checkb "cleaned after squash" false (List.mem 0x1000 (Memsys.l1d_tags ms))

let test_memsys_cleanupspec_uv3_store_not_cleaned () =
  let cfg =
    Config.with_defense
      (Config.Cleanupspec
         { Config.cs_patched_store_cleanup = false; cs_patched_split_cleanup = true })
      Config.default
  in
  let ms, log = mk_ms ~cfg () in
  Event.set_enabled log true;
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:7 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Store_install ~spec:true);
  ignore (drain ms ~from:1 ~until:100);
  Memsys.cancel ms ~now:101 ~rob_id:7;
  ignore (drain ms ~from:101 ~until:150);
  checkb "uv3: store survives squash" true (List.mem 0x1000 (Memsys.l1d_tags ms));
  checkb "uv3 signature event" true
    (List.exists
       (function Event.Cleanup_missing _ -> true | _ -> false)
       (Event.events log))

let test_memsys_cleanupspec_restores_victim () =
  let cfg =
    {
      (Config.with_defense
         (Config.Cleanupspec
            { Config.cs_patched_store_cleanup = true; cs_patched_split_cleanup = true })
         Config.default)
      with
      Config.l1d_sets = 4;
      l1d_ways = 1;
    }
  in
  let ms, _ = mk_ms ~cfg () in
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:1 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false);
  ignore (drain ms ~from:1 ~until:100);
  (* spec load to the same set evicts 0x1000; cleanup must restore it *)
  ignore
    (Memsys.request_access ms ~now:101 ~rob_id:2 ~pc:0 ~addr:0x2000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:true);
  ignore (drain ms ~from:101 ~until:200);
  checkb "spec install evicted victim" false (List.mem 0x1000 (Memsys.l1d_tags ms));
  Memsys.cancel ms ~now:201 ~rob_id:2;
  ignore (drain ms ~from:201 ~until:250);
  checkb "spec line cleaned" false (List.mem 0x2000 (Memsys.l1d_tags ms));
  checkb "victim restored" true (List.mem 0x1000 (Memsys.l1d_tags ms))

let test_memsys_speclfb () =
  let cfg =
    Config.with_defense (Config.Speclfb { Config.lfb_patched_first_load = true })
      Config.default
  in
  let ms, _ = mk_ms ~cfg () in
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:3 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Spec_load ~spec:true);
  let resps = drain ms ~from:1 ~until:100 in
  checkb "lfb serves the load" true (List.mem (3, 0x1000) resps);
  checkb "not installed while unsafe" false (List.mem 0x1000 (Memsys.l1d_tags ms));
  (* promotion on safety *)
  Memsys.request_expose ms ~now:101 ~rob_id:3 ~line:0x1000;
  ignore (drain ms ~from:101 ~until:200);
  checkb "promoted to L1" true (List.mem 0x1000 (Memsys.l1d_tags ms))

let test_memsys_squash_drops_lfb () =
  let cfg =
    Config.with_defense (Config.Speclfb { Config.lfb_patched_first_load = true })
      Config.default
  in
  let ms, _ = mk_ms ~cfg () in
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:3 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Spec_load ~spec:true);
  ignore (drain ms ~from:1 ~until:100);
  Memsys.cancel ms ~now:101 ~rob_id:3;
  ignore (drain ms ~from:101 ~until:150);
  checkb "dropped, never installed" false (List.mem 0x1000 (Memsys.l1d_tags ms))

let () =
  Alcotest.run ~and_exit:false "uarch"
    [
      ( "cache",
        [
          Alcotest.test_case "install/probe" `Quick test_cache_install_probe;
          Alcotest.test_case "line mapping" `Quick test_cache_line_mapping;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "probe no touch" `Quick test_cache_probe_does_not_touch;
          Alcotest.test_case "force replacement" `Quick test_cache_force_replacement;
          Alcotest.test_case "invalidate/reset" `Quick test_cache_invalidate_and_reset;
          Alcotest.test_case "snapshot/restore" `Quick test_cache_snapshot_restore;
          QCheck_alcotest.to_alcotest cache_tags_sorted_prop;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "basics" `Quick test_tlb_basics;
          Alcotest.test_case "page mapping" `Quick test_tlb_page_of_addr;
          Alcotest.test_case "snapshot" `Quick test_tlb_snapshot;
        ] );
      ( "predictors",
        [
          Alcotest.test_case "bp init" `Quick test_bp_initial_not_taken;
          Alcotest.test_case "bp training" `Quick test_bp_training;
          Alcotest.test_case "bp history" `Quick test_bp_history_affects_prediction;
          Alcotest.test_case "bp speculative history" `Quick test_bp_speculative_history;
          Alcotest.test_case "bp snapshot" `Quick test_bp_snapshot;
          Alcotest.test_case "mdp" `Quick test_mdp;
        ] );
      ( "memsys",
        [
          Alcotest.test_case "miss then hit" `Quick test_memsys_miss_then_hit;
          Alcotest.test_case "split access" `Quick test_memsys_split_access;
          Alcotest.test_case "mshr merge" `Quick test_memsys_mshr_merge;
          Alcotest.test_case "mshr exhaustion" `Quick test_memsys_mshr_exhaustion_blocks_queue;
          Alcotest.test_case "invisispec invisible" `Quick
            test_memsys_invisispec_spec_load_invisible;
          Alcotest.test_case "invisispec uv1" `Quick test_memsys_uv1_spec_eviction;
          Alcotest.test_case "cleanupspec cleanup" `Quick test_memsys_cleanupspec_cleanup;
          Alcotest.test_case "cleanupspec uv3" `Quick
            test_memsys_cleanupspec_uv3_store_not_cleaned;
          Alcotest.test_case "cleanupspec restores victim" `Quick
            test_memsys_cleanupspec_restores_victim;
          Alcotest.test_case "speclfb lfb" `Quick test_memsys_speclfb;
          Alcotest.test_case "speclfb squash" `Quick test_memsys_squash_drops_lfb;
        ] );
    ]

(* appended coverage: drain semantics, prime/flush interactions, event log *)

let test_event_log_toggling () =
  let log = Event.create () in
  Event.record log (Event.Committed { cycle = 1; pc = 0; disasm = "NOP" });
  checkb "disabled by default" true (Event.events log = []);
  Event.set_enabled log true;
  Event.record log (Event.Committed { cycle = 2; pc = 4; disasm = "NOP" });
  Event.record log (Event.Fetched { cycle = 3; pc = 8; disasm = "EXIT" });
  checki "two events in order" 2 (List.length (Event.events log));
  checki "cycle of first" 2 (Event.cycle_of (List.hd (Event.events log)));
  Event.clear log;
  checkb "cleared" true (Event.events log = [])

let test_event_pp_total () =
  (* every constructor renders without raising *)
  let samples =
    [
      Event.Fetched { cycle = 1; pc = 2; disasm = "NOP" };
      Event.Predicted { cycle = 1; pc = 2; taken = true; target = 3 };
      Event.Executed { cycle = 1; pc = 2; disasm = "NOP"; spec = true };
      Event.Mem_access { cycle = 1; pc = 2; kind = Event.Spec_load; addr = 3; line = 0; spec = true };
      Event.Cache_install { cycle = 1; cache = "L1D"; line = 0 };
      Event.Cache_evict { cycle = 1; cache = "L1D"; line = 0 };
      Event.Mshr_alloc { cycle = 1; line = 0 };
      Event.Mshr_stall { cycle = 1; kind = Event.Expose; line = 0 };
      Event.Spec_buffer_fill { cycle = 1; line = 0 };
      Event.Spec_eviction { cycle = 1; line = 0; victim = 64 };
      Event.Expose_issued { cycle = 1; line = 0 };
      Event.Split_access { cycle = 1; pc = 2; line1 = 0; line2 = 64 };
      Event.Cleanup { cycle = 1; line = 0; restored = Some 64 };
      Event.Cleanup_missing { cycle = 1; line = 0; reason = "split" };
      Event.Tlb_fill { cycle = 1; page = 2; tainted = true; by_store = true };
      Event.Taint_blocked { cycle = 1; pc = 2 };
      Event.Lfb_unprotected { cycle = 1; pc = 2; line = 0 };
      Event.Squashed { cycle = 1; pc = 2; reason = Event.Memdep_violation };
      Event.Committed { cycle = 1; pc = 2; disasm = "EXIT" };
    ]
  in
  List.iter
    (fun e ->
      let s = Format.asprintf "%a" Event.pp e in
      checkb "renders" true (String.length s > 0);
      checki "cycle" 1 (Event.cycle_of e))
    samples

let test_config_amplified () =
  let c = Config.amplified ~l1d_ways:2 ~mshrs:2 Config.default in
  checki "ways" 2 c.Config.l1d_ways;
  checki "mshrs" 2 c.Config.mshrs;
  checki "sets unchanged" Config.default.Config.l1d_sets c.Config.l1d_sets;
  checkb "bytes" true (Config.l1d_bytes c = 2 * 64 * 64)

let test_memsys_cancelled_queued_request_dropped () =
  let ms, _ = mk_ms () in
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:5 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:true);
  (* cancel BEFORE the queue processes: nothing must install *)
  Memsys.cancel ms ~now:1 ~rob_id:5;
  ignore (drain ms ~from:1 ~until:100);
  checkb "queued request dropped" true (Memsys.l1d_tags ms = [])

let test_memsys_cancelled_inflight_still_installs () =
  let ms, _ = mk_ms () in
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:5 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:true);
  (* let the MSHR allocate, then cancel: the fill continues (the baseline
     Spectre leak) but no response is delivered *)
  Memsys.tick ms ~now:2;
  Memsys.cancel ms ~now:3 ~rob_id:5;
  let resps = drain ms ~from:3 ~until:100 in
  checkb "no response to squashed load" false (List.exists (fun (r, _) -> r = 5) resps);
  checkb "fill still installs (leak)" true (List.mem 0x1000 (Memsys.l1d_tags ms))

let test_inflight_counter () =
  let ms, _ = mk_ms () in
  checki "idle" 0 (Memsys.inflight ms);
  ignore
    (Memsys.request_access ms ~now:1 ~rob_id:1 ~pc:0 ~addr:0x1000
       ~width:Amulet_isa.Width.W64 ~kind:Memsys.Demand_load ~spec:false);
  checkb "busy" true (Memsys.inflight ms > 0);
  ignore (drain ms ~from:1 ~until:100);
  checki "drained" 0 (Memsys.inflight ms)

let () =
  Alcotest.run "uarch-extra"
    [
      ( "events",
        [
          Alcotest.test_case "log toggling" `Quick test_event_log_toggling;
          Alcotest.test_case "pp total" `Quick test_event_pp_total;
        ] );
      ("config", [ Alcotest.test_case "amplified" `Quick test_config_amplified ]);
      ( "cancellation",
        [
          Alcotest.test_case "queued dropped" `Quick
            test_memsys_cancelled_queued_request_dropped;
          Alcotest.test_case "inflight installs" `Quick
            test_memsys_cancelled_inflight_still_installs;
          Alcotest.test_case "inflight counter" `Quick test_inflight_counter;
        ] );
    ]
