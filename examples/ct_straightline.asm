# Constant-time straight-line code: masked loads, no branches, no stores.
# Every memory address is input-tainted but executes architecturally, and
# there is no speculation window for a transient access to hide in —
# `amulet lint examples/ct_straightline.asm` proves it leak-free (exit 0),
# and the screen pre-filter would skip simulating it.
.bb0:
  AND RDI, 0b111111111000
  MOV RAX, qword ptr [R14 + RDI]
  AND RAX, 0b111111111000
  MOV RBX, qword ptr [R14 + RAX]
  XOR RCX, RCX
  ADD RCX, RBX
  EXIT
