(* Root-cause analysis workflow (paper §3.3, Figures 4/9 and Tables 9/10):
   find a violation, re-run the violating input pair with the debug log
   enabled, print the side-by-side memory-operation diff, walk the program
   dataflow back from the leaking access, and classify the violation by its
   log signature.

   Run with:  dune exec examples/root_cause.exe *)

open Amulet
open Amulet_isa
open Amulet_defenses

let () =
  Format.printf "Hunting a CleanupSpec violation to root-cause...@.@.";
  let defense = Defense.cleanupspec in
  let fz =
    Fuzzer.create (Run_spec.make ~defense ~seed:5 ~inputs:10 ~boosts:6 ())
  in
  let r = Reproducers.uv3 in
  match Fuzzer.test_program fz (Reproducers.flat r) with
  | Fuzzer.No_violation _ | Fuzzer.Discarded _ | Fuzzer.Screened ->
      Format.printf "no violation found; try another seed@."
  | Fuzzer.Found v ->
      Format.printf "%a@." Violation.pp v;
      (* Step 1: re-run both inputs with the debug log enabled. *)
      let ex =
        Executor.create ~boot_insts:1000 ~mode:Executor.Opt defense (Stats.create ())
      in
      Executor.start_program ex;
      let events_a =
        (Executor.run ex ~context:v.Violation.context ~log:true
           v.Violation.program v.Violation.input_a)
          .Executor.events
      in
      let events_b =
        (Executor.run ex ~context:v.Violation.context ~log:true
           v.Violation.program v.Violation.input_b)
          .Executor.events
      in
      (* Step 2: side-by-side comparison of memory operations (the layout of
         the paper's Tables 9 and 10; differing rows are starred). *)
      Format.printf "--- side-by-side memory operations ---@.";
      Format.printf "%a@." (fun f () -> Analysis.pp_side_by_side f events_a events_b) ();
      (* Step 3: find the access responsible for the trace difference and
         walk the dataflow back to the mis-speculated source. *)
      let diff_lines =
        match v.Violation.trace_a, v.Violation.trace_b with
        | Utrace.State_snapshot { l1d = la; _ }, Utrace.State_snapshot { l1d = lb; _ } ->
            List.filter (fun l -> not (List.mem l lb)) la
            @ List.filter (fun l -> not (List.mem l la)) lb
        | _ -> []
      in
      (match Analysis.leaking_access events_a ~diff_lines with
      | None -> Format.printf "(no speculative access matches the diff)@."
      | Some pc ->
          Format.printf "leaking speculative access at pc 0x%x@." pc;
          (match Program.index_of_pc v.Violation.program pc with
          | None -> ()
          | Some index ->
              Format.printf "dataflow back from the leaking address:@.";
              List.iter
                (fun i ->
                  Format.printf "  @%d 0x%x: %s@." i
                    (Program.pc_of_index v.Violation.program i)
                    (Inst.to_string (Program.get v.Violation.program i)))
                (Analysis.dataflow_back v.Violation.program ~index)));
      (* Step 4: signature classification (unique-violation filtering). *)
      let c = Analysis.classify ~defense events_a events_b in
      Format.printf "signature: %s@." (Analysis.class_name c)
