# The canonical Spectre-v1 gadget: a bounds check whose flags depend on a
# load, a conditional branch, and a transient input-addressed load behind
# it.  `amulet lint examples/spectre_v1.asm` classifies it potentially
# leaky (exit 1); `amulet fuzz`-ing it against the baseline finds real
# violations.
.bb0:
  AND RDI, 0b111111111000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b111111111000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  EXIT
