(* Leakage amplification (paper §3.4 and Table 6): after patching
   InvisiSpec's UV1 eviction bug, the default configuration tests clean —
   but shrinking the contended structures (cache ways, MSHRs) makes the
   deeper speculative-interference leak (UV2) observable.

   Run with:  dune exec examples/amplification.exe *)

open Amulet
open Amulet_defenses

let sweep_point ~l1d_ways ~mshrs =
  let defense = Defense.invisispec_patched in
  let sim_config = Defense.config ~l1d_ways ~mshrs defense in
  let t0 = Unix.gettimeofday () in
  let r =
    Campaign.run
      (Run_spec.make ~defense ~rounds:120 ~stop_after:1 ~seed:7 ~inputs:8
         ~boosts:6 ~sim_config ())
  in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%-34s %8.1f s   %s@."
    (Printf.sprintf "Patched, %d-way L1D, %d MSHRs" l1d_ways mshrs)
    dt
    (if Campaign.detected r then
       "VIOLATION: "
       ^ String.concat ", "
           (List.map (fun (c, _) -> Analysis.class_name c) r.Campaign.violation_classes)
     else "clean")

let () =
  Format.printf
    "Amplifying contention in patched InvisiSpec (Table 6 shape):@.@.";
  Format.printf "%-34s %10s   %s@." "Configuration" "Time" "Result";
  sweep_point ~l1d_ways:8 ~mshrs:256;
  sweep_point ~l1d_ways:2 ~mshrs:256;
  sweep_point ~l1d_ways:2 ~mshrs:2;
  Format.printf
    "@.Smaller structures do not change the design's security; they raise \
     the@.probability that a short random test case induces the contention a \
     leak needs.@."
