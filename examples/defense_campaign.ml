(* A miniature version of the paper's Table 4 campaign: test every defense
   against its contract and summarize what AMuLeT finds.

   Run with:  dune exec examples/defense_campaign.exe
   (Budgets are scaled down so the whole run takes a few minutes; the bench
   harness in bench/main.exe runs the full reproduction.) *)

open Amulet
open Amulet_defenses

let campaign defense ~n_programs ~stop =
  Campaign.run
    (Run_spec.make ~defense ~rounds:n_programs ?stop_after:stop ~seed:7
       ~inputs:8 ~boosts:5 ())

let () =
  Format.printf
    "Testing secure speculation countermeasures (scaled-down Table 4)...@.@.";
  let targets =
    [
      Defense.baseline, 20, Some 2;
      Defense.invisispec, 15, Some 2;
      Defense.cleanupspec, 40, Some 6;
      Defense.speclfb, 15, Some 2;
      (* STT's KV3 needs long campaigns (hours in the paper); the crafted
         reproducer demonstrates it in seconds instead *)
    ]
  in
  let results =
    List.map (fun (d, n, stop) -> campaign d ~n_programs:n ~stop) targets
  in
  Format.printf "%-14s %-9s %-10s %-12s %-12s %s@." "Defense" "Contract"
    "Detected?" "Avg det (s)" "Thruput" "Unique violations";
  List.iter
    (fun r ->
      Format.printf "%-14s %-9s %-10s %-12s %-12.0f %s@."
        r.Campaign.defense.Defense.name r.Campaign.contract_name
        (if Campaign.detected r then "YES" else "no")
        (match Campaign.avg_detection_time r with
        | Some t -> Printf.sprintf "%.2f" t
        | None -> "-")
        r.Campaign.throughput
        (String.concat "; "
           (List.map
              (fun (c, n) -> Printf.sprintf "%dx %s" n (Analysis.class_name c))
              r.Campaign.violation_classes)))
    results;
  Format.printf
    "@.STT (ARCH-SEQ) needs far longer random campaigns (the paper reports \
     ~3 h average@.detection); its KV3 leak reproduces in seconds from the \
     crafted test instead:@.";
  match Reproducers.hunt Reproducers.figure9 with
  | Some v ->
      Format.printf "  STT violation found: %s@."
        (Option.value v.Violation.signature ~default:"?")
  | None -> Format.printf "  (reproducer budget exhausted)@."
