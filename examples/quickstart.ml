(* Quickstart: fuzz the unprotected out-of-order CPU against the CT-SEQ
   contract and print the first contract violation (a Spectre-v1 leak).

   Run with:  dune exec examples/quickstart.exe *)

open Amulet
open Amulet_defenses

let () =
  Format.printf
    "AMuLeT quickstart: hunting speculative leaks in the baseline CPU...@.@.";
  (* A campaign is a sequence of fuzzing rounds: each round generates a
     random test program, a population of inputs (base inputs plus
     taint-boosted mutants that provably share a contract trace), runs them
     through the simulator, and flags validated microarchitectural
     differences within a contract-equivalence class. *)
  let spec =
    Run_spec.make ~defense:Defense.baseline ~rounds:50 ~seed:2024
      ~stop_after:1 (* stop at the first finding *)
      ~inputs:10 ~boosts:4 (* 50 test cases per program *)
      ()
  in
  let result = Campaign.run spec in
  (match result.Campaign.violations with
  | [] -> Format.printf "no violations found (try more programs)@."
  | v :: _ ->
      Format.printf "%a@." Violation.pp v;
      Format.printf
        "The two inputs above have identical CT-SEQ contract traces (same \
         control flow,@.same architectural load/store addresses), yet leave \
         different lines in the@.L1D cache: a transiently executed load leaked \
         its input-dependent address.@.");
  Format.printf "@.%a" Campaign.pp result
