(** Zero-dependency telemetry registry.  See obs.mli for the contract.

    Representation notes: every metric handle carries the registry's shared
    [enabled] ref, so the hot path is a single deref plus an in-place
    mutation — no hashtable access after the handle is resolved.  The
    registry's hashtables are only touched at resolve time and at snapshot
    time. *)

(* ------------------------------------------------------------------ *)
(* Metric cells                                                        *)
(* ------------------------------------------------------------------ *)

type counter = { c_enabled : bool ref; mutable c_value : int }
type gauge = { g_enabled : bool ref; mutable g_value : float }

type timer = {
  t_enabled : bool ref;
  mutable t_events : int;
  mutable t_total : float;
}

(* Log-bucketed histogram: bucket [i] covers (bound(i-1), bound(i)]
   seconds with bound i = 1e-6 * 2^i; the last slot is overflow. *)
let hist_buckets = 28

let bucket_bound i = 1e-6 *. Float.of_int (1 lsl i)

type histogram = {
  h_enabled : bool ref;
  mutable h_observations : int;
  mutable h_sum : float;
  h_counts : int array; (* hist_buckets + 1 slots, last = overflow *)
}

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  enabled : bool ref;
  permanently_off : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

type registry = t

let create ?(enabled = true) () =
  {
    enabled = ref enabled;
    permanently_off = false;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    timers = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let noop =
  {
    enabled = ref false;
    permanently_off = true;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    timers = Hashtbl.create 1;
    histograms = Hashtbl.create 1;
  }

let set_enabled t b = if not t.permanently_off then t.enabled := b
let is_enabled t = !(t.enabled)

(* The shared [noop] registry hands out detached cells instead of
   registering them: it is reached from every component that was not given
   a live registry — concurrently, across domains — so its tables must
   never be mutated, and its snapshot must stay empty. *)
let resolve t tbl name make =
  if t.permanently_off then make ()
  else
    match Hashtbl.find_opt tbl name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace tbl name m;
        m

let counter t name =
  resolve t t.counters name (fun () -> { c_enabled = t.enabled; c_value = 0 })

let incr c = if !(c.c_enabled) then c.c_value <- c.c_value + 1
let add c n = if !(c.c_enabled) then c.c_value <- c.c_value + n
let value c = c.c_value

let gauge t name =
  resolve t t.gauges name (fun () -> { g_enabled = t.enabled; g_value = 0. })

let set_gauge g v = if !(g.g_enabled) then g.g_value <- v
let gauge_value g = g.g_value

let timer t name =
  resolve t t.timers name (fun () ->
      { t_enabled = t.enabled; t_events = 0; t_total = 0. })

let record tm seconds =
  if !(tm.t_enabled) then begin
    tm.t_events <- tm.t_events + 1;
    tm.t_total <- tm.t_total +. Float.max 0. seconds
  end

let histogram t name =
  resolve t t.histograms name (fun () ->
      {
        h_enabled = t.enabled;
        h_observations = 0;
        h_sum = 0.;
        h_counts = Array.make (hist_buckets + 1) 0;
      })

let bucket_index v =
  let rec go i = if i >= hist_buckets || v <= bucket_bound i then i else go (i + 1) in
  go 0

let observe h v =
  if !(h.h_enabled) then begin
    let v = Float.max 0. v in
    h.h_observations <- h.h_observations + 1;
    h.h_sum <- h.h_sum +. v;
    let i = bucket_index v in
    h.h_counts.(i) <- h.h_counts.(i) + 1
  end

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

module Clock = struct
  let now_s () = Unix.gettimeofday ()

  (* The wall clock can step backwards (NTP); clamping keeps every
     duration and deadline computation in the stack non-negative. *)
  let elapsed_s ~since = Float.max 0. (now_s () -. since)
  let elapsed_ms ~since = 1000. *. elapsed_s ~since
end

let time tm f =
  if !(tm.t_enabled) then begin
    let t0 = Clock.now_s () in
    let finally () = record tm (Clock.elapsed_s ~since:t0) in
    Fun.protect ~finally f
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type timer_v = { events : int; total_s : float }

  type histogram_v = {
    observations : int;
    sum_s : float;
    buckets : int array;
  }

  type t = {
    counters : (string * int) list;
    gauges : (string * float) list;
    timers : (string * timer_v) list;
    histograms : (string * histogram_v) list;
  }

  let empty = { counters = []; gauges = []; timers = []; histograms = [] }

  let bucket_bound = bucket_bound

  let sorted_bindings tbl proj =
    Hashtbl.fold (fun name m acc -> (name, proj m) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let of_registry (r : registry) =
    {
      counters = sorted_bindings r.counters (fun c -> c.c_value);
      gauges = sorted_bindings r.gauges (fun g -> g.g_value);
      timers =
        sorted_bindings r.timers (fun tm ->
            { events = tm.t_events; total_s = tm.t_total });
      histograms =
        sorted_bindings r.histograms (fun h ->
            {
              observations = h.h_observations;
              sum_s = h.h_sum;
              buckets = Array.copy h.h_counts;
            });
    }

  (* Merge two sorted assoc lists pointwise: [combine] when a name appears
     in both, [keep] when it appears in only one side. *)
  let zip_assoc combine keep_a keep_b =
    let rec go a b =
      match (a, b) with
      | [], rest -> List.map (fun (n, v) -> (n, keep_b v)) rest
      | rest, [] -> List.map (fun (n, v) -> (n, keep_a v)) rest
      | (na, va) :: ta, (nb, vb) :: tb ->
          let c = String.compare na nb in
          if c = 0 then (na, combine va vb) :: go ta tb
          else if c < 0 then (na, keep_a va) :: go ta b
          else (nb, keep_b vb) :: go a tb
    in
    go

  let diff ~older ~newer =
    {
      counters =
        zip_assoc (fun o n -> n - o) (fun o -> -o) Fun.id older.counters
          newer.counters;
      gauges = zip_assoc (fun _ n -> n) Fun.id Fun.id older.gauges newer.gauges;
      timers =
        zip_assoc
          (fun o n ->
            { events = n.events - o.events; total_s = n.total_s -. o.total_s })
          (fun o -> { events = -o.events; total_s = -.o.total_s })
          Fun.id older.timers newer.timers;
      histograms =
        zip_assoc
          (fun o n ->
            {
              observations = n.observations - o.observations;
              sum_s = n.sum_s -. o.sum_s;
              buckets = Array.mapi (fun i nb -> nb - o.buckets.(i)) n.buckets;
            })
          (fun o ->
            {
              observations = -o.observations;
              sum_s = -.o.sum_s;
              buckets = Array.map (fun b -> -b) o.buckets;
            })
          Fun.id older.histograms newer.histograms;
    }

  let merge a b =
    {
      counters = zip_assoc ( + ) Fun.id Fun.id a.counters b.counters;
      gauges = zip_assoc Float.max Fun.id Fun.id a.gauges b.gauges;
      timers =
        zip_assoc
          (fun x y ->
            { events = x.events + y.events; total_s = x.total_s +. y.total_s })
          Fun.id Fun.id a.timers b.timers;
      histograms =
        zip_assoc
          (fun x y ->
            {
              observations = x.observations + y.observations;
              sum_s = x.sum_s +. y.sum_s;
              buckets = Array.mapi (fun i xb -> xb + y.buckets.(i)) x.buckets;
            })
          Fun.id Fun.id a.histograms b.histograms;
    }

  let filter keep t =
    let f l = List.filter (fun (n, _) -> keep n) l in
    {
      counters = f t.counters;
      gauges = f t.gauges;
      timers = f t.timers;
      histograms = f t.histograms;
    }

  let counter_value t name =
    match List.assoc_opt name t.counters with Some v -> v | None -> 0

  let percentile (h : histogram_v) p =
    if h.observations <= 0 then 0.
    else begin
      let rank =
        Float.to_int
          (Float.round (Float.of_int h.observations *. p /. 100.))
      in
      let rank = max 1 (min h.observations rank) in
      let acc = ref 0 and result = ref (bucket_bound hist_buckets) in
      (try
         Array.iteri
           (fun i c ->
             acc := !acc + c;
             if !acc >= rank then begin
               result := bucket_bound i;
               raise Exit
             end)
           h.buckets
       with Exit -> ());
      !result
    end

  (* ---------------------------------------------------------------- *)
  (* JSON export (hand-rolled: no external dependency)                 *)
  (* ---------------------------------------------------------------- *)

  let json_escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_float f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.9g" f

  let to_json t =
    let buf = Buffer.create 4096 in
    let obj name body =
      Buffer.add_string buf (Printf.sprintf "\"%s\":{" name);
      body ();
      Buffer.add_string buf "}"
    in
    let entries l emit =
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape name));
          emit v)
        l
    in
    Buffer.add_char buf '{';
    obj "counters" (fun () ->
        entries t.counters (fun v -> Buffer.add_string buf (string_of_int v)));
    Buffer.add_char buf ',';
    obj "gauges" (fun () ->
        entries t.gauges (fun v -> Buffer.add_string buf (json_float v)));
    Buffer.add_char buf ',';
    obj "timers" (fun () ->
        entries t.timers (fun (v : timer_v) ->
            Buffer.add_string buf
              (Printf.sprintf "{\"events\":%d,\"total_s\":%s}" v.events
                 (json_float v.total_s))));
    Buffer.add_char buf ',';
    obj "histograms" (fun () ->
        entries t.histograms (fun (h : histogram_v) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"observations\":%d,\"sum_s\":%s,\"p50_s\":%s,\"p90_s\":%s,\"p99_s\":%s,\"buckets\":[%s]}"
                 h.observations (json_float h.sum_s)
                 (json_float (percentile h 50.))
                 (json_float (percentile h 90.))
                 (json_float (percentile h 99.))
                 (String.concat ","
                    (Array.to_list (Array.map string_of_int h.buckets))))));
    Buffer.add_char buf '}';
    Buffer.contents buf

  let pp fmt t =
    let any = ref false in
    List.iter
      (fun (n, v) ->
        if v <> 0 then begin
          Format.fprintf fmt "%-42s %d@." n v;
          any := true
        end)
      t.counters;
    List.iter
      (fun (n, v) ->
        if v <> 0. then begin
          Format.fprintf fmt "%-42s %.3f@." n v;
          any := true
        end)
      t.gauges;
    List.iter
      (fun (n, (v : timer_v)) ->
        if v.events <> 0 then begin
          Format.fprintf fmt "%-42s %d events, %.3f s total@." n v.events
            v.total_s;
          any := true
        end)
      t.timers;
    List.iter
      (fun (n, (h : histogram_v)) ->
        if h.observations <> 0 then begin
          Format.fprintf fmt
            "%-42s %d obs, p50 %.6f s, p90 %.6f s, p99 %.6f s@." n
            h.observations (percentile h 50.) (percentile h 90.)
            (percentile h 99.);
          any := true
        end)
      t.histograms;
    if not !any then Format.fprintf fmt "(no nonzero metrics)@."
end
