(** Zero-dependency telemetry registry.

    A registry holds named counters, gauges, timers and histograms.  The
    hot-path operations ({!incr}, {!add}, {!observe}) are O(1): one load of
    the registry's shared [enabled] flag and, when enabled, one in-place
    mutation — no hashing, no allocation.  Metric handles are resolved once
    at component-construction time and kept in the component's record, so
    instrumented code never pays a name lookup per event.

    Instrumentation built on this module must be {e trace-invisible}:
    metrics only observe, they never influence simulated behaviour, so
    hardware and contract traces are byte-identical with telemetry on or
    off.  The {!noop} registry (permanently disabled) is the default
    everywhere, making uninstrumented use free. *)

(** {1 Registry} *)

type t
(** A metric registry. *)

val create : ?enabled:bool -> unit -> t
(** Fresh registry; [enabled] defaults to [true]. *)

val noop : t
(** A shared, permanently-disabled registry: handles resolved against it
    never record anything.  Used as the default for every [?metrics]
    parameter in the stack. *)

val set_enabled : t -> bool -> unit
(** Flip recording on or off for every metric of the registry.  [noop]
    cannot be enabled.  Used e.g. to exclude the simulator's synthetic
    warm-boot workload from hardware counters so that engines booting a
    different number of simulators still accumulate identical counts. *)

val is_enabled : t -> bool

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Resolve (or create) the counter [name].  Resolving the same name twice
    returns the same underlying cell. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Timers}

    A timer accumulates a count of events and their total duration in
    seconds.  Record durations measured with {!Clock}. *)

type timer

val timer : t -> string -> timer

val record : timer -> float -> unit
(** [record tm seconds] adds one event of [seconds] duration (clamped to
    [>= 0]). *)

val time : timer -> (unit -> 'a) -> 'a
(** Run a thunk and record its wall-clock duration. *)

(** {1 Histograms}

    Log-bucketed latency histograms: bucket [i] counts observations in
    [(bound(i-1), bound(i)]] seconds with [bound i = 1e-6 * 2^i] — from
    1 µs up to ~2 minutes, plus an overflow bucket. *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit
(** Record one observation in seconds. *)

(** {1 Monotonic-safe clock} *)

module Clock : sig
  val now_s : unit -> float
  (** Current wall-clock time in seconds (epoch). *)

  val elapsed_s : since:float -> float
  (** Seconds elapsed since [since], clamped to [>= 0].  The wall clock is
      not monotonic — an NTP step can move it backwards — so raw
      [now () -. since] can be negative; every deadline/duration
      computation in the stack goes through this clamp. *)

  val elapsed_ms : since:float -> float
  (** Milliseconds elapsed since [since], clamped to [>= 0]. *)
end

(** {1 Snapshots} *)

type registry = t
(** Alias so {!Snapshot} can refer to the registry type after shadowing
    [t] with its own. *)

module Snapshot : sig
  type timer_v = { events : int; total_s : float }

  type histogram_v = {
    observations : int;
    sum_s : float;
    buckets : int array;  (** one slot per log bucket, plus overflow *)
  }

  (** An immutable, name-sorted copy of a registry's metrics. *)
  type t = {
    counters : (string * int) list;
    gauges : (string * float) list;
    timers : (string * timer_v) list;
    histograms : (string * histogram_v) list;
  }

  val empty : t

  val of_registry : registry -> t
  (** Immutable copy of the registry's current metric values. *)

  val diff : older:t -> newer:t -> t
  (** Per-name difference [newer - older] for counters, timers and
      histograms (gauges keep the newer value).  Names present in only one
      snapshot are kept as-is.  This is the "counter delta between two
      executions" a forensics report shows. *)

  val merge : t -> t -> t
  (** Pointwise sum (gauges keep the max) — used to combine the per-domain
      registries of a parallel campaign. *)

  val filter : (string -> bool) -> t -> t
  (** Keep only metrics whose name satisfies the predicate. *)

  val counter_value : t -> string -> int
  (** Value of a counter in the snapshot, [0] when absent. *)

  val percentile : histogram_v -> float -> float
  (** [percentile h p] for [p] in [0..100]: upper bound (seconds) of the
      bucket containing the [p]-th percentile observation; [0.] when
      empty. *)

  val bucket_bound : int -> float
  (** Upper bound in seconds of log bucket [i]. *)

  val to_json : t -> string
  (** Serialize as a JSON object (hand-rolled; no external dependency).
      Histograms are exported with derived p50/p90/p99 alongside raw
      buckets. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable dump: one metric per line, zero-valued metrics
      omitted. *)
end
