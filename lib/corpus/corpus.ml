(** The seed corpus and its power-schedule scheduler.

    Each entry is a test program that earned its slot by exhibiting novel
    coverage (see {!Coverage}) or finding a violation, carrying a score
    (energy: how productive its lineage has been) and an age (rounds since
    it last produced anything novel).  The scheduler favours high-score,
    recently productive seeds and ages out stale ones — an AFL-style power
    schedule over μarch feedback instead of edge coverage.

    Determinism: entries live in insertion order, every random decision
    draws from the campaign {!Rng}, and nothing reads the clock or iterates
    a hashtable, so identical seeds produce identical corpora (and thus
    identical violation fingerprints) across engines, domain counts and
    worker fleets. *)

open Amulet_isa

type params = {
  capacity : int;  (** max live entries; lowest-score/oldest evicted *)
  max_age : int;  (** rounds without novelty before an entry is retired *)
  mutate_fraction : float;
      (** probability a round mutates a corpus seed rather than generating
          a fresh random program (when the corpus is non-empty) *)
  energy : int;  (** max stacked mutation operators per mutant *)
  seed_programs : string list;
      (** initial seeds, in {!Asm.parse_flat} or {!Asm.parse} syntax *)
}

let default_params =
  {
    capacity = 64;
    max_age = 32;
    mutate_fraction = 0.75;
    energy = 4;
    seed_programs = [];
  }

type entry = {
  program : Program.flat;
  text : string;  (** canonical {!Asm.print_flat} form; the dedup key *)
  mutable score : int;
  mutable age : int;  (** rounds since last novelty from this lineage *)
  mutable trials : int;  (** times the scheduler picked this entry *)
}

type t = {
  params : params;
  coverage : Coverage.t;
  mutable entries : entry list;  (** insertion order, oldest first *)
  mutable round : int;
  mutable evictions : int;
  mutable rejected_seeds : int;
}

let params t = t.params
let coverage t = t.coverage
let size t = List.length t.entries
let round t = t.round
let evictions t = t.evictions
let rejected_seeds t = t.rejected_seeds
let entries t = t.entries

let top t n =
  List.stable_sort (fun a b -> compare b.score a.score) t.entries
  |> List.filteri (fun i _ -> i < n)

(* Seed programs may be written in either the labelled or the flat syntax. *)
let parse_seed text =
  match Asm.parse_flat text with
  | flat -> flat
  | exception Asm.Parse_error _ -> Program.flatten (Asm.parse text)

(* Seeds scoring at least this were admitted for finding a violation (or
   were planted by the user, who presumably knows why); the scheduler
   treats their presence as the signal to shift from exploration to
   exploitation. *)
let violation_bonus = 64

(* Planted seed programs start as presumed finders: the user supplied them
   because they matter (e.g. a known-vulnerable gadget). *)
let seed_score = violation_bonus

let evict_lowest t =
  match t.entries with
  | [] -> ()
  | e0 :: _ ->
      let victim =
        List.fold_left (fun v e -> if e.score < v.score then e else v) e0 t.entries
      in
      t.entries <- List.filter (fun e -> e != victim) t.entries;
      t.evictions <- t.evictions + 1

let add_entry t program score =
  let text = Asm.print_flat program in
  if not (List.exists (fun e -> String.equal e.text text) t.entries) then begin
    t.entries <- t.entries @ [ { program; text; score; age = 0; trials = 0 } ];
    while List.length t.entries > t.params.capacity do
      evict_lowest t
    done
  end

let create ?(params = default_params) ~sandbox_bytes () =
  let t =
    {
      params;
      coverage = Coverage.create ();
      entries = [];
      round = 0;
      evictions = 0;
      rejected_seeds = 0;
    }
  in
  List.iter
    (fun text ->
      match parse_seed text with
      | flat when Amulet_static.Lint.ok (Amulet_static.Lint.check ~sandbox_bytes flat)
        ->
          add_entry t flat seed_score
      | _ -> t.rejected_seeds <- t.rejected_seeds + 1
      | exception Asm.Parse_error _ ->
          t.rejected_seeds <- t.rejected_seeds + 1)
    params.seed_programs;
  t

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

type action = Fresh | Mutate of entry

(* Power schedule: energy grows with score, decays with age.  Quadratic in
   the score so the few high-value seeds (violation finders) dominate the
   many novelty-only admissions instead of being crowd-diluted by them;
   every live entry keeps weight >= 1 so no seed is fully starved before
   eviction. *)
let weight e =
  let s = max 1 (1 + (2 * e.score) - e.age) in
  s * s

let has_finder t = List.exists (fun e -> e.score >= violation_bonus) t.entries

(** Decide what the next round tests: a fresh random program, or a mutant
    of a scheduled corpus entry.  Warm-up: until the corpus holds a
    violation finder, most of [mutate_fraction] is withheld in favour of
    fresh exploration — mutating novelty-only seeds explores far more
    slowly than drawing fresh programs, and coverage novelty alone is a
    weak predictor of violations. *)
let next t rng =
  match t.entries with
  | [] -> Fresh
  | es ->
      let p =
        if has_finder t then t.params.mutate_fraction
        else t.params.mutate_fraction /. 4.
      in
      if not (Rng.bool rng ~p) then Fresh
      else begin
        let e = Rng.weighted rng (List.map (fun e -> (weight e, e)) es) in
        e.trials <- e.trials + 1;
        Mutate e
      end

(** Record one run's coverage {!Coverage.feedback}; returns the novel
    feature count. *)
let observe t feedback = Coverage.observe t.coverage feedback

(** Account a tested program: admit it when its run was novel (or found a
    violation), and reward/refresh its parent.  [bonus] is extra energy
    from the static [score] pre-analysis (transmitter count). *)
let record t ?parent ~program ~novel ~violation ~bonus () =
  (match parent with
  | Some p when novel > 0 || violation ->
      p.score <- (p.score + novel + if violation then violation_bonus / 2 else 0);
      p.age <- 0
  | Some _ | None -> ());
  if novel > 0 || violation then
    add_entry t program
      (novel + bonus + if violation then violation_bonus else 0)

(** End-of-round bookkeeping: age every entry and retire the stale. *)
let tick t =
  t.round <- t.round + 1;
  List.iter (fun e -> e.age <- e.age + 1) t.entries;
  let keep, stale =
    List.partition (fun e -> e.age <= t.params.max_age) t.entries
  in
  t.evictions <- t.evictions + List.length stale;
  t.entries <- keep

(* ------------------------------------------------------------------ *)
(* Persistence (journal checkpoints, `amulet corpus`)                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 16) in
  String.iter
    (function
      | '\n' -> Buffer.add_string b "\\n"
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | c -> Buffer.add_char b c);
       incr i
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let magic = "amulet-corpus 1"

let to_string t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "capacity=%d" t.params.capacity;
  line "max_age=%d" t.params.max_age;
  line "mutate_fraction=%f" t.params.mutate_fraction;
  line "energy=%d" t.params.energy;
  line "round=%d" t.round;
  line "evictions=%d" t.evictions;
  line "rejected_seeds=%d" t.rejected_seeds;
  List.iter (fun s -> line "seed %s" (escape s)) t.params.seed_programs;
  line "coverage-begin";
  List.iter (fun l -> line "%s" l) (Coverage.to_lines t.coverage);
  line "coverage-end";
  List.iter
    (fun e ->
      line "entry score=%d age=%d trials=%d" e.score e.age e.trials;
      line "program %s" (escape e.text))
    t.entries;
  Buffer.contents b

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | m :: rest when String.equal m magic ->
      let params = ref default_params in
      let t =
        {
          params = !params;
          coverage = Coverage.create ();
          entries = [];
          round = 0;
          evictions = 0;
          rejected_seeds = 0;
        }
      in
      let seeds = ref [] in
      let cov_lines = ref [] in
      let in_cov = ref false in
      let pending_entry = ref None in
      let strip_prefix p l =
        if String.length l >= String.length p && String.sub l 0 (String.length p) = p
        then Some (String.sub l (String.length p) (String.length l - String.length p))
        else None
      in
      List.iter
        (fun l ->
          if String.equal l "coverage-begin" then in_cov := true
          else if String.equal l "coverage-end" then in_cov := false
          else if !in_cov then cov_lines := l :: !cov_lines
          else
            match strip_prefix "seed " l with
            | Some s -> seeds := unescape s :: !seeds
            | None -> (
                match strip_prefix "program " l with
                | Some p -> (
                    match !pending_entry with
                    | Some (score, age, trials) ->
                        pending_entry := None;
                        let text = unescape p in
                        let program = Asm.parse_flat text in
                        t.entries <-
                          t.entries @ [ { program; text; score; age; trials } ]
                    | None -> failwith "Corpus.of_string: orphan program line")
                | None -> (
                    match
                      Scanf.sscanf_opt l "entry score=%d age=%d trials=%d"
                        (fun s a tr -> (s, a, tr))
                    with
                    | Some e -> pending_entry := Some e
                    | None -> (
                        match String.index_opt l '=' with
                        | Some i ->
                            let k = String.sub l 0 i in
                            let v =
                              String.sub l (i + 1) (String.length l - i - 1)
                            in
                            let iv () = int_of_string v in
                            (match k with
                            | "capacity" -> params := { !params with capacity = iv () }
                            | "max_age" -> params := { !params with max_age = iv () }
                            | "mutate_fraction" ->
                                params :=
                                  { !params with mutate_fraction = float_of_string v }
                            | "energy" -> params := { !params with energy = iv () }
                            | "round" -> t.round <- iv ()
                            | "evictions" -> t.evictions <- iv ()
                            | "rejected_seeds" -> t.rejected_seeds <- iv ()
                            | _ -> ())
                        | None ->
                            if String.length (String.trim l) > 0 then
                              failwith
                                (Printf.sprintf "Corpus.of_string: bad line %S" l)))))
        (List.filter (fun l -> String.length l > 0) rest);
      let cov = Coverage.of_lines (List.rev !cov_lines) in
      {
        t with
        params = { !params with seed_programs = List.rev !seeds };
        coverage = cov;
      }
  | _ -> failwith "Corpus.of_string: bad magic"

let pp fmt t =
  Format.fprintf fmt "corpus: %d seeds, %a, round %d, %d evictions" (size t)
    (fun fmt c -> Coverage.pp fmt c)
    t.coverage t.round t.evictions
