(** Coverage map for feedback-guided generation.

    A "feature" is an int64 fingerprint of one qualitative behaviour a test
    program exhibited: the shape of its contract trace (which kinds of
    observations, in which order) or a log₂ bucket of a per-run pipeline
    counter (squashes, speculative issues, mispredicts, …).  The map counts
    how often each feature has been seen; a program whose run produces a
    never-seen feature is {e novel} and earns a corpus slot.

    Everything here is deterministic: features are FNV mixes of
    deterministic per-run data, and serialization sorts by feature, so two
    campaigns with the same seed build byte-identical maps regardless of
    domain/worker count. *)

(** The per-run signal a coverage observation is derived from.  The counter
    fields come from {!Amulet_uarch.Simulator.run_stats} (the pipeline's own
    deterministic totals — NOT the detachable telemetry registry); the trace
    fields from the leakage model. *)
type feedback = {
  shape_hash : int64;  (** {!Amulet_contracts.Observation.shape_hash} fold *)
  ctrace_classes : int;  (** distinct contract-trace hashes over the inputs *)
  spec_steps : int;  (** emulator instructions on mispredicted paths *)
  cycles : int;
  committed_insts : int;
  squashes : int;
  squashed_insts : int;
  spec_issued : int;
  mispredicts : int;
}

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L
let mix h v = Int64.mul (Int64.logxor h v) fnv_prime
let feature ~tag v = mix (mix fnv_offset (Int64.of_int tag)) v

(* log₂ bucket: 0, 1, 2, 3... for 0, 1, 2-3, 4-7 ... — AFL-style count
   classing so "a few more squashes" is not novelty but "an order of
   magnitude more" is. *)
let bucket n =
  if n <= 0 then 0
  else begin
    let b = ref 0 and n = ref n in
    while !n > 0 do
      incr b;
      n := !n lsr 1
    done;
    !b
  end

let features_of (f : feedback) : int64 list =
  let cpi_x4 = f.cycles * 4 / max 1 f.committed_insts in
  [
    feature ~tag:1 f.shape_hash;
    feature ~tag:2 (Int64.of_int (bucket f.ctrace_classes));
    feature ~tag:3 (Int64.of_int (bucket f.squashes));
    feature ~tag:4 (Int64.of_int (bucket f.squashed_insts));
    feature ~tag:5 (Int64.of_int (bucket f.spec_issued));
    feature ~tag:6 (Int64.of_int (bucket f.mispredicts));
    feature ~tag:7 (Int64.of_int (bucket f.spec_steps));
    feature ~tag:8 (Int64.of_int (bucket cpi_x4));
  ]

type t = {
  hits : (int64, int) Hashtbl.t;
  mutable observations : int;  (** total [observe] calls *)
}

let create () = { hits = Hashtbl.create 256; observations = 0 }

(** Record one run's features; returns how many were never seen before. *)
let observe t (f : feedback) : int =
  t.observations <- t.observations + 1;
  List.fold_left
    (fun novel feat ->
      match Hashtbl.find_opt t.hits feat with
      | Some n ->
          Hashtbl.replace t.hits feat (n + 1);
          novel
      | None ->
          Hashtbl.add t.hits feat 1;
          novel + 1)
    0 (features_of f)

let size t = Hashtbl.length t.hits
let observations t = t.observations

(* Sorted dump so serialization (and anything derived from it) never
   depends on Hashtbl iteration order. *)
let sorted_hits t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hits []
  |> List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b)

let to_lines t =
  Printf.sprintf "observations=%d" t.observations
  :: List.map (fun (k, v) -> Printf.sprintf "%Lx %d" k v) (sorted_hits t)

let of_lines lines =
  let t = create () in
  List.iter
    (fun line ->
      match String.index_opt line '=' with
      | Some _ ->
          Scanf.sscanf_opt line "observations=%d" (fun n ->
              t.observations <- n)
          |> ignore
      | None ->
          Scanf.sscanf_opt line "%Lx %d" (fun k v -> Hashtbl.replace t.hits k v)
          |> ignore)
    lines;
  t

let pp fmt t =
  Format.fprintf fmt "coverage: %d features over %d observations" (size t)
    t.observations
