(** Seed corpus + power-schedule scheduler for feedback-guided generation.

    Entries earn slots via novel coverage or violations, carry score
    (lineage energy) and age (rounds since novelty); the scheduler favours
    high-score young seeds and retires stale ones.  Fully deterministic:
    insertion-ordered, Rng-driven, no clocks, no hashtable iteration in
    decisions — same seed, same corpus, same fingerprint, regardless of
    engine/domain/worker count. *)

open Amulet_isa

type params = {
  capacity : int;  (** max live entries; lowest-score evicted first *)
  max_age : int;  (** rounds without novelty before retirement *)
  mutate_fraction : float;
      (** probability a round mutates a seed vs. generating fresh *)
  energy : int;  (** max stacked mutation operators per mutant *)
  seed_programs : string list;
      (** initial seeds ({!Asm.parse_flat} or {!Asm.parse} syntax);
          lint-invalid seeds are counted in [rejected_seeds], not admitted *)
}

val default_params : params

type entry = {
  program : Program.flat;
  text : string;  (** canonical {!Asm.print_flat} form; the dedup key *)
  mutable score : int;
  mutable age : int;
  mutable trials : int;  (** times the scheduler picked this entry *)
}

type t

val create : ?params:params -> sandbox_bytes:int -> unit -> t
val params : t -> params
val coverage : t -> Coverage.t
val size : t -> int
val round : t -> int
val evictions : t -> int
val rejected_seeds : t -> int
val entries : t -> entry list
(** Insertion order, oldest first. *)

val top : t -> int -> entry list
(** Highest-score entries first (stable within equal scores). *)

type action = Fresh | Mutate of entry

val next : t -> Rng.t -> action
(** Schedule the next round: [Fresh] when the corpus is empty or the
    mutate-fraction coin says explore; otherwise a seed drawn with weight
    [(max 1 (1 + 2*score - age))²] — quadratic so high-score violation
    finders dominate the many novelty-only admissions.  Until the corpus
    holds a finder (score >= the violation bonus; planted seeds qualify),
    only a quarter of [mutate_fraction] is spent on mutation, keeping
    exploration fresh-draw-heavy while violations are still unseen. *)

val observe : t -> Coverage.feedback -> int
(** Record one run's feedback in the coverage map; returns the novel
    feature count. *)

val record :
  t ->
  ?parent:entry ->
  program:Program.flat ->
  novel:int ->
  violation:bool ->
  bonus:int ->
  unit ->
  unit
(** Account a tested program: admit on novelty or violation (score =
    novel + bonus + violation bonus), reward and rejuvenate the parent.
    [bonus] is mutation energy from the static [score] pre-analysis. *)

val tick : t -> unit
(** End-of-round: age all entries, retire those past [max_age]. *)

val to_string : t -> string
(** Text checkpoint (params, coverage map, entries); embedded in campaign
    journals and written by [fuzz --corpus-out]. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Failure] on malformed input. *)

val pp : Format.formatter -> t -> unit
