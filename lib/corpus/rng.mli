(** Deterministic seeded PRNG (splitmix64); every random decision in AMuLeT
    flows through an instance, so campaigns replay exactly from their
    seed. *)

type t

val create : seed:int -> t
val split : t -> t
val next64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]; [bound > 0]. *)

val bool : t -> p:float -> bool
val choose : t -> 'a list -> 'a
val weighted : t -> (int * 'a) list -> 'a
