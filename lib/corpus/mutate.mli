(** Program-level mutation engine: small semantic edits on flattened
    programs, preserving the forward-DAG and sandbox-masking invariants and
    validated by the {!Amulet_static.Lint} well-formedness check so mutants
    never waste simulation. *)

open Amulet_isa

type op =
  | Tweak_imm  (** perturb a non-mask immediate or shift count *)
  | Tweak_reg  (** replace a source register (dests are off-limits) *)
  | Flip_cond  (** re-draw the condition of a Jcc/SETcc/CMOVcc *)
  | Swap_opcode  (** swap an ALU opcode within its class *)
  | Fence_insert
  | Fence_remove
  | Splice  (** replace a branch-free window with freshly generated code *)

val op_name : op -> string
val all_ops : op list

val mutate :
  ?cfg:Generator.config ->
  ?energy:int ->
  ?max_attempts:int ->
  Rng.t ->
  Program.flat ->
  (Program.flat * op list) option
(** Apply a stack of 1..[energy] random operators (default energy 1) and
    lint-validate the result, retrying with fresh draws up to
    [max_attempts] (default 8) times.  [Some (mutant, ops)] always passes
    the well-formedness lint and differs from the parent; [None] means no
    applicable operator produced a valid mutant. *)
