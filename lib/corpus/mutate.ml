(** Program-level mutation engine for feedback-guided generation.

    Mutants are derived from corpus seeds by small semantic edits —
    operand/opcode/immediate tweaks, branch-condition flips, fence
    insertion/removal, and splicing in freshly generated donor code — and
    every mutant is validated by the {!Amulet_static.Lint} well-formedness
    check before it is allowed near a simulator, so malformed programs
    never waste simulation time.

    Two invariants every operator preserves:
    - the forward-DAG control flow {!Amulet_isa.Program.is_dag} requires
      (index edits on insert/remove/splice shift branch targets in lock
      step with the instructions);
    - the sandbox-masking discipline: the AND-mask instrument that guards
      each memory access is never separated from its access (instrument
      immediates and instrument/access pairs are off-limits to the
      immediate tweak and to splice windows), so mutants keep their memory
      traffic inside the sandbox instead of faulting. *)

open Amulet_isa

type op =
  | Tweak_imm
  | Tweak_reg
  | Flip_cond
  | Swap_opcode
  | Fence_insert
  | Fence_remove
  | Splice

let op_name = function
  | Tweak_imm -> "tweak-imm"
  | Tweak_reg -> "tweak-reg"
  | Flip_cond -> "flip-cond"
  | Swap_opcode -> "swap-opcode"
  | Fence_insert -> "fence-insert"
  | Fence_remove -> "fence-remove"
  | Splice -> "splice"

let all_ops =
  [ Tweak_imm; Tweak_reg; Flip_cond; Swap_opcode; Fence_insert; Fence_remove;
    Splice ]

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                  *)
(* ------------------------------------------------------------------ *)

let operands = function
  | Inst.Binop (_, _, a, b)
  | Inst.Mov (_, a, b)
  | Inst.Cmp (_, a, b)
  | Inst.Test (_, a, b) ->
      [ a; b ]
  | Inst.Unop (_, _, a) | Inst.Setcc (_, a) | Inst.Shift (_, _, a, _) -> [ a ]
  | Inst.Imul (_, r, b) | Inst.Movx (_, _, r, b) | Inst.Cmovcc (_, _, r, b) ->
      [ Operand.Reg r; b ]
  | Inst.Xchg (_, a, b) -> [ Operand.Reg a; Operand.Reg b ]
  | Inst.Lea (r, m) -> [ Operand.Reg r; Operand.Mem m ]
  | _ -> []

(* Is [code.(j)] the AND-mask instrument guarding an access at [j+1]?
   (The generator always emits the pair adjacently.) *)
let pair_at code j =
  j >= 0
  && j + 1 < Array.length code
  &&
  match code.(j) with
  | Inst.Binop (Inst.And, Width.W64, Operand.Reg r, Operand.Imm _) ->
      List.exists
        (function
          | Operand.Mem { Operand.index = Some r'; _ } -> Reg.equal r r'
          | _ -> false)
        (operands code.(j + 1))
  | _ -> false

(* A sandbox-mask instrument's immediate must never be tweaked (that is the
   containment guarantee); conservatively, any AND-with-immediate. *)
let is_mask_instrument = function
  | Inst.Binop (Inst.And, _, _, Operand.Imm _) -> true
  | _ -> false

let remap_targets code f =
  Array.map
    (function
      | Inst.Jmp (Inst.Abs t) -> Inst.Jmp (Inst.Abs (f t))
      | Inst.Jcc (c, Inst.Abs t) -> Inst.Jcc (c, Inst.Abs (f t))
      | i -> i)
    code

(* Pick a random element of the sites selected by [select]; [None] when the
   program has no such site. *)
let pick_site rng code select =
  let sites = ref [] in
  Array.iteri (fun i inst -> if select i inst then sites := i :: !sites) code;
  match !sites with
  | [] -> None
  | sites -> Some (Rng.choose rng (List.rev sites))

(* ------------------------------------------------------------------ *)
(* Operators (each returns [None] when it has no applicable site)      *)
(* ------------------------------------------------------------------ *)

let tweak_imm rng code =
  let site _ inst =
    (not (is_mask_instrument inst))
    &&
    match inst with
    | Inst.Binop (_, _, _, Operand.Imm _)
    | Inst.Mov (_, _, Operand.Imm _)
    | Inst.Cmp (_, _, Operand.Imm _)
    | Inst.Shift _ ->
        true
    | _ -> false
  in
  match pick_site rng code site with
  | None -> None
  | Some i ->
      let tweak v =
        match Rng.int rng 4 with
        | 0 -> Int64.add v 1L
        | 1 -> Int64.sub v 1L
        | 2 -> Int64.logxor v (Int64.shift_left 1L (Rng.int rng 8))
        | _ -> Int64.of_int (Rng.int rng 256)
      in
      let code = Array.copy code in
      (code.(i) <-
         (match code.(i) with
         | Inst.Binop (op, w, d, Operand.Imm v) ->
             Inst.Binop (op, w, d, Operand.Imm (tweak v))
         | Inst.Mov (w, d, Operand.Imm v) -> Inst.Mov (w, d, Operand.Imm (tweak v))
         | Inst.Cmp (w, d, Operand.Imm v) -> Inst.Cmp (w, d, Operand.Imm (tweak v))
         | Inst.Shift (k, w, a, _) -> Inst.Shift (k, w, a, 1 + Rng.int rng 8)
         | i -> i));
      Some code

(* Source-register replacement only: dests are left alone (so the sandbox
   base can never be overwritten and mask/access pairings stay in sync);
   value changes upstream of an access are harmless because the AND mask
   re-contains whatever reaches the index register. *)
let tweak_reg rng code =
  let site _ = function
    | Inst.Binop (_, _, _, Operand.Reg _)
    | Inst.Mov (_, _, Operand.Reg _)
    | Inst.Cmp (_, _, Operand.Reg _)
    | Inst.Test (_, _, Operand.Reg _)
    | Inst.Imul (_, _, Operand.Reg _)
    | Inst.Cmovcc (_, _, _, Operand.Reg _) ->
        true
    | _ -> false
  in
  match pick_site rng code site with
  | None -> None
  | Some i ->
      let r' = Rng.choose rng Generator.usable_regs in
      let code = Array.copy code in
      (code.(i) <-
         (match code.(i) with
         | Inst.Binop (op, w, d, Operand.Reg _) ->
             Inst.Binop (op, w, d, Operand.Reg r')
         | Inst.Mov (w, d, Operand.Reg _) -> Inst.Mov (w, d, Operand.Reg r')
         | Inst.Cmp (w, d, Operand.Reg _) -> Inst.Cmp (w, d, Operand.Reg r')
         | Inst.Test (w, d, Operand.Reg _) -> Inst.Test (w, d, Operand.Reg r')
         | Inst.Imul (w, d, Operand.Reg _) -> Inst.Imul (w, d, Operand.Reg r')
         | Inst.Cmovcc (c, w, d, Operand.Reg _) ->
             Inst.Cmovcc (c, w, d, Operand.Reg r')
         | i -> i));
      Some code

let flip_cond rng code =
  let site _ = function
    | Inst.Jcc _ | Inst.Setcc _ | Inst.Cmovcc _ -> true
    | _ -> false
  in
  match pick_site rng code site with
  | None -> None
  | Some i ->
      let c' = Rng.choose rng Cond.all in
      let code = Array.copy code in
      (code.(i) <-
         (match code.(i) with
         | Inst.Jcc (_, t) -> Inst.Jcc (c', t)
         | Inst.Setcc (_, o) -> Inst.Setcc (c', o)
         | Inst.Cmovcc (_, w, r, o) -> Inst.Cmovcc (c', w, r, o)
         | i -> i));
      Some code

let swap_opcode rng code =
  let site _ inst =
    (not (is_mask_instrument inst))
    &&
    match inst with
    | Inst.Binop _ | Inst.Shift _ | Inst.Unop _ -> true
    | _ -> false
  in
  match pick_site rng code site with
  | None -> None
  | Some i ->
      let code = Array.copy code in
      (code.(i) <-
         (match code.(i) with
         | Inst.Binop (_, w, a, b) ->
             let op' =
               Rng.choose rng
                 [ Inst.Add; Inst.Adc; Inst.Sub; Inst.Sbb; Inst.And; Inst.Or;
                   Inst.Xor ]
             in
             Inst.Binop (op', w, a, b)
         | Inst.Shift (_, w, a, n) ->
             let k' =
               Rng.choose rng [ Inst.Shl; Inst.Shr; Inst.Sar; Inst.Rol; Inst.Ror ]
             in
             Inst.Shift (k', w, a, n)
         | Inst.Unop (_, w, a) ->
             let u' =
               Rng.choose rng [ Inst.Not; Inst.Neg; Inst.Inc; Inst.Dec; Inst.Bswap ]
             in
             Inst.Unop (u', w, a)
         | i -> i));
      Some code

(* Insert a fence at position [p]; all branch targets >= p shift with the
   instructions, preserving forwardness. *)
let fence_insert rng code =
  let len = Array.length code in
  if len < 2 then None
  else begin
    let p = Rng.int rng (len - 1) (* keep the final Exit last *) in
    let out = Array.make (len + 1) Inst.Fence in
    Array.blit code 0 out 0 p;
    Array.blit code p out (p + 1) (len - p);
    Some (remap_targets out (fun t -> if t >= p then t + 1 else t))
  end

let fence_remove rng code =
  let site _ = function Inst.Fence -> true | _ -> false in
  match pick_site rng code site with
  | None -> None
  | Some p ->
      let len = Array.length code in
      let out = Array.make (len - 1) Inst.Nop in
      Array.blit code 0 out 0 p;
      Array.blit code (p + 1) out p (len - p - 1);
      Some (remap_targets out (fun t -> if t > p then t - 1 else t))

(* Replace a branch-free window of the program with a branch-free window
   from a freshly generated donor.  Windows never split an instrument/
   access pair in a way that leaves an access unguarded: the window must
   not start on the access of a pair (its instrument would be left out in
   the donor, dropped from the host) and the host window must not end on
   an instrument (its access would survive unguarded). *)
let splice ~cfg rng code =
  let len = Array.length code in
  let plain c j =
    match c.(j) with
    | Inst.Jmp _ | Inst.Jcc _ | Inst.Exit -> false
    | _ -> true
  in
  let window c ~avoid_trailing_instrument rng =
    let n = Array.length c in
    let try_once () =
      let k = 1 + Rng.int rng 4 in
      let p = Rng.int rng (max 1 (n - k)) in
      let ok = ref (p + k <= n) in
      for j = p to p + k - 1 do
        if !ok && not (plain c j) then ok := false
      done;
      (* starting on the access of a pair orphans the access *)
      if !ok && pair_at c (p - 1) then ok := false;
      (* ending on an instrument orphans the following access *)
      if !ok && avoid_trailing_instrument && pair_at c (p + k - 1) then
        ok := false;
      if !ok then Some (p, k) else None
    in
    let rec go i = if i >= 8 then None else
      match try_once () with Some w -> Some w | None -> go (i + 1)
    in
    go 0
  in
  if len < 3 then None
  else
    match window code ~avoid_trailing_instrument:true rng with
    | None -> None
    | Some (p, k) -> (
        let donor = (Generator.generate_flat ~cfg rng).Program.code in
        match window donor ~avoid_trailing_instrument:false rng with
        | None -> None
        | Some (q, m) ->
            let out = Array.make (len - k + m) Inst.Nop in
            Array.blit code 0 out 0 p;
            Array.blit donor q out p m;
            Array.blit code (p + k) out (p + m) (len - p - k);
            let d = m - k in
            Some
              (remap_targets out (fun t ->
                   if t <= p then t
                   else if t >= p + k then t + d
                   else p + min (t - p) m)))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let apply_one ~cfg rng code =
  let op =
    Rng.weighted rng
      [
        (4, Tweak_imm);
        (4, Tweak_reg);
        (3, Flip_cond);
        (3, Swap_opcode);
        (2, Fence_insert);
        (2, Fence_remove);
        (2, Splice);
      ]
  in
  let result =
    match op with
    | Tweak_imm -> tweak_imm rng code
    | Tweak_reg -> tweak_reg rng code
    | Flip_cond -> flip_cond rng code
    | Swap_opcode -> swap_opcode rng code
    | Fence_insert -> fence_insert rng code
    | Fence_remove -> fence_remove rng code
    | Splice -> splice ~cfg rng code
  in
  Option.map (fun code -> (code, op)) result

(** Mutate [flat]: apply a stack of 1..[energy] random operators, then
    lint-validate.  Retries (fresh operator draws) up to [max_attempts]
    times before giving up with [None]; a [Some] mutant always passes the
    well-formedness lint and differs from its parent. *)
let mutate ?(cfg = Generator.default) ?(energy = 1) ?(max_attempts = 8) rng
    (flat : Program.flat) : (Program.flat * op list) option =
  let sandbox_bytes = cfg.Generator.sandbox_pages * 4096 in
  let rec attempt a =
    if a >= max_attempts then None
    else begin
      let stack = 1 + if energy <= 1 then 0 else Rng.int rng energy in
      let code = ref flat.Program.code in
      let applied = ref [] in
      for _ = 1 to stack do
        match apply_one ~cfg rng !code with
        | Some (code', op) ->
            code := code';
            applied := op :: !applied
        | None -> ()
      done;
      if !applied = [] || !code == flat.Program.code then attempt (a + 1)
      else
        let flat' = { flat with Program.code = !code } in
        if flat'.Program.code = flat.Program.code then attempt (a + 1)
        else
          let report = Amulet_static.Lint.check ~sandbox_bytes flat' in
          if Amulet_static.Lint.ok report then Some (flat', List.rev !applied)
          else attempt (a + 1)
    end
  in
  attempt 0
