(** Deterministic pseudo-random number generator (splitmix64).

    Every random decision in AMuLeT — program shapes, input values, boosting
    mutations — flows through a seeded instance, so campaigns are exactly
    reproducible from their seed (Revizor's inputs are likewise
    "generated with a seeded PRNG"). *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let split t = { state = Int64.add t.state 0x9E3779B97F4A7C15L }

(** Next raw 64-bit value. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

(** Uniform boolean with probability [p] of [true]. *)
let bool t ~p = float_of_int (int t 1_000_000) /. 1_000_000. < p

(** Uniform choice from a non-empty list. *)
let choose t xs = List.nth xs (int t (List.length xs))

(** Weighted choice: [(weight, value)] pairs, weights positive. *)
let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  let pick = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: empty"
    | (w, v) :: rest -> if pick < acc + w then v else go (acc + w) rest
  in
  go 0 pairs
