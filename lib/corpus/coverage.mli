(** Coverage map for feedback-guided generation: counts qualitative
    per-run features (contract-trace shape, log₂-bucketed pipeline
    counters).  Deterministic: features derive from the pipeline's own
    per-run totals and the contract trace, never from wall clock or the
    detachable telemetry registry. *)

type feedback = {
  shape_hash : int64;  (** contract-trace shape digest (observation kinds) *)
  ctrace_classes : int;  (** distinct contract-trace hashes over the inputs *)
  spec_steps : int;  (** emulator instructions on mispredicted paths *)
  cycles : int;
  committed_insts : int;
  squashes : int;
  squashed_insts : int;
  spec_issued : int;
  mispredicts : int;
}

val bucket : int -> int
(** log₂ count-classing: 0→0, 1→1, 2-3→2, 4-7→3, … *)

val features_of : feedback -> int64 list

type t

val create : unit -> t

val observe : t -> feedback -> int
(** Record one run's features; returns the number never seen before (> 0
    means the run was novel). *)

val size : t -> int
(** Distinct features seen. *)

val observations : t -> int
(** Total {!observe} calls. *)

val sorted_hits : t -> (int64 * int) list
(** (feature, hits), sorted by feature — iteration-order independent. *)

val to_lines : t -> string list
val of_lines : string list -> t
val pp : Format.formatter -> t -> unit
