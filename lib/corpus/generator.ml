(** Random test-program generator (the Revizor-style front end).

    Programs are up to [blocks] basic blocks of randomly selected
    instructions, linked by forward conditional jumps into a directed acyclic
    control-flow graph (paper §3.1).  Every memory access is forced into the
    sandbox by an AND-mask instrumentation instruction on the offset
    register, exactly as Revizor instruments x86 tests. *)

open Amulet_isa

type config = {
  blocks : int;  (** number of basic blocks, at most 5 in the paper *)
  min_insts_per_block : int;
  max_insts_per_block : int;
  mem_fraction : float;  (** fraction of instructions that access memory *)
  store_fraction : float;  (** of memory accesses, fraction that are stores *)
  sandbox_pages : int;
  unaligned_fraction : float;
      (** fraction of memory offsets NOT aligned to 8 bytes (enables
          line-crossing "split" accesses, the UV4 trigger) *)
  fence_fraction : float;  (** fraction of instructions that are LFENCEs *)
}

let default =
  {
    blocks = 5;
    min_insts_per_block = 4;
    max_insts_per_block = 10;
    mem_fraction = 0.35;
    store_fraction = 0.3;
    sandbox_pages = 1;
    unaligned_fraction = 0.15;
    fence_fraction = 0.0;
  }

(* Registers the generator may use as operands/destinations: everything but
   the sandbox base (R14) and the harness scratch register (R15). *)
let usable_regs =
  List.filter
    (fun r -> not (Reg.equal r Reg.sandbox_base) && not (Reg.equal r Reg.R15))
    Reg.all

let random_reg rng = Rng.choose rng usable_regs

let random_width rng =
  Rng.weighted rng [ (6, Width.W64); (2, Width.W32); (1, Width.W16); (1, Width.W8) ]

let random_cond rng = Rng.choose rng Cond.all

let small_imm rng = Int64.of_int (Rng.int rng 256)

(* The sandbox mask: wraps an arbitrary register value into a sandbox
   offset. [align] clears low bits so most accesses stay within a line. *)
let sandbox_mask cfg ~align =
  let size = cfg.sandbox_pages * 4096 in
  Int64.of_int ((size - 1) land lnot (align - 1))

(* Instrumentation + memory operand: AND the offset register with the
   sandbox mask, then access [R14 + reg]. *)
let masked_mem_operand cfg rng =
  let reg = random_reg rng in
  let align =
    if Rng.bool rng ~p:cfg.unaligned_fraction then 1
    else if Rng.bool rng ~p:0.5 then 64
    else 8
  in
  let mask = sandbox_mask cfg ~align in
  let instrument = Inst.Binop (Inst.And, Width.W64, Operand.Reg reg, Operand.Imm mask) in
  let operand = Operand.mem ~index:(Some reg) Reg.sandbox_base in
  instrument, operand

(* One random non-memory instruction. *)
let random_alu_inst rng =
  let r1 = random_reg rng and r2 = random_reg rng in
  let binop () =
    let op =
      Rng.choose rng
        [ Inst.Add; Inst.Adc; Inst.Sub; Inst.Sbb; Inst.And; Inst.Or; Inst.Xor ]
    in
    let src =
      if Rng.bool rng ~p:0.4 then Operand.Imm (small_imm rng) else Operand.Reg r2
    in
    Inst.Binop (op, Width.W64, Operand.Reg r1, src)
  in
  Rng.weighted rng
    [
      (8, `Binop);
      (3, `Mov);
      (3, `Cmp);
      (2, `Test);
      (2, `Shift);
      (2, `Setcc);
      (2, `Cmov);
      (1, `Unop);
      (1, `Imul);
      (1, `Lea);
      (1, `Xchg);
      (1, `Nop);
    ]
  |> function
  | `Binop -> binop ()
  | `Mov ->
      let src =
        if Rng.bool rng ~p:0.3 then Operand.Imm (Rng.next64 rng) else Operand.Reg r2
      in
      Inst.Mov (Width.W64, Operand.Reg r1, src)
  | `Cmp ->
      let src =
        if Rng.bool rng ~p:0.5 then Operand.Imm (small_imm rng) else Operand.Reg r2
      in
      Inst.Cmp (Width.W64, Operand.Reg r1, src)
  | `Test -> Inst.Test (Width.W64, Operand.Reg r1, Operand.Reg r2)
  | `Shift ->
      let k = Rng.choose rng [ Inst.Shl; Inst.Shr; Inst.Sar; Inst.Rol; Inst.Ror ] in
      Inst.Shift (k, Width.W64, Operand.Reg r1, 1 + Rng.int rng 8)
  | `Setcc -> Inst.Setcc (random_cond rng, Operand.Reg r1)
  | `Cmov -> Inst.Cmovcc (random_cond rng, Width.W64, r1, Operand.Reg r2)
  | `Unop ->
      let u = Rng.choose rng [ Inst.Not; Inst.Neg; Inst.Inc; Inst.Dec; Inst.Bswap ] in
      Inst.Unop (u, Width.W64, Operand.Reg r1)
  | `Xchg -> Inst.Xchg (Width.W64, r1, r2)
  | `Imul -> Inst.Imul (Width.W64, r1, Operand.Reg r2)
  | `Lea ->
      Inst.Lea (r1, { Operand.base = Reg.sandbox_base; index = Some r2; scale = 1; disp = Rng.int rng 64 })
  | `Nop -> Inst.Nop

(* One random memory instruction (with its mask instrumentation). *)
let random_mem_insts cfg rng =
  let instrument, mem_op = masked_mem_operand cfg rng in
  let w = random_width rng in
  let data_reg = random_reg rng in
  let inst =
    if Rng.bool rng ~p:cfg.store_fraction then
      (* store forms: plain store, or read-modify-write *)
      if Rng.bool rng ~p:0.3 then
        Inst.Binop
          (Rng.choose rng [ Inst.Add; Inst.Sub; Inst.Xor ], w, mem_op, Operand.Reg data_reg)
      else Inst.Mov (w, mem_op, Operand.Reg data_reg)
    else if Rng.bool rng ~p:0.15 then
      Inst.Cmovcc (random_cond rng, w, data_reg, mem_op)
    else if w <> Width.W64 && Rng.bool rng ~p:0.3 then
      Inst.Movx
        ((if Rng.bool rng ~p:0.5 then Inst.Zero else Inst.Sign), w, data_reg, mem_op)
    else Inst.Mov (w, Operand.Reg data_reg, mem_op)
  in
  [ instrument; inst ]

let random_block cfg rng =
  let n =
    cfg.min_insts_per_block
    + Rng.int rng (cfg.max_insts_per_block - cfg.min_insts_per_block + 1)
  in
  let rec build k acc =
    if k <= 0 then List.rev acc
    else if Rng.bool rng ~p:cfg.mem_fraction then
      build (k - 1) (List.rev_append (random_mem_insts cfg rng) acc)
    else if cfg.fence_fraction > 0. && Rng.bool rng ~p:cfg.fence_fraction then
      build (k - 1) (Inst.Fence :: acc)
    else build (k - 1) (random_alu_inst rng :: acc)
  in
  build n []

let block_label i = Printf.sprintf "bb%d" i

(** Generate a random program: a DAG of [cfg.blocks] basic blocks where each
    block (except the last) ends with a conditional jump to a strictly later
    block, falling through otherwise. *)
let generate ?(cfg = default) rng : Program.t =
  let nblocks = max 1 cfg.blocks in
  let blocks =
    List.init nblocks (fun i ->
        let body = random_block cfg rng in
        let body =
          if i < nblocks - 1 && Rng.bool rng ~p:0.8 then begin
            (* jump forward to a random later block *)
            let target = i + 1 + Rng.int rng (nblocks - 1 - i) in
            body @ [ Inst.Jcc (random_cond rng, Inst.Label (block_label target)) ]
          end
          else body
        in
        { Program.label = block_label i; body })
  in
  Program.make blocks

(** Generate and flatten in one step. *)
let generate_flat ?cfg rng = Program.flatten (generate ?cfg rng)

(** Generate with reject-and-regenerate on well-formedness lint {e errors}
    (warnings are expected of random programs and do not reject).  The
    generator is designed never to produce a lint error, so a rejection is a
    generator bug: after [max_attempts] failures the last lint report is
    raised as a [Failure] naming the diagnostics instead of silently
    feeding a malformed program downstream. *)
let generate_lint_free ?(cfg = default) ?(max_attempts = 8) rng : Program.flat =
  let sandbox_bytes = cfg.sandbox_pages * 4096 in
  let rec attempt k =
    let flat = generate_flat ~cfg rng in
    let report = Amulet_static.Lint.check ~sandbox_bytes flat in
    if Amulet_static.Lint.ok report then flat
    else if k + 1 >= max_attempts then
      failwith
        (Format.asprintf "Generator.generate_lint_free: %d attempts, still: %a"
           max_attempts Amulet_static.Lint.pp report)
    else attempt (k + 1)
  in
  attempt 0
