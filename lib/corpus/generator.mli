(** Random test-program generator (the Revizor-style front end): up to
    [blocks] basic blocks in a forward DAG, with AND-mask instrumentation
    forcing every memory access into the sandbox. *)

open Amulet_isa

type config = {
  blocks : int;
  min_insts_per_block : int;
  max_insts_per_block : int;
  mem_fraction : float;
  store_fraction : float;
  sandbox_pages : int;
  unaligned_fraction : float;
      (** fraction of memory offsets not 8-byte aligned (enables the
          line-crossing accesses that trigger UV4) *)
  fence_fraction : float;
      (** fraction of instructions that are LFENCEs; fences drain the
          speculation window, so raising this makes some generated programs
          statically leak-free (the population where [static_filter =
          Screen] pays off) *)
}

val default : config

val usable_regs : Reg.t list
(** Everything but the sandbox base (R14) and harness scratch (R15). *)

val generate : ?cfg:config -> Rng.t -> Program.t
val generate_flat : ?cfg:config -> Rng.t -> Program.flat

val generate_lint_free : ?cfg:config -> ?max_attempts:int -> Rng.t -> Program.flat
(** {!generate_flat} with reject-and-regenerate on well-formedness lint
    {e errors} (warnings do not reject).  The generator should never trip
    the lint, so exhausting [max_attempts] (default 8) raises [Failure]
    naming the diagnostics — a generator bug surfaced, not hidden. *)
