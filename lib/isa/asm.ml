(** Textual assembly for the test ISA.

    Printing goes through {!Program.pp}; this module provides the inverse: a
    parser for the same Intel-flavoured syntax, used by tests and by the CLI
    to load hand-written reproducer programs.

    Syntax, one instruction per line:
    {[
      .bb_main:                      # block label
        AND RBX, 0b111111111111     # immediates: decimal, hex, binary
        MOV RAX, qword ptr [R14 + RBX]
        JNZ .bb_main.1
    ]}
    Comments start with [#] or [;]. *)

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Tword of string (* identifier / mnemonic / register / ptr keyword *)
  | Tint of int64
  | Tcomma
  | Tlbracket
  | Trbracket
  | Tplus
  | Tminus
  | Tstar
  | Tlabel of string (* .name *)

let strip_comment s =
  let cut c s = match String.index_opt s c with None -> s | Some i -> String.sub s 0 i in
  cut '#' (cut ';' s)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let parse_int ~line s =
  let negate, s =
    if String.length s > 0 && s.[0] = '-' then true, String.sub s 1 (String.length s - 1)
    else false, s
  in
  let v =
    try Int64.of_string s
    with Failure _ -> (
      (* [Int64.of_string] rejects decimal literals above [max_int], but the
         printer emits e.g. [-9223372036854775808] whose digits alone exceed
         it; reparse as unsigned so every printed int64 round-trips *)
      try Int64.of_string ("0u" ^ s)
      with Failure _ -> fail line "invalid integer literal %S" s)
  in
  if negate then Int64.neg v else v

let tokenize ~line s =
  let s = strip_comment s in
  let n = String.length s in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ',' then (push Tcomma; incr i)
    else if c = '[' then (push Tlbracket; incr i)
    else if c = ']' then (push Trbracket; incr i)
    else if c = '+' then (push Tplus; incr i)
    else if c = '-' then (push Tminus; incr i)
    else if c = '*' then (push Tstar; incr i)
    else if c = ':' then incr i (* label terminator, handled by caller *)
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_word_char s.[!j] do incr j done;
      push (Tint (parse_int ~line (String.sub s !i (!j - !i))));
      i := !j
    end
    else if c = '.' || is_word_char c then begin
      let j = ref !i in
      while !j < n && is_word_char s.[!j] do incr j done;
      let word = String.sub s !i (!j - !i) in
      if word.[0] = '.' then push (Tlabel (String.sub word 1 (String.length word - 1)))
      else push (Tword word);
      i := !j
    end
    else fail line "unexpected character %C" c
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parsed_operand =
  | Preg of Reg.t
  | Pimm of int64
  | Pmem of Width.t option * Operand.mem
  | Plabel of string

let reg_of_word w = try Some (Reg.of_name w) with Not_found -> None

(* [mem_body] parses the bracketed body: base + index * scale +/- disp *)
let parse_mem_body ~line tokens =
  let base, rest =
    match tokens with
    | Tword w :: rest -> (
        match reg_of_word w with
        | Some r -> r, rest
        | None -> fail line "expected base register, got %S" w)
    | _ -> fail line "expected base register in memory operand"
  in
  let index = ref None and scale = ref 1 and disp = ref 0 in
  let rec loop = function
    | [] -> ()
    | Tplus :: Tword w :: Tstar :: Tint s :: rest -> (
        match reg_of_word w with
        | Some r ->
            index := Some r;
            scale := Int64.to_int s;
            loop rest
        | None -> fail line "expected index register, got %S" w)
    | Tplus :: Tword w :: rest -> (
        match reg_of_word w with
        | Some r ->
            index := Some r;
            loop rest
        | None -> fail line "expected register after '+', got %S" w)
    | Tplus :: Tint d :: rest ->
        disp := !disp + Int64.to_int d;
        loop rest
    | Tminus :: Tint d :: rest ->
        disp := !disp - Int64.to_int d;
        loop rest
    | _ -> fail line "malformed memory operand"
  in
  loop rest;
  { Operand.base; index = !index; scale = !scale; disp = !disp }

(* Split tokens of an operand list at top-level commas. *)
let split_operands tokens =
  let rec go acc current = function
    | [] -> List.rev (List.rev current :: acc)
    | Tcomma :: rest -> go (List.rev current :: acc) [] rest
    | t :: rest -> go acc (t :: current) rest
  in
  match tokens with [] -> [] | _ -> go [] [] tokens

let parse_operand ~line tokens =
  match tokens with
  | [ Tword w ] -> (
      match reg_of_word w with
      | Some r -> Preg r
      | None -> fail line "unknown operand %S" w)
  | [ Tint i ] -> Pimm i
  | [ Tminus; Tint i ] -> Pimm (Int64.neg i)
  | [ Tlabel l ] -> Plabel l
  | Tword kw :: Tword ptr :: Tlbracket :: rest
    when String.lowercase_ascii ptr = "ptr" -> (
      match Width.of_ptr_keyword kw with
      | Some w -> (
          match List.rev rest with
          | Trbracket :: body_rev ->
              Pmem (Some w, parse_mem_body ~line (List.rev body_rev))
          | _ -> fail line "missing ']' in memory operand")
      | None -> fail line "unknown pointer width %S" kw)
  | Tlbracket :: rest -> (
      match List.rev rest with
      | Trbracket :: body_rev ->
          Pmem (None, parse_mem_body ~line (List.rev body_rev))
      | _ -> fail line "missing ']' in memory operand")
  | _ -> fail line "cannot parse operand"

let to_operand ~line = function
  | Preg r -> Operand.Reg r
  | Pimm i -> Operand.Imm i
  | Pmem (_, m) -> Operand.Mem m
  | Plabel _ -> fail line "label not valid here"

(* Width of a two-operand instruction: explicit ptr keyword wins, else 64. *)
let infer_width ~line:_ ops =
  let explicit =
    List.find_map (function Pmem (Some w, _) -> Some w | _ -> None) ops
  in
  Option.value explicit ~default:Width.W64

let parse_inst ~line mnemonic operands =
  let ops = List.map (parse_operand ~line) (split_operands operands) in
  let w = infer_width ~line ops in
  let op2 name f =
    match ops with
    | [ a; b ] -> f (to_operand ~line a) (to_operand ~line b)
    | _ -> fail line "%s expects two operands" name
  in
  let target name =
    match ops with
    | [ Plabel l ] -> Inst.Label l
    | _ -> fail line "%s expects a label operand" name
  in
  let m = String.uppercase_ascii mnemonic in
  match m with
  | "NOP" -> Inst.Nop
  | "ADD" -> op2 m (fun a b -> Inst.Binop (Inst.Add, w, a, b))
  | "ADC" -> op2 m (fun a b -> Inst.Binop (Inst.Adc, w, a, b))
  | "SUB" -> op2 m (fun a b -> Inst.Binop (Inst.Sub, w, a, b))
  | "SBB" -> op2 m (fun a b -> Inst.Binop (Inst.Sbb, w, a, b))
  | "AND" -> op2 m (fun a b -> Inst.Binop (Inst.And, w, a, b))
  | "OR" -> op2 m (fun a b -> Inst.Binop (Inst.Or, w, a, b))
  | "XOR" -> op2 m (fun a b -> Inst.Binop (Inst.Xor, w, a, b))
  | "MOV" -> op2 m (fun a b -> Inst.Mov (w, a, b))
  | "CMP" -> op2 m (fun a b -> Inst.Cmp (w, a, b))
  | "TEST" -> op2 m (fun a b -> Inst.Test (w, a, b))
  | "NOT" | "NEG" | "INC" | "DEC" | "BSWAP" -> (
      let u =
        match m with
        | "NOT" -> Inst.Not
        | "NEG" -> Inst.Neg
        | "INC" -> Inst.Inc
        | "BSWAP" -> Inst.Bswap
        | _ -> Inst.Dec
      in
      match ops with
      | [ a ] -> Inst.Unop (u, w, to_operand ~line a)
      | _ -> fail line "%s expects one operand" m)
  | "SHL" | "SHR" | "SAR" | "ROL" | "ROR" -> (
      let k =
        match m with
        | "SHL" -> Inst.Shl
        | "SHR" -> Inst.Shr
        | "ROL" -> Inst.Rol
        | "ROR" -> Inst.Ror
        | _ -> Inst.Sar
      in
      match ops with
      | [ a; Pimm n ] -> Inst.Shift (k, w, to_operand ~line a, Int64.to_int n)
      | _ -> fail line "%s expects operand, immediate" m)
  | "IMUL" -> (
      match ops with
      | [ Preg r; b ] -> Inst.Imul (w, r, to_operand ~line b)
      | _ -> fail line "IMUL expects register, operand")
  | "MOVZX" | "MOVSX" -> (
      let ext = if m = "MOVZX" then Inst.Zero else Inst.Sign in
      match ops with
      | [ Preg r; src ] ->
          (* the extension width comes from the ptr keyword (defaults W64
             would make the instruction a plain MOV; require narrower) *)
          Inst.Movx (ext, w, r, to_operand ~line src)
      | _ -> fail line "%s expects register, operand" m)
  | "XCHG" -> (
      match ops with
      | [ Preg a; Preg b ] -> Inst.Xchg (w, a, b)
      | _ -> fail line "XCHG expects two registers")
  | "LEA" -> (
      match ops with
      | [ Preg r; Pmem (_, mem) ] -> Inst.Lea (r, mem)
      | _ -> fail line "LEA expects register, memory operand")
  | "JMP" -> Inst.Jmp (target m)
  | "LFENCE" | "FENCE" -> Inst.Fence
  | "EXIT" -> Inst.Exit
  | _ -> (
      (* SETcc / CMOVcc / Jcc *)
      let try_prefix prefix make =
        let pl = String.length prefix in
        if String.length m > pl && String.sub m 0 pl = prefix then
          match Cond.of_suffix (String.sub m pl (String.length m - pl)) with
          | Some c -> Some (make c)
          | None -> None
        else None
      in
      let result =
        match
          try_prefix "CMOV" (fun c ->
              match ops with
              | [ Preg r; b ] -> Inst.Cmovcc (c, w, r, to_operand ~line b)
              | _ -> fail line "CMOVcc expects register, operand")
        with
        | Some i -> Some i
        | None -> (
            match
              try_prefix "SET" (fun c ->
                  match ops with
                  | [ a ] -> Inst.Setcc (c, to_operand ~line a)
                  | _ -> fail line "SETcc expects one operand")
            with
            | Some i -> Some i
            | None ->
                try_prefix "J" (fun c -> Inst.Jcc (c, target m)))
      in
      match result with
      | Some i -> i
      | None -> fail line "unknown mnemonic %S" mnemonic)

(** Parse a whole program.  Instructions appearing before any label are
    placed in an implicit block called ["bb0"]. *)
let parse (source : string) : Program.t =
  let lines = String.split_on_char '\n' source in
  let blocks = ref [] in
  let current_label = ref None in
  let current_body = ref [] in
  let flush () =
    match !current_label, !current_body with
    | None, [] -> ()
    | label, body ->
        let label = Option.value label ~default:"bb0" in
        blocks := { Program.label; body = List.rev body } :: !blocks
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let text = String.trim (strip_comment raw) in
      if String.length text = 0 then ()
      else if text.[0] = '.' && String.length text > 1
              && text.[String.length text - 1] = ':' then begin
        flush ();
        current_label := Some (String.sub text 1 (String.length text - 2));
        current_body := []
      end
      else
        match tokenize ~line text with
        | [] -> ()
        | Tword mnemonic :: rest ->
            current_body := parse_inst ~line mnemonic rest :: !current_body
        | _ -> fail line "expected a mnemonic")
    lines;
  flush ();
  Program.make (List.rev !blocks)

(** Round-trip helper: print a program to its canonical textual form. *)
let print (p : Program.t) = Program.to_string p

(* ------------------------------------------------------------------ *)
(* Flat (label-free) programs                                          *)
(* ------------------------------------------------------------------ *)

(* Flattened programs print branch targets as absolute instruction indices
   ("JNZ @5"); that form is what the corpus persists, so it needs an exact
   inverse here. *)

let parse_flat_line ~line text =
  match String.index_opt text '@' with
  | Some at ->
      let mnemonic = String.trim (String.sub text 0 at) in
      let target_text =
        String.trim (String.sub text (at + 1) (String.length text - at - 1))
      in
      let target =
        match int_of_string_opt target_text with
        | Some n -> n
        | None -> fail line "invalid flat branch target %S" target_text
      in
      let m = String.uppercase_ascii mnemonic in
      if m = "JMP" then Inst.Jmp (Inst.Abs target)
      else if String.length m > 1 && m.[0] = 'J' then
        match Cond.of_suffix (String.sub m 1 (String.length m - 1)) with
        | Some c -> Inst.Jcc (c, Inst.Abs target)
        | None -> fail line "unknown branch mnemonic %S" mnemonic
      else fail line "unexpected '@' in %S" text
  | None -> (
      match tokenize ~line text with
      | Tword mnemonic :: rest -> parse_inst ~line mnemonic rest
      | _ -> fail line "expected a mnemonic")

(** Parse a flattened program: one instruction per line, branch targets as
    [@index].  The base address and instruction size are the defaults used
    by {!Program.flatten}. *)
let parse_flat (source : string) : Program.flat =
  let lines = String.split_on_char '\n' source in
  let insts = ref [] in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let text = String.trim (strip_comment raw) in
      if String.length text = 0 then ()
      else insts := parse_flat_line ~line text :: !insts)
    lines;
  {
    Program.code = Array.of_list (List.rev !insts);
    code_base = Program.code_base_default;
    inst_size = Program.inst_size_default;
  }

(** Print a flattened program, one instruction per line ([@index] branch
    targets); exact inverse of {!parse_flat} for default base/size. *)
let print_flat (flat : Program.flat) =
  flat.Program.code |> Array.to_list |> List.map Inst.to_string
  |> String.concat "\n"
