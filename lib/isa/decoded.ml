(** Pre-decoded programs: the per-instruction facts the hot loops need,
    computed once per test program instead of once per dispatch.

    The out-of-order pipeline used to re-derive source/destination register
    sets, flag effects and memory-access shape from the raw {!Inst.t} on
    {e every} dispatch of every input.  A [Decoded.t] resolves all of that
    into one flat immutable array, shared across all inputs of a program and
    across all engine pool slots.  It also precomputes the basic-block
    structure (the same leader rule the static CFG uses) so the sequential
    emulator can fuse guaranteed straight-line runs between control-flow
    edges. *)

type kind =
  | Plain  (** goes through issue/execute *)
  | Dnext  (** no execution stage; next instruction is [index + 1] *)
  | Dexit  (** [Exit]: terminates the program at commit *)
  | Djump of int  (** resolved unconditional jump: completes at dispatch *)

type dinfo = {
  inst : Inst.t;
  index : int;
  pc : int;
  kind : kind;
  is_load : bool;
  is_store : bool;
  is_cond_branch : bool;
  is_fence : bool;
  reads_flags : bool;
  writes_flags : bool;
  mem : (Width.t * [ `Load | `Store | `Rmw ]) option;
  src_regs : Reg.t array;  (** deduplicated source registers *)
  dst_regs : Reg.t array;  (** destination registers, duplicates kept *)
  addr_regs : Reg.t array;  (** memory-operand address registers *)
  has_abs_target : bool;  (** branch target resolved to an absolute index *)
  branch_abs : int;  (** the absolute target; meaningless unless resolved *)
  fuse_stop : int;
      (** exclusive end of the guaranteed straight-line run starting here:
          every instruction in [index, fuse_stop) steps to [index + 1]
          (no branch, no [Exit]).  [fuse_stop = index] at block edges. *)
}

type t = { flat : Program.flat; code : dinfo array; leaders : bool array }

(* Largest register-set sizes in the ISA (checked at decode time so the
   pipeline can preallocate fixed-capacity scratch arrays). *)
let max_srcs = 4
let max_dsts = 2

(* Matches the historical dispatch-time dedup: keep the first occurrence,
   accumulate in reverse. *)
let dedup_regs regs =
  List.fold_left (fun acc r -> if List.memq r acc then acc else r :: acc) [] regs

(** Block leaders of [flat], per the CFG rule: the entry index, every
    resolved branch target, and every instruction following a branch or an
    [Exit].  {!Amulet_static} builds its basic blocks from the same array. *)
let leaders (flat : Program.flat) =
  let n = Program.length flat in
  let in_range i = i >= 0 && i < n in
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  for i = 0 to n - 1 do
    match Program.get flat i with
    | Inst.Jmp t | Inst.Jcc (_, t) ->
        (match t with
        | Inst.Abs x when in_range x -> leader.(x) <- true
        | Inst.Abs _ | Inst.Label _ -> ());
        if i + 1 < n then leader.(i + 1) <- true
    | Inst.Exit -> if i + 1 < n then leader.(i + 1) <- true
    | _ -> ()
  done;
  leader

let terminates = function
  | Inst.Jmp _ | Inst.Jcc _ | Inst.Exit -> true
  | _ -> false

let decode_inst flat ~fuse_stop index =
  let inst = Program.get flat index in
  let src_regs = Array.of_list (dedup_regs (Inst.source_regs inst)) in
  let dst_regs = Array.of_list (Inst.dest_regs inst) in
  if Array.length src_regs > max_srcs || Array.length dst_regs > max_dsts then
    invalid_arg "Decoded: register set exceeds ISA bound";
  let mem, addr_regs =
    match Inst.mem_access inst with
    | Some (m, w, d) ->
        (Some (w, d), Array.of_list (Operand.address_regs (Operand.Mem m)))
    | None -> (None, [||])
  in
  let kind =
    match inst with
    | Inst.Nop | Inst.Fence -> Dnext
    | Inst.Exit -> Dexit
    | Inst.Jmp (Inst.Abs target) -> Djump target
    | _ -> Plain
  in
  let has_abs_target, branch_abs =
    match Inst.branch_target inst with
    | Some (Inst.Abs i) -> (true, i)
    | Some (Inst.Label _) | None -> (false, 0)
  in
  {
    inst;
    index;
    pc = Program.pc_of_index flat index;
    kind;
    is_load = Inst.is_load inst;
    is_store = Inst.is_store inst;
    is_cond_branch = Inst.is_cond_branch inst;
    is_fence = (inst = Inst.Fence);
    reads_flags = Inst.reads_flags inst;
    writes_flags = Inst.writes_flags inst;
    mem;
    src_regs;
    dst_regs;
    addr_regs;
    has_abs_target;
    branch_abs;
    fuse_stop;
  }

let decode (flat : Program.flat) : t =
  let n = Program.length flat in
  let leader = leaders flat in
  (* stop.(i): first leader index after i (the owning block's end) *)
  let stop = Array.make (max n 1) n in
  for i = n - 2 downto 0 do
    stop.(i) <- (if leader.(i + 1) then i + 1 else stop.(i + 1))
  done;
  let fuse_stop_of i =
    let s = stop.(i) in
    (* only a block's last instruction can be a branch or Exit (anything
       after one is a leader); exclude it from the fused run *)
    let bound = if s > 0 && terminates (Program.get flat (s - 1)) then s - 1 else s in
    max bound i
  in
  let code = Array.init n (fun i -> decode_inst flat ~fuse_stop:(fuse_stop_of i) i) in
  { flat; code; leaders = leader }

let flat t = t.flat
let code t = t.code
let length t = Array.length t.code
let info t i = t.code.(i)

(* Placeholder for preallocated slots (ring buffers, arenas) before their
   first real dispatch. *)
let dummy =
  {
    inst = Inst.Nop;
    index = -1;
    pc = -1;
    kind = Plain;
    is_load = false;
    is_store = false;
    is_cond_branch = false;
    is_fence = false;
    reads_flags = false;
    writes_flags = false;
    mem = None;
    src_regs = [||];
    dst_regs = [||];
    addr_regs = [||];
    has_abs_target = false;
    branch_abs = 0;
    fuse_stop = -1;
  }
