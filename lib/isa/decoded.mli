(** Pre-decoded programs: per-instruction classification (register sets,
    flag effects, memory-access shape, resolved control flow) computed once
    per test program and shared by every input, every engine pool slot and
    the contract emulator's straight-line fast path. *)

type kind =
  | Plain  (** goes through issue/execute *)
  | Dnext  (** no execution stage; next instruction is [index + 1] *)
  | Dexit  (** [Exit]: terminates the program at commit *)
  | Djump of int  (** resolved unconditional jump: completes at dispatch *)

type dinfo = {
  inst : Inst.t;
  index : int;
  pc : int;
  kind : kind;
  is_load : bool;
  is_store : bool;
  is_cond_branch : bool;
  is_fence : bool;
  reads_flags : bool;
  writes_flags : bool;
  mem : (Width.t * [ `Load | `Store | `Rmw ]) option;
  src_regs : Reg.t array;  (** deduplicated source registers *)
  dst_regs : Reg.t array;  (** destination registers, duplicates kept *)
  addr_regs : Reg.t array;  (** memory-operand address registers *)
  has_abs_target : bool;  (** branch target resolved to an absolute index *)
  branch_abs : int;  (** the absolute target; meaningless unless resolved *)
  fuse_stop : int;
      (** exclusive end of the guaranteed straight-line run starting here:
          every instruction in [index, fuse_stop) steps to [index + 1]
          (no branch, no [Exit]).  [fuse_stop = index] at block edges. *)
}

type t

val max_srcs : int
(** Upper bound on [Array.length src_regs] over the whole ISA. *)

val max_dsts : int
(** Upper bound on [Array.length dst_regs] over the whole ISA. *)

val decode : Program.flat -> t
(** Decode every instruction of [flat].  O(program length); intended to run
    once per test program, not per input. *)

val flat : t -> Program.flat
(** The program this decode belongs to (compare with [==] for caching). *)

val code : t -> dinfo array
val length : t -> int
val info : t -> int -> dinfo

val leaders : Program.flat -> bool array
(** Basic-block leaders per the CFG rule: entry, every resolved branch
    target, every instruction following a branch or [Exit].  The array has
    [max (length flat) 1] elements; {!Amulet_static.Cfg.build} derives its
    blocks from exactly this array. *)

val dummy : dinfo
(** Placeholder for preallocated slots before their first real dispatch. *)
