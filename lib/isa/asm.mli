(** Textual assembly: a parser for the Intel-flavoured syntax that
    {!Program.pp} prints.

    {[
      .bb_main:                     # block label
        AND RBX, 0b111111111000000  # immediates: decimal, hex, binary
        MOV RAX, qword ptr [R14 + RBX]
        JNZ .bb_main.1
    ]}
    Comments start with [#] or [;]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Program.t
(** Parse a whole program; instructions before any label form an implicit
    ["bb0"] block.  Raises {!Parse_error}. *)

val print : Program.t -> string
(** Canonical textual form (round-trips through {!parse} for programs whose
    non-64-bit widths appear only on memory operands). *)

val parse_flat : string -> Program.flat
(** Parse a flattened (label-free) program: one instruction per line, branch
    targets as absolute instruction indices ([JNZ @5]).  Base address and
    instruction size are the {!Program.flatten} defaults.  Raises
    {!Parse_error}. *)

val print_flat : Program.flat -> string
(** One instruction per line with [@index] branch targets; exact inverse of
    {!parse_flat} for programs at the default base/size. *)
