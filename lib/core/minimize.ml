(** Violation minimization.

    Fuzzer-found programs carry dozens of irrelevant instructions; this
    module shrinks a violation to its essence by repeatedly replacing
    instructions with [NOP] while the violation persists — the usual
    delta-debugging step a human performs during the paper's §3.3 root-cause
    analysis, automated.

    An instruction is kept only if removing it either breaks the
    contract-trace equality of the two inputs (the pair would no longer be a
    test for leakage) or makes their microarchitectural traces agree (the
    leak disappears). *)

open Amulet_isa
open Amulet_contracts
open Amulet_defenses

type result = {
  minimized : Program.flat;
  removed : int;  (** instructions replaced by NOP *)
  kept : int;  (** non-NOP instructions remaining (incl. Exit) *)
}

(* Does the violation still reproduce on [flat] for this input pair?  Both
   contract-equality and a validated microarchitectural difference must
   hold, under a fresh executor (same defense/config as the original). *)
let still_violates ~defense ~contract ~sim_config flat (a : Input.t) (b : Input.t) =
  let ctrace i = Leakage_model.collect contract flat (Input.to_state i) in
  let ra = ctrace a and rb = ctrace b in
  ra.Leakage_model.fault = None
  && rb.Leakage_model.fault = None
  && Int64.equal ra.Leakage_model.ctrace_hash rb.Leakage_model.ctrace_hash
  &&
  let ex =
    Executor.create ~boot_insts:200 ?sim_config ~mode:Executor.Opt defense
      (Stats.create ())
  in
  Executor.start_program ex;
  let oa = Executor.run ex flat a in
  let ob = Executor.run ex flat b in
  let differs ctx =
    let ta = (Executor.run ex ~context:ctx flat a).Executor.trace in
    let tb = (Executor.run ex ~context:ctx flat b).Executor.trace in
    not (Utrace.equal ta tb)
  in
  differs oa.Executor.context || differs ob.Executor.context

let nop_count flat =
  Array.fold_left
    (fun acc i -> if i = Inst.Nop then acc + 1 else acc)
    0 flat.Program.code

(** Minimize [v]'s program for its input pair.  [sim_config] must match the
    configuration the violation was found under (amplified structures
    etc.). *)
let minimize ?sim_config (v : Violation.t) : result =
  let defense =
    Option.value (Defense.find v.Violation.defense_name) ~default:Defense.baseline
  in
  let contract = v.Violation.contract in
  let original = v.Violation.program in
  let code = Array.copy original.Program.code in
  let flat () = { original with Program.code = Array.copy code } in
  let check () =
    still_violates ~defense ~contract ~sim_config (flat ())
      v.Violation.input_a v.Violation.input_b
  in
  let removed = ref 0 in
  (* newest-first: late instructions are most often incidental *)
  for i = Array.length code - 1 downto 0 do
    match code.(i) with
    | Inst.Exit | Inst.Nop -> ()
    | inst ->
        code.(i) <- Inst.Nop;
        if check () then incr removed else code.(i) <- inst
  done;
  let minimized = flat () in
  {
    minimized;
    removed = !removed;
    kept = Array.length code - nop_count minimized;
  }

let pp_result fmt r =
  Format.fprintf fmt "minimized to %d instructions (%d removed):@." r.kept r.removed;
  Array.iteri
    (fun i inst ->
      if inst <> Inst.Nop then
        Format.fprintf fmt "  0x%x: %a@."
          (Program.pc_of_index r.minimized i)
          Inst.pp inst)
    r.minimized.Program.code
