(** The executor: runs test cases on the simulator under test and extracts
    microarchitectural traces.

    {b Mode} fixes the testing semantics (paper §3.2, C3): [Naive] starts
    every input from pristine post-boot state; [Opt] reuses one simulator
    per program, overwriting registers/memory in place and priming the L1D
    per the defense's harness style.

    {b Backend} fixes the trace-invisible implementation strategy:
    [Rebuild] reconstructs the simulator (full warm-boot cost) whenever
    pristine state is needed; [Pool] checkpoints the post-boot state once
    and rewinds it with {!Amulet_uarch.Simulator.restore}. *)

open Amulet_isa
open Amulet_uarch
open Amulet_defenses

type mode = Naive | Opt

val mode_name : mode -> string

type backend = Rebuild | Pool

val backend_name : backend -> string

type t

type outcome = {
  trace : Utrace.t;
  context : Simulator.context;
      (** full μarch starting context (predictors + caches), snapshotted
          just before the run — the handle violation validation uses *)
  run_fault : Fault.t option;
  cycles : int;
  sim_stats : Simulator.run_stats;
      (** per-run pipeline totals (squashes, speculative issues,
          mispredicts): the deterministic μarch feedback signal guided
          generation keys on; derived from the pipeline's own counters, so
          present even when telemetry is detached *)
  events : Event.t list;
      (** debug log of the run; [[]] unless [?log] was set *)
}

val create :
  ?boot_insts:int ->
  ?format:Utrace.format ->
  ?sim_config:Config.t ->
  ?chaos:Fault.injector ->
  ?backend:backend ->
  mode:mode ->
  Defense.t ->
  Stats.t ->
  t
(** [backend] defaults to [Pool].  [chaos], when set, arms a probabilistic
    fault injector: each test case may raise {!Fault.Injected_crash} or
    report an injected fault instead of its real outcome (robustness
    self-tests only). *)

val mode : t -> mode
val backend : t -> backend

val start_program : t -> unit
(** Begin a new test program; where [Opt] mode pays for pristine state (a
    rebuild or a checkpoint rewind, per the backend). *)

val warm : t -> unit
(** Pre-build the pooled simulator and its post-boot checkpoint so the
    first test case doesn't pay the boot cost ([Rebuild]: no-op). *)

val run :
  t -> ?context:Simulator.context -> ?log:bool -> Program.flat -> Input.t ->
  outcome
(** Execute one test case.  Without [?context], a fresh run under the
    executor's mode; with [?context], a validation rerun from an exactly
    reproduced microarchitectural starting context.  [?log] (default
    [false]) enables the debug event log and fills [outcome.events]. *)

val sims_created : t -> int
(** Simulators built (and warm-booted) over this executor's lifetime. *)

val restores : t -> int
(** Checkpoint rewinds performed instead of rebuilds ([Pool] backend). *)

val decodes : t -> int
(** Programs decoded into the shared {!Amulet_isa.Decoded} cache across
    every simulator this executor has owned (monotonic over [Rebuild]
    replacements).  With decode amortization working this tracks distinct
    programs, not inputs. *)
