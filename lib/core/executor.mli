(** The executor: runs test cases on the simulator under test and extracts
    microarchitectural traces.

    [Naive] rebuilds the simulator (with its synthetic warm boot) for every
    input; [Opt] builds one per program, overwrites registers/memory in
    place and primes the L1D per the defense's harness style (paper §3.2,
    C3). *)

open Amulet_isa
open Amulet_uarch
open Amulet_defenses

type mode = Naive | Opt

val mode_name : mode -> string

type t

type outcome = {
  trace : Utrace.t;
  context : Simulator.context;
      (** full μarch starting context (predictors + caches), snapshotted
          just before the run — the handle violation validation uses *)
  run_fault : Fault.t option;
  cycles : int;
}

val create :
  ?boot_insts:int ->
  ?format:Utrace.format ->
  ?sim_config:Config.t ->
  ?chaos:Fault.injector ->
  mode:mode ->
  Defense.t ->
  Stats.t ->
  t
(** [chaos], when set, arms a probabilistic fault injector: each test case
    may raise {!Fault.Injected_crash} or report an injected fault instead of
    its real outcome (robustness self-tests only). *)

val start_program : t -> unit
(** Begin a new test program; in [Opt] mode the only point paying the
    simulator startup cost. *)

val run_input : t -> Program.flat -> Input.t -> outcome

val run_input_with_context :
  t -> Program.flat -> Input.t -> Simulator.context -> Utrace.t
(** Validation rerun from an exactly reproduced starting context. *)

val run_input_logged :
  t -> Program.flat -> Input.t -> Simulator.context -> outcome * Event.t list
(** Re-run with the debug log enabled (root-cause analysis). *)
