(** Violation triage: the staged pipeline [load → cluster → bisect →
    shrink → report] that turns a raw violation stream (saved [.amulet]
    files, campaign journal directories, sweep/serve journal shards) into
    a ranked report of distinct root causes, one reproducer each.

    This is the one entry point for everything downstream of detection:
    {!finding} subsumes the former [Forensics.report] and
    [Violation_io.reanalysis] shapes, [amulet explain] is a one-element
    view of the same schema, and PoC emission writes standalone files that
    [amulet reproduce] replays.

    Clustering keys on the {e divergence signature}: the defense under
    test, the {!Analysis} leak class, the contract-trace divergence point,
    and the value-normalized shape of the microarchitectural trace diff.
    Two violations with the same signature leak through the same mechanism
    even when their concrete addresses differ.

    Bisection replays a cluster representative against single-flip
    variants of its defense preset's configuration — the [patched] bug
    flags first, then generic capacity/feature knobs — and names the first
    flip that makes the violation disappear: the responsible mechanism. *)

type status = Reproduced | Not_reproduced

val status_name : status -> string
(** ["reproduced"] / ["not_reproduced"]. *)

type ctrace_summary = {
  length_a : int;
  length_b : int;
  hash_a : int64;
  hash_b : int64;
  equal : bool;  (** equal contract traces: the violation's precondition *)
  first_divergence : (int * string * string) option;
      (** position and printed observations where the traces first differ
          (including one trace ending early, shown as ["<end>"]) *)
}

type mechanism_kind = Patched_flag | Config_knob

val mechanism_kind_name : mechanism_kind -> string

(** The responsible mechanism a bisection names: the single configuration
    flip under which the violation no longer reproduces. *)
type mechanism = {
  mech_name : string;  (** e.g. ["stt_patched_store_tlb"], ["nl_prefetcher=off"] *)
  mech_kind : mechanism_kind;
  mech_description : string;
  flips_tried : int;  (** candidates evaluated up to and including this one *)
}

(** The unified triage result for one violation — the single record (and
    JSON schema, [amulet.triage/1]) every analysis surface now shares. *)
type finding = {
  stored : Violation_io.stored;  (** the replayable artifact *)
  defense_name : string;
  contract_name : string;
  program_text : string;
  status : status;
      (** whether the microarchitectural traces still differ when both
          inputs re-run from one shared starting context *)
  signature : string;
      (** immutable divergence signature (the clustering key); computed
          here, never written back into {!Violation.t} *)
  leak_class : Analysis.leak_class option;  (** [None] when not reproduced *)
  ctrace : ctrace_summary;
  utrace_diff : string list;
  counters_a : Amulet_obs.Obs.Snapshot.t;
      (** [uarch.*] hardware-counter delta over execution A *)
  counters_b : Amulet_obs.Obs.Snapshot.t;
  counter_delta : Amulet_obs.Obs.Snapshot.t;
  mechanism : mechanism option;  (** filled by {!bisect} *)
  minimized : Minimize.result option;  (** filled by {!shrink} *)
}

(** {1 Stages} *)

val load : string list -> (string * Violation_io.stored) list
(** Gather the violation stream from a list of sources.  Each source may
    be a saved violation or PoC file, a campaign/shard journal, or a
    directory containing any mix of those ([.amulet] / [.json] entries —
    the layout [sweep --journal-dir] and [serve] leave behind).  Returns
    [(origin, stored)] pairs in deterministic (path-sorted, journal-order)
    order; quarantine files and unreadable entries are skipped.  Raises
    [Failure] if a named source does not exist. *)

val explain :
  ?l1d_ways:int ->
  ?mshrs:int ->
  ?sim_config:Amulet_uarch.Config.t ->
  Violation_io.stored ->
  finding
(** Rebuild the violation's executions: run input A fresh to obtain a
    starting context, re-run both inputs from that exact context with
    logging and live telemetry, collect both contract traces, classify,
    and compute the divergence signature.

    [sim_config], when given, fully overrides the defense's configuration
    (single-defense streams only).  [l1d_ways]/[mshrs] instead amplify
    {e each finding's own} defense config (§3.4) — the right knob for
    multi-preset streams from amplified campaigns. *)

val of_violation : ?sim_config:Amulet_uarch.Config.t -> Violation.t -> finding
(** As {!explain}, for an in-memory violation (its stored projection). *)

val sign :
  ?boot_insts:int ->
  ?sim_config:Amulet_uarch.Config.t ->
  Violation.t ->
  Violation.t * Analysis.leak_class
(** Classify a fresh finding and return its signed copy (class name as
    {!Violation.t} signature) together with the class — the detection-time
    signing path {!Reproducers} and campaigns share. *)

val bisect :
  ?l1d_ways:int ->
  ?mshrs:int ->
  ?sim_config:Amulet_uarch.Config.t ->
  finding ->
  finding
(** Name the responsible mechanism: revalidate the finding under
    single-flip variants of its defense configuration ([patched] bug flags
    first, then capacity/feature knobs) and record the first flip that
    kills the violation.  [mechanism] stays [None] when the finding does
    not reproduce under a fresh context or no flip is decisive. *)

val shrink :
  ?l1d_ways:int ->
  ?mshrs:int ->
  ?sim_config:Amulet_uarch.Config.t ->
  finding ->
  finding
(** Minimize the representative's program with {!Minimize} and record the
    result. *)

(** {1 Clusters and reports} *)

type cluster = {
  rank : int;  (** 1-based position in the ranked report *)
  cluster_signature : string;
  representative : finding;
      (** deterministically chosen member (smallest program text /
          identity), independent of source order *)
  members : string list;  (** origins of all members, sorted *)
  count : int;
}

type report = {
  clusters : cluster list;  (** ranked: largest first, ties by signature *)
  total : int;  (** findings consumed *)
  not_reproduced : int;  (** findings excluded because they did not replay *)
}

val cluster : (string * finding) list -> cluster list
(** Group reproduced findings by divergence signature and rank.  Stable
    under any permutation of the input list (shard order, worker arrival
    order): ranking and representative choice depend only on content. *)

val run :
  ?l1d_ways:int ->
  ?mshrs:int ->
  ?sim_config:Amulet_uarch.Config.t ->
  ?bisect:bool ->
  ?shrink:bool ->
  ?progress:(string -> unit) ->
  (string * Violation_io.stored) list ->
  report
(** The whole pipeline over a loaded stream: explain every stored
    violation, cluster, then bisect (default [true]) and shrink (default
    [false]) each cluster representative.  [progress] receives one-line
    stage updates. *)

val report_to_json : report -> string
(** The [amulet.triage/1] document. *)

val finding_to_json : finding -> string
(** One finding in the same schema (the [finding] object of a report
    cluster; [amulet explain --json] emits a one-element report). *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Standalone proof-of-concept files}

    A PoC is a self-contained replayable artifact: the program, both
    inputs, the divergence signature, the bisected mechanism, and the
    expected contract-trace identity and microarchitectural diff.
    [amulet reproduce <file.poc.amulet>] replays it and checks the
    observed divergence against the recorded one. *)
module Poc : sig
  type t = {
    stored : Violation_io.stored;
    signature : string;
    leak_class : string option;
    mechanism : (string * mechanism_kind) option;
    cluster_size : int;
    expected_equal_ctrace : bool;
    expected_ctrace_hash : int64;
    expected_diff : string list;
  }

  val of_cluster : cluster -> t

  val to_string : t -> string
  (** The full file content.  [to_string] and {!parse} round-trip
      byte-identically: [to_string (parse (to_string p)) = to_string p]. *)

  val parse : string list -> t
  (** Parse the lines of a PoC file.  Raises {!Violation_io.Format_error}
      on malformed input. *)

  val load : string -> t

  val write : dir:string -> cluster -> string
  (** Write the cluster's PoC as [poc<rank>_<defense>.amulet] under [dir]
      (created if needed); returns the path. *)

  val replay :
    ?l1d_ways:int ->
    ?mshrs:int ->
    ?sim_config:Amulet_uarch.Config.t ->
    t ->
    [ `Match | `Diff_mismatch of string list | `Not_reproduced ]
  (** Re-execute the PoC the way {!explain} does and compare the observed
      microarchitectural diff to the recorded one. *)
end
