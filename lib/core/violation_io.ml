(** Violation persistence: save fuzzer findings to disk and reload them for
    later analysis (the artifact the paper's workflow hands from the fuzzing
    campaign to the manual root-causing step).

    The format is a plain-text sectioned file: defense and contract names,
    the program in assembly syntax, and the two inputs (registers in hex,
    sandbox memory hex-dumped).  The original run's microarchitectural
    context is {e not} stored — on reload, analyses revalidate the pair
    under fresh contexts, which reproduces input-caused violations (and is
    exactly the check {!Minimize.still_violates} performs). *)

open Amulet_isa

type stored = {
  defense_name : string;
  contract_name : string;
  program : Program.flat;
  input_a : Input.t;
  input_b : Input.t;
  signature : string option;
  identity : (int64 * int64 * int64) option;
      (* (ctrace_hash, trace_a_hash, trace_b_hash) captured at detection
         time.  The validating context is not serialized, so re-execution
         cannot re-derive the original traces; without this, a resumed
         campaign's violations would fingerprint differently from the
         uninterrupted run.  [None] only for files written before the key
         existed. *)
}

exception Format_error of string

let of_violation (v : Violation.t) : stored =
  {
    defense_name = v.Violation.defense_name;
    contract_name = v.Violation.contract.Amulet_contracts.Contract.name;
    program = v.Violation.program;
    input_a = v.Violation.input_a;
    input_b = v.Violation.input_b;
    signature = v.Violation.signature;
    identity =
      Some
        ( v.Violation.ctrace_hash,
          v.Violation.trace_a_hash,
          v.Violation.trace_b_hash );
  }

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let hex_of_bytes b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let write_input out label (i : Input.t) =
  Printf.fprintf out "[%s.regs]\n" label;
  Array.iteri (fun k v -> Printf.fprintf out "%s=0x%Lx\n" (Reg.name (Reg.of_index k)) v) i.Input.regs;
  Printf.fprintf out "[%s.mem]\n" label;
  (* 64 bytes (128 hex chars) per line *)
  let hex = hex_of_bytes i.Input.mem in
  let n = String.length hex in
  let rec lines pos =
    if pos < n then begin
      Printf.fprintf out "%s\n" (String.sub hex pos (min 128 (n - pos)));
      lines (pos + 128)
    end
  in
  lines 0

(** Write the sectioned text form of [s] to an open channel (the format
    {!save} puts in a file; {!Journal} embeds the same blocks). *)
let output out (s : stored) =
  Printf.fprintf out "amulet-violation 1\n";
  Printf.fprintf out "[meta]\n";
  Printf.fprintf out "defense=%s\n" s.defense_name;
  Printf.fprintf out "contract=%s\n" s.contract_name;
  (match s.signature with
  | Some sig_ -> Printf.fprintf out "signature=%s\n" sig_
  | None -> ());
  (match s.identity with
  | Some (c, a, b) -> Printf.fprintf out "identity=0x%Lx,0x%Lx,0x%Lx\n" c a b
  | None -> ());
  Printf.fprintf out "[program]\n";
  (* assembly of the flattened program: one instruction per line with
     resolved @index targets, re-parseable below *)
  Array.iter
    (fun inst -> Printf.fprintf out "%s\n" (Inst.to_string inst))
    s.program.Program.code;
  write_input out "input_a" s.input_a;
  write_input out "input_b" s.input_b

(** Save to [path] (overwrites). *)
let save (s : stored) path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> output out s)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let bytes_of_hex hex =
  let n = String.length hex in
  if n mod 2 <> 0 then raise (Format_error "odd hex length");
  Bytes.init (n / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub hex (2 * i) 2)))

(* Flattened instructions print targets as "@N"; the assembler parses only
   labels, so resolve the "@N" form here. *)
let parse_flat_instruction line =
  match String.index_opt line '@' with
  | None -> (
      let p = Asm.parse line in
      match p.Program.blocks with
      | [ { Program.body = [ i ]; _ } ] -> i
      | _ -> raise (Format_error ("bad instruction line: " ^ line)))
  | Some at ->
      let mnemonic = String.trim (String.sub line 0 at) in
      let target =
        int_of_string (String.trim (String.sub line (at + 1) (String.length line - at - 1)))
      in
      if String.uppercase_ascii mnemonic = "JMP" then Inst.Jmp (Inst.Abs target)
      else
        let m = String.uppercase_ascii mnemonic in
        if String.length m > 1 && m.[0] = 'J' then
          match Cond.of_suffix (String.sub m 1 (String.length m - 1)) with
          | Some c -> Inst.Jcc (c, Inst.Abs target)
          | None -> raise (Format_error ("bad branch: " ^ line))
        else raise (Format_error ("bad target line: " ^ line))

(** Parse the lines of a violation block as written by {!output}. *)
let parse (lines : string list) : stored =
  (match lines with
  | magic :: _ when String.length magic >= 16 && String.sub magic 0 16 = "amulet-violation"
    ->
      ()
  | _ -> raise (Format_error "missing magic header"));
  let section = ref "" in
  let meta = Hashtbl.create 8 in
  let program_lines = ref [] in
  let regs_a = Array.make Reg.count 0L and regs_b = Array.make Reg.count 0L in
  let mem_a = Buffer.create 4096 and mem_b = Buffer.create 4096 in
  List.iteri
    (fun idx line ->
      if idx = 0 then ()
      else if String.length line > 1 && line.[0] = '[' then section := line
      else if String.trim line = "" then ()
      else
        match !section with
        | "[meta]" -> (
            match String.index_opt line '=' with
            | Some eq ->
                Hashtbl.replace meta
                  (String.sub line 0 eq)
                  (String.sub line (eq + 1) (String.length line - eq - 1))
            | None -> raise (Format_error ("bad meta line: " ^ line)))
        | "[program]" -> program_lines := line :: !program_lines
        | "[input_a.regs]" | "[input_b.regs]" -> (
            let regs = if !section = "[input_a.regs]" then regs_a else regs_b in
            match String.index_opt line '=' with
            | Some eq ->
                let r = Reg.of_name (String.sub line 0 eq) in
                regs.(Reg.index r) <-
                  Int64.of_string (String.sub line (eq + 1) (String.length line - eq - 1))
            | None -> raise (Format_error ("bad register line: " ^ line)))
        | "[input_a.mem]" -> Buffer.add_string mem_a (String.trim line)
        | "[input_b.mem]" -> Buffer.add_string mem_b (String.trim line)
        | s -> raise (Format_error ("unknown section: " ^ s)))
    lines;
  let code =
    Array.of_list (List.rev_map parse_flat_instruction !program_lines)
  in
  let find_meta k =
    match Hashtbl.find_opt meta k with
    | Some v -> v
    | None -> raise (Format_error ("missing meta key " ^ k))
  in
  {
    defense_name = find_meta "defense";
    contract_name = find_meta "contract";
    program =
      {
        Program.code;
        code_base = Program.code_base_default;
        inst_size = Program.inst_size_default;
      };
    input_a = { Input.regs = regs_a; mem = bytes_of_hex (Buffer.contents mem_a) };
    input_b = { Input.regs = regs_b; mem = bytes_of_hex (Buffer.contents mem_b) };
    signature = Hashtbl.find_opt meta "signature";
    identity =
      (match Hashtbl.find_opt meta "identity" with
      | None -> None
      | Some s -> (
          match String.split_on_char ',' s with
          | [ c; a; b ] -> (
              match
                ( Int64.of_string_opt c,
                  Int64.of_string_opt a,
                  Int64.of_string_opt b )
              with
              | Some c, Some a, Some b -> Some (c, a, b)
              | _ -> raise (Format_error ("bad identity line: " ^ s)))
          | _ -> raise (Format_error ("bad identity line: " ^ s))));
  }

(** Load a violation file written by {!save}. *)
let load path : stored =
  parse (In_channel.with_open_text path In_channel.input_lines)

(* ------------------------------------------------------------------ *)
(* Quarantine corpus                                                   *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  go dir

(** Quarantine a misbehaving test case: write the program (and the offending
    input, when one is identified) plus its classified fault into [dir] for
    later triage.  Returns the path written. *)
let save_quarantine ~dir ~seq ~(fault : Fault.t) ~defense_name ~contract_name
    (program : Program.flat) (input : Input.t option) : string =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "q%04d_%s.amulet" seq (Fault.class_name (Fault.class_of fault)))
  in
  let out = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () ->
      Printf.fprintf out "amulet-quarantine 1\n";
      Printf.fprintf out "[meta]\n";
      Printf.fprintf out "defense=%s\n" defense_name;
      Printf.fprintf out "contract=%s\n" contract_name;
      Printf.fprintf out "fault=%s\n" (Fault.class_name (Fault.class_of fault));
      Printf.fprintf out "fault_detail=%s\n" (Fault.to_string fault);
      Printf.fprintf out "[program]\n";
      Array.iter
        (fun inst -> Printf.fprintf out "%s\n" (Inst.to_string inst))
        program.Program.code;
      match input with
      | Some i -> write_input out "input_a" i
      | None -> ());
  path

(* ------------------------------------------------------------------ *)
(* Rehydration (journal resume)                                        *)
(* ------------------------------------------------------------------ *)

(** Rebuild a full {!Violation.t} from its stored form by re-executing both
    inputs (the stored form omits traces and the microarchitectural
    context).  Used when resuming a journaled campaign. *)
let rehydrate ?sim_config (s : stored) : Violation.t =
  let defense =
    Option.value (Amulet_defenses.Defense.find s.defense_name)
      ~default:Amulet_defenses.Defense.baseline
  in
  let contract =
    Option.value
      (Amulet_contracts.Contract.find s.contract_name)
      ~default:defense.Amulet_defenses.Defense.contract
  in
  let ex =
    Executor.create ?sim_config ~mode:Executor.Opt defense (Stats.create ())
  in
  Executor.start_program ex;
  let oa = Executor.run ex s.program s.input_a in
  let ob = Executor.run ex s.program s.input_b in
  (* re-executed traces serve analysis; identity comes from the stored
     detection-time hashes so fingerprints survive the round-trip (the
     fallback recomputation only applies to pre-identity files) *)
  let ctrace_hash, trace_a_hash, trace_b_hash =
    match s.identity with
    | Some id -> id
    | None -> (0L, Utrace.hash oa.Executor.trace, Utrace.hash ob.Executor.trace)
  in
  {
    Violation.program = s.program;
    program_text = Format.asprintf "%a" Program.pp_flat s.program;
    input_a = s.input_a;
    input_b = s.input_b;
    trace_a = oa.Executor.trace;
    trace_b = ob.Executor.trace;
    context = oa.Executor.context;
    ctrace_hash;
    trace_a_hash;
    trace_b_hash;
    contract;
    defense_name = s.defense_name;
    detection_seconds = 0.;
    signature = s.signature;
  }

(* ------------------------------------------------------------------ *)
(* Re-analysis of a loaded violation                                   *)
(* ------------------------------------------------------------------ *)

type reanalysis = {
  reproduced : bool;
  leak_class : Analysis.leak_class option;
  minimization : Minimize.result option;
}

(** Re-validate a stored violation under fresh contexts, classify it, and
    optionally minimize it. *)
let reanalyze ?(minimize = false) ?sim_config (s : stored) : reanalysis =
  let defense =
    Option.value (Amulet_defenses.Defense.find s.defense_name)
      ~default:Amulet_defenses.Defense.baseline
  in
  let contract =
    Option.value
      (Amulet_contracts.Contract.find s.contract_name)
      ~default:defense.Amulet_defenses.Defense.contract
  in
  if
    not
      (Minimize.still_violates ~defense ~contract ~sim_config s.program s.input_a
         s.input_b)
  then { reproduced = false; leak_class = None; minimization = None }
  else begin
    (* rebuild a Violation.t for the classifier *)
    let ex =
      Executor.create ~boot_insts:200 ?sim_config ~mode:Executor.Opt defense
        (Stats.create ())
    in
    Executor.start_program ex;
    let oa = Executor.run ex s.program s.input_a in
    let ob = Executor.run ex s.program s.input_b in
    let v =
      {
        Violation.program = s.program;
        program_text = Format.asprintf "%a" Program.pp_flat s.program;
        input_a = s.input_a;
        input_b = s.input_b;
        trace_a = oa.Executor.trace;
        trace_b = ob.Executor.trace;
        context = oa.Executor.context;
        ctrace_hash = 0L;
        trace_a_hash = Utrace.hash oa.Executor.trace;
        trace_b_hash = Utrace.hash ob.Executor.trace;
        contract;
        defense_name = s.defense_name;
        detection_seconds = 0.;
        signature = None;
      }
    in
    let leak_class = Analysis.classify_violation ex v in
    let minimization = if minimize then Some (Minimize.minimize ?sim_config v) else None in
    { reproduced = true; leak_class = Some leak_class; minimization }
  end
