(** The execution-engine abstraction: a uniform create / warm / run /
    run_batch / stats surface over the executor.  The fuzzer depends on
    this signature, so alternative backends (sharded, multi-process) can
    slot in without an interface break. *)

open Amulet_isa
open Amulet_uarch
open Amulet_defenses

type kind = Naive | Pooled

val kind_name : kind -> string

type stats = {
  engine : string;
  sims_created : int;  (** full simulator builds (warm boots) paid *)
  snapshot_restores : int;  (** checkpoint rewinds performed instead *)
  batches : int;
  inputs_run : int;  (** inputs executed through {!run_batch} *)
  programs_decoded : int;
      (** pre-decode cache fills; with amortization working this tracks
          distinct programs, not [inputs_run] *)
}

(** Result of one batched pass: per-input outcomes in input order.  A
    simulator fault stops the batch — later slots stay [None] — and is
    reported with the offending input. *)
type batch = {
  outcomes : Executor.outcome option array;
  batch_fault : (Fault.t * Input.t) option;
}

(** What every engine implementation provides. *)
module type S = sig
  type t

  val name : string

  val create :
    ?boot_insts:int ->
    ?format:Utrace.format ->
    ?sim_config:Config.t ->
    ?chaos:Fault.injector ->
    mode:Executor.mode ->
    Defense.t ->
    Stats.t ->
    t

  val warm : t -> unit
  (** Pay any one-time startup cost now rather than on the first test case. *)

  val run :
    t -> ?context:Simulator.context -> ?log:bool -> Program.flat -> Input.t ->
    Executor.outcome
  (** Single test case; see {!Executor.run}. *)

  val run_batch : t -> ?check:(unit -> unit) -> Program.flat -> Input.t array -> batch
  (** Execute all inputs of one test program against a warm simulator in a
      single pass.  [check] runs before each input (deadline hook); whatever
      it raises propagates. *)

  val stats : t -> stats
end

module Naive_engine : S
(** Rebuilds the simulator whenever pristine state is needed. *)

module Pooled_engine : S
(** Boots once, checkpoints post-boot state, rewinds per test case. *)

(** {2 Packed engines (runtime-selected implementation)} *)

type t

val create :
  ?boot_insts:int ->
  ?format:Utrace.format ->
  ?sim_config:Config.t ->
  ?chaos:Fault.injector ->
  ?kind:kind ->
  mode:Executor.mode ->
  Defense.t ->
  Stats.t ->
  t
(** [kind] defaults to [Pooled]. *)

val name : t -> string
val warm : t -> unit

val run :
  t -> ?context:Simulator.context -> ?log:bool -> Program.flat -> Input.t ->
  Executor.outcome

val run_batch : t -> ?check:(unit -> unit) -> Program.flat -> Input.t array -> batch
val stats : t -> stats
