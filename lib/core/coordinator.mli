(** The coordinator side of the distributed campaign service ([amulet
    serve]): a single-threaded [select] loop that leases sweep jobs to
    {!Worker}s over {!Proto}, tracks per-worker heartbeats, and reassigns
    the shards of dead or silent workers to live ones.

    Lease / heartbeat state machine (per connection):
    {v
      accept → [Hello] → [Hello_ok] → idle
      idle   —lease granted→                    leased
      leased —[Heartbeat] within lease_timeout→ leased   (deadline renewed)
      leased —[Result]/[Quarantine_shard]→      idle     (next lease pumped)
      leased —EOF / EPIPE / deadline missed→    dropped  (shard requeued at
                                                          the queue front)
      any    —malformed frame→                  dropped  ([Shutdown] sent,
                                                          C_protocol counted)
    v}

    Requeued shards carry their journal path, so the adopting worker
    resumes from the last checkpoint instead of restarting; a shard that
    exhausts [max_attempts] leases (or that a worker quarantines) is
    abandoned and reported — never retried forever, never fatal.  The
    merged report reduces to {!Sweep.Ident} rows: its {!field-fingerprint}
    is byte-identical to the in-process {!Sweep} path for the same jobs,
    whatever the worker count or crash history. *)

module Obs = Amulet_obs.Obs

type t
(** A bound, listening coordinator (single use: {!serve} closes the
    socket when the matrix completes). *)

val create :
  socket:string ->
  ?name:string ->
  ?metrics:Obs.t ->
  ?journal_dir:string ->
  ?checkpoint_every:int ->
  ?heartbeat_s:float ->
  ?lease_timeout_s:float ->
  ?max_attempts:int ->
  ?idle_timeout_s:float ->
  unit ->
  t
(** Bind and listen on the Unix-domain [socket] (an existing socket file is
    replaced).  Binding before {!serve} lets the caller spawn local workers
    that connect immediately.  [journal_dir], when set, gives every lease a
    per-shard checkpoint path inside it — required for resumed (rather than
    restarted) reassignment.  [heartbeat_s] (default 0.5) is the cadence
    told to workers; a lease silent for [lease_timeout_s] (default 10) is
    expired.  A shard is abandoned after [max_attempts] (default 3) leases,
    and the whole remainder after [idle_timeout_s] (default 30) with no
    connected workers. *)

val socket_path : t -> string

type status =
  | Done of Proto.shard_result
  | Abandoned of string
      (** exceeded [max_attempts], reported unrunnable, or no live workers *)

type shard = {
  job : Sweep.job;
  status : status;
  worker : string;  (** the worker that resolved it ("" when abandoned) *)
  attempts : int;  (** leases granted: 1 + reassignments *)
  wall_s : float;  (** grant-to-result of the resolving lease *)
}

type report = {
  shards : shard list;  (** every shard, in job order *)
  rows : Sweep.Ident.row list;
      (** per-preset merge, first-appearance job order — the digest input *)
  fingerprint : string;
      (** equals {!Sweep.fingerprint} of the same jobs run in-process *)
  workers_joined : int;
  reassignments : int;
  worker_lost : int;
  protocol_errors : int;
  crashed : int;  (** abandoned shards (lost past retry cap, quarantined) *)
  wall_s : float;
  test_cases : int;
  violations : int;
  distinct_clusters : int;
      (** distinct root-cause clusters across the fleet (per-defense
          {!Sweep.Ident.dedup_key}s, summed over rows); also streamed live
          to the [service.distinct_clusters] gauge as results arrive *)
  fault_counts : (Fault.cls * int) list;
  metrics : Obs.Snapshot.t;
}

val serve : t -> Sweep.job list -> report
(** Run the matrix to completion: lease every job (reindexed in list
    order), ride out worker crashes, merge results deterministically.
    Returns when every shard is [Done] or [Abandoned]; the listening
    socket is closed and unlinked on the way out.  Never raises for
    worker-side misbehaviour. *)

val to_json : report -> string
(** The BENCH_serve.json document (schema [amulet.serve/1]); embeds
    ["fingerprint":"…"] exactly like the sweep document so CI can compare
    the two with the same grep. *)

val pp : Format.formatter -> report -> unit
