include Amulet_corpus.Rng
