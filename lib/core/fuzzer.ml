(** The relational fuzzing round: generate a program and inputs, collect
    contract traces (leakage model) and microarchitectural traces
    (executor), and flag validated contract violations (Definition 2.1).

    Input boosting follows Revizor: one taint-tracking pass per base input
    identifies the input atoms the contract trace depends on; mutants
    randomize the complement, guaranteeing same-contract-trace input classes
    in which any microarchitectural difference is a leak. *)

open Amulet_isa
open Amulet_contracts
open Amulet_defenses
open Amulet_obs

type config = {
  n_base_inputs : int;
  boosts_per_input : int;  (** mutants per base input *)
  contract : Contract.t option;  (** override the defense's default contract *)
  generation : Run_spec.generation;
      (** generation strategy; [Guided] activates the corpus/scheduler/
          mutation loop *)
  generator : Generator.config;
      (** effective base generator config (= base of [generation], with the
          defense's sandbox capacity applied) *)
  executor_mode : Executor.mode;
  engine : Engine.kind;
      (** execution backend: [Pooled] (checkpoint rewind, default) or
          [Naive] (full rebuild); trace-invisible, throughput only *)
  trace_format : Utrace.format;
  boot_insts : int;
  sim_config : Amulet_uarch.Config.t option;  (** override (amplification) *)
  deadline_ms : float option;
      (** wall-clock budget per round; a round that blows it degrades to a
          classified discard (complements the simulator's [max_cycles]) *)
  quarantine_dir : string option;
      (** where to save the program+input of every discarded round *)
  chaos : Fault.injector option;  (** fault injection (self-tests) *)
  isolate_rounds : bool;
      (** catch exceptions escaping a round and degrade them to classified
          discards; on by default — turned off only by supervision tests
          that need a whole instance to crash *)
  static_filter : Run_spec.static_filter;
      (** static leakage pre-filter: skip ([Screen]) or deprioritize
          ([Score]) programs that provably cannot leak *)
}

(* The config <-> Run_spec bridge: [config] stays the fuzzer's internal
   working record; the public construction surface is {!Run_spec.t}. *)
let config_of_spec (s : Run_spec.t) =
  {
    n_base_inputs = s.Run_spec.n_base_inputs;
    boosts_per_input = s.Run_spec.boosts_per_input;
    contract = s.Run_spec.contract;
    generation = s.Run_spec.generation;
    generator = Run_spec.generator_config s;
    executor_mode = s.Run_spec.mode;
    engine = s.Run_spec.engine;
    trace_format = s.Run_spec.trace_format;
    boot_insts = s.Run_spec.boot_insts;
    sim_config = s.Run_spec.sim_config;
    deadline_ms = s.Run_spec.deadline_ms;
    quarantine_dir = s.Run_spec.quarantine_dir;
    chaos = s.Run_spec.chaos;
    isolate_rounds = s.Run_spec.isolate_rounds;
    static_filter = s.Run_spec.static_filter;
  }

type t = {
  cfg : config;
  defense : Defense.t;
  contract : Contract.t;
  engine : Engine.t;
  stats : Stats.t;
  mutable rng : Rng.t;
  started_at : float;
  mutable quarantined : int;
  mutable corpus : Amulet_corpus.Corpus.t option;
      (* present iff the generation strategy is [Guided]; replaced
         wholesale by journal resume *)
  mutable last_feedback : Amulet_corpus.Coverage.feedback option;
      (* coverage feedback of the last completed simulation batch, consumed
         by the guided round right after [test_program] returns *)
  mutable budget_check : (unit -> bool) option;
      (* campaign-level wall-clock budget, polled at the same points as the
         per-round deadline so a blown budget surfaces mid-round *)
  mutable last_decoded : Decoded.t option;
      (* pre-decode of the round's program, shared by every ctrace
         collection (base inputs and all their mutants); keyed on the flat
         program by physical equality *)
  (* fuzzer-level telemetry, resolved once against the stats registry *)
  m_rounds : Obs.counter;
  m_base_inputs : Obs.counter;
  m_mutants : Obs.counter;
  m_mutants_same_class : Obs.counter;
      (* boost effectiveness: mutants whose contract trace stayed in the
         base input's class, which is what taint-directed boosting aims
         for *)
  m_violations : Obs.counter;
  m_discards : Obs.counter;
  (* static pre-filter telemetry *)
  m_static_analyzed : Obs.counter;
  m_static_leaky : Obs.counter;
  m_static_screened : Obs.counter;
  m_static_rescored : Obs.counter;
      (* score mode: extra generator draws taken to find a leaky candidate *)
  (* guided-generation telemetry *)
  m_corpus_fresh : Obs.counter;  (* rounds that generated a fresh program *)
  m_corpus_mutants : Obs.counter;  (* rounds that tested a corpus mutant *)
  m_corpus_novel : Obs.counter;  (* novel coverage features discovered *)
  m_corpus_seeds : Obs.gauge;  (* live corpus entries *)
  m_corpus_coverage : Obs.gauge;  (* distinct coverage features *)
}

(* Speculation window the static pre-filter assumes.  The μarch engines
   speculate regardless of what the contract models, so never assume less
   than the default window; a contract configured with a larger window
   widens the analysis. *)
let static_window (contract : Contract.t) =
  match contract.Contract.speculation with
  | Contract.Conditional_branches { window; _ } ->
      max window Contract.default_window
  | Contract.No_speculation -> Contract.default_window

let create ?(metrics = Obs.noop) ?engine (spec : Run_spec.t) =
  let defense = spec.Run_spec.defense in
  let cfg = config_of_spec spec in
  let contract = Option.value cfg.contract ~default:defense.Defense.contract in
  (* the defense dictates the sandbox capacity; apply it to the strategy's
     base config (and the effective alias) so generation, mutation and
     input synthesis all agree *)
  let generation =
    Run_spec.map_generation_base
      (fun g -> { g with Generator.sandbox_pages = defense.Defense.sandbox_pages })
      cfg.generation
  in
  let cfg =
    { cfg with generation; generator = Run_spec.generation_base generation }
  in
  let corpus =
    match Run_spec.generation_corpus generation with
    | None -> None
    | Some params ->
        let sandbox_bytes =
          defense.Defense.sandbox_pages * Amulet_emu.Memory.page_size
        in
        Some (Amulet_corpus.Corpus.create ~params ~sandbox_bytes ())
  in
  let engine, stats =
    match engine with
    | Some (engine, stats) ->
        (* injected warmed engine (sweep cache): its stats sink is adopted
           wholesale; spec.chaos is ignored because chaos is armed at
           executor creation *)
        (engine, stats)
    | None ->
        let stats = Stats.create ~metrics () in
        let engine =
          Engine.create ~boot_insts:cfg.boot_insts ~format:cfg.trace_format
            ?sim_config:cfg.sim_config ?chaos:cfg.chaos ~kind:cfg.engine
            ~mode:cfg.executor_mode defense stats
        in
        (engine, stats)
  in
  {
    cfg;
    defense;
    contract;
    engine;
    stats;
    rng = Rng.create ~seed:spec.Run_spec.seed;
    started_at = Obs.Clock.now_s ();
    quarantined = 0;
    corpus;
    last_feedback = None;
    budget_check = None;
    last_decoded = None;
    m_rounds = Obs.counter metrics "fuzzer.rounds";
    m_base_inputs = Obs.counter metrics "fuzzer.base_inputs";
    m_mutants = Obs.counter metrics "fuzzer.boost.mutants";
    m_mutants_same_class = Obs.counter metrics "fuzzer.boost.same_class";
    m_violations = Obs.counter metrics "fuzzer.violations";
    m_discards = Obs.counter metrics "fuzzer.discards";
    m_static_analyzed = Obs.counter metrics "static.analyzed";
    m_static_leaky = Obs.counter metrics "static.leaky";
    m_static_screened = Obs.counter metrics "static.screened";
    m_static_rescored = Obs.counter metrics "static.rescored";
    m_corpus_fresh = Obs.counter metrics "corpus.fresh";
    m_corpus_mutants = Obs.counter metrics "corpus.mutants";
    m_corpus_novel = Obs.counter metrics "corpus.novel_features";
    m_corpus_seeds = Obs.gauge metrics "corpus.seeds";
    m_corpus_coverage = Obs.gauge metrics "corpus.coverage_features";
  }

let stats t = t.stats
let contract t = t.contract
let quarantined t = t.quarantined
let corpus t = t.corpus

(** Text checkpoint of the guided corpus ([None] for random specs);
    embedded in campaign journals so resumed shards continue from the
    corpus they left, not an empty one. *)
let corpus_snapshot t = Option.map Amulet_corpus.Corpus.to_string t.corpus

(** Restore a corpus checkpoint (journal resume).  No-op on random specs;
    raises [Failure] on a malformed snapshot. *)
let restore_corpus t s =
  match t.corpus with
  | None -> ()
  | Some _ -> t.corpus <- Some (Amulet_corpus.Corpus.of_string s)

(* Campaign-level wall-clock budget exhausted.  Deliberately NOT contained
   by [isolate_rounds]: the round's work is abandoned, and the campaign is
   expected to roll back to the last completed round boundary. *)
exception Budget

let set_budget_check t f = t.budget_check <- Some f

(** Replace the PRNG stream.  Campaigns reseed before every round with a
    seed derived from (campaign seed, round index), making each round
    reproducible in isolation — the property journal resume relies on. *)
let reseed t ~seed = t.rng <- Rng.create ~seed

(* ------------------------------------------------------------------ *)
(* Per-program round                                                   *)
(* ------------------------------------------------------------------ *)

type test_case = {
  input : Input.t;
  ctrace_hash : int64;
  shape_hash : int64;  (** contract-trace shape digest (coverage feature) *)
  spec_steps : int;  (** model instructions on mispredicted paths *)
  mutable outcome : Executor.outcome option;
}

type round_result =
  | No_violation of { test_cases : int }
  | Found of Violation.t
  | Discarded of Fault.t
      (** the round misbehaved (model/simulator fault, blown deadline,
          crash, injected fault) and was classified and dropped *)
  | Screened
      (** the static pre-filter classified the generated program as
          provably leak-free; no input was simulated
          ([static_filter = Screen] only) *)

(* Per-round wall-clock budget.  Raised internally, converted to a
   classified [Discarded] before test_program returns. *)
exception Deadline of Fault.t

type deadline = { round_started : float; budget_ms : float option }

let deadline_start t =
  { round_started = Obs.Clock.now_s (); budget_ms = t.cfg.deadline_ms }

(* [Obs.Clock.elapsed_ms] clamps to >= 0: the wall clock is not monotonic,
   and an NTP step backwards must not instantly exhaust (or extend) the
   budget. *)
let check_deadline t d =
  (match t.budget_check with
  | Some exhausted when exhausted () -> raise Budget
  | _ -> ());
  match d.budget_ms with
  | None -> ()
  | Some budget ->
      let elapsed_ms = Obs.Clock.elapsed_ms ~since:d.round_started in
      if elapsed_ms > budget then
        raise
          (Deadline (Fault.Deadline_exceeded { elapsed_ms; deadline_ms = budget }))

(* Pre-decode of the round's program: decoded once, then shared by the
   ctrace collection of every input in the population. *)
let decoded_of t flat =
  match t.last_decoded with
  | Some d when Decoded.flat d == flat -> d
  | Some _ | None ->
      let d = Decoded.decode flat in
      t.last_decoded <- Some d;
      d

(* Contract trace of one input; [collect_taint] additionally runs the taint
   tracker for boosting. *)
let ctrace_of t flat input ~collect_taint =
  let decoded = decoded_of t flat in
  Stats.time t.stats Stats.Ctrace_extraction (fun () ->
      let state = Input.to_state input in
      Leakage_model.collect ~collect_taint ~decoded t.contract flat state)

(* Build the input population: base inputs plus taint-directed mutants.
   A model fault aborts the population and names the offending input. *)
let build_test_cases t flat dl =
  let cases = ref [] in
  let fault = ref None in
  let n = t.cfg.n_base_inputs in
  for _ = 1 to n do
    if !fault = None then begin
      check_deadline t dl;
      let base = Input.generate t.rng ~pages:t.cfg.generator.Generator.sandbox_pages in
      let result = ctrace_of t flat base ~collect_taint:true in
      match result.Leakage_model.fault with
      | Some f -> fault := Some (Fault.of_run_fault f, base)
      | None ->
          Obs.incr t.m_base_inputs;
          cases :=
            {
              input = base;
              ctrace_hash = result.ctrace_hash;
              shape_hash = result.Leakage_model.shape_hash;
              spec_steps = result.Leakage_model.spec_steps;
              outcome = None;
            }
            :: !cases;
          (match result.Leakage_model.taint with
          | None -> ()
          | Some taint ->
              for _ = 1 to t.cfg.boosts_per_input do
                check_deadline t dl;
                let mutant = Input.mutate_free t.rng taint base in
                (* taint tracking is conservative, but verify: a mutant whose
                   contract trace moved would poison its class *)
                let mr = ctrace_of t flat mutant ~collect_taint:false in
                if mr.Leakage_model.fault = None then begin
                  Obs.incr t.m_mutants;
                  if mr.Leakage_model.ctrace_hash = result.Leakage_model.ctrace_hash
                  then Obs.incr t.m_mutants_same_class;
                  cases :=
                    {
                      input = mutant;
                      ctrace_hash = mr.ctrace_hash;
                      shape_hash = mr.Leakage_model.shape_hash;
                      spec_steps = mr.Leakage_model.spec_steps;
                      outcome = None;
                    }
                    :: !cases
                end
              done)
    end
  done;
  match !fault with Some (f, input) -> Error (f, input) | None -> Ok (List.rev !cases)

(* ------------------------------------------------------------------ *)
(* Fault containment: count, quarantine, discard                       *)
(* ------------------------------------------------------------------ *)

let quarantine t flat ?input fault =
  match t.cfg.quarantine_dir with
  | None -> ()
  | Some dir -> (
      t.quarantined <- t.quarantined + 1;
      (* quarantine is best-effort evidence capture: an unwritable corpus
         directory must not take the campaign down *)
      try
        ignore
          (Violation_io.save_quarantine ~dir ~seq:t.quarantined ~fault
             ~defense_name:t.defense.Defense.name
             ~contract_name:t.contract.Contract.name flat input)
      with Sys_error _ -> ())

let discard t flat ?input fault =
  Stats.count_fault t.stats fault;
  Obs.incr t.m_discards;
  quarantine t flat ?input fault;
  Discarded fault

(* Group test-case indices by contract-trace hash. *)
let classes_of cases =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i c ->
      let existing = Option.value (Hashtbl.find_opt tbl c.ctrace_hash) ~default:[] in
      Hashtbl.replace tbl c.ctrace_hash (i :: existing))
    cases;
  Hashtbl.fold (fun h members acc -> (h, List.rev members) :: acc) tbl []

(* Validate a candidate pair by re-running both inputs from a common,
   exactly reproduced microarchitectural context (Definition 2.1 fixes the
   context mu).  Following the paper, each input's starting context is tried
   in turn — a difference that persists under either shared context is a
   real, input-caused leak; differences explained entirely by the drifting
   Opt-mode context disappear here and are rejected. *)
let validate t flat (a : test_case) (b : test_case) =
  let try_ctx ctx =
    let ta = (Engine.run t.engine ~context:ctx flat a.input).Executor.trace in
    let tb = (Engine.run t.engine ~context:ctx flat b.input).Executor.trace in
    if Utrace.equal ta tb then None else Some (ta, tb, ctx)
  in
  let ctxs =
    List.filter_map
      (fun (o : Executor.outcome option) ->
        Option.map (fun o -> o.Executor.context) o)
      [ a.outcome; b.outcome ]
  in
  List.fold_left
    (fun acc ctx -> match acc with Some _ -> acc | None -> try_ctx ctx)
    None ctxs

(* Aggregate one round's deterministic coverage feedback: contract-trace
   shape/class structure from the model, per-run pipeline totals from the
   executor outcomes.  Case order is fixed (base inputs then their
   mutants), so the fold is reproducible across engines and worker
   fleets. *)
let feedback_of (arr : test_case array) : Amulet_corpus.Coverage.feedback =
  let fnv_prime = 0x100000001b3L in
  let shape_hash =
    Array.fold_left
      (fun h c -> Int64.mul (Int64.logxor h c.shape_hash) fnv_prime)
      0xcbf29ce484222325L arr
  in
  let classes = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace classes c.ctrace_hash ()) arr;
  let spec_steps = Array.fold_left (fun a c -> a + c.spec_steps) 0 arr in
  let sum f =
    Array.fold_left
      (fun a c ->
        match c.outcome with
        | Some o -> a + f o.Executor.sim_stats
        | None -> a)
      0 arr
  in
  {
    Amulet_corpus.Coverage.shape_hash;
    ctrace_classes = Hashtbl.length classes;
    spec_steps;
    cycles = sum (fun s -> s.Amulet_uarch.Simulator.cycles);
    committed_insts = sum (fun s -> s.Amulet_uarch.Simulator.committed_insts);
    squashes = sum (fun s -> s.Amulet_uarch.Simulator.squashes);
    squashed_insts = sum (fun s -> s.Amulet_uarch.Simulator.squashed_insts);
    spec_issued = sum (fun s -> s.Amulet_uarch.Simulator.spec_issued);
    mispredicts = sum (fun s -> s.Amulet_uarch.Simulator.mispredicts);
  }

(* The round body; may raise ({!Deadline}, decoder errors, injected
   crashes) — {!test_program} contains whatever escapes. *)
let test_program_exn t (flat : Program.flat) dl : round_result =
  match build_test_cases t flat dl with
  | Error (f, input) -> discard t flat ~input f
  | Ok [] -> discard t flat Fault.Empty_population
  | Ok cases -> (
      let arr = Array.of_list cases in
      (* one batched pass: all boosted inputs of this test case against a
         warm simulator (the engine re-pristines per its mode/backend) *)
      let batch =
        Engine.run_batch t.engine
          ~check:(fun () -> check_deadline t dl)
          flat
          (Array.map (fun c -> c.input) arr)
      in
      Array.iteri (fun i o -> arr.(i).outcome <- o) batch.Engine.outcomes;
      match batch.Engine.batch_fault with
      | Some (f, input) -> discard t flat ~input f
      | None -> (
          t.last_feedback <- Some (feedback_of arr);
          let candidate = ref None in
          List.iter
            (fun (_hash, members) ->
              match members with
              | first :: rest when !candidate = None ->
                  check_deadline t dl;
                  let a = arr.(first) in
                  List.iter
                    (fun j ->
                      if !candidate = None then
                        let b = arr.(j) in
                        match a.outcome, b.outcome with
                        | Some oa, Some ob ->
                            if not (Utrace.equal oa.Executor.trace ob.Executor.trace)
                            then
                              (* candidate: validate under a common context *)
                              (match validate t flat a b with
                              | Some (ta, tb, ctx) -> candidate := Some (a, b, ta, tb, ctx)
                              | None -> ())
                        | _ -> ())
                    rest
              | _ -> ())
            (classes_of (Array.to_list arr));
          match !candidate with
          | None -> No_violation { test_cases = Array.length arr }
          | Some (a, b, ta, tb, ctx) ->
              Stats.count_violation t.stats;
              Obs.incr t.m_violations;
              Found
                {
                  Violation.program = flat;
                  program_text = Format.asprintf "%a" Program.pp_flat flat;
                  input_a = a.input;
                  input_b = b.input;
                  trace_a = ta;
                  trace_b = tb;
                  context = ctx;
                  ctrace_hash = a.ctrace_hash;
                  trace_a_hash = Utrace.hash ta;
                  trace_b_hash = Utrace.hash tb;
                  contract = t.contract;
                  defense_name = t.defense.Defense.name;
                  detection_seconds = Obs.Clock.elapsed_s ~since:t.started_at;
                  signature = None;
                }))

(** Run one fuzzing round on [flat] (typically a freshly generated program):
    collect traces for a population of inputs and report the first validated
    violation, if any.  Fault-isolated: a blown deadline always degrades to
    a classified discard, and (unless [isolate_rounds] is off) so does any
    exception escaping the round. *)
let test_program t (flat : Program.flat) : round_result =
  Obs.incr t.m_rounds;
  let dl = deadline_start t in
  let contained () =
    try test_program_exn t flat dl with Deadline fault -> discard t flat fault
  in
  if t.cfg.isolate_rounds then
    try contained () with
    | Budget as e -> raise e
    | exn -> discard t flat (Fault.of_exn exn)
  else contained ()

(* Static classification of a candidate program under this fuzzer's
   defense (sandbox capacity) and contract (speculation window). *)
let static_report t flat =
  let sandbox_bytes =
    t.defense.Defense.sandbox_pages * Amulet_emu.Memory.page_size
  in
  Obs.incr t.m_static_analyzed;
  let report =
    Amulet_static.Leakcheck.analyze ~window:(static_window t.contract)
      ~sandbox_bytes flat
  in
  if report.Amulet_static.Leakcheck.leaky then Obs.incr t.m_static_leaky;
  report

let static_leaky t flat = (static_report t flat).Amulet_static.Leakcheck.leaky

(* Apply the static pre-filter: [None] means the round is screened out
   without simulating a single input. *)
let generate_filtered t gen =
  match t.cfg.static_filter with
  | Run_spec.Off -> Some (gen ())
  | Run_spec.Screen ->
      let flat = gen () in
      if static_leaky t flat then Some flat
      else begin
        Obs.incr t.m_static_screened;
        None
      end
  | Run_spec.Score ->
      (* never skip a round: redraw a few times looking for a program with
         transmitter sites, falling back to the last draw *)
      let max_draws = 4 in
      let rec draw k =
        let flat = gen () in
        if k >= max_draws || static_leaky t flat then flat
        else begin
          Obs.incr t.m_static_rescored;
          draw (k + 1)
        end
      in
      Some (draw 1)

let gen_fresh t () =
  Stats.time t.stats Stats.Test_generation (fun () ->
      Generator.generate_flat ~cfg:t.cfg.generator t.rng)

(* One blind-random round (the classic [Random] strategy). *)
let random_round t : round_result =
  match generate_filtered t (gen_fresh t) with
  | Some flat -> test_program t flat
  | None -> Screened

(* One guided round: the corpus scheduler decides generate-vs-mutate, the
   mutation engine produces a lint-valid mutant (falling back to fresh
   generation when it can't), and after simulation the coverage feedback
   decides corpus admission.  All corpus state changes happen at round
   granularity, after [test_program] returns, so campaign checkpoints
   (taken at round boundaries) always capture a consistent corpus. *)
let guided_round t c : round_result =
  let open Amulet_corpus in
  let params = Corpus.params c in
  let parent, flat =
    match Corpus.next c t.rng with
    | Corpus.Fresh ->
        Obs.incr t.m_corpus_fresh;
        (None, gen_fresh t ())
    | Corpus.Mutate e -> (
        match
          Stats.time t.stats Stats.Test_generation (fun () ->
              Mutate.mutate ~cfg:t.cfg.generator
                ~energy:params.Corpus.energy t.rng e.Corpus.program)
        with
        | Some (m, _ops) ->
            Obs.incr t.m_corpus_mutants;
            (Some e, m)
        | None ->
            (* no applicable operator produced a valid mutant *)
            Obs.incr t.m_corpus_fresh;
            (None, gen_fresh t ()))
  in
  (* static pre-filter: [Screen] skips provably leak-free candidates
     before simulation; [Score] feeds the transmitter count in as
     mutation energy (corpus admission bonus) instead of redrawing *)
  let screened, bonus =
    match t.cfg.static_filter with
    | Run_spec.Off -> (false, 0)
    | Run_spec.Screen ->
        if static_leaky t flat then (false, 0)
        else begin
          Obs.incr t.m_static_screened;
          (true, 0)
        end
    | Run_spec.Score ->
        (false, Amulet_static.Leakcheck.score (static_report t flat))
  in
  t.last_feedback <- None;
  let result = if screened then Screened else test_program t flat in
  (match result with
  | No_violation _ | Found _ ->
      let novel =
        match t.last_feedback with
        | Some fb -> Corpus.observe c fb
        | None -> 0
      in
      if novel > 0 then Obs.add t.m_corpus_novel novel;
      let violation = match result with Found _ -> true | _ -> false in
      Corpus.record c ?parent ~program:flat ~novel ~violation ~bonus ()
  | Discarded _ | Screened -> ());
  Corpus.tick c;
  Obs.set_gauge t.m_corpus_seeds (float_of_int (Corpus.size c));
  Obs.set_gauge t.m_corpus_coverage
    (float_of_int (Coverage.size (Corpus.coverage c)));
  result

(** Run one fuzzing round: produce a test program per the spec's generation
    strategy ([Random]: fresh draw; [Guided]: scheduler-driven generate-or-
    mutate with coverage-feedback corpus admission) and fuzz it.  With
    [static_filter = Screen] a provably leak-free program ends the round
    immediately as {!Screened}. *)
let round t : round_result =
  let body () =
    match t.corpus with
    | Some c -> guided_round t c
    | None -> random_round t
  in
  if t.cfg.isolate_rounds then
    try body () with
    | Budget as e -> raise e
    | exn ->
        (* no program to quarantine: generation/mutation itself misbehaved
           (test_program contains its own failures) *)
        let fault = Fault.of_exn exn in
        Stats.count_fault t.stats fault;
        Discarded fault
  else body ()
