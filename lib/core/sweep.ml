(** Sharded multi-defense sweep on a work-stealing domain scheduler.

    Determinism contract: a shard's entire behaviour is fixed by its
    [Run_spec.t] (seed included) at job-construction time; which domain
    runs it, and in what order, only affects wall-clock fields.  Engine
    reuse across jobs is safe because [Executor.start_program] re-pristines
    the simulator per program (the PR-2 pooled-engine property), and the
    campaign's stats accounting is delta-based. *)

open Amulet_defenses
module Obs = Amulet_obs.Obs

type job = { id : int; shard : int; spec : Run_spec.t }

(* ------------------------------------------------------------------ *)
(* Job construction                                                    *)
(* ------------------------------------------------------------------ *)

(* Case-insensitive glob: '*' matches any substring, everything else is
   literal. *)
let glob_match pat name =
  let pat = String.lowercase_ascii pat and name = String.lowercase_ascii name in
  let np = String.length pat and nn = String.length name in
  let rec go p n =
    if p = np then n = nn
    else
      match pat.[p] with
      | '*' -> go (p + 1) n || (n < nn && go p (n + 1))
      | c -> n < nn && name.[n] = c && go (p + 1) (n + 1)
  in
  go 0 0

let select patterns =
  match patterns with
  | [] -> Ok Defense.all
  | _ -> (
      let unmatched =
        List.find_opt
          (fun p ->
            not
              (List.exists
                 (fun (d : Defense.t) -> glob_match p d.Defense.name)
                 Defense.all))
          patterns
      in
      match unmatched with
      | Some p -> Error (Printf.sprintf "no defense preset matches %S" p)
      | None ->
          Ok
            (List.filter
               (fun (d : Defense.t) ->
                 List.exists (fun p -> glob_match p d.Defense.name) patterns)
               Defense.all))

(* The shard seed depends only on (sweep seed, preset index, shard index):
   the same derivation style as Campaign.round_seed / run_parallel, and
   never on which domain picks the job up. *)
let shard_seed ~seed pi shard = seed + ((pi + 1) * 2654435761) + (shard * 7919)

let jobs ?(presets = Defense.all) ?(shards_per_preset = 1) ?(rounds = 20)
    ?(seed = 42) ?make_spec () =
  let make_spec =
    match make_spec with
    | Some f -> f
    | None -> fun d -> Run_spec.make ~defense:d ()
  in
  let id = ref (-1) in
  List.concat
    (List.mapi
       (fun pi d ->
         List.init shards_per_preset (fun s ->
             incr id;
             let spec =
               {
                 (make_spec d) with
                 Run_spec.rounds;
                 seed = shard_seed ~seed pi s;
               }
             in
             { id = !id; shard = s; spec }))
       presets)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type outcome = Completed of Campaign.result | Crashed of Fault.exn_info
type shard = { job : job; outcome : outcome; wall_s : float }

type row = {
  defense : Defense.t;
  contract_name : string;
  shards : int;
  crashed_shards : int;
  rounds : int;
  discarded : int;
  test_cases : int;
  violations : Violation.t list;
  violation_classes : (Analysis.leak_class * int) list;
  fault_counts : (Fault.cls * int) list;
  quarantined : int;
  wall_s : float;
  inputs_per_sec : float;
  time_to_first_leak : float option;
  budget_exhausted : bool;
}

type report = {
  rows : row list;
  shards : shard list;
  domains : int;
  jobs : int;
  crashed : int;
  wall_s : float;
  test_cases : int;
  metrics : Obs.Snapshot.t;
}

(* One warmed engine per distinct defense config, private to one domain or
   one worker process.  Shared by the in-process scheduler below and by the
   distributed {!Worker}, so both paths pay simulator boots identically. *)
module Engine_cache = struct
  (* The key is pure data (Config.t is ints/bools/variants), so structural
     hashing is sound. *)
  type key = {
    k_defense : string;
    k_mode : Executor.mode;
    k_kind : Engine.kind;
    k_format : Utrace.format;
    k_boot : int;
    k_sim : Amulet_uarch.Config.t option;
  }

  type t = (key, Engine.t * Stats.t) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let get (cache : t) ~metrics (spec : Run_spec.t) =
    (* chaos arms at executor creation, so chaos shards must not share a
       cached engine *)
    if spec.Run_spec.chaos <> None then None
    else begin
      let key =
        {
          k_defense = spec.Run_spec.defense.Defense.name;
          k_mode = spec.Run_spec.mode;
          k_kind = spec.Run_spec.engine;
          k_format = spec.Run_spec.trace_format;
          k_boot = spec.Run_spec.boot_insts;
          k_sim = spec.Run_spec.sim_config;
        }
      in
      match Hashtbl.find_opt cache key with
      | Some es -> Some es
      | None ->
          let stats = Stats.create ~metrics () in
          let e =
            Engine.create ~boot_insts:spec.Run_spec.boot_insts
              ~format:spec.Run_spec.trace_format
              ?sim_config:spec.Run_spec.sim_config ~kind:spec.Run_spec.engine
              ~mode:spec.Run_spec.mode spec.Run_spec.defense stats
          in
          Engine.warm e;
          Hashtbl.replace cache key (e, stats);
          Some (e, stats)
    end
end

let locked lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception exn ->
      Mutex.unlock lock;
      raise exn

let run ?(domains = 1) ?(metrics = Obs.noop) ?journal_dir
    ?(checkpoint_every = 10) js : report =
  (* merge position is list order, whatever ids the caller set *)
  let js = List.mapi (fun i j -> { j with id = i }) js in
  let n = List.length js in
  let domains = max 1 (min domains (max 1 n)) in
  let started = Obs.Clock.now_s () in
  let telemetry = Obs.is_enabled metrics in
  (* round-robin initial distribution in job order *)
  let queues = Array.make domains [] in
  List.iteri (fun i j -> queues.(i mod domains) <- j :: queues.(i mod domains)) js;
  Array.iteri (fun d q -> queues.(d) <- List.rev q) queues;
  let lock = Mutex.create () in
  let results = Array.make (max 1 n) None in
  let next_job d =
    locked lock (fun () ->
        match queues.(d) with
        | j :: rest ->
            queues.(d) <- rest;
            Some j
        | [] -> (
            (* steal the tail of the longest other queue: owners pop from
               the front, thieves from the back *)
            let victim = ref (-1) and best = ref 0 in
            Array.iteri
              (fun i q ->
                let l = List.length q in
                if i <> d && l > !best then begin
                  victim := i;
                  best := l
                end)
              queues;
            if !victim < 0 then None
            else
              let rec split acc = function
                | [ last ] -> (List.rev acc, last)
                | x :: rest -> split (x :: acc) rest
                | [] -> assert false
              in
              let front, last = split [] queues.(!victim) in
              queues.(!victim) <- front;
              Some last))
  in
  let run_shard dm cache (job : job) =
    let spec = job.spec in
    let t0 = Obs.Clock.now_s () in
    let journal_path =
      Option.map
        (fun dir ->
          Filename.concat dir
            (Printf.sprintf "shard_%03d_%s.json" job.id
               spec.Run_spec.defense.Defense.name))
        journal_dir
    in
    let engine = Engine_cache.get cache ~metrics:dm spec in
    let outcome =
      try Completed (Campaign.run ?journal_path ~checkpoint_every ~metrics:dm ?engine spec)
      with exn -> Crashed (Fault.exn_info exn)
    in
    { job; outcome; wall_s = Obs.Clock.elapsed_s ~since:t0 }
  in
  let worker d () =
    let dm = if telemetry then Obs.create () else Obs.noop in
    let cache = Engine_cache.create () in
    let rec loop () =
      match next_job d with
      | None -> ()
      | Some job ->
          results.(job.id) <- Some (run_shard dm cache job);
          loop ()
    in
    loop ();
    Obs.Snapshot.of_registry dm
  in
  let snapshots =
    if domains = 1 then [ worker 0 () ]
    else
      List.init domains (fun d -> Domain.spawn (fun () -> worker d ()))
      |> List.map (fun d ->
             (* a domain dying outside shard isolation must not take the
                sweep down; its unfinished shards surface as Crashed below *)
             try Domain.join d with _ -> Obs.Snapshot.empty)
  in
  let shards =
    List.map
      (fun (job : job) ->
        match results.(job.id) with
        | Some s -> s
        | None ->
            {
              job;
              outcome = Crashed (Fault.exn_info (Failure "worker domain died"));
              wall_s = 0.;
            })
      js
  in
  (* ---------------- deterministic merge, in job order ---------------- *)
  let row_of (defense : Defense.t) group =
    let completed =
      List.filter_map
        (fun s -> match s.outcome with Completed r -> Some r | Crashed _ -> None)
        group
    in
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 completed in
    let sumf f = List.fold_left (fun acc r -> acc +. f r) 0. completed in
    let wall_s = List.fold_left (fun acc (s : shard) -> acc +. s.wall_s) 0. group in
    let test_cases = sum (fun r -> r.Campaign.test_cases) in
    let merged_classes =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun r ->
          List.iter
            (fun (c, k) ->
              Hashtbl.replace tbl c
                (k + Option.value (Hashtbl.find_opt tbl c) ~default:0))
            r.Campaign.violation_classes)
        completed;
      Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl []
    in
    let fault_counts =
      let c = Fault.Counters.create () in
      List.iter (fun r -> Fault.Counters.add_list c r.Campaign.fault_counts) completed;
      List.iter
        (fun s ->
          match s.outcome with
          | Crashed info -> Fault.Counters.record c (Fault.Instance_crash info)
          | Completed _ -> ())
        group;
      Fault.Counters.to_list c
    in
    let time_to_first_leak =
      List.fold_left
        (fun acc r ->
          match r.Campaign.detection_times with
          | first :: _ -> (
              match acc with
              | None -> Some first
              | Some t -> Some (Float.min t first))
          | [] -> acc)
        None completed
    in
    {
      defense;
      contract_name =
        (match completed with
        | r :: _ -> r.Campaign.contract_name
        | [] -> (
            match group with
            | s :: _ -> Run_spec.contract_name s.job.spec
            | [] -> ""));
      shards = List.length group;
      crashed_shards = List.length group - List.length completed;
      rounds = sum (fun r -> r.Campaign.programs_run);
      discarded = sum (fun r -> r.Campaign.discarded_programs);
      test_cases;
      violations = List.concat_map (fun r -> r.Campaign.violations) completed;
      violation_classes = merged_classes;
      fault_counts;
      quarantined = sum (fun r -> r.Campaign.quarantined);
      wall_s;
      inputs_per_sec =
        (let compute = sumf (fun r -> r.Campaign.duration) in
         if compute > 0. then float_of_int test_cases /. compute else 0.);
      time_to_first_leak;
      budget_exhausted = List.exists (fun r -> r.Campaign.budget_exhausted) completed;
    }
  in
  let rows =
    (* group shards by preset, preserving first-appearance order *)
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let name = s.job.spec.Run_spec.defense.Defense.name in
        if not (Hashtbl.mem tbl name) then begin
          order := name :: !order;
          Hashtbl.replace tbl name (s.job.spec.Run_spec.defense, ref [])
        end;
        let _, group = Hashtbl.find tbl name in
        group := s :: !group)
      shards;
    List.rev_map
      (fun name ->
        let defense, group = Hashtbl.find tbl name in
        row_of defense (List.rev !group))
      !order
  in
  let crashed =
    List.length
      (List.filter (fun s -> match s.outcome with Crashed _ -> true | _ -> false) shards)
  in
  {
    rows;
    shards;
    domains;
    jobs = n;
    crashed;
    wall_s = Obs.Clock.elapsed_s ~since:started;
    test_cases = List.fold_left (fun acc (r : row) -> acc + r.test_cases) 0 rows;
    metrics =
      List.fold_left (fun acc s -> Obs.Snapshot.merge acc s) Obs.Snapshot.empty
        snapshots;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(* Only scheduling-independent content: seeds fix the violations, so two
   runs of the same jobs must digest identically whatever the domain count,
   steal order, worker count or crash/reassignment history.  Wall-clock
   fields are deliberately absent.  The digest bytes live here, in one
   place, so the in-process scheduler and the distributed coordinator can
   never drift apart: both reduce their results to [Ident.row]s and call
   {!Ident.fingerprint}. *)
module Ident = struct
  type v = {
    ctrace_hash : int64;
    hash_a : int64;
    hash_b : int64;
    program_text : string;
    signature : string;
  }

  type row = {
    defense : string;
    contract : string;
    rounds : int;
    discarded : int;
    test_cases : int;
    violations : v list;
  }

  (* Identity uses the hashes captured at detection time, not a recompute
     from [trace_a]/[trace_b]: a journal-resumed violation's traces are
     re-executions under a fresh context, but its stored hashes are the
     originals — so resumed shards fingerprint identically. *)
  let of_violation (v : Violation.t) =
    {
      ctrace_hash = v.Violation.ctrace_hash;
      hash_a = v.Violation.trace_a_hash;
      hash_b = v.Violation.trace_b_hash;
      program_text = v.Violation.program_text;
      signature = Option.value v.Violation.signature ~default:"";
    }

  let fingerprint rows =
    let buf = Buffer.create 4096 in
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "%s|%s|%d|%d|%d|%d\n" r.defense r.contract r.rounds
             r.discarded r.test_cases
             (List.length r.violations));
        List.iter
          (fun v ->
            Buffer.add_string buf
              (Printf.sprintf "%Lx|%Lx|%Lx|%s\n" v.ctrace_hash v.hash_a
                 v.hash_b v.program_text))
          r.violations)
      rows;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  (* Dedup keys are deliberately NOT part of the fingerprint bytes above:
     classification on/off must not move the determinism gate. *)
  let dedup_key v =
    if v.signature <> "" then "s:" ^ v.signature
    else Printf.sprintf "h:%Lx%Lx%Lx" v.ctrace_hash v.hash_a v.hash_b

  let distinct vs =
    let tbl = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace tbl (dedup_key v) ()) vs;
    Hashtbl.length tbl
end

let ident_rows report =
  List.map
    (fun r ->
      {
        Ident.defense = r.defense.Defense.name;
        contract = r.contract_name;
        rounds = r.rounds;
        discarded = r.discarded;
        test_cases = r.test_cases;
        violations = List.map Ident.of_violation r.violations;
      })
    report.rows

let fingerprint report = Ident.fingerprint (ident_rows report)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json report =
  let buf = Buffer.create 4096 in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{";
  add "\"schema\":\"amulet.sweep/1\",";
  add "\"domains\":%d,\"jobs\":%d,\"crashed\":%d," report.domains report.jobs
    report.crashed;
  add "\"wall_s\":%.3f,\"test_cases\":%d," report.wall_s report.test_cases;
  add "\"fingerprint\":%s," (str (fingerprint report));
  add "\"rows\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",";
      add "{\"defense\":%s,\"contract\":%s," (str r.defense.Defense.name)
        (str r.contract_name);
      add "\"shards\":%d,\"crashed_shards\":%d," r.shards r.crashed_shards;
      add "\"rounds\":%d,\"discarded\":%d,\"test_cases\":%d," r.rounds
        r.discarded r.test_cases;
      add "\"violations\":%d," (List.length r.violations);
      add "\"distinct_signatures\":%d,"
        (Ident.distinct (List.map Ident.of_violation r.violations));
      add "\"violation_classes\":{";
      List.iteri
        (fun j (c, k) ->
          if j > 0 then add ",";
          add "%s:%d" (str (Analysis.class_name c)) k)
        r.violation_classes;
      add "},\"faults\":{";
      List.iteri
        (fun j (c, k) ->
          if j > 0 then add ",";
          add "%s:%d" (str (Fault.class_name c)) k)
        r.fault_counts;
      add "},\"quarantined\":%d," r.quarantined;
      add "\"wall_s\":%.3f,\"inputs_per_sec\":%.1f," r.wall_s r.inputs_per_sec;
      (match r.time_to_first_leak with
      | Some t -> add "\"time_to_first_leak\":%.4f," t
      | None -> add "\"time_to_first_leak\":null,");
      add "\"budget_exhausted\":%b}" r.budget_exhausted)
    report.rows;
  add "],";
  add "\"metrics\":%s" (Obs.Snapshot.to_json report.metrics);
  add "}";
  Buffer.contents buf

let pp fmt report =
  Format.fprintf fmt
    "sweep: %d jobs on %d domain(s), %d crashed, %.1f s, %d test cases@."
    report.jobs report.domains report.crashed report.wall_s report.test_cases;
  Format.fprintf fmt "  %-22s %-9s %6s %6s %8s %6s %9s %8s@." "defense"
    "contract" "shards" "rounds" "tc" "viol" "tc/s" "ttfl";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-22s %-9s %3d%s %6d %8d %6d %9.0f %8s%s@."
        r.defense.Defense.name r.contract_name r.shards
        (if r.crashed_shards > 0 then Printf.sprintf "(%d!)" r.crashed_shards
         else "   ")
        r.rounds r.test_cases
        (List.length r.violations)
        r.inputs_per_sec
        (match r.time_to_first_leak with
        | Some t -> Printf.sprintf "%.2fs" t
        | None -> "-")
        (if r.budget_exhausted then "  [budget]" else ""))
    report.rows
