(** The executor: runs test cases on the simulator implementing the
    countermeasure under test and extracts microarchitectural traces.

    Two orthogonal axes:

    {b Mode} mirrors the paper's §3.2 (C3) and fixes the {e testing
    semantics}:
    - [Naive] starts {e every input} from pristine post-boot state (clean
      caches, reset predictors);
    - [Opt] reuses one simulator per {e program}, overwrites registers and
      memory in place between inputs, and primes the L1D before each input
      (filling every set with out-of-sandbox lines, or flushing, per the
      defense's harness style).  Predictor state persists across inputs,
      which widens prediction variety but requires violation validation
      (see {!Fuzzer}).

    {b Backend} fixes the {e implementation strategy} for reaching that
    state and is trace-invisible:
    - [Rebuild] reconstructs the simulator (paying the full startup cost,
      including the synthetic warm boot) whenever pristine state is needed;
    - [Pool] builds the simulator once, checkpoints the post-boot state
      with {!Simulator.snapshot}, and rewinds with {!Simulator.restore} —
      the pooled engine's warm-state reuse, byte-identical to [Rebuild]
      because the checkpoint captures exactly what a fresh boot produces. *)

open Amulet_uarch
open Amulet_defenses
open Amulet_obs

type mode = Naive | Opt

let mode_name = function Naive -> "naive" | Opt -> "opt"

type backend = Rebuild | Pool

let backend_name = function Rebuild -> "rebuild" | Pool -> "pool"

type t = {
  defense : Defense.t;
  sim_config : Config.t;
  mode : mode;
  backend : backend;
  format : Utrace.format;
  stats : Stats.t;
  boot_insts : int;
  chaos : Fault.chaos option;
  mutable sim : Simulator.t option;
  mutable boot_snapshot : Simulator.snapshot option;
  mutable sims_created : int;
  mutable restores : int;
  mutable decode_base : int;
      (* decodes performed by simulators already discarded, so {!decodes}
         stays monotonic across [Rebuild] replacements *)
  (* engine metrics, resolved once against the stats registry *)
  m_rebuilds : Obs.counter;
  m_restores : Obs.counter;
  m_rebuild_time : Obs.timer;
  m_restore_time : Obs.timer;
  m_reuse_depth : Obs.gauge;
      (* inputs served by the current pooled boot state *)
}

type outcome = {
  trace : Utrace.t;
  context : Simulator.context;  (** predictor state before the run *)
  run_fault : Fault.t option;
  cycles : int;
  sim_stats : Simulator.run_stats;
      (** per-run pipeline totals (squashes, speculative issues,
          mispredicts): deterministic feedback for guided generation *)
  events : Event.t list;  (** debug log of the run; [[]] unless [?log] *)
}

let create ?(boot_insts = Simulator.default_boot_insts) ?(format = Utrace.L1d_tlb)
    ?sim_config ?chaos ?(backend = Pool) ~mode (defense : Defense.t)
    (stats : Stats.t) =
  let sim_config =
    match sim_config with Some c -> c | None -> Defense.config defense
  in
  let chaos = Option.map Fault.arm chaos in
  let metrics = Stats.registry stats in
  {
    defense;
    sim_config;
    mode;
    backend;
    format;
    stats;
    boot_insts;
    chaos;
    sim = None;
    boot_snapshot = None;
    sims_created = 0;
    restores = 0;
    decode_base = 0;
    m_rebuilds = Obs.counter metrics "engine.sim.rebuilds";
    m_restores = Obs.counter metrics "engine.sim.restores";
    m_rebuild_time = Obs.timer metrics "engine.time.rebuild";
    m_restore_time = Obs.timer metrics "engine.time.restore";
    m_reuse_depth = Obs.gauge metrics "engine.pool.reuse_depth";
  }

let mode t = t.mode
let backend t = t.backend
let sims_created t = t.sims_created
let restores t = t.restores

let decodes t =
  t.decode_base
  + match t.sim with Some s -> Simulator.decodes s | None -> 0

(* Bank the decode count of the simulator about to be replaced/dropped. *)
let retire_sim t =
  match t.sim with
  | Some s ->
      t.decode_base <- t.decode_base + Simulator.decodes s;
      t.sim <- None
  | None -> ()

let fresh_simulator t =
  retire_sim t;
  t.sims_created <- t.sims_created + 1;
  Obs.incr t.m_rebuilds;
  Stats.time t.stats Stats.Sim_startup (fun () ->
      Obs.time t.m_rebuild_time (fun () ->
          Simulator.create ~metrics:(Stats.registry t.stats)
            ~boot_insts:t.boot_insts ~pages:t.defense.Defense.sandbox_pages
            t.sim_config))

(* Rewind the pool simulator to its post-boot checkpoint (building it, and
   the checkpoint, on first use).  Equivalent to [fresh_simulator] without
   re-running the boot workload. *)
let pooled_sim t =
  match t.sim, t.boot_snapshot with
  | Some sim, Some snap ->
      Stats.time t.stats Stats.Sim_startup (fun () ->
          Obs.time t.m_restore_time (fun () -> Simulator.restore sim snap));
      t.restores <- t.restores + 1;
      Obs.incr t.m_restores;
      Obs.set_gauge t.m_reuse_depth (float_of_int t.restores);
      sim
  | _ ->
      let sim = fresh_simulator t in
      t.sim <- Some sim;
      t.boot_snapshot <- Some (Simulator.snapshot sim);
      sim

(** Begin a new test program.  This is where [Opt] mode pays for pristine
    state: a simulator rebuild ([Rebuild]) or a checkpoint rewind ([Pool]).
    [Naive] mode re-pristines per input instead. *)
let start_program t =
  match t.mode, t.backend with
  | Opt, Rebuild -> t.sim <- Some (fresh_simulator t)
  | Opt, Pool -> ignore (pooled_sim t)
  | Naive, Rebuild -> retire_sim t
  | Naive, Pool -> ()

(* Current simulator without rewinding it (context reruns restore their own
   microarchitectural state, so pristine boot state is not needed). *)
let get_sim t =
  match t.sim with
  | Some s -> s
  | None -> (
      match t.backend with
      | Pool -> pooled_sim t
      | Rebuild ->
          let s = fresh_simulator t in
          t.sim <- Some s;
          s)

(** Pre-build the pooled simulator and its checkpoint so the first test case
    doesn't pay the boot cost ([Rebuild]: no-op). *)
let warm t = match t.backend with Pool -> ignore (get_sim t) | Rebuild -> ()

let extract_trace t sim =
  Stats.time t.stats Stats.Utrace_extraction (fun () ->
      match t.format with
      | Utrace.L1d_tlb ->
          Utrace.State_snapshot
            {
              l1d = Simulator.l1d_tags sim;
              tlb = Simulator.tlb_pages sim;
              l1i =
                (if t.defense.Defense.include_l1i then Some (Simulator.l1i_tags sim)
                 else None);
            }
      | Utrace.Bp_state -> Utrace.Predictor_snapshot (Simulator.bp_state sim)
      | Utrace.Mem_order -> Utrace.Access_order (Simulator.access_order sim)
      | Utrace.Bp_order ->
          Utrace.Prediction_order (Simulator.branch_prediction_order sim)
      | Utrace.Pc_order -> Utrace.Pc_sequence (Simulator.execution_order sim))

let prime t sim =
  Stats.time t.stats Stats.Sim_simulate (fun () ->
      match t.defense.Defense.priming with
      | Defense.Fill_sets -> ignore (Simulator.prime_with_fills sim)
      | Defense.Flush -> Simulator.prime_with_flush sim)

(* The chaos hook (robustness self-tests): one draw per test case may raise
   an injected crash or substitute an injected fault for the real outcome. *)
let chaos_fault t =
  match t.chaos with
  | None -> None
  | Some chaos -> (
      match Fault.sample chaos with
      | `None -> None
      | `Crash -> raise (Fault.Injected_crash "chaos: executor crash")
      | `Timeout ->
          Some (Fault.Deadline_exceeded { elapsed_ms = 0.; deadline_ms = 0. })
      | `Sim_fault -> Some (Fault.Injected "chaos: simulator fault"))

(* Run one input on [sim] (which has been primed) and extract its trace. *)
let run_loaded t sim flat (input : Input.t) =
  Simulator.load_state sim (Input.to_state input);
  Simulator.clear_access_order sim;
  let context = Simulator.snapshot_context sim in
  let stats_run =
    Stats.time t.stats Stats.Sim_simulate (fun () -> Simulator.run sim flat)
  in
  Stats.count_test_case t.stats;
  let trace = extract_trace t sim in
  let run_fault =
    match chaos_fault t with
    | Some _ as injected -> injected
    | None -> Option.map Fault.of_run_fault stats_run.Simulator.fault
  in
  {
    trace;
    context;
    run_fault;
    cycles = stats_run.cycles;
    sim_stats = stats_run;
    events = [];
  }

(* As [run_loaded], with the debug event log enabled for the run. *)
let run_logged t sim flat input =
  let log = Simulator.log sim in
  Event.clear log;
  Event.set_enabled log true;
  let outcome = run_loaded t sim flat input in
  Event.set_enabled log false;
  let events = Event.events log in
  Event.clear log;
  { outcome with events }

(** Execute one test case (program, input) and produce its trace.

    Without [?context]: a fresh run under the executor's mode ([Naive]
    rewinds/rebuilds to pristine state and flushes; [Opt] reuses the
    program's simulator and primes).

    With [?context]: a validation rerun (§3.2) from an exactly reproduced
    microarchitectural starting context (predictors, caches, TLB as
    snapshotted just before some earlier run), so any remaining trace
    difference between two inputs is caused by the inputs alone.

    [?log] enables the debug event log for this run and fills
    [outcome.events] (root-cause analysis path). *)
let run t ?context ?(log = false) flat (input : Input.t) =
  let runner = if log then run_logged else run_loaded in
  match context with
  | Some ctx ->
      let sim = get_sim t in
      if not log then Stats.count_validation t.stats;
      Simulator.restore_context sim ctx;
      runner t sim flat input
  | None -> (
      match t.mode with
      | Naive ->
          (* pristine post-boot state per input; clean caches; no fills *)
          let sim =
            match t.backend with
            | Pool -> pooled_sim t
            | Rebuild ->
                let sim = fresh_simulator t in
                t.sim <- Some sim;
                sim
          in
          Simulator.prime_with_flush sim;
          runner t sim flat input
      | Opt ->
          let sim = get_sim t in
          prime t sim;
          runner t sim flat input)
