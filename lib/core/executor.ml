(** The executor: runs test cases on the simulator implementing the
    countermeasure under test and extracts microarchitectural traces.

    Two modes, mirroring the paper's §3.2 (C3):
    - [Naive] builds a fresh simulator — paying the full startup cost,
      including the synthetic warm boot — for {e every input}, and starts
      from a clean cache;
    - [Opt] builds one simulator per {e program}, overwrites registers and
      memory in place between inputs, and primes the L1D before each input
      (filling every set with out-of-sandbox lines, or flushing, per the
      defense's harness style).  Predictor state persists across inputs,
      which widens prediction variety but requires violation validation
      (see {!Fuzzer}). *)

open Amulet_uarch
open Amulet_defenses

type mode = Naive | Opt

let mode_name = function Naive -> "naive" | Opt -> "opt"

type t = {
  defense : Defense.t;
  sim_config : Config.t;
  mode : mode;
  format : Utrace.format;
  stats : Stats.t;
  boot_insts : int;
  chaos : Fault.chaos option;
  mutable sim : Simulator.t option;
}

type outcome = {
  trace : Utrace.t;
  context : Simulator.context;  (** predictor state before the run *)
  run_fault : Fault.t option;
  cycles : int;
}

let create ?(boot_insts = Simulator.default_boot_insts) ?(format = Utrace.L1d_tlb)
    ?sim_config ?chaos ~mode (defense : Defense.t) (stats : Stats.t) =
  let sim_config =
    match sim_config with Some c -> c | None -> Defense.config defense
  in
  let chaos = Option.map Fault.arm chaos in
  { defense; sim_config; mode; format; stats; boot_insts; chaos; sim = None }

let fresh_simulator t =
  Stats.time t.stats Stats.Sim_startup (fun () ->
      Simulator.create ~boot_insts:t.boot_insts
        ~pages:t.defense.Defense.sandbox_pages t.sim_config)

(** Begin a new test program.  In [Opt] mode this is the only point that
    pays the simulator startup cost. *)
let start_program t =
  match t.mode with
  | Opt -> t.sim <- Some (fresh_simulator t)
  | Naive -> t.sim <- None

let get_sim t =
  match t.sim with
  | Some s -> s
  | None ->
      let s = fresh_simulator t in
      t.sim <- Some s;
      s

let extract_trace t sim =
  Stats.time t.stats Stats.Utrace_extraction (fun () ->
      match t.format with
      | Utrace.L1d_tlb ->
          Utrace.State_snapshot
            {
              l1d = Simulator.l1d_tags sim;
              tlb = Simulator.tlb_pages sim;
              l1i =
                (if t.defense.Defense.include_l1i then Some (Simulator.l1i_tags sim)
                 else None);
            }
      | Utrace.Bp_state -> Utrace.Predictor_snapshot (Simulator.bp_state sim)
      | Utrace.Mem_order -> Utrace.Access_order (Simulator.access_order sim)
      | Utrace.Bp_order ->
          Utrace.Prediction_order (Simulator.branch_prediction_order sim)
      | Utrace.Pc_order -> Utrace.Pc_sequence (Simulator.execution_order sim))

let prime t sim =
  Stats.time t.stats Stats.Sim_simulate (fun () ->
      match t.defense.Defense.priming with
      | Defense.Fill_sets -> ignore (Simulator.prime_with_fills sim)
      | Defense.Flush -> Simulator.prime_with_flush sim)

(* The chaos hook (robustness self-tests): one draw per test case may raise
   an injected crash or substitute an injected fault for the real outcome. *)
let chaos_fault t =
  match t.chaos with
  | None -> None
  | Some chaos -> (
      match Fault.sample chaos with
      | `None -> None
      | `Crash -> raise (Fault.Injected_crash "chaos: executor crash")
      | `Timeout ->
          Some (Fault.Deadline_exceeded { elapsed_ms = 0.; deadline_ms = 0. })
      | `Sim_fault -> Some (Fault.Injected "chaos: simulator fault"))

(* Run one input on [sim] (which has been primed) and extract its trace. *)
let run_loaded t sim flat (input : Input.t) =
  Simulator.load_state sim (Input.to_state input);
  Simulator.clear_access_order sim;
  let context = Simulator.snapshot_context sim in
  let stats_run =
    Stats.time t.stats Stats.Sim_simulate (fun () -> Simulator.run sim flat)
  in
  Stats.count_test_case t.stats;
  let trace = extract_trace t sim in
  let run_fault =
    match chaos_fault t with
    | Some _ as injected -> injected
    | None -> Option.map Fault.of_run_fault stats_run.Simulator.fault
  in
  { trace; context; run_fault; cycles = stats_run.cycles }

(** Execute one test case (program, input) and produce its trace. *)
let run_input t flat (input : Input.t) =
  match t.mode with
  | Naive ->
      (* fresh simulator per input; clean caches; no fill priming *)
      let sim = fresh_simulator t in
      t.sim <- Some sim;
      Simulator.prime_with_flush sim;
      run_loaded t sim flat input
  | Opt ->
      let sim = get_sim t in
      prime t sim;
      run_loaded t sim flat input

(** Validation rerun (§3.2): execute [input] from an exactly reproduced
    microarchitectural starting context (predictors, caches, TLB as
    snapshotted just before some earlier run) so any remaining trace
    difference between two inputs is caused by the inputs alone. *)
let run_input_with_context t flat (input : Input.t) (context : Simulator.context) =
  let sim = get_sim t in
  Stats.count_validation t.stats;
  Simulator.restore_context sim context;
  (run_loaded t sim flat input).trace

(** Re-run an input with debug logging enabled and return the event log
    (root-cause analysis path). *)
let run_input_logged t flat (input : Input.t) (context : Simulator.context) =
  let sim = get_sim t in
  Simulator.restore_context sim context;
  let log = Simulator.log sim in
  Event.clear log;
  Event.set_enabled log true;
  let outcome = run_loaded t sim flat input in
  Event.set_enabled log false;
  let events = Event.events log in
  Event.clear log;
  outcome, events
