(** Crafted reproducer programs for the paper's example violations
    (Figures 4, 6, 8, 9 and the CleanupSpec tables).

    Each program follows the same recipe as the violating tests AMuLeT
    found: a conditional branch whose flags depend on a cold load (giving a
    long speculation window), a transient gadget behind it, and enough
    trailing architectural work that speculative side effects land in the
    final cache state before the test ends. *)

open Amulet_isa

type t = {
  name : string;
  description : string;
  asm : string;
  defense : Amulet_defenses.Defense.t;  (** defense that exhibits the leak *)
  expected_class : Analysis.leak_class;
}

(* A cold-flag branch guarding an input-addressed transient load: the basic
   Spectre-v1 shape used by Figures 4 and 8 (the defenses differ). *)
let spectre_v1_gadget = {|
.bb0:
  AND RDI, 0b111111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b111111111000000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  EXIT
|}

(** Figure 4: InvisiSpec UV1 — the transient load's L1 replacement evicts a
    primed line whose tag encodes the speculative address. *)
let figure4 =
  {
    name = "figure4-uv1";
    description =
      "InvisiSpec speculative-eviction bug: a transient load on a full set \
       triggers an L1 replacement, leaking its address via the evicted tag";
    asm = spectre_v1_gadget;
    defense = Amulet_defenses.Defense.invisispec;
    expected_class = Analysis.Spec_eviction_uv1;
  }

(** Figure 6: InvisiSpec UV2 — a transient miss occupies one of very few
    MSHRs; whether it hits L2 decides if a later expose completes before the
    test ends.  Requires the amplified (2-MSHR) configuration. *)
let figure6 =
  {
    name = "figure6-uv2";
    description =
      "InvisiSpec same-core speculative interference: MSHR contention from a \
       transient miss delays an older load's expose past test end";
    asm = {|
.bb0:
  AND RSI, 0b111111111000000
  CMP RAX, qword ptr [R14 + RSI]
  AND RDI, 0b111111111000000
  MOV RDX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b111111111000000
  MOV RCX, qword ptr [R14 + RBX]
  AND RCX, 0b111111111000000
  MOV R8, qword ptr [R14 + RCX]
.done:
  AND R9, 0b111111111000000
  MOV R10, qword ptr [R14 + R9]
  EXIT
|};
    defense = Amulet_defenses.Defense.invisispec_patched;
    expected_class = Analysis.Mshr_interference_uv2;
  }

(** SpecLFB UV6 (Figure 8): a single speculative load is treated as safe
    because it is the first speculative load in the LSQ, so it installs into
    the cache and leaks like plain Spectre-v1. *)
let figure8 =
  {
    name = "figure8-uv6";
    description =
      "SpecLFB first-speculative-load optimization: a lone transient load is \
       marked safe and installs into L1";
    asm = spectre_v1_gadget;
    defense = Amulet_defenses.Defense.speclfb;
    expected_class = Analysis.First_load_unprotected_uv6;
  }

(** STT KV3 (Figure 9): a tainted transient load feeds a store address; the
    store executes and installs its page into the D-TLB. *)
let figure9 =
  {
    name = "figure9-kv3";
    description =
      "STT tainted speculative store: address translation installs a \
       secret-dependent D-TLB entry";
    asm = {|
.bb0:
  AND RDI, 0b1111111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RCX, 0b1111111111111111
  MOV RBX, word ptr [R14 + RCX]
  AND RBX, 0b1111111111111111111
  MOV dword ptr [R14 + RBX], RDX
.done:
  EXIT
|};
    defense = Amulet_defenses.Defense.stt;
    expected_class = Analysis.Tainted_store_tlb_kv3;
  }

(** CleanupSpec UV3: a transient store installs a line; the missing
    write-callback metadata leaves it uncleaned after the squash. *)
let uv3 =
  {
    name = "uv3-store-not-cleaned";
    description = "CleanupSpec speculative store with no cleanup metadata";
    asm = {|
.bb0:
  AND RDI, 0b111111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b111111111000000
  MOV qword ptr [R14 + RBX], RCX
.done:
  AND RSI, 0b111111111000000
  MOV RDX, qword ptr [R14 + RSI]
  EXIT
|};
    defense = Amulet_defenses.Defense.cleanupspec;
    expected_class = Analysis.Store_not_cleaned_uv3;
  }

(** CleanupSpec UV4: a transient load crossing a cache-line boundary spawns
    a split request whose second half is never cleaned. *)
let uv4 =
  {
    name = "uv4-split-not-cleaned";
    description = "CleanupSpec line-crossing speculative load, second half uncleaned";
    asm = {|
.bb0:
  AND RDI, 0b111111111000000
  CMP RAX, qword ptr [R14 + RDI]
  JNZ .done
  AND RBX, 0b111111000000
  MOV RCX, qword ptr [R14 + RBX + 60]
.done:
  AND RSI, 0b111111111000000
  MOV RDX, qword ptr [R14 + RSI]
  EXIT
|};
    defense = Amulet_defenses.Defense.cleanupspec_patched;
    expected_class = Analysis.Split_not_cleaned_uv4;
  }

(** CleanupSpec UV5 ("too much cleaning", Table 9): an older non-speculative
    load with a late-arriving address hits a line installed by a younger
    transient load; the transient load's cleanup erases it. *)
let uv5 =
  {
    name = "uv5-too-much-cleaning";
    description =
      "CleanupSpec cleanup removes a line an older architectural load touched";
    asm = {|
.bb0:
  AND RSI, 0b111111111000000
  CMP RAX, qword ptr [R14 + RSI]
  AND RDI, 0b111111111000000
  MOV RDX, qword ptr [R14 + RDI]
  AND RDX, 0b111111111000000
  MOV R8, qword ptr [R14 + RDX]
  JNZ .done
  AND RBX, 0b111111111000000
  MOV RCX, qword ptr [R14 + RBX]
.done:
  EXIT
|};
    defense = Amulet_defenses.Defense.cleanupspec_patched;
    expected_class = Analysis.Too_much_cleaning_uv5;
  }

(** CleanupSpec KV2 (unXpec, Table 10): the number of cleanup operations —
    one for an aligned transient load, two when it crosses a line boundary —
    is input-dependent; cleanup occupies the cache controller, delaying a
    trailing architectural hit, so the test ends later and the front-end
    prefetches more L1I lines.  Visible only with the L1I in the trace and
    with the store/split bugs patched (otherwise those dominate). *)
let unxpec_kv2 =
  {
    name = "kv2-unxpec";
    description =
      "CleanupSpec cleanup-latency channel: input-dependent undo cost shifts \
       the test's end and the L1I prefetch depth";
    asm =
      (* The wrong-path block is padded past the ROB size so the front-end
         stalls before reaching Exit speculatively; only the post-squash
         refetch prefetches past the test's end, making the cleanup-latency
         difference visible in the L1I prefetch depth. *)
      (let filler = String.concat "" (List.init 70 (fun _ -> "  NOP\n")) in
       {|
.bb0:
  AND RSI, 0b111111000000
  CMP RAX, qword ptr [R14 + RSI]
  JNZ .done
  AND RBX, 0b111111111111
  MOV RCX, qword ptr [R14 + RBX]
|}
       ^ filler
       ^ {|
.done:
  MOV R10, qword ptr [R14 + RSI]
  EXIT
|});
    defense = Amulet_defenses.Defense.cleanupspec_unxpec;
    expected_class = Analysis.Unxpec_kv2;
  }

(** Spectre-v4 on the baseline: a load bypasses an older store with a
    late-resolving address, and a dependent load transmits the stale data. *)
let spectre_v4 =
  {
    name = "spectre-v4";
    description = "baseline store-bypass: stale data transmitted via a dependent load";
    asm = {|
.bb0:
  AND RDI, 0b111111111000000
  MOV RSI, qword ptr [R14 + RDI]
  AND RSI, 0b11111000000
  MOV qword ptr [R14 + RSI], 0
  MOV RBX, qword ptr [R14 + 128]
  AND RBX, 0b111111111000000
  MOV RCX, qword ptr [R14 + RBX]
  EXIT
|};
    defense = Amulet_defenses.Defense.baseline;
    expected_class = Analysis.Spectre_v4;
  }

let all =
  [ figure4; figure6; figure8; figure9; uv3; uv4; uv5; unxpec_kv2; spectre_v4 ]

let find name = List.find_opt (fun r -> r.name = name) all

let flat r = Program.flatten (Asm.parse r.asm)

(** Fuzz a reproducer against its defense, returning the violation (with its
    signature filled in) if one is found within the given budget.
    [amplified] shrinks MSHRs/ways for the UV2 scenario. *)
let hunt ?(seed = 7) ?(n_base_inputs = 10) ?(boosts_per_input = 8) ?sim_config r =
  let sim_config =
    match sim_config, r.expected_class with
    | Some c, _ -> Some c
    | None, Analysis.Mshr_interference_uv2 ->
        Some (Amulet_defenses.Defense.config ~l1d_ways:2 ~mshrs:2 r.defense)
    | None, _ -> None
  in
  let spec seed =
    Run_spec.make ~defense:r.defense ~seed ~inputs:n_base_inputs
      ~boosts:boosts_per_input ~boot_insts:500 ?sim_config ()
  in
  (* detection-time signing goes through the one shared path *)
  let sign v = Triage.sign ~boot_insts:500 ?sim_config v in
  let rec attempt tries seed =
    if tries = 0 then None
    else
      let fz = Fuzzer.create (spec seed) in
      match Fuzzer.test_program fz (flat r) with
      | Fuzzer.Found v -> Some (fst (sign v))
      | Fuzzer.No_violation _ | Fuzzer.Discarded _ | Fuzzer.Screened ->
          attempt (tries - 1) (seed + 1)
  in
  match attempt 5 seed with
  | Some v -> Some v
  | None ->
      (* Some leaks (UV2's microarchitectural race in particular) resist
         hand-crafted timing; fall back to the way the paper actually found
         them — a random campaign — and keep the first violation carrying
         the expected signature. *)
      let fz = Fuzzer.create (spec seed) in
      let rec rounds n =
        if n = 0 then None
        else
          match Fuzzer.round fz with
          | Fuzzer.Found v -> (
              match sign v with
              | signed, c when c = r.expected_class -> Some signed
              | _ -> rounds (n - 1))
          | Fuzzer.No_violation _ | Fuzzer.Discarded _ | Fuzzer.Screened ->
              rounds (n - 1)
      in
      rounds 120
