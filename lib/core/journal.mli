(** Crash-safe campaign journaling.

    A journal is a periodic checkpoint of campaign progress — seed, rounds
    completed, per-class fault counts, and every violation found so far in
    its {!Violation_io} stored form — written atomically (temp file then
    rename) so a kill at any instant leaves either the previous or the new
    checkpoint, never a torn file.  [amulet fuzz --resume <journal>]
    continues from the last checkpoint; because campaigns reseed the fuzzer
    per round from (seed, round index), the resumed run replays the exact
    remaining rounds and ends with the same totals as an uninterrupted
    run. *)

exception Format_error of string

type t = {
  seed : int;
  n_programs : int;  (** target round count of the journaled campaign *)
  defense_name : string;
  contract_name : string;
  programs_run : int;  (** rounds completed at checkpoint time *)
  discarded : int;
  test_cases : int;
  fault_counts : (Fault.cls * int) list;
  detection_times : float list;
  corpus : string option;
      (** serialised guided-fuzzing corpus ({!Amulet_corpus.Corpus.to_string})
          captured at checkpoint time; [None] for random-generation
          campaigns.  Stored escaped on one [corpus=] line, so journals
          written by older builds (no key) and read by older builds
          (unknown keys ignored) stay compatible. *)
  violations : Violation_io.stored list;
}

val save : t -> string -> unit
(** Atomic, durable checkpoint: write [path].tmp in full, flush + fsync it,
    rename over [path], fsync the containing directory (best effort).  A
    kill or power cut at any instant leaves the previous or the new
    checkpoint, never a torn file. *)

val load : string -> t
(** Raises {!Format_error} on malformed input. *)

type recovery =
  | Resumed of t  (** the checkpoint loaded cleanly *)
  | Quarantined of { corrupt_path : string; error : string }
      (** the checkpoint was torn/corrupt; it was moved to [corrupt_path]
          for triage and the campaign should start from round 0 *)
  | Fresh  (** no checkpoint exists at that path *)

val recover : string -> recovery
(** Defensive load for resume paths ([fuzz --resume], shard re-adoption by
    a distributed worker): never raises on a damaged checkpoint — it
    quarantines the file aside ([path].corrupt) instead, so a crash that
    tore a journal costs at most that shard's progress, not the campaign. *)
