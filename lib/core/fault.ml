(** Structured fault taxonomy for campaign supervision: the fault values the
    executor and fuzzer report, the per-class counters campaigns aggregate,
    and the chaos injector the robustness self-tests use. *)

type exn_info = { exn_name : string; backtrace : string }

let exn_info exn =
  { exn_name = Printexc.to_string exn; backtrace = Printexc.get_backtrace () }

type t =
  | Sim_divergence of string
  | Emu_fault of string
  | Decode_error of string
  | Fuel_exhausted of string
  | Deadline_exceeded of { elapsed_ms : float; deadline_ms : float }
  | Empty_population
  | Injected of string
  | Instance_crash of exn_info
  | Worker_lost of string
  | Protocol of string

let to_string = function
  | Sim_divergence s -> "simulator divergence: " ^ s
  | Emu_fault s -> "emulator fault: " ^ s
  | Decode_error s -> "decode error: " ^ s
  | Fuel_exhausted s -> "fuel exhausted: " ^ s
  | Deadline_exceeded { elapsed_ms; deadline_ms } ->
      Printf.sprintf "round deadline exceeded: %.1f ms elapsed (budget %.1f ms)"
        elapsed_ms deadline_ms
  | Empty_population -> "no test cases"
  | Injected s -> "injected fault: " ^ s
  | Instance_crash { exn_name; _ } -> "instance crash: " ^ exn_name
  | Worker_lost s -> "worker lost: " ^ s
  | Protocol s -> "protocol error: " ^ s

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* The simulator and leakage model report faults as strings ("pipeline
   deadlock", "cycle limit exceeded", "control flow escaped code region at
   index 12", ...); map them onto the taxonomy by content. *)
let of_run_fault s =
  if contains s "deadlock" || contains s "cycle limit" || contains s "step limit"
  then Fuel_exhausted s
  else if contains s "decode" || contains s "unknown instruction" then Decode_error s
  else if contains s "diverge" then Sim_divergence s
  else Emu_fault s

exception Injected_crash of string

let of_exn = function
  | Injected_crash s -> Injected s
  | Invalid_argument s when contains s "Exec" -> Decode_error s
  | exn -> Instance_crash (exn_info exn)

(* ------------------------------------------------------------------ *)
(* Per-class counters                                                  *)
(* ------------------------------------------------------------------ *)

type cls =
  | C_sim_divergence
  | C_emu_fault
  | C_decode_error
  | C_fuel_exhausted
  | C_deadline_exceeded
  | C_empty_population
  | C_injected
  | C_instance_crash
  | C_worker_lost
  | C_protocol

let class_of = function
  | Sim_divergence _ -> C_sim_divergence
  | Emu_fault _ -> C_emu_fault
  | Decode_error _ -> C_decode_error
  | Fuel_exhausted _ -> C_fuel_exhausted
  | Deadline_exceeded _ -> C_deadline_exceeded
  | Empty_population -> C_empty_population
  | Injected _ -> C_injected
  | Instance_crash _ -> C_instance_crash
  | Worker_lost _ -> C_worker_lost
  | Protocol _ -> C_protocol

let all_classes =
  [
    C_sim_divergence;
    C_emu_fault;
    C_decode_error;
    C_fuel_exhausted;
    C_deadline_exceeded;
    C_empty_population;
    C_injected;
    C_instance_crash;
    C_worker_lost;
    C_protocol;
  ]

let class_name = function
  | C_sim_divergence -> "sim-divergence"
  | C_emu_fault -> "emu-fault"
  | C_decode_error -> "decode-error"
  | C_fuel_exhausted -> "fuel-exhausted"
  | C_deadline_exceeded -> "deadline-exceeded"
  | C_empty_population -> "empty-population"
  | C_injected -> "injected"
  | C_instance_crash -> "instance-crash"
  | C_worker_lost -> "worker-lost"
  | C_protocol -> "protocol"

let class_of_name s = List.find_opt (fun c -> class_name c = s) all_classes

module Counters = struct
  type fault = t
  type t = (cls, int ref) Hashtbl.t

  let create () : t =
    let tbl = Hashtbl.create 8 in
    List.iter (fun c -> Hashtbl.add tbl c (ref 0)) all_classes;
    tbl

  let cell (t : t) c = Hashtbl.find t c

  let record_class t ?(n = 1) c =
    let r = cell t c in
    r := !r + n

  let record t fault = record_class t (class_of fault)
  let get t c = !(cell t c)
  let total t = List.fold_left (fun acc c -> acc + get t c) 0 all_classes

  let to_list t =
    List.filter_map
      (fun c -> match get t c with 0 -> None | n -> Some (c, n))
      all_classes

  let add_list t l = List.iter (fun (c, n) -> record_class t ~n c) l
  let merge dst src = add_list dst (to_list src)

  let pp fmt t =
    match to_list t with
    | [] -> Format.fprintf fmt "no faults"
    | l ->
        Format.pp_print_list
          ~pp_sep:(fun f () -> Format.fprintf f ", ")
          (fun f (c, n) -> Format.fprintf f "%s: %d" (class_name c) n)
          fmt l
end

(* ------------------------------------------------------------------ *)
(* Chaos injection                                                     *)
(* ------------------------------------------------------------------ *)

type injector = {
  p_crash : float;
  p_timeout : float;
  p_sim_fault : float;
  p_kill_worker : float;
  p_drop_message : float;
  p_delay_heartbeat : float;
  chaos_seed : int;
}

let injector ?(p_crash = 0.) ?(p_timeout = 0.) ?(p_sim_fault = 0.)
    ?(p_kill_worker = 0.) ?(p_drop_message = 0.) ?(p_delay_heartbeat = 0.)
    ~seed () =
  {
    p_crash;
    p_timeout;
    p_sim_fault;
    p_kill_worker;
    p_drop_message;
    p_delay_heartbeat;
    chaos_seed = seed;
  }

type chaos = { inj : injector; rng : Rng.t; service_rng : Rng.t }

let arm inj =
  (* the service modes draw from a separately-seeded stream so arming
     worker-level chaos never perturbs the in-process draw sequence *)
  {
    inj;
    rng = Rng.create ~seed:inj.chaos_seed;
    service_rng = Rng.create ~seed:(inj.chaos_seed lxor 0x5eed1ce);
  }

let draw rng = float_of_int (Rng.int rng 1_000_000) /. 1_000_000.

(* One uniform draw decides: the probabilities partition [0, 1). *)
let sample t =
  let u = draw t.rng in
  if u < t.inj.p_crash then `Crash
  else if u < t.inj.p_crash +. t.inj.p_timeout then `Timeout
  else if u < t.inj.p_crash +. t.inj.p_timeout +. t.inj.p_sim_fault then `Sim_fault
  else `None

let sample_worker t =
  let u = draw t.service_rng in
  if u < t.inj.p_kill_worker then `Kill_worker
  else if u < t.inj.p_kill_worker +. t.inj.p_drop_message then `Drop_message
  else if
    u < t.inj.p_kill_worker +. t.inj.p_drop_message +. t.inj.p_delay_heartbeat
  then `Delay_heartbeat
  else `None
