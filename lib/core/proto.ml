(** The coordinator/worker wire protocol: length-prefixed, versioned binary
    frames with a payload CRC, over Unix-domain stream sockets.

    Frame layout (all integers big-endian):
    {v
      u32  payload length
      u8   protocol version
      u8   message tag
      ...  payload
      u32  CRC-32 of the payload
    v}

    The payload encoding is a flat binary writer (fixed-width ints, floats
    as IEEE-754 bits, length-prefixed strings, 0/1-prefixed options) — no
    external serialization dependency, and every value round-trips exactly,
    so a leased {!Run_spec.t} reconstructs bit-identically on the worker
    and the deterministic-fingerprint guarantee survives the wire. *)

open Amulet_contracts
open Amulet_defenses
module Config = Amulet_uarch.Config

let version = 4

(* Refuse absurd lengths before allocating: garbage on the socket must not
   look like a 4 GB frame. *)
let max_payload = 64 * 1024 * 1024

exception Protocol_error of string
exception Closed

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, the zlib polynomial)                            *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor (Int32.shift_right_logical !c 1) 0xEDB88320l
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logxor !c (Int32.of_int (Char.code ch))) land 0xff in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Payload writer / reader                                             *)
(* ------------------------------------------------------------------ *)

let p_u8 b v = Buffer.add_uint8 b (v land 0xff)
let p_bool b v = p_u8 b (if v then 1 else 0)
let p_i64 b v = Buffer.add_int64_be b v
let p_int b v = p_i64 b (Int64.of_int v)
let p_float b v = p_i64 b (Int64.bits_of_float v)

let p_str b s =
  p_int b (String.length s);
  Buffer.add_string b s

let p_opt pf b = function
  | None -> p_bool b false
  | Some v ->
      p_bool b true;
      pf b v

let p_list pf b l =
  p_int b (List.length l);
  List.iter (pf b) l

type rd = { s : string; mutable pos : int }

let need rd n =
  if rd.pos + n > String.length rd.s then raise (Protocol_error "truncated payload")

let g_u8 rd =
  need rd 1;
  let v = Char.code rd.s.[rd.pos] in
  rd.pos <- rd.pos + 1;
  v

let g_bool rd = g_u8 rd <> 0

let g_i64 rd =
  need rd 8;
  let v = String.get_int64_be rd.s rd.pos in
  rd.pos <- rd.pos + 8;
  v

let g_int rd = Int64.to_int (g_i64 rd)
let g_float rd = Int64.float_of_bits (g_i64 rd)

let g_str rd =
  let n = g_int rd in
  if n < 0 || n > max_payload then raise (Protocol_error "bad string length");
  need rd n;
  let v = String.sub rd.s rd.pos n in
  rd.pos <- rd.pos + n;
  v

let g_opt gf rd = if g_bool rd then Some (gf rd) else None

let g_list gf rd =
  let n = g_int rd in
  if n < 0 || n > max_payload then raise (Protocol_error "bad list length");
  List.init n (fun _ -> gf rd)

(* ------------------------------------------------------------------ *)
(* Domain codecs                                                       *)
(* ------------------------------------------------------------------ *)

let p_mode b = function Executor.Naive -> p_u8 b 0 | Executor.Opt -> p_u8 b 1

let g_mode rd =
  match g_u8 rd with
  | 0 -> Executor.Naive
  | 1 -> Executor.Opt
  | n -> raise (Protocol_error (Printf.sprintf "bad executor mode %d" n))

let p_kind b = function Engine.Naive -> p_u8 b 0 | Engine.Pooled -> p_u8 b 1

let g_kind rd =
  match g_u8 rd with
  | 0 -> Engine.Naive
  | 1 -> Engine.Pooled
  | n -> raise (Protocol_error (Printf.sprintf "bad engine kind %d" n))

let p_format b (f : Utrace.format) =
  p_u8 b
    (match f with
    | Utrace.L1d_tlb -> 0
    | Utrace.Bp_state -> 1
    | Utrace.Mem_order -> 2
    | Utrace.Bp_order -> 3
    | Utrace.Pc_order -> 4)

let g_format rd =
  match g_u8 rd with
  | 0 -> Utrace.L1d_tlb
  | 1 -> Utrace.Bp_state
  | 2 -> Utrace.Mem_order
  | 3 -> Utrace.Bp_order
  | 4 -> Utrace.Pc_order
  | n -> raise (Protocol_error (Printf.sprintf "bad trace format %d" n))

let p_generator b (g : Generator.config) =
  p_int b g.Generator.blocks;
  p_int b g.min_insts_per_block;
  p_int b g.max_insts_per_block;
  p_float b g.mem_fraction;
  p_float b g.store_fraction;
  p_int b g.sandbox_pages;
  p_float b g.unaligned_fraction;
  p_float b g.fence_fraction

let g_generator rd =
  let blocks = g_int rd in
  let min_insts_per_block = g_int rd in
  let max_insts_per_block = g_int rd in
  let mem_fraction = g_float rd in
  let store_fraction = g_float rd in
  let sandbox_pages = g_int rd in
  let unaligned_fraction = g_float rd in
  let fence_fraction = g_float rd in
  {
    Generator.blocks;
    min_insts_per_block;
    max_insts_per_block;
    mem_fraction;
    store_fraction;
    sandbox_pages;
    unaligned_fraction;
    fence_fraction;
  }

(* v3: the full generation strategy travels on the wire, so guided
   campaigns run identically on worker fleets and in process. *)
let p_corpus_params b (p : Amulet_corpus.Corpus.params) =
  p_int b p.Amulet_corpus.Corpus.capacity;
  p_int b p.max_age;
  p_float b p.mutate_fraction;
  p_int b p.energy;
  p_list p_str b p.seed_programs

let g_corpus_params rd =
  let capacity = g_int rd in
  let max_age = g_int rd in
  let mutate_fraction = g_float rd in
  let energy = g_int rd in
  let seed_programs = g_list g_str rd in
  { Amulet_corpus.Corpus.capacity; max_age; mutate_fraction; energy;
    seed_programs }

let p_generation b (g : Run_spec.generation) =
  match g with
  | Run_spec.Random cfg ->
      p_u8 b 0;
      p_generator b cfg
  | Run_spec.Guided { base; corpus } ->
      p_u8 b 1;
      p_generator b base;
      p_corpus_params b corpus

let g_generation rd : Run_spec.generation =
  match g_u8 rd with
  | 0 -> Run_spec.Random (g_generator rd)
  | 1 ->
      let base = g_generator rd in
      let corpus = g_corpus_params rd in
      Run_spec.Guided { base; corpus }
  | n -> raise (Protocol_error (Printf.sprintf "bad generation strategy %d" n))

let p_injector b (i : Fault.injector) =
  p_float b i.Fault.p_crash;
  p_float b i.p_timeout;
  p_float b i.p_sim_fault;
  p_float b i.p_kill_worker;
  p_float b i.p_drop_message;
  p_float b i.p_delay_heartbeat;
  p_int b i.chaos_seed

let g_injector rd =
  let p_crash = g_float rd in
  let p_timeout = g_float rd in
  let p_sim_fault = g_float rd in
  let p_kill_worker = g_float rd in
  let p_drop_message = g_float rd in
  let p_delay_heartbeat = g_float rd in
  let chaos_seed = g_int rd in
  {
    Fault.p_crash;
    p_timeout;
    p_sim_fault;
    p_kill_worker;
    p_drop_message;
    p_delay_heartbeat;
    chaos_seed;
  }

let p_uarch_defense b (d : Config.defense) =
  match d with
  | Config.Baseline -> p_u8 b 0
  | Config.Invisispec c ->
      p_u8 b 1;
      p_bool b c.Config.iv_patched_eviction
  | Config.Cleanupspec c ->
      p_u8 b 2;
      p_bool b c.Config.cs_patched_store_cleanup;
      p_bool b c.Config.cs_patched_split_cleanup
  | Config.Stt c ->
      p_u8 b 3;
      p_bool b c.Config.stt_patched_store_tlb
  | Config.Speclfb c ->
      p_u8 b 4;
      p_bool b c.Config.lfb_patched_first_load
  | Config.Delay_on_miss -> p_u8 b 5
  | Config.Ghostminion -> p_u8 b 6

let g_uarch_defense rd : Config.defense =
  match g_u8 rd with
  | 0 -> Config.Baseline
  | 1 -> Config.Invisispec { Config.iv_patched_eviction = g_bool rd }
  | 2 ->
      let cs_patched_store_cleanup = g_bool rd in
      let cs_patched_split_cleanup = g_bool rd in
      Config.Cleanupspec { Config.cs_patched_store_cleanup; cs_patched_split_cleanup }
  | 3 -> Config.Stt { Config.stt_patched_store_tlb = g_bool rd }
  | 4 -> Config.Speclfb { Config.lfb_patched_first_load = g_bool rd }
  | 5 -> Config.Delay_on_miss
  | 6 -> Config.Ghostminion
  | n -> raise (Protocol_error (Printf.sprintf "bad uarch defense tag %d" n))

let p_sim_config b (c : Config.t) =
  List.iter (p_int b)
    [
      c.Config.fetch_width; c.issue_width; c.commit_width; c.rob_size;
      c.redirect_penalty; c.imul_latency; c.branch_latency; c.line_bytes;
      c.l1d_sets; c.l1d_ways; c.l1i_sets; c.l1i_ways; c.l2_sets; c.l2_ways;
      c.mshrs; c.l1_latency; c.l2_latency; c.mem_latency; c.queue_bandwidth;
      c.tlb_entries; c.bp_history_bits; c.bp_table_bits; c.btb_bits;
      c.mdp_bits; c.cleanup_latency; c.drain_cycles; c.max_cycles;
      c.deadlock_cycles;
    ];
  p_bool b c.Config.nl_prefetcher;
  p_bool b c.Config.legacy_hot_loop;
  p_uarch_defense b c.Config.defense

let g_sim_config rd : Config.t =
  let fetch_width = g_int rd in
  let issue_width = g_int rd in
  let commit_width = g_int rd in
  let rob_size = g_int rd in
  let redirect_penalty = g_int rd in
  let imul_latency = g_int rd in
  let branch_latency = g_int rd in
  let line_bytes = g_int rd in
  let l1d_sets = g_int rd in
  let l1d_ways = g_int rd in
  let l1i_sets = g_int rd in
  let l1i_ways = g_int rd in
  let l2_sets = g_int rd in
  let l2_ways = g_int rd in
  let mshrs = g_int rd in
  let l1_latency = g_int rd in
  let l2_latency = g_int rd in
  let mem_latency = g_int rd in
  let queue_bandwidth = g_int rd in
  let tlb_entries = g_int rd in
  let bp_history_bits = g_int rd in
  let bp_table_bits = g_int rd in
  let btb_bits = g_int rd in
  let mdp_bits = g_int rd in
  let cleanup_latency = g_int rd in
  let drain_cycles = g_int rd in
  let max_cycles = g_int rd in
  let deadlock_cycles = g_int rd in
  let nl_prefetcher = g_bool rd in
  let legacy_hot_loop = g_bool rd in
  let defense = g_uarch_defense rd in
  {
    Config.fetch_width; issue_width; commit_width; rob_size; redirect_penalty;
    imul_latency; branch_latency; line_bytes; l1d_sets; l1d_ways; l1i_sets;
    l1i_ways; l2_sets; l2_ways; mshrs; l1_latency; l2_latency; mem_latency;
    queue_bandwidth; nl_prefetcher; tlb_entries; bp_history_bits;
    bp_table_bits; btb_bits; mdp_bits; cleanup_latency; drain_cycles;
    max_cycles; deadlock_cycles; defense; legacy_hot_loop;
  }

let p_spec b (s : Run_spec.t) =
  p_str b s.Run_spec.defense.Defense.name;
  p_opt (fun b (c : Contract.t) -> p_str b c.Contract.name) b s.Run_spec.contract;
  p_int b s.Run_spec.rounds;
  p_int b s.Run_spec.seed;
  p_opt p_int b s.Run_spec.stop_after_violations;
  p_bool b s.Run_spec.classify;
  p_opt p_float b s.Run_spec.deadline_ms;
  p_opt p_float b s.Run_spec.budget_ms;
  p_int b s.Run_spec.n_base_inputs;
  p_int b s.Run_spec.boosts_per_input;
  p_generation b s.Run_spec.generation;
  p_mode b s.Run_spec.mode;
  p_kind b s.Run_spec.engine;
  p_format b s.Run_spec.trace_format;
  p_int b s.Run_spec.boot_insts;
  p_opt p_sim_config b s.Run_spec.sim_config;
  p_opt p_str b s.Run_spec.quarantine_dir;
  p_opt p_injector b s.Run_spec.chaos;
  p_bool b s.Run_spec.isolate_rounds;
  p_str b (Run_spec.static_filter_name s.Run_spec.static_filter)

let g_spec rd : Run_spec.t =
  let dname = g_str rd in
  let defense =
    match Defense.find dname with
    | Some d -> d
    | None -> raise (Protocol_error ("unknown defense preset " ^ dname))
  in
  let contract =
    g_opt
      (fun rd ->
        let cname = g_str rd in
        match Contract.find cname with
        | Some c -> c
        | None -> raise (Protocol_error ("unknown contract " ^ cname)))
      rd
  in
  let rounds = g_int rd in
  let seed = g_int rd in
  let stop_after_violations = g_opt g_int rd in
  let classify = g_bool rd in
  let deadline_ms = g_opt g_float rd in
  let budget_ms = g_opt g_float rd in
  let n_base_inputs = g_int rd in
  let boosts_per_input = g_int rd in
  let generation = g_generation rd in
  let mode = g_mode rd in
  let engine = g_kind rd in
  let trace_format = g_format rd in
  let boot_insts = g_int rd in
  let sim_config = g_opt g_sim_config rd in
  let quarantine_dir = g_opt g_str rd in
  let chaos = g_opt g_injector rd in
  let isolate_rounds = g_bool rd in
  let static_filter =
    let name = g_str rd in
    match Run_spec.static_filter_of_name name with
    | Some f -> f
    | None -> raise (Protocol_error ("unknown static filter " ^ name))
  in
  {
    Run_spec.defense; contract; rounds; seed; stop_after_violations; classify;
    deadline_ms; budget_ms; n_base_inputs; boosts_per_input; generation;
    generator = Run_spec.generation_base generation; mode;
    engine; trace_format; boot_insts; sim_config; quarantine_dir; chaos;
    isolate_rounds; static_filter;
  }

let p_fault_class b c = p_str b (Fault.class_name c)

let g_fault_class rd =
  let name = g_str rd in
  match Fault.class_of_name name with
  | Some c -> c
  | None -> raise (Protocol_error ("unknown fault class " ^ name))

let p_vsig b (v : Sweep.Ident.v) =
  p_i64 b v.Sweep.Ident.ctrace_hash;
  p_i64 b v.hash_a;
  p_i64 b v.hash_b;
  p_str b v.program_text;
  (* version 4: root-cause signature, for live cross-worker dedup *)
  p_str b v.signature

let g_vsig rd : Sweep.Ident.v =
  let ctrace_hash = g_i64 rd in
  let hash_a = g_i64 rd in
  let hash_b = g_i64 rd in
  let program_text = g_str rd in
  let signature = g_str rd in
  { Sweep.Ident.ctrace_hash; hash_a; hash_b; program_text; signature }

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

type lease = {
  lease_id : int;
  job_id : int;
  shard : int;
  journal_path : string option;
  checkpoint_every : int;
  spec : Run_spec.t;
}

type shard_result = {
  lease_id : int;
  job_id : int;
  contract_name : string;
  rounds_done : int;
  discarded : int;
  test_cases : int;
  quarantined : int;
  duration_s : float;
  budget_exhausted : bool;
  fault_counts : (Fault.cls * int) list;
  detection_times : float list;
  violations : Sweep.Ident.v list;
}

type msg =
  | Hello of { worker : string; pid : int }
  | Hello_ok of { coordinator : string; heartbeat_s : float }
  | Lease of lease
  | Heartbeat of { lease_id : int; rounds_done : int }
  | Result of shard_result
  | Quarantine_shard of { lease_id : int; job_id : int; reason : string }
  | Shutdown of { reason : string }

let tag_of = function
  | Hello _ -> 1
  | Hello_ok _ -> 2
  | Lease _ -> 3
  | Heartbeat _ -> 4
  | Result _ -> 5
  | Quarantine_shard _ -> 6
  | Shutdown _ -> 7

let encode_payload msg =
  let b = Buffer.create 256 in
  (match msg with
  | Hello { worker; pid } ->
      p_str b worker;
      p_int b pid
  | Hello_ok { coordinator; heartbeat_s } ->
      p_str b coordinator;
      p_float b heartbeat_s
  | Lease { lease_id; job_id; shard; journal_path; checkpoint_every; spec } ->
      p_int b lease_id;
      p_int b job_id;
      p_int b shard;
      p_opt p_str b journal_path;
      p_int b checkpoint_every;
      p_spec b spec
  | Heartbeat { lease_id; rounds_done } ->
      p_int b lease_id;
      p_int b rounds_done
  | Result r ->
      p_int b r.lease_id;
      p_int b r.job_id;
      p_str b r.contract_name;
      p_int b r.rounds_done;
      p_int b r.discarded;
      p_int b r.test_cases;
      p_int b r.quarantined;
      p_float b r.duration_s;
      p_bool b r.budget_exhausted;
      p_list
        (fun b (c, n) ->
          p_fault_class b c;
          p_int b n)
        b r.fault_counts;
      p_list p_float b r.detection_times;
      p_list p_vsig b r.violations
  | Quarantine_shard { lease_id; job_id; reason } ->
      p_int b lease_id;
      p_int b job_id;
      p_str b reason
  | Shutdown { reason } -> p_str b reason);
  Buffer.contents b

let decode ~tag payload =
  let rd = { s = payload; pos = 0 } in
  let msg =
    match tag with
    | 1 ->
        let worker = g_str rd in
        let pid = g_int rd in
        Hello { worker; pid }
    | 2 ->
        let coordinator = g_str rd in
        let heartbeat_s = g_float rd in
        Hello_ok { coordinator; heartbeat_s }
    | 3 ->
        let lease_id = g_int rd in
        let job_id = g_int rd in
        let shard = g_int rd in
        let journal_path = g_opt g_str rd in
        let checkpoint_every = g_int rd in
        let spec = g_spec rd in
        Lease { lease_id; job_id; shard; journal_path; checkpoint_every; spec }
    | 4 ->
        let lease_id = g_int rd in
        let rounds_done = g_int rd in
        Heartbeat { lease_id; rounds_done }
    | 5 ->
        let lease_id = g_int rd in
        let job_id = g_int rd in
        let contract_name = g_str rd in
        let rounds_done = g_int rd in
        let discarded = g_int rd in
        let test_cases = g_int rd in
        let quarantined = g_int rd in
        let duration_s = g_float rd in
        let budget_exhausted = g_bool rd in
        let fault_counts =
          g_list
            (fun rd ->
              let c = g_fault_class rd in
              let n = g_int rd in
              (c, n))
            rd
        in
        let detection_times = g_list g_float rd in
        let violations = g_list g_vsig rd in
        Result
          {
            lease_id; job_id; contract_name; rounds_done; discarded;
            test_cases; quarantined; duration_s; budget_exhausted;
            fault_counts; detection_times; violations;
          }
    | 6 ->
        let lease_id = g_int rd in
        let job_id = g_int rd in
        let reason = g_str rd in
        Quarantine_shard { lease_id; job_id; reason }
    | 7 -> Shutdown { reason = g_str rd }
    | n -> raise (Protocol_error (Printf.sprintf "unknown message tag %d" n))
  in
  if rd.pos <> String.length payload then
    raise (Protocol_error "trailing bytes in payload");
  msg

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let header_bytes = 6
let trailer_bytes = 4

let frame ?(version = version) ~tag payload =
  let n = String.length payload in
  let b = Buffer.create (header_bytes + n + trailer_bytes) in
  Buffer.add_int32_be b (Int32.of_int n);
  p_u8 b version;
  p_u8 b tag;
  Buffer.add_string b payload;
  Buffer.add_int32_be b (crc32 payload);
  Buffer.contents b

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let write_frame ?version fd ~tag payload =
  let f = frame ?version ~tag payload in
  write_all fd f 0 (String.length f)

let write_msg fd msg = write_frame fd ~tag:(tag_of msg) (encode_payload msg)

(* Validate a complete raw frame (sans length word): version, CRC, tag. *)
let check_and_decode ~frame_version ~tag ~payload ~crc =
  if frame_version <> version then
    raise
      (Protocol_error
         (Printf.sprintf "protocol version mismatch: peer speaks v%d, we speak v%d"
            frame_version version));
  if crc32 payload <> crc then raise (Protocol_error "payload CRC mismatch");
  decode ~tag payload

let rec read_exact fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.read fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> -1
    in
    if n = 0 then raise Closed;
    if n < 0 then read_exact fd buf off len
    else read_exact fd buf (off + n) (len - n)
  end

let read_msg fd =
  let hdr = Bytes.create header_bytes in
  read_exact fd hdr 0 header_bytes;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_payload then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" len));
  let frame_version = Bytes.get_uint8 hdr 4 in
  let tag = Bytes.get_uint8 hdr 5 in
  let rest = Bytes.create (len + trailer_bytes) in
  read_exact fd rest 0 (len + trailer_bytes);
  let payload = Bytes.sub_string rest 0 len in
  let crc = Bytes.get_int32_be rest len in
  check_and_decode ~frame_version ~tag ~payload ~crc

(* ------------------------------------------------------------------ *)
(* Incremental decoder (for the coordinator's select loop)             *)
(* ------------------------------------------------------------------ *)

module Decoder = struct
  type t = { mutable pending : string }

  let create () = { pending = "" }

  let feed t bytes len =
    t.pending <- t.pending ^ Bytes.sub_string bytes 0 len

  let next t =
    let s = t.pending in
    let have = String.length s in
    if have < header_bytes then `Awaiting
    else
      let len = Int32.to_int (String.get_int32_be s 0) in
      if len < 0 || len > max_payload then
        `Error (Printf.sprintf "bad frame length %d" len)
      else
        let total = header_bytes + len + trailer_bytes in
        if have < total then `Awaiting
        else begin
          let frame_version = Char.code s.[4] in
          let tag = Char.code s.[5] in
          let payload = String.sub s header_bytes len in
          let crc = String.get_int32_be s (header_bytes + len) in
          t.pending <- String.sub s total (have - total);
          match check_and_decode ~frame_version ~tag ~payload ~crc with
          | msg -> `Msg msg
          | exception Protocol_error e -> `Error e
        end
end
