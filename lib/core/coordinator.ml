(** The campaign coordinator: leases (defense preset × seed shard) jobs to
    workers over {!Proto}, monitors heartbeats, and survives worker death by
    reassigning expired leases.

    Failure model (the thing this module is for):
    - {e Worker socket death} (SIGKILL, OOM, crash): detected as EOF/EPIPE;
      the worker's outstanding lease is requeued at the front and handed to
      the next idle worker.  Counted under {!Fault.C_worker_lost}.
    - {e Missed heartbeats} (hung worker, dropped messages): a lease whose
      worker has been silent for [lease_timeout_s] is expired — the
      connection is dropped and the shard requeued, identically to death.
    - {e Protocol damage} (version mismatch, CRC failure, garbage): the
      offender is told why ([Shutdown]) and disconnected; counted under
      {!Fault.C_protocol}.  Never fatal to the campaign.
    - {e Poisoned shards}: a shard requeued more than [max_attempts] times,
      or one the worker explicitly reports as unrunnable
      ([Quarantine_shard]), is abandoned and surfaces in the report like an
      in-process crashed shard — the sweep still completes.

    Reassignment is idempotent: shards checkpoint into the shared journal
    dir, a re-adopted shard resumes from its last round boundary (identical
    totals to an uninterrupted run — the {!Campaign} resume guarantee), and
    a zombie worker's duplicate result for an already-completed job is
    ignored.  Merged findings reduce to {!Sweep.Ident} rows, so the
    fingerprint is byte-identical to the in-process {!Sweep} path whatever
    the worker count or crash history. *)

open Amulet_defenses
module Obs = Amulet_obs.Obs

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  lsock : Unix.file_descr;
  socket_path : string;
  name : string;
  metrics : Obs.t;
  journal_dir : string option;
  checkpoint_every : int;
  heartbeat_s : float;
  lease_timeout_s : float;
  max_attempts : int;
  idle_timeout_s : float;
}

let socket_path t = t.socket_path

let create ~socket ?(name = "amulet-coordinator") ?(metrics = Obs.noop)
    ?journal_dir ?(checkpoint_every = 1) ?(heartbeat_s = 0.5)
    ?(lease_timeout_s = 10.) ?(max_attempts = 3) ?(idle_timeout_s = 30.) () =
  if Sys.file_exists socket then Sys.remove socket;
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind lsock (Unix.ADDR_UNIX socket)
   with e ->
     Unix.close lsock;
     raise e);
  Unix.listen lsock 16;
  {
    lsock;
    socket_path = socket;
    name;
    metrics;
    journal_dir;
    checkpoint_every;
    heartbeat_s;
    lease_timeout_s;
    max_attempts;
    idle_timeout_s;
  }

(* ------------------------------------------------------------------ *)
(* Report types                                                        *)
(* ------------------------------------------------------------------ *)

type status = Done of Proto.shard_result | Abandoned of string

type shard = {
  job : Sweep.job;
  status : status;
  worker : string;  (** the worker that resolved it ("" when abandoned) *)
  attempts : int;  (** leases granted: 1 + reassignments *)
  wall_s : float;  (** grant-to-result of the resolving lease *)
}

type report = {
  shards : shard list;  (** every shard, in job order *)
  rows : Sweep.Ident.row list;
  fingerprint : string;
  workers_joined : int;
  reassignments : int;
  worker_lost : int;
  protocol_errors : int;
  crashed : int;  (** abandoned shards (lost past retry cap, quarantined) *)
  wall_s : float;
  test_cases : int;
  violations : int;
  distinct_clusters : int;
      (** distinct root-cause clusters across the fleet: per-defense
          {!Sweep.Ident.dedup_key}s, summed over rows *)
  fault_counts : (Fault.cls * int) list;
  metrics : Obs.Snapshot.t;
}

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

type active_lease = { l_id : int; l_job_id : int; l_granted : float }

type conn = {
  fd : Unix.file_descr;
  decoder : Proto.Decoder.t;
  mutable worker : string;
  mutable greeted : bool;
  mutable last_seen : float;
  mutable lease : active_lease option;
}

(* Job-side record while the loop runs. *)
type slot = {
  s_job : Sweep.job;
  mutable s_status : status option;  (* None = pending or leased *)
  mutable s_worker : string;
  mutable s_attempts : int;
  mutable s_wall : float;
}

let ignore_sigpipe () =
  (* a worker dying mid-write must surface as EPIPE, not kill the process *)
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ | Sys_error _ -> ()

let journal_path_for t (job : Sweep.job) =
  Option.map
    (fun dir ->
      Filename.concat dir
        (Printf.sprintf "shard_%03d_%s.json" job.Sweep.id
           job.Sweep.spec.Run_spec.defense.Defense.name))
    t.journal_dir

let serve (t : t) (jobs : Sweep.job list) : report =
  ignore_sigpipe ();
  (* merge position is list order, as in the in-process scheduler *)
  let jobs = List.mapi (fun i j -> { j with Sweep.id = i }) jobs in
  let slots =
    Array.of_list
      (List.map
         (fun j ->
           { s_job = j; s_status = None; s_worker = ""; s_attempts = 0; s_wall = 0. })
         jobs)
  in
  let n = Array.length slots in
  let started = Obs.Clock.now_s () in
  let m_live = Obs.gauge t.metrics "service.workers_live" in
  let m_outstanding = Obs.gauge t.metrics "service.leases_outstanding" in
  let m_reassign = Obs.counter t.metrics "service.reassignments" in
  let m_lost = Obs.counter t.metrics "service.worker_lost" in
  let m_proto = Obs.counter t.metrics "service.protocol_errors" in
  let m_results = Obs.counter t.metrics "service.results" in
  let m_clusters = Obs.gauge t.metrics "service.distinct_clusters" in
  let m_hb = Obs.histogram t.metrics "service.heartbeat_latency" in
  (* live cross-worker dedup: every violation a Result carries lands here,
     keyed per defense by its root-cause signature (identity hashes when
     unclassified), so the gauge reports distinct clusters as they arrive *)
  let live_clusters : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let record_clusters ~defense (r : Proto.shard_result) =
    List.iter
      (fun v ->
        Hashtbl.replace live_clusters (defense, Sweep.Ident.dedup_key v) ())
      r.Proto.violations;
    Obs.set_gauge m_clusters (float_of_int (Hashtbl.length live_clusters))
  in
  let faults = Fault.Counters.create () in
  let pending = ref (List.init n Fun.id) in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let lease_ctr = ref 0 in
  let workers_joined = ref 0 in
  let reassignments = ref 0 in
  let worker_lost = ref 0 in
  let protocol_errors = ref 0 in
  let unresolved = ref n in
  let last_activity = ref started in
  let outstanding () =
    Hashtbl.fold (fun _ c k -> if c.lease <> None then k + 1 else k) conns 0
  in
  let update_gauges () =
    Obs.set_gauge m_live (float_of_int (Hashtbl.length conns));
    Obs.set_gauge m_outstanding (float_of_int (outstanding ()))
  in
  let resolve slot status ~worker ~wall =
    if slot.s_status = None then begin
      slot.s_status <- Some status;
      slot.s_worker <- worker;
      slot.s_wall <- wall;
      decr unresolved
    end
  in
  (* Requeue an interrupted shard at the FRONT so reassignment is prompt;
     past the attempt cap it is abandoned instead (poisoned-shard guard). *)
  let requeue ~reason jid =
    let slot = slots.(jid) in
    if slot.s_status = None then
      if slot.s_attempts >= t.max_attempts then
        resolve slot
          (Abandoned
             (Printf.sprintf "%s (after %d lease attempts)" reason
                slot.s_attempts))
          ~worker:"" ~wall:0.
      else begin
        incr reassignments;
        Obs.incr m_reassign;
        pending := jid :: !pending
      end
  in
  let drop_conn ~reason conn =
    if Hashtbl.mem conns conn.fd then begin
      (match conn.lease with
      | Some l ->
          incr worker_lost;
          Obs.incr m_lost;
          Fault.Counters.record faults
            (Fault.Worker_lost (Printf.sprintf "%s: %s" conn.worker reason));
          conn.lease <- None;
          requeue ~reason l.l_job_id
      | None -> ());
      Hashtbl.remove conns conn.fd;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ())
    end
  in
  let grant conn jid =
    let slot = slots.(jid) in
    slot.s_attempts <- slot.s_attempts + 1;
    incr lease_ctr;
    let now = Obs.Clock.now_s () in
    conn.lease <- Some { l_id = !lease_ctr; l_job_id = jid; l_granted = now };
    conn.last_seen <- now;
    Proto.write_msg conn.fd
      (Proto.Lease
         {
           Proto.lease_id = !lease_ctr;
           job_id = jid;
           shard = slot.s_job.Sweep.shard;
           journal_path = journal_path_for t slot.s_job;
           checkpoint_every = t.checkpoint_every;
           spec = slot.s_job.Sweep.spec;
         })
  in
  let pump_conn conn =
    if conn.greeted && conn.lease = None then
      match !pending with
      | [] -> ()
      | jid :: rest -> (
          pending := rest;
          try grant conn jid
          with Unix.Unix_error _ | Sys_error _ ->
            (* the write failed: the worker is gone; drop_conn requeues *)
            drop_conn ~reason:"lease write failed" conn)
  in
  let pump () =
    let cs = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
    List.iter pump_conn cs
  in
  let protocol_fault conn what =
    incr protocol_errors;
    Obs.incr m_proto;
    Fault.Counters.record faults
      (Fault.Protocol (Printf.sprintf "%s: %s" conn.worker what));
    (try Proto.write_msg conn.fd (Proto.Shutdown { reason = what })
     with Unix.Unix_error _ | Sys_error _ -> ());
    drop_conn ~reason:("protocol: " ^ what) conn
  in
  let handle_msg conn (msg : Proto.msg) =
    let now = Obs.Clock.now_s () in
    last_activity := now;
    match msg with
    | Proto.Hello { worker; pid } ->
        conn.worker <- Printf.sprintf "%s/%d" worker pid;
        conn.greeted <- true;
        conn.last_seen <- now;
        incr workers_joined;
        (try
           Proto.write_msg conn.fd
             (Proto.Hello_ok
                { coordinator = t.name; heartbeat_s = t.heartbeat_s });
           pump_conn conn
         with Unix.Unix_error _ | Sys_error _ ->
           drop_conn ~reason:"hello-ok write failed" conn)
    | Proto.Heartbeat { lease_id; rounds_done = _ } -> (
        match conn.lease with
        | Some l when l.l_id = lease_id ->
            Obs.observe m_hb (Obs.Clock.elapsed_s ~since:conn.last_seen);
            conn.last_seen <- now
        | _ -> (* heartbeat for an expired lease: stale, ignore *) ())
    | Proto.Result r -> (
        match conn.lease with
        | Some l when l.l_id = r.Proto.lease_id ->
            conn.lease <- None;
            conn.last_seen <- now;
            if r.Proto.job_id < 0 || r.Proto.job_id >= n then
              protocol_fault conn
                (Printf.sprintf "result for unknown job %d" r.Proto.job_id)
            else begin
              Obs.incr m_results;
              record_clusters
                ~defense:
                  slots.(r.Proto.job_id).s_job.Sweep.spec.Run_spec.defense
                    .Defense.name
                r;
              (* duplicate results for an already-resolved job are ignored
                 inside [resolve] — reassignment stays idempotent *)
              resolve
                slots.(r.Proto.job_id)
                (Done r) ~worker:conn.worker
                ~wall:(Obs.Clock.elapsed_s ~since:l.l_granted);
              pump_conn conn
            end
        | _ -> (* result raced its lease expiry: already requeued *) ())
    | Proto.Quarantine_shard { lease_id; job_id; reason } -> (
        match conn.lease with
        | Some l when l.l_id = lease_id && l.l_job_id = job_id ->
            conn.lease <- None;
            conn.last_seen <- now;
            resolve slots.(job_id)
              (Abandoned ("quarantined by worker: " ^ reason))
              ~worker:conn.worker
              ~wall:(Obs.Clock.elapsed_s ~since:l.l_granted);
            pump_conn conn
        | _ -> ())
    | Proto.Shutdown { reason } -> drop_conn ~reason:("worker quit: " ^ reason) conn
    | Proto.Hello_ok _ | Proto.Lease _ ->
        protocol_fault conn "coordinator-only message from worker"
  in
  let drain conn =
    let rec go () =
      if Hashtbl.mem conns conn.fd then
        match Proto.Decoder.next conn.decoder with
        | `Awaiting -> ()
        | `Error e -> protocol_fault conn e
        | `Msg m ->
            handle_msg conn m;
            go ()
    in
    go ()
  in
  let buf = Bytes.create 65536 in
  let handle_readable fd =
    if fd = t.lsock then (
      match Unix.accept t.lsock with
      | cfd, _ ->
          last_activity := Obs.Clock.now_s ();
          Hashtbl.replace conns cfd
            {
              fd = cfd;
              decoder = Proto.Decoder.create ();
              worker = "?";
              greeted = false;
              last_seen = Obs.Clock.now_s ();
              lease = None;
            }
      | exception Unix.Unix_error _ -> ())
    else
      match Hashtbl.find_opt conns fd with
      | None -> ()
      | Some conn -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> drop_conn ~reason:"connection closed" conn
          | k ->
              Proto.Decoder.feed conn.decoder buf k;
              drain conn
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ ->
              drop_conn ~reason:"read error" conn)
  in
  let expire_stale () =
    let now = Obs.Clock.now_s () in
    let stale =
      Hashtbl.fold
        (fun _ c acc ->
          match c.lease with
          | Some _ when now -. c.last_seen > t.lease_timeout_s -> c :: acc
          | _ -> acc)
        conns []
    in
    List.iter
      (fun c ->
        drop_conn
          ~reason:
            (Printf.sprintf "heartbeat deadline missed (%.1fs silent)"
               (now -. c.last_seen))
          c)
      stale
  in
  let abort_if_deserted () =
    (* pending work, nobody to do it, and nobody has shown up for a while:
       fail the remainder instead of hanging forever *)
    if
      Hashtbl.length conns = 0
      && Obs.Clock.elapsed_s ~since:!last_activity > t.idle_timeout_s
    then
      Array.iter
        (fun slot ->
          if slot.s_status = None then
            resolve slot
              (Abandoned
                 (Printf.sprintf "no live workers for %.0fs" t.idle_timeout_s))
              ~worker:"" ~wall:0.)
        slots
  in
  let tick = Float.max 0.02 (Float.min 0.25 (t.heartbeat_s /. 2.)) in
  while !unresolved > 0 do
    expire_stale ();
    pump ();
    abort_if_deserted ();
    update_gauges ();
    if !unresolved > 0 then begin
      let fds = t.lsock :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      let readable, _, _ =
        try Unix.select fds [] [] tick
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter handle_readable readable
    end
  done;
  (* everything resolved: release the fleet and the socket *)
  Hashtbl.iter
    (fun _ c ->
      (try Proto.write_msg c.fd (Proto.Shutdown { reason = "sweep complete" })
       with Unix.Unix_error _ | Sys_error _ -> ());
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  Hashtbl.reset conns;
  update_gauges ();
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  (try Sys.remove t.socket_path with Sys_error _ -> ());
  (* ---------------- deterministic merge, in job order ---------------- *)
  let shards =
    Array.to_list
      (Array.map
         (fun slot ->
           {
             job = slot.s_job;
             status =
               (match slot.s_status with
               | Some s -> s
               | None -> Abandoned "unresolved (coordinator bug)");
             worker = slot.s_worker;
             attempts = slot.s_attempts;
             wall_s = slot.s_wall;
           })
         slots)
  in
  let rows =
    (* group shards by preset, preserving first-appearance job order —
       exactly the in-process scheduler's merge *)
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let name = s.job.Sweep.spec.Run_spec.defense.Defense.name in
        if not (Hashtbl.mem tbl name) then begin
          order := name :: !order;
          Hashtbl.replace tbl name (ref [])
        end;
        let group = Hashtbl.find tbl name in
        group := s :: !group)
      shards;
    List.rev_map
      (fun name ->
        let group = List.rev !(Hashtbl.find tbl name) in
        let results =
          List.filter_map
            (fun s -> match s.status with Done r -> Some r | Abandoned _ -> None)
            group
        in
        let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
        {
          Sweep.Ident.defense = name;
          contract =
            (match results with
            | r :: _ -> r.Proto.contract_name
            | [] -> (
                match group with
                | s :: _ -> Run_spec.contract_name s.job.Sweep.spec
                | [] -> ""));
          rounds = sum (fun r -> r.Proto.rounds_done);
          discarded = sum (fun r -> r.Proto.discarded);
          test_cases = sum (fun r -> r.Proto.test_cases);
          violations = List.concat_map (fun r -> r.Proto.violations) results;
        })
      !order
  in
  List.iter
    (fun s ->
      match s.status with
      | Done r -> Fault.Counters.add_list faults r.Proto.fault_counts
      | Abandoned _ -> ())
    shards;
  let crashed =
    List.length
      (List.filter
         (fun s -> match s.status with Abandoned _ -> true | _ -> false)
         shards)
  in
  {
    shards;
    rows;
    fingerprint = Sweep.Ident.fingerprint rows;
    workers_joined = !workers_joined;
    reassignments = !reassignments;
    worker_lost = !worker_lost;
    protocol_errors = !protocol_errors;
    crashed;
    wall_s = Obs.Clock.elapsed_s ~since:started;
    test_cases =
      List.fold_left (fun acc (r : Sweep.Ident.row) -> acc + r.test_cases) 0 rows;
    violations =
      List.fold_left
        (fun acc (r : Sweep.Ident.row) -> acc + List.length r.violations)
        0 rows;
    (* recomputed from the deterministic merge (not the live table) so the
       count is scheduling-independent, like the fingerprint *)
    distinct_clusters =
      List.fold_left
        (fun acc (r : Sweep.Ident.row) -> acc + Sweep.Ident.distinct r.violations)
        0 rows;
    fault_counts = Fault.Counters.to_list faults;
    metrics = Obs.Snapshot.of_registry t.metrics;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json report =
  let buf = Buffer.create 4096 in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{";
  add "\"schema\":\"amulet.serve/1\",";
  add "\"jobs\":%d,\"crashed\":%d," (List.length report.shards) report.crashed;
  add "\"workers_joined\":%d,\"reassignments\":%d," report.workers_joined
    report.reassignments;
  add "\"worker_lost\":%d,\"protocol_errors\":%d," report.worker_lost
    report.protocol_errors;
  add "\"wall_s\":%.3f,\"test_cases\":%d,\"violations\":%d," report.wall_s
    report.test_cases report.violations;
  add "\"distinct_clusters\":%d," report.distinct_clusters;
  add "\"fingerprint\":%s," (str report.fingerprint);
  add "\"rows\":[";
  List.iteri
    (fun i (r : Sweep.Ident.row) ->
      if i > 0 then add ",";
      add "{\"defense\":%s,\"contract\":%s," (str r.defense) (str r.contract);
      add "\"rounds\":%d,\"discarded\":%d,\"test_cases\":%d," r.rounds
        r.discarded r.test_cases;
      add "\"violations\":%d,\"distinct_signatures\":%d}"
        (List.length r.violations)
        (Sweep.Ident.distinct r.violations))
    report.rows;
  add "],";
  add "\"shards\":[";
  List.iteri
    (fun i s ->
      if i > 0 then add ",";
      add "{\"job\":%d,\"defense\":%s," s.job.Sweep.id
        (str s.job.Sweep.spec.Run_spec.defense.Defense.name);
      add "\"attempts\":%d,\"worker\":%s," s.attempts (str s.worker);
      (match s.status with
      | Done r ->
          add "\"status\":\"done\",\"rounds\":%d,\"wall_s\":%.3f}"
            r.Proto.rounds_done s.wall_s
      | Abandoned why -> add "\"status\":\"abandoned\",\"reason\":%s}" (str why)))
    report.shards;
  add "],";
  add "\"faults\":{";
  List.iteri
    (fun j (c, k) ->
      if j > 0 then add ",";
      add "%s:%d" (str (Fault.class_name c)) k)
    report.fault_counts;
  add "},";
  add "\"metrics\":%s" (Obs.Snapshot.to_json report.metrics);
  add "}";
  Buffer.contents buf

let pp fmt report =
  Format.fprintf fmt
    "serve: %d shards, %d worker(s) joined, %d lost, %d reassigned, %d \
     abandoned, %.1f s@."
    (List.length report.shards)
    report.workers_joined report.worker_lost report.reassignments
    report.crashed report.wall_s;
  Format.fprintf fmt "  %-22s %-9s %6s %6s %6s %8s@." "defense" "contract"
    "rounds" "tc" "viol" "clusters";
  List.iter
    (fun (r : Sweep.Ident.row) ->
      Format.fprintf fmt "  %-22s %-9s %6d %6d %6d %8d@." r.defense r.contract
        r.rounds r.test_cases
        (List.length r.violations)
        (Sweep.Ident.distinct r.violations))
    report.rows;
  Format.fprintf fmt "  distinct clusters: %d@." report.distinct_clusters;
  Format.fprintf fmt "  fingerprint: %s@." report.fingerprint
