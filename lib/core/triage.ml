(** Violation triage: the staged pipeline [load → cluster → bisect →
    shrink → report].

    The stream side consumes whatever a campaign leaves behind — saved
    [.amulet] violation files, PoC files, crash-safe journals, or whole
    journal directories from [sweep --journal-dir] / [serve] — and reduces
    it to distinct root causes.  The analysis side is the one shared
    implementation behind [amulet explain], [amulet triage] and PoC
    replay: re-execute the pair from one shared context with logging and
    telemetry, summarize the contract traces, diff the microarchitectural
    traces, classify, and derive the divergence signature.

    Signatures are value-normalized so that two findings leaking through
    the same mechanism at different addresses cluster together; bisection
    then names the mechanism by flipping one configuration knob at a time
    until the violation disappears. *)

open Amulet_isa
open Amulet_contracts
open Amulet_defenses
open Amulet_uarch
module Obs = Amulet_obs.Obs

type status = Reproduced | Not_reproduced

let status_name = function
  | Reproduced -> "reproduced"
  | Not_reproduced -> "not_reproduced"

type ctrace_summary = {
  length_a : int;
  length_b : int;
  hash_a : int64;
  hash_b : int64;
  equal : bool;
  first_divergence : (int * string * string) option;
}

type mechanism_kind = Patched_flag | Config_knob

let mechanism_kind_name = function
  | Patched_flag -> "patched-flag"
  | Config_knob -> "config-knob"

type mechanism = {
  mech_name : string;
  mech_kind : mechanism_kind;
  mech_description : string;
  flips_tried : int;
}

type finding = {
  stored : Violation_io.stored;
  defense_name : string;
  contract_name : string;
  program_text : string;
  status : status;
  signature : string;
  leak_class : Analysis.leak_class option;
  ctrace : ctrace_summary;
  utrace_diff : string list;
  counters_a : Obs.Snapshot.t;
  counters_b : Obs.Snapshot.t;
  counter_delta : Obs.Snapshot.t;
  mechanism : mechanism option;
  minimized : Minimize.result option;
}

(* ------------------------------------------------------------------ *)
(* Divergence signatures                                               *)
(* ------------------------------------------------------------------ *)

(* Compact class token for signature strings (the long class_name is kept
   for human-facing fields). *)
let short_class = function
  | Analysis.Spectre_v1_install -> "v1-install"
  | Analysis.Spectre_v1_evict -> "v1-evict"
  | Analysis.Spectre_v4 -> "v4"
  | Analysis.Spec_eviction_uv1 -> "uv1"
  | Analysis.Mshr_interference_uv2 -> "uv2"
  | Analysis.Store_not_cleaned_uv3 -> "uv3"
  | Analysis.Split_not_cleaned_uv4 -> "uv4"
  | Analysis.Too_much_cleaning_uv5 -> "uv5"
  | Analysis.Unxpec_kv2 -> "kv2"
  | Analysis.Tainted_store_tlb_kv3 -> "kv3"
  | Analysis.First_load_unprotected_uv6 -> "uv6"
  | Analysis.Prefetcher_leak -> "prefetch"
  | Analysis.Unknown -> "unknown"

(* Value-normalize one diff line: hex literals and decimal runs collapse
   to '#', and runs of adjacent values collapse to a single '#', so the
   shape depends on which structures diverged, not on concrete addresses
   or on how many lines a set happened to spill. *)
let normalize_line line =
  let n = String.length line in
  let buf = Buffer.create n in
  let is_digit c = c >= '0' && c <= '9' in
  let is_hex c =
    is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let i = ref 0 in
  let last_hash = ref false in
  let pending_space = ref false in
  let flush_space () =
    if !pending_space then Buffer.add_char buf ' ';
    pending_space := false
  in
  while !i < n do
    let c = line.[!i] in
    if c = '0' && !i + 1 < n && line.[!i + 1] = 'x' then begin
      i := !i + 2;
      while !i < n && is_hex line.[!i] do incr i done;
      if !last_hash then pending_space := false
      else begin
        flush_space ();
        Buffer.add_char buf '#';
        last_hash := true
      end
    end
    else if is_digit c then begin
      while !i < n && is_digit line.[!i] do incr i done;
      if !last_hash then pending_space := false
      else begin
        flush_space ();
        Buffer.add_char buf '#';
        last_hash := true
      end
    end
    else if c = ' ' then begin
      pending_space := true;
      incr i
    end
    else begin
      flush_space ();
      Buffer.add_char buf c;
      last_hash := false;
      incr i
    end
  done;
  Buffer.contents buf

let diff_shape lines =
  let normalized = String.concat "\n" (List.map normalize_line lines) in
  String.sub (Digest.to_hex (Digest.string normalized)) 0 8

let signature_of ~defense_name ~(status : status)
    ~(leak_class : Analysis.leak_class option) ~(ctrace : ctrace_summary)
    ~utrace_diff =
  let cls =
    match status, leak_class with
    | Not_reproduced, _ -> "dead"
    | Reproduced, Some c -> short_class c
    | Reproduced, None -> "unknown"
  in
  let div =
    if ctrace.equal then "eq"
    else
      match ctrace.first_divergence with
      | Some (i, _, _) -> string_of_int i
      | None -> "len"
  in
  Printf.sprintf "%s/%s/ct:%s/sh:%s" defense_name cls div
    (diff_shape utrace_diff)

(* ------------------------------------------------------------------ *)
(* Explain: one finding from one stored violation                      *)
(* ------------------------------------------------------------------ *)

let obs_to_string o = Format.asprintf "%a" Observation.pp o

(* First position where the two observation lists disagree, with both
   sides printed (a trace ending early shows as "<end>"). *)
let first_divergence ta tb =
  let rec go i a b =
    match a, b with
    | [], [] -> None
    | oa :: a', ob :: b' ->
        if Observation.equal oa ob then go (i + 1) a' b'
        else Some (i, obs_to_string oa, obs_to_string ob)
    | oa :: _, [] -> Some (i, obs_to_string oa, "<end>")
    | [], ob :: _ -> Some (i, "<end>", obs_to_string ob)
  in
  go 0 ta tb

let summarize_ctraces (ra : Leakage_model.result) (rb : Leakage_model.result) =
  {
    length_a = List.length ra.Leakage_model.ctrace;
    length_b = List.length rb.Leakage_model.ctrace;
    hash_a = ra.Leakage_model.ctrace_hash;
    hash_b = rb.Leakage_model.ctrace_hash;
    equal =
      Observation.equal_trace ra.Leakage_model.ctrace rb.Leakage_model.ctrace;
    first_divergence =
      first_divergence ra.Leakage_model.ctrace rb.Leakage_model.ctrace;
  }

let uarch_only =
  Obs.Snapshot.filter (fun n ->
      String.length n >= 6 && String.sub n 0 6 = "uarch.")

let defense_of (s : Violation_io.stored) =
  Option.value
    (Defense.find s.Violation_io.defense_name)
    ~default:Defense.baseline

let contract_of defense (s : Violation_io.stored) =
  Option.value
    (Contract.find s.Violation_io.contract_name)
    ~default:defense.Defense.contract

(* An explicit [sim_config] overrides everything (single-defense streams);
   [l1d_ways]/[mshrs] amplify each finding's own defense config, which is
   the only knob that makes sense across a multi-preset stream. *)
let resolve_config ?l1d_ways ?mshrs ?sim_config defense =
  match sim_config with
  | Some c -> Some c
  | None -> (
      match l1d_ways, mshrs with
      | None, None -> None
      | _ -> Some (Defense.config ?l1d_ways ?mshrs defense))

let explain ?l1d_ways ?mshrs ?sim_config (s : Violation_io.stored) : finding =
  let defense = defense_of s in
  let contract = contract_of defense s in
  let sim_config = resolve_config ?l1d_ways ?mshrs ?sim_config defense in
  let flat = s.Violation_io.program in
  let metrics = Obs.create () in
  let ex =
    Executor.create ?sim_config ~mode:Executor.Opt defense
      (Stats.create ~metrics ())
  in
  Executor.start_program ex;
  (* run A once fresh, only to capture a starting context both inputs can
     then share — exactly the validation discipline of the fuzzer *)
  let oa0 = Executor.run ex flat s.Violation_io.input_a in
  let ctx = oa0.Executor.context in
  let snap () = Obs.Snapshot.of_registry metrics in
  let s0 = snap () in
  let oa = Executor.run ex ~context:ctx ~log:true flat s.Violation_io.input_a in
  let s1 = snap () in
  let ob = Executor.run ex ~context:ctx ~log:true flat s.Violation_io.input_b in
  let s2 = snap () in
  let counters_a = uarch_only (Obs.Snapshot.diff ~older:s0 ~newer:s1) in
  let counters_b = uarch_only (Obs.Snapshot.diff ~older:s1 ~newer:s2) in
  let ra =
    Leakage_model.collect contract flat (Input.to_state s.Violation_io.input_a)
  in
  let rb =
    Leakage_model.collect contract flat (Input.to_state s.Violation_io.input_b)
  in
  let reproduced = not (Utrace.equal oa.Executor.trace ob.Executor.trace) in
  let status = if reproduced then Reproduced else Not_reproduced in
  let ctrace = summarize_ctraces ra rb in
  let utrace_diff = Utrace.diff oa.Executor.trace ob.Executor.trace in
  let leak_class =
    if reproduced then
      Some (Analysis.classify ~defense oa.Executor.events ob.Executor.events)
    else None
  in
  {
    stored = s;
    defense_name = s.Violation_io.defense_name;
    contract_name = s.Violation_io.contract_name;
    program_text = Format.asprintf "%a" Program.pp_flat flat;
    status;
    signature =
      signature_of ~defense_name:s.Violation_io.defense_name ~status
        ~leak_class ~ctrace ~utrace_diff;
    leak_class;
    ctrace;
    utrace_diff;
    counters_a;
    counters_b;
    counter_delta = Obs.Snapshot.diff ~older:counters_a ~newer:counters_b;
    mechanism = None;
    minimized = None;
  }

let of_violation ?sim_config (v : Violation.t) : finding =
  explain ?sim_config (Violation_io.of_violation v)

let sign ?boot_insts ?sim_config (v : Violation.t) =
  let defense =
    Option.value
      (Defense.find v.Violation.defense_name)
      ~default:Defense.baseline
  in
  let ex =
    Executor.create ?boot_insts ?sim_config ~mode:Executor.Opt defense
      (Stats.create ())
  in
  Executor.start_program ex;
  let c = Analysis.classify_violation ex v in
  (Violation.with_signature (Analysis.class_name c) v, c)

(* ------------------------------------------------------------------ *)
(* Bisection: name the responsible mechanism                           *)
(* ------------------------------------------------------------------ *)

(* Single-flip variants of the configuration under test.  The defense's
   own [patched] bug flags come first — they are the most specific
   explanation a bisection can give — followed by generic capacity and
   feature knobs whose relief tells a coarser story (contention,
   conflict pressure, prefetching, cleanup timing). *)
let flip_candidates (base : Config.t) =
  let flag name desc d = (name, Patched_flag, desc, Config.with_defense d base) in
  let knob name desc cfg = (name, Config_knob, desc, cfg) in
  let flags =
    match base.Config.defense with
    | Config.Baseline | Config.Delay_on_miss | Config.Ghostminion -> []
    | Config.Invisispec c ->
        if c.Config.iv_patched_eviction then []
        else
          [
            flag "iv_patched_eviction"
              "UV1 fix: speculative loads no longer trigger L1 replacements"
              (Config.Invisispec { Config.iv_patched_eviction = true });
          ]
    | Config.Cleanupspec c ->
        (if c.Config.cs_patched_store_cleanup then []
         else
           [
             flag "cs_patched_store_cleanup"
               "UV3 fix: record cleanup metadata for speculative stores"
               (Config.Cleanupspec
                  { c with Config.cs_patched_store_cleanup = true });
           ])
        @
        if c.Config.cs_patched_split_cleanup then []
        else
          [
            flag "cs_patched_split_cleanup"
              "UV4 fix: track both halves of line-crossing requests"
              (Config.Cleanupspec
                 { c with Config.cs_patched_split_cleanup = true });
          ]
    | Config.Stt c ->
        if c.Config.stt_patched_store_tlb then []
        else
          [
            flag "stt_patched_store_tlb"
              "KV3 fix: block TLB fills by tainted-address stores"
              (Config.Stt { Config.stt_patched_store_tlb = true });
          ]
    | Config.Speclfb c ->
        if c.Config.lfb_patched_first_load then []
        else
          [
            flag "lfb_patched_first_load"
              "UV6 fix: keep the first speculative load in the LSQ protected"
              (Config.Speclfb { Config.lfb_patched_first_load = true });
          ]
  in
  let knobs =
    (if base.Config.nl_prefetcher then
       [
         knob "nl_prefetcher=off"
           "disabling the next-line prefetcher kills the channel \
            (prefetch trained by a transient access)"
           { base with Config.nl_prefetcher = false };
       ]
     else [])
    @ (match base.Config.defense with
      | Config.Cleanupspec _ ->
          [
            knob "cleanup_latency=0"
              "instantaneous rollback cleanup kills the channel \
               (cleanup-latency timing)"
              { base with Config.cleanup_latency = 0 };
          ]
      | _ -> [])
    @ [
        knob "mshrs*4"
          "relieving MSHR contention kills the channel (same-core \
           speculative interference)"
          { base with Config.mshrs = base.Config.mshrs * 4 };
        knob "l1d_ways*2"
          "relieving L1D conflict pressure kills the channel \
           (eviction-based)"
          { base with Config.l1d_ways = base.Config.l1d_ways * 2 };
      ]
  in
  flags @ knobs

let bisect ?l1d_ways ?mshrs ?sim_config (f : finding) : finding =
  match f.status with
  | Not_reproduced -> f
  | Reproduced ->
      let s = f.stored in
      let defense = defense_of s in
      let contract = contract_of defense s in
      let base =
        match resolve_config ?l1d_ways ?mshrs ?sim_config defense with
        | Some c -> c
        | None -> Defense.config defense
      in
      let still cfg =
        Minimize.still_violates ~defense ~contract ~sim_config:(Some cfg)
          s.Violation_io.program s.Violation_io.input_a s.Violation_io.input_b
      in
      (* a bisection is only meaningful against a fresh-context baseline
         that still violates; context-bound findings keep [mechanism = None] *)
      if not (still base) then f
      else begin
        let tried = ref 0 in
        let rec go = function
          | [] -> None
          | (name, kind, desc, cfg) :: rest ->
              incr tried;
              if not (still cfg) then
                Some
                  {
                    mech_name = name;
                    mech_kind = kind;
                    mech_description = desc;
                    flips_tried = !tried;
                  }
              else go rest
        in
        { f with mechanism = go (flip_candidates base) }
      end

let shrink ?l1d_ways ?mshrs ?sim_config (f : finding) : finding =
  match f.status with
  | Not_reproduced -> f
  | Reproduced ->
      let sim_config =
        resolve_config ?l1d_ways ?mshrs ?sim_config (defense_of f.stored)
      in
      let v = Violation_io.rehydrate ?sim_config f.stored in
      { f with minimized = Some (Minimize.minimize ?sim_config v) }

(* ------------------------------------------------------------------ *)
(* Clustering                                                          *)
(* ------------------------------------------------------------------ *)

type cluster = {
  rank : int;
  cluster_signature : string;
  representative : finding;
  members : string list;
  count : int;
}

(* Content-only key for the deterministic representative choice: the
   member that sorts smallest wins, whatever order the stream arrived
   in. *)
let member_key (f : finding) =
  let id =
    match f.stored.Violation_io.identity with
    | Some (c, a, b) -> Printf.sprintf "%Lx|%Lx|%Lx" c a b
    | None -> ""
  in
  (String.length f.program_text, f.program_text, id)

let cluster (findings : (string * finding) list) : cluster list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((_, f) as m) ->
      match f.status with
      | Not_reproduced -> ()
      | Reproduced ->
          let ms = Option.value (Hashtbl.find_opt tbl f.signature) ~default:[] in
          Hashtbl.replace tbl f.signature (m :: ms))
    findings;
  let unranked =
    Hashtbl.fold
      (fun signature ms acc ->
        let representative =
          snd
            (List.fold_left
               (fun best m ->
                 if compare (member_key (snd m)) (member_key (snd best)) < 0
                 then m
                 else best)
               (List.hd ms) (List.tl ms))
        in
        ( signature,
          representative,
          List.sort compare (List.map fst ms),
          List.length ms )
        :: acc)
      tbl []
  in
  let ranked =
    List.sort
      (fun (s1, _, _, n1) (s2, _, _, n2) ->
        if n1 <> n2 then compare n2 n1 else compare s1 s2)
      unranked
  in
  List.mapi
    (fun i (cluster_signature, representative, members, count) ->
      { rank = i + 1; cluster_signature; representative; members; count })
    ranked

type report = {
  clusters : cluster list;
  total : int;
  not_reproduced : int;
}

(* ------------------------------------------------------------------ *)
(* Loading the stream                                                  *)
(* ------------------------------------------------------------------ *)

let first_line path =
  try In_channel.with_open_text path In_channel.input_line
  with Sys_error _ -> None

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Poc parsing lives below; forward through a reference to keep the file
   in pipeline order without mutual recursion boilerplate. *)
let poc_stored_of_file : (string -> Violation_io.stored) ref =
  ref (fun _ -> assert false)

let stored_of_file path : (string * Violation_io.stored) list =
  match first_line path with
  | Some l when starts_with "amulet-violation" l -> (
      try [ (path, Violation_io.load path) ]
      with Violation_io.Format_error _ | Sys_error _ -> [])
  | Some l when starts_with "amulet-poc" l -> (
      try [ (path, !poc_stored_of_file path) ]
      with Violation_io.Format_error _ | Sys_error _ -> [])
  | Some l when starts_with "amulet-journal" l -> (
      try
        let j = Journal.load path in
        List.mapi
          (fun i s -> (Printf.sprintf "%s#%d" path i, s))
          j.Journal.violations
      with Journal.Format_error _ | Sys_error _ -> [])
  | _ -> []  (* quarantine files, corrupt entries, foreign formats *)

let load (paths : string list) : (string * Violation_io.stored) list =
  List.concat_map
    (fun path ->
      if not (Sys.file_exists path) then
        failwith ("triage: no such source: " ^ path)
      else if Sys.is_directory path then begin
        let entries = Sys.readdir path in
        Array.sort compare entries;
        Array.to_list entries
        |> List.concat_map (fun e ->
               let p = Filename.concat path e in
               if Sys.is_directory p then [] else stored_of_file p)
      end
      else stored_of_file path)
    paths

(* ------------------------------------------------------------------ *)
(* The pipeline                                                        *)
(* ------------------------------------------------------------------ *)

(* The optional flags of [run] shadow the stage functions by design (the
   API reads [~bisect:false]); keep the stages reachable under aliases. *)
let bisect_stage = bisect
let shrink_stage = shrink

let run ?l1d_ways ?mshrs ?sim_config ?(bisect = true) ?(shrink = false)
    ?(progress = fun (_ : string) -> ())
    (sources : (string * Violation_io.stored) list) : report =
  let n = List.length sources in
  progress (Printf.sprintf "explaining %d finding(s)" n);
  let findings =
    List.map
      (fun (origin, s) -> (origin, explain ?l1d_ways ?mshrs ?sim_config s))
      sources
  in
  let dead =
    List.length
      (List.filter (fun (_, f) -> f.status = Not_reproduced) findings)
  in
  let clusters = cluster findings in
  progress
    (Printf.sprintf "%d distinct cluster(s), %d not reproduced"
       (List.length clusters) dead);
  let refine c =
    let rep = c.representative in
    let rep =
      if bisect then begin
        progress
          (Printf.sprintf "bisecting cluster %d (%s)" c.rank
             c.cluster_signature);
        bisect_stage ?l1d_ways ?mshrs ?sim_config rep
      end
      else rep
    in
    let rep =
      if shrink then begin
        progress (Printf.sprintf "shrinking cluster %d" c.rank);
        shrink_stage ?l1d_ways ?mshrs ?sim_config rep
      end
      else rep
    in
    { c with representative = rep }
  in
  { clusters = List.map refine clusters; total = n; not_reproduced = dead }

(* ------------------------------------------------------------------ *)
(* JSON (amulet.triage/1)                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let mechanism_json m =
  Printf.sprintf
    "{\"name\":\"%s\",\"kind\":\"%s\",\"description\":\"%s\",\"flips_tried\":%d}"
    (json_escape m.mech_name)
    (mechanism_kind_name m.mech_kind)
    (json_escape m.mech_description)
    m.flips_tried

let finding_to_json (f : finding) =
  let buf = Buffer.create 1024 in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{";
  add "\"defense\":%s," (str f.defense_name);
  add "\"contract\":%s," (str f.contract_name);
  add "\"status\":%s," (str (status_name f.status));
  add "\"signature\":%s," (str f.signature);
  add "\"leak_class\":%s,"
    (match f.leak_class with
    | Some c -> str (Analysis.class_name c)
    | None -> "null");
  add
    "\"contract_traces\":{\"length_a\":%d,\"length_b\":%d,\"hash_a\":%s,\"hash_b\":%s,\"equal\":%b,\"first_divergence\":%s},"
    f.ctrace.length_a f.ctrace.length_b
    (str (Printf.sprintf "0x%Lx" f.ctrace.hash_a))
    (str (Printf.sprintf "0x%Lx" f.ctrace.hash_b))
    f.ctrace.equal
    (match f.ctrace.first_divergence with
    | None -> "null"
    | Some (i, a, b) ->
        Printf.sprintf "{\"index\":%d,\"a\":%s,\"b\":%s}" i (str a) (str b));
  add "\"utrace_diff\":[";
  List.iteri
    (fun i l ->
      if i > 0 then add ",";
      add "%s" (str l))
    f.utrace_diff;
  add "],";
  add "\"mechanism\":%s,"
    (match f.mechanism with Some m -> mechanism_json m | None -> "null");
  add "\"minimized\":%s,"
    (match f.minimized with
    | Some r ->
        Printf.sprintf "{\"removed\":%d,\"kept\":%d}" r.Minimize.removed
          r.Minimize.kept
    | None -> "null");
  add "\"counters_a\":%s," (Obs.Snapshot.to_json f.counters_a);
  add "\"counters_b\":%s," (Obs.Snapshot.to_json f.counters_b);
  add "\"counter_delta\":%s," (Obs.Snapshot.to_json f.counter_delta);
  add "\"program\":%s" (str f.program_text);
  add "}";
  Buffer.contents buf

let report_to_json (r : report) =
  let buf = Buffer.create 4096 in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{";
  add "\"schema\":\"amulet.triage/1\",";
  add "\"total\":%d,\"not_reproduced\":%d,\"distinct_clusters\":%d," r.total
    r.not_reproduced
    (List.length r.clusters);
  add "\"clusters\":[";
  List.iteri
    (fun i c ->
      if i > 0 then add ",";
      add "{\"rank\":%d,\"signature\":%s,\"count\":%d," c.rank
        (str c.cluster_signature) c.count;
      add "\"mechanism\":%s,"
        (match c.representative.mechanism with
        | Some m -> mechanism_json m
        | None -> "null");
      add "\"members\":[";
      List.iteri
        (fun j m ->
          if j > 0 then add ",";
          add "%s" (str m))
        c.members;
      add "],";
      add "\"finding\":%s}" (finding_to_json c.representative))
    r.clusters;
  add "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_finding fmt (f : finding) =
  Format.fprintf fmt "defense: %s  contract: %s@." f.defense_name
    f.contract_name;
  Format.fprintf fmt "status: %s%s@." (status_name f.status)
    (match f.leak_class with
    | Some c -> "  class: " ^ Analysis.class_name c
    | None -> "");
  Format.fprintf fmt "signature: %s@." f.signature;
  (match f.mechanism with
  | Some m ->
      Format.fprintf fmt "mechanism: %s (%s, flip %d) — %s@." m.mech_name
        (mechanism_kind_name m.mech_kind)
        m.flips_tried m.mech_description
  | None -> ());
  (match f.minimized with
  | Some r ->
      Format.fprintf fmt "minimized: %d removed, %d kept@." r.Minimize.removed
        r.Minimize.kept
  | None -> ());
  Format.fprintf fmt "contract traces: %d vs %d observations, %s@."
    f.ctrace.length_a f.ctrace.length_b
    (if f.ctrace.equal then "equal (as a violation requires)"
     else "DIFFERENT — not a contract violation");
  (match f.ctrace.first_divergence with
  | Some (i, a, b) ->
      Format.fprintf fmt "  first divergence at %d: %s vs %s@." i a b
  | None -> ());
  (match f.utrace_diff with
  | [] -> Format.fprintf fmt "utrace diff: (none)@."
  | lines ->
      Format.fprintf fmt "utrace diff:@.";
      List.iter (fun l -> Format.fprintf fmt "  %s@." l) lines);
  Format.fprintf fmt "counter delta (B - A):@.%a" Obs.Snapshot.pp
    f.counter_delta

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "triage: %d finding(s), %d distinct cluster(s), %d not reproduced@."
    r.total
    (List.length r.clusters)
    r.not_reproduced;
  if r.clusters <> [] then begin
    Format.fprintf fmt "  %4s %5s %-14s %-38s %s@." "rank" "count" "defense"
      "signature" "mechanism";
    List.iter
      (fun c ->
        Format.fprintf fmt "  %4d %5d %-14s %-38s %s@." c.rank c.count
          c.representative.defense_name c.cluster_signature
          (match c.representative.mechanism with
          | Some m -> m.mech_name
          | None -> "-"))
      r.clusters
  end

(* ------------------------------------------------------------------ *)
(* Standalone PoC files                                                *)
(* ------------------------------------------------------------------ *)

module Poc = struct
  type t = {
    stored : Violation_io.stored;
    signature : string;
    leak_class : string option;
    mechanism : (string * mechanism_kind) option;
    cluster_size : int;
    expected_equal_ctrace : bool;
    expected_ctrace_hash : int64;
    expected_diff : string list;
  }

  let of_cluster (c : cluster) : t =
    let f = c.representative in
    {
      stored =
        { f.stored with Violation_io.signature = Some c.cluster_signature };
      signature = c.cluster_signature;
      leak_class = Option.map Analysis.class_name f.leak_class;
      mechanism =
        Option.map (fun m -> (m.mech_name, m.mech_kind)) f.mechanism;
      cluster_size = c.count;
      expected_equal_ctrace = f.ctrace.equal;
      expected_ctrace_hash = f.ctrace.hash_a;
      expected_diff = f.utrace_diff;
    }

  let hex_of_bytes b =
    let buf = Buffer.create (2 * Bytes.length b) in
    Bytes.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
      b;
    Buffer.contents buf

  (* Identical layout to {!Violation_io}'s input sections, so the core of
     a PoC file parses with the violation parser. *)
  let add_input buf label (i : Input.t) =
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "[%s.regs]\n" label;
    Array.iteri
      (fun k v -> add "%s=0x%Lx\n" (Reg.name (Reg.of_index k)) v)
      i.Input.regs;
    add "[%s.mem]\n" label;
    let hex = hex_of_bytes i.Input.mem in
    let n = String.length hex in
    let rec lines pos =
      if pos < n then begin
        add "%s\n" (String.sub hex pos (min 128 (n - pos)));
        lines (pos + 128)
      end
    in
    lines 0

  let to_string (p : t) =
    let buf = Buffer.create 4096 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let s = p.stored in
    add "amulet-poc 1\n";
    add "[meta]\n";
    add "defense=%s\n" s.Violation_io.defense_name;
    add "contract=%s\n" s.Violation_io.contract_name;
    add "signature=%s\n" p.signature;
    (match p.leak_class with Some c -> add "class=%s\n" c | None -> ());
    (match p.mechanism with
    | Some (name, kind) ->
        add "mechanism=%s\n" name;
        add "mechanism_kind=%s\n" (mechanism_kind_name kind)
    | None -> ());
    add "cluster_size=%d\n" p.cluster_size;
    (match s.Violation_io.identity with
    | Some (c, a, b) -> add "identity=0x%Lx,0x%Lx,0x%Lx\n" c a b
    | None -> ());
    add "reproduce=amulet reproduce <this-file>\n";
    add "[program]\n";
    Array.iter
      (fun inst -> add "%s\n" (Inst.to_string inst))
      s.Violation_io.program.Program.code;
    add_input buf "input_a" s.Violation_io.input_a;
    add_input buf "input_b" s.Violation_io.input_b;
    add "[expected.ctrace]\n";
    add "equal=%b\n" p.expected_equal_ctrace;
    add "hash=0x%Lx\n" p.expected_ctrace_hash;
    add "[expected.utrace]\n";
    List.iter (fun l -> add "  %s\n" l) p.expected_diff;
    Buffer.contents buf

  let parse (lines : string list) : t =
    (match lines with
    | magic :: _ when starts_with "amulet-poc" magic -> ()
    | _ -> raise (Violation_io.Format_error "missing PoC magic header"));
    (* split off the [expected.*] tail; what precedes it is a valid
       violation block once the magic line is swapped *)
    let rec split core = function
      | [] -> (List.rev core, [])
      | l :: rest when starts_with "[expected." l ->
          (List.rev core, l :: rest)
      | l :: rest -> split (l :: core) rest
    in
    let core, expected = split [] (List.tl lines) in
    let stored = Violation_io.parse ("amulet-violation 1" :: core) in
    (* the extra meta keys the violation parser tolerates but ignores *)
    let meta = Hashtbl.create 8 in
    (try
       List.iter
         (fun l ->
           if l = "[program]" then raise Exit
           else
             match String.index_opt l '=' with
             | Some eq ->
                 Hashtbl.replace meta (String.sub l 0 eq)
                   (String.sub l (eq + 1) (String.length l - eq - 1))
             | None -> ())
         core
     with Exit -> ());
    let section = ref "" in
    let equal = ref true in
    let hash = ref 0L in
    let diff = ref [] in
    List.iter
      (fun l ->
        if starts_with "[" l then section := l
        else
          match !section with
          | "[expected.ctrace]" -> (
              match String.index_opt l '=' with
              | Some eq -> (
                  let k = String.sub l 0 eq
                  and v = String.sub l (eq + 1) (String.length l - eq - 1) in
                  match k with
                  | "equal" -> equal := v = "true"
                  | "hash" -> (
                      match Int64.of_string_opt v with
                      | Some h -> hash := h
                      | None ->
                          raise
                            (Violation_io.Format_error ("bad hash: " ^ v)))
                  | _ -> ())
              | None -> ())
          | "[expected.utrace]" ->
              if String.length l >= 2 && String.sub l 0 2 = "  " then
                diff := String.sub l 2 (String.length l - 2) :: !diff
              else if String.trim l <> "" then
                raise
                  (Violation_io.Format_error ("bad expected diff line: " ^ l))
          | _ -> ())
      expected;
    let signature =
      match stored.Violation_io.signature with
      | Some s -> s
      | None -> raise (Violation_io.Format_error "PoC without signature")
    in
    let mechanism =
      match Hashtbl.find_opt meta "mechanism" with
      | None -> None
      | Some name ->
          let kind =
            match Hashtbl.find_opt meta "mechanism_kind" with
            | Some "patched-flag" -> Patched_flag
            | Some "config-knob" -> Config_knob
            | Some k ->
                raise
                  (Violation_io.Format_error ("bad mechanism kind: " ^ k))
            | None -> Config_knob
          in
          Some (name, kind)
    in
    {
      stored;
      signature;
      leak_class = Hashtbl.find_opt meta "class";
      mechanism;
      cluster_size =
        (match Hashtbl.find_opt meta "cluster_size" with
        | Some n -> ( match int_of_string_opt n with Some n -> n | None -> 1)
        | None -> 1);
      expected_equal_ctrace = !equal;
      expected_ctrace_hash = !hash;
      expected_diff = List.rev !diff;
    }

  let load path : t =
    parse (In_channel.with_open_text path In_channel.input_lines)

  let write ~dir (c : cluster) : string =
    Violation_io.mkdir_p dir;
    let path =
      Filename.concat dir
        (Printf.sprintf "poc%d_%s.amulet" c.rank
           c.representative.defense_name)
    in
    let out = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out out)
      (fun () -> output_string out (to_string (of_cluster c)));
    path

  let replay ?l1d_ways ?mshrs ?sim_config (p : t) =
    let f = explain ?l1d_ways ?mshrs ?sim_config p.stored in
    match f.status with
    | Not_reproduced -> `Not_reproduced
    | Reproduced ->
        if f.utrace_diff = p.expected_diff then `Match
        else `Diff_mismatch f.utrace_diff
end

let () = poc_stored_of_file := fun path -> (Poc.load path).Poc.stored
