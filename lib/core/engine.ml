(** The execution-engine abstraction: a uniform create / warm / run /
    run_batch / stats surface over the executor, so the fuzzer (and any
    future sharded or multi-process backend) depends on a signature rather
    than a concrete executor wiring.

    Two implementations ship today, both thin wrappers over {!Executor}
    differing only in backend:
    - {b naive} rebuilds the simulator whenever pristine state is needed
      (the paper's baseline cost model);
    - {b pooled} boots one simulator per engine, checkpoints the post-boot
      state and rewinds per test case — the warm-state reuse behind the
      paper's 10–100× executor speedup.  Trace-for-trace identical to
      naive by construction. *)

open Amulet_isa
open Amulet_uarch
open Amulet_defenses

type kind = Naive | Pooled

let kind_name = function Naive -> "naive" | Pooled -> "pooled"

type stats = {
  engine : string;
  sims_created : int;  (** full simulator builds (warm boots) paid *)
  snapshot_restores : int;  (** checkpoint rewinds performed instead *)
  batches : int;
  inputs_run : int;  (** inputs executed through {!run_batch} *)
  programs_decoded : int;
      (** pre-decode cache fills; with amortization working this tracks
          distinct programs, not [inputs_run] *)
}

(** Result of one batched pass: per-input outcomes in input order.  A
    simulator fault stops the batch — later slots stay [None] — and is
    reported with the offending input. *)
type batch = {
  outcomes : Executor.outcome option array;
  batch_fault : (Fault.t * Input.t) option;
}

module type S = sig
  type t

  val name : string

  val create :
    ?boot_insts:int ->
    ?format:Utrace.format ->
    ?sim_config:Config.t ->
    ?chaos:Fault.injector ->
    mode:Executor.mode ->
    Defense.t ->
    Stats.t ->
    t

  val warm : t -> unit
  (** Pay any one-time startup cost now rather than on the first test case. *)

  val run :
    t -> ?context:Simulator.context -> ?log:bool -> Program.flat -> Input.t ->
    Executor.outcome
  (** Single test case; see {!Executor.run}. *)

  val run_batch : t -> ?check:(unit -> unit) -> Program.flat -> Input.t array -> batch
  (** Execute all inputs of one test program against a warm simulator in a
      single pass.  [check] runs before each input (deadline hook); whatever
      it raises propagates. *)

  val stats : t -> stats
end

module Make (B : sig
  val backend : Executor.backend
  val name : string
end) : S = struct
  open Amulet_obs

  type t = {
    ex : Executor.t;
    mutable batches : int;
    mutable inputs_run : int;
    m_batches : Obs.counter;
    m_inputs : Obs.counter;
    m_batch_latency : Obs.histogram;
  }

  let name = B.name

  let create ?boot_insts ?format ?sim_config ?chaos ~mode defense stats =
    let metrics = Stats.registry stats in
    {
      ex =
        Executor.create ?boot_insts ?format ?sim_config ?chaos
          ~backend:B.backend ~mode defense stats;
      batches = 0;
      inputs_run = 0;
      m_batches = Obs.counter metrics "engine.batches";
      m_inputs = Obs.counter metrics "engine.inputs_run";
      m_batch_latency = Obs.histogram metrics "engine.batch.latency";
    }

  let warm t = Executor.warm t.ex

  let run t ?context ?log flat input = Executor.run t.ex ?context ?log flat input

  let run_batch t ?(check = fun () -> ()) flat inputs =
    let started = Obs.Clock.now_s () in
    Executor.start_program t.ex;
    t.batches <- t.batches + 1;
    Obs.incr t.m_batches;
    let n = Array.length inputs in
    let outcomes = Array.make n None in
    let fault = ref None in
    let i = ref 0 in
    while !fault = None && !i < n do
      check ();
      let o = Executor.run t.ex flat inputs.(!i) in
      t.inputs_run <- t.inputs_run + 1;
      Obs.incr t.m_inputs;
      outcomes.(!i) <- Some o;
      (match o.Executor.run_fault with
      | Some f -> fault := Some (f, inputs.(!i))
      | None -> ());
      incr i
    done;
    Obs.observe t.m_batch_latency (Obs.Clock.elapsed_s ~since:started);
    { outcomes; batch_fault = !fault }

  let stats t =
    {
      engine = B.name;
      sims_created = Executor.sims_created t.ex;
      snapshot_restores = Executor.restores t.ex;
      batches = t.batches;
      inputs_run = t.inputs_run;
      programs_decoded = Executor.decodes t.ex;
    }
end

module Naive_engine = Make (struct
  let backend = Executor.Rebuild
  let name = "naive"
end)

module Pooled_engine = Make (struct
  let backend = Executor.Pool
  let name = "pooled"
end)

(* ------------------------------------------------------------------ *)
(* Packed engines (runtime-selected implementation)                    *)
(* ------------------------------------------------------------------ *)

type t = Packed : (module S with type t = 'a) * 'a -> t

let create ?boot_insts ?format ?sim_config ?chaos ?(kind = Pooled) ~mode
    defense stats =
  match kind with
  | Naive ->
      Packed
        ( (module Naive_engine),
          Naive_engine.create ?boot_insts ?format ?sim_config ?chaos ~mode
            defense stats )
  | Pooled ->
      Packed
        ( (module Pooled_engine),
          Pooled_engine.create ?boot_insts ?format ?sim_config ?chaos ~mode
            defense stats )

let name (Packed ((module M), _)) = M.name
let warm (Packed ((module M), e)) = M.warm e

let run (Packed ((module M), e)) ?context ?log flat input =
  M.run e ?context ?log flat input

let run_batch (Packed ((module M), e)) ?check flat inputs =
  M.run_batch e ?check flat inputs

let stats (Packed ((module M), e)) = M.stats e
