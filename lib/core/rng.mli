(** Deprecated alias for {!Amulet_corpus.Rng}, kept so existing
    [Amulet.Rng] callers keep compiling.  The PRNG moved into the
    [amulet_corpus] library so the corpus/mutation layer (which sits below
    [amulet]) can share the deterministic stream. *)

include module type of struct
  include Amulet_corpus.Rng
end
