(** Violation forensics: re-execute a stored violation's two inputs from an
    identical microarchitectural starting context with telemetry enabled,
    and report everything that distinguishes the diverging executions —
    the contract-trace comparison, the microarchitectural trace diff, the
    hardware-counter delta, and the root-cause classification. *)

type ctrace_summary = {
  length_a : int;
  length_b : int;
  hash_a : int64;
  hash_b : int64;
  equal : bool;  (** equal contract traces: the violation's precondition *)
  first_divergence : (int * string * string) option;
      (** position and printed observations where the traces first differ
          (including one trace ending early, shown as ["<end>"]) *)
}

type report = {
  defense_name : string;
  contract_name : string;
  program_text : string;
  input_a : Input.t;
  input_b : Input.t;
  reproduced : bool;
      (** the microarchitectural traces still differ when both inputs run
          from the same starting context *)
  ctrace : ctrace_summary;
  utrace_diff : string list;  (** {!Utrace.diff} of the two traces *)
  leak_class : Analysis.leak_class option;
      (** root-cause signature; [None] when not reproduced *)
  counters_a : Amulet_obs.Obs.Snapshot.t;
      (** [uarch.*] hardware-counter delta over execution A *)
  counters_b : Amulet_obs.Obs.Snapshot.t;
  counter_delta : Amulet_obs.Obs.Snapshot.t;
      (** [counters_b - counters_a]: how the diverging execution differs in
          fetches, squashes, misses, stalls, ... *)
}

val explain :
  ?sim_config:Amulet_uarch.Config.t -> Violation_io.stored -> report
(** Rebuild the violation's executions: run input A fresh to obtain a
    starting context, then re-run both inputs from that exact context with
    live telemetry, collect both contract traces, and classify. *)

val of_violation :
  ?sim_config:Amulet_uarch.Config.t -> Violation.t -> report
(** As {!explain}, for an in-memory violation (its stored projection). *)

val pp : Format.formatter -> report -> unit

val to_json : report -> string
(** Serialize the report (hand-rolled JSON, no external dependency). *)
