(** Deprecated façade over {!Triage}.

    Violation forensics was absorbed into the triage pipeline: what used
    to be the bespoke [Forensics.report] is now {!Triage.finding}, one
    record (and one JSON schema, [amulet.triage/1]) shared by
    [amulet explain], [amulet triage] and PoC replay.  These aliases keep
    existing code compiling for one release; new code should call
    {!Triage} directly. *)

type ctrace_summary = Triage.ctrace_summary = {
  length_a : int;
  length_b : int;
  hash_a : int64;
  hash_b : int64;
  equal : bool;
  first_divergence : (int * string * string) option;
}
[@@ocaml.deprecated "Use Triage.ctrace_summary."]

type report = Triage.finding
[@@ocaml.deprecated "Use Triage.finding."]

val explain :
  ?sim_config:Amulet_uarch.Config.t -> Violation_io.stored -> Triage.finding
[@@ocaml.deprecated "Use Triage.explain."]

val of_violation :
  ?sim_config:Amulet_uarch.Config.t -> Violation.t -> Triage.finding
[@@ocaml.deprecated "Use Triage.of_violation."]

val pp : Format.formatter -> Triage.finding -> unit
[@@ocaml.deprecated "Use Triage.pp_finding."]

val to_json : Triage.finding -> string
[@@ocaml.deprecated "Use Triage.finding_to_json."]
