(** Testing campaigns: many fuzzing rounds against one defense, with the
    metrics the paper's evaluation reports (Tables 3, 4, 6). *)

open Amulet_defenses

type config = {
  fuzzer : Fuzzer.config;
  n_programs : int;
  seed : int;
  stop_after_violations : int option;
  classify : bool;
}

val default_config : config

type result = {
  defense : Defense.t;
  contract_name : string;
  violations : Violation.t list;
  violation_classes : (Analysis.leak_class * int) list;
  programs_run : int;
  discarded_programs : int;
  fault_counts : (Fault.cls * int) list;
      (** per-class counts of every discarded/contained fault *)
  quarantined : int;  (** test cases saved to the quarantine corpus *)
  test_cases : int;
  duration : float;
  throughput : float;  (** test cases per second *)
  detection_times : float list;
  metrics : Amulet_obs.Obs.Snapshot.t;
      (** telemetry delta accumulated over the campaign (empty unless a
          live registry was passed in) *)
}

val round_seed : int -> int -> int
(** [round_seed seed i]: the derived seed round [i] always runs on —
    identical whether the round is reached in one uninterrupted run or
    after any number of kill/resume cycles. *)

val run :
  ?on_violation:(Violation.t -> unit) ->
  ?journal_path:string ->
  ?checkpoint_every:int ->
  ?resume:Journal.t ->
  ?metrics:Amulet_obs.Obs.t ->
  config ->
  Defense.t ->
  result
(** [journal_path] checkpoints progress atomically every [checkpoint_every]
    (default 10) rounds and at campaign end; [resume] continues from a
    loaded checkpoint instead of round 0 and, with the same seed and
    config, ends with the same totals as an uninterrupted run.  [metrics]
    (default noop) is threaded down to the fuzzer/engine/simulator
    counters; the campaign-local delta lands in [result.metrics]. *)

val run_parallel :
  ?instances:int ->
  ?retries:int ->
  ?instance_cfg:(int -> config) ->
  ?metrics:Amulet_obs.Obs.t ->
  config ->
  Defense.t ->
  result
(** The paper's parallel methodology: independent instances on OCaml
    domains, distinct derived seeds, merged results (durations combine as
    the slowest instance's wall clock).  Supervised: crashed instances are
    recorded as {!Fault.Instance_crash}, restarted on fresh seeds up to
    [retries] (default 2) times, and the merge covers every surviving
    instance — one crashing domain no longer discards the others' results.
    If {e every} instance exhausts its retries, the call still returns a
    structured failed result: zero programs and violations, the crashes
    classified in [fault_counts] — never an exception.  [instance_cfg]
    overrides per-instance config derivation (supervision tests).
    [metrics], when live, gives each domain a private registry and merges
    the per-instance snapshots into [result.metrics]. *)

val detected : result -> bool
val avg_detection_time : result -> float option
val unique_violations : result -> int
val pp : Format.formatter -> result -> unit
