(** Testing campaigns: many fuzzing rounds against one defense, with the
    metrics the paper's evaluation reports (Tables 3, 4, 6).  Campaigns are
    described by a {!Run_spec.t}. *)

open Amulet_defenses

type result = {
  defense : Defense.t;
  contract_name : string;
  violations : Violation.t list;
  violation_classes : (Analysis.leak_class * int) list;
  programs_run : int;
  discarded_programs : int;
  fault_counts : (Fault.cls * int) list;
      (** per-class counts of every discarded/contained fault *)
  quarantined : int;  (** test cases saved to the quarantine corpus *)
  test_cases : int;
  duration : float;
  throughput : float;  (** test cases per second *)
  detection_times : float list;
  budget_exhausted : bool;
      (** the run stopped on [Run_spec.budget_ms], not by finishing its
          rounds or hitting [stop_after_violations] *)
  corpus : string option;
      (** final guided-fuzzing corpus checkpoint
          ({!Amulet_corpus.Corpus.to_string}); [None] for [Random] specs.
          Parallel runs keep the first surviving instance's corpus. *)
  metrics : Amulet_obs.Obs.Snapshot.t;
      (** telemetry delta accumulated over the campaign (empty unless a
          live registry was passed in) *)
}

val round_seed : int -> int -> int
(** [round_seed seed i]: the derived seed round [i] always runs on —
    identical whether the round is reached in one uninterrupted run or
    after any number of kill/resume cycles. *)

val run :
  ?on_violation:(Violation.t -> unit) ->
  ?on_round:(int -> unit) ->
  ?journal_path:string ->
  ?checkpoint_every:int ->
  ?resume:Journal.t ->
  ?metrics:Amulet_obs.Obs.t ->
  ?engine:Engine.t * Stats.t ->
  Run_spec.t ->
  result
(** Run [spec.rounds] fuzzing rounds against [spec.defense].
    [on_round] fires after every {e completed} round (and after any
    checkpoint that round triggered) with the rounds-completed count —
    distributed workers hang heartbeats and chaos kills off it.
    [journal_path] checkpoints progress atomically every [checkpoint_every]
    (default 10) rounds and at campaign end; [resume] continues from a
    loaded checkpoint instead of round 0 and, with the same spec, ends with
    the same totals as an uninterrupted run.  [metrics] (default noop) is
    threaded down to the fuzzer/engine/simulator counters; the
    campaign-local delta lands in [result.metrics].  [engine] injects a
    warmed engine + stats sink (see {!Fuzzer.create}); accounting is
    delta-based, so a sink shared across successive campaigns stays
    correct.  When [spec.budget_ms] runs out — even mid-round — the
    campaign stops at the last {e completed} round boundary with a clean
    final checkpoint ([result.budget_exhausted] set), so a resume replays
    the interrupted round instead of double-counting it. *)

val run_parallel :
  ?instances:int ->
  ?retries:int ->
  ?instance_spec:(int -> Run_spec.t) ->
  ?metrics:Amulet_obs.Obs.t ->
  Run_spec.t ->
  result
(** The paper's parallel methodology: independent instances on OCaml
    domains, distinct derived seeds, merged results (durations combine as
    the slowest instance's wall clock).  Supervised: crashed instances are
    recorded as {!Fault.Instance_crash}, restarted on fresh seeds up to
    [retries] (default 2) times, and the merge covers every surviving
    instance — one crashing domain no longer discards the others' results.
    If {e every} instance exhausts its retries, the call still returns a
    structured failed result: zero programs and violations, the crashes
    classified in [fault_counts] — never an exception.  [instance_spec]
    overrides per-instance spec derivation (supervision tests).
    [metrics], when live, gives each domain a private registry and merges
    the per-instance snapshots into [result.metrics]. *)

val detected : result -> bool
val avg_detection_time : result -> float option
val unique_violations : result -> int
val pp : Format.formatter -> result -> unit
