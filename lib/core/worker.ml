(** The worker side of the distributed campaign service ([amulet worker]):
    connect to a {!Coordinator}, run leased shards on a warmed pooled
    engine, stream heartbeats at round boundaries, degrade gracefully.

    Graceful degradation, concretely:
    - {e Transient connect failures} (coordinator not yet listening, socket
      not yet on disk) are retried with jittered exponential backoff; past
      [retries] attempts the worker gives up with a structured
      {!Gave_up} — the CLI maps it to the standard fault exit code 2.
    - {e Coordinator death mid-lease}: the campaign's journal was already
      checkpointed at the last round boundary, so the worker just stops
      ({!Coordinator_lost}); whoever adopts the shard next resumes it.
    - {e Torn journals} on lease adoption are quarantined by
      {!Journal.recover} (moved aside, shard restarted fresh) — a
      half-written checkpoint can never crash the fleet.
    - {e Shard-level crashes} (the campaign itself raising) are reported as
      [Quarantine_shard] so the coordinator abandons that shard instead of
      burning its retry budget on a poisoned input.

    Worker-level chaos (the [p_kill_worker] / [p_drop_message] /
    [p_delay_heartbeat] injector modes) also hangs off the round boundary:
    kills happen {e after} the checkpoint, so a chaos-killed shard resumes
    exactly where it died and the merged fingerprint is preserved — that is
    the invariant the service tests pin. *)

module Obs = Amulet_obs.Obs

type outcome =
  | Finished  (** coordinator sent [Shutdown]: clean end of the matrix *)
  | Coordinator_lost of string
      (** socket died mid-session; journals are checkpointed *)
  | Gave_up of { attempts : int }
      (** could not connect within the retry budget *)

let backoff_delay ~base_s ~cap_s ~attempt ~u =
  (* exponential with full decorrelation jitter in [0.5x, 1.5x): callers
     pass u uniform in [0,1) so the delay is pure and testable *)
  let exp = Float.min cap_s (base_s *. (2. ** float_of_int attempt)) in
  exp *. (0.5 +. u)

(* Raised out of the campaign's on_round hook when a heartbeat write hits a
   dead socket: the journal is checkpointed, so stopping is safe. *)
exception Coordinator_gone of string

let send fd msg =
  try Proto.write_msg fd msg
  with
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
  | Sys_error _
  ->
    raise (Coordinator_gone "write failed")

let connect_with_backoff ~socket ~retries ~backoff_s ~rng =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception
        Unix.Unix_error
          ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if attempt >= retries then Error (attempt + 1)
        else begin
          let u = float_of_int (Rng.int rng 1000) /. 1000. in
          Unix.sleepf (backoff_delay ~base_s:backoff_s ~cap_s:2. ~attempt ~u);
          go (attempt + 1)
        end
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go 0

let run_lease ~fd ~metrics ~chaos ~heartbeat_s ~cache (l : Proto.lease) =
  let resume =
    match l.Proto.journal_path with
    | None -> None
    | Some p -> (
        match Journal.recover p with
        | Journal.Resumed j -> Some j
        | Journal.Quarantined _ | Journal.Fresh -> None)
  in
  let hb_sent = ref (Obs.Clock.now_s ()) in
  let send_hb rounds =
    send fd (Proto.Heartbeat { lease_id = l.Proto.lease_id; rounds_done = rounds });
    hb_sent := Obs.Clock.now_s ()
  in
  (* an immediate heartbeat acknowledges the lease before the first (maybe
     slow) round completes *)
  send_hb 0;
  let maybe_hb rounds =
    if Obs.Clock.elapsed_s ~since:!hb_sent >= heartbeat_s then send_hb rounds
  in
  let on_round rounds =
    (* Campaign checkpointed before calling us, so a chaos kill here leaves
       an adoptable journal at this exact boundary *)
    match chaos with
    | None -> maybe_hb rounds
    | Some ch -> (
        match Fault.sample_worker ch with
        | `Kill_worker -> Unix._exit 137
        | `Drop_message -> (* swallow this boundary's heartbeat *) ()
        | `Delay_heartbeat ->
            Unix.sleepf 0.05;
            maybe_hb rounds
        | `None -> maybe_hb rounds)
  in
  let spec = l.Proto.spec in
  let engine = Sweep.Engine_cache.get cache ~metrics spec in
  match
    Campaign.run ?journal_path:l.Proto.journal_path
      ~checkpoint_every:l.Proto.checkpoint_every ?resume ~metrics ?engine
      ~on_round spec
  with
  | r ->
      send fd
        (Proto.Result
           {
             Proto.lease_id = l.Proto.lease_id;
             job_id = l.Proto.job_id;
             contract_name = r.Campaign.contract_name;
             rounds_done = r.Campaign.programs_run;
             discarded = r.Campaign.discarded_programs;
             test_cases = r.Campaign.test_cases;
             quarantined = r.Campaign.quarantined;
             duration_s = r.Campaign.duration;
             budget_exhausted = r.Campaign.budget_exhausted;
             fault_counts = r.Campaign.fault_counts;
             detection_times = r.Campaign.detection_times;
             violations = List.map Sweep.Ident.of_violation r.Campaign.violations;
           })
  | exception (Coordinator_gone _ as e) -> raise e
  | exception e ->
      (* the shard itself is poisoned: tell the coordinator to abandon it
         rather than retry into the same crash *)
      send fd
        (Proto.Quarantine_shard
           {
             lease_id = l.Proto.lease_id;
             job_id = l.Proto.job_id;
             reason = Printexc.to_string e;
           })

let run ~connect ?(name = "worker") ?(metrics = Obs.noop) ?chaos ?(retries = 6)
    ?(backoff_s = 0.05) ?(seed = 0) () : outcome =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let chaos = Option.map Fault.arm chaos in
  let rng = Rng.create ~seed:(seed lxor Unix.getpid ()) in
  match connect_with_backoff ~socket:connect ~retries ~backoff_s ~rng with
  | Error attempts -> Gave_up { attempts }
  | Ok fd -> (
      let m_leases = Obs.counter metrics "worker.leases" in
      let finish outcome =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        outcome
      in
      try
        send fd (Proto.Hello { worker = name; pid = Unix.getpid () });
        match Proto.read_msg fd with
        | Proto.Shutdown _ -> finish Finished
        | Proto.Hello_ok { heartbeat_s; _ } ->
            let cache = Sweep.Engine_cache.create () in
            let rec session () =
              match Proto.read_msg fd with
              | Proto.Lease l ->
                  Obs.incr m_leases;
                  run_lease ~fd ~metrics ~chaos ~heartbeat_s ~cache l;
                  session ()
              | Proto.Shutdown _ -> finish Finished
              | Proto.Hello _ | Proto.Hello_ok _ | Proto.Heartbeat _
              | Proto.Result _ | Proto.Quarantine_shard _ ->
                  (* worker-only traffic echoed back: ignore *)
                  session ()
            in
            session ()
        | _ -> finish (Coordinator_lost "unexpected greeting")
      with
      | Proto.Closed -> finish (Coordinator_lost "connection closed")
      | Proto.Protocol_error e -> finish (Coordinator_lost ("protocol: " ^ e))
      | Coordinator_gone e -> finish (Coordinator_lost e)
      | Unix.Unix_error (e, _, _) ->
          finish (Coordinator_lost (Unix.error_message e)))
