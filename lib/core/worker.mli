(** The worker side of the distributed campaign service ([amulet worker
    --connect SOCK]): runs leased shards on a warmed pooled engine,
    heartbeats at round boundaries, and degrades gracefully when the
    coordinator (or the network) misbehaves.

    One warmed {!Sweep.Engine_cache} lives for the whole session, so
    successive leases of the same defense preset skip the simulator boot —
    the same amortization the in-process scheduler's domains get. *)

module Obs = Amulet_obs.Obs

type outcome =
  | Finished  (** coordinator sent [Shutdown]: clean end of the matrix *)
  | Coordinator_lost of string
      (** the socket died mid-session.  Not an emergency: every completed
          round is checkpointed, so the shard resumes wherever its journal
          stopped.  The CLI maps this to exit code 2. *)
  | Gave_up of { attempts : int }
      (** could not connect within the retry budget (also exit code 2) *)

val backoff_delay :
  base_s:float -> cap_s:float -> attempt:int -> u:float -> float
(** The pure reconnect-delay schedule: exponential ([base_s * 2^attempt],
    capped at [cap_s]) with jitter spreading the result over
    [\[0.5x, 1.5x)] of the exponential value as [u] ranges over [\[0,1)].
    Exposed so tests can pin the schedule without sleeping. *)

val run :
  connect:string ->
  ?name:string ->
  ?metrics:Obs.t ->
  ?chaos:Fault.injector ->
  ?retries:int ->
  ?backoff_s:float ->
  ?seed:int ->
  unit ->
  outcome
(** Connect to the coordinator socket [connect] (retrying transient
    failures [retries] times, default 6, with {!backoff_delay} sleeps
    seeded from [seed] and the pid), introduce ourselves as [name], then
    serve leases until [Shutdown].

    Per lease: adopt the journal via {!Journal.recover} (a torn checkpoint
    is quarantined, the shard restarts fresh), heartbeat immediately and
    then at every round boundary at the cadence the coordinator announced,
    and finish with a [Result] whose violations are reduced to
    {!Sweep.Ident.v}.  A crash inside the campaign is reported as
    [Quarantine_shard] — the worker survives to take the next lease.

    [chaos], when set, arms the worker-level injector modes at round
    boundaries: [p_kill_worker] calls [Unix._exit 137] {e after} the
    round's checkpoint (so the successor resumes losslessly),
    [p_drop_message] swallows a heartbeat, [p_delay_heartbeat] stalls one.
    Chaos kills make this call never return — callers fork first (the CLI
    runs workers as their own processes anyway). *)
