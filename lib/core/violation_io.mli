(** Violation persistence: save findings as self-contained text files
    (program assembly + both inputs) and reload them for later analysis.
    The original microarchitectural context is not stored; reloaded
    violations are revalidated under fresh contexts. *)

open Amulet_isa

type stored = {
  defense_name : string;
  contract_name : string;
  program : Program.flat;
  input_a : Input.t;
  input_b : Input.t;
  signature : string option;
  identity : (int64 * int64 * int64) option;
      (** (ctrace_hash, trace_a_hash, trace_b_hash) captured at detection
          time — the fingerprint identity a journal round-trip must
          preserve, since the validating context (and hence the exact
          traces) cannot be re-derived.  [None] only for legacy files. *)
}

exception Format_error of string

val of_violation : Violation.t -> stored
val save : stored -> string -> unit

val output : out_channel -> stored -> unit
(** Write the sectioned text block {!save} puts in a file ({!Journal}
    embeds the same blocks in campaign checkpoints). *)

val load : string -> stored
(** Raises {!Format_error} on malformed input. *)

val parse : string list -> stored
(** Parse the lines of one {!output} block.  Raises {!Format_error}. *)

val mkdir_p : string -> unit

val save_quarantine :
  dir:string ->
  seq:int ->
  fault:Fault.t ->
  defense_name:string ->
  contract_name:string ->
  Program.flat ->
  Input.t option ->
  string
(** Quarantine a misbehaving test case (program, offending input if known,
    classified fault) into [dir] for later triage; returns the path. *)

val rehydrate : ?sim_config:Amulet_uarch.Config.t -> stored -> Violation.t
(** Rebuild a full violation by re-executing both inputs (used when resuming
    a journaled campaign; traces and context are re-derived for analysis,
    while the identity hashes are restored from [identity] so resumed
    campaigns fingerprint identically to uninterrupted ones). *)

type reanalysis = {
  reproduced : bool;
  leak_class : Analysis.leak_class option;
  minimization : Minimize.result option;
}
[@@ocaml.deprecated
  "Use Triage.finding: Triage.explain / Triage.bisect / Triage.shrink."]

[@@@alert "-deprecated"]  (* the val below mentions its deprecated result *)

(** Revalidate under fresh contexts, classify, and optionally minimize.
    Deprecated: {!Triage} is the one analysis surface; this bespoke result
    shape survives one release for source compatibility. *)
val reanalyze :
  ?minimize:bool -> ?sim_config:Amulet_uarch.Config.t -> stored -> reanalysis
[@@ocaml.deprecated
  "Use Triage.explain (and Triage.shrink for minimization)."]

[@@@alert "+deprecated"]
