open Amulet_contracts
open Amulet_defenses

(** Static pre-filter policy (see [Amulet_static.Leakcheck]): [Off] runs
    every generated program; [Screen] skips programs classified statically
    leak-free (sound: they cannot produce violations); [Score] regenerates a
    few times per round preferring programs with transmitter sites, without
    skipping any round. *)
type static_filter = Off | Screen | Score

let static_filter_name = function
  | Off -> "off"
  | Screen -> "screen"
  | Score -> "score"

let static_filter_of_name = function
  | "off" -> Some Off
  | "screen" -> Some Screen
  | "score" -> Some Score
  | _ -> None

type t = {
  defense : Defense.t;
  contract : Contract.t option;
  rounds : int;
  seed : int;
  stop_after_violations : int option;
  classify : bool;
  deadline_ms : float option;
  budget_ms : float option;
  n_base_inputs : int;
  boosts_per_input : int;
  generator : Generator.config;
  mode : Executor.mode;
  engine : Engine.kind;
  trace_format : Utrace.format;
  boot_insts : int;
  sim_config : Amulet_uarch.Config.t option;
  quarantine_dir : string option;
  chaos : Fault.injector option;
  isolate_rounds : bool;
  static_filter : static_filter;
}

let make ~defense ?engine ?backend ?(seed = 42) ?(rounds = 20) ?deadline_ms
    ?budget_ms ?(inputs = 10) ?(boosts = 4) ?contract ?stop_after
    ?(classify = true) ?(generator = Generator.default) ?(mode = Executor.Opt)
    ?(trace_format = Utrace.L1d_tlb)
    ?(boot_insts = Amulet_uarch.Simulator.default_boot_insts) ?sim_config
    ?quarantine_dir ?chaos ?(isolate_rounds = true) ?(static_filter = Off) () =
  let engine =
    match (engine, backend) with
    | Some k, _ -> k
    | None, Some Executor.Pool -> Engine.Pooled
    | None, Some Executor.Rebuild -> Engine.Naive
    | None, None -> Engine.Pooled
  in
  {
    defense;
    contract;
    rounds;
    seed;
    stop_after_violations = stop_after;
    classify;
    deadline_ms;
    budget_ms;
    n_base_inputs = inputs;
    boosts_per_input = boosts;
    generator;
    mode;
    engine;
    trace_format;
    boot_insts;
    sim_config;
    quarantine_dir;
    chaos;
    isolate_rounds;
    static_filter;
  }

let with_seed t seed = { t with seed }
let with_defense t defense = { t with defense }

let contract_name t =
  match t.contract with
  | Some c -> c.Contract.name
  | None -> t.defense.Defense.contract.Contract.name

let pp ppf t =
  Format.fprintf ppf "%s vs %s: %d rounds, seed %d, %s engine, %s mode"
    t.defense.Defense.name (contract_name t) t.rounds t.seed
    (match t.engine with Engine.Pooled -> "pooled" | Engine.Naive -> "naive")
    (match t.mode with Executor.Opt -> "opt" | Executor.Naive -> "naive")
