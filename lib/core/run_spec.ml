open Amulet_contracts
open Amulet_defenses

(** Static pre-filter policy (see [Amulet_static.Leakcheck]): [Off] runs
    every generated program; [Screen] skips programs classified statically
    leak-free (sound: they cannot produce violations); [Score] regenerates a
    few times per round preferring programs with transmitter sites, without
    skipping any round. *)
type static_filter = Off | Screen | Score

let static_filter_name = function
  | Off -> "off"
  | Screen -> "screen"
  | Score -> "score"

let static_filter_of_name = function
  | "off" -> Some Off
  | "screen" -> Some Screen
  | "score" -> Some Score
  | _ -> None

(** The generation strategy: how each round's test program is produced.
    [Random] is the classic blind-random Revizor front end; [Guided] layers
    the coverage-feedback corpus, seed scheduler and mutation engine of
    [Amulet_corpus] on top of the same base generator. *)
type generation =
  | Random of Generator.config
  | Guided of { base : Generator.config; corpus : Amulet_corpus.Corpus.params }

let random ?(config = Generator.default) () = Random config

let guided ?(base = Generator.default)
    ?(corpus = Amulet_corpus.Corpus.default_params) () =
  Guided { base; corpus }

let generation_name = function Random _ -> "random" | Guided _ -> "guided"

let generation_base = function Random g -> g | Guided { base; _ } -> base

let generation_corpus = function
  | Random _ -> None
  | Guided { corpus; _ } -> Some corpus

let map_generation_base f = function
  | Random g -> Random (f g)
  | Guided g -> Guided { g with base = f g.base }

type t = {
  defense : Defense.t;
  contract : Contract.t option;
  rounds : int;
  seed : int;
  stop_after_violations : int option;
  classify : bool;
  deadline_ms : float option;
  budget_ms : float option;
  n_base_inputs : int;
  boosts_per_input : int;
  generation : generation;
  generator : Generator.config;
      (** deprecated alias: always the base config of [generation] *)
  mode : Executor.mode;
  engine : Engine.kind;
  trace_format : Utrace.format;
  boot_insts : int;
  sim_config : Amulet_uarch.Config.t option;
  quarantine_dir : string option;
  chaos : Fault.injector option;
  isolate_rounds : bool;
  static_filter : static_filter;
}

let make ~defense ?engine ?backend ?(seed = 42) ?(rounds = 20) ?deadline_ms
    ?budget_ms ?(inputs = 10) ?(boosts = 4) ?contract ?stop_after
    ?(classify = true) ?generation ?generator ?(mode = Executor.Opt)
    ?(trace_format = Utrace.L1d_tlb)
    ?(boot_insts = Amulet_uarch.Simulator.default_boot_insts) ?sim_config
    ?quarantine_dir ?chaos ?(isolate_rounds = true) ?(static_filter = Off) () =
  let engine =
    match (engine, backend) with
    | Some k, _ -> k
    | None, Some Executor.Pool -> Engine.Pooled
    | None, Some Executor.Rebuild -> Engine.Naive
    | None, None -> Engine.Pooled
  in
  (* [generation] is the API; [generator] survives as the deprecated
     random-only spelling.  An explicit strategy wins; the alias field is
     kept coherent with the strategy's base config either way. *)
  let generation =
    match (generation, generator) with
    | Some g, _ -> g
    | None, Some cfg -> Random cfg
    | None, None -> Random Generator.default
  in
  {
    defense;
    contract;
    rounds;
    seed;
    stop_after_violations = stop_after;
    classify;
    deadline_ms;
    budget_ms;
    n_base_inputs = inputs;
    boosts_per_input = boosts;
    generation;
    generator = generation_base generation;
    mode;
    engine;
    trace_format;
    boot_insts;
    sim_config;
    quarantine_dir;
    chaos;
    isolate_rounds;
    static_filter;
  }

let with_seed t seed = { t with seed }
let with_defense t defense = { t with defense }

let generator_config t = generation_base t.generation

let corpus_params t = generation_corpus t.generation

(* Update the strategy's base generator config (and the alias field with
   it) — e.g. the defense-driven sandbox-pages override in [Fuzzer]. *)
let map_generator f t =
  let generation = map_generation_base f t.generation in
  { t with generation; generator = generation_base generation }

let with_generation t generation =
  { t with generation; generator = generation_base generation }

let contract_name t =
  match t.contract with
  | Some c -> c.Contract.name
  | None -> t.defense.Defense.contract.Contract.name

let pp ppf t =
  Format.fprintf ppf "%s vs %s: %d rounds, seed %d, %s engine, %s mode, %s gen"
    t.defense.Defense.name (contract_name t) t.rounds t.seed
    (match t.engine with Engine.Pooled -> "pooled" | Engine.Naive -> "naive")
    (match t.mode with Executor.Opt -> "opt" | Executor.Naive -> "naive")
    (generation_name t.generation)
