(** Violation analysis (paper §3.3): signature-based unique-violation
    classification over the simulator's debug-event log, side-by-side
    operation diffs, and static dataflow walk-back. *)

open Amulet_isa
open Amulet_uarch

type leak_class =
  | Spectre_v1_install
  | Spectre_v1_evict
  | Spectre_v4
  | Spec_eviction_uv1
  | Mshr_interference_uv2
  | Store_not_cleaned_uv3
  | Split_not_cleaned_uv4
  | Too_much_cleaning_uv5
  | Unxpec_kv2
  | Tainted_store_tlb_kv3
  | First_load_unprotected_uv6
  | Prefetcher_leak
  | Unknown

val class_name : leak_class -> string

val classify :
  defense:Amulet_defenses.Defense.t -> Event.t list -> Event.t list -> leak_class
(** Classify a violation from the event logs of its two runs; most-specific
    defense-bug signatures win over the generic Spectre classes. *)

val classify_violation : Executor.t -> Violation.t -> leak_class
(** Re-run the violating pair with logging enabled and classify.  Pure —
    the violation is not modified; attach the signature with
    {!Violation.with_signature} if it should be recorded. *)

val pp_side_by_side : Format.formatter -> Event.t list -> Event.t list -> unit
(** The paper's Tables 9/10 layout: memory operations of the two runs side
    by side, differing rows starred. *)

val dataflow_back : Program.flat -> index:int -> int list
(** Static use-def walk from the address registers of the instruction at
    [index] back to its sources (§3.3a). *)

val leaking_access : Event.t list -> diff_lines:int list -> int option
(** PC of the youngest speculative access touching a line in the trace
    diff. *)
