(** The sweep orchestrator: run the whole defense matrix (AMuLeT §5) as one
    scheduled, sharded workload.

    A sweep is a list of {!job}s — each a {!Run_spec.t} naming a defense
    preset and a derived seed shard — executed on a work-stealing scheduler
    over OCaml domains.  Each domain keeps one warmed pooled {!Engine} per
    distinct defense config, so snapshot/restore reuse survives across jobs
    of the same defense; each job runs a fault-isolated campaign shard
    (reusing {!Campaign}'s fault taxonomy and journaling).  Shards merge
    deterministically — the merged violation set is byte-identical
    regardless of domain count or steal order, because shard seeds are
    fixed at job construction and the engine re-pristines per program. *)

open Amulet_defenses
module Obs = Amulet_obs.Obs

type job = {
  id : int;  (** merge position; {!run} reindexes jobs in list order *)
  shard : int;  (** shard index within the job's preset *)
  spec : Run_spec.t;
}

val select : string list -> (Defense.t list, string) result
(** Resolve preset names / ['*'] globs (case-insensitive) against
    {!Defense.all}; [[]] selects every preset.  [Error] names the first
    pattern matching nothing. *)

val jobs :
  ?presets:Defense.t list ->
  ?shards_per_preset:int ->
  ?rounds:int ->
  ?seed:int ->
  ?make_spec:(Defense.t -> Run_spec.t) ->
  unit ->
  job list
(** The default matrix: [shards_per_preset] (default 1) shards of [rounds]
    (default 20) rounds for every preset (default {!Defense.all}).
    [make_spec] supplies the base spec per defense (execution knobs,
    budgets); [jobs] then pins each shard's [rounds] and derived [seed] —
    the derivation depends only on (sweep seed, preset index, shard index),
    never on scheduling. *)

type outcome =
  | Completed of Campaign.result
  | Crashed of Fault.exn_info
      (** the shard (or its whole domain) died outside round isolation *)

type shard = { job : job; outcome : outcome; wall_s : float }

type row = {
  defense : Defense.t;
  contract_name : string;
  shards : int;
  crashed_shards : int;
  rounds : int;  (** programs run across the preset's shards *)
  discarded : int;
  test_cases : int;
  violations : Violation.t list;  (** concatenated in job order *)
  violation_classes : (Analysis.leak_class * int) list;
  fault_counts : (Fault.cls * int) list;
  quarantined : int;
  wall_s : float;  (** summed shard wall clocks (compute, not elapsed) *)
  inputs_per_sec : float;
  time_to_first_leak : float option;
      (** min across shards of the first detection's latency, seconds *)
  budget_exhausted : bool;
}

type report = {
  rows : row list;  (** one per preset, in first-appearance job order *)
  shards : shard list;  (** every shard, in job order *)
  domains : int;
  jobs : int;
  crashed : int;
  wall_s : float;  (** elapsed wall clock of the whole sweep *)
  test_cases : int;
  metrics : Obs.Snapshot.t;
      (** merged per-domain registries (empty unless [metrics] was live) *)
}

(** One warmed engine per distinct defense config, private to one domain or
    one worker process.  Used by {!run}'s domains and by the distributed
    {!Worker}, so both paths amortize simulator boots identically.
    Chaos-armed specs never share a cached engine (chaos arms at executor
    creation) — {!Engine_cache.get} returns [None] for them. *)
module Engine_cache : sig
  type t

  val create : unit -> t
  val get : t -> metrics:Obs.t -> Run_spec.t -> (Engine.t * Stats.t) option
end

val run :
  ?domains:int ->
  ?metrics:Obs.t ->
  ?journal_dir:string ->
  ?checkpoint_every:int ->
  job list ->
  report
(** Execute the jobs on [domains] (default 1) worker domains with work
    stealing.  [metrics], when live, gives each domain a private registry
    (merged into [report.metrics]).  [journal_dir], when set, checkpoints
    every shard to [shard_<id>_<defense>.json] inside it.  Total: a
    crashing shard or domain is recorded as {!Crashed} and the sweep
    completes. *)

(** The scheduling-independent identity of a sweep's findings, and the one
    digest implementation both execution paths share: the in-process
    scheduler ({!fingerprint}) and the distributed {!Coordinator} each
    reduce their merged results to [Ident.row]s and digest those bytes, so
    the fleet can never drift from the single-process reference. *)
module Ident : sig
  type v = {
    ctrace_hash : int64;
    hash_a : int64;  (** {!Utrace.hash} of the violating trace pair *)
    hash_b : int64;
    program_text : string;
    signature : string;
        (** detection-time root-cause signature ([""] when unclassified);
            carried for cross-worker dedup, {e not} part of the
            fingerprint bytes *)
  }

  type row = {
    defense : string;
    contract : string;
    rounds : int;
    discarded : int;
    test_cases : int;
    violations : v list;  (** in job order within the preset *)
  }

  val of_violation : Violation.t -> v

  val fingerprint : row list -> string
  (** Hex digest over the rows' bytes; wall-clock-free by construction.
      The [signature] field is excluded: classification must not perturb
      the determinism gate. *)

  val dedup_key : v -> string
  (** The cross-worker cluster key: the signature when present, else the
      identity hashes.  Scoped per defense by callers. *)

  val distinct : v list -> int
  (** Number of distinct {!dedup_key}s in the list. *)
end

val ident_rows : report -> Ident.row list
(** The report's rows reduced to their deterministic identity. *)

val fingerprint : report -> string
(** Hex digest over the deterministic content of the report — per-preset
    round/test-case/discard totals and every violation's identity
    (contract-trace hash, both microarchitectural trace hashes, program
    text) — excluding all wall-clock-dependent fields.  Equal fingerprints
    across [~domains:1] and [~domains:n] runs of the same jobs are the
    determinism guarantee CI enforces; equality with the {!Coordinator}'s
    fingerprint for the same jobs is the distributed-service gate.
    Equals [Ident.fingerprint (ident_rows report)]. *)

val to_json : report -> string
(** The BENCH_sweep.json document (schema [amulet.sweep/1]). *)

val pp : Format.formatter -> report -> unit
(** The cross-defense text table. *)
