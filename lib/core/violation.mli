(** Contract violations: a program and two inputs with equal contract
    traces but different, validated microarchitectural traces. *)

open Amulet_isa
open Amulet_contracts

type t = {
  program : Program.flat;
  program_text : string;
  input_a : Input.t;
  input_b : Input.t;
  trace_a : Utrace.t;
  trace_b : Utrace.t;
  context : Amulet_uarch.Simulator.context;
      (** the shared context under which the violation validated *)
  ctrace_hash : int64;
  trace_a_hash : int64;
  trace_b_hash : int64;
      (** detection-time trace identity (survives journal round-trips, where
          the unstored validating context makes traces unreproducible) *)
  contract : Contract.t;
  defense_name : string;
  detection_seconds : float;
  signature : string option;
      (** root-cause signature, attached at detection time (campaign
          classification) or by {!Triage}; never mutated afterwards *)
}

val with_signature : string -> t -> t
(** A copy of the violation carrying the given signature.  The only
    sanctioned way to sign a violation after construction. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
