(** Structured fault taxonomy for campaign supervision.

    Long campaigns (the paper's Tables 3-4 run millions of test cases) must
    survive misbehaving test cases: a pathological program that deadlocks the
    pipeline, an input that faults in the leakage model, or a crash anywhere
    in a round is classified, counted, quarantined and skipped — never fatal.
    This module is the shared vocabulary: the fault values the executor and
    fuzzer report, the per-class counters campaigns aggregate, and the
    probabilistic chaos injector the self-tests use to prove the supervisor
    actually survives. *)

type exn_info = {
  exn_name : string;  (** [Printexc.to_string] of the escaped exception *)
  backtrace : string;
}

val exn_info : exn -> exn_info
(** Capture the current exception (call inside the [with] handler so the
    recorded backtrace is the raising one). *)

type t =
  | Sim_divergence of string
      (** the out-of-order simulator disagreed with the reference emulator *)
  | Emu_fault of string
      (** architectural fault in the emulator / leakage model (escaped code
          region, bad memory access, …) *)
  | Decode_error of string
      (** malformed or unsupported instruction reached decode/execute *)
  | Fuel_exhausted of string
      (** simulated-time budget blown: cycle limit, step limit, pipeline
          deadlock (complements [Config.max_cycles]) *)
  | Deadline_exceeded of { elapsed_ms : float; deadline_ms : float }
      (** wall-clock budget for one fuzzing round blown *)
  | Empty_population
      (** no usable test cases could be built for the program *)
  | Injected of string  (** fault planted by the chaos injector *)
  | Instance_crash of exn_info
      (** an exception escaped a round or a whole campaign instance *)
  | Worker_lost of string
      (** a distributed worker's socket died or its heartbeats stopped;
          its lease was (or will be) reassigned *)
  | Protocol of string
      (** a malformed, corrupt or version-mismatched frame on the
          coordinator/worker wire *)

val to_string : t -> string

val of_run_fault : string -> t
(** Classify the string-typed faults the simulator and leakage model report
    ("pipeline deadlock", "cycle limit exceeded", "control flow escaped the
    code region", …). *)

val of_exn : exn -> t
(** Classify an escaped exception ([Invalid_argument] from the decoder
    becomes {!Decode_error}; anything else {!Instance_crash}). *)

(** {2 Per-class counters} *)

type cls =
  | C_sim_divergence
  | C_emu_fault
  | C_decode_error
  | C_fuel_exhausted
  | C_deadline_exceeded
  | C_empty_population
  | C_injected
  | C_instance_crash
  | C_worker_lost
  | C_protocol

val class_of : t -> cls
val all_classes : cls list
val class_name : cls -> string
val class_of_name : string -> cls option

module Counters : sig
  type fault = t
  type t

  val create : unit -> t
  val record : t -> fault -> unit
  val record_class : t -> ?n:int -> cls -> unit
  val get : t -> cls -> int
  val total : t -> int
  val to_list : t -> (cls * int) list
  (** Only classes with a non-zero count, in [all_classes] order. *)

  val add_list : t -> (cls * int) list -> unit
  val merge : t -> t -> unit
  (** [merge dst src] adds [src]'s counts into [dst]. *)

  val pp : Format.formatter -> t -> unit
end

(** {2 Chaos injection}

    A deterministic, seeded fault injector threaded through the executor
    config.  Each test-case execution draws once; with the configured
    probabilities it raises {!Injected_crash}, reports an injected timeout,
    or reports an injected simulator fault.  Used by the robustness
    self-tests to prove campaigns survive all three. *)

exception Injected_crash of string

type injector = {
  p_crash : float;  (** probability of raising {!Injected_crash} *)
  p_timeout : float;  (** probability of a fake {!Deadline_exceeded} *)
  p_sim_fault : float;  (** probability of a fake simulator fault *)
  p_kill_worker : float;
      (** worker level: probability of the worker process dying abruptly at
          a round boundary (SIGKILL-equivalent; no result, no goodbye) *)
  p_drop_message : float;
      (** worker level: probability of swallowing an outbound heartbeat *)
  p_delay_heartbeat : float;
      (** worker level: probability of stalling before a heartbeat *)
  chaos_seed : int;
}

val injector :
  ?p_crash:float ->
  ?p_timeout:float ->
  ?p_sim_fault:float ->
  ?p_kill_worker:float ->
  ?p_drop_message:float ->
  ?p_delay_heartbeat:float ->
  seed:int ->
  unit ->
  injector

type chaos
(** An armed injector (injector + private RNG streams; the worker-level
    modes draw from their own stream so arming them never perturbs the
    in-process fault sequence). *)

val arm : injector -> chaos
val sample : chaos -> [ `None | `Crash | `Timeout | `Sim_fault ]

val sample_worker :
  chaos -> [ `None | `Kill_worker | `Drop_message | `Delay_heartbeat ]
(** Drawn once per completed round by a distributed worker (see {!Worker});
    the probabilities partition [0, 1) like {!sample}'s. *)
