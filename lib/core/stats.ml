(** Wall-clock accounting for the executor pipeline, reproducing the
    breakdown of the paper's Table 2 (gem5 startup / gem5 simulate / trace
    extraction / test generation / contract-trace extraction / others).

    Also owns the session's telemetry registry: every stats instance
    carries an {!Amulet_obs.Obs.t} that the executor threads down into the
    simulator ([uarch.*] hardware counters) and that the fuzzer/campaign
    layers count into ([fuzzer.*]).  Classified faults are mirrored into
    [fuzzer.fault.<class>] counters so fault-class rates appear in metric
    snapshots alongside {!Fault.Counters}. *)

open Amulet_obs

type category =
  | Sim_startup
  | Sim_simulate
  | Utrace_extraction
  | Test_generation
  | Ctrace_extraction
  | Other

let all_categories =
  [ Sim_startup; Sim_simulate; Utrace_extraction; Test_generation; Ctrace_extraction; Other ]

let category_name = function
  | Sim_startup -> "sim startup"
  | Sim_simulate -> "sim simulate"
  | Utrace_extraction -> "uTrace extraction"
  | Test_generation -> "test generation"
  | Ctrace_extraction -> "cTrace extraction"
  | Other -> "others"

type t = {
  buckets : (category, float ref) Hashtbl.t;
  mutable started_at : float;
  mutable test_cases : int;
  mutable violations : int;
  mutable validations : int;
  faults : Fault.Counters.t;
  metrics : Obs.t;
}

let create ?(metrics = Obs.noop) () =
  let buckets = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.add buckets c (ref 0.)) all_categories;
  {
    buckets;
    started_at = Obs.Clock.now_s ();
    test_cases = 0;
    violations = 0;
    validations = 0;
    faults = Fault.Counters.create ();
    metrics;
  }

let registry t = t.metrics

let bucket t c = Hashtbl.find t.buckets c

(** Time the thunk, attributing its wall time to [c]. *)
let time t c f =
  let t0 = Obs.Clock.now_s () in
  let r = f () in
  let b = bucket t c in
  b := !b +. Obs.Clock.elapsed_s ~since:t0;
  r

let add t c seconds =
  let b = bucket t c in
  b := !b +. seconds

let count_test_case t = t.test_cases <- t.test_cases + 1
let count_violation t = t.violations <- t.violations + 1
let count_validation t = t.validations <- t.validations + 1

let count_fault t f =
  Fault.Counters.record t.faults f;
  Obs.incr
    (Obs.counter t.metrics
       ("fuzzer.fault." ^ Fault.class_name (Fault.class_of f)))

let fault_counters t = t.faults
let fault_counts t = Fault.Counters.to_list t.faults

let total t = Hashtbl.fold (fun _ b acc -> acc +. !b) t.buckets 0.
let elapsed t = Obs.Clock.elapsed_s ~since:t.started_at
let seconds t c = !(bucket t c)
let test_cases t = t.test_cases
let violations t = t.violations
let validations t = t.validations

(** Attribute time not captured by any explicit bucket to [Other]. *)
let close t =
  let accounted = total t in
  let e = elapsed t in
  if e > accounted then add t Other (e -. accounted)

let throughput t =
  let e = elapsed t in
  if e <= 0. then 0. else float_of_int t.test_cases /. e

let pp fmt t =
  let tot = total t in
  List.iter
    (fun c ->
      let s = seconds t c in
      Format.fprintf fmt "%-18s %8.2f s (%5.1f%%)@." (category_name c) s
        (if tot > 0. then 100. *. s /. tot else 0.))
    all_categories;
  Format.fprintf fmt "%-18s %8.2f s (100.0%%)@." "total" tot
