(** The coordinator/worker wire protocol: length-prefixed, versioned binary
    frames with a payload CRC-32, over Unix-domain stream sockets.

    Frame layout (integers big-endian): [u32 payload-length], [u8 version],
    [u8 tag], payload bytes, [u32 CRC-32(payload)].  A frame whose version
    differs from {!version} is rejected before its payload is interpreted
    (the coordinator answers with a [Shutdown] naming both versions); a CRC
    or structure failure raises {!Protocol_error} — the peer is counted
    under {!Fault.C_protocol} and disconnected, never crashed into.

    Message flow: worker sends [Hello] once; coordinator answers [Hello_ok]
    (carrying the heartbeat cadence) and then drives the session with
    [Lease]s.  During a lease the worker streams [Heartbeat]s at round
    boundaries and finishes with a [Result] (or [Quarantine_shard] when the
    shard itself is poisoned); the coordinator ends the session with
    [Shutdown].  Everything a lease carries — including the full
    {!Run_spec.t} — round-trips exactly, so the deterministic-fingerprint
    guarantee survives the wire. *)

val version : int
(** Current protocol version (frame byte 4). *)

exception Protocol_error of string
(** Malformed, corrupt, truncated or version-mismatched frame. *)

exception Closed
(** The peer closed the connection (EOF mid-read). *)

type lease = {
  lease_id : int;  (** unique per grant; reassignments get fresh ids *)
  job_id : int;  (** merge position in the sweep's job list *)
  shard : int;  (** shard index within the job's preset *)
  journal_path : string option;
      (** where to checkpoint; pre-existing content is adopted (resume) *)
  checkpoint_every : int;
  spec : Run_spec.t;
}

type shard_result = {
  lease_id : int;
  job_id : int;
  contract_name : string;
  rounds_done : int;
  discarded : int;
  test_cases : int;
  quarantined : int;
  duration_s : float;
  budget_exhausted : bool;
  fault_counts : (Fault.cls * int) list;
  detection_times : float list;
  violations : Sweep.Ident.v list;
      (** findings reduced to their fingerprint identity *)
}

type msg =
  | Hello of { worker : string; pid : int }
  | Hello_ok of { coordinator : string; heartbeat_s : float }
  | Lease of lease
  | Heartbeat of { lease_id : int; rounds_done : int }
  | Result of shard_result
  | Quarantine_shard of { lease_id : int; job_id : int; reason : string }
  | Shutdown of { reason : string }

val write_msg : Unix.file_descr -> msg -> unit
(** Encode, frame and write the whole message (blocking; retries EINTR).
    Raises [Unix.Unix_error (EPIPE, _, _)] when the peer is gone. *)

val read_msg : Unix.file_descr -> msg
(** Blocking read of one complete frame.  Raises {!Closed} on EOF and
    {!Protocol_error} on damage or version mismatch. *)

val write_frame : ?version:int -> Unix.file_descr -> tag:int -> string -> unit
(** Low-level escape hatch (tests): frame an arbitrary payload, optionally
    under a different protocol version. *)

val crc32 : string -> int32
(** The frame checksum (IEEE 802.3 polynomial), exposed for tests. *)

(** Incremental frame decoder for a non-blocking reader (the coordinator's
    select loop): feed raw bytes as they arrive, poll for complete
    messages. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** Append the first [len] bytes just read from the socket. *)

  val next : t -> [ `Msg of msg | `Awaiting | `Error of string ]
  (** Pop the next complete message.  [`Error] covers CRC/version/structure
      damage; the connection should be dropped (the decoder state is not
      recoverable after an error). *)
end
