(** Deprecated alias for {!Amulet_corpus.Generator}, kept so existing
    [Amulet.Generator] callers keep compiling.  The generator moved into
    the [amulet_corpus] library so the mutation engine can splice in
    freshly generated donor code without a dependency cycle. *)

include module type of struct
  include Amulet_corpus.Generator
end
