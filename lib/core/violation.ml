(** Contract violations: the fuzzer's findings.

    A violation is a program plus two inputs with equal contract traces but
    different (validated) microarchitectural traces — Definition 2.1 of the
    paper.  The [signature] is attached when the violation is root-caused
    (campaign classification or {!Triage}); the record is immutable, so a
    signed violation is a new value built by {!with_signature}. *)

open Amulet_isa
open Amulet_contracts

type t = {
  program : Program.flat;
  program_text : string;
  input_a : Input.t;
  input_b : Input.t;
  trace_a : Utrace.t;
  trace_b : Utrace.t;
  context : Amulet_uarch.Simulator.context;
      (** the common predictor context under which the violation validated *)
  ctrace_hash : int64;
  trace_a_hash : int64;
  trace_b_hash : int64;
      (** identity hashes of the detection-time traces.  Captured when the
          violation is found because the validating context is not
          serialized: a journal round-trip cannot re-derive the exact
          traces, so these (with [ctrace_hash]) are what sweep/service
          fingerprints key on. *)
  contract : Contract.t;
  defense_name : string;
  detection_seconds : float;  (** since the campaign / program batch began *)
  signature : string option;
}

let with_signature s v = { v with signature = Some s }

let pp fmt v =
  Format.fprintf fmt "=== CONTRACT VIOLATION (%s vs %s) ===@." v.defense_name
    v.contract.Contract.name;
  Format.fprintf fmt "detected after %.2f s%s@." v.detection_seconds
    (match v.signature with None -> "" | Some s -> Printf.sprintf "  [signature: %s]" s);
  Format.fprintf fmt "--- program ---@.%s" v.program_text;
  Format.fprintf fmt "--- input A --- %a@." Input.pp v.input_a;
  Format.fprintf fmt "--- input B --- %a@." Input.pp v.input_b;
  Format.fprintf fmt "--- uarch trace A: %a@." Utrace.pp v.trace_a;
  Format.fprintf fmt "--- uarch trace B: %a@." Utrace.pp v.trace_b;
  List.iter (fun line -> Format.fprintf fmt "  %s@." line)
    (Utrace.diff v.trace_a v.trace_b)

let to_string v = Format.asprintf "%a" pp v
