(** The unified run specification: one flat record describing a fuzzing
    run end to end — what to test ([defense], [contract]), how long
    ([rounds], [stop_after_violations], per-round [deadline_ms], whole-run
    [budget_ms]), how to generate work ([n_base_inputs], [boosts_per_input],
    [generator], [seed]) and how to execute it ([mode], [engine],
    [trace_format], [boot_insts], [sim_config]).

    This record consolidates the knobs that used to be spread across
    [Fuzzer.config], the [Campaign.config] wrapper, [Executor.backend] and
    the [Engine] kind: {!Fuzzer.create}, [Campaign.run]/[Campaign.run_parallel]
    and [Sweep] all consume a [Run_spec.t], and the CLI builds one per
    subcommand.  Build specs with {!make} and refine them by functional
    update ([{ spec with seed = ... }] — every field is exposed). *)

open Amulet_contracts
open Amulet_defenses

type static_filter = Off | Screen | Score
(** Static pre-filter policy (see [Amulet_static.Leakcheck]): [Off] runs
    every generated program; [Screen] skips programs classified statically
    leak-free (sound — they cannot produce violations, so no violation is
    lost); [Score] regenerates a few times per round preferring programs
    with speculative transmitter sites, without skipping any round. *)

val static_filter_name : static_filter -> string
val static_filter_of_name : string -> static_filter option

type generation =
  | Random of Generator.config
  | Guided of { base : Generator.config; corpus : Amulet_corpus.Corpus.params }
      (** [Random] is the classic blind-random front end; [Guided] layers
          the coverage-feedback corpus, power-schedule seed scheduler and
          mutation engine of [Amulet_corpus] on the same base generator. *)

val random : ?config:Generator.config -> unit -> generation
val guided :
  ?base:Generator.config -> ?corpus:Amulet_corpus.Corpus.params -> unit ->
  generation

val generation_name : generation -> string
(** ["random"] or ["guided"]. *)

val generation_base : generation -> Generator.config
val generation_corpus : generation -> Amulet_corpus.Corpus.params option

val map_generation_base :
  (Generator.config -> Generator.config) -> generation -> generation
(** Update the base generator config inside either strategy. *)

type t = {
  (* what to test *)
  defense : Defense.t;
  contract : Contract.t option;  (** override the defense's default *)
  (* how long *)
  rounds : int;  (** test programs per run (campaign rounds) *)
  seed : int;
  stop_after_violations : int option;
  classify : bool;  (** run root-cause signature classification *)
  deadline_ms : float option;  (** wall-clock budget per fuzzing round *)
  budget_ms : float option;
      (** wall-clock budget for the whole run; exhausting it stops the
          campaign at a round boundary with a clean journal checkpoint *)
  (* input population *)
  n_base_inputs : int;
  boosts_per_input : int;
  generation : generation;  (** how each round's test program is produced *)
  generator : Generator.config;
      (** @deprecated alias: always equal to [generation_base generation];
          kept so pre-strategy callers that read the flat field keep
          working.  Write through {!make} [?generator], {!with_generation}
          or {!map_generator}, never by functional update of this field
          alone. *)
  (* execution *)
  mode : Executor.mode;
  engine : Engine.kind;  (** execution backend (trace-invisible) *)
  trace_format : Utrace.format;
  boot_insts : int;
  sim_config : Amulet_uarch.Config.t option;  (** amplification override *)
  (* supervision *)
  quarantine_dir : string option;
  chaos : Fault.injector option;  (** fault injection (self-tests) *)
  isolate_rounds : bool;
  static_filter : static_filter;  (** static leakage pre-filter policy *)
}

val make :
  defense:Defense.t ->
  ?engine:Engine.kind ->
  ?backend:Executor.backend ->
  ?seed:int ->
  ?rounds:int ->
  ?deadline_ms:float ->
  ?budget_ms:float ->
  ?inputs:int ->
  ?boosts:int ->
  ?contract:Contract.t ->
  ?stop_after:int ->
  ?classify:bool ->
  ?generation:generation ->
  ?generator:Generator.config ->
  ?mode:Executor.mode ->
  ?trace_format:Utrace.format ->
  ?boot_insts:int ->
  ?sim_config:Amulet_uarch.Config.t ->
  ?quarantine_dir:string ->
  ?chaos:Fault.injector ->
  ?isolate_rounds:bool ->
  ?static_filter:static_filter ->
  unit ->
  t
(** Builder with the defaults the stack has always used: 20 rounds, seed 42,
    10 base inputs x 4 boosts, [Opt] executor mode on the [Pooled] engine,
    L1D+TLB traces, the defense's own contract, classification on.
    [backend] is accepted as the executor-level spelling of the engine
    choice ([Pool] -> [Pooled], [Rebuild] -> [Naive]); an explicit [engine]
    wins when both are given.  [generation] (default [Random]) is the
    generation strategy; [generator] is its deprecated random-only
    spelling, and an explicit [generation] wins when both are given. *)

val with_seed : t -> int -> t
val with_defense : t -> Defense.t -> t

val with_generation : t -> generation -> t
(** Replace the generation strategy (keeps the deprecated [generator]
    alias coherent). *)

val generator_config : t -> Generator.config
(** Base generator config of the strategy (= the deprecated [generator]
    field). *)

val corpus_params : t -> Amulet_corpus.Corpus.params option
(** [Some] iff the spec is [Guided]. *)

val map_generator : (Generator.config -> Generator.config) -> t -> t
(** Update the strategy's base generator config in place (and the alias
    with it) — e.g. the defense-driven sandbox-pages override. *)

val contract_name : t -> string
(** The contract this spec tests — knowable without running anything. *)

val pp : Format.formatter -> t -> unit
(** One-line summary (defense, contract, rounds, seed, engine, mode). *)
