(** Violation forensics: re-execute a stored violation's two inputs from an
    identical microarchitectural starting context with telemetry enabled,
    and report everything that distinguishes the diverging executions.

    The report answers the triage questions in one place: did the finding
    reproduce, where do the contract traces (dis)agree, which trace
    elements differ, what root-cause signature matches, and — new with the
    telemetry registry — how the two executions differ in hardware-counter
    terms (fetched/squashed instructions, cache and TLB misses, MSHR
    stalls), the delta that localises {e which} microarchitectural resource
    carried the leak. *)

open Amulet_isa
open Amulet_contracts
open Amulet_defenses
module Obs = Amulet_obs.Obs

type ctrace_summary = {
  length_a : int;
  length_b : int;
  hash_a : int64;
  hash_b : int64;
  equal : bool;
  first_divergence : (int * string * string) option;
}

type report = {
  defense_name : string;
  contract_name : string;
  program_text : string;
  input_a : Input.t;
  input_b : Input.t;
  reproduced : bool;
  ctrace : ctrace_summary;
  utrace_diff : string list;
  leak_class : Analysis.leak_class option;
  counters_a : Obs.Snapshot.t;
  counters_b : Obs.Snapshot.t;
  counter_delta : Obs.Snapshot.t;
}

let obs_to_string o = Format.asprintf "%a" Observation.pp o

(* First position where the two observation lists disagree, with both
   sides printed (a trace ending early shows as "<end>"). *)
let first_divergence ta tb =
  let rec go i a b =
    match a, b with
    | [], [] -> None
    | oa :: a', ob :: b' ->
        if Observation.equal oa ob then go (i + 1) a' b'
        else Some (i, obs_to_string oa, obs_to_string ob)
    | oa :: _, [] -> Some (i, obs_to_string oa, "<end>")
    | [], ob :: _ -> Some (i, "<end>", obs_to_string ob)
  in
  go 0 ta tb

let summarize_ctraces (ra : Leakage_model.result) (rb : Leakage_model.result) =
  {
    length_a = List.length ra.Leakage_model.ctrace;
    length_b = List.length rb.Leakage_model.ctrace;
    hash_a = ra.Leakage_model.ctrace_hash;
    hash_b = rb.Leakage_model.ctrace_hash;
    equal =
      Observation.equal_trace ra.Leakage_model.ctrace rb.Leakage_model.ctrace;
    first_divergence =
      first_divergence ra.Leakage_model.ctrace rb.Leakage_model.ctrace;
  }

let uarch_only = Obs.Snapshot.filter (fun n -> String.length n >= 6 && String.sub n 0 6 = "uarch.")

let explain ?sim_config (s : Violation_io.stored) : report =
  let defense =
    Option.value (Defense.find s.Violation_io.defense_name)
      ~default:Defense.baseline
  in
  let contract =
    Option.value
      (Contract.find s.Violation_io.contract_name)
      ~default:defense.Defense.contract
  in
  let flat = s.Violation_io.program in
  let metrics = Obs.create () in
  let ex =
    Executor.create ?sim_config ~mode:Executor.Opt defense
      (Stats.create ~metrics ())
  in
  Executor.start_program ex;
  (* run A once fresh, only to capture a starting context both inputs can
     then share — exactly the validation discipline of the fuzzer *)
  let oa0 = Executor.run ex flat s.Violation_io.input_a in
  let ctx = oa0.Executor.context in
  let snap () = Obs.Snapshot.of_registry metrics in
  let s0 = snap () in
  let oa = Executor.run ex ~context:ctx ~log:true flat s.Violation_io.input_a in
  let s1 = snap () in
  let ob = Executor.run ex ~context:ctx ~log:true flat s.Violation_io.input_b in
  let s2 = snap () in
  let counters_a = uarch_only (Obs.Snapshot.diff ~older:s0 ~newer:s1) in
  let counters_b = uarch_only (Obs.Snapshot.diff ~older:s1 ~newer:s2) in
  let ra =
    Leakage_model.collect contract flat (Input.to_state s.Violation_io.input_a)
  in
  let rb =
    Leakage_model.collect contract flat (Input.to_state s.Violation_io.input_b)
  in
  let reproduced = not (Utrace.equal oa.Executor.trace ob.Executor.trace) in
  {
    defense_name = s.Violation_io.defense_name;
    contract_name = s.Violation_io.contract_name;
    program_text = Format.asprintf "%a" Program.pp_flat flat;
    input_a = s.Violation_io.input_a;
    input_b = s.Violation_io.input_b;
    reproduced;
    ctrace = summarize_ctraces ra rb;
    utrace_diff = Utrace.diff oa.Executor.trace ob.Executor.trace;
    leak_class =
      (if reproduced then
         Some (Analysis.classify ~defense oa.Executor.events ob.Executor.events)
       else None);
    counters_a;
    counters_b;
    counter_delta = Obs.Snapshot.diff ~older:counters_a ~newer:counters_b;
  }

let of_violation ?sim_config (v : Violation.t) : report =
  explain ?sim_config (Violation_io.of_violation v)

let pp fmt (r : report) =
  Format.fprintf fmt "defense: %s  contract: %s@." r.defense_name
    r.contract_name;
  Format.fprintf fmt "reproduced: %b%s@." r.reproduced
    (match r.leak_class with
    | Some c -> "  class: " ^ Analysis.class_name c
    | None -> "");
  Format.fprintf fmt "contract traces: %d vs %d observations, %s@."
    r.ctrace.length_a r.ctrace.length_b
    (if r.ctrace.equal then "equal (as a violation requires)"
     else "DIFFERENT — not a contract violation");
  (match r.ctrace.first_divergence with
  | Some (i, a, b) ->
      Format.fprintf fmt "  first divergence at %d: %s vs %s@." i a b
  | None -> ());
  (match r.utrace_diff with
  | [] -> Format.fprintf fmt "utrace diff: (none)@."
  | lines ->
      Format.fprintf fmt "utrace diff:@.";
      List.iter (fun l -> Format.fprintf fmt "  %s@." l) lines);
  Format.fprintf fmt "counter delta (B - A):@.%a" Obs.Snapshot.pp
    r.counter_delta

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (r : report) =
  let buf = Buffer.create 1024 in
  let str s = "\"" ^ json_escape s ^ "\"" in
  Buffer.add_string buf "{";
  Buffer.add_string buf (Printf.sprintf "\"defense\":%s," (str r.defense_name));
  Buffer.add_string buf
    (Printf.sprintf "\"contract\":%s," (str r.contract_name));
  Buffer.add_string buf (Printf.sprintf "\"reproduced\":%b," r.reproduced);
  Buffer.add_string buf
    (Printf.sprintf "\"leak_class\":%s,"
       (match r.leak_class with
       | Some c -> str (Analysis.class_name c)
       | None -> "null"));
  Buffer.add_string buf
    (Printf.sprintf
       "\"contract_traces\":{\"length_a\":%d,\"length_b\":%d,\"hash_a\":%s,\"hash_b\":%s,\"equal\":%b,\"first_divergence\":%s},"
       r.ctrace.length_a r.ctrace.length_b
       (str (Printf.sprintf "0x%Lx" r.ctrace.hash_a))
       (str (Printf.sprintf "0x%Lx" r.ctrace.hash_b))
       r.ctrace.equal
       (match r.ctrace.first_divergence with
       | None -> "null"
       | Some (i, a, b) ->
           Printf.sprintf "{\"index\":%d,\"a\":%s,\"b\":%s}" i (str a) (str b)));
  Buffer.add_string buf "\"utrace_diff\":[";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str l))
    r.utrace_diff;
  Buffer.add_string buf "],";
  Buffer.add_string buf
    (Printf.sprintf "\"counters_a\":%s," (Obs.Snapshot.to_json r.counters_a));
  Buffer.add_string buf
    (Printf.sprintf "\"counters_b\":%s," (Obs.Snapshot.to_json r.counters_b));
  Buffer.add_string buf
    (Printf.sprintf "\"counter_delta\":%s"
       (Obs.Snapshot.to_json r.counter_delta));
  Buffer.add_string buf "}";
  Buffer.contents buf
