(** Deprecated façade: violation forensics moved into {!Triage}, which is
    the single analysis surface behind [amulet explain], [amulet triage]
    and PoC replay.  These aliases keep one release of source
    compatibility and will be removed. *)

type ctrace_summary = Triage.ctrace_summary = {
  length_a : int;
  length_b : int;
  hash_a : int64;
  hash_b : int64;
  equal : bool;
  first_divergence : (int * string * string) option;
}

type report = Triage.finding

let explain ?sim_config s = Triage.explain ?sim_config s
let of_violation = Triage.of_violation
let pp = Triage.pp_finding
let to_json = Triage.finding_to_json
