(** Wall-clock accounting for the executor pipeline (the paper's Table 2
    breakdown). *)

type category =
  | Sim_startup
  | Sim_simulate
  | Utrace_extraction
  | Test_generation
  | Ctrace_extraction
  | Other

val all_categories : category list
val category_name : category -> string

type t

val create : ?metrics:Amulet_obs.Obs.t -> unit -> t
(** [metrics] (default noop) is the telemetry registry this stats instance
    carries; the executor threads it into the simulator and the fuzzer
    counts into it. *)

val registry : t -> Amulet_obs.Obs.t

val time : t -> category -> (unit -> 'a) -> 'a
(** Run the thunk, attributing its wall time to the category. *)

val add : t -> category -> float -> unit
val count_test_case : t -> unit
val count_violation : t -> unit
val count_validation : t -> unit

val count_fault : t -> Fault.t -> unit
(** Record one classified fault (discarded round, injected fault, crash). *)

val fault_counters : t -> Fault.Counters.t
val fault_counts : t -> (Fault.cls * int) list
val total : t -> float
val elapsed : t -> float
val seconds : t -> category -> float
val test_cases : t -> int
val violations : t -> int
val validations : t -> int

val close : t -> unit
(** Attribute unaccounted elapsed time to [Other]. *)

val throughput : t -> float
(** Test cases per second of elapsed time. *)

val pp : Format.formatter -> t -> unit
