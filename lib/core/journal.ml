(** Crash-safe campaign journaling: atomic checkpoints of campaign progress
    with embedded {!Violation_io} blocks, replayed by [fuzz --resume]. *)

exception Format_error of string

type t = {
  seed : int;
  n_programs : int;
  defense_name : string;
  contract_name : string;
  programs_run : int;
  discarded : int;
  test_cases : int;
  fault_counts : (Fault.cls * int) list;
  detection_times : float list;
  corpus : string option;
      (** serialised guided-fuzzing corpus checkpoint, if any *)
  violations : Violation_io.stored list;
}

let magic = "amulet-journal 1"
let violation_marker = "--- violation ---"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let output out (j : t) =
  Printf.fprintf out "%s\n" magic;
  Printf.fprintf out "[campaign]\n";
  Printf.fprintf out "seed=%d\n" j.seed;
  Printf.fprintf out "n_programs=%d\n" j.n_programs;
  Printf.fprintf out "defense=%s\n" j.defense_name;
  Printf.fprintf out "contract=%s\n" j.contract_name;
  Printf.fprintf out "programs_run=%d\n" j.programs_run;
  Printf.fprintf out "discarded=%d\n" j.discarded;
  Printf.fprintf out "test_cases=%d\n" j.test_cases;
  Printf.fprintf out "faults=%s\n"
    (String.concat ","
       (List.map
          (fun (c, n) -> Printf.sprintf "%s:%d" (Fault.class_name c) n)
          j.fault_counts));
  Printf.fprintf out "detection_times=%s\n"
    (String.concat "," (List.map (Printf.sprintf "%.6f") j.detection_times));
  (* the corpus checkpoint is multi-line text: store it OCaml-escaped on a
     single key=value line so pre-corpus readers (tolerant of unknown keys)
     and this parser both stay line-oriented *)
  (match j.corpus with
  | None -> ()
  | Some c -> Printf.fprintf out "corpus=%s\n" (String.escaped c));
  (* integrity: a truncation that happens to land on a violation-block
     boundary would otherwise parse cleanly with silently fewer
     violations — the count makes any such tear detectable *)
  Printf.fprintf out "violations=%d\n" (List.length j.violations);
  List.iter
    (fun s ->
      Printf.fprintf out "%s\n" violation_marker;
      Violation_io.output out s)
    j.violations

(** Atomic + durable checkpoint: write [path].tmp in full, flush and fsync
    the temp fd, rename over [path], then fsync the containing directory —
    a kill or power loss at any instant leaves the previous or the new
    checkpoint intact, never a torn file.  Without the fsyncs the rename
    can land on disk before the data, "committing" a truncated file. *)
let save (j : t) path =
  let tmp = path ^ ".tmp" in
  let out = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () ->
      output out j;
      flush out;
      Unix.fsync (Unix.descr_of_out_channel out));
  Sys.rename tmp path;
  (* the rename itself must be durable: fsync the directory entry.  Best
     effort — some filesystems refuse fsync on a directory fd. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | dirfd ->
      Fun.protect
        ~finally:(fun () -> Unix.close dirfd)
        (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let parse_faults s =
  if String.trim s = "" then []
  else
    List.map
      (fun item ->
        match String.index_opt item ':' with
        | Some colon -> (
            let name = String.sub item 0 colon in
            let count = String.sub item (colon + 1) (String.length item - colon - 1) in
            match Fault.class_of_name name, int_of_string_opt count with
            | Some c, Some n -> (c, n)
            | _ -> raise (Format_error ("bad fault count: " ^ item)))
        | None -> raise (Format_error ("bad fault count: " ^ item)))
      (String.split_on_char ',' s)

let parse_times s =
  if String.trim s = "" then []
  else
    List.map
      (fun item ->
        match float_of_string_opt item with
        | Some f -> f
        | None -> raise (Format_error ("bad detection time: " ^ item)))
      (String.split_on_char ',' s)

let load path : t =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  (match lines with
  | m :: _ when m = magic -> ()
  | _ -> raise (Format_error "missing journal magic header"));
  (* split into the campaign header and one chunk per embedded violation *)
  let chunks =
    List.fold_left
      (fun acc line ->
        if line = violation_marker then [] :: acc
        else match acc with cur :: rest -> (line :: cur) :: rest | [] -> [ [ line ] ])
      [ [] ] lines
    |> List.rev_map List.rev
  in
  let header, violation_chunks =
    match chunks with h :: v -> h, v | [] -> raise (Format_error "empty journal")
  in
  let meta = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line = magic || (String.length line > 0 && line.[0] = '[') || String.trim line = ""
      then ()
      else
        match String.index_opt line '=' with
        | Some eq ->
            Hashtbl.replace meta
              (String.sub line 0 eq)
              (String.sub line (eq + 1) (String.length line - eq - 1))
        | None -> raise (Format_error ("bad journal line: " ^ line)))
    header;
  let find k =
    match Hashtbl.find_opt meta k with
    | Some v -> v
    | None -> raise (Format_error ("missing journal key " ^ k))
  in
  let int_of k =
    match int_of_string_opt (find k) with
    | Some n -> n
    | None -> raise (Format_error ("bad integer for " ^ k))
  in
  let violations =
    List.map
      (fun chunk ->
        try Violation_io.parse chunk
        with Violation_io.Format_error e ->
          raise (Format_error ("embedded violation: " ^ e)))
      (List.filter (fun c -> c <> []) violation_chunks)
  in
  (match Hashtbl.find_opt meta "violations" with
  | Some n when int_of_string_opt n <> Some (List.length violations) ->
      raise
        (Format_error
           (Printf.sprintf "journal truncated: header says %s violations, found %d"
              n (List.length violations)))
  | _ -> ());
  {
    seed = int_of "seed";
    n_programs = int_of "n_programs";
    defense_name = find "defense";
    contract_name = find "contract";
    programs_run = int_of "programs_run";
    discarded = int_of "discarded";
    test_cases = int_of "test_cases";
    fault_counts = parse_faults (find "faults");
    detection_times = parse_times (find "detection_times");
    corpus =
      (match Hashtbl.find_opt meta "corpus" with
      | None -> None
      | Some s -> (
          try Some (Scanf.unescaped s)
          with Scanf.Scan_failure _ | Failure _ ->
            raise (Format_error "bad corpus escape")));
    violations;
  }

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovery =
  | Resumed of t
  | Quarantined of { corrupt_path : string; error : string }
  | Fresh

let recover path =
  if not (Sys.file_exists path) then Fresh
  else
    match load path with
    | j -> Resumed j
    | exception (Format_error e | Violation_io.Format_error e) ->
        (* a torn checkpoint (crash between write and fsync on a pre-fsync
           journal, disk corruption, truncation) must not kill the campaign:
           move it aside for triage and start over *)
        let corrupt_path = path ^ ".corrupt" in
        (try Sys.rename path corrupt_path
         with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
        Quarantined { corrupt_path; error = e }
