(** Crash-safe campaign journaling: atomic checkpoints of campaign progress
    with embedded {!Violation_io} blocks, replayed by [fuzz --resume]. *)

exception Format_error of string

type t = {
  seed : int;
  n_programs : int;
  defense_name : string;
  contract_name : string;
  programs_run : int;
  discarded : int;
  test_cases : int;
  fault_counts : (Fault.cls * int) list;
  detection_times : float list;
  violations : Violation_io.stored list;
}

let magic = "amulet-journal 1"
let violation_marker = "--- violation ---"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let output out (j : t) =
  Printf.fprintf out "%s\n" magic;
  Printf.fprintf out "[campaign]\n";
  Printf.fprintf out "seed=%d\n" j.seed;
  Printf.fprintf out "n_programs=%d\n" j.n_programs;
  Printf.fprintf out "defense=%s\n" j.defense_name;
  Printf.fprintf out "contract=%s\n" j.contract_name;
  Printf.fprintf out "programs_run=%d\n" j.programs_run;
  Printf.fprintf out "discarded=%d\n" j.discarded;
  Printf.fprintf out "test_cases=%d\n" j.test_cases;
  Printf.fprintf out "faults=%s\n"
    (String.concat ","
       (List.map
          (fun (c, n) -> Printf.sprintf "%s:%d" (Fault.class_name c) n)
          j.fault_counts));
  Printf.fprintf out "detection_times=%s\n"
    (String.concat "," (List.map (Printf.sprintf "%.6f") j.detection_times));
  List.iter
    (fun s ->
      Printf.fprintf out "%s\n" violation_marker;
      Violation_io.output out s)
    j.violations

(** Atomic checkpoint: write [path].tmp in full, then rename over [path] —
    a kill at any instant leaves the previous or the new checkpoint intact,
    never a torn file. *)
let save (j : t) path =
  let tmp = path ^ ".tmp" in
  let out = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> output out j);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let parse_faults s =
  if String.trim s = "" then []
  else
    List.map
      (fun item ->
        match String.index_opt item ':' with
        | Some colon -> (
            let name = String.sub item 0 colon in
            let count = String.sub item (colon + 1) (String.length item - colon - 1) in
            match Fault.class_of_name name, int_of_string_opt count with
            | Some c, Some n -> (c, n)
            | _ -> raise (Format_error ("bad fault count: " ^ item)))
        | None -> raise (Format_error ("bad fault count: " ^ item)))
      (String.split_on_char ',' s)

let parse_times s =
  if String.trim s = "" then []
  else
    List.map
      (fun item ->
        match float_of_string_opt item with
        | Some f -> f
        | None -> raise (Format_error ("bad detection time: " ^ item)))
      (String.split_on_char ',' s)

let load path : t =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  (match lines with
  | m :: _ when m = magic -> ()
  | _ -> raise (Format_error "missing journal magic header"));
  (* split into the campaign header and one chunk per embedded violation *)
  let chunks =
    List.fold_left
      (fun acc line ->
        if line = violation_marker then [] :: acc
        else match acc with cur :: rest -> (line :: cur) :: rest | [] -> [ [ line ] ])
      [ [] ] lines
    |> List.rev_map List.rev
  in
  let header, violation_chunks =
    match chunks with h :: v -> h, v | [] -> raise (Format_error "empty journal")
  in
  let meta = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line = magic || (String.length line > 0 && line.[0] = '[') || String.trim line = ""
      then ()
      else
        match String.index_opt line '=' with
        | Some eq ->
            Hashtbl.replace meta
              (String.sub line 0 eq)
              (String.sub line (eq + 1) (String.length line - eq - 1))
        | None -> raise (Format_error ("bad journal line: " ^ line)))
    header;
  let find k =
    match Hashtbl.find_opt meta k with
    | Some v -> v
    | None -> raise (Format_error ("missing journal key " ^ k))
  in
  let int_of k =
    match int_of_string_opt (find k) with
    | Some n -> n
    | None -> raise (Format_error ("bad integer for " ^ k))
  in
  let violations =
    List.map
      (fun chunk ->
        try Violation_io.parse chunk
        with Violation_io.Format_error e ->
          raise (Format_error ("embedded violation: " ^ e)))
      (List.filter (fun c -> c <> []) violation_chunks)
  in
  {
    seed = int_of "seed";
    n_programs = int_of "n_programs";
    defense_name = find "defense";
    contract_name = find "contract";
    programs_run = int_of "programs_run";
    discarded = int_of "discarded";
    test_cases = int_of "test_cases";
    fault_counts = parse_faults (find "faults");
    detection_times = parse_times (find "detection_times");
    violations;
  }
