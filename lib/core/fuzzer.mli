(** The relational fuzzing round: generate a program and a boosted input
    population, collect contract and microarchitectural traces, and flag
    validated contract violations (Definition 2.1). *)

open Amulet_isa
open Amulet_contracts
open Amulet_defenses

type config = {
  n_base_inputs : int;
  boosts_per_input : int;
  contract : Contract.t option;  (** override the defense's default *)
  generator : Generator.config;
  executor_mode : Executor.mode;
  engine : Engine.kind;  (** execution backend (trace-invisible) *)
  trace_format : Utrace.format;
  boot_insts : int;
  sim_config : Amulet_uarch.Config.t option;  (** amplification override *)
  deadline_ms : float option;  (** wall-clock budget per round *)
  quarantine_dir : string option;  (** corpus dir for discarded rounds *)
  chaos : Fault.injector option;  (** fault injection (self-tests) *)
  isolate_rounds : bool;  (** contain exceptions escaping a round *)
}

val default_config : config

type t

val create :
  ?cfg:config -> ?metrics:Amulet_obs.Obs.t -> seed:int -> Defense.t -> t
(** [metrics] (default noop) receives the [fuzzer.*] counters and is
    threaded through stats/engine/executor down to the simulator's
    [uarch.*] hardware counters. *)

val stats : t -> Stats.t
val contract : t -> Contract.t

val quarantined : t -> int
(** Test cases written to the quarantine corpus so far. *)

val reseed : t -> seed:int -> unit
(** Replace the PRNG stream; campaigns reseed per round so every round is
    reproducible in isolation (the property journal resume relies on). *)

type round_result =
  | No_violation of { test_cases : int }
  | Found of Violation.t
  | Discarded of Fault.t

val test_program : t -> Program.flat -> round_result
(** Fuzz one (typically generated) program: build the input population,
    execute, compare within contract classes, validate candidates under a
    shared context. *)

val round : t -> round_result
(** Generate a fresh random program and fuzz it. *)
