(** The relational fuzzing round: generate a program and a boosted input
    population, collect contract and microarchitectural traces, and flag
    validated contract violations (Definition 2.1). *)

open Amulet_isa
open Amulet_contracts

type config = {
  n_base_inputs : int;
  boosts_per_input : int;
  contract : Contract.t option;  (** override the defense's default *)
  generation : Run_spec.generation;  (** how test programs are produced *)
  generator : Generator.config;
      (** effective base generator config (= [generation]'s base with the
          defense's sandbox-pages override applied after {!create}) *)
  executor_mode : Executor.mode;
  engine : Engine.kind;  (** execution backend (trace-invisible) *)
  trace_format : Utrace.format;
  boot_insts : int;
  sim_config : Amulet_uarch.Config.t option;  (** amplification override *)
  deadline_ms : float option;  (** wall-clock budget per round *)
  quarantine_dir : string option;  (** corpus dir for discarded rounds *)
  chaos : Fault.injector option;  (** fault injection (self-tests) *)
  isolate_rounds : bool;  (** contain exceptions escaping a round *)
  static_filter : Run_spec.static_filter;  (** static leakage pre-filter *)
}

val config_of_spec : Run_spec.t -> config
(** Project a {!Run_spec.t} onto the fuzzer's internal knobs (campaign-level
    fields — rounds, budget, stop-after — are not the fuzzer's concern). *)

type t

val create :
  ?metrics:Amulet_obs.Obs.t -> ?engine:Engine.t * Stats.t -> Run_spec.t -> t
(** Build a fuzzer from a {!Run_spec.t} (defense, seed and all execution
    knobs live in the spec).  [metrics] (default noop) receives the
    [fuzzer.*] counters and is threaded through stats/engine/executor down
    to the simulator's [uarch.*] hardware counters.  [engine] injects an
    existing (typically warmed) engine and its stats sink instead of
    building one — the sweep orchestrator uses this to reuse one pooled
    engine across every job of the same defense config; the spec's
    [chaos] is ignored for injected engines (chaos arms at executor
    creation). *)

val stats : t -> Stats.t
val contract : t -> Contract.t

exception Budget
(** Raised mid-round when the campaign-level budget check installed by
    {!set_budget_check} trips.  Unlike {!Fault.Deadline_exceeded}, this is
    {e not} contained by [isolate_rounds]: the partial round is abandoned
    and the caller rolls back to the last completed round boundary. *)

val set_budget_check : t -> (unit -> bool) -> unit
(** Install a whole-run budget predicate, polled at every per-round
    deadline checkpoint; when it returns [true], the round raises
    {!Budget}. *)

val quarantined : t -> int
(** Test cases written to the quarantine corpus so far. *)

val corpus : t -> Amulet_corpus.Corpus.t option
(** The live seed corpus ([Some] iff the spec's generation strategy is
    [Guided]). *)

val corpus_snapshot : t -> string option
(** Serialised corpus checkpoint ({!Amulet_corpus.Corpus.to_string});
    [None] for [Random] specs.  Campaigns embed this in journal
    checkpoints so resume continues with the same corpus. *)

val restore_corpus : t -> string -> unit
(** Replace the live corpus with a deserialised checkpoint (no-op for
    [Random] specs).  Raises [Failure] on malformed input. *)

val reseed : t -> seed:int -> unit
(** Replace the PRNG stream; campaigns reseed per round so every round is
    reproducible in isolation (the property journal resume relies on). *)

type round_result =
  | No_violation of { test_cases : int }
  | Found of Violation.t
  | Discarded of Fault.t
  | Screened
      (** the static pre-filter proved the generated program leak-free and
          skipped simulation ([static_filter = Screen] only) *)

val test_program : t -> Program.flat -> round_result
(** Fuzz one (typically generated) program: build the input population,
    execute, compare within contract classes, validate candidates under a
    shared context. *)

val round : t -> round_result
(** Run one fuzzing round per the spec's generation strategy ([Random]:
    fresh draw; [Guided]: corpus-scheduled generate-or-mutate with
    coverage-feedback admission), applying the spec's [static_filter]
    first. *)
