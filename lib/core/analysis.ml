(** Violation analysis (paper §3.3): root-cause support and unique-violation
    identification.

    The paper's workflow re-runs a violating test pair with gem5 debug logs
    enabled, diffs memory accesses side by side, traces the leaking address
    back through the program dataflow, and then filters future duplicates by
    a signature (a pattern in the debug logs).  This module automates all
    three steps over the simulator's structured event log. *)

open Amulet_isa
open Amulet_uarch

(* ------------------------------------------------------------------ *)
(* Signatures: the known leak classes of the paper                     *)
(* ------------------------------------------------------------------ *)

(** Leak classes in the paper's naming (§4.5–§4.8 plus the baseline
    Spectre variants). *)
type leak_class =
  | Spectre_v1_install  (** baseline: transient load installs a line *)
  | Spectre_v1_evict  (** baseline: transient load evicts a primed line *)
  | Spectre_v4  (** store-bypass (memory-dependence) leak *)
  | Spec_eviction_uv1  (** InvisiSpec: spec miss triggers L1 replacement *)
  | Mshr_interference_uv2  (** InvisiSpec: expose stalled by MSHR contention *)
  | Store_not_cleaned_uv3  (** CleanupSpec: speculative store not cleaned *)
  | Split_not_cleaned_uv4  (** CleanupSpec: split request not cleaned *)
  | Too_much_cleaning_uv5  (** CleanupSpec: non-spec load cleaned away *)
  | Unxpec_kv2  (** CleanupSpec: cleanup-latency L1I channel *)
  | Tainted_store_tlb_kv3  (** STT: tainted store fills the D-TLB *)
  | First_load_unprotected_uv6  (** SpecLFB: first spec load not delayed *)
  | Prefetcher_leak
      (** extension study (§5.2): a prefetch trained by a transient access
          installs outside the defense's protection *)
  | Unknown

let class_name = function
  | Spectre_v1_install -> "spectre-v1 (speculative install)"
  | Spectre_v1_evict -> "spectre-v1 (speculative eviction)"
  | Spectre_v4 -> "spectre-v4 (store bypass)"
  | Spec_eviction_uv1 -> "UV1: speculative L1D eviction"
  | Mshr_interference_uv2 -> "UV2: same-core speculative interference (MSHR)"
  | Store_not_cleaned_uv3 -> "UV3: speculative store not cleaned"
  | Split_not_cleaned_uv4 -> "UV4: split request not cleaned"
  | Too_much_cleaning_uv5 -> "UV5: too much cleaning"
  | Unxpec_kv2 -> "KV2: unXpec (cleanup-latency L1I channel)"
  | Tainted_store_tlb_kv3 -> "KV3: tainted store fills TLB"
  | First_load_unprotected_uv6 -> "UV6: first speculative load unprotected"
  | Prefetcher_leak -> "prefetcher leak: transient access trained a prefetch"
  | Unknown -> "unclassified"

(* Facts extracted from one event log. *)
type log_facts = {
  spec_evictions : bool;
  mshr_stall_expose : bool;
  mshr_stall_any : bool;
  cleanup_missing_store : bool;
  cleanup_missing_split : bool;
  cleaned_lines : int list;
  nonspec_access_lines : int list;  (** architectural loads and stores *)
  spec_access_lines : int list;
  tainted_store_tlb : bool;
  lfb_unprotected : bool;
  spec_trained_prefetch : bool;
  memdep_squash : bool;
  branch_squash : bool;
  l1i_installs_after_exec : int;
}

let facts_of (events : Event.t list) : log_facts =
  let spec_evictions = ref false in
  let mshr_stall_expose = ref false in
  let mshr_stall_any = ref false in
  let cleanup_missing_store = ref false in
  let cleanup_missing_split = ref false in
  let cleaned = ref [] in
  let nonspec_loads = ref [] in
  let spec_lines = ref [] in
  let tainted_store_tlb = ref false in
  let lfb_unprotected = ref false in
  let spec_trained_prefetch = ref false in
  let memdep_squash = ref false in
  let branch_squash = ref false in
  let l1i_installs = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Spec_eviction _ -> spec_evictions := true
      | Event.Mshr_stall { kind = Event.Expose; _ } ->
          mshr_stall_expose := true;
          mshr_stall_any := true
      | Event.Mshr_stall _ -> mshr_stall_any := true
      | Event.Cleanup_missing { reason; _ } ->
          if String.length reason >= 5 && String.sub reason 0 5 = "split" then
            cleanup_missing_split := true
          else cleanup_missing_store := true
      | Event.Cleanup { line; _ } -> cleaned := line :: !cleaned
      | Event.Mem_access
          { kind = Event.Demand_load | Event.Store; spec = false; line; _ } ->
          nonspec_loads := line :: !nonspec_loads
      | Event.Mem_access { kind = Event.Prefetch; spec = true; _ } ->
          spec_trained_prefetch := true
      | Event.Mem_access { spec = true; line; _ } -> spec_lines := line :: !spec_lines
      | Event.Tlb_fill { tainted = true; by_store = true; _ } ->
          tainted_store_tlb := true
      | Event.Lfb_unprotected _ -> lfb_unprotected := true
      | Event.Squashed { reason = Event.Memdep_violation; _ } -> memdep_squash := true
      | Event.Squashed { reason = Event.Branch_mispredict; _ } -> branch_squash := true
      | Event.Cache_install { cache = "L1I"; _ } -> incr l1i_installs
      | Event.Mem_access _ | Event.Fetched _ | Event.Predicted _
      | Event.Executed _ | Event.Cache_install _ | Event.Cache_evict _
      | Event.Mshr_alloc _ | Event.Spec_buffer_fill _ | Event.Expose_issued _
      | Event.Split_access _ | Event.Taint_blocked _ | Event.Committed _
      | Event.Tlb_fill _ ->
          ())
    events;
  {
    spec_evictions = !spec_evictions;
    mshr_stall_expose = !mshr_stall_expose;
    mshr_stall_any = !mshr_stall_any;
    cleanup_missing_store = !cleanup_missing_store;
    cleanup_missing_split = !cleanup_missing_split;
    cleaned_lines = !cleaned;
    nonspec_access_lines = !nonspec_loads;
    spec_access_lines = !spec_lines;
    tainted_store_tlb = !tainted_store_tlb;
    lfb_unprotected = !lfb_unprotected;
    spec_trained_prefetch = !spec_trained_prefetch;
    memdep_squash = !memdep_squash;
    branch_squash = !branch_squash;
    l1i_installs_after_exec = !l1i_installs;
  }

(** Classify a violation from the event logs of its two runs, following the
    paper's signature rules (§3.3b).  Order matters: the most specific
    defense-bug signatures win over the generic Spectre classes. *)
let classify ~(defense : Amulet_defenses.Defense.t) (events_a : Event.t list)
    (events_b : Event.t list) : leak_class =
  let fa = facts_of events_a and fb = facts_of events_b in
  let either f = f fa || f fb in
  let is_invisispec =
    match defense.Amulet_defenses.Defense.defense with
    | Config.Invisispec _ -> true
    | _ -> false
  in
  if either (fun f -> f.spec_evictions) then Spec_eviction_uv1
  else if either (fun f -> f.mshr_stall_expose) then Mshr_interference_uv2
  else if is_invisispec && either (fun f -> f.mshr_stall_any) then
    (* speculative fills holding scarce MSHRs delayed other requests past
       the end of the test: the same-core interference family *)
    Mshr_interference_uv2
  else if either (fun f -> f.cleanup_missing_store) then Store_not_cleaned_uv3
  else if either (fun f -> f.cleanup_missing_split) then Split_not_cleaned_uv4
  else if
    (* UV5: a cleanup invalidated a line that architectural execution (a
       non-speculative load or store) had touched *)
    either (fun f ->
        List.exists (fun l -> List.mem l f.nonspec_access_lines) f.cleaned_lines)
  then Too_much_cleaning_uv5
  else if either (fun f -> f.tainted_store_tlb) then Tainted_store_tlb_kv3
  else if either (fun f -> f.lfb_unprotected) then First_load_unprotected_uv6
  else if
    (* a transiently-trained prefetch on a cache-protecting defense: the
       prefetch installs what the defense would have hidden *)
    (match defense.Amulet_defenses.Defense.defense with
    | Config.Invisispec _ | Config.Speclfb _ | Config.Ghostminion
    | Config.Delay_on_miss ->
        true
    | _ -> false)
    && either (fun f -> f.spec_trained_prefetch)
  then Prefetcher_leak
  else if
    (match defense.Amulet_defenses.Defense.defense with
    | Config.Cleanupspec _ -> true
    | _ -> false)
    && defense.Amulet_defenses.Defense.include_l1i
    && fa.l1i_installs_after_exec <> fb.l1i_installs_after_exec
  then Unxpec_kv2
  else if either (fun f -> f.memdep_squash) then Spectre_v4
  else if either (fun f -> f.branch_squash) then
    (* distinguish install- vs evict-visible Spectre-v1 by whether the two
       runs' speculative lines appear directly in the trace difference *)
    if either (fun f -> f.spec_access_lines <> []) then Spectre_v1_install
    else Spectre_v1_evict
  else Unknown

(** Classify by re-running the violating pair with logging enabled.  Pure:
    callers that want the signature recorded build a new value with
    {!Violation.with_signature}. *)
let classify_violation (executor : Executor.t) (v : Violation.t) : leak_class =
  let events_a =
    (Executor.run executor ~context:v.Violation.context ~log:true
       v.Violation.program v.Violation.input_a)
      .Executor.events
  in
  let events_b =
    (Executor.run executor ~context:v.Violation.context ~log:true
       v.Violation.program v.Violation.input_b)
      .Executor.events
  in
  let defense =
    match Amulet_defenses.Defense.find v.Violation.defense_name with
    | Some d -> d
    | None -> Amulet_defenses.Defense.baseline
  in
  classify ~defense events_a events_b

(* ------------------------------------------------------------------ *)
(* Side-by-side diff (the paper's root-cause script)                   *)
(* ------------------------------------------------------------------ *)

type op_row = { row_cycle : int; row_pc : int; row_kind : string; row_addr : int }

let rows_of events =
  List.filter_map
    (fun (e : Event.t) ->
      match e with
      | Event.Mem_access { cycle; pc; kind; addr; spec; _ } ->
          Some
            {
              row_cycle = cycle;
              row_pc = pc;
              row_kind = Event.mem_kind_name kind ^ (if spec then "(s)" else "");
              row_addr = addr;
            }
      | Event.Cleanup { cycle; line; _ } ->
          Some { row_cycle = cycle; row_pc = 0; row_kind = "Undo"; row_addr = line }
      | Event.Squashed { cycle; pc; _ } ->
          Some { row_cycle = cycle; row_pc = pc; row_kind = "Squash"; row_addr = 0 }
      | _ -> None)
    events

(** Print the two runs' memory operations side by side, highlighting
    differing rows with [*] — the layout of the paper's Tables 9/10. *)
let pp_side_by_side fmt (events_a : Event.t list) (events_b : Event.t list) =
  let ra = Array.of_list (rows_of events_a) in
  let rb = Array.of_list (rows_of events_b) in
  let n = max (Array.length ra) (Array.length rb) in
  Format.fprintf fmt "%-38s | %-38s@." "Input A (cycle pc type addr)"
    "Input B (cycle pc type addr)";
  for i = 0 to n - 1 do
    let cell r =
      if i < Array.length r then
        let x = r.(i) in
        Printf.sprintf "%5d 0x%06x %-8s 0x%x" x.row_cycle x.row_pc x.row_kind x.row_addr
      else ""
    in
    let ca = cell ra and cb = cell rb in
    let marker = if ca <> cb then "*" else " " in
    Format.fprintf fmt "%s%-37s | %-38s@." marker ca cb
  done

(* ------------------------------------------------------------------ *)
(* Dataflow walk-back (find the mis-speculated source of a leak)       *)
(* ------------------------------------------------------------------ *)

(** Static use-def walk: starting from the address registers of the
    instruction at [index], follow defs backwards and report the chain of
    instruction indices that feed the leaking address.  This is the
    "trace back along the program data flow" step of §3.3a. *)
let dataflow_back (flat : Program.flat) ~index : int list =
  let wanted = ref [] in
  (match Inst.mem_access (Program.get flat index) with
  | Some (m, _, _) -> wanted := Operand.address_regs (Operand.Mem m)
  | None -> ());
  let chain = ref [] in
  let i = ref (index - 1) in
  while !i >= 0 && !wanted <> [] do
    let inst = Program.get flat !i in
    let dests = Inst.dest_regs inst in
    let hits = List.filter (fun r -> List.memq r !wanted) dests in
    if hits <> [] then begin
      chain := !i :: !chain;
      wanted :=
        List.filter (fun r -> not (List.memq r hits)) !wanted
        @ List.filter (fun r -> not (Reg.equal r Reg.sandbox_base)) (Inst.source_regs inst)
    end;
    decr i
  done;
  !chain

(** Identify the instruction most likely responsible for a state-snapshot
    difference: the youngest speculative access in either log whose line
    appears in the trace diff. *)
let leaking_access (events : Event.t list) ~(diff_lines : int list) =
  List.fold_left
    (fun acc (e : Event.t) ->
      match e with
      | Event.Mem_access { pc; line; spec = true; _ } when List.mem line diff_lines ->
          Some pc
      | _ -> acc)
    None events
