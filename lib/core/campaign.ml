(** Testing campaigns: many fuzzing rounds against one defense, with the
    metrics the paper's evaluation reports (violations found, average
    detection time, unique violation classes, testing throughput, campaign
    execution time — Tables 3, 4, 6).

    Campaigns are supervised: every round is reseeded from (campaign seed,
    round index) so it is reproducible in isolation, misbehaving rounds
    degrade to classified {!Fault.t} discards, progress can be journaled
    crash-safely and resumed, and parallel instances are restarted on crash
    and merged defensively. *)

open Amulet_defenses
module Obs = Amulet_obs.Obs

type config = {
  fuzzer : Fuzzer.config;
  n_programs : int;
  seed : int;
  stop_after_violations : int option;
      (** stop the campaign early once this many violations are found *)
  classify : bool;  (** run root-cause signature classification *)
}

let default_config =
  {
    fuzzer = Fuzzer.default_config;
    n_programs = 20;
    seed = 42;
    stop_after_violations = None;
    classify = true;
  }

type result = {
  defense : Defense.t;
  contract_name : string;
  violations : Violation.t list;
  violation_classes : (Analysis.leak_class * int) list;
  programs_run : int;
  discarded_programs : int;
  fault_counts : (Fault.cls * int) list;
      (** per-class counts of every discarded/contained fault *)
  quarantined : int;  (** test cases saved to the quarantine corpus *)
  test_cases : int;
  duration : float;  (** seconds *)
  throughput : float;  (** test cases / second *)
  detection_times : float list;
      (** per violation: seconds since the previous find (or campaign start) *)
  metrics : Obs.Snapshot.t;
      (** telemetry delta accumulated over the campaign (empty unless a
          live registry was passed in) *)
}

let count_classes classes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c -> Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
    classes;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []

(* Round [i] of a campaign always runs on this derived seed, whether it is
   reached in one uninterrupted run or after any number of kill/--resume
   cycles: resumability depends only on (seed, i). *)
let round_seed seed i = seed + ((i + 1) * 2654435761)

(* The contract a campaign tests is knowable from its config alone — used
   when no round ever completed, so no result carries the name. *)
let configured_contract_name (cfg : config) (defense : Defense.t) =
  (Option.value cfg.fuzzer.Fuzzer.contract ~default:defense.Defense.contract)
    .Amulet_contracts.Contract.name

let classify_one cfg defense v =
  let executor =
    Executor.create ~mode:Executor.Opt ?sim_config:cfg.fuzzer.Fuzzer.sim_config
      ~format:cfg.fuzzer.Fuzzer.trace_format defense (Stats.create ())
  in
  Executor.start_program executor;
  Analysis.classify_violation executor v

(** Run a campaign of [cfg.n_programs] fuzzing rounds against [defense].
    [on_violation] fires as findings come in (progress reporting).
    [journal_path] checkpoints progress atomically every [checkpoint_every]
    rounds; [resume] continues from a loaded checkpoint instead of round
    0. *)
let run ?(on_violation = fun (_ : Violation.t) -> ()) ?journal_path
    ?(checkpoint_every = 10) ?resume ?(metrics = Obs.noop) (cfg : config)
    (defense : Defense.t) : result =
  let fuzzer = Fuzzer.create ~cfg:cfg.fuzzer ~metrics ~seed:cfg.seed defense in
  (* campaign-local telemetry delta, even on a registry shared across runs *)
  let metrics_before = Obs.Snapshot.of_registry metrics in
  let started = Obs.Clock.now_s () in
  (* baselines carried over from the checkpoint being resumed *)
  let base_programs, base_discarded, base_tc, base_faults, base_times, base_violations =
    match resume with
    | None -> 0, 0, 0, [], [], []
    | Some (j : Journal.t) ->
        let vs =
          List.map
            (Violation_io.rehydrate ?sim_config:cfg.fuzzer.Fuzzer.sim_config)
            j.Journal.violations
        in
        ( j.Journal.programs_run,
          j.Journal.discarded,
          j.Journal.test_cases,
          j.Journal.fault_counts,
          j.Journal.detection_times,
          vs )
  in
  let violations = ref (List.rev base_violations) in
  let classes =
    ref (if cfg.classify then List.map (classify_one cfg defense) base_violations else [])
  in
  let detection_times = ref (List.rev base_times) in
  let last_find = ref started in
  let test_cases = ref base_tc in
  let discarded = ref base_discarded in
  let programs = ref base_programs in
  let stop = ref false in
  let merged_faults () =
    let c = Fault.Counters.create () in
    Fault.Counters.add_list c base_faults;
    Fault.Counters.merge c (Stats.fault_counters (Fuzzer.stats fuzzer));
    Fault.Counters.to_list c
  in
  let checkpoint () =
    match journal_path with
    | None -> ()
    | Some path ->
        Journal.save
          {
            Journal.seed = cfg.seed;
            n_programs = cfg.n_programs;
            defense_name = defense.Defense.name;
            contract_name = (Fuzzer.contract fuzzer).Amulet_contracts.Contract.name;
            programs_run = !programs;
            discarded = !discarded;
            test_cases = !test_cases;
            fault_counts = merged_faults ();
            detection_times = List.rev !detection_times;
            violations = List.rev_map Violation_io.of_violation !violations;
          }
          path
  in
  (match cfg.stop_after_violations with
  | Some k when List.length !violations >= k -> stop := true
  | _ -> ());
  while (not !stop) && !programs < cfg.n_programs do
    Fuzzer.reseed fuzzer ~seed:(round_seed cfg.seed !programs);
    incr programs;
    (match Fuzzer.round fuzzer with
    | Fuzzer.No_violation _ -> ()
    | Fuzzer.Discarded _ -> incr discarded
    | Fuzzer.Found v ->
        let now = Obs.Clock.now_s () in
        detection_times := (now -. !last_find) :: !detection_times;
        last_find := now;
        if cfg.classify then classes := classify_one cfg defense v :: !classes;
        violations := v :: !violations;
        on_violation v;
        (match cfg.stop_after_violations with
        | Some k when List.length !violations >= k -> stop := true
        | _ -> ()));
    (* throughput accounting uses the fuzzer's own test-case counter *)
    test_cases := base_tc + Stats.test_cases (Fuzzer.stats fuzzer);
    if (!programs - base_programs) mod checkpoint_every = 0 then checkpoint ()
  done;
  checkpoint ();
  let duration = Obs.Clock.elapsed_s ~since:started in
  {
    defense;
    contract_name = (Fuzzer.contract fuzzer).Amulet_contracts.Contract.name;
    violations = List.rev !violations;
    violation_classes = count_classes !classes;
    programs_run = !programs;
    discarded_programs = !discarded;
    fault_counts = merged_faults ();
    quarantined = Fuzzer.quarantined fuzzer;
    test_cases = !test_cases;
    duration;
    throughput = (if duration > 0. then float_of_int !test_cases /. duration else 0.);
    detection_times = List.rev !detection_times;
    metrics =
      Obs.Snapshot.diff ~older:metrics_before
        ~newer:(Obs.Snapshot.of_registry metrics);
  }

(* ------------------------------------------------------------------ *)
(* Parallel campaigns                                                  *)
(* ------------------------------------------------------------------ *)

(* Merge surviving instances' results.  Total when [results] is empty — an
   all-crashed campaign degrades to a structured failed result (zero
   programs, the crashes in [fault_counts]) instead of aborting the caller:
   [fallback_contract] supplies the name no survivor can, and [elapsed] the
   wall clock no instance reported. *)
let merge_results (defense : Defense.t) ~fallback_contract ~elapsed crash_counts
    results : result =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let duration =
    match results with
    | [] -> elapsed
    | _ -> List.fold_left (fun acc r -> Float.max acc r.duration) 0. results
  in
  let merged_classes =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        List.iter
          (fun (c, n) ->
            Hashtbl.replace tbl c (n + Option.value (Hashtbl.find_opt tbl c) ~default:0))
          r.violation_classes)
      results;
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  in
  let fault_counts =
    let c = Fault.Counters.create () in
    List.iter (fun r -> Fault.Counters.add_list c r.fault_counts) results;
    Fault.Counters.merge c crash_counts;
    Fault.Counters.to_list c
  in
  let test_cases = sum (fun r -> r.test_cases) in
  {
    defense;
    contract_name =
      (match results with r :: _ -> r.contract_name | [] -> fallback_contract);
    violations = List.concat_map (fun r -> r.violations) results;
    violation_classes = merged_classes;
    programs_run = sum (fun r -> r.programs_run);
    discarded_programs = sum (fun r -> r.discarded_programs);
    fault_counts;
    quarantined = sum (fun r -> r.quarantined);
    test_cases;
    duration;
    throughput = (if duration > 0. then float_of_int test_cases /. duration else 0.);
    detection_times = List.concat_map (fun r -> r.detection_times) results;
    metrics =
      List.fold_left
        (fun acc r -> Obs.Snapshot.merge acc r.metrics)
        Obs.Snapshot.empty results;
  }

(** Run [instances] independent campaign instances on parallel domains —
    the paper's methodology (16 or 100 parallel AMuLeT instances) — each
    with a distinct seed derived from [cfg.seed], and merge the results.

    Supervised: a crashing instance never takes down the others — its
    domain is joined defensively, the crash is recorded as an
    {!Fault.Instance_crash}, and the instance is restarted with a freshly
    derived seed up to [retries] times.  The merge covers every instance
    that completed; if {e all} instances exhaust their retries the call
    still returns a structured (failed) result whose [fault_counts] carry
    the crashes, rather than aborting a long campaign.  [instance_cfg]
    overrides the per-instance config derivation (supervision tests use it
    to plant a crashing instance).  [metrics], when live, makes each domain
    record telemetry into a private registry; the merged snapshot lands in
    [result.metrics]. *)
let run_parallel ?(instances = 4) ?(retries = 2) ?instance_cfg
    ?(metrics = Obs.noop) (cfg : config) (defense : Defense.t) : result =
  assert (instances >= 1);
  let started = Obs.Clock.now_s () in
  (* domains must not share one registry (unsynchronised counters); each
     instance gets its own and the snapshots merge after the joins *)
  let telemetry = Obs.is_enabled metrics in
  let cfg_of i attempt =
    let base =
      match instance_cfg with
      | Some f -> f i
      | None -> { cfg with seed = cfg.seed + (i * 7919) }
    in
    (* restarts must not replay the crashing seed *)
    { base with seed = base.seed + (attempt * 104729) }
  in
  let crash_counts = Fault.Counters.create () in
  let results = Array.make instances None in
  let pending = ref (List.init instances (fun i -> (i, 0))) in
  while !pending <> [] do
    let batch = !pending in
    pending := [];
    let domains =
      List.map
        (fun (i, attempt) ->
          ( i,
            attempt,
            Domain.spawn (fun () ->
                let dm = if telemetry then Obs.create () else Obs.noop in
                try Ok (run ~metrics:dm (cfg_of i attempt) defense)
                with exn -> Error (Fault.exn_info exn)) ))
        batch
    in
    List.iter
      (fun (i, attempt, d) ->
        let outcome =
          (* the spawned thunk catches everything, but join defensively
             anyway: a domain that dies outside the thunk (e.g. out of
             memory) must not discard the other instances' results *)
          try Domain.join d with exn -> Error (Fault.exn_info exn)
        in
        match outcome with
        | Ok r -> results.(i) <- Some r
        | Error info ->
            Fault.Counters.record crash_counts (Fault.Instance_crash info);
            if attempt < retries then pending := (i, attempt + 1) :: !pending)
      domains
  done;
  merge_results defense
    ~fallback_contract:(configured_contract_name cfg defense)
    ~elapsed:(Obs.Clock.elapsed_s ~since:started)
    crash_counts
    (List.filter_map Fun.id (Array.to_list results))

let detected r = r.violations <> []

let avg_detection_time r =
  match r.detection_times with
  | [] -> None
  | ts -> Some (List.fold_left ( +. ) 0. ts /. float_of_int (List.length ts))

let unique_violations r = List.length r.violation_classes

let pp fmt r =
  Format.fprintf fmt "defense: %-22s contract: %-9s violations: %-3d unique: %d@."
    r.defense.Defense.name r.contract_name (List.length r.violations)
    (unique_violations r);
  Format.fprintf fmt "  programs: %d (%d discarded)  test cases: %d  time: %.1f s  throughput: %.0f tc/s@."
    r.programs_run r.discarded_programs r.test_cases r.duration r.throughput;
  (match r.fault_counts with
  | [] -> ()
  | counts ->
      Format.fprintf fmt "  faults:";
      List.iter
        (fun (c, n) -> Format.fprintf fmt " %s=%d" (Fault.class_name c) n)
        counts;
      if r.quarantined > 0 then Format.fprintf fmt "  (quarantined: %d)" r.quarantined;
      Format.fprintf fmt "@.");
  (match avg_detection_time r with
  | Some t -> Format.fprintf fmt "  avg detection time: %.2f s@." t
  | None -> ());
  List.iter
    (fun (c, n) -> Format.fprintf fmt "  %3dx %s@." n (Analysis.class_name c))
    r.violation_classes
