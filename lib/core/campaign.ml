(** Testing campaigns: many fuzzing rounds against one defense, with the
    metrics the paper's evaluation reports (violations found, average
    detection time, unique violation classes, testing throughput, campaign
    execution time — Tables 3, 4, 6).

    Campaigns are supervised: every round is reseeded from (campaign seed,
    round index) so it is reproducible in isolation, misbehaving rounds
    degrade to classified {!Fault.t} discards, progress can be journaled
    crash-safely and resumed, and parallel instances are restarted on crash
    and merged defensively. *)

open Amulet_defenses
module Obs = Amulet_obs.Obs

type result = {
  defense : Defense.t;
  contract_name : string;
  violations : Violation.t list;
  violation_classes : (Analysis.leak_class * int) list;
  programs_run : int;
  discarded_programs : int;
  fault_counts : (Fault.cls * int) list;
      (** per-class counts of every discarded/contained fault *)
  quarantined : int;  (** test cases saved to the quarantine corpus *)
  test_cases : int;
  duration : float;  (** seconds *)
  throughput : float;  (** test cases / second *)
  detection_times : float list;
      (** per violation: seconds since the previous find (or campaign start) *)
  budget_exhausted : bool;
      (** the run stopped because [budget_ms] ran out, not because it
          finished its rounds or hit [stop_after_violations] *)
  corpus : string option;
      (** final guided-fuzzing corpus checkpoint ([None] for random specs) *)
  metrics : Obs.Snapshot.t;
      (** telemetry delta accumulated over the campaign (empty unless a
          live registry was passed in) *)
}

let count_classes classes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c -> Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
    classes;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []

(* Round [i] of a campaign always runs on this derived seed, whether it is
   reached in one uninterrupted run or after any number of kill/--resume
   cycles: resumability depends only on (seed, i). *)
let round_seed seed i = seed + ((i + 1) * 2654435761)

(* Classify and return the signed copy of the violation: classification is
   pure, so detection time is the one place a signature is attached. *)
let classify_one (spec : Run_spec.t) v =
  let executor =
    Executor.create ~mode:Executor.Opt ?sim_config:spec.Run_spec.sim_config
      ~format:spec.Run_spec.trace_format spec.Run_spec.defense (Stats.create ())
  in
  Executor.start_program executor;
  let c = Analysis.classify_violation executor v in
  (c, Violation.with_signature (Analysis.class_name c) v)

(** Run a campaign of [spec.rounds] fuzzing rounds against [spec.defense].
    [on_violation] fires as findings come in (progress reporting).
    [journal_path] checkpoints progress atomically every [checkpoint_every]
    rounds; [resume] continues from a loaded checkpoint instead of round 0.
    [engine] injects a warmed engine + stats sink (sweep cache). *)
let run ?(on_violation = fun (_ : Violation.t) -> ())
    ?(on_round = fun (_ : int) -> ()) ?journal_path ?(checkpoint_every = 10)
    ?resume ?(metrics = Obs.noop) ?engine (spec : Run_spec.t) : result =
  let defense = spec.Run_spec.defense in
  let fuzzer = Fuzzer.create ~metrics ?engine spec in
  (* campaign-local telemetry delta, even on a registry shared across runs *)
  let metrics_before = Obs.Snapshot.of_registry metrics in
  let started = Obs.Clock.now_s () in
  (* the fuzzer's stats sink may be shared across campaigns (injected warm
     engine): account in deltas against its state at campaign start *)
  let tc0 = Stats.test_cases (Fuzzer.stats fuzzer) in
  let faults0 = Stats.fault_counts (Fuzzer.stats fuzzer) in
  (* baselines carried over from the checkpoint being resumed *)
  let base_programs, base_discarded, base_tc, base_faults, base_times, base_violations =
    match resume with
    | None -> 0, 0, 0, [], [], []
    | Some (j : Journal.t) ->
        let vs =
          List.map
            (Violation_io.rehydrate ?sim_config:spec.Run_spec.sim_config)
            j.Journal.violations
        in
        ( j.Journal.programs_run,
          j.Journal.discarded,
          j.Journal.test_cases,
          j.Journal.fault_counts,
          j.Journal.detection_times,
          vs )
  in
  (* resume the guided corpus from the checkpoint; a malformed snapshot
     degrades to a fresh corpus rather than killing the campaign (the
     journal itself loaded fine — only the embedded corpus is suspect) *)
  (match resume with
  | Some { Journal.corpus = Some c; _ } -> (
      try Fuzzer.restore_corpus fuzzer c with Failure _ -> ())
  | _ -> ());
  let violations = ref (List.rev base_violations) in
  let classes =
    ref
      (if spec.Run_spec.classify then
         List.map (fun v -> fst (classify_one spec v)) base_violations
       else [])
  in
  let detection_times = ref (List.rev base_times) in
  let last_find = ref started in
  let test_cases = ref base_tc in
  let discarded = ref base_discarded in
  let programs = ref base_programs in
  let stop = ref false in
  let budget_exhausted = ref false in
  let budget_hit () =
    match spec.Run_spec.budget_ms with
    | None -> false
    | Some b -> Obs.Clock.elapsed_ms ~since:started >= b
  in
  if spec.Run_spec.budget_ms <> None then Fuzzer.set_budget_check fuzzer budget_hit;
  let merged_faults () =
    let c = Fault.Counters.create () in
    Fault.Counters.add_list c base_faults;
    Fault.Counters.merge c (Stats.fault_counters (Fuzzer.stats fuzzer));
    (* subtract the shared sink's pre-campaign counts *)
    List.iter (fun (cls, n) -> Fault.Counters.record_class c ~n:(-n) cls) faults0;
    Fault.Counters.to_list c
  in
  let checkpoint () =
    match journal_path with
    | None -> ()
    | Some path ->
        Journal.save
          {
            Journal.seed = spec.Run_spec.seed;
            n_programs = spec.Run_spec.rounds;
            defense_name = defense.Defense.name;
            contract_name = (Fuzzer.contract fuzzer).Amulet_contracts.Contract.name;
            programs_run = !programs;
            discarded = !discarded;
            test_cases = !test_cases;
            fault_counts = merged_faults ();
            detection_times = List.rev !detection_times;
            corpus = Fuzzer.corpus_snapshot fuzzer;
            violations = List.rev_map Violation_io.of_violation !violations;
          }
          path
  in
  (match spec.Run_spec.stop_after_violations with
  | Some k when List.length !violations >= k -> stop := true
  | _ -> ());
  while (not !stop) && (not !budget_exhausted) && !programs < spec.Run_spec.rounds do
    if budget_hit () then budget_exhausted := true
    else begin
      Fuzzer.reseed fuzzer ~seed:(round_seed spec.Run_spec.seed !programs);
      incr programs;
      match Fuzzer.round fuzzer with
      | exception Fuzzer.Budget ->
          (* the budget tripped mid-round: abandon the partial round so the
             final checkpoint lands exactly on the last completed round
             boundary — resume replays the interrupted round from scratch *)
          decr programs;
          budget_exhausted := true
      | outcome ->
          (match outcome with
          | Fuzzer.No_violation _ | Fuzzer.Screened -> ()
          | Fuzzer.Discarded _ -> incr discarded
          | Fuzzer.Found v ->
              let now = Obs.Clock.now_s () in
              detection_times := (now -. !last_find) :: !detection_times;
              last_find := now;
              let v =
                if spec.Run_spec.classify then begin
                  let c, signed = classify_one spec v in
                  classes := c :: !classes;
                  signed
                end
                else v
              in
              violations := v :: !violations;
              on_violation v;
              (match spec.Run_spec.stop_after_violations with
              | Some k when List.length !violations >= k -> stop := true
              | _ -> ()));
          (* throughput accounting uses the fuzzer's own test-case counter;
             only advanced on completed rounds so a budget-abandoned partial
             round never leaks into the checkpoint *)
          test_cases := base_tc + (Stats.test_cases (Fuzzer.stats fuzzer) - tc0);
          if (!programs - base_programs) mod checkpoint_every = 0 then checkpoint ();
          (* after the checkpoint: a worker killed inside on_round (chaos)
             leaves a journal another worker can adopt at this boundary *)
          on_round !programs
    end
  done;
  checkpoint ();
  let duration = Obs.Clock.elapsed_s ~since:started in
  {
    defense;
    contract_name = (Fuzzer.contract fuzzer).Amulet_contracts.Contract.name;
    violations = List.rev !violations;
    violation_classes = count_classes !classes;
    programs_run = !programs;
    discarded_programs = !discarded;
    fault_counts = merged_faults ();
    quarantined = Fuzzer.quarantined fuzzer;
    test_cases = !test_cases;
    duration;
    throughput = (if duration > 0. then float_of_int !test_cases /. duration else 0.);
    detection_times = List.rev !detection_times;
    budget_exhausted = !budget_exhausted;
    corpus = Fuzzer.corpus_snapshot fuzzer;
    metrics =
      Obs.Snapshot.diff ~older:metrics_before
        ~newer:(Obs.Snapshot.of_registry metrics);
  }

(* ------------------------------------------------------------------ *)
(* Parallel campaigns                                                  *)
(* ------------------------------------------------------------------ *)

(* Merge surviving instances' results.  Total when [results] is empty — an
   all-crashed campaign degrades to a structured failed result (zero
   programs, the crashes in [fault_counts]) instead of aborting the caller:
   [fallback_contract] supplies the name no survivor can, and [elapsed] the
   wall clock no instance reported. *)
let merge_results (defense : Defense.t) ~fallback_contract ~elapsed crash_counts
    results : result =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let duration =
    match results with
    | [] -> elapsed
    | _ -> List.fold_left (fun acc r -> Float.max acc r.duration) 0. results
  in
  let merged_classes =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        List.iter
          (fun (c, n) ->
            Hashtbl.replace tbl c (n + Option.value (Hashtbl.find_opt tbl c) ~default:0))
          r.violation_classes)
      results;
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  in
  let fault_counts =
    let c = Fault.Counters.create () in
    List.iter (fun r -> Fault.Counters.add_list c r.fault_counts) results;
    Fault.Counters.merge c crash_counts;
    Fault.Counters.to_list c
  in
  let test_cases = sum (fun r -> r.test_cases) in
  {
    defense;
    contract_name =
      (match results with r :: _ -> r.contract_name | [] -> fallback_contract);
    violations = List.concat_map (fun r -> r.violations) results;
    violation_classes = merged_classes;
    programs_run = sum (fun r -> r.programs_run);
    discarded_programs = sum (fun r -> r.discarded_programs);
    fault_counts;
    quarantined = sum (fun r -> r.quarantined);
    test_cases;
    duration;
    throughput = (if duration > 0. then float_of_int test_cases /. duration else 0.);
    detection_times = List.concat_map (fun r -> r.detection_times) results;
    budget_exhausted = List.exists (fun r -> r.budget_exhausted) results;
    corpus = List.find_map (fun r -> r.corpus) results;
    metrics =
      List.fold_left
        (fun acc r -> Obs.Snapshot.merge acc r.metrics)
        Obs.Snapshot.empty results;
  }

(** Run [instances] independent campaign instances on parallel domains —
    the paper's methodology (16 or 100 parallel AMuLeT instances) — each
    with a distinct seed derived from [spec.seed], and merge the results.

    Supervised: a crashing instance never takes down the others — its
    domain is joined defensively, the crash is recorded as an
    {!Fault.Instance_crash}, and the instance is restarted with a freshly
    derived seed up to [retries] times.  The merge covers every instance
    that completed; if {e all} instances exhaust their retries the call
    still returns a structured (failed) result whose [fault_counts] carry
    the crashes, rather than aborting a long campaign.  [instance_spec]
    overrides the per-instance spec derivation (supervision tests use it
    to plant a crashing instance).  [metrics], when live, makes each domain
    record telemetry into a private registry; the merged snapshot lands in
    [result.metrics]. *)
let run_parallel ?(instances = 4) ?(retries = 2) ?instance_spec
    ?(metrics = Obs.noop) (spec : Run_spec.t) : result =
  assert (instances >= 1);
  let defense = spec.Run_spec.defense in
  let started = Obs.Clock.now_s () in
  (* domains must not share one registry (unsynchronised counters); each
     instance gets its own and the snapshots merge after the joins *)
  let telemetry = Obs.is_enabled metrics in
  let spec_of i attempt =
    let base =
      match instance_spec with
      | Some f -> f i
      | None -> Run_spec.with_seed spec (spec.Run_spec.seed + (i * 7919))
    in
    (* restarts must not replay the crashing seed *)
    Run_spec.with_seed base (base.Run_spec.seed + (attempt * 104729))
  in
  let crash_counts = Fault.Counters.create () in
  let results = Array.make instances None in
  let pending = ref (List.init instances (fun i -> (i, 0))) in
  while !pending <> [] do
    let batch = !pending in
    pending := [];
    let domains =
      List.map
        (fun (i, attempt) ->
          ( i,
            attempt,
            Domain.spawn (fun () ->
                let dm = if telemetry then Obs.create () else Obs.noop in
                try Ok (run ~metrics:dm (spec_of i attempt))
                with exn -> Error (Fault.exn_info exn)) ))
        batch
    in
    List.iter
      (fun (i, attempt, d) ->
        let outcome =
          (* the spawned thunk catches everything, but join defensively
             anyway: a domain that dies outside the thunk (e.g. out of
             memory) must not discard the other instances' results *)
          try Domain.join d with exn -> Error (Fault.exn_info exn)
        in
        match outcome with
        | Ok r -> results.(i) <- Some r
        | Error info ->
            Fault.Counters.record crash_counts (Fault.Instance_crash info);
            if attempt < retries then pending := (i, attempt + 1) :: !pending)
      domains
  done;
  merge_results defense
    ~fallback_contract:(Run_spec.contract_name spec)
    ~elapsed:(Obs.Clock.elapsed_s ~since:started)
    crash_counts
    (List.filter_map Fun.id (Array.to_list results))

let detected r = r.violations <> []

let avg_detection_time r =
  match r.detection_times with
  | [] -> None
  | ts -> Some (List.fold_left ( +. ) 0. ts /. float_of_int (List.length ts))

let unique_violations r = List.length r.violation_classes

let pp fmt r =
  Format.fprintf fmt "defense: %-22s contract: %-9s violations: %-3d unique: %d@."
    r.defense.Defense.name r.contract_name (List.length r.violations)
    (unique_violations r);
  Format.fprintf fmt "  programs: %d (%d discarded)  test cases: %d  time: %.1f s  throughput: %.0f tc/s@."
    r.programs_run r.discarded_programs r.test_cases r.duration r.throughput;
  (match r.fault_counts with
  | [] -> ()
  | counts ->
      Format.fprintf fmt "  faults:";
      List.iter
        (fun (c, n) -> Format.fprintf fmt " %s=%d" (Fault.class_name c) n)
        counts;
      if r.quarantined > 0 then Format.fprintf fmt "  (quarantined: %d)" r.quarantined;
      Format.fprintf fmt "@.");
  if r.budget_exhausted then Format.fprintf fmt "  (budget exhausted)@.";
  (match avg_detection_time r with
  | Some t -> Format.fprintf fmt "  avg detection time: %.2f s@." t
  | None -> ());
  List.iter
    (fun (c, n) -> Format.fprintf fmt "  %3dx %s@." n (Analysis.class_name c))
    r.violation_classes
