(** Resolved hardware-counter bundle for the pipeline hot path.

    Counter handles are resolved once against a registry (at simulator
    construction) and kept here, so the per-event cost in the pipeline is a
    single gated increment — no name lookup.  All counters are
    trace-invisible observations; derived rates (IPC, miss ratios,
    mispredict rate) are computed at report time from the raw counts. *)

open Amulet_obs

type t = {
  fetched : Obs.counter;  (** instructions dispatched into the ROB *)
  retired : Obs.counter;  (** instructions committed *)
  squashes : Obs.counter;  (** squash events *)
  squashed_insts : Obs.counter;  (** instructions thrown away by squashes *)
  spec_issued : Obs.counter;  (** memory ops issued under speculation *)
  mispredicts : Obs.counter;  (** resolved conditional-branch mispredicts *)
  cycles : Obs.counter;  (** simulated cycles *)
  rob_occupancy : Obs.counter;
      (** sum over cycles of ROB length — the speculation-window occupancy
          integral; divide by [cycles] for mean occupancy *)
  runs : Obs.counter;  (** pipeline runs (program executions) *)
}

let create metrics =
  {
    fetched = Obs.counter metrics "uarch.insts.fetched";
    retired = Obs.counter metrics "uarch.insts.retired";
    squashes = Obs.counter metrics "uarch.squashes";
    squashed_insts = Obs.counter metrics "uarch.insts.squashed";
    spec_issued = Obs.counter metrics "uarch.insts.spec_issued";
    mispredicts = Obs.counter metrics "uarch.bp.mispredicts";
    cycles = Obs.counter metrics "uarch.cycles";
    rob_occupancy = Obs.counter metrics "uarch.rob.occupancy_cycles";
    runs = Obs.counter metrics "uarch.runs";
  }

let noop = create Obs.noop
