(** Fully-associative data TLB with LRU replacement.

    Entries map virtual page numbers (address / 4096; virtual = physical in
    SE mode).  The final set of cached page numbers is part of the default
    microarchitectural trace, which is how the STT speculative-store leak
    (KV3) becomes visible.

    Like {!Cache}, the representation is structure-of-arrays so snapshots
    are array copies and restores are blits. *)

let page_bits = 12

type t = {
  pages_a : int array;
  valid_a : bool array;
  lru_a : int array;
  mutable tick : int;
  m_hits : Amulet_obs.Obs.counter;
  m_misses : Amulet_obs.Obs.counter;
}

let create ?(metrics = Amulet_obs.Obs.noop) ~entries () =
  assert (entries > 0);
  {
    pages_a = Array.make entries 0;
    valid_a = Array.make entries false;
    lru_a = Array.make entries 0;
    tick = 0;
    m_hits = Amulet_obs.Obs.counter metrics "uarch.tlb.hits";
    m_misses = Amulet_obs.Obs.counter metrics "uarch.tlb.misses";
  }

let page_of_addr addr = addr lsr page_bits

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* index of [page]'s entry, or -1 *)
let find_idx t page =
  let n = Array.length t.valid_a in
  let rec go i =
    if i >= n then -1
    else if t.valid_a.(i) && t.pages_a.(i) = page then i
    else go (i + 1)
  in
  go 0

let probe t page = find_idx t page >= 0

(** Translate an access to [page]: hit updates LRU, miss installs the entry
    (evicting the LRU victim).  Returns [`Hit] or [`Miss]. *)
let access t page =
  let i = find_idx t page in
  if i >= 0 then begin
    t.lru_a.(i) <- next_tick t;
    Amulet_obs.Obs.incr t.m_hits;
    `Hit
  end
  else begin
    let n = Array.length t.valid_a in
    let free =
      let rec go i = if i >= n then -1 else if not t.valid_a.(i) then i else go (i + 1) in
      go 0
    in
    let target =
      if free >= 0 then free
      else begin
        let victim = ref 0 in
        for i = 1 to n - 1 do
          if t.lru_a.(i) < t.lru_a.(!victim) then victim := i
        done;
        !victim
      end
    in
    t.pages_a.(target) <- page;
    t.valid_a.(target) <- true;
    t.lru_a.(target) <- next_tick t;
    Amulet_obs.Obs.incr t.m_misses;
    `Miss
  end

(** All cached page numbers, sorted. *)
let pages t =
  let acc = ref [] in
  for i = Array.length t.valid_a - 1 downto 0 do
    if t.valid_a.(i) then acc := t.pages_a.(i) :: !acc
  done;
  List.sort compare !acc

let reset t =
  Array.fill t.valid_a 0 (Array.length t.valid_a) false;
  t.tick <- 0

type snapshot = {
  snap_pages : int array;
  snap_valid : bool array;
  snap_lru : int array;
  snap_tick : int;
}

let snapshot t : snapshot =
  {
    snap_pages = Array.copy t.pages_a;
    snap_valid = Array.copy t.valid_a;
    snap_lru = Array.copy t.lru_a;
    snap_tick = t.tick;
  }

let restore t (s : snapshot) =
  Array.blit s.snap_pages 0 t.pages_a 0 (Array.length s.snap_pages);
  Array.blit s.snap_valid 0 t.valid_a 0 (Array.length s.snap_valid);
  Array.blit s.snap_lru 0 t.lru_a 0 (Array.length s.snap_lru);
  t.tick <- s.snap_tick

let pp fmt t =
  Format.fprintf fmt "TLB: [%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ")
       (fun f p -> Format.fprintf f "0x%x" (p lsl page_bits)))
    (pages t)
